package aria

// Unit tests for the semantics layer: version-checked CAS, per-key TTL
// under a fake clock (lazy expiry and the background sweeper), version
// monotonicity across delete/recreate, the optimistic Txn overlay, and
// the counters all of it feeds.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// semOpts opens a small in-memory store with a controllable clock.
func semOpts(now func() time.Time) Options {
	return Options{
		Scheme:       AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 512,
		Seed:         3,
		Now:          now,
	}
}

// fakeClock is a hand-advanced time source safe to share with the
// sweeper goroutine.
type fakeClock struct{ nanos atomic.Int64 }

func newFakeClock(at time.Time) *fakeClock {
	c := &fakeClock{}
	c.nanos.Store(at.UnixNano())
	return c
}
func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.nanos.Add(int64(d)) }

func TestCompareAndSwapVersions(t *testing.T) {
	st := mustOpenPlain(t, semOpts(nil))

	// expect=0 creates only if absent.
	if err := st.CompareAndSwap([]byte("k"), []byte("v0"), 0); err != nil {
		t.Fatalf("create-CAS on absent key: %v", err)
	}
	if err := st.CompareAndSwap([]byte("k"), []byte("x"), 0); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("create-CAS on existing key: %v, want ErrCASMismatch", err)
	}

	_, ver, err := st.GetV([]byte("k"))
	if err != nil || ver == 0 {
		t.Fatalf("GetV: v%d, %v; want a nonzero version", ver, err)
	}
	if err := st.CompareAndSwap([]byte("k"), []byte("v1"), ver); err != nil {
		t.Fatalf("CAS at the observed version: %v", err)
	}
	// The stale loser must not clobber the winner.
	if err := st.CompareAndSwap([]byte("k"), []byte("loser"), ver); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale CAS: %v, want ErrCASMismatch", err)
	}
	if v, _ := st.Get([]byte("k")); string(v) != "v1" {
		t.Fatalf("after stale CAS, k = %q, want v1", v)
	}
	if got := st.Stats().CASMismatches; got != 2 {
		t.Fatalf("CASMismatches = %d, want 2", got)
	}
}

func TestVersionsMonotonicAcrossRecreate(t *testing.T) {
	st := mustOpenPlain(t, semOpts(nil))
	if err := st.Put([]byte("k"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	_, v1, err := st.GetV([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("k"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	_, v2, err := st.GetV([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	// A recreated key must never reuse an old version, or a CAS taken
	// before the delete could succeed against the new value.
	if v2 <= v1 {
		t.Fatalf("recreated key version %d not above original %d", v2, v1)
	}
	if err := st.CompareAndSwap([]byte("k"), []byte("c"), v1); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("CAS with pre-delete version: %v, want ErrCASMismatch", err)
	}
}

func TestMPutBumpsVersions(t *testing.T) {
	st := mustOpenPlain(t, semOpts(nil))
	pairs := []KV{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
	}
	if errs := st.MPut(pairs); errs != nil {
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, p := range pairs {
		_, ver, err := st.GetV(p.Key)
		if err != nil || ver == 0 {
			t.Fatalf("GetV(%s): v%d, %v; want a nonzero version", p.Key, ver, err)
		}
		// The version is live: a CAS against it succeeds.
		if err := st.CompareAndSwap(p.Key, []byte("new"), ver); err != nil {
			t.Fatalf("CAS(%s) at MPut version %d: %v", p.Key, ver, err)
		}
	}
}

func TestTTLLazyExpiry(t *testing.T) {
	clock := newFakeClock(time.Unix(1_700_000_000, 0))
	st := mustOpenPlain(t, semOpts(clock.Now))
	if err := st.PutTTL([]byte("k"), []byte("v"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if v, err := st.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("inside the deadline: %q, %v", v, err)
	}
	clock.Advance(2 * time.Hour)
	if _, err := st.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("past the deadline: %v, want ErrNotFound", err)
	}
	if got := st.Stats().TTLExpired; got != 1 {
		t.Fatalf("TTLExpired = %d, want 1", got)
	}
	// The slot is free again and versions keep climbing.
	if err := st.CompareAndSwap([]byte("k"), []byte("fresh"), 0); err != nil {
		t.Fatalf("create-CAS after expiry: %v", err)
	}
	// ttl <= 0 stores without a deadline.
	if err := st.PutTTL([]byte("forever"), []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(1000 * time.Hour)
	if _, err := st.Get([]byte("forever")); err != nil {
		t.Fatalf("zero-TTL key expired: %v", err)
	}
}

func TestTTLSweeper(t *testing.T) {
	clock := newFakeClock(time.Unix(1_700_000_000, 0))
	opts := semOpts(clock.Now)
	opts.TTLSweepEvery = 5 * time.Millisecond
	st := mustOpenPlain(t, opts)
	for _, k := range []string{"a", "b", "c"} {
		if err := st.PutTTL([]byte(k), []byte("v"), time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(time.Hour)
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().TTLSwept < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeper reaped %d of 3 expired keys", st.Stats().TTLSwept)
		}
		time.Sleep(time.Millisecond)
	}
	if got := st.Stats().TTLSweeps; got == 0 {
		t.Fatal("TTLSweeps stayed zero while TTLSwept advanced")
	}
	// Swept keys were never surfaced to a reader, so they are not
	// "expired on read".
	if got := st.Stats().TTLExpired; got != 0 {
		t.Fatalf("TTLExpired = %d, want 0 (sweeper reaps are counted separately)", got)
	}
}

func TestTxnOverlayReadYourWrites(t *testing.T) {
	st := mustOpenPlain(t, semOpts(nil))
	if err := st.Put([]byte("base"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	txn := NewTxn(st)
	txn.Put([]byte("base"), []byte("new"))
	if v, err := txn.Get([]byte("base")); err != nil || string(v) != "new" {
		t.Fatalf("overlay read = %q, %v; want the buffered write", v, err)
	}
	txn.Delete([]byte("base"))
	if _, err := txn.Get([]byte("base")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after buffered delete: %v, want ErrNotFound", err)
	}
	// Nothing reached the store yet.
	if v, _ := st.Get([]byte("base")); string(v) != "old" {
		t.Fatalf("buffered writes leaked: base = %q, want old", v)
	}
	if err := txn.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if _, err := st.Get([]byte("base")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("committed delete not applied: %v", err)
	}
}

func TestTxnConflictAppliesNothing(t *testing.T) {
	st := mustOpenPlain(t, semOpts(nil))
	if err := st.Put([]byte("k"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	txn := NewTxn(st)
	if _, err := txn.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	txn.Put([]byte("k"), []byte("mine"))
	txn.Put([]byte("other"), []byte("rider"))
	// An interfering writer bumps k between read and commit.
	if err := st.Put([]byte("k"), []byte("theirs")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("commit after interference: %v, want ErrTxnConflict", err)
	}
	if v, _ := st.Get([]byte("k")); string(v) != "theirs" {
		t.Fatalf("conflicted txn overwrote k: %q, want theirs", v)
	}
	if _, err := st.Get([]byte("other")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("conflicted txn leaked its rider write: %v, want ErrNotFound", err)
	}
	stats := st.Stats()
	if stats.TxnConflicts != 1 {
		t.Fatalf("TxnConflicts = %d, want 1", stats.TxnConflicts)
	}
	if stats.TxnCommits != 0 {
		t.Fatalf("TxnCommits = %d, want 0 (nothing committed)", stats.TxnCommits)
	}
}

func TestTxnAbsentReadValidates(t *testing.T) {
	st := mustOpenPlain(t, semOpts(nil))
	txn := NewTxn(st)
	// Read k as absent; its continued absence is part of the snapshot.
	if _, err := txn.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	txn.Put([]byte("dep"), []byte("v"))
	if err := st.Put([]byte("k"), []byte("appeared")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("commit after the absent key appeared: %v, want ErrTxnConflict", err)
	}
}

func TestTxnEmptyAndTTLWrites(t *testing.T) {
	clock := newFakeClock(time.Unix(1_700_000_000, 0))
	st := mustOpenPlain(t, semOpts(clock.Now))
	if err := NewTxn(st).Commit(); err != nil {
		t.Fatalf("empty txn: %v, want nil", err)
	}
	txn := NewTxn(st)
	txn.PutTTL([]byte("lease"), []byte("held"), time.Hour)
	txn.Put([]byte("owner"), []byte("me"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := st.Get([]byte("lease")); err != nil || string(v) != "held" {
		t.Fatalf("txn TTL write inside deadline: %q, %v", v, err)
	}
	clock.Advance(2 * time.Hour)
	if _, err := st.Get([]byte("lease")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("txn TTL write past deadline: %v, want ErrNotFound", err)
	}
	if v, err := st.Get([]byte("owner")); err != nil || string(v) != "me" {
		t.Fatalf("plain txn write must not expire: %q, %v", v, err)
	}
	if got := st.Stats().TxnCommits; got != 1 {
		t.Fatalf("TxnCommits = %d, want 1", got)
	}
}

// TestTTLTxnSurviveRecovery reopens a durable store and checks that
// sealed TTL deadlines and group-committed txn writes come back
// verbatim — expiry is decided by the recovered absolute deadline, not
// re-derived.
func TestTTLTxnSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock(time.Unix(1_700_000_000, 0))
	opts := durableOpts(dir)
	opts.Now = clock.Now
	st := mustOpen(t, opts)
	if err := st.PutTTL([]byte("short"), []byte("s"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := st.PutTTL([]byte("long"), []byte("l"), 100*time.Hour); err != nil {
		t.Fatal(err)
	}
	txn := NewTxn(st)
	txn.Put([]byte("t1"), []byte("v1"))
	txn.PutTTL([]byte("t2"), []byte("v2"), 100*time.Hour)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	_, casVer, err := st.GetV([]byte("t1"))
	if err != nil {
		t.Fatal(err)
	}
	mustClose(t, st)

	clock.Advance(2 * time.Hour) // past "short", inside every other deadline
	st = mustOpen(t, opts)
	defer mustClose(t, st)
	if _, err := st.Get([]byte("short")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("short TTL survived past its recovered deadline: %v", err)
	}
	for key, want := range map[string]string{"long": "l", "t1": "v1", "t2": "v2"} {
		if v, err := st.Get([]byte(key)); err != nil || string(v) != want {
			t.Fatalf("recovered %s = %q, %v; want %q", key, v, err, want)
		}
	}
	// Replay reassigns the same versions: a CAS taken before the crash
	// still succeeds after recovery.
	if err := st.CompareAndSwap([]byte("t1"), []byte("v1b"), casVer); err != nil {
		t.Fatalf("CAS at pre-crash version after recovery: %v", err)
	}
}

// mustOpenPlain opens a non-durable store and closes it with the test
// (Close stops the TTL sweeper).
func mustOpenPlain(t *testing.T, opts Options) Store {
	t.Helper()
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d, ok := st.(Durable); ok {
			_ = d.Close()
		}
	})
	return st
}
