package aria

// Durability: the sealed WAL + snapshot wrapper (DESIGN.md §10). A
// store opened with Options.DataDir is wrapped in a durableStore that
// logs every successful write to a sealed write-ahead log (package
// wal), takes atomic sealed snapshots, and recovers the committed
// state on Open. The wrapper sits between the scheme store and the
// metrics wrapper:
//
//	openStore → durableStore (DataDir != "") → meteredStore (Metrics != nil)
//
// Everything the wrapper persists leaves the enclave's trust boundary,
// so each append charges the simulator the way real sealing would: the
// AES-CTR encryption and CMAC of the record (ChargeCTR/ChargeMAC), one
// OCALL plus the boundary copy of the sealed bytes (SealOut), and one
// further OCALL per fsync the policy issues. Recovery charges the
// mirror-image SealIn path. The cost accounting the paper's figures
// rest on therefore stays honest when durability is on — and is
// untouched when it is off, since Open never builds the wrapper then.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"github.com/ariakv/aria/internal/seal"
	"github.com/ariakv/aria/internal/sgx"
	"github.com/ariakv/aria/wal"
)

// Durable is implemented by stores opened with Options.DataDir set
// (and by the metrics and sharding wrappers above them, which pass
// through — a sharded or metered store over non-durable shards returns
// ErrNotDurable from Checkpoint and makes Close a no-op).
type Durable interface {
	// Checkpoint writes an atomic sealed snapshot of the keyspace
	// (write-temp + rename), then truncates the WAL segments the
	// snapshot made obsolete. Safe to call at any time; the sharded
	// store checkpoints every shard in parallel.
	Checkpoint() error
	// Close stops the background checkpointer, flushes the WAL, and
	// closes its files. The store must not be used after Close.
	Close() error
}

// WAL record payload opcodes.
const (
	walOpPut    = 1
	walOpDelete = 2
)

// maxWalKey bounds key length to what the WAL and snapshot framing's
// uint16 length prefix can carry. A longer key would wrap the prefix
// and replay would silently reconstruct a different key/value split —
// corruption no MAC can catch, so openDurable refuses to build a
// durable store whose Options.MaxKeySize admits such keys, and the
// encoders below guard against it outright.
const maxWalKey = 1<<16 - 1

// encodeWalRecord builds a WAL payload: op (1) || klen (2, LE) || key
// [|| value]. The value length is implied by the record length.
func encodeWalRecord(op byte, key, value []byte) ([]byte, error) {
	if len(key) > maxWalKey {
		return nil, fmt.Errorf("%w: key of %d bytes exceeds the durable framing limit %d", ErrTooLarge, len(key), maxWalKey)
	}
	p := make([]byte, 3+len(key)+len(value))
	p[0] = op
	binary.LittleEndian.PutUint16(p[1:3], uint16(len(key)))
	copy(p[3:], key)
	copy(p[3+len(key):], value)
	return p, nil
}

// decodeWalRecord splits a WAL payload back into op, key, and value.
func decodeWalRecord(p []byte) (op byte, key, value []byte, err error) {
	if len(p) < 3 {
		return 0, nil, nil, errors.New("aria: wal record too short")
	}
	klen := int(binary.LittleEndian.Uint16(p[1:3]))
	if len(p) < 3+klen {
		return 0, nil, nil, errors.New("aria: wal record key overruns payload")
	}
	return p[0], p[3 : 3+klen], p[3+klen:], nil
}

// durableStore makes one single-enclave store crash-safe. All
// operations (reads included) serialize on mu, because the background
// checkpointer reads the inner store concurrently with live traffic
// and the engines model a single enclave thread.
type durableStore struct {
	inner  Store
	enc    *sgx.Enclave
	policy IntegrityPolicy

	mu     sync.Mutex
	log    *wal.Log
	sealer *seal.Sealer
	dir    string
	// keys shadows the live key set: hash-indexed schemes cannot
	// enumerate their contents, so the checkpointer iterates this set
	// (sorted, for deterministic snapshots) and Gets each key.
	keys            map[string]struct{}
	checkpointEvery int
	sinceCkpt       int
	// lastSnapCovered is the covered seq of the newest snapshot loaded
	// or written (valid when hasSnap). Checkpoints retain the previous
	// generation — snapshots and WAL records are only pruned up to this
	// value, never up to the snapshot just written — so recovery under
	// Quarantine always has an older snapshot plus the WAL above it to
	// fall back to when the newest snapshot is tampered.
	lastSnapCovered uint64
	hasSnap         bool

	recovered   uint64 // records restored at Open (snapshot + replay)
	recFailures uint64 // tamper detections during recovery (Quarantine)
	checkpoints uint64
	ckptErr     error // last background checkpoint failure

	ckptC  chan struct{}
	stopC  chan struct{}
	wg     sync.WaitGroup
	closed bool

	// commitHook, when set, runs after every group of records commits
	// to the WAL (still under d.mu); the replication publisher uses it
	// to wake subscribers without polling.
	commitHook func()
}

// openDurable wraps inner with WAL + snapshot durability rooted at
// dir, running crash recovery first: load the newest valid snapshot,
// replay the WAL above it, stop cleanly at a torn tail, and route
// tampering through the integrity policy — FailStop fails the Open
// (wrapping ErrIntegrity, log left untouched as evidence), Quarantine
// salvages the valid prefix, counts the failure, and serves degraded.
func openDurable(inner Store, opts Options, dir string) (*durableStore, error) {
	if opts.MaxKeySize > maxWalKey {
		return nil, fmt.Errorf("aria: Options.DataDir requires MaxKeySize <= %d (got %d): longer keys do not fit the WAL record framing", maxWalKey, opts.MaxKeySize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("aria: create data dir: %w", err)
	}
	d := &durableStore{
		inner:           inner,
		enc:             enclaveOf(inner),
		policy:          opts.IntegrityPolicy,
		sealer:          seal.New(opts.Seed),
		dir:             dir,
		keys:            make(map[string]struct{}),
		checkpointEvery: opts.CheckpointEvery,
		ckptC:           make(chan struct{}, 1),
		stopC:           make(chan struct{}),
	}

	// 1. Newest valid snapshot. Under Quarantine a tampered snapshot is
	// counted and skipped in favour of an older one; under FailStop it
	// fails the Open.
	snaps, err := wal.Snapshots(dir)
	if err != nil {
		return nil, fmt.Errorf("aria: list snapshots: %w", err)
	}
	coveredSeq := uint64(0)
	for _, path := range snaps {
		covered, pairs, rerr := wal.ReadSnapshot(path, d.sealer)
		if rerr != nil {
			if !errors.Is(rerr, wal.ErrTampered) {
				return nil, fmt.Errorf("aria: read snapshot: %w", rerr)
			}
			if d.policy != Quarantine {
				return nil, fmt.Errorf("%w: %w", ErrIntegrity, rerr)
			}
			d.recFailures++
			continue
		}
		for _, p := range pairs {
			if err := inner.Put(p.Key, p.Value); err != nil {
				return nil, fmt.Errorf("aria: restore snapshot pair: %w", err)
			}
			d.keys[string(p.Key)] = struct{}{}
			d.chargeSealIn(len(p.Key) + len(p.Value) + 2)
		}
		coveredSeq = covered
		d.lastSnapCovered, d.hasSnap = covered, true
		d.recovered += uint64(len(pairs))
		break
	}

	// 2. WAL replay above the snapshot.
	log, err := wal.Open(wal.Options{Dir: dir, Sealer: d.sealer, Fsync: opts.Fsync})
	if err != nil {
		return nil, fmt.Errorf("aria: open wal: %w", err)
	}
	replay := func(seq uint64, payload []byte) error {
		op, key, value, derr := decodeWalRecord(payload)
		if derr != nil {
			// An undecodable payload authenticated correctly, so it is
			// a logic-level corruption, not tampering: fail regardless
			// of policy rather than guess.
			return derr
		}
		d.chargeSealIn(len(payload))
		switch op {
		case walOpPut:
			if err := inner.Put(key, value); err != nil {
				return fmt.Errorf("aria: replay put: %w", err)
			}
			d.keys[string(key)] = struct{}{}
		case walOpDelete:
			if err := inner.Delete(key); err != nil && !errors.Is(err, ErrNotFound) {
				return fmt.Errorf("aria: replay delete: %w", err)
			}
			delete(d.keys, string(key))
		default:
			return fmt.Errorf("aria: unknown wal opcode %d", op)
		}
		d.recovered++
		return nil
	}
	_, err = log.Recover(coveredSeq, replay)
	if err != nil {
		if !errors.Is(err, wal.ErrTampered) {
			log.Close()
			return nil, err
		}
		if d.policy != Quarantine {
			log.Close()
			return nil, fmt.Errorf("%w: %w", ErrIntegrity, err)
		}
		// Quarantine: salvage the verified prefix and serve degraded.
		// Records past the first tampered byte are untrusted and lost.
		d.recFailures++
		if terr := log.TruncateTail(); terr != nil {
			log.Close()
			return nil, fmt.Errorf("aria: salvage wal: %w", terr)
		}
	}
	d.log = log

	if d.checkpointEvery > 0 {
		d.wg.Add(1)
		go d.checkpointLoop()
	}
	return d, nil
}

// checkpointLoop runs automatic checkpoints triggered by record count;
// it is the only goroutine touching the store besides callers, and it
// synchronizes on d.mu like everyone else.
func (d *durableStore) checkpointLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stopC:
			return
		case <-d.ckptC:
			d.mu.Lock()
			if !d.closed {
				if err := d.checkpointLocked(); err != nil {
					// Remembered, surfaced by Close; the next
					// checkpoint retries, and the WAL still holds
					// every record, so no durability is lost.
					d.ckptErr = err
				}
			}
			d.mu.Unlock()
		}
	}
}

// chargeAppend prices one durable append: seal crypto per record,
// one boundary crossing for the group, one OCALL per fsync issued.
func (d *durableStore) chargeAppend(payloadBytes []int, res wal.AppendResult) {
	if d.enc == nil {
		return
	}
	for _, n := range payloadBytes {
		d.enc.ChargeCTR(n)
		d.enc.ChargeMAC(n + seal.Overhead)
	}
	d.enc.SealOut(res.Bytes)
	for i := 0; i < res.Fsyncs; i++ {
		d.enc.Ocall()
	}
}

// chargeSealIn prices unsealing one recovered record.
func (d *durableStore) chargeSealIn(payloadBytes int) {
	if d.enc == nil {
		return
	}
	d.enc.SealIn(payloadBytes + seal.Overhead)
	d.enc.ChargeCTR(payloadBytes)
	d.enc.ChargeMAC(payloadBytes + seal.Overhead)
}

// logRecords appends the payloads as one group commit, charges the
// simulator, and arms the automatic checkpointer.
func (d *durableStore) logRecords(payloads ...[]byte) error {
	sizes := make([]int, len(payloads))
	for i, p := range payloads {
		sizes[i] = len(p)
	}
	res, err := d.log.Append(payloads...)
	if err != nil {
		return fmt.Errorf("aria: wal append: %w", err)
	}
	d.chargeAppend(sizes, res)
	d.sinceCkpt += len(payloads)
	if d.checkpointEvery > 0 && d.sinceCkpt >= d.checkpointEvery {
		d.sinceCkpt = 0
		select {
		case d.ckptC <- struct{}{}:
		default: // a checkpoint is already pending
		}
	}
	if d.commitHook != nil {
		d.commitHook()
	}
	return nil
}

// WALShards implements Replicable: a single durable store is one
// lineage.
func (d *durableStore) WALShards() int { return 1 }

// WALShardDir implements Replicable: the lineage's directory.
func (d *durableStore) WALShardDir(int) string { return d.dir }

// WALShardNextSeq implements Replicable: the next sequence number the
// lineage will assign (last committed + 1).
func (d *durableStore) WALShardNextSeq(int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.NextSeq()
}

// SetCommitHook implements Replicable. The hook runs under the store's
// write lock and must not block.
func (d *durableStore) SetCommitHook(fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.commitHook = fn
}

// Put implements Store: the record is encoded first (so an
// unloggable key is rejected before it touches memory), then the
// in-memory write must succeed, then the record is sealed and appended
// (committed = applied + logged).
func (d *durableStore) Put(key, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, err := encodeWalRecord(walOpPut, key, value)
	if err != nil {
		return err
	}
	if err := d.inner.Put(key, value); err != nil {
		return err
	}
	if err := d.logRecords(rec); err != nil {
		return err
	}
	d.keys[string(key)] = struct{}{}
	return nil
}

// Get implements Store (reads never touch the WAL).
func (d *durableStore) Get(key []byte) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Get(key)
}

// Delete implements Store.
func (d *durableStore) Delete(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, err := encodeWalRecord(walOpDelete, key, nil)
	if err != nil {
		return err
	}
	if err := d.inner.Delete(key); err != nil {
		return err
	}
	if err := d.logRecords(rec); err != nil {
		return err
	}
	delete(d.keys, string(key))
	return nil
}

// MGet implements Store.
func (d *durableStore) MGet(keys [][]byte) ([][]byte, []error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.MGet(keys)
}

// MPut implements Store: the batch's successful writes are sealed and
// appended as one group commit — one segment append, one fsync under
// FsyncBatch — which is where batching's edge amortization carries
// over to durability.
func (d *durableStore) MPut(pairs []KV) []error {
	d.mu.Lock()
	defer d.mu.Unlock()
	errs := d.inner.MPut(pairs)
	recs := make([][]byte, 0, len(pairs))
	ok := make([]int, 0, len(pairs))
	for i, p := range pairs {
		if errs == nil || errs[i] == nil {
			rec, err := encodeWalRecord(walOpPut, p.Key, p.Value)
			if err != nil {
				// Unreachable while openDurable caps MaxKeySize, kept
				// as a positional error rather than silent corruption.
				errs = batchErr(errs, len(pairs), i, err)
				continue
			}
			recs = append(recs, rec)
			ok = append(ok, i)
		}
	}
	if len(recs) == 0 {
		return errs
	}
	if err := d.logRecords(recs...); err != nil {
		// The writes applied in memory but are not durable: report the
		// append failure at every position that would otherwise succeed.
		for _, i := range ok {
			errs = batchErr(errs, len(pairs), i, err)
		}
		return errs
	}
	for _, i := range ok {
		d.keys[string(pairs[i].Key)] = struct{}{}
	}
	return errs
}

// MDelete implements Store, with the same group commit as MPut.
func (d *durableStore) MDelete(keys [][]byte) []error {
	d.mu.Lock()
	defer d.mu.Unlock()
	errs := d.inner.MDelete(keys)
	recs := make([][]byte, 0, len(keys))
	ok := make([]int, 0, len(keys))
	for i, k := range keys {
		if errs == nil || errs[i] == nil {
			rec, err := encodeWalRecord(walOpDelete, k, nil)
			if err != nil {
				errs = batchErr(errs, len(keys), i, err)
				continue
			}
			recs = append(recs, rec)
			ok = append(ok, i)
		}
	}
	if len(recs) == 0 {
		return errs
	}
	if err := d.logRecords(recs...); err != nil {
		for _, i := range ok {
			errs = batchErr(errs, len(keys), i, err)
		}
		return errs
	}
	for _, i := range ok {
		delete(d.keys, string(keys[i]))
	}
	return errs
}

// Checkpoint implements Durable.
func (d *durableStore) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("aria: checkpoint on closed store")
	}
	return d.checkpointLocked()
}

// checkpointLocked rotates the WAL so the snapshot boundary aligns
// with a segment boundary, seals the keyspace into an atomic snapshot,
// and prunes what the *previous* snapshot generation no longer needs:
// snapshots older than the previous one and WAL segments at or below
// its covered seq. Keeping two generations means a tampered newest
// snapshot still has a working fallback (older snapshot + retained WAL)
// under Quarantine, instead of silently wiping the store. Callers hold
// d.mu.
func (d *durableStore) checkpointLocked() error {
	covered := d.log.NextSeq() - 1
	if d.hasSnap && covered == d.lastSnapCovered {
		// No record was logged since the last snapshot: re-sealing an
		// identical snapshot would only churn the files.
		return nil
	}
	if err := d.log.Rotate(); err != nil {
		return fmt.Errorf("aria: checkpoint rotate: %w", err)
	}
	names := make([]string, 0, len(d.keys))
	for k := range d.keys {
		names = append(names, k)
	}
	sort.Strings(names)
	pairs := make([]wal.Pair, 0, len(names))
	total := 0
	for _, k := range names {
		v, err := d.inner.Get([]byte(k))
		switch {
		case err == nil:
			pairs = append(pairs, wal.Pair{Key: []byte(k), Value: v})
			total += len(k) + len(v) + 2
		case errors.Is(err, ErrNotFound):
			// The shadow set can briefly overapproximate; skip.
		case errors.Is(err, ErrIntegrity) && d.policy == Quarantine:
			// A poisoned key has no trustworthy value to persist; the
			// snapshot carries the surviving keys and the store stays
			// degraded.
		default:
			return fmt.Errorf("aria: checkpoint read %q: %w", k, err)
		}
	}
	bytes, err := wal.WriteSnapshot(d.dir, d.sealer, covered, pairs)
	if err != nil {
		return fmt.Errorf("aria: write snapshot: %w", err)
	}
	if d.enc != nil {
		for _, p := range pairs {
			d.enc.ChargeCTR(len(p.Key) + len(p.Value) + 2)
			d.enc.ChargeMAC(len(p.Key) + len(p.Value) + 2 + seal.Overhead)
		}
		d.enc.SealOut(int(bytes))
		d.enc.Ocall() // the snapshot fsync
	}
	// Prune up to the previous generation only. On the first checkpoint
	// there is no previous snapshot: the floor is 0, so the full WAL is
	// retained and remains a complete fallback on its own.
	keep := uint64(0)
	if d.hasSnap {
		keep = d.lastSnapCovered
	}
	if err := wal.PruneSnapshots(d.dir, keep); err != nil {
		return fmt.Errorf("aria: prune snapshots: %w", err)
	}
	if err := d.log.TruncateThrough(keep); err != nil {
		return fmt.Errorf("aria: truncate wal: %w", err)
	}
	d.lastSnapCovered, d.hasSnap = covered, true
	d.checkpoints++
	d.sinceCkpt = 0
	return nil
}

// Close implements Durable: stop the checkpointer, flush, close. It
// returns the last background checkpoint failure, if any, so operators
// see it even without metrics.
func (d *durableStore) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.stopC)
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.log.Sync()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = d.ckptErr
	}
	return err
}

// Stats implements Store, adding the durability counters.
func (d *durableStore) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.inner.Stats()
	ls := d.log.Stats()
	st.WALAppends = ls.Appends
	st.WALRecords = ls.Records
	st.WALBytes = ls.Bytes
	st.WALFsyncs = ls.Fsyncs
	st.Checkpoints = d.checkpoints
	st.RecoveredRecords = d.recovered
	// Tampering found during recovery counts like tampering found live:
	// it flips Health() to degraded under Quarantine.
	st.IntegrityFailures += d.recFailures
	return st
}

// VerifyIntegrity implements Store.
func (d *durableStore) VerifyIntegrity() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.VerifyIntegrity()
}

// SetMeasuring implements Store.
func (d *durableStore) SetMeasuring(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inner.SetMeasuring(on)
}

// ResetStats implements Store.
func (d *durableStore) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inner.ResetStats()
}

// Scan implements Ranger when the inner store does.
func (d *durableStore) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.inner.(Ranger)
	if !ok {
		return ErrNoScan
	}
	return r.Scan(start, end, fn)
}

// ChargeEcall implements EdgeCaller.
func (d *durableStore) ChargeEcall() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ec, ok := d.inner.(EdgeCaller); ok {
		ec.ChargeEcall()
	}
}

// The Corrupter surface passes through so attack demos target the
// in-memory arenas of a durable store unchanged; the on-disk files are
// attacked directly through the filesystem instead.

// UntrustedSize implements Corrupter.
func (d *durableStore) UntrustedSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.inner.(Corrupter); ok {
		return c.UntrustedSize()
	}
	return 0
}

// FlipUntrustedByte implements Corrupter.
func (d *durableStore) FlipUntrustedByte(offset int, mask byte) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.inner.(Corrupter); ok {
		return c.FlipUntrustedByte(offset, mask)
	}
	return false
}

// SnapshotUntrusted implements Corrupter.
func (d *durableStore) SnapshotUntrusted() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.inner.(Corrupter); ok {
		return c.SnapshotUntrusted()
	}
	return nil
}

// RestoreUntrusted implements Corrupter.
func (d *durableStore) RestoreUntrusted(snap []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.inner.(Corrupter); ok {
		c.RestoreUntrusted(snap)
	}
}
