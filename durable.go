package aria

// Durability: the sealed WAL + snapshot wrapper (DESIGN.md §10). A
// store opened with Options.DataDir is wrapped in a durableStore that
// logs every successful write to a sealed write-ahead log (package
// wal), takes atomic sealed snapshots, and recovers the committed
// state on Open. The wrapper sits between the scheme store and the
// metrics wrapper:
//
//	openStore → durableStore (DataDir != "") → meteredStore (Metrics != nil)
//
// Everything the wrapper persists leaves the enclave's trust boundary,
// so each append charges the simulator the way real sealing would: the
// AES-CTR encryption and CMAC of the record (ChargeCTR/ChargeMAC), one
// OCALL plus the boundary copy of the sealed bytes (SealOut), and one
// further OCALL per fsync the policy issues. Recovery charges the
// mirror-image SealIn path. The cost accounting the paper's figures
// rest on therefore stays honest when durability is on — and is
// untouched when it is off, since Open never builds the wrapper then.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/ariakv/aria/internal/compress"
	"github.com/ariakv/aria/internal/seal"
	"github.com/ariakv/aria/internal/sgx"
	"github.com/ariakv/aria/wal"
)

// Durable is implemented by stores opened with Options.DataDir set
// (and by the metrics and sharding wrappers above them, which pass
// through — a sharded or metered store over non-durable shards returns
// ErrNotDurable from Checkpoint and makes Close a no-op).
type Durable interface {
	// Checkpoint writes an atomic sealed snapshot of the keyspace
	// (write-temp + rename), then truncates the WAL segments the
	// snapshot made obsolete. Safe to call at any time; the sharded
	// store checkpoints every shard in parallel.
	Checkpoint() error
	// Close stops the background checkpointer, flushes the WAL, and
	// closes its files. The store must not be used after Close.
	Close() error
}

// WAL record payload opcodes.
const (
	walOpPut    = 1
	walOpDelete = 2
	// walOpPutTTL is a put carrying an absolute expiry deadline: op (1)
	// || klen (2, LE) || key || exp (8, LE, unix nanos) || value. The
	// deadline is absolute so replay and replicas reconstruct exactly
	// the expiry the primary committed, independent of their clocks.
	walOpPutTTL = 3
	// walOpTxn is one whole transaction as a single sealed record (klen
	// 0; the body is the write list — see encodeWalTxnRecord). One
	// record is atomic by construction: a crash either left it in the
	// committed prefix or cut it off entirely, so recovery can never
	// observe half a transaction.
	walOpTxn = 4
)

// maxWalKey bounds key length to what the WAL and snapshot framing's
// uint16 length prefix can carry. A longer key would wrap the prefix
// and replay would silently reconstruct a different key/value split —
// corruption no MAC can catch, so openDurable refuses to build a
// durable store whose Options.MaxKeySize admits such keys, and the
// encoders below guard against it outright.
const maxWalKey = 1<<16 - 1

// encodeWalRecord builds a WAL payload: op (1) || klen (2, LE) || key
// [|| value]. The value length is implied by the record length.
func encodeWalRecord(op byte, key, value []byte) ([]byte, error) {
	if len(key) > maxWalKey {
		return nil, fmt.Errorf("%w: key of %d bytes exceeds the durable framing limit %d", ErrTooLarge, len(key), maxWalKey)
	}
	p := make([]byte, 3+len(key)+len(value))
	p[0] = op
	binary.LittleEndian.PutUint16(p[1:3], uint16(len(key)))
	copy(p[3:], key)
	copy(p[3+len(key):], value)
	return p, nil
}

// decodeWalRecord splits a WAL payload back into op, key, and value.
func decodeWalRecord(p []byte) (op byte, key, value []byte, err error) {
	if len(p) < 3 {
		return 0, nil, nil, errors.New("aria: wal record too short")
	}
	klen := int(binary.LittleEndian.Uint16(p[1:3]))
	if len(p) < 3+klen {
		return 0, nil, nil, errors.New("aria: wal record key overruns payload")
	}
	return p[0], p[3 : 3+klen], p[3+klen:], nil
}

// encodeWalTTLRecord builds a walOpPutTTL payload (layout above).
func encodeWalTTLRecord(key []byte, exp int64, value []byte) ([]byte, error) {
	if len(key) > maxWalKey {
		return nil, fmt.Errorf("%w: key of %d bytes exceeds the durable framing limit %d", ErrTooLarge, len(key), maxWalKey)
	}
	p := make([]byte, 3+len(key)+8+len(value))
	p[0] = walOpPutTTL
	binary.LittleEndian.PutUint16(p[1:3], uint16(len(key)))
	copy(p[3:], key)
	binary.LittleEndian.PutUint64(p[3+len(key):], uint64(exp))
	copy(p[3+len(key)+8:], value)
	return p, nil
}

// splitTTLBody splits a walOpPutTTL record's post-key bytes into the
// expiry deadline and the value.
func splitTTLBody(rest []byte) (exp int64, value []byte, err error) {
	if len(rest) < 8 {
		return 0, nil, errors.New("aria: wal ttl record too short")
	}
	return int64(binary.LittleEndian.Uint64(rest[:8])), rest[8:], nil
}

// Write kinds inside a walOpTxn record body.
const (
	txnKindPut    = 0
	txnKindDelete = 1
	txnKindPutTTL = 2
)

// encodeWalTxnRecord seals a transaction's resolved writes into one
// record: op (1) || klen=0 (2) || count (4, LE) || writes, each
// kind (1) || klen (2, LE) || key || [exp (8, LE) if put-ttl] ||
// [vlen (4, LE) || value if put or put-ttl]. Check entries are not
// persisted — validation happened before the record was sealed.
func encodeWalTxnRecord(writes []txnWrite) ([]byte, error) {
	size := 3 + 4
	for i := range writes {
		w := &writes[i]
		if len(w.key) > maxWalKey {
			return nil, fmt.Errorf("%w: key of %d bytes exceeds the durable framing limit %d", ErrTooLarge, len(w.key), maxWalKey)
		}
		size += 3 + len(w.key)
		if !w.del {
			if w.exp != 0 {
				size += 8
			}
			size += 4 + len(w.value)
		}
	}
	p := make([]byte, 3, size)
	p[0] = walOpTxn
	var u4 [4]byte
	var u8 [8]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(len(writes)))
	p = append(p, u4[:]...)
	for i := range writes {
		w := &writes[i]
		kind := byte(txnKindPut)
		switch {
		case w.del:
			kind = txnKindDelete
		case w.exp != 0:
			kind = txnKindPutTTL
		}
		var klen [2]byte
		binary.LittleEndian.PutUint16(klen[:], uint16(len(w.key)))
		p = append(p, kind)
		p = append(p, klen[:]...)
		p = append(p, w.key...)
		if kind == txnKindPutTTL {
			binary.LittleEndian.PutUint64(u8[:], uint64(w.exp))
			p = append(p, u8[:]...)
		}
		if kind != txnKindDelete {
			binary.LittleEndian.PutUint32(u4[:], uint32(len(w.value)))
			p = append(p, u4[:]...)
			p = append(p, w.value...)
		}
	}
	return p, nil
}

// decodeWalTxnBody parses a walOpTxn record's post-key bytes back into
// the write list, rejecting any framing defect outright (the record
// authenticated, so a defect is logic-level corruption, not tampering).
func decodeWalTxnBody(body []byte) ([]txnWrite, error) {
	if len(body) < 4 {
		return nil, errors.New("aria: wal txn record too short")
	}
	count := int(binary.LittleEndian.Uint32(body[:4]))
	// Every write takes at least 3 bytes; a count claiming more than
	// the body could hold is corrupt.
	if count < 0 || count > len(body[4:])/3+1 {
		return nil, errors.New("aria: wal txn record count implausible")
	}
	rest := body[4:]
	writes := make([]txnWrite, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 3 {
			return nil, errors.New("aria: wal txn write truncated")
		}
		kind := rest[0]
		klen := int(binary.LittleEndian.Uint16(rest[1:3]))
		rest = rest[3:]
		if len(rest) < klen {
			return nil, errors.New("aria: wal txn key overruns record")
		}
		w := txnWrite{key: rest[:klen]}
		rest = rest[klen:]
		switch kind {
		case txnKindDelete:
			w.del = true
		case txnKindPutTTL:
			if len(rest) < 8 {
				return nil, errors.New("aria: wal txn expiry truncated")
			}
			w.exp = int64(binary.LittleEndian.Uint64(rest[:8]))
			rest = rest[8:]
			fallthrough
		case txnKindPut:
			if len(rest) < 4 {
				return nil, errors.New("aria: wal txn value length truncated")
			}
			vlen := int(binary.LittleEndian.Uint32(rest[:4]))
			rest = rest[4:]
			if vlen < 0 || len(rest) < vlen {
				return nil, errors.New("aria: wal txn value overruns record")
			}
			w.value = rest[:vlen]
			rest = rest[vlen:]
		default:
			return nil, fmt.Errorf("aria: unknown wal txn write kind %d", kind)
		}
		writes = append(writes, w)
	}
	if len(rest) != 0 {
		return nil, errors.New("aria: wal txn record has trailing bytes")
	}
	return writes, nil
}

// snapMetaBytes is the per-pair metadata suffix a snapshot value
// carries: version (8, LE) || expiry deadline (8, LE). One synthetic
// pair with an empty key (impossible for user keys — ErrEmptyKey)
// additionally persists the store's version clock, so recovery resumes
// version assignment exactly where the snapshot left it.
const snapMetaBytes = 16

// encodeSnapValue appends the version/expiry suffix to a user value.
func encodeSnapValue(value []byte, ver uint64, exp int64) []byte {
	out := make([]byte, len(value)+snapMetaBytes)
	copy(out, value)
	binary.LittleEndian.PutUint64(out[len(value):], ver)
	binary.LittleEndian.PutUint64(out[len(value)+8:], uint64(exp))
	return out
}

// decodeSnapValue splits a snapshot pair's value back into the user
// value and its metadata.
func decodeSnapValue(v []byte) (value []byte, ver uint64, exp int64, err error) {
	if len(v) < snapMetaBytes {
		return nil, 0, 0, errors.New("aria: snapshot pair missing version metadata")
	}
	cut := len(v) - snapMetaBytes
	return v[:cut], binary.LittleEndian.Uint64(v[cut:]),
		int64(binary.LittleEndian.Uint64(v[cut+8:])), nil
}

// durableStore makes one single-enclave store crash-safe. All
// operations (reads included) serialize on mu, because the background
// checkpointer reads the inner store concurrently with live traffic
// and the engines model a single enclave thread.
type durableStore struct {
	inner  Store
	enc    *sgx.Enclave
	policy IntegrityPolicy

	mu     sync.Mutex
	log    *wal.Log
	sealer *seal.Sealer
	dir    string
	// keys shadows the live key set: hash-indexed schemes cannot
	// enumerate their contents, so the checkpointer iterates this set
	// (sorted, for deterministic snapshots) and Gets each key.
	keys            map[string]struct{}
	checkpointEvery int
	sinceCkpt       int
	// lastSnapCovered is the covered seq of the newest snapshot loaded
	// or written (valid when hasSnap). Checkpoints retain the previous
	// generation — snapshots and WAL records are only pruned up to this
	// value, never up to the snapshot just written — so recovery under
	// Quarantine always has an older snapshot plus the WAL above it to
	// fall back to when the newest snapshot is tampered.
	lastSnapCovered uint64
	hasSnap         bool

	// Cold tier state (Options.ColdCompress; see cold.go and DESIGN.md
	// §15). dirty holds keys written since the last segment checkpoint
	// (the next incremental segment's contents, deletes as tombstones);
	// touched holds keys accessed since the last checkpoint (the
	// demotion filter); cold holds the demoted keys themselves.
	coldCompress bool
	compactEvery int
	cold         map[string]coldRec
	coldDict     *compress.Dict
	dirty        map[string]struct{}
	touched      map[string]struct{}
	segNames     []string // current segment set, apply order
	segBytes     int64    // on-disk bytes of the current set
	setCovered   uint64   // covered seq of the current set (valid when hasSet)
	hasSet       bool
	coldResident int    // compressed bytes held in the cold area
	dictBytes    int    // serialized size of the newest dictionary
	coldHits     uint64 // accesses promoted out of the cold tier
	coldMisses   uint64 // read lookups past the cold tier that found nothing
	compRaw      uint64 // compressor input bytes (demotions + segments)
	compOut      uint64 // compressor output bytes
	compactions  uint64 // major compactions (full set rewrites)

	recovered   uint64 // records restored at Open (snapshot + replay)
	recFailures uint64 // tamper detections during recovery (Quarantine)
	checkpoints uint64
	ckptErr     error // last background checkpoint failure

	ckptC  chan struct{}
	stopC  chan struct{}
	wg     sync.WaitGroup
	closed bool

	// commitHook, when set, runs after every group of records commits
	// to the WAL (still under d.mu); the replication publisher uses it
	// to wake subscribers without polling.
	commitHook func()
}

// openDurable wraps inner with WAL + snapshot durability rooted at
// dir, running crash recovery first: load the newest valid snapshot,
// replay the WAL above it, stop cleanly at a torn tail, and route
// tampering through the integrity policy — FailStop fails the Open
// (wrapping ErrIntegrity, log left untouched as evidence), Quarantine
// salvages the valid prefix, counts the failure, and serves degraded.
func openDurable(inner Store, opts Options, dir string) (*durableStore, error) {
	if opts.MaxKeySize > maxWalKey {
		return nil, fmt.Errorf("aria: Options.DataDir requires MaxKeySize <= %d (got %d): longer keys do not fit the WAL record framing", maxWalKey, opts.MaxKeySize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("aria: create data dir: %w", err)
	}
	d := &durableStore{
		inner:           inner,
		enc:             enclaveOf(inner),
		policy:          opts.IntegrityPolicy,
		sealer:          seal.New(opts.Seed),
		dir:             dir,
		keys:            make(map[string]struct{}),
		checkpointEvery: opts.CheckpointEvery,
		coldCompress:    opts.ColdCompress,
		compactEvery:    opts.CompactEvery,
		ckptC:           make(chan struct{}, 1),
		stopC:           make(chan struct{}),
	}
	if d.coldCompress {
		if d.compactEvery <= 0 {
			d.compactEvery = defaultCompactEvery
		}
		d.cold = make(map[string]coldRec)
		d.dirty = make(map[string]struct{})
		d.touched = make(map[string]struct{})
	}

	// The semantics layer sits directly underneath: recovery restores
	// its per-key versions and expiry deadlines alongside the values.
	sm, ok := inner.(semantic)
	if !ok {
		return nil, fmt.Errorf("aria: durable store requires the semantics layer (got %T)", inner)
	}

	// 1. Newest valid recovery point. A directory can hold both segment
	// sets (cold-tier checkpoints) and raw snapshots — a lineage that
	// toggled ColdCompress across restarts — so recovery considers both
	// and applies whichever valid point covers more of the WAL.
	// Segment sets first: under Quarantine a tampered manifest or
	// member counts a failure and falls back to the next older set;
	// under FailStop it fails the Open.
	segState, segCovered, segClock, segNames, segOnDisk, haveSeg, err := d.recoverSegments(dir)
	if err != nil {
		return nil, err
	}

	// Then the newest valid snapshot — but only if it is newer than the
	// recovered set (wal.Snapshots lists newest first, so the first
	// snapshot at or below the set's covered seq ends the search).
	snaps, err := wal.Snapshots(dir)
	if err != nil {
		return nil, fmt.Errorf("aria: list snapshots: %w", err)
	}
	coveredSeq := uint64(0)
	usedSnap := false
	for _, path := range snaps {
		covered, pairs, rerr := wal.ReadSnapshot(path, d.sealer)
		if rerr != nil {
			if !errors.Is(rerr, wal.ErrTampered) {
				return nil, fmt.Errorf("aria: read snapshot: %w", rerr)
			}
			if d.policy != Quarantine {
				return nil, fmt.Errorf("%w: %w", ErrIntegrity, rerr)
			}
			d.recFailures++
			continue
		}
		if haveSeg && covered <= segCovered {
			break // the segment set is the newer recovery point
		}
		for _, p := range pairs {
			if len(p.Key) == 0 {
				// The synthetic version-clock pair (see snapMetaBytes).
				if len(p.Value) != 8 {
					return nil, errors.New("aria: snapshot version-clock pair malformed")
				}
				sm.setClockVersion(binary.LittleEndian.Uint64(p.Value))
				d.chargeSealIn(len(p.Value) + 2)
				continue
			}
			value, ver, exp, derr := decodeSnapValue(p.Value)
			if derr != nil {
				return nil, fmt.Errorf("aria: restore snapshot pair: %w", derr)
			}
			if err := sm.restorePair(p.Key, value, ver, exp); err != nil {
				return nil, fmt.Errorf("aria: restore snapshot pair: %w", err)
			}
			d.keys[string(p.Key)] = struct{}{}
			d.chargeSealIn(len(p.Key) + len(p.Value) + 2)
			d.recovered++
		}
		coveredSeq = covered
		d.lastSnapCovered, d.hasSnap = covered, true
		usedSnap = true
		break
	}
	if !usedSnap && haveSeg {
		sm.setClockVersion(segClock)
		segKeys := make([]string, 0, len(segState))
		for k := range segState {
			segKeys = append(segKeys, k)
		}
		sort.Strings(segKeys)
		for _, k := range segKeys {
			e := segState[k]
			if err := sm.restorePair([]byte(k), e.value, e.ver, e.exp); err != nil {
				return nil, fmt.Errorf("aria: restore segment pair: %w", err)
			}
			d.keys[k] = struct{}{}
			d.recovered++
		}
		coveredSeq = segCovered
		d.segNames, d.segBytes = segNames, segOnDisk
		d.setCovered, d.hasSet = segCovered, true
	}

	// 2. WAL replay above the snapshot.
	log, err := wal.Open(wal.Options{Dir: dir, Sealer: d.sealer, Fsync: opts.Fsync})
	if err != nil {
		return nil, fmt.Errorf("aria: open wal: %w", err)
	}
	replay := func(seq uint64, payload []byte) error {
		op, key, value, derr := decodeWalRecord(payload)
		if derr != nil {
			// An undecodable payload authenticated correctly, so it is
			// a logic-level corruption, not tampering: fail regardless
			// of policy rather than guess.
			return derr
		}
		d.chargeSealIn(len(payload))
		switch op {
		case walOpPut:
			if err := inner.Put(key, value); err != nil {
				return fmt.Errorf("aria: replay put: %w", err)
			}
			d.noteWrite(string(key))
		case walOpDelete:
			if err := inner.Delete(key); err != nil && !errors.Is(err, ErrNotFound) {
				return fmt.Errorf("aria: replay delete: %w", err)
			}
			d.noteDelete(string(key))
		case walOpPutTTL:
			exp, v, derr := splitTTLBody(value)
			if derr != nil {
				return derr
			}
			if err := sm.putExpireAbs(key, v, exp); err != nil {
				return fmt.Errorf("aria: replay ttl put: %w", err)
			}
			d.noteWrite(string(key))
		case walOpTxn:
			writes, derr := decodeWalTxnBody(value)
			if derr != nil {
				return derr
			}
			if err := sm.applyTxnWrites(writes); err != nil {
				return fmt.Errorf("aria: replay txn: %w", err)
			}
			for i := range writes {
				if writes[i].del {
					d.noteDelete(string(writes[i].key))
				} else {
					d.noteWrite(string(writes[i].key))
				}
			}
		default:
			return fmt.Errorf("aria: unknown wal opcode %d", op)
		}
		d.recovered++
		return nil
	}
	_, err = log.Recover(coveredSeq, replay)
	if err != nil {
		if !errors.Is(err, wal.ErrTampered) {
			log.Close()
			return nil, err
		}
		if d.policy != Quarantine {
			log.Close()
			return nil, fmt.Errorf("%w: %w", ErrIntegrity, err)
		}
		// Quarantine: salvage the verified prefix and serve degraded.
		// Records past the first tampered byte are untrusted and lost.
		d.recFailures++
		if terr := log.TruncateTail(); terr != nil {
			log.Close()
			return nil, fmt.Errorf("aria: salvage wal: %w", terr)
		}
	}
	d.log = log

	if d.checkpointEvery > 0 {
		d.wg.Add(1)
		go d.checkpointLoop()
	}
	return d, nil
}

// checkpointLoop runs automatic checkpoints triggered by record count;
// it is the only goroutine touching the store besides callers, and it
// synchronizes on d.mu like everyone else.
func (d *durableStore) checkpointLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stopC:
			return
		case <-d.ckptC:
			d.mu.Lock()
			if !d.closed {
				if err := d.checkpointLocked(); err != nil {
					// Remembered, surfaced by Close; the next
					// checkpoint retries, and the WAL still holds
					// every record, so no durability is lost.
					d.ckptErr = err
				}
			}
			d.mu.Unlock()
		}
	}
}

// chargeAppend prices one durable append: seal crypto per record,
// one boundary crossing for the group, one OCALL per fsync issued.
func (d *durableStore) chargeAppend(payloadBytes []int, res wal.AppendResult) {
	if d.enc == nil {
		return
	}
	for _, n := range payloadBytes {
		d.enc.ChargeCTR(n)
		d.enc.ChargeMAC(n + seal.Overhead)
	}
	d.enc.SealOut(res.Bytes)
	for i := 0; i < res.Fsyncs; i++ {
		d.enc.Ocall()
	}
}

// chargeSealIn prices unsealing one recovered record.
func (d *durableStore) chargeSealIn(payloadBytes int) {
	if d.enc == nil {
		return
	}
	d.enc.SealIn(payloadBytes + seal.Overhead)
	d.enc.ChargeCTR(payloadBytes)
	d.enc.ChargeMAC(payloadBytes + seal.Overhead)
}

// logRecords appends the payloads as one group commit, charges the
// simulator, and arms the automatic checkpointer.
func (d *durableStore) logRecords(payloads ...[]byte) error {
	sizes := make([]int, len(payloads))
	for i, p := range payloads {
		sizes[i] = len(p)
	}
	res, err := d.log.Append(payloads...)
	if err != nil {
		return fmt.Errorf("aria: wal append: %w", err)
	}
	d.chargeAppend(sizes, res)
	d.sinceCkpt += len(payloads)
	if d.checkpointEvery > 0 && d.sinceCkpt >= d.checkpointEvery {
		d.sinceCkpt = 0
		select {
		case d.ckptC <- struct{}{}:
		default: // a checkpoint is already pending
		}
	}
	if d.commitHook != nil {
		d.commitHook()
	}
	return nil
}

// WALShards implements Replicable: a single durable store is one
// lineage.
func (d *durableStore) WALShards() int { return 1 }

// WALShardDir implements Replicable: the lineage's directory.
func (d *durableStore) WALShardDir(int) string { return d.dir }

// WALShardNextSeq implements Replicable: the next sequence number the
// lineage will assign (last committed + 1).
func (d *durableStore) WALShardNextSeq(int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.NextSeq()
}

// SetCommitHook implements Replicable. The hook runs under the store's
// write lock and must not block.
func (d *durableStore) SetCommitHook(fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.commitHook = fn
}

// Put implements Store: the record is encoded first (so an
// unloggable key is rejected before it touches memory), then the
// in-memory write must succeed, then the record is sealed and appended
// (committed = applied + logged).
func (d *durableStore) Put(key, value []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, err := encodeWalRecord(walOpPut, key, value)
	if err != nil {
		return err
	}
	if err := d.ensureResidentLocked(key, false); err != nil {
		return err
	}
	if err := d.inner.Put(key, value); err != nil {
		return err
	}
	if err := d.logRecords(rec); err != nil {
		return err
	}
	d.noteWrite(string(key))
	return nil
}

// Get implements Store (reads never touch the WAL, but may promote the
// key out of the cold tier).
func (d *durableStore) Get(key []byte) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensureResidentLocked(key, true); err != nil {
		return nil, err
	}
	return d.inner.Get(key)
}

// GetV implements Store (reads never touch the WAL, but may promote the
// key out of the cold tier).
func (d *durableStore) GetV(key []byte) ([]byte, uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensureResidentLocked(key, true); err != nil {
		return nil, 0, err
	}
	return d.inner.GetV(key)
}

// CompareAndSwap implements Store. A successful CAS logs a plain put
// record: replay re-applies writes in commit order, so the semantics
// layer reassigns the identical version without persisting it per
// record.
func (d *durableStore) CompareAndSwap(key, value []byte, expect uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, err := encodeWalRecord(walOpPut, key, value)
	if err != nil {
		return err
	}
	if err := d.ensureResidentLocked(key, false); err != nil {
		return err
	}
	if err := d.inner.CompareAndSwap(key, value, expect); err != nil {
		return err
	}
	if err := d.logRecords(rec); err != nil {
		return err
	}
	d.noteWrite(string(key))
	return nil
}

// PutTTL implements Store: the expiry deadline is resolved to an
// absolute timestamp once, applied, and sealed into the WAL record, so
// recovery and replicas reconstruct exactly the committed deadline.
func (d *durableStore) PutTTL(key, value []byte, ttl time.Duration) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	sm := d.inner.(semantic)
	var exp int64
	if ttl > 0 {
		exp = sm.nowNanos() + int64(ttl)
	}
	return d.putExpireAbsLocked(key, value, exp)
}

// putExpireAbsLocked applies and logs a put with an already-absolute
// deadline (0 = plain put); the replica apply path enters here too.
func (d *durableStore) putExpireAbsLocked(key, value []byte, exp int64) error {
	var rec []byte
	var err error
	if exp == 0 {
		rec, err = encodeWalRecord(walOpPut, key, value)
	} else {
		rec, err = encodeWalTTLRecord(key, exp, value)
	}
	if err != nil {
		return err
	}
	if err := d.ensureResidentLocked(key, false); err != nil {
		return err
	}
	if err := d.inner.(semantic).putExpireAbs(key, value, exp); err != nil {
		return err
	}
	if err := d.logRecords(rec); err != nil {
		return err
	}
	d.noteWrite(string(key))
	return nil
}

// TxnCommit implements Store: validate and apply through the semantics
// layer, then seal the whole write set as ONE group-commit record. A
// crash can only leave that record wholly present or wholly absent, so
// recovery never sees a partial transaction.
func (d *durableStore) TxnCommit(ops []TxnOp) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	sm := d.inner.(semantic)
	for i := range ops {
		if err := d.ensureResidentLocked(ops[i].Key, false); err != nil {
			return err
		}
	}
	writes, err := sm.resolveTxn(ops)
	if err != nil {
		return err
	}
	// Encode first so an unloggable transaction is rejected before any
	// write applies.
	var rec []byte
	if len(writes) > 0 {
		if rec, err = encodeWalTxnRecord(writes); err != nil {
			return err
		}
	}
	if err := sm.commitTxn(ops, writes); err != nil {
		return err
	}
	if len(writes) == 0 {
		return nil // validation-only commit: nothing to persist
	}
	if err := d.logRecords(rec); err != nil {
		return err
	}
	for i := range writes {
		if writes[i].del {
			d.noteDelete(string(writes[i].key))
		} else {
			d.noteWrite(string(writes[i].key))
		}
	}
	return nil
}

// Delete implements Store.
func (d *durableStore) Delete(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, err := encodeWalRecord(walOpDelete, key, nil)
	if err != nil {
		return err
	}
	if err := d.ensureResidentLocked(key, false); err != nil {
		return err
	}
	if err := d.inner.Delete(key); err != nil {
		return err
	}
	if err := d.logRecords(rec); err != nil {
		return err
	}
	d.noteDelete(string(key))
	return nil
}

// MGet implements Store.
func (d *durableStore) MGet(keys [][]byte) ([][]byte, []error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.coldCompress {
		for _, k := range keys {
			if err := d.ensureResidentLocked(k, true); err != nil {
				errs := make([]error, len(keys))
				for i := range errs {
					errs[i] = err
				}
				return make([][]byte, len(keys)), errs
			}
		}
	}
	return d.inner.MGet(keys)
}

// MPut implements Store: the batch's successful writes are sealed and
// appended as one group commit — one segment append, one fsync under
// FsyncBatch — which is where batching's edge amortization carries
// over to durability.
func (d *durableStore) MPut(pairs []KV) []error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.coldCompress {
		for i := range pairs {
			if err := d.ensureResidentLocked(pairs[i].Key, false); err != nil {
				out := make([]error, len(pairs))
				for j := range out {
					out[j] = err
				}
				return out
			}
		}
	}
	errs := d.inner.MPut(pairs)
	recs := make([][]byte, 0, len(pairs))
	ok := make([]int, 0, len(pairs))
	for i, p := range pairs {
		if errs == nil || errs[i] == nil {
			rec, err := encodeWalRecord(walOpPut, p.Key, p.Value)
			if err != nil {
				// Unreachable while openDurable caps MaxKeySize, kept
				// as a positional error rather than silent corruption.
				errs = batchErr(errs, len(pairs), i, err)
				continue
			}
			recs = append(recs, rec)
			ok = append(ok, i)
		}
	}
	if len(recs) == 0 {
		return errs
	}
	if err := d.logRecords(recs...); err != nil {
		// The writes applied in memory but are not durable: report the
		// append failure at every position that would otherwise succeed.
		for _, i := range ok {
			errs = batchErr(errs, len(pairs), i, err)
		}
		return errs
	}
	for _, i := range ok {
		d.noteWrite(string(pairs[i].Key))
	}
	return errs
}

// MDelete implements Store, with the same group commit as MPut.
func (d *durableStore) MDelete(keys [][]byte) []error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.coldCompress {
		for _, k := range keys {
			if err := d.ensureResidentLocked(k, false); err != nil {
				out := make([]error, len(keys))
				for j := range out {
					out[j] = err
				}
				return out
			}
		}
	}
	errs := d.inner.MDelete(keys)
	recs := make([][]byte, 0, len(keys))
	ok := make([]int, 0, len(keys))
	for i, k := range keys {
		if errs == nil || errs[i] == nil {
			rec, err := encodeWalRecord(walOpDelete, k, nil)
			if err != nil {
				errs = batchErr(errs, len(keys), i, err)
				continue
			}
			recs = append(recs, rec)
			ok = append(ok, i)
		}
	}
	if len(recs) == 0 {
		return errs
	}
	if err := d.logRecords(recs...); err != nil {
		for _, i := range ok {
			errs = batchErr(errs, len(keys), i, err)
		}
		return errs
	}
	for _, i := range ok {
		d.noteDelete(string(keys[i]))
	}
	return errs
}

// putExpireAbs implements expiryApplier (the replica apply path).
func (d *durableStore) putExpireAbs(key, value []byte, exp int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.putExpireAbsLocked(key, value, exp)
}

// applyTxnWrites implements txnApplier: apply an already-validated
// transaction and re-seal it as one record, so a replica's lineage
// carries the same atomic group commit the primary's does.
func (d *durableStore) applyTxnWrites(writes []txnWrite) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, err := encodeWalTxnRecord(writes)
	if err != nil {
		return err
	}
	for i := range writes {
		if err := d.ensureResidentLocked(writes[i].key, false); err != nil {
			return err
		}
	}
	if err := d.inner.(semantic).applyTxnWrites(writes); err != nil {
		return err
	}
	if err := d.logRecords(rec); err != nil {
		return err
	}
	for i := range writes {
		if writes[i].del {
			d.noteDelete(string(writes[i].key))
		} else {
			d.noteWrite(string(writes[i].key))
		}
	}
	return nil
}

// Checkpoint implements Durable.
func (d *durableStore) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("aria: checkpoint on closed store")
	}
	return d.checkpointLocked()
}

// checkpointLocked rotates the WAL so the snapshot boundary aligns
// with a segment boundary, seals the keyspace into an atomic snapshot,
// and prunes what the *previous* snapshot generation no longer needs:
// snapshots older than the previous one and WAL segments at or below
// its covered seq. Keeping two generations means a tampered newest
// snapshot still has a working fallback (older snapshot + retained WAL)
// under Quarantine, instead of silently wiping the store. Callers hold
// d.mu.
func (d *durableStore) checkpointLocked() error {
	if d.coldCompress {
		// The cold tier replaces raw snapshots with incremental
		// compressed segments and a set manifest (cold.go).
		return d.checkpointColdLocked()
	}
	covered := d.log.NextSeq() - 1
	if d.hasSnap && covered == d.lastSnapCovered {
		// No record was logged since the last snapshot: re-sealing an
		// identical snapshot would only churn the files.
		return nil
	}
	if err := d.log.Rotate(); err != nil {
		return fmt.Errorf("aria: checkpoint rotate: %w", err)
	}
	names := make([]string, 0, len(d.keys))
	for k := range d.keys {
		names = append(names, k)
	}
	sort.Strings(names)
	sm := d.inner.(semantic)
	pairs := make([]wal.Pair, 0, len(names)+1)
	// The synthetic version-clock pair leads (empty key — impossible
	// for user keys), so recovery restores the clock before any record
	// above the snapshot replays.
	var clock [8]byte
	binary.LittleEndian.PutUint64(clock[:], sm.clockVersion())
	pairs = append(pairs, wal.Pair{Value: clock[:]})
	total := 0
	for _, k := range names {
		v, err := d.inner.Get([]byte(k))
		switch {
		case err == nil:
			ver, exp := sm.metaOf([]byte(k))
			pairs = append(pairs, wal.Pair{Key: []byte(k), Value: encodeSnapValue(v, ver, exp)})
			total += len(k) + len(v) + snapMetaBytes + 2
		case errors.Is(err, ErrNotFound):
			// The shadow set can briefly overapproximate; skip.
		case errors.Is(err, ErrIntegrity) && d.policy == Quarantine:
			// A poisoned key has no trustworthy value to persist; the
			// snapshot carries the surviving keys and the store stays
			// degraded.
		default:
			return fmt.Errorf("aria: checkpoint read %q: %w", k, err)
		}
	}
	bytes, err := wal.WriteSnapshot(d.dir, d.sealer, covered, pairs)
	if err != nil {
		return fmt.Errorf("aria: write snapshot: %w", err)
	}
	if d.enc != nil {
		for _, p := range pairs {
			d.enc.ChargeCTR(len(p.Key) + len(p.Value) + 2)
			d.enc.ChargeMAC(len(p.Key) + len(p.Value) + 2 + seal.Overhead)
		}
		d.enc.SealOut(int(bytes))
		d.enc.Ocall() // the snapshot fsync
	}
	// Prune up to the previous generation only. On the first checkpoint
	// there is no previous snapshot: the floor is 0, so the full WAL is
	// retained and remains a complete fallback on its own.
	keep := uint64(0)
	if d.hasSnap {
		keep = d.lastSnapCovered
	}
	if err := wal.PruneSnapshots(d.dir, keep); err != nil {
		return fmt.Errorf("aria: prune snapshots: %w", err)
	}
	if err := d.log.TruncateThrough(keep); err != nil {
		return fmt.Errorf("aria: truncate wal: %w", err)
	}
	d.lastSnapCovered, d.hasSnap = covered, true
	d.checkpoints++
	d.sinceCkpt = 0
	return nil
}

// Close implements Durable: stop the checkpointer, flush, close. It
// returns the last background checkpoint failure, if any, so operators
// see it even without metrics.
func (d *durableStore) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.stopC)
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	err := d.log.Sync()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	// Stop the semantics layer's background sweeper, if one runs.
	if c, ok := d.inner.(Durable); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil {
		err = d.ckptErr
	}
	return err
}

// Stats implements Store, adding the durability counters.
func (d *durableStore) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.inner.Stats()
	ls := d.log.Stats()
	st.WALAppends = ls.Appends
	st.WALRecords = ls.Records
	st.WALBytes = ls.Bytes
	st.WALFsyncs = ls.Fsyncs
	st.Checkpoints = d.checkpoints
	st.RecoveredRecords = d.recovered
	if d.coldCompress {
		// The inner store only counts resident keys; the shadow set is
		// the live keyspace once demotion is in play.
		st.Keys = len(d.keys)
	}
	st.ColdKeys = len(d.cold)
	st.ColdBytes = d.coldResident
	st.ColdHits = d.coldHits
	st.ColdMisses = d.coldMisses
	st.CompRawBytes = d.compRaw
	st.CompBytes = d.compOut
	st.CompDictBytes = d.dictBytes
	st.Segments = len(d.segNames)
	st.SegmentBytes = d.segBytes
	st.Compactions = d.compactions
	// Tampering found during recovery counts like tampering found live:
	// it flips Health() to degraded under Quarantine.
	st.IntegrityFailures += d.recFailures
	return st
}

// VerifyIntegrity implements Store.
func (d *durableStore) VerifyIntegrity() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.VerifyIntegrity()
}

// SetMeasuring implements Store.
func (d *durableStore) SetMeasuring(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inner.SetMeasuring(on)
}

// ResetStats implements Store.
func (d *durableStore) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inner.ResetStats()
}

// Scan implements Ranger when the inner store does.
func (d *durableStore) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.inner.(Ranger)
	if !ok {
		return ErrNoScan
	}
	if err := d.ensureResidentRangeLocked(start, end); err != nil {
		return err
	}
	return r.Scan(start, end, fn)
}

// ChargeEcall implements EdgeCaller.
func (d *durableStore) ChargeEcall() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ec, ok := d.inner.(EdgeCaller); ok {
		ec.ChargeEcall()
	}
}

// The Corrupter surface passes through so attack demos target the
// in-memory arenas of a durable store unchanged; the on-disk files are
// attacked directly through the filesystem instead.

// UntrustedSize implements Corrupter.
func (d *durableStore) UntrustedSize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.inner.(Corrupter); ok {
		return c.UntrustedSize()
	}
	return 0
}

// FlipUntrustedByte implements Corrupter.
func (d *durableStore) FlipUntrustedByte(offset int, mask byte) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.inner.(Corrupter); ok {
		return c.FlipUntrustedByte(offset, mask)
	}
	return false
}

// SnapshotUntrusted implements Corrupter.
func (d *durableStore) SnapshotUntrusted() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.inner.(Corrupter); ok {
		return c.SnapshotUntrusted()
	}
	return nil
}

// RestoreUntrusted implements Corrupter.
func (d *durableStore) RestoreUntrusted(snap []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.inner.(Corrupter); ok {
		c.RestoreUntrusted(snap)
	}
}
