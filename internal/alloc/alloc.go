// Package alloc implements Aria's user-space heap allocator for untrusted
// memory (paper §V-B). Its purpose is to let enclave code allocate untrusted
// memory for KV entries without an OCALL per allocation.
//
// Layout follows the paper: the untrusted pool is cut into 4 MB chunks, each
// chunk is cut into equal-size data blocks, and chunks are grouped into size
// classes. A per-chunk occupancy bitmap lives in the EPC so a malicious host
// cannot corrupt allocator metadata undetected, while the free list (an
// intrusive linked list threaded through the free blocks themselves) lives in
// untrusted memory to save EPC space. Because chunks are 4 MB-aligned, the
// block index of any pointer is pure address arithmetic, so each bitmap
// check costs one enclave access.
//
// A Heap can also run in OCALL mode, modelling the naive design (AriaBase in
// Figure 12) that exits the enclave for every malloc/free.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"

	"github.com/ariakv/aria/internal/sgx"
)

// ChunkSize is the allocation granule requested from the OS pool.
const ChunkSize = 4 << 20

// minBlock is the smallest data block handed out.
const minBlock = 32

// maxBlock is the largest size-class block; larger requests get whole chunks.
const maxBlock = 2 << 20

// freeNil terminates the intrusive free list.
const freeNil = 0xffffffff

// ErrCorrupt reports allocator metadata corruption: the untrusted free list
// disagrees with the trusted bitmap, which only happens under attack (or a
// double free by the caller, which the bitmap also catches).
var ErrCorrupt = errors.New("alloc: untrusted allocator metadata corrupted")

// ErrBadFree reports a Free of a pointer this heap never returned.
var ErrBadFree = errors.New("alloc: free of unallocated pointer")

type chunk struct {
	base      sgx.UPtr
	blockSize int
	nblocks   int
	used      int
	bitmap    sgx.EPtr // nblocks bits, resident in the EPC
	freeHead  uint32   // index of first free block; list threaded untrusted
	class     int
	nextAvail int // next chunk index in the class's avail list, -1 = none
	inAvail   bool
}

// Stats reports allocator occupancy.
type Stats struct {
	Chunks       int
	LiveBlocks   int
	LiveBytes    int
	EPCBytes     int // bitmap bytes resident in the enclave
	LargeAllocs  int
	FailedChecks int
}

// Heap is a user-space allocator over one enclave's untrusted arena.
type Heap struct {
	enc       *sgx.Enclave
	ocallMode bool

	chunks   []*chunk
	byBase   map[sgx.UPtr]int // chunk base -> index in chunks
	avail    []int            // head of avail chunk list per class, -1 = none
	large    map[sgx.UPtr]int // large allocation -> chunk count
	classes  []int
	stats    Stats
	liveByte int
}

// New creates a heap on the enclave's untrusted arena. With ocallMode set,
// every Alloc and Free additionally pays one enclave exit, modelling
// malloc/free forwarded to the host.
func New(enc *sgx.Enclave, ocallMode bool) *Heap {
	h := &Heap{
		enc:       enc,
		ocallMode: ocallMode,
		byBase:    make(map[sgx.UPtr]int),
		large:     make(map[sgx.UPtr]int),
	}
	for sz := minBlock; sz <= maxBlock; sz *= 2 {
		h.classes = append(h.classes, sz)
	}
	h.avail = make([]int, len(h.classes))
	for i := range h.avail {
		h.avail[i] = -1
	}
	return h
}

// classFor returns the size class index for a request of n bytes, or -1 when
// the request needs the large-allocation path.
func (h *Heap) classFor(n int) int {
	if n > maxBlock {
		return -1
	}
	if n < minBlock {
		n = minBlock
	}
	// Round up to the next power of two and map to the class index.
	c := bits.Len(uint(n - 1))
	idx := c - bits.Len(uint(minBlock-1))
	if h.classes[idx] < n {
		idx++
	}
	return idx
}

// Alloc returns an untrusted pointer to at least n bytes.
func (h *Heap) Alloc(n int) (sgx.UPtr, error) {
	if n <= 0 {
		return sgx.NilU, fmt.Errorf("alloc: invalid size %d", n)
	}
	if h.ocallMode {
		h.enc.Ocall()
	}
	cls := h.classFor(n)
	if cls < 0 {
		return h.allocLarge(n)
	}
	ci := h.avail[cls]
	if ci < 0 {
		ci = h.newChunk(cls)
	}
	c := h.chunks[ci]
	// Pop the head of the untrusted free list.
	idx := c.freeHead
	if idx == freeNil || int(idx) >= c.nblocks {
		h.stats.FailedChecks++
		return sgx.NilU, ErrCorrupt
	}
	p := c.base + sgx.UPtr(int(idx)*c.blockSize)
	next := h.readFreeLink(p)
	// Validate against the trusted bitmap before trusting the pointer.
	if h.bitTest(c, int(idx)) {
		h.stats.FailedChecks++
		return sgx.NilU, ErrCorrupt
	}
	h.bitSet(c, int(idx), true)
	c.freeHead = next
	c.used++
	if c.used == c.nblocks {
		h.popAvail(cls)
	}
	h.stats.LiveBlocks++
	h.liveByte += c.blockSize
	return p, nil
}

// Free returns p to the heap. The chunk and block size are recovered from
// the 4 MB alignment of chunk bases.
func (h *Heap) Free(p sgx.UPtr) error {
	if h.ocallMode {
		h.enc.Ocall()
	}
	if n, ok := h.large[p]; ok {
		delete(h.large, p)
		h.stats.LargeAllocs--
		h.stats.LiveBlocks--
		h.liveByte -= n * ChunkSize
		return nil
	}
	base := p &^ (ChunkSize - 1)
	ci, ok := h.byBase[base]
	if !ok {
		return ErrBadFree
	}
	c := h.chunks[ci]
	off := int(p - c.base)
	if off%c.blockSize != 0 {
		return ErrBadFree
	}
	idx := off / c.blockSize
	if idx >= c.nblocks {
		return ErrBadFree
	}
	if !h.bitTest(c, idx) {
		h.stats.FailedChecks++
		return ErrCorrupt // double free or forged pointer
	}
	h.bitSet(c, idx, false)
	h.writeFreeLink(p, c.freeHead)
	c.freeHead = uint32(idx)
	c.used--
	if !c.inAvail {
		h.pushAvail(c.class, ci)
	}
	h.stats.LiveBlocks--
	h.liveByte -= c.blockSize
	return nil
}

// BlockSize reports the usable size of the block at p (>= the requested
// size), or 0 if p is unknown. The engine uses it to decide whether an
// update fits in place.
func (h *Heap) BlockSize(p sgx.UPtr) int {
	if n, ok := h.large[p]; ok {
		return n * ChunkSize
	}
	base := p &^ (ChunkSize - 1)
	ci, ok := h.byBase[base]
	if !ok {
		return 0
	}
	return h.chunks[ci].blockSize
}

// Stats returns an occupancy snapshot.
func (h *Heap) Stats() Stats {
	s := h.stats
	s.Chunks = len(h.chunks)
	s.LiveBytes = h.liveByte
	return s
}

func (h *Heap) allocLarge(n int) (sgx.UPtr, error) {
	nchunks := (n + ChunkSize - 1) / ChunkSize
	p := h.enc.UAlloc(nchunks*ChunkSize, ChunkSize)
	h.large[p] = nchunks
	h.stats.LargeAllocs++
	h.stats.LiveBlocks++
	h.liveByte += nchunks * ChunkSize
	return p, nil
}

// newChunk carves a fresh 4 MB chunk for class cls and links every block
// into the untrusted free list.
func (h *Heap) newChunk(cls int) int {
	blockSize := h.classes[cls]
	base := h.enc.UAlloc(ChunkSize, ChunkSize)
	nblocks := ChunkSize / blockSize
	bmBytes := (nblocks + 7) / 8
	c := &chunk{
		base:      base,
		blockSize: blockSize,
		nblocks:   nblocks,
		bitmap:    h.enc.EAlloc(bmBytes, 8),
		freeHead:  0,
		class:     cls,
		nextAvail: -1,
	}
	h.stats.EPCBytes += bmBytes
	// Thread the intrusive free list through untrusted memory. This is
	// setup work on a fresh chunk; charge it as one streaming pass.
	for i := 0; i < nblocks-1; i++ {
		putU32(h.enc.UBytesRaw(base+sgx.UPtr(i*blockSize), 4), uint32(i+1))
	}
	putU32(h.enc.UBytesRaw(base+sgx.UPtr((nblocks-1)*blockSize), 4), freeNil)
	h.enc.UTouch(base, nblocks*4)
	ci := len(h.chunks)
	h.chunks = append(h.chunks, c)
	h.byBase[base] = ci
	h.pushAvail(cls, ci)
	return ci
}

func (h *Heap) pushAvail(cls, ci int) {
	c := h.chunks[ci]
	c.nextAvail = h.avail[cls]
	c.inAvail = true
	h.avail[cls] = ci
}

func (h *Heap) popAvail(cls int) {
	ci := h.avail[cls]
	c := h.chunks[ci]
	h.avail[cls] = c.nextAvail
	c.nextAvail = -1
	c.inAvail = false
}

func (h *Heap) readFreeLink(p sgx.UPtr) uint32 {
	b := h.enc.UBytes(p, 4)
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (h *Heap) writeFreeLink(p sgx.UPtr, v uint32) {
	putU32(h.enc.UBytes(p, 4), v)
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// bitTest reads one bit of the trusted bitmap, charging one EPC access.
func (h *Heap) bitTest(c *chunk, idx int) bool {
	b := h.enc.EBytes(c.bitmap+sgx.EPtr(idx/8), 1)
	return b[0]&(1<<(idx%8)) != 0
}

func (h *Heap) bitSet(c *chunk, idx int, v bool) {
	b := h.enc.EBytes(c.bitmap+sgx.EPtr(idx/8), 1)
	if v {
		b[0] |= 1 << (idx % 8)
	} else {
		b[0] &^= 1 << (idx % 8)
	}
}

// CorruptFreeListForTest overwrites the free-list head link of the chunk
// containing p with a bogus index, simulating a malicious host rewriting
// allocator metadata. Tests then assert that Alloc detects the attack via
// the trusted bitmap.
func (h *Heap) CorruptFreeListForTest(p sgx.UPtr, bogus uint32) {
	base := p &^ (ChunkSize - 1)
	ci, ok := h.byBase[base]
	if !ok {
		panic("alloc: unknown chunk")
	}
	c := h.chunks[ci]
	if c.freeHead == freeNil {
		panic("alloc: chunk has no free blocks to corrupt")
	}
	c.freeHead = bogus
}
