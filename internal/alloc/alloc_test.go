package alloc

import (
	"testing"
	"testing/quick"

	"github.com/ariakv/aria/internal/sgx"
)

func newHeap(t *testing.T) (*Heap, *sgx.Enclave) {
	t.Helper()
	enc := sgx.New(sgx.Config{EPCBytes: 8 << 20})
	return New(enc, false), enc
}

func TestAllocFreeRoundTrip(t *testing.T) {
	h, enc := newHeap(t)
	p, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	copy(enc.UBytesRaw(p, 5), "hello")
	if got := h.Stats().LiveBlocks; got != 1 {
		t.Errorf("live blocks = %d, want 1", got)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if got := h.Stats().LiveBlocks; got != 0 {
		t.Errorf("live blocks after free = %d, want 0", got)
	}
}

func TestSizeClassRounding(t *testing.T) {
	h, _ := newHeap(t)
	cases := []struct{ req, want int }{
		{1, 32}, {32, 32}, {33, 64}, {64, 64}, {65, 128},
		{100, 128}, {512, 512}, {513, 1024}, {4096, 4096},
		{maxBlock, maxBlock},
	}
	for _, tc := range cases {
		p, err := h.Alloc(tc.req)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", tc.req, err)
		}
		if got := h.BlockSize(p); got != tc.want {
			t.Errorf("Alloc(%d) landed in class %d, want %d", tc.req, got, tc.want)
		}
	}
}

func TestLargeAllocation(t *testing.T) {
	h, _ := newHeap(t)
	p, err := h.Alloc(5 << 20) // spans two chunks
	if err != nil {
		t.Fatal(err)
	}
	if p%ChunkSize != 0 {
		t.Errorf("large allocation not chunk-aligned: %d", p)
	}
	if got := h.BlockSize(p); got != 2*ChunkSize {
		t.Errorf("large BlockSize = %d, want %d", got, 2*ChunkSize)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestNoOverlapProperty(t *testing.T) {
	h, _ := newHeap(t)
	type span struct {
		p sgx.UPtr
		n int
	}
	var live []span
	overlaps := func(a, b span) bool {
		return a.p < b.p+sgx.UPtr(b.n) && b.p < a.p+sgx.UPtr(a.n)
	}
	check := func(sz uint16, freeIdx uint8, doFree bool) bool {
		n := int(sz%2000) + 1
		p, err := h.Alloc(n)
		if err != nil {
			return false
		}
		s := span{p, h.BlockSize(p)}
		for _, o := range live {
			if overlaps(s, o) {
				return false
			}
		}
		live = append(live, s)
		if doFree && len(live) > 0 {
			i := int(freeIdx) % len(live)
			if err := h.Free(live[i].p); err != nil {
				return false
			}
			live = append(live[:i], live[i+1:]...)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestReuseAfterFree(t *testing.T) {
	h, _ := newHeap(t)
	p1, _ := h.Alloc(64)
	if err := h.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, _ := h.Alloc(64)
	if p1 != p2 {
		t.Errorf("freed block not reused: got %d, want %d", p2, p1)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	h, _ := newHeap(t)
	p, _ := h.Alloc(64)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != ErrCorrupt {
		t.Errorf("double free error = %v, want ErrCorrupt", err)
	}
}

func TestBadFreeDetected(t *testing.T) {
	h, _ := newHeap(t)
	p, _ := h.Alloc(64)
	if err := h.Free(p + 1); err != ErrBadFree {
		t.Errorf("misaligned free error = %v, want ErrBadFree", err)
	}
	if err := h.Free(sgx.UPtr(3 * ChunkSize)); err != ErrBadFree {
		t.Errorf("unknown-chunk free error = %v, want ErrBadFree", err)
	}
}

func TestFreeListAttackDetected(t *testing.T) {
	h, _ := newHeap(t)
	p1, _ := h.Alloc(64) // allocated block index 0
	_, _ = h.Alloc(64)
	// A malicious host points the free list at the *allocated* block p1,
	// hoping the allocator hands out overlapping memory.
	h.CorruptFreeListForTest(p1, 0)
	if _, err := h.Alloc(64); err != ErrCorrupt {
		t.Errorf("free-list attack error = %v, want ErrCorrupt", err)
	}
	if h.Stats().FailedChecks == 0 {
		t.Error("attack not counted in FailedChecks")
	}
}

func TestChunkExhaustionGrowsNewChunk(t *testing.T) {
	h, _ := newHeap(t)
	per := ChunkSize / maxBlock
	for i := 0; i < per+1; i++ {
		if _, err := h.Alloc(maxBlock); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if got := h.Stats().Chunks; got != 2 {
		t.Errorf("chunks = %d, want 2", got)
	}
}

func TestOcallModeChargesEdgeCalls(t *testing.T) {
	enc := sgx.New(sgx.Config{EPCBytes: 8 << 20})
	h := New(enc, true)
	enc.ResetStats()
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if got := enc.Stats().Ocalls; got != 2 {
		t.Errorf("ocalls = %d, want 2 (one per alloc, one per free)", got)
	}
	// Non-OCALL mode must not exit the enclave.
	h2, enc2 := newHeap(t)
	enc2.ResetStats()
	p2, _ := h2.Alloc(64)
	_ = h2.Free(p2)
	if got := enc2.Stats().Ocalls; got != 0 {
		t.Errorf("heap-allocator mode made %d ocalls, want 0", got)
	}
}

func TestEPCFootprintIsBitmapOnly(t *testing.T) {
	h, _ := newHeap(t)
	if _, err := h.Alloc(32); err != nil {
		t.Fatal(err)
	}
	nblocks := ChunkSize / 32
	wantBytes := nblocks / 8
	if got := h.Stats().EPCBytes; got != wantBytes {
		t.Errorf("EPC bytes = %d, want %d (one bit per block)", got, wantBytes)
	}
}

func TestInvalidSizeRejected(t *testing.T) {
	h, _ := newHeap(t)
	if _, err := h.Alloc(0); err == nil {
		t.Error("Alloc(0) succeeded")
	}
	if _, err := h.Alloc(-5); err == nil {
		t.Error("Alloc(-5) succeeded")
	}
}
