// Command docslint fails when an exported identifier in the given
// directories lacks a doc comment. It is the `make docs-check` CI gate
// for the public API surface (root package, kvnet, obs): every exported
// type, function, method, interface method, struct field, constant, and
// variable must carry godoc. Test files are skipped. A const/var/type
// block's doc comment covers all of its specs; otherwise each exported
// spec needs its own doc or trailing line comment.
//
// When the kvnet directory is among the arguments, docslint also
// cross-checks the wire-protocol documentation: every backticked
// opcode/status name (`opGet`, `stBadVersion`, ...) in docs/*.md,
// DESIGN.md, and README.md must be a constant the kvnet package
// actually declares, so a renamed or deleted wire name can never leave
// a stale reference in the spec.
//
// Usage:
//
//	go run ./internal/docslint DIR...
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docslint DIR...")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		problems = append(problems, p...)
		if filepath.Base(dir) == "kvnet" {
			p, err := lintWireDocs("docs", dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			problems = append(problems, p...)
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("docslint: %d problem(s): missing doc comments or stale wire-name references\n", len(problems))
		os.Exit(1)
	}
}

func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("docslint: %s: %w", dir, err)
	}
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc.Text() == "" && receiverExported(d) {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// receiverExported reports whether d is a plain function or a method
// whose receiver base type is exported. Methods on unexported types
// never surface in godoc, so they are exempt even when their names are
// exported (interface implementations, mostly).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// lintGenDecl checks a const/var/type declaration. A documented block
// covers its specs; an undocumented one requires per-spec comments.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	blockDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !blockDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
				report(s.Pos(), "type", s.Name.Name)
			}
			if s.Name.IsExported() {
				lintTypeMembers(s, report)
			}
		case *ast.ValueSpec:
			if blockDoc || s.Doc.Text() != "" || s.Comment.Text() != "" {
				continue
			}
			kind := "constant"
			if d.Tok == token.VAR {
				kind = "variable"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// lintTypeMembers checks exported fields of exported structs and
// exported methods of exported interfaces.
func lintTypeMembers(s *ast.TypeSpec, report func(token.Pos, string, string)) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc.Text() != "" || f.Comment.Text() != "" {
				continue
			}
			for _, name := range f.Names {
				if name.IsExported() {
					report(name.Pos(), "field", s.Name.Name+"."+name.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc.Text() != "" || m.Comment.Text() != "" {
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					report(name.Pos(), "interface method", s.Name.Name+"."+name.Name)
				}
			}
		}
	}
}

// wireNameRe matches a backticked wire-protocol constant reference in
// markdown: an opcode (`opGet`) or status (`stBadVersion`).
var wireNameRe = regexp.MustCompile("`((?:op|st)[A-Z][A-Za-z]*)`")

// lintWireDocs cross-checks wire-protocol names in the markdown docs
// against the kvnet source: every backticked op*/st* token in
// docsDir/*.md, DESIGN.md, and README.md must be a constant declared
// (non-test) in srcDir. Docs naming a renamed or deleted opcode,
// status, or flag constant fail the gate.
func lintWireDocs(docsDir, srcDir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, srcDir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("docslint: %s: %w", srcDir, err)
	}
	defined := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, n := range vs.Names {
							defined[n.Name] = true
						}
					}
				}
			}
		}
	}

	files, err := filepath.Glob(filepath.Join(docsDir, "*.md"))
	if err != nil {
		return nil, err
	}
	files = append(files, "DESIGN.md", "README.md")
	var problems []string
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			continue // optional doc absent; nothing to cross-check
		}
		for i, line := range strings.Split(string(raw), "\n") {
			for _, m := range wireNameRe.FindAllStringSubmatch(line, -1) {
				if !defined[m[1]] {
					problems = append(problems, fmt.Sprintf(
						"%s:%d: wire name %s is not declared in %s",
						filepath.ToSlash(f), i+1, m[1], srcDir))
				}
			}
		}
	}
	return problems, nil
}
