package securecache

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/ariakv/aria/internal/merkle"
	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/sgx"
)

type kit struct {
	enc   *sgx.Enclave
	cip   *seccrypto.Cipher
	tree  *merkle.Tree
	cache *Cache
}

func newKit(t *testing.T, counters, arity int, cfg Config) *kit {
	t.Helper()
	enc := sgx.New(sgx.Config{EPCBytes: 64 << 20})
	cip, err := seccrypto.New(make([]byte, 16), make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := merkle.New(enc, cip, merkle.Config{Counters: counters, Arity: arity, InitSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(enc, tree.NodeSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachTree(tree); err != nil {
		t.Fatal(err)
	}
	return &kit{enc: enc, cip: cip, tree: tree, cache: c}
}

func defaultCfg() Config {
	return Config{
		CapacityBytes: 64 << 10,
		Policy:        FIFO,
		CleanDiscard:  true,
	}
}

func TestCounterGetMatchesUntrustedCopy(t *testing.T) {
	k := newKit(t, 1000, 8, defaultCfg())
	for _, ctr := range []int{0, 1, 7, 8, 500, 999} {
		got, err := k.cache.CounterGet(0, ctr)
		if err != nil {
			t.Fatalf("CounterGet(%d): %v", ctr, err)
		}
		node, slot := k.tree.CounterPos(ctr)
		want := k.enc.UBytesRaw(k.tree.NodeAddr(0, node)+sgx.UPtr(slot*16), 16)
		if string(got[:]) != string(want) {
			t.Errorf("CounterGet(%d) = %x, want %x", ctr, got, want)
		}
	}
}

func TestHitAfterMiss(t *testing.T) {
	k := newKit(t, 1000, 8, defaultCfg())
	if _, err := k.cache.CounterGet(0, 100); err != nil {
		t.Fatal(err)
	}
	before := k.cache.Stats()
	if _, err := k.cache.CounterGet(0, 100); err != nil {
		t.Fatal(err)
	}
	after := k.cache.Stats()
	if after.Hits != before.Hits+1 {
		t.Errorf("second access was not a hit: %+v -> %+v", before, after)
	}
	// Counters in the same leaf node also hit.
	if _, err := k.cache.CounterGet(0, 101); err != nil {
		t.Fatal(err)
	}
	if got := k.cache.Stats().Hits; got != after.Hits+1 {
		t.Errorf("same-node counter was not a hit")
	}
}

func TestHitSkipsVerification(t *testing.T) {
	k := newKit(t, 100000, 8, defaultCfg())
	if _, err := k.cache.CounterGet(0, 5); err != nil {
		t.Fatal(err)
	}
	v := k.cache.Stats().Verifications
	for i := 0; i < 10; i++ {
		if _, err := k.cache.CounterGet(0, 5); err != nil {
			t.Fatal(err)
		}
	}
	if got := k.cache.Stats().Verifications; got != v {
		t.Errorf("cached counter access performed %d extra verifications (KV-granularity protection broken)", got-v)
	}
}

func TestBumpFlushVerify(t *testing.T) {
	k := newKit(t, 1000, 8, defaultCfg())
	seen := make(map[int][16]byte)
	for _, ctr := range []int{0, 5, 8, 64, 999} {
		v, err := k.cache.CounterBump(0, ctr)
		if err != nil {
			t.Fatal(err)
		}
		seen[ctr] = v
	}
	if err := k.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := k.tree.VerifyAll(); err != nil {
		t.Fatalf("tree inconsistent after flush: %v", err)
	}
	// Values must survive the flush and be re-readable through a fresh
	// verification path.
	for ctr, want := range seen {
		got, err := k.cache.CounterGet(0, ctr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("counter %d = %x after flush, want %x", ctr, got, want)
		}
	}
}

func TestBumpIncrements(t *testing.T) {
	k := newKit(t, 100, 8, defaultCfg())
	v1, err := k.cache.CounterGet(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := k.cache.CounterBump(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Error("bump did not change the counter")
	}
	// Little-endian 128-bit increment.
	want := v1
	for i := 0; i < 16; i++ {
		want[i]++
		if want[i] != 0 {
			break
		}
	}
	if v2 != want {
		t.Errorf("bump = %x, want %x", v2, want)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	// Cache sized for ~16 nodes; touch hundreds of distinct leaf nodes.
	cfg := defaultCfg()
	cfg.CapacityBytes = 16 * (8*16 + slotOverhead)
	k := newKit(t, 10000, 8, cfg)
	for ctr := 0; ctr < 10000; ctr += 8 {
		if _, err := k.cache.CounterBump(0, ctr); err != nil {
			t.Fatalf("bump %d: %v", ctr, err)
		}
	}
	st := k.cache.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite pressure")
	}
	if st.DirtyWrites == 0 {
		t.Fatal("dirty nodes were never written back")
	}
	if err := k.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := k.tree.VerifyAll(); err != nil {
		t.Fatalf("tree inconsistent after eviction storm: %v", err)
	}
}

func TestCleanDiscardAvoidsWriteback(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 16 * (8*16 + slotOverhead)
	k := newKit(t, 10000, 8, cfg)
	// Read-only traffic: every eviction should be a clean discard.
	for ctr := 0; ctr < 10000; ctr += 8 {
		if _, err := k.cache.CounterGet(0, ctr); err != nil {
			t.Fatal(err)
		}
	}
	st := k.cache.Stats()
	if st.CleanDiscards == 0 {
		t.Error("clean-discard optimization never fired on read-only traffic")
	}
	if st.DirtyWrites != 0 {
		t.Errorf("%d dirty write-backs on read-only traffic", st.DirtyWrites)
	}
}

func TestNoCleanDiscardModelsEWB(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 16 * (8*16 + slotOverhead)
	cfg.CleanDiscard = false
	k := newKit(t, 10000, 8, cfg)
	for ctr := 0; ctr < 10000; ctr += 8 {
		if _, err := k.cache.CounterGet(0, ctr); err != nil {
			t.Fatal(err)
		}
	}
	st := k.cache.Stats()
	if st.CleanDiscards != 0 {
		t.Error("clean discards recorded with the optimization disabled")
	}
	if st.DirtyWrites == 0 {
		t.Error("EWB-style mode never wrote anything back")
	}
}

func TestTamperDetectedOnFetch(t *testing.T) {
	k := newKit(t, 10000, 8, defaultCfg())
	// Corrupt a counter the cache has never seen.
	node, _ := k.tree.CounterPos(7777)
	k.enc.UBytesRaw(k.tree.NodeAddr(0, node), 1)[0] ^= 1
	_, err := k.cache.CounterGet(0, 7777)
	if !errors.Is(err, merkle.ErrIntegrity) {
		t.Fatalf("tampered counter fetch: err = %v, want ErrIntegrity", err)
	}
}

func TestInnerNodeTamperDetected(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 8 * (8*16 + slotOverhead) // tiny: nothing stays cached long
	k := newKit(t, 100000, 8, cfg)
	// Corrupt an inner (level-1) node; fetching any counter under it must
	// fail the recursive verification.
	k.enc.UBytesRaw(k.tree.NodeAddr(1, 0), 1)[0] ^= 0x80
	foundErr := false
	for ctr := 0; ctr < 8*8 && !foundErr; ctr += 8 {
		if _, err := k.cache.CounterGet(0, ctr); errors.Is(err, merkle.ErrIntegrity) {
			foundErr = true
		}
	}
	if !foundErr {
		t.Fatal("corrupted inner node never detected")
	}
}

func TestReplayAttackDetected(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 8 * (8*16 + slotOverhead)
	k := newKit(t, 1000, 8, cfg)
	base := k.tree.NodeAddr(0, 0)
	total := k.tree.TotalBytes()

	// Snapshot the entire untrusted metadata region (an attacker can).
	snap := append([]byte(nil), k.enc.UBytesRaw(base, total)...)

	// Honest updates, flushed so untrusted memory holds the new state.
	for ctr := 0; ctr < 100; ctr++ {
		if _, err := k.cache.CounterBump(0, ctr); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.cache.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replay: restore every untrusted byte to its stale value.
	copy(k.enc.UBytesRaw(base, total), snap)

	// The EPC root does not match the stale tree: any fresh fetch fails.
	_, err := k.cache.CounterGet(0, 0)
	if !errors.Is(err, merkle.ErrIntegrity) {
		t.Fatalf("replayed metadata: err = %v, want ErrIntegrity", err)
	}
}

func TestLevelPinningReducesVerification(t *testing.T) {
	mk := func(pinBudget int) Stats {
		cfg := defaultCfg()
		cfg.CapacityBytes = 4 * (8*16 + slotOverhead) // nearly no cache
		cfg.PinBudgetBytes = pinBudget
		k := newKit(t, 100000, 8, cfg)
		for ctr := 0; ctr < 100000; ctr += 97 {
			if _, err := k.cache.CounterGet(0, ctr); err != nil {
				t.Fatal(err)
			}
		}
		return k.cache.Stats()
	}
	unpinned := mk(0)
	pinned := mk(1 << 20)
	if pinned.PinnedLevels == 0 {
		t.Fatal("pin budget produced no pinned levels")
	}
	if pinned.Verifications >= unpinned.Verifications {
		t.Errorf("pinning did not reduce verifications: %d (pinned) vs %d",
			pinned.Verifications, unpinned.Verifications)
	}
}

func TestLRUCostsMoreOnHits(t *testing.T) {
	run := func(p Policy) uint64 {
		cfg := defaultCfg()
		cfg.Policy = p
		k := newKit(t, 1000, 8, cfg)
		if _, err := k.cache.CounterGet(0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := k.cache.CounterGet(0, 9); err != nil { // second node
			t.Fatal(err)
		}
		k.enc.ResetStats()
		for i := 0; i < 1000; i++ {
			// Alternate two cached nodes so LRU reorders every hit.
			if _, err := k.cache.CounterGet(0, 1+(i%2)*8); err != nil {
				t.Fatal(err)
			}
		}
		return k.enc.Cycles()
	}
	fifo := run(FIFO)
	lru := run(LRU)
	if lru <= fifo {
		t.Errorf("LRU hit path (%d cycles) not more expensive than FIFO (%d)", lru, fifo)
	}
}

func TestStopSwapTriggersOnUniformTraffic(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 64 * (8*16 + slotOverhead)
	cfg.StopSwapEnabled = true
	cfg.StopSwapThreshold = 0.70
	cfg.WindowSize = 512
	cfg.PinBudgetBytes = 4 << 10
	k := newKit(t, 100000, 8, cfg)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		if _, err := k.cache.CounterGet(0, rng.Intn(100000)); err != nil {
			t.Fatal(err)
		}
	}
	st := k.cache.Stats()
	if !st.StopSwap {
		t.Fatalf("stop-swap never engaged on uniform traffic (hit ratio %.2f)", k.cache.HitRatio())
	}
	if st.PinnedLevels == 0 {
		t.Error("stop-swap did not convert cache space into pinned levels")
	}
	// Reads and writes must remain correct in stop-swap mode.
	v, err := k.cache.CounterBump(0, 12345)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.cache.CounterGet(0, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Errorf("counter after stop-swap bump = %x, want %x", got, v)
	}
	if err := k.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := k.tree.VerifyAll(); err != nil {
		t.Fatalf("tree inconsistent after stop-swap writes: %v", err)
	}
}

func TestStopSwapStaysOffOnSkewedTraffic(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 256 * (8*16 + slotOverhead)
	cfg.StopSwapEnabled = true
	cfg.WindowSize = 512
	k := newKit(t, 100000, 8, cfg)
	for i := 0; i < 20000; i++ {
		// 16 hot leaf nodes: hit ratio well above threshold.
		if _, err := k.cache.CounterGet(0, (i%128)*8%1024); err != nil {
			t.Fatal(err)
		}
	}
	if k.cache.Stats().StopSwap {
		t.Error("stop-swap engaged despite high hit ratio")
	}
}

func TestRandomOpsMirrorProperty(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 32 * (8*16 + slotOverhead)
	cfg.PinBudgetBytes = 2 << 10
	k := newKit(t, 5000, 8, cfg)
	mirror := make(map[int][16]byte)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		ctr := rng.Intn(5000)
		if rng.Intn(2) == 0 {
			v, err := k.cache.CounterBump(0, ctr)
			if err != nil {
				t.Fatalf("op %d bump(%d): %v", i, ctr, err)
			}
			mirror[ctr] = v
		} else {
			v, err := k.cache.CounterGet(0, ctr)
			if err != nil {
				t.Fatalf("op %d get(%d): %v", i, ctr, err)
			}
			if want, ok := mirror[ctr]; ok && v != want {
				t.Fatalf("op %d: counter %d = %x, want %x", i, ctr, v, want)
			}
		}
	}
	if err := k.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := k.tree.VerifyAll(); err != nil {
		t.Fatalf("tree inconsistent after random ops: %v", err)
	}
	for ctr, want := range mirror {
		got, err := k.cache.CounterGet(0, ctr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("counter %d = %x after flush, want %x", ctr, got, want)
		}
	}
}

func TestMultipleTrees(t *testing.T) {
	k := newKit(t, 1000, 8, defaultCfg())
	t2, err := merkle.New(k.enc, k.cip, merkle.Config{Counters: 500, Arity: 8, TreeID: 1, InitSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.cache.AttachTree(t2); err != nil {
		t.Fatal(err)
	}
	v1, err := k.cache.CounterBump(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := k.cache.CounterBump(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := k.cache.CounterGet(0, 10)
	g2, _ := k.cache.CounterGet(1, 10)
	if g1 != v1 || g2 != v2 {
		t.Error("trees interfere with each other")
	}
	if err := k.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := k.tree.VerifyAll(); err != nil {
		t.Error(err)
	}
	if err := t2.VerifyAll(); err != nil {
		t.Error(err)
	}
}

func TestAttachTreeValidation(t *testing.T) {
	k := newKit(t, 100, 8, defaultCfg())
	bad, err := merkle.New(k.enc, k.cip, merkle.Config{Counters: 100, Arity: 4, TreeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.cache.AttachTree(bad); err == nil {
		t.Error("attached a tree with mismatched node size")
	}
	dup, err := merkle.New(k.enc, k.cip, merkle.Config{Counters: 100, Arity: 8, TreeID: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.cache.AttachTree(dup); err == nil {
		t.Error("attached a tree with out-of-order ID")
	}
}

func TestZeroCapacityCacheStillWorks(t *testing.T) {
	// Capacity 0 = pure write-through verification (no caching at all).
	cfg := Config{CapacityBytes: 0, PinBudgetBytes: 1 << 10, CleanDiscard: true}
	k := newKit(t, 1000, 8, cfg)
	v, err := k.cache.CounterBump(0, 77)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.cache.CounterGet(0, 77)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Errorf("write-through counter = %x, want %x", got, v)
	}
	if err := k.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := k.tree.VerifyAll(); err != nil {
		t.Fatalf("write-through left tree inconsistent: %v", err)
	}
}
