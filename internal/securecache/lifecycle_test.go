package securecache

import (
	"math/rand"
	"testing"
)

// Lifecycle tests for the stop-swap state machine and the write-back
// protocol invariants under adversarial access patterns.

func fill(t *testing.T, k *kit, n int) {
	t.Helper()
	for ctr := 0; ctr < n; ctr += 8 {
		if _, err := k.cache.CounterGet(0, ctr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStopSwapRequiresSustainedLowHitRatio(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 64 * (8*16 + slotOverhead)
	cfg.StopSwapEnabled = true
	cfg.WindowSize = 256
	cfg.PinBudgetBytes = 2 << 10
	k := newKit(t, 100000, 8, cfg)
	// Fill the cache, then issue a SHORT uniform burst (fewer than
	// stopAfterLowWindows windows) followed by hot traffic: the brief
	// dip must not latch stop-swap.
	fill(t, k, 64*8*2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 256*(stopAfterLowWindows/2); i++ {
		if _, err := k.cache.CounterGet(0, rng.Intn(100000)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 256*stopAfterLowWindows*2; i++ {
		if _, err := k.cache.CounterGet(0, (i%32)*8); err != nil {
			t.Fatal(err)
		}
	}
	if k.cache.Stats().StopSwap {
		t.Error("a transient uniform burst latched stop-swap")
	}
}

func TestStopSwapProbeRecovery(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 256 * (8*16 + slotOverhead)
	cfg.StopSwapEnabled = true
	cfg.WindowSize = 128
	cfg.PinBudgetBytes = 1 << 10
	k := newKit(t, 100000, 8, cfg)
	rng := rand.New(rand.NewSource(3))
	// Phase 1: sustained uniform traffic engages stop-swap.
	for i := 0; i < 128*stopAfterLowWindows*4; i++ {
		if _, err := k.cache.CounterGet(0, rng.Intn(100000)); err != nil {
			t.Fatal(err)
		}
	}
	if !k.cache.Stats().StopSwap {
		t.Fatal("uniform traffic did not engage stop-swap")
	}
	// Phase 2: the workload turns extremely hot; the periodic probe must
	// re-enable the cache. Run enough windows to cover probe period +
	// probe length several times over.
	hot := 0
	for i := 0; i < 128*(probeEveryWindows+probeWindows)*3; i++ {
		if _, err := k.cache.CounterGet(0, (hot%16)*8); err != nil {
			t.Fatal(err)
		}
		hot++
	}
	if k.cache.Stats().StopSwap {
		t.Error("probe never recovered the cache after the workload turned hot")
	}
}

func TestEvictionProtocolUnderAdversarialPattern(t *testing.T) {
	// Alternate bursts of writes over two disjoint regions sized to evict
	// each other completely, forcing maximal write-back cascades, then
	// audit.
	cfg := defaultCfg()
	cfg.CapacityBytes = 32 * (8*16 + slotOverhead)
	k := newKit(t, 20000, 8, cfg)
	for round := 0; round < 10; round++ {
		base := (round % 2) * 10000
		for ctr := base; ctr < base+8000; ctr += 8 {
			if _, err := k.cache.CounterBump(0, ctr); err != nil {
				t.Fatalf("round %d ctr %d: %v", round, ctr, err)
			}
		}
	}
	if err := k.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := k.tree.VerifyAll(); err != nil {
		t.Fatalf("adversarial eviction pattern broke the tree: %v", err)
	}
}

func TestWriteBackPreservesAllUpdatesAcrossEvictions(t *testing.T) {
	// Bump every counter exactly K times through a tiny cache; after a
	// flush, every counter must reflect exactly K increments.
	cfg := defaultCfg()
	cfg.CapacityBytes = 8 * (8*16 + slotOverhead)
	k := newKit(t, 2000, 8, cfg)
	initial := make(map[int][16]byte)
	for ctr := 0; ctr < 2000; ctr++ {
		v, err := k.cache.CounterGet(0, ctr)
		if err != nil {
			t.Fatal(err)
		}
		initial[ctr] = v
	}
	const bumps = 3
	for round := 0; round < bumps; round++ {
		for ctr := 0; ctr < 2000; ctr++ {
			if _, err := k.cache.CounterBump(0, ctr); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := k.cache.Flush(); err != nil {
		t.Fatal(err)
	}
	for ctr := 0; ctr < 2000; ctr++ {
		want := initial[ctr]
		for i := 0; i < bumps; i++ {
			for b := 0; b < 16; b++ {
				want[b]++
				if want[b] != 0 {
					break
				}
			}
		}
		got, err := k.cache.CounterGet(0, ctr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("counter %d = %x, want %x (an increment was lost)", ctr, got, want)
		}
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	cfg := defaultCfg()
	cfg.Policy = LRU
	cfg.CapacityBytes = 4 * (8*16 + slotOverhead) // 4 node slots
	cfg.PinBudgetBytes = 8 << 10                  // pin all inner levels: only L0 churns
	k := newKit(t, 1000, 8, cfg)
	// Touch leaf nodes 0..3: cache holds them (plus ancestor churn).
	// Then re-touch node 0 repeatedly and bring in new nodes: node 0
	// should survive longer than nodes 1..3 under LRU.
	for n := 0; n < 4; n++ {
		if _, err := k.cache.CounterGet(0, n*8); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := k.cache.CounterGet(0, 0); err != nil { // keep node 0 hot
			t.Fatal(err)
		}
		if _, err := k.cache.CounterGet(0, (10+i)*8); err != nil { // churn
			t.Fatal(err)
		}
	}
	st := k.cache.Stats()
	before := st.Hits
	if _, err := k.cache.CounterGet(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := k.cache.Stats().Hits; got != before+1 {
		t.Error("LRU evicted the most recently used node")
	}
}

func TestFIFOEvictsInsertionOrder(t *testing.T) {
	cfg := defaultCfg()
	cfg.Policy = FIFO
	cfg.CapacityBytes = 4 * (8*16 + slotOverhead)
	cfg.PinBudgetBytes = 32 << 10 // pin inner levels: only L0 churns
	k := newKit(t, 10000, 8, cfg)
	// Insert nodes A,B,C,D (A oldest), then hit A repeatedly: FIFO hits
	// do not refresh recency, so the very next insertion must evict A.
	for n := 0; n < 4; n++ {
		if _, err := k.cache.CounterGet(0, n*8); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := k.cache.CounterGet(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.cache.CounterGet(0, 100*8); err != nil { // evicts A
		t.Fatal(err)
	}
	v1 := k.cache.Stats().Verifications
	if _, err := k.cache.CounterGet(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := k.cache.Stats().Verifications; got == v1 {
		t.Error("FIFO kept the oldest node despite an insertion (hit refreshed recency?)")
	}
}

func TestStatsConsistency(t *testing.T) {
	cfg := defaultCfg()
	cfg.CapacityBytes = 16 * (8*16 + slotOverhead)
	k := newKit(t, 5000, 8, cfg)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5000; i++ {
		if _, err := k.cache.CounterGet(0, rng.Intn(5000)); err != nil {
			t.Fatal(err)
		}
	}
	st := k.cache.Stats()
	if st.Hits+st.Misses != st.Lookups {
		t.Errorf("hits(%d)+misses(%d) != lookups(%d)", st.Hits, st.Misses, st.Lookups)
	}
	if st.DirtyWrites+st.CleanDiscards != st.Evictions {
		t.Errorf("dirty(%d)+clean(%d) != evictions(%d)", st.DirtyWrites, st.CleanDiscards, st.Evictions)
	}
	if st.CachedNodes > st.CapacityNodes {
		t.Errorf("cached %d > capacity %d", st.CachedNodes, st.CapacityNodes)
	}
}
