// Package securecache implements Aria's Secure Cache (paper §IV): a
// software-managed EPC cache of Merkle-tree nodes that replaces hardware
// secure paging for security metadata.
//
// The cache holds frequently accessed MT nodes (both counter leaf nodes and
// inner MAC nodes) inside the EPC and evicts cold ones to untrusted memory
// at node granularity. A node that is cached is protected by SGX itself and
// therefore acts as the root of a smaller subtree: verification and update
// paths stop at the first cached (or pinned) ancestor, which is what turns a
// hot-key access into a single trusted read instead of a full Merkle walk.
//
// All four of the paper's Secure Cache techniques are implemented and
// individually switchable for the Figure 12 ablation:
//
//   - semantic-aware swap (§IV-C): evicted nodes are written back without
//     encryption, and clean nodes are discarded without any write-back;
//   - level pinning (§IV-E): the top-K MT levels are pinned in the EPC so a
//     miss verifies at most height-K levels;
//   - FIFO replacement (§IV-E): constant-time hits instead of LRU's list
//     maintenance in slow EPC memory (LRU is available for comparison);
//   - stop-swap (§IV-E): when the windowed hit ratio drops below a
//     threshold the cache stops admitting, converts its space into extra
//     pinned levels, and verifies through the pinned frontier.
package securecache

import (
	"errors"
	"fmt"

	"github.com/ariakv/aria/internal/merkle"
	"github.com/ariakv/aria/internal/sgx"
)

// Policy selects the replacement policy.
type Policy int

const (
	// FIFO evicts in insertion order; hits cost nothing beyond the lookup.
	FIFO Policy = iota
	// LRU moves hit entries to the head of a doubly-linked list, paying
	// extra EPC accesses on every hit (the "hit penalty" of §IV-E).
	LRU
)

func (p Policy) String() string {
	if p == LRU {
		return "LRU"
	}
	return "FIFO"
}

// ErrIntegrity re-exports the Merkle integrity error for convenience.
var ErrIntegrity = merkle.ErrIntegrity

// Config parameterises a Secure Cache.
type Config struct {
	// CapacityBytes is the EPC budget for cached nodes and their
	// metadata.
	CapacityBytes int
	// Policy is FIFO (default) or LRU.
	Policy Policy
	// PinBudgetBytes is the EPC budget for level pinning at start-up.
	// Zero disables initial pinning (the +FIFO / AriaBase ablation arms).
	PinBudgetBytes int
	// StopSwapEnabled turns on the hit-ratio-triggered stop-swap mode.
	StopSwapEnabled bool
	// StopSwapThreshold is the hit ratio below which swap stops
	// (paper: 0.70).
	StopSwapThreshold float64
	// WindowSize is the number of lookups over which the hit ratio is
	// evaluated.
	WindowSize int
	// CleanDiscard controls the avoid-write-back-for-clean-items
	// optimization (§IV-C). On by default in Aria; disabling it models
	// the EWB behaviour of hardware paging, which always writes back.
	CleanDiscard bool
}

// Stats is the cache's event ledger.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	DirtyWrites   uint64 // evictions that wrote data back
	CleanDiscards uint64 // evictions that discarded clean data
	Verifications uint64 // MAC verifications performed on fetch
	StopSwap      bool   // stop-swap mode currently active
	PinnedLevels  int    // levels pinned across all trees (floor of tree 0)
	PinnedBytes   int
	CachedNodes   int
	CapacityNodes int
}

const slotOverhead = 32 // key + links + flags + hash-table share, per slot

type slotState struct {
	key   uint64
	dirty bool
	used  bool
	// linked reports queue membership. A victim being written back is
	// unlinked but still in the lookup table; LRU hit handling must not
	// touch the queue for such a slot.
	linked bool
	// prev/next implement the FIFO queue or LRU list.
	prev, next int32
}

type treeState struct {
	t *merkle.Tree
	// pinFloor is the lowest pinned level; levels [pinFloor, height) are
	// EPC-resident. pinFloor == height means nothing is pinned (the root
	// MAC is always in the EPC regardless).
	pinFloor int
	pinned   []sgx.EPtr // EPC base per level (index < pinFloor unused)
	pinDirty []bool
	// scratch holds one EPC staging buffer per level for verifying
	// uncached nodes without admitting them.
	scratch []sgx.EPtr
}

// Cache is one Secure Cache instance. It can protect several Merkle trees
// (counter-area expansion creates new trees at runtime).
type Cache struct {
	enc *sgx.Enclave
	cfg Config

	trees []*treeState

	nodeSize int
	maxSlots int
	slotBase sgx.EPtr
	slots    []slotState
	table    map[uint64]int32
	head     int32 // FIFO/LRU head (eviction end for FIFO = head)
	tail     int32
	free     int32 // free-slot list

	winLookups   uint64
	winHits      uint64
	admit        bool
	wantStopSwap bool
	// filledOnce gates the stop-swap decision: hit ratios measured while
	// the cache is still filling are meaninglessly low (a cold cache
	// always misses), so windows only count once the cache has been full
	// at least once.
	filledOnce bool
	// lowStreak counts consecutive below-threshold windows; the swap only
	// stops after stopAfterLowWindows of them, giving FIFO time to warm
	// the cache after a workload phase change.
	lowStreak int
	// stoppedWindows counts windows spent in stop-swap mode; every
	// probeEveryWindows of them the cache re-admits for probeWindows
	// windows to detect that the workload turned cacheable again.
	stoppedWindows int
	probing        bool
	probeLeft      int
	// suppress > 0 disables admission (and therefore eviction cascades)
	// while a write-through chain is updating untrusted nodes whose
	// ancestor MACs are transiently stale; any concurrent re-fetch and
	// re-admission of those nodes would fail verification spuriously or
	// fork divergent copies.
	suppress int

	stats Stats
}

// New creates a Secure Cache over the enclave. Trees are attached with
// AttachTree.
func New(enc *sgx.Enclave, nodeSize int, cfg Config) (*Cache, error) {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 4096
	}
	if cfg.StopSwapThreshold == 0 {
		cfg.StopSwapThreshold = 0.70
	}
	maxSlots := cfg.CapacityBytes / (nodeSize + slotOverhead)
	c := &Cache{
		enc:      enc,
		cfg:      cfg,
		nodeSize: nodeSize,
		maxSlots: maxSlots,
		table:    make(map[uint64]int32, maxSlots),
		head:     -1,
		tail:     -1,
		free:     -1,
		admit:    maxSlots > 0,
	}
	if maxSlots > 0 {
		c.slotBase = enc.EAlloc(maxSlots*nodeSize, sgx.CacheLine)
		c.slots = make([]slotState, maxSlots)
		for i := maxSlots - 1; i >= 0; i-- {
			c.slots[i].next = c.free
			c.free = int32(i)
		}
	}
	return c, nil
}

// AttachTree registers a Merkle tree with the cache, allocating its scratch
// buffers and applying initial level pinning within the pin budget.
func (c *Cache) AttachTree(t *merkle.Tree) error {
	if t.NodeSize() != c.nodeSize {
		return fmt.Errorf("securecache: tree node size %d != cache node size %d", t.NodeSize(), c.nodeSize)
	}
	ts := &treeState{
		t:        t,
		pinFloor: t.Height(),
		pinned:   make([]sgx.EPtr, t.Height()),
		pinDirty: make([]bool, t.Height()),
		scratch:  make([]sgx.EPtr, t.Height()),
	}
	for l := 0; l < t.Height(); l++ {
		ts.scratch[l] = c.enc.EAlloc(c.nodeSize, sgx.CacheLine)
	}
	if int(t.ID()) != len(c.trees) {
		return fmt.Errorf("securecache: tree ID %d attached out of order (want %d)", t.ID(), len(c.trees))
	}
	c.trees = append(c.trees, ts)
	if c.cfg.PinBudgetBytes > 0 {
		if err := c.pinWithinBudget(ts, c.cfg.PinBudgetBytes); err != nil {
			return err
		}
	}
	return nil
}

// pinWithinBudget pins the top levels of ts whose combined size fits the
// budget, loading and verifying them bottom-up from untrusted memory.
func (c *Cache) pinWithinBudget(ts *treeState, budget int) error {
	t := ts.t
	floor := t.Height()
	total := 0
	for l := t.Height() - 1; l >= 1; l-- {
		sz := t.LevelBytes(l)
		if total+sz > budget {
			break
		}
		total += sz
		floor = l
	}
	return c.pinDownTo(ts, floor)
}

// pinDownTo extends pinning to cover levels [floor, height). Levels are
// verified top-down: each node is checked against its (already trusted)
// parent before its bytes are trusted.
func (c *Cache) pinDownTo(ts *treeState, floor int) error {
	t := ts.t
	if floor >= ts.pinFloor {
		return nil
	}
	for l := ts.pinFloor - 1; l >= floor; l-- {
		lb := t.LevelBytes(l)
		base := c.enc.EAlloc(lb, sgx.CacheLine)
		var mac [16]byte
		for idx := 0; idx < t.Nodes(l); idx++ {
			dst := base + sgx.EPtr(idx*c.nodeSize)
			c.enc.CopyIn(dst, t.NodeAddr(l, idx), c.nodeSize)
			data := c.enc.EBytesRaw(dst, c.nodeSize)
			t.NodeMAC(&mac, data, l, idx)
			c.stats.Verifications++
			want, err := c.parentSlotView(ts, l, idx, base)
			if err != nil {
				return err
			}
			if string(want) != string(mac[:]) {
				return fmt.Errorf("%w: pinning level %d node %d", merkle.ErrIntegrity, l, idx)
			}
		}
		ts.pinned[l] = base
		ts.pinFloor = l
		c.stats.PinnedBytes += lb
	}
	return nil
}

// parentSlotView returns the authoritative 16-byte MAC slot covering node
// (l, idx) during pinning: the parent lives either in already-pinned levels
// or, for the top node, in the root. newBase is the in-progress pin base of
// level l (unused for the parent, which is strictly above l).
func (c *Cache) parentSlotView(ts *treeState, l, idx int, newBase sgx.EPtr) ([]byte, error) {
	t := ts.t
	if l == t.Height()-1 {
		var mac [16]byte
		data := c.enc.EBytesRaw(newBase+sgx.EPtr(idx*c.nodeSize), c.nodeSize)
		t.NodeMAC(&mac, data, l, idx)
		if !t.RootMatches(&mac) {
			return nil, fmt.Errorf("%w: root during pinning", merkle.ErrIntegrity)
		}
		return mac[:16:16], nil
	}
	pidx, slot := t.ParentOf(idx)
	pl := l + 1
	if pl >= ts.pinFloor && ts.pinned[pl] != sgx.NilE {
		addr := ts.pinned[pl] + sgx.EPtr(pidx*c.nodeSize+slot*merkle.SlotSize)
		return c.enc.EBytes(addr, merkle.SlotSize), nil
	}
	return nil, fmt.Errorf("securecache: internal: parent level %d not pinned while pinning %d", pl, l)
}

func nodeKey(tid uint32, lvl, idx int) uint64 {
	return uint64(tid)<<56 | uint64(lvl)<<48 | uint64(idx)
}

// location describes where a node's authoritative bytes currently live.
type location int

const (
	locCached location = iota
	locPinned
	locScratch // verified copy in scratch; authoritative copy untrusted
)

// Stats returns a snapshot of the ledger.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.StopSwap = c.cfg.StopSwapEnabled && !c.admit && c.maxSlots > 0
	s.CachedNodes = len(c.table)
	s.CapacityNodes = c.maxSlots
	if len(c.trees) > 0 {
		s.PinnedLevels = c.trees[0].t.Height() - c.trees[0].pinFloor
	}
	return s
}

// HitRatio returns the lifetime hit ratio.
func (c *Cache) HitRatio() float64 {
	if c.stats.Lookups == 0 {
		return 0
	}
	return float64(c.stats.Hits) / float64(c.stats.Lookups)
}

// ---- node access -----------------------------------------------------------

// fetch returns an enclave view of node (lvl, idx) of tree tid, verifying it
// if it is not already trusted. The returned location tells the caller how
// writes must be handled.
func (c *Cache) fetch(tid uint32, lvl, idx int) ([]byte, location, error) {
	ts := c.trees[tid]
	t := ts.t
	// Pinned level: trusted by construction.
	if lvl >= ts.pinFloor {
		addr := ts.pinned[lvl] + sgx.EPtr(idx*c.nodeSize)
		// Reading a slot within the node touches one line.
		c.enc.ETouch(addr, merkle.SlotSize)
		return c.enc.EBytesRaw(addr, c.nodeSize), locPinned, nil
	}
	key := nodeKey(tid, lvl, idx)
	c.noteLookup()
	if si, ok := c.table[key]; ok {
		c.noteHit()
		c.onHit(si)
		addr := c.slotAddr(si)
		c.enc.ETouch(addr, merkle.SlotSize)
		// Hash-table lookup inside the EPC: ~2 lines of metadata.
		c.enc.ETouch(c.slotBase, 2*sgx.CacheLine)
		return c.enc.EBytesRaw(addr, c.nodeSize), locCached, nil
	}
	c.stats.Misses++
	// Miss. Ordering is load-bearing here. Acquiring a slot and fetching
	// the parent can both trigger eviction cascades, and a cascade can
	// admit a fresh copy of this very node (a dirty child being evicted
	// writes its MAC into its parent — us), update it, and even evict it
	// again, changing our untrusted bytes underneath us. So: settle all
	// cascades first (acquire, then parent fetch, re-checking the table
	// after each), and only then copy the node in and verify it — the
	// load-and-compare is straight-line code nothing can interleave with.
	si := int32(-1)
	if c.admit && c.suppress == 0 && c.maxSlots > 0 {
		var err error
		si, err = c.acquireSlot()
		if err != nil {
			return nil, 0, err
		}
	}
	if existing, ok := c.table[key]; ok {
		// The eviction cascade during acquisition admitted this node;
		// that copy is newer than anything we could load. Using it (and
		// not linking ours) also prevents forking divergent copies.
		c.releaseSlot(si)
		addr := c.slotAddr(existing)
		c.enc.ETouch(addr, merkle.SlotSize)
		return c.enc.EBytesRaw(addr, c.nodeSize), locCached, nil
	}
	top := lvl == t.Height()-1
	var pview []byte
	var pslot int
	if !top {
		pidx, slot := t.ParentOf(idx)
		var err error
		pview, _, err = c.fetch(tid, lvl+1, pidx)
		if err != nil {
			c.releaseSlot(si)
			return nil, 0, err
		}
		pslot = slot
		if existing, ok := c.table[key]; ok {
			// The cascade during the parent fetch admitted this node.
			c.releaseSlot(si)
			addr := c.slotAddr(existing)
			c.enc.ETouch(addr, merkle.SlotSize)
			return c.enc.EBytesRaw(addr, c.nodeSize), locCached, nil
		}
	}
	var dst sgx.EPtr
	if si >= 0 {
		dst = c.slotAddr(si)
	} else {
		dst = ts.scratch[lvl]
	}
	c.enc.CopyIn(dst, t.NodeAddr(lvl, idx), c.nodeSize)
	data := c.enc.EBytesRaw(dst, c.nodeSize)
	var mac [16]byte
	t.NodeMAC(&mac, data, lvl, idx)
	c.stats.Verifications++
	if top {
		if !t.RootMatches(&mac) {
			c.releaseSlot(si)
			return nil, 0, fmt.Errorf("%w: tree %d top node", merkle.ErrIntegrity, tid)
		}
	} else {
		want := pview[pslot*merkle.SlotSize : pslot*merkle.SlotSize+merkle.SlotSize]
		if string(want) != string(mac[:]) {
			c.releaseSlot(si)
			return nil, 0, fmt.Errorf("%w: tree %d node (level %d, index %d)", merkle.ErrIntegrity, tid, lvl, idx)
		}
	}
	if si >= 0 {
		st := &c.slots[si]
		st.key = key
		st.dirty = false
		st.used = true
		c.pushBack(si)
		c.table[key] = si
		return data, locCached, nil
	}
	return data, locScratch, nil
}

func (c *Cache) slotAddr(si int32) sgx.EPtr {
	return c.slotBase + sgx.EPtr(int(si)*c.nodeSize)
}

// acquireSlot detaches a free slot from the free list, evicting the
// replacement victim first when the cache is full. The returned slot is not
// yet linked into the table or queue, so recursive fetches triggered by the
// eviction protocol can never clobber or steal it. Returns -1 when no slot
// could be freed.
func (c *Cache) acquireSlot() (int32, error) {
	if c.free == -1 {
		if err := c.evictOne(); err != nil {
			return -1, err
		}
		if c.free == -1 {
			return -1, nil
		}
	}
	si := c.free
	c.free = c.slots[si].next
	return si, nil
}

// releaseSlot returns an acquired-but-unlinked slot to the free list after a
// failed verification.
func (c *Cache) releaseSlot(si int32) {
	if si < 0 {
		return
	}
	c.slots[si].used = false
	c.slots[si].dirty = false
	c.slots[si].next = c.free
	c.free = si
}

// evictOne removes the node at the replacement end of the queue, performing
// the §IV-B eviction protocol for dirty nodes. The victim stays in the
// lookup table until its write-back completes: nested evictions triggered by
// fetching the victim's parent must find the victim's fresh cached bytes,
// not reload a stale untrusted copy. It cannot be picked as a victim again
// because it is already unlinked from the replacement queue.
func (c *Cache) evictOne() error {
	si := c.head
	if si == -1 {
		return nil
	}
	if !c.filledOnce {
		c.filledOnce = true
		c.winLookups, c.winHits = 0, 0
	}
	c.unlink(si)
	st := &c.slots[si]
	c.stats.Evictions++
	if st.dirty {
		if err := c.writeBackSlot(si); err != nil {
			return err
		}
		c.stats.DirtyWrites++
	} else if c.cfg.CleanDiscard {
		c.stats.CleanDiscards++
	} else {
		// Hardware-like behaviour: write back even when clean.
		tid, lvl, idx := splitKey(st.key)
		t := c.trees[tid].t
		c.enc.CopyOut(t.NodeAddr(lvl, idx), c.slotAddr(si), c.nodeSize)
		c.stats.DirtyWrites++
	}
	delete(c.table, st.key)
	st.used = false
	st.dirty = false
	st.next = c.free
	c.free = si
	return nil
}

func splitKey(key uint64) (tid uint32, lvl, idx int) {
	return uint32(key >> 56), int(key>>48) & 0xff, int(key & ((1 << 48) - 1))
}

// writeBackSlot propagates a dirty node out of the cache: secure its parent,
// compute the node's MAC, store the MAC in the parent, then write the node
// bytes to untrusted memory without encryption (§IV-C: metadata needs
// integrity, not confidentiality).
//
// Ordering matters: fetching an uncached parent can trigger nested eviction
// cascades that write further child MACs into this very node (children find
// it because it is still in the lookup table). The MAC is therefore computed
// only after the parent fetch returns, so it covers the final bytes that are
// then written back.
func (c *Cache) writeBackSlot(si int32) error {
	st := &c.slots[si]
	tid, lvl, idx := splitKey(st.key)
	ts := c.trees[tid]
	t := ts.t
	var mac [16]byte
	if lvl == t.Height()-1 {
		data := c.enc.EBytesRaw(c.slotAddr(si), c.nodeSize)
		c.enc.ETouch(c.slotAddr(si), c.nodeSize)
		t.NodeMAC(&mac, data, lvl, idx)
		t.SetRoot(&mac)
	} else {
		pidx, slot := t.ParentOf(idx)
		pview, ploc, err := c.fetch(tid, lvl+1, pidx)
		if err != nil {
			return err
		}
		data := c.enc.EBytesRaw(c.slotAddr(si), c.nodeSize)
		c.enc.ETouch(c.slotAddr(si), c.nodeSize)
		t.NodeMAC(&mac, data, lvl, idx)
		copy(pview[slot*merkle.SlotSize:slot*merkle.SlotSize+merkle.SlotSize], mac[:])
		c.enc.ETouch(c.scratchOrSlotAddr(tid, lvl+1, pidx, ploc), merkle.SlotSize)
		switch ploc {
		case locCached:
			c.slots[c.table[nodeKey(tid, lvl+1, pidx)]].dirty = true
		case locPinned:
			ts.pinDirty[lvl+1] = true
		default: // locScratch: write the parent through to the root.
			if err := c.writeThroughScratch(tid, lvl+1, pidx); err != nil {
				return err
			}
		}
	}
	c.enc.CopyOut(t.NodeAddr(lvl, idx), c.slotAddr(si), c.nodeSize)
	return nil
}

// writeThroughScratch persists the scratch-resident node (lvl, idx) to
// untrusted memory and propagates its new MAC to the first cached/pinned
// ancestor or the root. The whole chain runs with admission suppressed:
// while ancestor MACs are transiently stale, any nested fetch-and-admit of
// the nodes being updated would spuriously fail verification or fork
// divergent cached copies.
func (c *Cache) writeThroughScratch(tid uint32, lvl, idx int) error {
	c.suppress++
	defer func() { c.suppress-- }()
	ts := c.trees[tid]
	t := ts.t
	for {
		view := c.enc.EBytesRaw(ts.scratch[lvl], c.nodeSize)
		c.enc.CopyOut(t.NodeAddr(lvl, idx), ts.scratch[lvl], c.nodeSize)
		var mac [16]byte
		t.NodeMAC(&mac, view, lvl, idx)
		if lvl == t.Height()-1 {
			t.SetRoot(&mac)
			return nil
		}
		pidx, slot := t.ParentOf(idx)
		pview, ploc, err := c.fetch(tid, lvl+1, pidx)
		if err != nil {
			return err
		}
		copy(pview[slot*merkle.SlotSize:slot*merkle.SlotSize+merkle.SlotSize], mac[:])
		c.enc.ETouch(c.scratchOrSlotAddr(tid, lvl+1, pidx, ploc), merkle.SlotSize)
		switch ploc {
		case locCached:
			c.slots[c.table[nodeKey(tid, lvl+1, pidx)]].dirty = true
			return nil
		case locPinned:
			ts.pinDirty[lvl+1] = true
			return nil
		default:
			lvl, idx = lvl+1, pidx
		}
	}
}

func (c *Cache) scratchOrSlotAddr(tid uint32, lvl, idx int, loc location) sgx.EPtr {
	ts := c.trees[tid]
	switch loc {
	case locPinned:
		return ts.pinned[lvl] + sgx.EPtr(idx*c.nodeSize)
	case locCached:
		return c.slotAddr(c.table[nodeKey(tid, lvl, idx)])
	default:
		return ts.scratch[lvl]
	}
}

// ---- queue/list maintenance ------------------------------------------------

func (c *Cache) pushBack(si int32) {
	st := &c.slots[si]
	st.linked = true
	st.prev = c.tail
	st.next = -1
	if c.tail != -1 {
		c.slots[c.tail].next = si
	}
	c.tail = si
	if c.head == -1 {
		c.head = si
	}
}

func (c *Cache) unlink(si int32) {
	st := &c.slots[si]
	st.linked = false
	if st.prev != -1 {
		c.slots[st.prev].next = st.next
	} else {
		c.head = st.next
	}
	if st.next != -1 {
		c.slots[st.next].prev = st.prev
	} else {
		c.tail = st.prev
	}
	st.prev, st.next = -1, -1
}

// onHit applies the replacement policy's hit action. FIFO does nothing;
// LRU moves the entry to the back (most recently used) and pays the extra
// EPC accesses that Figure 12 attributes to the "tax of hits".
func (c *Cache) onHit(si int32) {
	if c.cfg.Policy != LRU {
		return
	}
	if c.tail == si || !c.slots[si].linked {
		return
	}
	c.unlink(si)
	c.pushBack(si)
	// List surgery: six pointer updates across three list nodes plus the
	// recency head, all in EPC metadata — the "tax of hits" of §IV-E.
	c.enc.ETouch(c.slotBase, 6*sgx.CacheLine)
}

// ---- hit-ratio window and stop-swap -----------------------------------------

// Stop-swap tuning: how many consecutive low windows stop the swap, how
// rarely a stopped cache probes for workload change, and how long a probe
// lasts (the verdict is taken on its final window, after FIFO has had time
// to warm).
const (
	stopAfterLowWindows = 16
	probeEveryWindows   = 64
	probeWindows        = 8
)

func (c *Cache) noteLookup() {
	c.stats.Lookups++
	if !c.cfg.StopSwapEnabled || c.maxSlots == 0 || !c.filledOnce {
		return
	}
	c.winLookups++
	if c.winLookups < uint64(c.cfg.WindowSize) {
		return
	}
	ratio := float64(c.winHits) / float64(c.winLookups)
	c.winLookups, c.winHits = 0, 0
	switch {
	case c.probing:
		c.probeLeft--
		if c.probeLeft > 0 {
			return
		}
		// Verdict window: stay enabled only if the warmed cache hits.
		c.probing = false
		if ratio < c.cfg.StopSwapThreshold {
			c.wantStopSwap = true
		} else {
			c.lowStreak = 0
		}
	case c.admit:
		if ratio < c.cfg.StopSwapThreshold {
			c.lowStreak++
			if c.lowStreak >= stopAfterLowWindows {
				// The transition flushes the cache, which must
				// not run while a fetch recursion holds scratch
				// buffers; defer to the next op boundary.
				c.wantStopSwap = true
			}
		} else {
			c.lowStreak = 0
		}
	default: // stopped
		c.stoppedWindows++
		if c.stoppedWindows >= probeEveryWindows {
			c.stoppedWindows = 0
			c.probing = true
			c.probeLeft = probeWindows
			c.admit = true
		}
	}
}

// applyPending performs deferred mode transitions at an operation boundary.
func (c *Cache) applyPending() {
	if c.wantStopSwap {
		c.wantStopSwap = false
		c.enterStopSwap()
	}
}

func (c *Cache) noteHit() {
	c.stats.Hits++
	c.winHits++
}

// enterStopSwap flushes the cache and converts its space into extra pinned
// levels, so every future access verifies through a short pinned frontier
// instead of thrashing the cache (paper §IV-E "Stopping Swap").
func (c *Cache) enterStopSwap() {
	c.admit = false
	c.probing = false
	c.lowStreak = 0
	c.stoppedWindows = 0
	if err := c.flushCacheSlots(); err != nil {
		// Flush can only fail on an integrity violation, which will be
		// re-detected (and surfaced) by the very next operation.
		return
	}
	for _, ts := range c.trees {
		budget := c.cfg.PinBudgetBytes + c.maxSlots*(c.nodeSize+slotOverhead)
		pinned := c.stats.PinnedBytes
		floor := ts.pinFloor
		for l := ts.pinFloor - 1; l >= 1; l-- {
			sz := ts.t.LevelBytes(l)
			if pinned+sz > budget {
				break
			}
			pinned += sz
			floor = l
		}
		_ = c.pinDownTo(ts, floor)
	}
}

// flushCacheSlots evicts every cached node, lowest level first so children
// propagate into parents that are still cached. Write-backs can admit (and
// evict) other nodes mid-flush, so each round works from a snapshot of the
// current keys rather than iterating the live queue; admissions are always
// at strictly higher levels, so the round count is bounded by the tree
// height.
func (c *Cache) flushCacheSlots() error {
	for round := 0; len(c.table) > 0; round++ {
		if round > 64 {
			return errors.New("securecache: internal: flush did not converge")
		}
		snapshot := make([]uint64, 0, len(c.table))
		for key := range c.table {
			snapshot = append(snapshot, key)
		}
		// Lowest level first: children propagate into still-cached
		// parents instead of forcing parent re-fetches.
		sortKeysByLevel(snapshot)
		for _, key := range snapshot {
			si, ok := c.table[key]
			if !ok {
				continue // evicted by an earlier write-back this round
			}
			c.unlink(si)
			st := &c.slots[si]
			delete(c.table, key)
			if st.dirty {
				if err := c.writeBackSlot(si); err != nil {
					return err
				}
				c.stats.DirtyWrites++
			} else {
				c.stats.CleanDiscards++
			}
			c.stats.Evictions++
			st.used = false
			st.dirty = false
			st.next = c.free
			c.free = si
		}
	}
	return nil
}

// sortKeysByLevel sorts node keys ascending by their level field. The level
// occupies bits 48..55, above the 48-bit index, so a plain numeric sort
// within one tree groups levels correctly; a radix pass over the level byte
// keeps it O(n) and tree-order stable enough for flushing.
func sortKeysByLevel(keys []uint64) {
	var buckets [64][]uint64
	for _, k := range keys {
		_, lvl, _ := splitKey(k)
		buckets[lvl] = append(buckets[lvl], k)
	}
	keys = keys[:0]
	for _, b := range buckets {
		keys = append(keys, b...)
	}
}

// ---- public counter interface ----------------------------------------------

// CounterGet returns the 16-byte counter value at index ctr of tree tid,
// verifying it through the cache. This is the hot path of every Get.
func (c *Cache) CounterGet(tid uint32, ctr int) ([16]byte, error) {
	c.applyPending()
	var out [16]byte
	t := c.trees[tid].t
	nodeIdx, slot := t.CounterPos(ctr)
	view, _, err := c.fetch(tid, 0, nodeIdx)
	if err != nil {
		return out, err
	}
	copy(out[:], view[slot*merkle.SlotSize:])
	return out, nil
}

// CounterBump increments the counter (as a little-endian 128-bit integer)
// and returns the new value; used before every encryption so a (counter,
// key-slot) pair is never reused. The new value is propagated per the cache
// write protocol: dirty bit when cached, level-dirty when pinned,
// write-through when neither.
func (c *Cache) CounterBump(tid uint32, ctr int) ([16]byte, error) {
	var out [16]byte
	err := c.modifyCounter(tid, ctr, func(b []byte) {
		for i := 0; i < 16; i++ {
			b[i]++
			if b[i] != 0 {
				break
			}
		}
		copy(out[:], b)
	})
	return out, err
}

// CounterSet overwrites the counter value (used by recovery tooling and
// tests).
func (c *Cache) CounterSet(tid uint32, ctr int, val [16]byte) error {
	return c.modifyCounter(tid, ctr, func(b []byte) { copy(b, val[:]) })
}

func (c *Cache) modifyCounter(tid uint32, ctr int, fn func([]byte)) error {
	c.applyPending()
	ts := c.trees[tid]
	t := ts.t
	nodeIdx, slot := t.CounterPos(ctr)
	view, loc, err := c.fetch(tid, 0, nodeIdx)
	if err != nil {
		return err
	}
	fn(view[slot*merkle.SlotSize : slot*merkle.SlotSize+merkle.SlotSize])
	switch loc {
	case locCached:
		c.slots[c.table[nodeKey(tid, 0, nodeIdx)]].dirty = true
	case locPinned:
		ts.pinDirty[0] = true
	default:
		return c.writeThroughScratch(tid, 0, nodeIdx)
	}
	return nil
}

// Flush writes every dirty cached node and every dirty pinned level back to
// untrusted memory and brings the whole Merkle tree (and root) up to date.
// After Flush, Tree.VerifyAll succeeds on a store that was not attacked.
func (c *Cache) Flush() error {
	if err := c.flushCacheSlots(); err != nil {
		return err
	}
	for _, ts := range c.trees {
		t := ts.t
		var mac [16]byte
		for lvl := ts.pinFloor; lvl < t.Height(); lvl++ {
			for idx := 0; idx < t.Nodes(lvl); idx++ {
				src := ts.pinned[lvl] + sgx.EPtr(idx*c.nodeSize)
				c.enc.CopyOut(t.NodeAddr(lvl, idx), src, c.nodeSize)
				data := c.enc.EBytesRaw(src, c.nodeSize)
				t.NodeMAC(&mac, data, lvl, idx)
				if lvl == t.Height()-1 {
					t.SetRoot(&mac)
				} else if lvl+1 >= ts.pinFloor {
					pidx, slot := t.ParentOf(idx)
					dst := ts.pinned[lvl+1] + sgx.EPtr(pidx*c.nodeSize+slot*merkle.SlotSize)
					copy(c.enc.EBytesRaw(dst, merkle.SlotSize), mac[:])
				} else {
					return fmt.Errorf("securecache: internal: pinned level %d has unpinned parent", lvl)
				}
			}
			ts.pinDirty[lvl] = false
		}
	}
	return nil
}
