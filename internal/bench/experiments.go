package bench

import (
	"fmt"
	"io"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

// Workload shorthands used across experiments.
func ycsb(keys int, dist workload.Dist, readRatio float64, valueSize int, skew float64, seed int64) workload.Config {
	return workload.Config{
		Keys:      keys,
		Dist:      dist,
		Skew:      skew,
		ReadRatio: readRatio,
		ValueSize: valueSize,
		Seed:      seed,
	}
}

func etc(keys int, readRatio float64, seed int64) workload.Config {
	return workload.Config{Keys: keys, ETC: true, ReadRatio: readRatio, Seed: seed}
}

func init() {
	register("fig2", "Motivation: throughput and page swaps vs keyspace size (skew, R50, 16B/16B)", fig2)
	register("table1", "Design-scheme comparison (qualitative)", table1)
	register("fig9", "Aria-H overall performance (YCSB, 10M keys)", fig9)
	register("fig10", "Aria-T overall performance (YCSB, 10M keys)", fig10)
	register("fig11", "Facebook ETC workload (10M keys)", fig11)
	register("fig12", "Optimization ablation and SGX overhead (ETC)", fig12)
	register("fig13", "Keyspace-size sweep 119MB-2GB (R95)", fig13)
	register("fig14", "Secure Cache size sweep (skew R95)", fig14)
	register("fig15", "N-ary Merkle tree arity sweep (R95, 16B)", fig15)
	register("fig16a", "Multi-tenant: 2 and 4 tenants sharing the EPC", fig16a)
	register("fig16b", "Skewness sweep 0.8-1.2 (R95, 16B)", fig16b)
	register("memtab", "Memory consumption analysis (§VI-D4)", memtab)
}

// ---- Figure 2 -------------------------------------------------------------------

func fig2(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig2", "motivation: ShieldStore vs Aria w/o Cache vs Baseline")
	fmt.Fprintf(w, "   keyspace sizes are paper-nominal; actual = nominal/%d\n", p.Scale)
	t := newTable("keyspaceMB", "scheme", "throughput", "pageswaps")
	// Paper sweeps 16..128 MB of 16-byte keys at 50% reads, skew 0.99.
	for _, mb := range []int{16, 24, 32, 64, 119, 128} {
		keys := mb << 20 / 16 / p.Scale
		wcfg := ycsb(keys, workload.Zipfian, 0.5, 16, 0.99, p.Seed)
		for _, scheme := range []aria.Scheme{aria.ShieldStoreScheme, aria.NoCacheHash, aria.BaselineHash} {
			r, err := runPoint(p, p.baseOptions(scheme, keys), wcfg)
			if err != nil {
				return fmt.Errorf("fig2 %dMB %v: %w", mb, scheme, err)
			}
			t.add(fmt.Sprintf("%d", mb), scheme.String(), kops(r.Throughput),
				fmt.Sprintf("%d", r.Stats.PageSwaps))
		}
	}
	t.write(w)
	return nil
}

// ---- Table I --------------------------------------------------------------------

func table1(_ Params, w io.Writer) error {
	fmt.Fprintln(w, "\n== table1: Comparison between different designs (Table I)")
	t := newTable("scheme", "protection-granularity", "hotness-aware", "index-schemes", "epc-occupation")
	t.add("ShieldStore", "hash bucket", "unaware", "hash", "low")
	t.add("Aria w/o Cache", "page (4 KB)", "aware", "hash/tree", "medium")
	t.add("Aria", "KV pair", "aware", "hash/tree", "low")
	t.write(w)
	return nil
}

// ---- Figures 9 and 10 --------------------------------------------------------------

var panelGrid = []struct {
	name string
	dist workload.Dist
	read float64
}{
	{"uniform-R50", workload.Uniform, 0.50},
	{"uniform-R95", workload.Uniform, 0.95},
	{"uniform-R100", workload.Uniform, 1.00},
	{"skew-R50", workload.Zipfian, 0.50},
	{"skew-R95", workload.Zipfian, 0.95},
	{"skew-R100", workload.Zipfian, 1.00},
}

func overallGrid(p Params, w io.Writer, id string, schemes []aria.Scheme) error {
	keys := p.keys10M()
	t := newTable(append([]string{"panel", "valueB"}, schemeNames(schemes)...)...)
	for _, valueSize := range []int{16, 128, 512} {
		// One loaded store per (scheme, valueSize, distribution) serves
		// the read-ratio points. Distributions get separate stores:
		// a uniform phase drives Aria's Secure Cache into stop-swap,
		// which must not leak into the skewed measurements (each panel
		// of the paper's figure is an independent run).
		results := make(map[aria.Scheme][]Result)
		for _, scheme := range schemes {
			var rs []Result
			for _, dist := range []workload.Dist{workload.Uniform, workload.Zipfian} {
				var wcfgs []workload.Config
				for _, panel := range panelGrid {
					if panel.dist != dist {
						continue
					}
					wcfgs = append(wcfgs, ycsb(keys, panel.dist, panel.read, valueSize, 0.99, p.Seed))
				}
				sub, err := runSeries(p, p.baseOptions(scheme, keys), wcfgs)
				if err != nil {
					return fmt.Errorf("%s %v value=%d: %w", id, scheme, valueSize, err)
				}
				rs = append(rs, sub...)
			}
			results[scheme] = rs
		}
		for pi, panel := range panelGrid {
			row := []string{panel.name, fmt.Sprintf("%d", valueSize)}
			for _, scheme := range schemes {
				row = append(row, kops(results[scheme][pi].Throughput))
			}
			t.add(row...)
		}
	}
	t.write(w)
	return nil
}

func schemeNames(ss []aria.Scheme) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.String()
	}
	return out
}

func fig9(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig9", "hash-index overall (nominal 10M keys)")
	return overallGrid(p, w, "fig9",
		[]aria.Scheme{aria.BaselineHash, aria.NoCacheHash, aria.ShieldStoreScheme, aria.AriaHash})
}

func fig10(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig10", "tree-index overall (nominal 10M keys)")
	return overallGrid(p, w, "fig10",
		[]aria.Scheme{aria.BaselineTree, aria.NoCacheTree, aria.AriaTree})
}

// ---- Figure 11 --------------------------------------------------------------------

func fig11(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig11", "Facebook ETC, hash and tree variants")
	keys := p.keys10M()
	ratios := []float64{0, 0.50, 0.95, 1.00}
	var wcfgs []workload.Config
	for _, r := range ratios {
		wcfgs = append(wcfgs, etc(keys, r, p.Seed))
	}
	run := func(title string, schemes []aria.Scheme) error {
		fmt.Fprintf(w, "   [%s]\n", title)
		t := newTable(append([]string{"readratio"}, schemeNames(schemes)...)...)
		results := make(map[aria.Scheme][]Result)
		for _, scheme := range schemes {
			rs, err := runSeries(p, p.baseOptions(scheme, keys), wcfgs)
			if err != nil {
				return fmt.Errorf("fig11 %v: %w", scheme, err)
			}
			results[scheme] = rs
		}
		for ri, r := range ratios {
			row := []string{fmt.Sprintf("RD_%d", int(r*100))}
			for _, scheme := range schemes {
				row = append(row, kops(results[scheme][ri].Throughput))
			}
			t.add(row...)
		}
		t.write(w)
		return nil
	}
	if err := run("hash table", []aria.Scheme{aria.BaselineHash, aria.NoCacheHash, aria.ShieldStoreScheme, aria.AriaHash}); err != nil {
		return err
	}
	return run("tree", []aria.Scheme{aria.BaselineTree, aria.NoCacheTree, aria.AriaTree})
}

// ---- Figure 12 --------------------------------------------------------------------

func fig12(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig12", "ablation: AriaBase, +HeapAlloc, +PIN, +FIFO, Aria, Aria w/o SGX")
	keys := p.keys10M()
	ratios := []float64{0, 0.50, 0.95, 1.00}
	var wcfgs []workload.Config
	for _, r := range ratios {
		wcfgs = append(wcfgs, etc(keys, r, p.Seed))
	}
	type arm struct {
		name string
		mod  func(*aria.Options)
	}
	arms := []arm{
		// AriaBase: OCALL allocation, LRU, no pinning, no stop-swap.
		{"AriaBase", func(o *aria.Options) {
			o.OcallAlloc = true
			o.Policy = aria.LRU
			o.DisablePinning = true
			o.DisableStopSwap = true
		}},
		// +HeapAlloc: user-space allocator; still LRU, unpinned.
		{"+HeapAlloc", func(o *aria.Options) {
			o.Policy = aria.LRU
			o.DisablePinning = true
			o.DisableStopSwap = true
		}},
		// +PIN: heap allocator + level pinning (LRU).
		{"+PIN", func(o *aria.Options) {
			o.Policy = aria.LRU
			o.DisableStopSwap = true
		}},
		// +FIFO: heap allocator + FIFO, no pinning.
		{"+FIFO", func(o *aria.Options) {
			o.Policy = aria.FIFO
			o.DisablePinning = true
			o.DisableStopSwap = true
		}},
		// Aria: everything on.
		{"Aria", func(o *aria.Options) {}},
		// Aria w/o SGX: same code, DRAM-priced memory, no paging/edge
		// costs.
		{"Aria-w/o-SGX", func(o *aria.Options) { o.WithoutSGX = true }},
	}
	names := make([]string, len(arms))
	results := make([][]Result, len(arms))
	for i, a := range arms {
		names[i] = a.name
		opts := p.baseOptions(aria.AriaHash, keys)
		a.mod(&opts)
		rs, err := runSeries(p, opts, wcfgs)
		if err != nil {
			return fmt.Errorf("fig12 %s: %w", a.name, err)
		}
		results[i] = rs
	}
	t := newTable(append([]string{"readratio"}, names...)...)
	for ri, r := range ratios {
		row := []string{fmt.Sprintf("RD_%d", int(r*100))}
		for i := range arms {
			row = append(row, kops(results[i][ri].Throughput))
		}
		t.add(row...)
	}
	t.write(w)
	return nil
}

// ---- Figure 13 --------------------------------------------------------------------

func fig13(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig13", "keyspace sweep 119MB-2GB (nominal), R95, 16B values")
	schemes := []aria.Scheme{aria.AriaHash, aria.ShieldStoreScheme, aria.NoCacheHash}
	kinds := []struct {
		name string
		mk   func(keys int) workload.Config
	}{
		{"uniform", func(k int) workload.Config { return ycsb(k, workload.Uniform, 0.95, 16, 0.99, p.Seed) }},
		{"skew", func(k int) workload.Config { return ycsb(k, workload.Zipfian, 0.95, 16, 0.99, p.Seed) }},
		{"etc", func(k int) workload.Config { return etc(k, 0.95, p.Seed) }},
	}
	t := newTable(append([]string{"workload", "keyspaceMB"}, schemeNames(schemes)...)...)
	for _, kind := range kinds {
		for _, mb := range []int{119, 128, 256, 512, 1024, 1536, 2048} {
			keys := mb << 20 / 16 / p.Scale
			row := []string{kind.name, fmt.Sprintf("%d", mb)}
			for _, scheme := range schemes {
				r, err := runPoint(p, p.baseOptions(scheme, keys), kind.mk(keys))
				if err != nil {
					return fmt.Errorf("fig13 %s %dMB %v: %w", kind.name, mb, scheme, err)
				}
				row = append(row, kops(r.Throughput))
			}
			t.add(row...)
		}
	}
	t.write(w)
	return nil
}

// ---- Figure 14 --------------------------------------------------------------------

func fig14(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig14", "Secure Cache size sweep, skew R95, 16B values")
	t := newTable("keyspace", "cache%", "cacheMB(nominal)", "aria-h", "shieldstore-ref")
	for _, nominalKeys := range []int{10_000_000, 30_000_000} {
		keys := nominalKeys / p.Scale
		wcfg := ycsb(keys, workload.Zipfian, 0.95, 16, 0.99, p.Seed)
		ssRef, err := runPoint(p, p.baseOptions(aria.ShieldStoreScheme, keys), wcfg)
		if err != nil {
			return err
		}
		for _, pct := range []int{100, 50, 33, 25, 20, 16} {
			opts := p.baseOptions(aria.AriaHash, keys)
			opts.SecureCacheBytes = p.cacheBytes() * pct / 100
			r, err := runPoint(p, opts, wcfg)
			if err != nil {
				return fmt.Errorf("fig14 %d%%: %w", pct, err)
			}
			t.add(fmt.Sprintf("%dM", nominalKeys/1_000_000),
				fmt.Sprintf("%d%%", pct),
				fmt.Sprintf("%d", p.cacheBytes()*pct/100*p.Scale>>20),
				kops(r.Throughput), kops(ssRef.Throughput))
		}
	}
	t.write(w)
	return nil
}

// ---- Figure 15 --------------------------------------------------------------------

func fig15(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig15", "Merkle tree arity sweep, R95, 16B values")
	keys := p.keys10M()
	t := newTable("arity", "aria-uniform", "aria-skew")
	for _, arity := range []int{2, 4, 8, 10, 12, 14, 16} {
		row := []string{fmt.Sprintf("%d", arity)}
		for _, dist := range []workload.Dist{workload.Uniform, workload.Zipfian} {
			opts := p.baseOptions(aria.AriaHash, keys)
			opts.Arity = arity
			r, err := runPoint(p, opts, ycsb(keys, dist, 0.95, 16, 0.99, p.Seed))
			if err != nil {
				return fmt.Errorf("fig15 arity=%d: %w", arity, err)
			}
			row = append(row, kops(r.Throughput))
		}
		t.add(row...)
	}
	t.write(w)
	return nil
}

// ---- Figure 16(a) -------------------------------------------------------------------

func fig16a(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig16a", "multi-tenant: per-tenant EPC share, average throughput")
	t := newTable("keyspace", "tenants", "aria-h", "shieldstore")
	for _, nominalKeys := range []int{10_000_000, 20_000_000, 30_000_000, 40_000_000, 50_000_000} {
		keys := nominalKeys / p.Scale
		wcfg := ycsb(keys, workload.Zipfian, 0.95, 16, 0.99, p.Seed)
		for _, tenants := range []int{2, 4} {
			row := []string{fmt.Sprintf("%dM", nominalKeys/1_000_000), fmt.Sprintf("%d", tenants)}
			for _, scheme := range []aria.Scheme{aria.AriaHash, aria.ShieldStoreScheme} {
				// Each tenant runs in its own enclave with a 1/T
				// share of the EPC budgets; report the mean.
				total := 0.0
				for tn := 0; tn < tenants; tn++ {
					opts := p.baseOptions(scheme, keys)
					opts.SecureCacheBytes = p.cacheBytes() / tenants
					opts.ShieldStoreRootBytes = p.ssRoots() / tenants
					opts.Seed = uint64(p.Seed) + uint64(tn)
					wc := wcfg
					wc.Seed = p.Seed + int64(tn)*997
					r, err := runPoint(p, opts, wc)
					if err != nil {
						return fmt.Errorf("fig16a %v tenants=%d: %w", scheme, tenants, err)
					}
					total += r.Throughput
				}
				row = append(row, kops(total/float64(tenants)))
			}
			t.add(row...)
		}
	}
	t.write(w)
	return nil
}

// ---- Figure 16(b) -------------------------------------------------------------------

func fig16b(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "fig16b", "skewness sweep, R95, 16B values")
	keys := p.keys10M()
	t := newTable("skewness", "aria-h", "shieldstore", "aria/ss")
	for _, skew := range []float64{0.8, 0.9, 0.95, 0.99, 1.0, 1.2} {
		wcfg := ycsb(keys, workload.Zipfian, 0.95, 16, skew, p.Seed)
		ra, err := runPoint(p, p.baseOptions(aria.AriaHash, keys), wcfg)
		if err != nil {
			return err
		}
		rs, err := runPoint(p, p.baseOptions(aria.ShieldStoreScheme, keys), wcfg)
		if err != nil {
			return err
		}
		ratio := 0.0
		if rs.Throughput > 0 {
			ratio = ra.Throughput / rs.Throughput
		}
		t.add(fmt.Sprintf("%.2f", skew), kops(ra.Throughput), kops(rs.Throughput),
			fmt.Sprintf("%.2fx", ratio))
	}
	t.write(w)
	return nil
}

// ---- Memory consumption (§VI-D4) -----------------------------------------------------

func memtab(p Params, w io.Writer) error {
	p = p.withDefaults()
	fmt.Fprintln(w, "\n== memtab: per-item memory consumption analysis (§VI-D4)")
	t := newTable("component", "bytes/item", "where")
	t.add("encryption counter", "16", "untrusted (Merkle leaf)")
	t.add("MAC", "16", "untrusted (entry)")
	t.add("RedPtr", "8", "untrusted (entry)")
	t.add("key hint", "4", "untrusted (entry, Aria-H)")
	t.add("value length", "2", "untrusted (entry)")
	t.add("chain pointer", "8", "untrusted (entry, Aria-H)")
	t.add("Merkle inner MACs", "~16/(arity-1)", "untrusted (tree)")
	t.add("allocator bitmap", "1 bit", "EPC")
	t.add("allocator free list", "4", "untrusted")
	t.add("bucket count", "2/bucket-load", "EPC (Aria-H)")
	t.write(w)
	// Concrete numbers for the paper's 10M keyspace.
	keys := 10_000_000
	ctrBytes := keys * 16
	fmt.Fprintf(w, "\n   10M keyspace: counters = %d MB; full Merkle tree (arity 8) = ~%d MB untrusted\n",
		ctrBytes>>20, ctrBytes*8/7>>20)
	return nil
}
