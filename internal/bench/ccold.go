package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

// ccold measures what the compressed cold tier buys on the fig13-style
// keyspace sweep: the same skewed R50 workload against a durable store
// checkpointing every ckpt-every logged records, with Options.ColdCompress
// off (whole-keyspace sealed snapshots) and on (incremental sorted
// compressed segments + demotion of untouched keys). With snapshots the
// per-checkpoint cost grows with the keyspace, so throughput falls off a
// cliff as the keyspace outgrows what a checkpoint can amortize; segments
// cost O(dirty keys), and demotion keeps the EPC-resident hot set small,
// so the cliff — the crossover — moves to a larger keyspace. The last
// table reports each arm's crossover (the largest swept keyspace still
// holding >= 50% of its smallest-keyspace throughput);
// TestCcoldCrossoverFloor pins the shift against the committed snapshot.

func init() {
	register("ccold", "Extension: cold-tier compression + segment compaction move the EPC crossover", ccoldExp)
}

// ccoldMBs is the swept nominal keyspace, matching fig13.
var ccoldMBs = []int{119, 128, 256, 512, 1024, 1536, 2048}

func ccoldExp(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "ccold", "cold-tier compression: durable keyspace sweep, skew R50, 16B values")
	sweep := newTable("keyspaceMB", "keys", "cold-off", "cold-on", "speedup", "swaps-off", "swaps-on")
	disk := newTable("keyspaceMB", "disk-off-kb", "disk-on-kb", "disk-ratio", "comp-ratio", "segs", "cold-keys")
	offT := make([]float64, 0, len(ccoldMBs))
	onT := make([]float64, 0, len(ccoldMBs))
	for _, mb := range ccoldMBs {
		keys := mb << 20 / 16 / p.Scale
		off, offDisk, err := ccoldPoint(p, keys, false)
		if err != nil {
			return fmt.Errorf("ccold %dMB cold-off: %w", mb, err)
		}
		on, onDisk, err := ccoldPoint(p, keys, true)
		if err != nil {
			return fmt.Errorf("ccold %dMB cold-on: %w", mb, err)
		}
		offT = append(offT, off.Throughput)
		onT = append(onT, on.Throughput)
		sweep.add(fmt.Sprintf("%d", mb), fmt.Sprintf("%d", keys),
			kops(off.Throughput), kops(on.Throughput),
			fmt.Sprintf("%.2fx", safeDiv(on.Throughput, off.Throughput)),
			fmt.Sprintf("%d", off.Stats.PageSwaps), fmt.Sprintf("%d", on.Stats.PageSwaps))
		compRatio := 1.0
		if on.Stats.CompRawBytes > 0 {
			compRatio = float64(on.Stats.CompBytes) / float64(on.Stats.CompRawBytes)
		}
		disk.add(fmt.Sprintf("%d", mb),
			fmt.Sprintf("%d", offDisk>>10), fmt.Sprintf("%d", onDisk>>10),
			fmt.Sprintf("%.2f", safeDiv(float64(onDisk), float64(offDisk))),
			fmt.Sprintf("%.2f", compRatio),
			fmt.Sprintf("%d", on.Stats.Segments), fmt.Sprintf("%d", on.Stats.ColdKeys))
	}
	sweep.write(w)
	fmt.Fprintln(w, "   [on-disk checkpoint state after the measured window]")
	disk.write(w)

	offCo := ccoldCrossover(offT)
	onCo := ccoldCrossover(onT)
	co := newTable("arm", "crossoverMB", "shift")
	co.add("cold-off", fmt.Sprintf("%d", offCo), "1.00x")
	co.add("cold-on", fmt.Sprintf("%d", onCo),
		fmt.Sprintf("%.2fx", safeDiv(float64(onCo), float64(offCo))))
	fmt.Fprintln(w, "   [crossover: largest keyspace holding >= 50% of the smallest-keyspace throughput]")
	co.write(w)
	return nil
}

// ccoldCrossover returns the largest swept keyspace (nominal MB) whose
// throughput still holds at least half of the smallest-keyspace
// throughput; the sweep is monotonically harder, so the scan stops at
// the first point below the bar.
func ccoldCrossover(tputs []float64) int {
	base := tputs[0]
	co := ccoldMBs[0]
	for i, tp := range tputs {
		if tp < base/2 {
			break
		}
		co = ccoldMBs[i]
	}
	return co
}

// ccoldPoint measures one arm at one keyspace: load the full keyspace
// into a fresh durable lineage, seal one baseline checkpoint, then
// reopen with the arm's cold-tier setting and measure the skewed R50
// workload with checkpoints driven explicitly at a fixed op cadence.
// Explicit checkpoints keep the arms deterministic — the async
// auto-checkpoint path (Options.CheckpointEvery) runs in a background
// goroutine whose completion relative to the measured window is racy and
// whose errors only surface at Close. Returns the measured point and the
// on-disk size of the checkpoint state (snapshots or segments) left
// after the window.
func ccoldPoint(p Params, keys int, cold bool) (Result, int64, error) {
	dir, err := os.MkdirTemp("", "aria-bench-ccold-")
	if err != nil {
		return Result{}, 0, err
	}
	defer os.RemoveAll(dir)
	wcfg := ycsb(keys, workload.Zipfian, 0.5, 16, 0.99, p.Seed)

	// Load phase: one explicit checkpoint at the end seals the baseline.
	opts := p.baseOptions(aria.AriaHash, keys)
	opts.DataDir = dir
	opts.Fsync = aria.FsyncNever
	loadGen, err := workload.New(wcfg)
	if err != nil {
		return Result{}, 0, err
	}
	st, err := buildStore(opts, loadGen)
	if err != nil {
		return Result{}, 0, err
	}
	d := st.(aria.Durable)
	if err := d.Checkpoint(); err != nil {
		return Result{}, 0, err
	}
	if err := d.Close(); err != nil {
		return Result{}, 0, err
	}

	// Measured phase: recover the lineage under the arm's configuration.
	opts.ColdCompress = cold
	st, err = aria.Open(opts)
	if err != nil {
		return Result{}, 0, err
	}
	r, err := ccoldMeasure(st, wcfg, p.Warmup, p.Ops, ccoldEvery(p))
	if cerr := st.(aria.Durable).Close(); err == nil && cerr != nil {
		err = fmt.Errorf("close after measured window: %w", cerr)
	}
	if err != nil {
		return Result{}, 0, err
	}
	size, err := checkpointStateBytes(dir)
	if err != nil {
		return Result{}, 0, err
	}
	return r, size, nil
}

// ccoldMeasure replays warmup+ops requests with an explicit synchronous
// checkpoint every `every` ops in both phases: warmup checkpoints bring
// the cold-on arm to steady state (demotion has happened) before the
// clock starts, and measured checkpoints charge their full sealing,
// compression, and paging cost to the window like any other operation.
func ccoldMeasure(st aria.Store, wcfg workload.Config, warmup, ops, every int) (Result, error) {
	gen, err := workload.New(wcfg)
	if err != nil {
		return Result{}, err
	}
	d := st.(aria.Durable)
	var op workload.Op
	run := func(n int, phase string) error {
		for i := 0; i < n; i++ {
			gen.Next(&op)
			if err := apply(st, &op); err != nil {
				return fmt.Errorf("%s op %d: %w", phase, i, err)
			}
			if (i+1)%every == 0 {
				if err := d.Checkpoint(); err != nil {
					return fmt.Errorf("%s checkpoint at op %d: %w", phase, i, err)
				}
			}
		}
		return nil
	}
	st.SetMeasuring(false)
	if err := run(warmup, "warmup"); err != nil {
		return Result{}, err
	}
	st.SetMeasuring(true)
	st.ResetStats()
	if err := run(ops, "measured"); err != nil {
		return Result{}, err
	}
	stats := st.Stats()
	st.SetMeasuring(false)
	r := Result{Scheme: stats.Scheme, Stats: stats}
	if stats.SimSeconds > 0 {
		r.Throughput = float64(ops) / stats.SimSeconds
	}
	return r, nil
}

// ccoldEvery is the checkpoint cadence in ops, scaled to the measured
// window so the same number of checkpoints land in it at any -ops
// setting.
func ccoldEvery(p Params) int {
	every := p.Ops / 10
	if every < 500 {
		every = 500
	}
	return every
}

// checkpointStateBytes sums the on-disk checkpoint state in dir —
// snapshots for the cold-off arm, segments plus set manifests for the
// cold-on arm — excluding the WAL, whose size the checkpoint cadence
// fixes identically across arms.
func checkpointStateBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		name := e.Name()
		if len(name) > 4 && name[:4] == "wal-" {
			continue
		}
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}
