// Package bench is the experiment harness of the reproduction: one runner
// per table and figure of the paper's evaluation (§VI). Each runner builds
// the stores, replays the exact workload the paper describes, measures
// throughput on the simulated clock, and prints the same rows/series the
// paper reports.
//
// All experiments support proportional scaling (DESIGN.md §1): keyspace,
// EPC size, Secure Cache, and ShieldStore root budget are all divided by
// Params.Scale, which preserves every ratio that drives the results while
// letting the full suite run on a laptop. Scale 1 reproduces the paper's
// absolute sizes.
package bench

import (
	"fmt"
	"io"
	"sort"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

// Params tunes experiment size.
type Params struct {
	// Scale divides keyspace and all EPC budgets (default 16).
	Scale int
	// Ops is the number of measured operations per data point
	// (default 100000).
	Ops int
	// Warmup operations run before the measured window (default Ops/2).
	Warmup int
	// Seed drives workload determinism.
	Seed int64
	// TreeOpsDivisor reduces measured ops for B-tree stores, which cost
	// ~10x per op (default 4).
	TreeOpsDivisor int
	// Batch, when >1, narrows the batch experiment's sweep to {1, Batch}
	// (0 runs the default size sweep).
	Batch int
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 16
	}
	if p.Ops <= 0 {
		p.Ops = 100000
	}
	if p.Warmup <= 0 {
		p.Warmup = p.Ops / 2
	}
	if p.TreeOpsDivisor <= 0 {
		p.TreeOpsDivisor = 4
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// paper-scale constants (before Scale division).
const (
	paperEPC        = 91 << 20 // testbed EPC
	paperSSRoots    = 64 << 20 // ShieldStore root budget
	paperKeys10M    = 10_000_000
	paperCacheShare = 0.8 // "Secure Cache as large as possible"
)

func (p Params) epc() int     { return paperEPC / p.Scale }
func (p Params) ssRoots() int { return paperSSRoots / p.Scale }
func (p Params) keys10M() int { return paperKeys10M / p.Scale }
func (p Params) cacheBytes() int {
	return int(float64(p.epc()) * paperCacheShare)
}

// Result is one measured data point.
type Result struct {
	Scheme     aria.Scheme
	Throughput float64 // simulated ops/s
	Stats      aria.Stats
}

func (p Params) baseOptions(scheme aria.Scheme, keys int) aria.Options {
	pin := (4 << 20) / p.Scale
	if pin < 32<<10 {
		pin = 32 << 10
	}
	return aria.Options{
		Scheme:               scheme,
		EPCBytes:             p.epc(),
		ExpectedKeys:         keys,
		SecureCacheBytes:     p.cacheBytes(),
		PinBudgetBytes:       pin,
		ShieldStoreRootBytes: p.ssRoots(),
		MeasureOff:           true,
		Seed:                 uint64(p.Seed),
	}
}

// buildStore opens a store and bulk-loads the full keyspace with the
// generator's deterministic values (measurement off). While a -json
// report is being collected the store is opened with a fresh metrics
// registry, so measure() can report latency histograms; instrumentation
// only reads the simulated clock, so the measured results are identical
// either way (TestMeteredSimCyclesUnchanged pins this).
func buildStore(opts aria.Options, gen *workload.Generator) (aria.Store, error) {
	if reg := newPointRegistry(); reg != nil {
		opts.Metrics = reg
	}
	st, err := aria.Open(opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < gen.Keys(); i++ {
		if err := st.Put(gen.KeyAt(i), gen.ValueAt(i)); err != nil {
			return nil, fmt.Errorf("load key %d: %w", i, err)
		}
	}
	return st, nil
}

// measure replays warmup+ops requests from gen against st and returns the
// simulated throughput of the measured window.
func measure(st aria.Store, gen *workload.Generator, warmup, ops int) (Result, error) {
	var op workload.Op
	st.SetMeasuring(false)
	for i := 0; i < warmup; i++ {
		gen.Next(&op)
		if err := apply(st, &op); err != nil {
			return Result{}, err
		}
	}
	st.SetMeasuring(true)
	st.ResetStats()
	reg := currentRegistry()
	if reg != nil {
		// Drop warmup and load-phase samples: the report's histograms
		// cover exactly the measured window, like the counters.
		reg.Reset()
	}
	for i := 0; i < ops; i++ {
		gen.Next(&op)
		if err := apply(st, &op); err != nil {
			return Result{}, err
		}
	}
	stats := st.Stats()
	st.SetMeasuring(false)
	if reg != nil {
		captureLatency(reg, stats.Scheme, ops)
	}
	r := Result{Scheme: stats.Scheme, Stats: stats}
	if stats.SimSeconds > 0 {
		r.Throughput = float64(ops) / stats.SimSeconds
	}
	return r, nil
}

func apply(st aria.Store, op *workload.Op) error {
	if op.Read {
		_, err := st.Get(op.Key)
		if err == aria.ErrNotFound {
			return nil
		}
		return err
	}
	return st.Put(op.Key, op.Value)
}

func isTree(s aria.Scheme) bool {
	return s == aria.AriaTree || s == aria.NoCacheTree || s == aria.BaselineTree
}

func (p Params) opsFor(s aria.Scheme) int {
	if isTree(s) {
		return p.Ops / p.TreeOpsDivisor
	}
	return p.Ops
}

func (p Params) warmupFor(s aria.Scheme) int {
	if isTree(s) {
		return p.Warmup / p.TreeOpsDivisor
	}
	return p.Warmup
}

// runPoint builds one store and measures one workload against it.
func runPoint(p Params, opts aria.Options, wcfg workload.Config) (Result, error) {
	loadGen, err := workload.New(wcfg)
	if err != nil {
		return Result{}, err
	}
	st, err := buildStore(opts, loadGen)
	if err != nil {
		return Result{}, err
	}
	gen, err := workload.New(wcfg)
	if err != nil {
		return Result{}, err
	}
	return measure(st, gen, p.warmupFor(opts.Scheme), p.opsFor(opts.Scheme))
}

// runSeries builds the store once and measures several workloads against it
// in sequence (cheap when only read ratio / distribution changes).
func runSeries(p Params, opts aria.Options, wcfgs []workload.Config) ([]Result, error) {
	loadGen, err := workload.New(wcfgs[0])
	if err != nil {
		return nil, err
	}
	st, err := buildStore(opts, loadGen)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(wcfgs))
	for _, wc := range wcfgs {
		gen, err := workload.New(wc)
		if err != nil {
			return nil, err
		}
		r, err := measure(st, gen, p.warmupFor(opts.Scheme), p.opsFor(opts.Scheme))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ---- reporting ----------------------------------------------------------------

// table accumulates rows and prints them column-aligned.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	t.capture() // feed the -json report, when one is being collected
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func kops(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Experiment is a registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Params, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Params, io.Writer) error) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// Lookup returns a registered experiment.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func banner(w io.Writer, p Params, id, title string) {
	fmt.Fprintf(w, "\n== %s: %s\n", id, title)
	fmt.Fprintf(w, "   scale=1/%d (EPC %.2f MB, ShieldStore roots %.2f MB), ops/point=%d, seed=%d\n",
		p.Scale, float64(p.epc())/(1<<20), float64(p.ssRoots())/(1<<20), p.Ops, p.Seed)
}
