package bench

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet"
)

// wireExp measures what the version-2 multiplexed transport buys a
// single connection: throughput of one client issuing gets lock-step
// (depth 1 — each request waits for its response, the version-1 wire
// discipline) against the same client with N requests pipelined on the
// SAME connection. Lock-step pays one full service round trip per
// operation; pipelining overlaps the round trips, so the connection is
// bounded by server capacity instead of latency.
//
// The store is wrapped with a fixed per-get service latency
// (wireServiceLat). That stands in for the request latency of a real
// deployment — enclave edge crossings, cross-machine RTT — which
// loopback hides: on loopback the round trip is so short that both
// wire disciplines just measure CPU, and on a single-core runner they
// measure the SAME CPU. Overlapping waits is precisely the property
// the tagged-frame transport adds, and with the latency made explicit
// the measured speedup is a transport property, not a machine property.
//
// Unlike the other experiments this one runs on the real network stack
// and the wall clock, not the simulated cost model — absolute numbers
// still vary by machine, but the depth-16 speedup over lock-step is
// pinned (>= 3x) by TestWireSpeedupFloor. The wire snapshot is
// therefore NOT part of the 5% drift guard.

func init() {
	register("wire", "Extension: pipelined multiplexed transport, one-connection throughput vs depth", wireExp)
}

// wireDepths is the swept pipeline depth. 1 is the lock-step baseline
// every speedup is relative to.
var wireDepths = []int{1, 4, 16, 64}

// wireKeys is the preloaded keyspace. Small on purpose: the experiment
// measures the transport, not the store, so every get must hit.
const wireKeys = 4096

// wireServiceLat is the modelled per-get service latency. 200us is
// roughly one cross-rack RTT; it is two orders of magnitude above
// loopback, so the wait — the thing pipelining overlaps — dominates
// the per-op cost on any machine.
const wireServiceLat = 200 * time.Microsecond

// wireWorkers sizes the per-connection pool so the deepest swept
// pipeline is not capped by workers (see DESIGN.md on pool sizing:
// workers bound in-flight service, depth bounds in-flight requests).
const wireWorkers = 64

// latStore adds the modelled service latency to every get. The wait is
// a sleep, not spin: workers parked in it overlap, exactly like
// requests parked in a real enclave transition or remote hop.
type latStore struct {
	aria.Store
}

func (l *latStore) Get(key []byte) ([]byte, error) {
	time.Sleep(wireServiceLat)
	return l.Store.Get(key)
}

func (l *latStore) ConcurrentSafe() bool {
	cs, ok := l.Store.(aria.ConcurrentStore)
	return ok && cs.ConcurrentSafe()
}

func wireExp(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "wire", "tagged-frame pipelining on one connection; lock-step pays RTT per op")

	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     p.epc(),
		ExpectedKeys: wireKeys,
		Seed:         uint64(p.Seed),
		Shards:       4, // concurrency-safe store, so the server pool can overlap
	})
	if err != nil {
		return err
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("wire-%05d", i%wireKeys)) }
	val := make([]byte, 128)
	for i := 0; i < wireKeys; i++ {
		if err := st.Put(key(i), val); err != nil {
			return err
		}
	}

	srv := kvnet.NewServerConfig(&latStore{Store: st}, kvnet.ServerConfig{ConnWorkers: wireWorkers})
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	cl, err := kvnet.Dial(lis.Addr().String())
	if err != nil {
		return err
	}
	defer cl.Close()

	// Warm the connection, the pool, and the store's read path.
	for i := 0; i < 64; i++ {
		if _, err := cl.Get(key(i)); err != nil {
			return fmt.Errorf("warmup get: %w", err)
		}
	}

	// Each op waits out wireServiceLat, so the point budget is ops/10
	// (floor 512): at the default Params that keeps the lock-step
	// baseline around a second instead of half a minute.
	ops := p.Ops / 10
	if ops < 512 {
		ops = 512
	}
	t := newTable("depth", "ops", "elapsed-ms", "throughput", "speedup")
	base := 0.0
	for _, depth := range wireDepths {
		thr, elapsed, err := wirePoint(cl, key, ops, depth)
		if err != nil {
			return fmt.Errorf("wire depth=%d: %w", depth, err)
		}
		if depth == 1 {
			base = thr
		}
		speedup := 0.0
		if base > 0 {
			speedup = thr / base
		}
		t.add(fmt.Sprintf("%d", depth), fmt.Sprintf("%d", ops),
			fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1e3),
			kops(thr), fmt.Sprintf("%.2fx", speedup))
	}
	t.write(w)
	return nil
}

// wirePoint issues ops gets through one client, depth goroutines deep,
// and returns the wall-clock throughput. depth=1 is strict lock-step:
// one goroutine, each get blocking on its own response. Higher depths
// keep up to depth requests in flight on the shared connection; the
// client's tag table routes each response to its issuer.
func wirePoint(cl *kvnet.Client, key func(int) []byte, ops, depth int) (float64, time.Duration, error) {
	perG := ops / depth
	errs := make([]error, depth)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < depth; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := cl.Get(key(g*perG + i)); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	return float64(perG*depth) / elapsed.Seconds(), elapsed, nil
}
