package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must have a
	// registered runner.
	want := []string{
		"fig2", "table1", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16a", "fig16b", "memtab",
		"xswap", "xscan", "xshard", "batch", "persist", "repl",
		"ccache", "wire", "ycsb", "ccold",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry holds %d experiments, want %d", got, len(want))
	}
	// All() must be sorted and stable.
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Errorf("All() not sorted at %d: %s >= %s", i, all[i-1].ID, all[i].ID)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("col-a", "b", "third-column")
	tb.add("1", "22", "3")
	tb.add("longer-cell", "2", "33")
	var buf bytes.Buffer
	tb.write(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	// Columns must be aligned: the second column starts at the same
	// offset in every line.
	idx := strings.Index(lines[0], "b")
	for _, ln := range lines[1:] {
		if len(ln) <= idx {
			t.Fatalf("line too short: %q", ln)
		}
	}
}

func TestKopsFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{500, "500"},
		{1500, "2K"},
		{999999, "1000K"},
		{2_340_000, "2.34M"},
	}
	for _, tc := range cases {
		if got := kops(tc.v); got != tc.want {
			t.Errorf("kops(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Scale != 16 || p.Ops != 100000 || p.Warmup != 50000 || p.Seed != 42 {
		t.Errorf("defaults = %+v", p)
	}
	if p.epc() != (91<<20)/16 {
		t.Errorf("epc = %d", p.epc())
	}
	if p.opsFor(aria.AriaTree) >= p.opsFor(aria.AriaHash) {
		t.Error("tree ops not reduced")
	}
}

func TestRunPointProducesThroughput(t *testing.T) {
	p := Params{Scale: 1024, Ops: 2000, Warmup: 500, Seed: 1}.withDefaults()
	keys := 4000
	r, err := runPoint(p, p.baseOptions(aria.AriaHash, keys),
		ycsb(keys, workload.Zipfian, 0.95, 16, 0.99, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput <= 0 {
		t.Error("no throughput measured")
	}
	if r.Stats.SimCycles == 0 {
		t.Error("no cycles accrued")
	}
}

func TestRunSeriesSharesStore(t *testing.T) {
	p := Params{Scale: 1024, Ops: 1000, Warmup: 200, Seed: 1}.withDefaults()
	keys := 4000
	wcfgs := []workload.Config{
		ycsb(keys, workload.Zipfian, 0.5, 16, 0.99, 1),
		ycsb(keys, workload.Zipfian, 1.0, 16, 0.99, 1),
	}
	rs, err := runSeries(p, p.baseOptions(aria.ShieldStoreScheme, keys), wcfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results", len(rs))
	}
	// The read-only workload must be at least as fast as the 50/50 one
	// (Puts pay the extra root update).
	if rs[1].Throughput < rs[0].Throughput {
		t.Errorf("R100 (%f) slower than R50 (%f)", rs[1].Throughput, rs[0].Throughput)
	}
}

func TestTinyExperimentsRun(t *testing.T) {
	// table1 and memtab are cheap end-to-end sanity checks of the
	// experiment plumbing.
	for _, id := range []string{"table1", "memtab"} {
		e, _ := Lookup(id)
		var buf bytes.Buffer
		if err := e.Run(Params{Scale: 1024, Ops: 100}, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

// TestScalingPreservesShape is the empirical backbone of the proportional
// scaling argument (DESIGN.md §1): the Aria-vs-ShieldStore throughput ratio
// at one scale must be close to the ratio at double that scale, because
// every quantity that drives the result (keyspace/EPC, chain length, cache
// fraction) is scale-invariant.
func TestScalingPreservesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling comparison is slow")
	}
	ratioAt := func(scale int) float64 {
		p := Params{Scale: scale, Ops: 20000, Warmup: 10000, Seed: 7}.withDefaults()
		keys := p.keys10M()
		wcfg := ycsb(keys, workload.Zipfian, 0.95, 16, 0.99, 7)
		ra, err := runPoint(p, p.baseOptions(aria.AriaHash, keys), wcfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := runPoint(p, p.baseOptions(aria.ShieldStoreScheme, keys), wcfg)
		if err != nil {
			t.Fatal(err)
		}
		return ra.Throughput / rs.Throughput
	}
	r128 := ratioAt(128)
	r64 := ratioAt(64)
	if r128 <= 0 || r64 <= 0 {
		t.Fatal("degenerate ratios")
	}
	rel := r64 / r128
	if rel < 0.8 || rel > 1.25 {
		t.Errorf("Aria/SS ratio drifts across scales: %.3f at 1/64 vs %.3f at 1/128", r64, r128)
	}
}

// TestShardScalingUniform is the acceptance check for the sharded store's
// scale-out claim: with the total EPC budget held constant, 8 shards under
// uniform traffic must deliver at least 3x the simulated throughput of one
// shard, because per-shard clocks advance independently and the aggregate
// charges only the slowest shard.
func TestShardScalingUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("shard scaling sweep is slow")
	}
	// Scale 1/128 and up keeps per-shard caches big enough that slot
	// quantization doesn't distort the comparison (at 1/512 a shard's
	// cache holds only a few hundred slots and scaling collapses).
	p := Params{Scale: 128, Ops: 16000, Warmup: 4000, Seed: 7}.withDefaults()
	keys := p.keys10M()
	wcfg := ycsb(keys, workload.Uniform, 0.95, 16, 0.99, 7)
	thrAt := func(n int) float64 {
		opts := p.baseOptions(aria.AriaHash, keys)
		opts.Shards = n
		r, err := runPoint(p, opts, wcfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		return r.Throughput
	}
	t1 := thrAt(1)
	t8 := thrAt(8)
	if t1 <= 0 || t8 <= 0 {
		t.Fatal("degenerate throughput")
	}
	if speedup := t8 / t1; speedup < 3 {
		t.Errorf("8-shard uniform speedup = %.2fx, want >= 3x (t1=%.0f t8=%.0f)",
			speedup, t1, t8)
	}
}

func TestParseMetric(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"500", 500, true},
		{"123K", 123000, true},
		{"2.34M", 2.34e6, true},
		{"1.25x", 1.25, true},
		{"87%", 87, true},
		{"uniform-R95", 0, false},
		{"true", 0, false},
		{"", 0, false},
		{"K", 0, false},
	}
	for _, tc := range cases {
		got, ok := parseMetric(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("parseMetric(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// TestRunCollectCapturesTables checks the -json plumbing end to end: the
// captured report mirrors the printed table, numeric columns parsed.
func TestRunCollectCapturesTables(t *testing.T) {
	e, ok := Lookup("memtab")
	if !ok {
		t.Fatal("memtab not registered")
	}
	var buf bytes.Buffer
	rep, err := RunCollect(e, Params{Scale: 1024, Ops: 100}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("RunCollect suppressed the text output")
	}
	if rep.Experiment != "memtab" || rep.Scale != 1024 {
		t.Errorf("report params = %+v", rep)
	}
	if len(rep.Tables) == 0 {
		t.Fatal("no tables captured")
	}
	tbl := rep.Tables[0]
	if len(tbl.Header) == 0 || len(tbl.Rows) == 0 {
		t.Fatalf("empty capture: %+v", tbl)
	}
	numeric := false
	for _, r := range tbl.Rows {
		if len(r.Cells) == 0 {
			t.Fatal("captured row has no cells")
		}
		if len(r.Values) > 0 {
			numeric = true
		}
	}
	if !numeric {
		t.Error("no numeric cells parsed from any row")
	}
	// Capture must be off again after the run: a table written now must
	// not append to the returned report.
	before := len(rep.Tables)
	tb := newTable("a")
	tb.add("1")
	tb.write(io.Discard)
	if len(rep.Tables) != before {
		t.Error("collector still active after RunCollect returned")
	}
}

// TestAllExperimentsAtTinyScale runs every registered experiment end to end
// at a minuscule scale: a regression gate that every runner builds its
// stores, replays its workloads, and emits rows without error.
func TestAllExperimentsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep is slow")
	}
	p := Params{Scale: 2048, Ops: 400, Warmup: 100, Seed: 5}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(p, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}
