package bench

import (
	"fmt"
	"io"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

// xshard measures scale-out across the sharded store (Options.Shards): the
// same total EPC budget and keyspace split across 1/2/4/8 independent
// enclaves. Each shard runs its own simulated clock, so the aggregate
// SimSeconds is the slowest shard's clock — the wall time of a perfectly
// parallel deployment. Uniform traffic spreads evenly and should scale
// near-linearly; Zipf-0.99 concentrates the hot set on few shards, so the
// straggler shard bounds the aggregate and exposes the skew penalty the
// paper's single-enclave design sidesteps.

func init() {
	register("xshard", "Extension: throughput vs shard count, uniform and Zipf-0.99", xshard)
}

func xshard(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "xshard", "1/2/4/8 shards, constant total EPC, R95")
	keys := p.keys10M()
	t := newTable("workload", "shards", "throughput", "speedup", "hit-ratio")
	for _, wl := range []struct {
		name string
		dist workload.Dist
	}{
		{"uniform-R95", workload.Uniform},
		{"zipf0.99-R95", workload.Zipfian},
	} {
		base := 0.0
		for _, n := range []int{1, 2, 4, 8} {
			opts := p.baseOptions(aria.AriaHash, keys)
			opts.Shards = n
			r, err := runPoint(p, opts, ycsb(keys, wl.dist, 0.95, 16, 0.99, p.Seed))
			if err != nil {
				return fmt.Errorf("xshard %s n=%d: %w", wl.name, n, err)
			}
			if n == 1 {
				base = r.Throughput
			}
			speedup := 0.0
			if base > 0 {
				speedup = r.Throughput / base
			}
			t.add(wl.name, fmt.Sprintf("%d", n), kops(r.Throughput),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.0f%%", r.Stats.CacheHitRatio*100))
		}
	}
	t.write(w)
	return nil
}
