package bench

import (
	"io"
	"strconv"
	"strings"
	"sync"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/obs"
)

// Machine-readable experiment output. RunCollect captures every table an
// experiment prints into a Report, with numeric cells parsed back out of
// their display form, so `aria-bench -json` can persist per-row ops/s and
// the perf trajectory stays diffable across PRs.

// Row is one captured table row: the display cells verbatim, plus every
// cell that parses as a number keyed by its column header (throughputs in
// ops/s, ratios as plain floats).
type Row struct {
	Cells  []string           `json:"cells"`
	Values map[string]float64 `json:"values,omitempty"`
}

// TableData is one captured table.
type TableData struct {
	Header []string `json:"header"`
	Rows   []Row    `json:"rows"`
}

// Report is everything one experiment run printed, plus the parameters
// that produced it (scale matters when comparing across commits).
type Report struct {
	Experiment string      `json:"experiment"`
	Title      string      `json:"title"`
	Scale      int         `json:"scale"`
	Ops        int         `json:"ops"`
	Seed       int64       `json:"seed"`
	Tables     []TableData `json:"tables"`
	// Latency carries one entry per measured data point, in measurement
	// order: per-operation latency histograms from the obs registry the
	// harness attaches to each store while collecting. Simulated-cycle
	// quantiles are deterministic for a given seed and scale; wall-ns
	// quantiles depend on the machine and are informational.
	Latency []LatencyPoint `json:"latency,omitempty"`
}

// LatencyPoint is the latency distribution of one measured window,
// keyed by operation ("get", "put", ...). Only operations the workload
// actually issued appear.
type LatencyPoint struct {
	Scheme    string                           `json:"scheme"`
	Ops       int                              `json:"ops"`
	WallNs    map[string]obs.HistogramSnapshot `json:"wall_ns,omitempty"`
	SimCycles map[string]obs.HistogramSnapshot `json:"sim_cycles,omitempty"`
}

var (
	collectMu  sync.Mutex
	collecting *Report
	activeReg  *obs.Registry // registry of the store being measured, when collecting
)

// newPointRegistry returns a fresh registry for the next store when a
// report is being collected, nil otherwise — plain runs keep the
// zero-instrumentation path.
func newPointRegistry() *obs.Registry {
	collectMu.Lock()
	defer collectMu.Unlock()
	if collecting == nil {
		return nil
	}
	activeReg = obs.NewRegistry()
	return activeReg
}

// currentRegistry returns the registry attached to the store under
// measurement, nil when not collecting.
func currentRegistry() *obs.Registry {
	collectMu.Lock()
	defer collectMu.Unlock()
	return activeReg
}

// captureLatency appends one measured window's per-op histograms
// (merged across shards) to the active report.
func captureLatency(reg *obs.Registry, scheme aria.Scheme, ops int) {
	snap := reg.Snapshot()
	pt := LatencyPoint{Scheme: scheme.String(), Ops: ops}
	for _, op := range []string{"get", "put", "delete", "scan"} {
		if h, ok := snap.Histogram("aria_op_wall_ns", obs.Labels{"op": op}); ok && h.Count > 0 {
			if pt.WallNs == nil {
				pt.WallNs = make(map[string]obs.HistogramSnapshot)
			}
			pt.WallNs[op] = h
		}
		if h, ok := snap.Histogram("aria_op_sim_cycles", obs.Labels{"op": op}); ok && h.Count > 0 {
			if pt.SimCycles == nil {
				pt.SimCycles = make(map[string]obs.HistogramSnapshot)
			}
			pt.SimCycles[op] = h
		}
	}
	collectMu.Lock()
	if collecting != nil {
		collecting.Latency = append(collecting.Latency, pt)
	}
	collectMu.Unlock()
}

// RunCollect runs the experiment with table capture enabled: rows still
// print to w as usual, and the returned Report carries the same rows in
// structured form. Captures are serialized — concurrent RunCollect calls
// would interleave their tables.
func RunCollect(e Experiment, p Params, w io.Writer) (*Report, error) {
	filled := p.withDefaults()
	rep := &Report{
		Experiment: e.ID,
		Title:      e.Title,
		Scale:      filled.Scale,
		Ops:        filled.Ops,
		Seed:       filled.Seed,
	}
	collectMu.Lock()
	collecting = rep
	collectMu.Unlock()
	defer func() {
		collectMu.Lock()
		collecting = nil
		activeReg = nil
		collectMu.Unlock()
	}()
	if err := e.Run(p, w); err != nil {
		return nil, err
	}
	return rep, nil
}

// capture records a printed table into the active report, if any.
func (t *table) capture() {
	collectMu.Lock()
	defer collectMu.Unlock()
	if collecting == nil {
		return
	}
	td := TableData{Header: t.header}
	for _, cells := range t.rows {
		row := Row{Cells: cells}
		for i, c := range cells {
			if i >= len(t.header) {
				break
			}
			if v, ok := parseMetric(c); ok {
				if row.Values == nil {
					row.Values = make(map[string]float64)
				}
				row.Values[t.header[i]] = v
			}
		}
		td.Rows = append(td.Rows, row)
	}
	collecting.Tables = append(collecting.Tables, td)
}

// parseMetric inverts the display formats the tables use: kops suffixes
// ("500", "123K", "2.34M" — ops/s), ratio suffixes ("1.25x"), percents
// ("50%"), and bare numbers. Anything else is not a metric.
func parseMetric(s string) (float64, bool) {
	if s == "" {
		return 0, false
	}
	mult := 1.0
	switch s[len(s)-1] {
	case 'K':
		mult, s = 1e3, s[:len(s)-1]
	case 'M':
		mult, s = 1e6, s[:len(s)-1]
	case 'x', '%':
		s = s[:len(s)-1]
	}
	if s == "" || strings.ContainsAny(s, " abcdefghijklmnopqrstuvwxyz") {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v * mult, true
}
