package bench

import (
	"fmt"
	"io"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/ccache"
	"github.com/ariakv/aria/internal/workload"
)

// ccacheExp measures what the coherent client-side cache (package
// ccache) buys a skewed read workload. The paper's premise is that
// Zipf-0.99 concentrates most reads on a tiny hot set; a bounded LRU on
// the client serves exactly that hot set with zero network hops and
// zero enclave edge crossings. The experiment drives the production
// LRU — the same eviction, fill-guard, and invalidation code the
// Cache runs — against an in-process store under the simulated clock:
// a cache hit costs nothing, a miss pays the enclave ECALL edge cost
// plus the store read, and every write pays the edge cost, the store
// write, and the coherence invalidation (exactly what the server's
// push stream does to remote caches). The sweep crosses workload shape
// with cache capacity; the uniform rows are the control — when there
// is no skew, a small cache buys little, which is why this is a
// skew-tolerance experiment and not a free lunch.

func init() {
	register("ccache", "Extension: coherent client cache, hit rate and read speedup under skew", ccacheExp)
}

// ccachePcts is the swept cache capacity, as a percentage of the
// keyspace. 0 is the cache-off baseline each speedup is relative to.
var ccachePcts = []int{0, 1, 10, 50, 75}

func ccacheExp(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "ccache", "client LRU over the hot set; hits bypass the enclave edge entirely")
	keys := p.keys10M()
	t := newTable("workload", "cache", "entries", "hit-rate", "throughput", "speedup")
	for _, wl := range []struct {
		name      string
		dist      workload.Dist
		readRatio float64
	}{
		{"uniform-R95", workload.Uniform, 0.95},
		{"zipf0.99-R95", workload.Zipfian, 0.95},
		{"zipf0.99-R100", workload.Zipfian, 1.0},
	} {
		base := 0.0
		for _, pct := range ccachePcts {
			thr, hitRate, entries, err := ccachePoint(p, keys, wl.dist, wl.readRatio, pct)
			if err != nil {
				return fmt.Errorf("ccache %s cache=%d%%: %w", wl.name, pct, err)
			}
			if pct == 0 {
				base = thr
			}
			speedup := 0.0
			if base > 0 {
				speedup = thr / base
			}
			t.add(wl.name, fmt.Sprintf("%d%%", pct), fmt.Sprintf("%d", entries),
				fmt.Sprintf("%.1f%%", hitRate*100), kops(thr),
				fmt.Sprintf("%.2fx", speedup))
		}
	}
	t.write(w)
	return nil
}

// ccachePoint replays one workload through a ccache.LRU sized to pct%
// of the keyspace (0 = cache off) in front of one store, and returns
// the client-observed throughput plus the measured hit rate. Misses
// and writes pay the enclave edge cost a networked client pays per
// request; hits never reach the store, so they accrue zero simulated
// time — the whole point of the cache.
func ccachePoint(p Params, keys int, dist workload.Dist, readRatio float64, pct int) (thr, hitRate float64, entries int, err error) {
	wcfg := ycsb(keys, dist, readRatio, 16, 0.99, p.Seed)
	loadGen, err := workload.New(wcfg)
	if err != nil {
		return 0, 0, 0, err
	}
	st, err := buildStore(p.baseOptions(aria.AriaHash, keys), loadGen)
	if err != nil {
		return 0, 0, 0, err
	}
	edge, ok := st.(aria.EdgeCaller)
	if !ok {
		return 0, 0, 0, fmt.Errorf("store %T does not implement aria.EdgeCaller", st)
	}
	var lru *ccache.LRU
	maxEntries := keys * pct / 100
	if maxEntries > 0 {
		lru = ccache.NewLRU(maxEntries, -1, 0)
	}

	gen, err := workload.New(wcfg)
	if err != nil {
		return 0, 0, 0, err
	}
	var hits, misses uint64
	run := func(ops int, count bool) error {
		var op workload.Op
		for i := 0; i < ops; i++ {
			gen.Next(&op)
			if !op.Read {
				// Writes go to the server regardless of the cache, and
				// coherence drops the local copy — the same work the
				// push stream performs on every remote cache.
				edge.ChargeEcall()
				if err := st.Put(op.Key, op.Value); err != nil {
					return err
				}
				if lru != nil {
					lru.InvalidateKey(op.Key)
				}
				continue
			}
			if lru != nil {
				if _, ok := lru.Get(op.Key); ok {
					if count {
						hits++
					}
					continue // zero network hops, zero enclave entries
				}
			}
			if count {
				misses++
			}
			var tok ccache.FillToken
			if lru != nil {
				tok = lru.Begin(op.Key)
			}
			edge.ChargeEcall()
			v, err := st.Get(op.Key)
			if err != nil {
				if err == aria.ErrNotFound {
					continue
				}
				return err
			}
			if lru != nil {
				lru.Commit(tok, op.Key, v)
			}
		}
		return nil
	}
	// Warm until the cache has seen at least two full turnovers of its
	// capacity, so the measured window reflects the steady state.
	warm := p.Warmup
	if min := 2 * maxEntries; warm < min {
		warm = min
	}
	if err := run(warm, false); err != nil {
		return 0, 0, 0, err
	}
	st.SetMeasuring(true)
	st.ResetStats()
	if err := run(p.Ops, true); err != nil {
		return 0, 0, 0, err
	}
	s := st.Stats()
	st.SetMeasuring(false)
	if s.SimSeconds <= 0 {
		return 0, 0, 0, fmt.Errorf("no simulated time accrued (hit rate 100%%?)")
	}
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	if lru != nil {
		entries = lru.Len()
	}
	return float64(p.Ops) / s.SimSeconds, hitRate, entries, nil
}
