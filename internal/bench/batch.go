package bench

import (
	"fmt"
	"io"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

// batch measures the edge-cost amortization of the native batch path:
// the same keys issued as MGet/MPut batches of growing size, against the
// batch=1 arm as the single-op reference. Every batch pays one simulated
// ECALL/OCALL plus one boundary copy regardless of size, so cycles/key
// falls toward the pure per-key work as the batch grows; hotness-unaware
// schemes with heavy per-key verification (ShieldStore's bucket-chain
// MACs) keep a higher floor than Aria's cached path.

func init() {
	register("batch", "Extension: batched MGet/MPut edge-cost amortization vs batch size", batchExp)
}

// defaultBatchSizes is the sweep; 1 is the single-op reference arm.
var defaultBatchSizes = []int{1, 4, 16, 64, 256}

func (p Params) batchSizes() []int {
	if p.Batch > 1 {
		return []int{1, p.Batch}
	}
	return defaultBatchSizes
}

func batchExp(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "batch", "MGet/MPut batch-size sweep, uniform, 16B values")
	// A quarter-size keyspace keeps bucket chains short and the working
	// set cache-resident: per-key work stays low, so the per-batch edge
	// cost dominates and the amortization effect is measured cleanly
	// rather than being buried under chain-verification work.
	keys := p.keys10M() / 4
	if keys < 4096 {
		keys = 4096
	}
	schemes := []aria.Scheme{
		aria.AriaHash, aria.ShieldStoreScheme, aria.BaselineHash, aria.NoCacheHash,
	}
	sizes := p.batchSizes()

	tg := newTable("scheme", "batch", "keys-per-sec", "cycles-per-key", "speedup")
	tp := newTable("scheme", "batch", "keys-per-sec", "cycles-per-key", "speedup")
	for _, scheme := range schemes {
		wcfg := ycsb(keys, workload.Uniform, 1.0, 16, 0.99, p.Seed)
		loadGen, err := workload.New(wcfg)
		if err != nil {
			return err
		}
		st, err := buildStore(p.baseOptions(scheme, keys), loadGen)
		if err != nil {
			return fmt.Errorf("batch %v: %w", scheme, err)
		}
		var baseGet, basePut float64
		for _, b := range sizes {
			get, err := measureBatch(st, wcfg, p, b, true)
			if err != nil {
				return fmt.Errorf("batch %v mget b=%d: %w", scheme, b, err)
			}
			put, err := measureBatch(st, wcfg, p, b, false)
			if err != nil {
				return fmt.Errorf("batch %v mput b=%d: %w", scheme, b, err)
			}
			if b == 1 {
				baseGet, basePut = get.cyclesPerKey, put.cyclesPerKey
			}
			tg.add(scheme.String(), fmt.Sprintf("%d", b), kops(get.keysPerSec),
				fmt.Sprintf("%.0f", get.cyclesPerKey),
				fmt.Sprintf("%.2fx", safeDiv(baseGet, get.cyclesPerKey)))
			tp.add(scheme.String(), fmt.Sprintf("%d", b), kops(put.keysPerSec),
				fmt.Sprintf("%.0f", put.cyclesPerKey),
				fmt.Sprintf("%.2fx", safeDiv(basePut, put.cyclesPerKey)))
		}
	}
	fmt.Fprintf(w, "   [MGet]\n")
	tg.write(w)
	fmt.Fprintf(w, "   [MPut]\n")
	tp.write(w)
	return nil
}

type batchPoint struct {
	keysPerSec   float64
	cyclesPerKey float64
}

// measureBatch replays p.Ops keys against st as batches of b keys and
// reports per-key cost on the simulated clock. Reads draw existing keys;
// writes re-put them with the generator's values (steady-state overwrite,
// no allocation churn between arms).
func measureBatch(st aria.Store, wcfg workload.Config, p Params, b int, read bool) (batchPoint, error) {
	gen, err := workload.New(wcfg)
	if err != nil {
		return batchPoint{}, err
	}
	var op workload.Op
	next := func() ([]byte, []byte) {
		gen.Next(&op)
		return op.Key, op.Value
	}
	issue := func(n int) error {
		if read {
			keys := make([][]byte, n)
			for i := range keys {
				keys[i], _ = next()
			}
			_, errs := st.MGet(keys)
			for i, e := range errs {
				if e != nil && e != aria.ErrNotFound {
					return fmt.Errorf("mget key %d: %w", i, e)
				}
			}
			return nil
		}
		pairs := make([]aria.KV, n)
		for i := range pairs {
			k, _ := next()
			pairs[i] = aria.KV{Key: k, Value: gen.ValueAt(0)}
		}
		for i, e := range st.MPut(pairs) {
			if e != nil {
				return fmt.Errorf("mput key %d: %w", i, e)
			}
		}
		return nil
	}
	st.SetMeasuring(false)
	for done := 0; done < p.Warmup; done += b {
		if err := issue(b); err != nil {
			return batchPoint{}, err
		}
	}
	st.SetMeasuring(true)
	st.ResetStats()
	total := 0
	for total < p.Ops {
		if err := issue(b); err != nil {
			return batchPoint{}, err
		}
		total += b
	}
	stats := st.Stats()
	st.SetMeasuring(false)
	pt := batchPoint{}
	if total > 0 {
		pt.cyclesPerKey = float64(stats.SimCycles) / float64(total)
	}
	if stats.SimSeconds > 0 {
		pt.keysPerSec = float64(total) / stats.SimSeconds
	}
	return pt, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
