package bench

import (
	"fmt"
	"io"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

// Extension experiments beyond the paper's figures: ablations for the
// §IV-C semantic-aware swap optimizations the paper describes but does not
// isolate, and a range-scan characterization of the B+-tree index the
// paper leaves as future work (§VII).

func init() {
	register("xswap", "Extension: §IV-C swap-optimization ablation (clean-discard)", xswap)
	register("xscan", "Extension: B+-tree range scans vs repeated Gets", xscan)
}

// xswap isolates the avoid-write-back-for-clean-items optimization: under a
// read-heavy workload whose working set exceeds the Secure Cache, most
// evictions are clean, so EWB-style unconditional write-back pays pure
// overhead.
func xswap(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "xswap", "clean-discard on/off, skew and uniform, R95/R50")
	keys := p.keys10M()
	t := newTable("workload", "clean-discard", "throughput", "cache-misses")
	for _, wl := range []struct {
		name string
		dist workload.Dist
		read float64
	}{
		{"skew-R95", workload.Zipfian, 0.95},
		{"skew-R50", workload.Zipfian, 0.50},
		{"uniform-R95", workload.Uniform, 0.95},
	} {
		for _, discard := range []bool{true, false} {
			opts := p.baseOptions(aria.AriaHash, keys)
			opts.DisableCleanDiscard = !discard
			// Stop-swap would hide eviction behaviour entirely
			// under uniform; disable it so the cache keeps
			// swapping in both arms.
			opts.DisableStopSwap = true
			r, err := runPoint(p, opts, ycsb(keys, wl.dist, wl.read, 16, 0.99, p.Seed))
			if err != nil {
				return fmt.Errorf("xswap %s discard=%v: %w", wl.name, discard, err)
			}
			t.add(wl.name, fmt.Sprintf("%v", discard), kops(r.Throughput),
				fmt.Sprintf("%d", r.Stats.CacheMisses))
		}
	}
	t.write(w)
	return nil
}

// xscan compares a B+-tree range scan against issuing the same keys as
// point lookups, for several range lengths.
func xscan(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "xscan", "range scan vs point gets (Aria-BP)")
	keys := p.keys10M() / 4 // trees are ~10x slower; keep setup bounded
	if keys < 4096 {
		keys = 4096
	}
	opts := p.baseOptions(aria.AriaBPTree, keys)
	gen, err := workload.New(workload.Config{Keys: keys, ValueSize: 64, Seed: p.Seed})
	if err != nil {
		return err
	}
	st, err := buildStore(opts, gen)
	if err != nil {
		return err
	}
	ranger := st.(aria.Ranger)
	t := newTable("range-len", "scan-ops/s", "pointget-ops/s", "speedup")
	for _, rangeLen := range []int{10, 100, 1000} {
		rounds := 2000 / rangeLen
		if rounds < 3 {
			rounds = 3
		}
		// Scans.
		st.SetMeasuring(true)
		st.ResetStats()
		visited := 0
		for r := 0; r < rounds; r++ {
			startIdx := (r * 7919) % (keys - rangeLen)
			start := append([]byte(nil), gen.KeyAt(startIdx)...)
			end := append([]byte(nil), gen.KeyAt(startIdx+rangeLen)...)
			if err := ranger.Scan(start, end, func(k, v []byte) bool {
				visited++
				return true
			}); err != nil {
				return err
			}
		}
		scanStats := st.Stats()
		scanThr := float64(visited) / scanStats.SimSeconds

		// The same pairs as point lookups.
		st.ResetStats()
		got := 0
		for r := 0; r < rounds; r++ {
			startIdx := (r * 7919) % (keys - rangeLen)
			for i := 0; i < rangeLen; i++ {
				if _, err := st.Get(gen.KeyAt(startIdx + i)); err != nil {
					return err
				}
				got++
			}
		}
		getStats := st.Stats()
		getThr := float64(got) / getStats.SimSeconds
		st.SetMeasuring(false)
		t.add(fmt.Sprintf("%d", rangeLen), kops(scanThr), kops(getThr),
			fmt.Sprintf("%.2fx", scanThr/getThr))
	}
	t.write(w)
	return nil
}
