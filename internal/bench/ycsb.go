package bench

import (
	"fmt"
	"io"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

// ycsbexp runs the full YCSB core-workload gauntlet A–F at Zipf-0.99
// against the four hash schemes, at 1 and 4 shards, on the simulated
// clock:
//
//	A  update-heavy   50% read / 50% update
//	B  read-mostly    95% read /  5% update
//	C  read-only     100% read
//	D  read-latest    95% read of recent inserts / 5% insert
//	E  short-ranges   95% scans (1–16 keys) / 5% insert
//	F  read-modify    50% read / 50% GetV+CompareAndSwap cycles
//
// E uses ordered Scan when the store exposes a Ranger and otherwise
// falls back to an MGet over consecutive key indices, so the hash
// schemes pay a batch of point lookups — the honest cost of a range
// query on a hash-partitioned store. F drives the version-checked CAS
// path end to end. Within one (scheme, shards) cell the six workloads
// share a store build; D and E's inserts carry forward, which is
// deterministic and identical across runs.

func init() {
	register("ycsb", "YCSB A-F gauntlet (zipf-0.99) across schemes and shard counts", ycsbexp)
}

const (
	ycsbLatestWindow = 1024 // D reads concentrate on this many newest keys
	ycsbMaxScanLen   = 16   // E's range length: 1..16 keys
)

var ycsbSchemes = []aria.Scheme{
	aria.BaselineHash, aria.NoCacheHash, aria.ShieldStoreScheme, aria.AriaHash,
}

func ycsbexp(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "ycsb", "A-F, zipf-0.99, 16B values, 1 and 4 shards")
	keys := p.keys10M()
	t := newTable("workload", "scheme", "shards", "throughput")
	rows := make(map[string][]string)
	for _, scheme := range ycsbSchemes {
		for _, shards := range []int{1, 4} {
			opts := p.baseOptions(scheme, keys)
			opts.Shards = shards
			loadGen, err := workload.New(ycsb(keys, workload.Zipfian, 1, 16, 0.99, p.Seed))
			if err != nil {
				return err
			}
			st, err := buildStore(opts, loadGen)
			if err != nil {
				return fmt.Errorf("ycsb %v/%d: %w", scheme, shards, err)
			}
			inserted := keys
			for _, letter := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
				r, err := measureYCSB(st, p, letter, keys, &inserted)
				if err != nil {
					return fmt.Errorf("ycsb %c %v/%d: %w", letter, scheme, shards, err)
				}
				key := string(letter)
				rows[key] = append(rows[key],
					fmt.Sprintf("%v", r.Scheme), fmt.Sprintf("%d", shards), kops(r.Throughput))
			}
		}
	}
	// Group the table by workload letter so each block reads as one
	// scheme comparison.
	for _, letter := range []string{"A", "B", "C", "D", "E", "F"} {
		cells := rows[letter]
		for i := 0; i < len(cells); i += 3 {
			t.add(letter, cells[i], cells[i+1], cells[i+2])
		}
	}
	t.write(w)
	return nil
}

// ycsbReadRatio is the read (or scan) fraction of each core workload.
func ycsbReadRatio(letter byte) float64 {
	switch letter {
	case 'A', 'F':
		return 0.5
	case 'C':
		return 1.0
	default: // B, D, E
		return 0.95
	}
}

// measureYCSB replays warmup+ops requests of one core workload against
// st and returns the simulated throughput of the measured window,
// mirroring measure().
func measureYCSB(st aria.Store, p Params, letter byte, keys int, inserted *int) (Result, error) {
	gen, err := workload.New(ycsb(keys, workload.Zipfian, ycsbReadRatio(letter), 16, 0.99, p.Seed+int64(letter)))
	if err != nil {
		return Result{}, err
	}
	st.SetMeasuring(false)
	for i := 0; i < p.Warmup; i++ {
		if err := applyYCSB(st, gen, letter, inserted); err != nil {
			return Result{}, err
		}
	}
	st.SetMeasuring(true)
	st.ResetStats()
	reg := currentRegistry()
	if reg != nil {
		reg.Reset()
	}
	for i := 0; i < p.Ops; i++ {
		if err := applyYCSB(st, gen, letter, inserted); err != nil {
			return Result{}, err
		}
	}
	stats := st.Stats()
	st.SetMeasuring(false)
	if reg != nil {
		captureLatency(reg, stats.Scheme, p.Ops)
	}
	r := Result{Scheme: stats.Scheme, Stats: stats}
	if stats.SimSeconds > 0 {
		r.Throughput = float64(p.Ops) / stats.SimSeconds
	}
	return r, nil
}

// applyYCSB issues one request of the given core workload. gen's
// read/write coin carries the workload's mix; the key index comes from
// the Zipfian (or, for D, the read-latest window over inserts).
func applyYCSB(st aria.Store, gen *workload.Generator, letter byte, inserted *int) error {
	var op workload.Op
	switch letter {
	case 'A', 'B', 'C':
		gen.Next(&op)
		return apply(st, &op)
	case 'D':
		gen.Next(&op)
		if !op.Read {
			return ycsbInsert(st, gen, inserted)
		}
		window := ycsbLatestWindow
		if window > *inserted {
			window = *inserted
		}
		idx := *inserted - 1 - gen.NextIndex()%window
		_, err := st.Get(gen.KeyAt(idx))
		if err == aria.ErrNotFound {
			return nil
		}
		return err
	case 'E':
		gen.Next(&op)
		if !op.Read {
			return ycsbInsert(st, gen, inserted)
		}
		return ycsbScan(st, gen, *inserted)
	case 'F':
		gen.Next(&op)
		idx := gen.NextIndex()
		if op.Read {
			_, err := st.Get(gen.KeyAt(idx))
			if err == aria.ErrNotFound {
				return nil
			}
			return err
		}
		// Read-modify-write through the version-checked path. The driver
		// is single-threaded, so the CAS always wins; the point is the
		// cost of the GetV+CAS cycle, not contention.
		_, ver, err := st.GetV(gen.KeyAt(idx))
		if err != nil && err != aria.ErrNotFound {
			return err
		}
		return st.CompareAndSwap(gen.KeyAt(idx), gen.ValueAt(idx), ver)
	}
	return fmt.Errorf("unknown YCSB workload %c", letter)
}

// ycsbInsert appends the next fresh key (D and E's 5% insert mix).
func ycsbInsert(st aria.Store, gen *workload.Generator, inserted *int) error {
	idx := *inserted
	if err := st.Put(gen.KeyAt(idx), gen.ValueAt(idx)); err != nil {
		return err
	}
	*inserted++
	return nil
}

// ycsbScan runs one YCSB E range: an ordered Scan when the store has
// one, else an MGet over consecutive key indices.
func ycsbScan(st aria.Store, gen *workload.Generator, inserted int) error {
	start := gen.NextIndex()
	n := 1 + start%ycsbMaxScanLen
	if r, ok := st.(aria.Ranger); ok {
		left := n
		lo := append([]byte(nil), gen.KeyAt(start)...)
		err := r.Scan(lo, nil, func(k, v []byte) bool {
			left--
			return left > 0
		})
		if err == nil {
			return nil
		}
		if err != aria.ErrNoScan {
			return err
		}
		// Hash-indexed: fall through to the point-lookup batch.
	}
	batch := make([][]byte, 0, n)
	for j := 0; j < n; j++ {
		batch = append(batch, append([]byte(nil), gen.KeyAt((start+j)%inserted)...))
	}
	_, errs := st.MGet(batch)
	for i, err := range errs {
		if err != nil && err != aria.ErrNotFound {
			return fmt.Errorf("scan fallback key %d: %w", i, err)
		}
	}
	return nil
}
