package bench

import (
	"fmt"
	"io"
	"os"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

// persist measures what sealed durability costs on the write path: the
// same insert workload against a plain in-memory store (wal-off, the
// reference arm) and against durable stores under each fsync policy.
// Every durable put pays the seal crypto (CTR + CMAC over the record),
// one boundary crossing for the group, and one simulated OCALL per
// fsync the policy issues — so fsync-always prices a full OCALL per
// record, fsync-batch amortizes it per group commit, and fsync-never
// leaves only the sealing cost. The batch=64 table shows group commit
// riding the native MPut path: one append and (under fsync-batch) one
// fsync per 64 records.

func init() {
	register("persist", "Extension: sealed WAL durability cost across fsync policies", persistExp)
}

// persistArm is one sweep arm; durable=false is the wal-off reference.
type persistArm struct {
	name    string
	durable bool
	fsync   aria.FsyncPolicy
}

var persistArms = []persistArm{
	{"wal-off", false, aria.FsyncBatch},
	{"fsync-never", true, aria.FsyncNever},
	{"fsync-batch", true, aria.FsyncBatch},
	{"fsync-always", true, aria.FsyncAlways},
}

func persistExp(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "persist", "durable insert cost: WAL off vs fsync policies, aria-h, 16B values")
	// Fresh inserts, not overwrites: the store starts empty and the
	// workload writes warmup+ops distinct keys, so every arm performs
	// identical in-memory work and the arms differ only in what the
	// durability layer charges.
	capacity := p.Warmup + p.Ops
	for _, batch := range []int{1, 64} {
		t := newTable("arm", "puts-per-sec", "cycles-per-op", "overhead", "fsyncs")
		var base float64
		for _, arm := range persistArms {
			pt, err := measurePersist(p, arm, capacity, batch)
			if err != nil {
				return fmt.Errorf("persist %s batch=%d: %w", arm.name, batch, err)
			}
			if arm.name == "wal-off" {
				base = pt.cyclesPerOp
			}
			t.add(arm.name, kops(pt.putsPerSec),
				fmt.Sprintf("%.0f", pt.cyclesPerOp),
				fmt.Sprintf("%.2fx", safeDiv(pt.cyclesPerOp, base)),
				fmt.Sprintf("%d", pt.fsyncs))
		}
		fmt.Fprintf(w, "   [Put batch=%d]\n", batch)
		t.write(w)
	}
	return nil
}

type persistPoint struct {
	putsPerSec  float64
	cyclesPerOp float64
	fsyncs      uint64
}

// measurePersist opens one store per arm (durable arms in a throwaway
// directory), inserts p.Warmup keys unmeasured, then measures p.Ops
// inserts issued individually (batch=1) or as MPut groups.
func measurePersist(p Params, arm persistArm, capacity, batch int) (persistPoint, error) {
	opts := p.baseOptions(aria.AriaHash, capacity)
	if arm.durable {
		dir, err := os.MkdirTemp("", "aria-bench-persist-")
		if err != nil {
			return persistPoint{}, err
		}
		defer os.RemoveAll(dir)
		opts.DataDir = dir
		opts.Fsync = arm.fsync
	}
	gen, err := workload.New(ycsb(capacity, workload.Uniform, 1.0, 16, 0.99, p.Seed))
	if err != nil {
		return persistPoint{}, err
	}
	st, err := aria.Open(opts)
	if err != nil {
		return persistPoint{}, err
	}
	defer func() {
		if d, ok := st.(aria.Durable); ok {
			d.Close()
		}
	}()
	insert := func(from, to int) error {
		if batch <= 1 {
			for i := from; i < to; i++ {
				if err := st.Put(gen.KeyAt(i), gen.ValueAt(i)); err != nil {
					return fmt.Errorf("put key %d: %w", i, err)
				}
			}
			return nil
		}
		for i := from; i < to; i += batch {
			n := batch
			if i+n > to {
				n = to - i
			}
			pairs := make([]aria.KV, n)
			for j := range pairs {
				pairs[j] = aria.KV{Key: gen.KeyAt(i + j), Value: gen.ValueAt(i + j)}
			}
			for j, e := range st.MPut(pairs) {
				if e != nil {
					return fmt.Errorf("mput key %d: %w", i+j, e)
				}
			}
		}
		return nil
	}
	st.SetMeasuring(false)
	if err := insert(0, p.Warmup); err != nil {
		return persistPoint{}, err
	}
	st.SetMeasuring(true)
	st.ResetStats()
	fsyncs0 := st.Stats().WALFsyncs
	if err := insert(p.Warmup, p.Warmup+p.Ops); err != nil {
		return persistPoint{}, err
	}
	stats := st.Stats()
	st.SetMeasuring(false)
	pt := persistPoint{fsyncs: stats.WALFsyncs - fsyncs0}
	if p.Ops > 0 {
		pt.cyclesPerOp = float64(stats.SimCycles) / float64(p.Ops)
	}
	if stats.SimSeconds > 0 {
		pt.putsPerSec = float64(p.Ops) / stats.SimSeconds
	}
	return pt, nil
}
