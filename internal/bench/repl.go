package bench

import (
	"fmt"
	"io"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

// repl measures read scale-out across full-copy read replicas: 1, 2,
// and 4 identical stores, reads round-robined across the fleet and
// every write applied on every copy (the repl package's sealed-WAL
// shipping replays the primary's writes on each replica). Each store
// runs its own simulated clock, so the fleet's wall time is the slowest
// copy's clock. Unlike sharding (xshard), where Zipf-0.99 concentrates
// the hot set on one straggler shard, replication keeps every copy able
// to serve every key — read throughput scales with the fleet even under
// skew, at the price of n-fold write amplification. That contrast is
// the point of the experiment: replicas are the skew-robust way to
// scale a read-heavy deployment of a single-enclave store.

func init() {
	register("repl", "Extension: read scale-out at 1/2/4 replicas, uniform and Zipf-0.99", repl)
}

func repl(p Params, w io.Writer) error {
	p = p.withDefaults()
	banner(w, p, "repl", "1/2/4 full-copy replicas, R95, every write applied on every copy")
	keys := p.keys10M()
	t := newTable("workload", "replicas", "throughput", "speedup", "write-amp")
	for _, wl := range []struct {
		name string
		dist workload.Dist
	}{
		{"uniform-R95", workload.Uniform},
		{"zipf0.99-R95", workload.Zipfian},
	} {
		base := 0.0
		for _, n := range []int{1, 2, 4} {
			thr, err := replPoint(p, keys, wl.dist, n)
			if err != nil {
				return fmt.Errorf("repl %s n=%d: %w", wl.name, n, err)
			}
			if n == 1 {
				base = thr
			}
			speedup := 0.0
			if base > 0 {
				speedup = thr / base
			}
			t.add(wl.name, fmt.Sprintf("%d", n), kops(thr),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%dx", n))
		}
	}
	t.write(w)
	return nil
}

// replPoint builds n full copies of the store, replays one workload
// with reads round-robined and writes fanned out to every copy, and
// returns the fleet throughput: measured ops over the slowest copy's
// simulated clock.
func replPoint(p Params, keys int, dist workload.Dist, n int) (float64, error) {
	wcfg := ycsb(keys, dist, 0.95, 16, 0.99, p.Seed)
	stores := make([]aria.Store, n)
	for i := range stores {
		loadGen, err := workload.New(wcfg)
		if err != nil {
			return 0, err
		}
		st, err := buildStore(p.baseOptions(aria.AriaHash, keys), loadGen)
		if err != nil {
			return 0, err
		}
		stores[i] = st
	}
	gen, err := workload.New(wcfg)
	if err != nil {
		return 0, err
	}
	route := func(ops int, rr int) (int, error) {
		var op workload.Op
		for i := 0; i < ops; i++ {
			gen.Next(&op)
			if op.Read {
				if _, err := stores[rr%n].Get(op.Key); err != nil && err != aria.ErrNotFound {
					return rr, err
				}
				rr++
				continue
			}
			for _, st := range stores {
				if err := st.Put(op.Key, op.Value); err != nil {
					return rr, err
				}
			}
		}
		return rr, nil
	}
	rr, err := route(p.Warmup, 0)
	if err != nil {
		return 0, err
	}
	for _, st := range stores {
		st.SetMeasuring(true)
		st.ResetStats()
	}
	if _, err := route(p.Ops, rr); err != nil {
		return 0, err
	}
	slowest := 0.0
	for _, st := range stores {
		s := st.Stats()
		st.SetMeasuring(false)
		if s.SimSeconds > slowest {
			slowest = s.SimSeconds
		}
	}
	if slowest <= 0 {
		return 0, nil
	}
	return float64(p.Ops) / slowest, nil
}
