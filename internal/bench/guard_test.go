package bench_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/bench"
)

// TestBenchRegressionGuard re-runs the committed benchmark snapshots
// in-process and fails if any table value drifts more than guardTolerance
// from BENCH_<exp>.json. The simulated clock is deterministic for a given
// seed and scale, so on an unchanged tree the drift is exactly zero; the
// tolerance absorbs only intentional small reshuffles (e.g. map iteration
// feeding an accumulator differently across Go versions). A cost-model or
// algorithm change that moves sim-cycles/op by more than 5% fails the
// guard — ARIA_COST_PERTURB=1.06 demonstrates this (see Makefile
// bench-smoke-demo).
//
// Skipped unless BENCH_GUARD=1: the fig9 grid takes ~1 minute.
func TestBenchRegressionGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") != "1" {
		t.Skip("set BENCH_GUARD=1 to run the bench-regression guard")
	}
	const guardTolerance = 0.05
	for _, exp := range []string{"fig9", "batch", "persist", "repl", "ccache", "ycsb"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			want := loadReport(t, exp)
			e, ok := bench.Lookup(exp)
			if !ok {
				t.Fatalf("experiment %q not registered", exp)
			}
			p := bench.Params{Scale: want.Scale, Ops: want.Ops, Seed: want.Seed}
			got, err := bench.RunCollect(e, p, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Tables) != len(want.Tables) {
				t.Fatalf("table count changed: got %d, committed %d", len(got.Tables), len(want.Tables))
			}
			for ti, wt := range want.Tables {
				gt := got.Tables[ti]
				if len(gt.Rows) != len(wt.Rows) {
					t.Fatalf("table %d: row count changed: got %d, committed %d", ti, len(gt.Rows), len(wt.Rows))
				}
				for ri, wr := range wt.Rows {
					gr := gt.Rows[ri]
					for col, wv := range wr.Values {
						gv, ok := gr.Values[col]
						if !ok {
							t.Errorf("table %d row %v: column %q no longer numeric", ti, wr.Cells, col)
							continue
						}
						if wv == 0 {
							continue
						}
						if drift := math.Abs(gv-wv) / math.Abs(wv); drift > guardTolerance {
							t.Errorf("table %d row %v col %q: %.4g vs committed %.4g (drift %.1f%% > %.0f%%)",
								ti, wr.Cells, col, gv, wv, drift*100, guardTolerance*100)
						}
					}
				}
			}
		})
	}
}

// TestBatchAmortizationFloor pins the headline batching claim against the
// committed snapshot: for the shielded scheme, MGet at batch=64 costs at
// most a quarter of the single-op (batch=1) sim-cycles per key.
func TestBatchAmortizationFloor(t *testing.T) {
	rep := loadReport(t, "batch")
	if len(rep.Tables) == 0 {
		t.Fatal("BENCH_batch.json has no tables")
	}
	mget := rep.Tables[0] // first table is the MGet sweep
	perKey := func(scheme string, batch int) float64 {
		t.Helper()
		for _, r := range mget.Rows {
			if len(r.Cells) >= 2 && r.Cells[0] == scheme && r.Cells[1] == strconv.Itoa(batch) {
				if v, ok := r.Values["cycles-per-key"]; ok {
					return v
				}
			}
		}
		t.Fatalf("no cycles-per-key row for %s batch=%d", scheme, batch)
		return 0
	}
	for _, scheme := range []string{"shieldstore", "aria-h"} {
		single := perKey(scheme, 1)
		batched := perKey(scheme, 64)
		if ratio := batched / single; ratio > 0.25 {
			t.Errorf("%s: MGet@64 = %.0f cycles/key vs %.0f single (%.3fx > 0.25x)",
				scheme, batched, single, ratio)
		}
	}
}

// TestCcacheSpeedupFloor pins the client-cache headline against the
// committed snapshot: at Zipf-0.99 read-only with the largest swept
// cache, client-observed read throughput is at least 5x the cache-off
// baseline. The uniform rows are the control — no skew, no win — so a
// regression here means the cache stopped exploiting skew, not that
// the workload moved.
func TestCcacheSpeedupFloor(t *testing.T) {
	rep := loadReport(t, "ccache")
	if len(rep.Tables) == 0 {
		t.Fatal("BENCH_ccache.json has no tables")
	}
	speedup := func(workload, cache string) float64 {
		t.Helper()
		for _, r := range rep.Tables[0].Rows {
			if len(r.Cells) >= 2 && r.Cells[0] == workload && r.Cells[1] == cache {
				if v, ok := r.Values["speedup"]; ok {
					return v
				}
			}
		}
		t.Fatalf("no speedup row for %s cache=%s", workload, cache)
		return 0
	}
	if s := speedup("zipf0.99-R100", "75%"); s < 5.0 {
		t.Errorf("zipf0.99-R100 @75%% cache: %.2fx speedup, want >= 5x", s)
	}
	// The control must stay a non-win: a tiny cache under uniform load
	// buying >1.5x would mean the harness is no longer charging misses.
	if s := speedup("uniform-R95", "1%"); s > 1.5 {
		t.Errorf("uniform-R95 @1%% cache: %.2fx speedup; control should be flat", s)
	}
}

// TestYCSBSkewFloor pins the paper's headline on the YCSB gauntlet
// against the committed snapshot: on the read-mostly skewed workload
// (B, Zipf-0.99, one enclave), Aria-H must hold at least 8x the
// encrypted baseline and at least 1.5x the no-cache scheme. The
// committed run shows ~16x and ~2.6x, so the floors have headroom for
// small cost-model reshuffles while still catching a lost Secure Cache
// or a mispriced hot path.
func TestYCSBSkewFloor(t *testing.T) {
	rep := loadReport(t, "ycsb")
	if len(rep.Tables) == 0 {
		t.Fatal("BENCH_ycsb.json has no tables")
	}
	tput := func(workload, scheme, shards string) float64 {
		t.Helper()
		for _, r := range rep.Tables[0].Rows {
			if len(r.Cells) >= 3 && r.Cells[0] == workload && r.Cells[1] == scheme && r.Cells[2] == shards {
				if v, ok := r.Values["throughput"]; ok {
					return v
				}
			}
		}
		t.Fatalf("no throughput row for %s/%s/%s shards", workload, scheme, shards)
		return 0
	}
	ariaB := tput("B", "aria-h", "1")
	if base := tput("B", "baseline-h", "1"); ariaB < 8*base {
		t.Errorf("YCSB B: aria-h %.0f vs baseline-h %.0f (%.1fx < 8x floor)", ariaB, base, ariaB/base)
	}
	if nc := tput("B", "nocache-h", "1"); ariaB < 1.5*nc {
		t.Errorf("YCSB B: aria-h %.0f vs nocache-h %.0f (%.2fx < 1.5x floor)", ariaB, nc, ariaB/nc)
	}
	// Every workload letter must be present for every scheme at both
	// shard counts — a silently dropped cell would otherwise pass.
	for _, wl := range []string{"A", "B", "C", "D", "E", "F"} {
		for _, scheme := range []string{"baseline-h", "nocache-h", "shieldstore", "aria-h"} {
			for _, shards := range []string{"1", "4"} {
				if tput(wl, scheme, shards) <= 0 {
					t.Errorf("YCSB %s/%s/%s: nonpositive throughput", wl, scheme, shards)
				}
			}
		}
	}
}

func loadReport(t *testing.T, exp string) *bench.Report {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", fmt.Sprintf("BENCH_%s.json", exp)))
	if err != nil {
		t.Fatalf("read committed snapshot: %v", err)
	}
	var rep bench.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parse committed snapshot: %v", err)
	}
	return &rep
}

// TestCcoldCrossoverFloor pins the cold-tier headline against the
// committed snapshot: on the fig13-style keyspace sweep, the crossover
// keyspace — the largest swept keyspace still holding half the
// smallest-keyspace throughput — must be at least 1.5x larger with
// Options.ColdCompress on than off. Like the other floors it runs
// ungated (no BENCH_GUARD): it only reads BENCH_ccold.json, so it is
// cheap, and it is the acceptance check that the compressed cold tier
// actually moves the EPC cliff rather than just shrinking disk.
func TestCcoldCrossoverFloor(t *testing.T) {
	rep := loadReport(t, "ccold")
	if len(rep.Tables) < 3 {
		t.Fatalf("BENCH_ccold.json has %d tables, want 3 (sweep, disk, crossover)", len(rep.Tables))
	}
	crossover := func(arm string) float64 {
		t.Helper()
		for _, r := range rep.Tables[2].Rows {
			if len(r.Cells) > 0 && r.Cells[0] == arm {
				if v, ok := r.Values["crossoverMB"]; ok {
					return v
				}
			}
		}
		t.Fatalf("no crossover row for arm %q", arm)
		return 0
	}
	off := crossover("cold-off")
	on := crossover("cold-on")
	if off <= 0 || on <= 0 {
		t.Fatalf("degenerate crossovers: off=%v on=%v", off, on)
	}
	if shift := on / off; shift < 1.5 {
		t.Errorf("cold-on crossover %vMB vs cold-off %vMB: shift %.2fx below the 1.5x floor",
			on, off, shift)
	}
}

// TestColdSnapshotSizeGuard is the live on-disk regression guard for the
// compressed checkpoint format: the same corpus checkpointed through
// compacted segments must occupy at most 0.6x the bytes of a raw sealed
// snapshot. It runs the real checkpoint paths on a few hundred keys, so
// it is cheap enough to stay ungated.
func TestColdSnapshotSizeGuard(t *testing.T) {
	value := func(i int) []byte {
		v := make([]byte, 64)
		for j := range v {
			v[j] = byte('a' + (i+j)%26)
		}
		return v
	}
	stateBytes := func(cold bool) int64 {
		t.Helper()
		dir := t.TempDir()
		st, err := aria.Open(aria.Options{
			Scheme:               aria.AriaHash,
			EPCBytes:             32 << 20,
			ExpectedKeys:         1024,
			SecureCacheBytes:     1 << 20,
			PinBudgetBytes:       64 << 10,
			ShieldStoreRootBytes: 16 << 10,
			Seed:                 5,
			DataDir:              dir,
			ColdCompress:         cold,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			if err := st.Put([]byte(fmt.Sprintf("key-%05d", i)), value(i)); err != nil {
				t.Fatal(err)
			}
		}
		d := st.(aria.Durable)
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, e := range entries {
			if len(e.Name()) > 4 && e.Name()[:4] == "wal-" {
				continue
			}
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += info.Size()
		}
		if total == 0 {
			t.Fatalf("cold=%v checkpoint left no state on disk", cold)
		}
		return total
	}
	snap := stateBytes(false)
	seg := stateBytes(true)
	if ratio := float64(seg) / float64(snap); ratio > 0.6 {
		t.Errorf("compacted segments %dB vs raw snapshot %dB: %.2fx above the 0.6x ceiling",
			seg, snap, ratio)
	}
}

// TestWireSpeedupFloor pins the multiplexed-transport headline against
// the committed snapshot: on ONE connection, pipelining 16 requests
// deep is at least 3x lock-step throughput. The wire experiment runs on
// the real network stack and the wall clock, so it is deliberately NOT
// in the 5% drift guard above — absolute numbers move with the machine.
// The floor checks the ratio, which is a transport property; with
// BENCH_GUARD=1 it is additionally re-verified against a live run.
func TestWireSpeedupFloor(t *testing.T) {
	const floor = 3.0
	check := func(src string, rep *bench.Report) {
		t.Helper()
		if len(rep.Tables) == 0 {
			t.Fatalf("%s wire report has no tables", src)
		}
		for _, r := range rep.Tables[0].Rows {
			if len(r.Cells) > 0 && r.Cells[0] == "16" {
				if v, ok := r.Values["speedup"]; !ok || v < floor {
					t.Errorf("%s: depth-16 speedup %.2fx below the %.1fx floor", src, v, floor)
				}
				return
			}
		}
		t.Fatalf("%s wire report has no depth-16 row", src)
	}
	rep := loadReport(t, "wire")
	check("committed", rep)

	if os.Getenv("BENCH_GUARD") != "1" {
		return
	}
	e, ok := bench.Lookup("wire")
	if !ok {
		t.Fatal("experiment \"wire\" not registered")
	}
	p := bench.Params{Scale: rep.Scale, Ops: rep.Ops, Seed: rep.Seed}
	got, err := bench.RunCollect(e, p, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	check("live", got)
}
