// Package shieldstore reimplements ShieldStore (Kim et al., EuroSys 2019),
// the state-of-the-art comparator of the Aria paper. It is faithful to the
// design the paper describes and measures against:
//
//   - the whole store (hash table, KV pairs, security metadata) lives in
//     untrusted memory;
//   - every entry carries its own encryption counter and MAC;
//   - each hash bucket is protected by a single-level Merkle construction:
//     the bucket root — a MAC over all entry MACs in the chain — is pinned
//     in the EPC, and the number of roots is fixed by an EPC budget
//     (64 MB ≈ 4M roots in the paper's configuration);
//   - entries carry a key hint so a chain walk decrypts only candidates.
//
// The defining property (and weakness, §III) is bucket-granularity
// verification: any Get must read every entry MAC in the bucket and fold
// them into the root for comparison, and any Put must additionally
// recompute the root — cost grows with chain length, and hot keys pay the
// same as cold ones.
package shieldstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/ariakv/aria/internal/alloc"
	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/sgx"
)

// Errors mirroring the core engine's surface.
var (
	ErrNotFound  = errors.New("shieldstore: key not found")
	ErrIntegrity = errors.New("shieldstore: integrity verification failed (attack detected)")
	ErrTooLarge  = errors.New("shieldstore: key or value exceeds configured maximum")
	ErrEmptyKey  = errors.New("shieldstore: empty key")
)

// Entry layout in untrusted memory:
//
//	offset  0: next (8)
//	offset  8: hint (4)
//	offset 12: counter (16)
//	offset 28: klen (2)
//	offset 30: vlen (2)
//	offset 32: enc(key ‖ value)
//	offset 32+klen+vlen: MAC (16)
const (
	entOffNext  = 0
	entOffHint  = 8
	entOffCtr   = 12
	entOffKLen  = 28
	entOffVLen  = 30
	entOffKV    = 32
	entOverhead = entOffKV + seccrypto.MACSize
)

// Options configures a ShieldStore instance.
type Options struct {
	// RootBudgetBytes is the EPC budget for bucket roots; the bucket
	// count is RootBudgetBytes/16 (the paper's ShieldStore uses 64 MB ≈
	// 4M roots). This is the knob multi-tenant and scaling experiments
	// shrink.
	RootBudgetBytes int
	// MaxKeySize / MaxValueSize bound entries (defaults 256/4096).
	MaxKeySize   int
	MaxValueSize int
	// EncKey / MACKey are the session keys.
	EncKey []byte
	MACKey []byte
	// Seed initialises counters deterministically.
	Seed uint64
}

// Store is one ShieldStore instance.
type Store struct {
	enc  *sgx.Enclave
	cip  *seccrypto.Cipher
	heap *alloc.Heap

	nbuckets int
	buckets  sgx.UPtr // untrusted head-pointer array
	roots    sgx.EPtr // EPC root MAC array (16 B per bucket)
	counts   []uint32 // trusted per-bucket chain lengths

	maxKey, maxVal int
	scratch        sgx.EPtr
	scratchN       int
	ctrSeed        uint64
	live           int
	gets, puts     uint64
}

// New creates a ShieldStore in the given enclave.
func New(enc *sgx.Enclave, opts Options) (*Store, error) {
	if opts.RootBudgetBytes <= 0 {
		opts.RootBudgetBytes = 64 << 20
	}
	if opts.MaxKeySize <= 0 {
		opts.MaxKeySize = 256
	}
	if opts.MaxValueSize <= 0 {
		opts.MaxValueSize = 4096
	}
	if opts.EncKey == nil {
		opts.EncKey = []byte("shieldstore-enc0")
	}
	if opts.MACKey == nil {
		opts.MACKey = []byte("shieldstore-mac0")
	}
	cip, err := seccrypto.New(opts.EncKey, opts.MACKey)
	if err != nil {
		return nil, err
	}
	n := opts.RootBudgetBytes / seccrypto.MACSize
	if n < 16 {
		n = 16
	}
	s := &Store{
		enc:      enc,
		cip:      cip,
		heap:     alloc.New(enc, false),
		nbuckets: n,
		buckets:  enc.UAlloc(n*8, sgx.CacheLine),
		roots:    enc.EAlloc(n*seccrypto.MACSize, sgx.CacheLine),
		counts:   make([]uint32, n),
		maxKey:   opts.MaxKeySize,
		maxVal:   opts.MaxValueSize,
		ctrSeed:  opts.Seed*0x9E3779B97F4A7C15 + 0xABCD,
	}
	s.scratchN = 2 * (entOverhead + opts.MaxKeySize + opts.MaxValueSize)
	s.scratch = enc.EAlloc(s.scratchN, sgx.CacheLine)
	// Empty buckets get a well-defined root so the very first insert is
	// verified against trusted state.
	var mac [16]byte
	s.emptyRoot(&mac)
	for b := 0; b < n; b++ {
		copy(enc.EBytesRaw(s.roots+sgx.EPtr(b*seccrypto.MACSize), 16), mac[:])
	}
	enc.ETouch(s.roots, n*seccrypto.MACSize)
	return s, nil
}

// foldTag domain-separates bucket folds from entry MACs. Bucket identity is
// bound by the root's position in the EPC root array, which the attacker
// cannot rewrite.
var foldTag = [8]byte{'s', 's', 'f', 'o', 'l', 'd', '0', '1'}

func (s *Store) emptyRoot(out *[16]byte) {
	s.cip.MAC(out, foldTag[:])
}

func (s *Store) bucketSlot(b int) sgx.UPtr { return s.buckets + sgx.UPtr(b*8) }

func (s *Store) hashKey(key []byte) (int, uint32) {
	const prime = 1099511628211
	h1 := uint64(14695981039346656037)
	h2 := uint64(0x9E3779B97F4A7C15)
	for _, c := range key {
		h1 = (h1 ^ uint64(c)) * prime
		h2 = (h2 ^ uint64(c)) * prime
	}
	s.enc.ChargeHash()
	return int(h1 % uint64(s.nbuckets)), uint32(h2)
}

// verifyBucket walks the chain at bucket b, reading every entry's stored
// MAC, folds them into the bucket MAC, and compares it with the EPC root.
// This is ShieldStore's bucket-granularity verification: its cost is what
// Aria's Secure Cache avoids for hot keys. It returns the chain's blocks.
func (s *Store) verifyBucket(b int) ([]sgx.UPtr, error) {
	blocks, fold, err := s.foldBucket(b)
	if err != nil {
		return nil, err
	}
	if len(blocks) != int(s.counts[b]) {
		return nil, fmt.Errorf("%w: bucket %d chain length %d != trusted count %d",
			ErrIntegrity, b, len(blocks), s.counts[b])
	}
	stored := s.enc.EBytes(s.roots+sgx.EPtr(b*16), 16)
	if string(stored) != string(fold[:]) {
		return nil, fmt.Errorf("%w: bucket %d root mismatch (tamper or replay)", ErrIntegrity, b)
	}
	return blocks, nil
}

// foldBucket walks the chain at bucket b, copies every entry's stored MAC
// into enclave scratch (read amplification: 16 B per chain entry), and
// computes the bucket MAC as one CMAC over the ordered MAC array. It
// returns the chain's blocks and the fold. Callers that also need to scan
// for a key reuse the same walk via the blocks slice, so verification and
// lookup share one pass over the chain.
func (s *Store) foldBucket(b int) ([]sgx.UPtr, [16]byte, error) {
	var fold [16]byte
	var blocks []sgx.UPtr
	// The MAC array is staged in the seal half of scratch (bounded by
	// chain length; chains beyond the scratch capacity fold in batches).
	half := s.scratchN / 2
	stage := s.enc.EBytesRaw(s.scratch+sgx.EPtr(half), half)
	staged := 0
	hdrTag := foldTag
	parts := [][]byte{hdrTag[:]}
	cur := s.readPtr(s.bucketSlot(b))
	for cur != sgx.NilU {
		// Wild or cyclic chain pointers are detected, not dereferenced.
		if !s.enc.UValid(cur, entOverhead) || len(blocks) > int(s.counts[b]) {
			return nil, fold, fmt.Errorf("%w: bucket %d chain corrupted", ErrIntegrity, b)
		}
		blocks = append(blocks, cur)
		hdr := s.enc.UBytes(cur, entOffKV)
		klen := int(binary.LittleEndian.Uint16(hdr[entOffKLen:]))
		vlen := int(binary.LittleEndian.Uint16(hdr[entOffVLen:]))
		if klen == 0 || klen > s.maxKey || vlen > s.maxVal {
			return nil, fold, fmt.Errorf("%w: implausible entry at %#x", ErrIntegrity, cur)
		}
		if !s.enc.UValid(cur, entOverhead+klen+vlen) {
			return nil, fold, fmt.Errorf("%w: entry at %#x extends past the arena", ErrIntegrity, cur)
		}
		macAddr := cur + sgx.UPtr(entOffKV+klen+vlen)
		entMAC := s.enc.UBytes(macAddr, 16)
		if staged+16 <= len(stage) {
			copy(stage[staged:], entMAC)
			s.enc.ETouch(s.scratch+sgx.EPtr(half+staged), 16)
			staged += 16
		} else {
			// Extremely long chain: flush the staged prefix into
			// the fold and keep going.
			s.enc.ChargeMAC(8 + staged + 16)
			var sub [16]byte
			s.cip.MAC(&sub, hdrTag[:], stage[:staged], fold[:])
			fold = sub
			parts = [][]byte{hdrTag[:], fold[:]}
			staged = 0
			copy(stage, entMAC)
			staged = 16
		}
		cur = sgx.UPtr(binary.LittleEndian.Uint64(hdr[entOffNext:]))
	}
	parts = append(parts, stage[:staged])
	total := 8 + staged
	for _, p := range parts[1 : len(parts)-1] {
		total += len(p)
	}
	s.enc.ChargeMAC(total)
	var out [16]byte
	s.cip.MAC(&out, parts...)
	return blocks, out, nil
}

// updateRoot refolds the bucket MAC after a mutation and stores it in the
// EPC (the extra Put-side cost the paper calls out).
func (s *Store) updateRoot(b int) {
	_, fold, err := s.foldBucket(b)
	if err != nil {
		// A fold error here means the store's own just-written state
		// is implausible, which cannot happen absent memory
		// corruption; surface it loudly.
		panic(err)
	}
	copy(s.enc.EBytes(s.roots+sgx.EPtr(b*16), 16), fold[:])
}

func (s *Store) readPtr(addr sgx.UPtr) sgx.UPtr {
	return sgx.UPtr(binary.LittleEndian.Uint64(s.enc.UBytes(addr, 8)))
}

// openEntry stages and decrypts the (already bucket-verified) entry,
// additionally checking its own MAC binds its content to its counter.
func (s *Store) openEntry(block sgx.UPtr) (keyB, valB []byte, ctr [16]byte, next sgx.UPtr, err error) {
	if !s.enc.UValid(block, entOffKV) {
		return nil, nil, ctr, 0, fmt.Errorf("%w: entry pointer %#x out of range", ErrIntegrity, block)
	}
	hdr := s.enc.UBytes(block, entOffKV)
	klen := int(binary.LittleEndian.Uint16(hdr[entOffKLen:]))
	vlen := int(binary.LittleEndian.Uint16(hdr[entOffVLen:]))
	if klen == 0 || klen > s.maxKey || vlen > s.maxVal {
		return nil, nil, ctr, 0, fmt.Errorf("%w: implausible entry at %#x", ErrIntegrity, block)
	}
	total := entOverhead + klen + vlen
	if !s.enc.UValid(block, total) {
		return nil, nil, ctr, 0, fmt.Errorf("%w: entry at %#x extends past the arena", ErrIntegrity, block)
	}
	s.enc.CopyIn(s.scratch, block, total)
	buf := s.enc.EBytesRaw(s.scratch, total)
	next = sgx.UPtr(binary.LittleEndian.Uint64(buf[entOffNext:]))
	copy(ctr[:], buf[entOffCtr:])
	macOff := entOffKV + klen + vlen
	s.enc.ChargeMAC(macOff - entOffHint)
	if !s.cip.VerifyMAC(buf[macOff:macOff+16], buf[entOffHint:macOff]) {
		return nil, nil, ctr, 0, fmt.Errorf("%w: entry at %#x", ErrIntegrity, block)
	}
	s.enc.ChargeCTR(klen + vlen)
	s.cip.CTRCrypt(&ctr, buf[entOffKV:macOff], buf[entOffKV:macOff])
	return buf[entOffKV : entOffKV+klen], buf[entOffKV+klen : macOff], ctr, next, nil
}

// sealEntry writes a fresh entry image (counter already incremented).
func (s *Store) sealEntry(block sgx.UPtr, next sgx.UPtr, hint uint32, ctr [16]byte, key, value []byte) {
	total := entOverhead + len(key) + len(value)
	half := s.scratchN / 2
	buf := s.enc.EBytesRaw(s.scratch+sgx.EPtr(half), total)
	s.enc.ETouch(s.scratch+sgx.EPtr(half), total)
	binary.LittleEndian.PutUint64(buf[entOffNext:], uint64(next))
	binary.LittleEndian.PutUint32(buf[entOffHint:], hint)
	copy(buf[entOffCtr:], ctr[:])
	binary.LittleEndian.PutUint16(buf[entOffKLen:], uint16(len(key)))
	binary.LittleEndian.PutUint16(buf[entOffVLen:], uint16(len(value)))
	kv := buf[entOffKV : entOffKV+len(key)+len(value)]
	copy(kv, key)
	copy(kv[len(key):], value)
	s.enc.ChargeCTR(len(kv))
	s.cip.CTRCrypt(&ctr, kv, kv)
	macOff := entOffKV + len(key) + len(value)
	var mac [16]byte
	s.enc.ChargeMAC(macOff - entOffHint)
	s.cip.MAC(&mac, buf[entOffHint:macOff])
	copy(buf[macOff:], mac[:])
	s.enc.CopyOut(block, s.scratch+sgx.EPtr(half), total)
}

func bump(ctr *[16]byte) {
	for i := 0; i < 16; i++ {
		ctr[i]++
		if ctr[i] != 0 {
			break
		}
	}
}

func (s *Store) freshCounter() [16]byte {
	s.ctrSeed ^= s.ctrSeed << 13
	s.ctrSeed ^= s.ctrSeed >> 7
	s.ctrSeed ^= s.ctrSeed << 17
	var c [16]byte
	binary.LittleEndian.PutUint64(c[:8], s.ctrSeed*0x2545F4914F6CDD1D)
	binary.LittleEndian.PutUint64(c[8:], uint64(s.live)+1)
	return c
}

func (s *Store) check(key []byte, vlen int) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > s.maxKey || vlen > s.maxVal {
		return ErrTooLarge
	}
	return nil
}

// Get returns a copy of the value under key.
func (s *Store) Get(key []byte) ([]byte, error) {
	if err := s.check(key, 0); err != nil {
		return nil, err
	}
	s.gets++
	b, hint := s.hashKey(key)
	// Bucket-granularity verification first (every Get pays it).
	if _, err := s.verifyBucket(b); err != nil {
		return nil, err
	}
	cur := s.readPtr(s.bucketSlot(b))
	for cur != sgx.NilU {
		hdr := s.enc.UBytes(cur, 12)
		next := sgx.UPtr(binary.LittleEndian.Uint64(hdr[entOffNext:]))
		if binary.LittleEndian.Uint32(hdr[entOffHint:]) == hint {
			k, v, _, n2, err := s.openEntry(cur)
			if err != nil {
				return nil, err
			}
			if string(k) == string(key) {
				out := make([]byte, len(v))
				copy(out, v)
				return out, nil
			}
			next = n2
		}
		cur = next
	}
	if err := s.verifyEntries(b); err != nil {
		return nil, err
	}
	return nil, ErrNotFound
}

// verifyEntries recomputes every entry MAC in a bucket from its content and
// compares it with the stored MAC. The fast path skips entries whose hint
// does not match, so a tampered hint would otherwise turn an existing key
// into a silent miss; misses therefore re-verify the chain entry by entry.
func (s *Store) verifyEntries(b int) error {
	cur := s.readPtr(s.bucketSlot(b))
	walked := 0
	for cur != sgx.NilU {
		if !s.enc.UValid(cur, entOverhead) || walked > int(s.counts[b]) {
			return fmt.Errorf("%w: bucket %d chain corrupted", ErrIntegrity, b)
		}
		walked++
		_, _, _, next, err := s.openEntry(cur)
		if err != nil {
			return err
		}
		cur = next
	}
	return nil
}

// Put inserts or updates a KV pair.
func (s *Store) Put(key, value []byte) error {
	if err := s.check(key, len(value)); err != nil {
		return err
	}
	s.puts++
	b, hint := s.hashKey(key)
	if _, err := s.verifyBucket(b); err != nil {
		return err
	}
	// Find an existing entry (chain already validated by verifyBucket).
	prevAddr := s.bucketSlot(b)
	cur := s.readPtr(prevAddr)
	walked := 0
	for cur != sgx.NilU {
		if !s.enc.UValid(cur, entOverhead) || walked > int(s.counts[b]) {
			return fmt.Errorf("%w: bucket %d chain corrupted", ErrIntegrity, b)
		}
		walked++
		hdr := s.enc.UBytes(cur, 12)
		next := sgx.UPtr(binary.LittleEndian.Uint64(hdr[entOffNext:]))
		if binary.LittleEndian.Uint32(hdr[entOffHint:]) == hint {
			k, _, ctr, n2, err := s.openEntry(cur)
			if err != nil {
				return err
			}
			if string(k) == string(key) {
				bump(&ctr)
				need := entOverhead + len(key) + len(value)
				if s.heap.BlockSize(cur) >= need {
					s.sealEntry(cur, n2, hint, ctr, key, value)
				} else {
					nb, err := s.heap.Alloc(need)
					if err != nil {
						return err
					}
					s.sealEntry(nb, n2, hint, ctr, key, value)
					s.writePtr(prevAddr, nb)
					if err := s.heap.Free(cur); err != nil {
						return err
					}
				}
				s.updateRoot(b)
				return nil
			}
			next = n2
		}
		prevAddr = cur + entOffNext
		cur = next
	}
	if err := s.verifyEntries(b); err != nil {
		return err
	}
	// Insert at head (ShieldStore chains from the bucket slot).
	ctr := s.freshCounter()
	block, err := s.heap.Alloc(entOverhead + len(key) + len(value))
	if err != nil {
		return err
	}
	head := s.readPtr(s.bucketSlot(b))
	s.sealEntry(block, head, hint, ctr, key, value)
	s.writePtr(s.bucketSlot(b), block)
	s.counts[b]++
	s.live++
	s.updateRoot(b)
	return nil
}

// Delete removes a key.
func (s *Store) Delete(key []byte) error {
	if err := s.check(key, 0); err != nil {
		return err
	}
	b, hint := s.hashKey(key)
	if _, err := s.verifyBucket(b); err != nil {
		return err
	}
	prevAddr := s.bucketSlot(b)
	cur := s.readPtr(prevAddr)
	dwalked := 0
	for cur != sgx.NilU {
		if !s.enc.UValid(cur, entOverhead) || dwalked > int(s.counts[b]) {
			return fmt.Errorf("%w: bucket %d chain corrupted", ErrIntegrity, b)
		}
		dwalked++
		hdr := s.enc.UBytes(cur, 12)
		next := sgx.UPtr(binary.LittleEndian.Uint64(hdr[entOffNext:]))
		if binary.LittleEndian.Uint32(hdr[entOffHint:]) == hint {
			k, _, _, n2, err := s.openEntry(cur)
			if err != nil {
				return err
			}
			if string(k) == string(key) {
				s.writePtr(prevAddr, n2)
				if err := s.heap.Free(cur); err != nil {
					return err
				}
				s.counts[b]--
				s.live--
				s.updateRoot(b)
				return nil
			}
			next = n2
		}
		prevAddr = cur + entOffNext
		cur = next
	}
	if err := s.verifyEntries(b); err != nil {
		return err
	}
	return ErrNotFound
}

func (s *Store) writePtr(addr sgx.UPtr, v sgx.UPtr) {
	binary.LittleEndian.PutUint64(s.enc.UBytes(addr, 8), uint64(v))
}

// Keys returns the number of live entries.
func (s *Store) Keys() int { return s.live }

// Buckets returns the bucket (root) count.
func (s *Store) Buckets() int { return s.nbuckets }

// VerifyIntegrity audits every bucket.
func (s *Store) VerifyIntegrity() error {
	for b := 0; b < s.nbuckets; b++ {
		blocks, err := s.verifyBucket(b)
		if err != nil {
			return err
		}
		for _, blk := range blocks {
			if _, _, _, _, err := s.openEntry(blk); err != nil {
				return err
			}
		}
	}
	return nil
}

// Enclave exposes the enclave for throughput accounting.
func (s *Store) Enclave() *sgx.Enclave { return s.enc }
