package shieldstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ariakv/aria/internal/sgx"
)

func newStore(t *testing.T, rootBudget int) *Store {
	t.Helper()
	enc := sgx.New(sgx.Config{EPCBytes: 64 << 20})
	s, err := New(enc, Options{RootBudgetBytes: rootBudget, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func key(i int) []byte   { return []byte(fmt.Sprintf("ss-key-%06d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("ss-val-%d", i*3)) }

func TestPutGetDelete(t *testing.T) {
	s := newStore(t, 1<<10) // 64 buckets: chains form quickly
	for i := 0; i < 300; i++ {
		if err := s.Put(key(i), value(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 300; i++ {
		got, err := s.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("get %d: %v (%q)", i, err, got)
		}
	}
	for i := 0; i < 300; i += 2 {
		if err := s.Delete(key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < 300; i++ {
		_, err := s.Get(key(i))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateValue(t *testing.T) {
	s := newStore(t, 1<<10)
	_ = s.Put(key(1), []byte("old"))
	if err := s.Put(key(1), []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(key(1))
	if string(got) != "new" {
		t.Errorf("update = %q", got)
	}
	if s.Keys() != 1 {
		t.Errorf("keys = %d", s.Keys())
	}
	// Growing update relocates the block.
	big := bytes.Repeat([]byte("z"), 500)
	if err := s.Put(key(1), big); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get(key(1))
	if !bytes.Equal(got, big) {
		t.Error("grown update mismatch")
	}
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOpsMirror(t *testing.T) {
	s := newStore(t, 1<<10)
	mirror := make(map[string][]byte)
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 4000; op++ {
		k := key(rng.Intn(200))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			v := make([]byte, rng.Intn(80)+1)
			rng.Read(v)
			if err := s.Put(k, v); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			mirror[string(k)] = v
		case 4:
			err := s.Delete(k)
			if _, ok := mirror[string(k)]; ok && err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			delete(mirror, string(k))
		default:
			got, err := s.Get(k)
			want, ok := mirror[string(k)]
			if ok && (err != nil || !bytes.Equal(got, want)) {
				t.Fatalf("op %d get: %v", op, err)
			}
			if !ok && !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d get missing: %v", op, err)
			}
		}
	}
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// attackerFind locates an entry block from outside the enclave.
func attackerFind(s *Store, k []byte) (block sgx.UPtr, size int) {
	b, hint := s.hashKey(k)
	cur := sgx.UPtr(binary.LittleEndian.Uint64(s.enc.UBytesRaw(s.bucketSlot(b), 8)))
	for cur != sgx.NilU {
		hdr := s.enc.UBytesRaw(cur, entOffKV)
		if binary.LittleEndian.Uint32(hdr[entOffHint:]) == hint {
			klen := int(binary.LittleEndian.Uint16(hdr[entOffKLen:]))
			vlen := int(binary.LittleEndian.Uint16(hdr[entOffVLen:]))
			return cur, entOverhead + klen + vlen
		}
		cur = sgx.UPtr(binary.LittleEndian.Uint64(hdr[entOffNext:]))
	}
	return sgx.NilU, 0
}

func TestTamperDetected(t *testing.T) {
	s := newStore(t, 1<<10)
	_ = s.Put(key(1), value(1))
	block, _ := attackerFind(s, key(1))
	s.enc.UBytesRaw(block+entOffKV, 1)[0] ^= 1
	if _, err := s.Get(key(1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tamper: err = %v", err)
	}
}

func TestReplayDetected(t *testing.T) {
	s := newStore(t, 1<<10)
	_ = s.Put(key(1), []byte("balance=100"))
	block, size := attackerFind(s, key(1))
	snap := append([]byte(nil), s.enc.UBytesRaw(block, size)...)
	if err := s.Put(key(1), []byte("balance=000")); err != nil {
		t.Fatal(err)
	}
	b2, _ := attackerFind(s, key(1))
	if b2 != block {
		t.Skip("entry relocated")
	}
	copy(s.enc.UBytesRaw(block, size), snap)
	if _, err := s.Get(key(1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("replay: err = %v (bucket root must catch stale MACs)", err)
	}
}

func TestUnauthorizedDeletionDetected(t *testing.T) {
	s := newStore(t, 1<<10)
	_ = s.Put(key(1), value(1))
	b, _ := s.hashKey(key(1))
	// Clear the bucket head.
	binary.LittleEndian.PutUint64(s.enc.UBytesRaw(s.bucketSlot(b), 8), 0)
	if _, err := s.Get(key(1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("unauthorized deletion: err = %v", err)
	}
}

func TestHintTamperDetected(t *testing.T) {
	s := newStore(t, 1<<10)
	_ = s.Put(key(1), value(1))
	block, _ := attackerFind(s, key(1))
	s.enc.UBytesRaw(block+entOffHint, 1)[0] ^= 0xff
	_, err := s.Get(key(1))
	if !errors.Is(err, ErrIntegrity) {
		t.Errorf("hint tamper must not cause a silent miss: err = %v", err)
	}
}

func TestVerificationCostGrowsWithChain(t *testing.T) {
	// The bucket-granularity amplification: with fewer roots (longer
	// chains), each Get performs more MAC folds.
	run := func(rootBudget int) (uint64, uint64) {
		s := newStore(t, rootBudget)
		s.Enclave().SetMeasuring(false)
		for i := 0; i < 512; i++ {
			if err := s.Put(key(i), value(i)); err != nil {
				t.Fatal(err)
			}
		}
		s.Enclave().SetMeasuring(true)
		s.Enclave().ResetStats()
		for i := 0; i < 512; i++ {
			if _, err := s.Get(key(i)); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Enclave().Stats()
		return st.MACBytes, st.Cycles
	}
	shortBytes, shortCycles := run(64 << 10) // 4096 buckets -> chains ~0.1
	longBytes, longCycles := run(1 << 9)     // 32 buckets -> chains ~16
	if longBytes <= shortBytes*2 {
		t.Errorf("MAC bytes: long-chain %d vs short-chain %d; expected read amplification", longBytes, shortBytes)
	}
	if longCycles <= shortCycles {
		t.Errorf("cycles: long-chain %d vs short-chain %d", longCycles, shortCycles)
	}
}

func TestConfidentiality(t *testing.T) {
	s := newStore(t, 1<<10)
	secret := []byte("SS-TOP-SECRET-PLAINTEXT-998877")
	_ = s.Put([]byte("classified"), secret)
	um := s.enc.UBytesRaw(sgx.UPtr(0), s.enc.UntrustedUsedBytes())
	if bytes.Contains(um, secret) {
		t.Error("plaintext leaked to untrusted memory")
	}
}
