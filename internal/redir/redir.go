// Package redir implements Aria's redirection layer and counter-area
// management (paper §V-C). It decouples the index structure from the
// security metadata: every KV pair (or B-tree node) holds a redirection
// pointer (RedPtr) naming one encryption counter, and the layer maps RedPtrs
// to counter slots in one or more Merkle trees guarded by the Secure Cache.
//
// Free-counter bookkeeping follows the paper: a circular buffer of free
// counter offsets lives in untrusted memory (cheap, large), while a per-tree
// occupation bitmap lives in the EPC. A fetched counter is cross-checked
// against the trusted bitmap, so a malicious host that corrupts the free
// ring to hand out an in-use counter (breaking counter uniqueness, the
// cornerstone of CTR-mode confidentiality) is detected immediately.
//
// When the counter area is exhausted the layer grows by building a new
// Merkle tree over a fresh counter area and attaching it to the Secure
// Cache — the paper's "MT expansion".
package redir

import (
	"errors"
	"fmt"

	"github.com/ariakv/aria/internal/merkle"
	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/securecache"
	"github.com/ariakv/aria/internal/sgx"
)

// RedPtr names one encryption counter: tree ID in the high 24 bits, counter
// index within the tree in the low 40.
type RedPtr uint64

const ctrBits = 40

// Tree returns the Merkle tree ID the counter lives in.
func (r RedPtr) Tree() uint32 { return uint32(r >> ctrBits) }

// Ctr returns the counter index within its tree.
func (r RedPtr) Ctr() int { return int(r & (1<<ctrBits - 1)) }

func makeRedPtr(tree uint32, ctr int) RedPtr {
	return RedPtr(uint64(tree)<<ctrBits | uint64(ctr))
}

// ErrCorrupt reports untrusted free-ring state that contradicts the trusted
// bitmap — a detected attack on allocator metadata.
var ErrCorrupt = errors.New("redir: counter free-ring corrupted (attack detected)")

// ErrExhausted reports that the counter area is full and growth is disabled.
var ErrExhausted = errors.New("redir: counter area exhausted")

// Config parameterises the layer.
type Config struct {
	// InitialCounters sizes the first tree's counter area.
	InitialCounters int
	// Arity is the Merkle tree branch factor (fixed across trees).
	Arity int
	// GrowthFactor scales each new tree relative to the current total
	// capacity (paper: a background thread reserves a new MT; we grow
	// synchronously on exhaustion). Zero disables growth.
	GrowthFactor float64
	// InitSeed seeds deterministic counter initialisation.
	InitSeed uint64
}

// Stats reports occupancy.
type Stats struct {
	Trees    int
	Capacity int
	Used     int
	Grows    int
	EPCBytes int // occupation bitmaps
}

// Layer is one redirection layer bound to a Secure Cache.
type Layer struct {
	enc   *sgx.Enclave
	cip   *seccrypto.Cipher
	cache *securecache.Cache
	cfg   Config

	trees   []*merkle.Tree
	bitmaps []sgx.EPtr // per-tree occupation bitmap in the EPC

	// Free ring of RedPtrs in untrusted memory.
	ring     sgx.UPtr
	ringCap  int
	head     int // trusted (EPC) head cursor
	tail     int // trusted (EPC) tail cursor
	ringLive int

	capacity int
	used     int
	grows    int
	epcBytes int
}

// New creates a layer with its first counter tree attached to the cache.
func New(enc *sgx.Enclave, cip *seccrypto.Cipher, cache *securecache.Cache, cfg Config) (*Layer, error) {
	if cfg.InitialCounters <= 0 {
		return nil, fmt.Errorf("redir: initial counter count %d must be positive", cfg.InitialCounters)
	}
	l := &Layer{enc: enc, cip: cip, cache: cache, cfg: cfg}
	if err := l.addTree(cfg.InitialCounters); err != nil {
		return nil, err
	}
	return l, nil
}

// addTree builds a new Merkle tree over `counters` fresh counters, attaches
// it to the Secure Cache, and threads its counters onto the free ring.
func (l *Layer) addTree(counters int) error {
	id := uint32(len(l.trees))
	t, err := merkle.New(l.enc, l.cip, merkle.Config{
		Counters: counters,
		Arity:    l.cfg.Arity,
		TreeID:   id,
		InitSeed: l.cfg.InitSeed + uint64(id)*0x9E3779B97F4A7C15 + 1,
	})
	if err != nil {
		return err
	}
	if err := l.cache.AttachTree(t); err != nil {
		return err
	}
	bmBytes := (counters + 7) / 8
	l.trees = append(l.trees, t)
	l.bitmaps = append(l.bitmaps, l.enc.EAlloc(bmBytes, 8))
	l.epcBytes += bmBytes
	l.growRing(l.capacity + counters)
	for c := 0; c < counters; c++ {
		l.pushFree(makeRedPtr(id, c))
	}
	l.capacity += counters
	return nil
}

// growRing reallocates the untrusted free ring to hold at least n entries,
// preserving live entries in FIFO order.
func (l *Layer) growRing(n int) {
	newRing := l.enc.UAlloc(n*8, 8)
	for i := 0; i < l.ringLive; i++ {
		src := l.ring + sgx.UPtr(((l.head+i)%l.ringCap)*8)
		dst := newRing + sgx.UPtr(i*8)
		copy(l.enc.UBytesRaw(dst, 8), l.enc.UBytesRaw(src, 8))
	}
	if l.ringLive > 0 {
		l.enc.UTouch(l.ring, l.ringLive*8)
		l.enc.UTouch(newRing, l.ringLive*8)
	}
	l.ring = newRing
	l.ringCap = n
	l.head = 0
	l.tail = l.ringLive
}

func (l *Layer) pushFree(r RedPtr) {
	b := l.enc.UBytes(l.ring+sgx.UPtr(l.tail*8), 8)
	putU64(b, uint64(r))
	l.tail = (l.tail + 1) % l.ringCap
	l.ringLive++
}

func (l *Layer) popFree() (RedPtr, bool) {
	if l.ringLive == 0 {
		return 0, false
	}
	b := l.enc.UBytes(l.ring+sgx.UPtr(l.head*8), 8)
	r := RedPtr(getU64(b))
	l.head = (l.head + 1) % l.ringCap
	l.ringLive--
	return r, true
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Fetch returns a free counter, verified against the trusted bitmap. The
// counter area grows automatically when exhausted (if growth is enabled).
func (l *Layer) Fetch() (RedPtr, error) {
	r, ok := l.popFree()
	if !ok {
		if l.cfg.GrowthFactor <= 0 {
			return 0, ErrExhausted
		}
		grow := int(float64(l.capacity) * l.cfg.GrowthFactor)
		if grow < l.cfg.Arity {
			grow = l.cfg.Arity
		}
		if err := l.addTree(grow); err != nil {
			return 0, err
		}
		l.grows++
		r, ok = l.popFree()
		if !ok {
			return 0, ErrExhausted
		}
	}
	tid := r.Tree()
	ctr := r.Ctr()
	if int(tid) >= len(l.trees) || ctr >= l.trees[tid].Counters() {
		return 0, ErrCorrupt
	}
	if l.bitTest(tid, ctr) {
		// The untrusted ring handed out an in-use counter: reusing it
		// would repeat a CTR keystream. Attack detected.
		return 0, ErrCorrupt
	}
	l.bitSet(tid, ctr, true)
	l.used++
	return r, nil
}

// Free returns a counter to the ring.
func (l *Layer) Free(r RedPtr) error {
	tid := r.Tree()
	ctr := r.Ctr()
	if int(tid) >= len(l.trees) || ctr >= l.trees[tid].Counters() {
		return ErrCorrupt
	}
	if !l.bitTest(tid, ctr) {
		return ErrCorrupt // double free or forged RedPtr
	}
	l.bitSet(tid, ctr, false)
	l.pushFree(r)
	l.used--
	return nil
}

// CounterGet reads the counter named by r through the Secure Cache.
func (l *Layer) CounterGet(r RedPtr) ([16]byte, error) {
	return l.cache.CounterGet(r.Tree(), r.Ctr())
}

// CounterBump increments the counter named by r through the Secure Cache
// and returns the new value.
func (l *Layer) CounterBump(r RedPtr) ([16]byte, error) {
	return l.cache.CounterBump(r.Tree(), r.Ctr())
}

// InUse reports whether the counter named by r is currently allocated,
// checked against the trusted bitmap.
func (l *Layer) InUse(r RedPtr) bool {
	tid := r.Tree()
	ctr := r.Ctr()
	if int(tid) >= len(l.trees) || ctr >= l.trees[tid].Counters() {
		return false
	}
	return l.bitTest(tid, ctr)
}

// Stats returns an occupancy snapshot.
func (l *Layer) Stats() Stats {
	return Stats{
		Trees:    len(l.trees),
		Capacity: l.capacity,
		Used:     l.used,
		Grows:    l.grows,
		EPCBytes: l.epcBytes,
	}
}

// Trees exposes the attached Merkle trees (for offline audits in tests).
func (l *Layer) Trees() []*merkle.Tree { return l.trees }

// CorruptRingForTest overwrites the next free-ring entry with r, simulating
// a malicious host steering the allocator toward a chosen counter.
func (l *Layer) CorruptRingForTest(r RedPtr) {
	if l.ringLive == 0 {
		panic("redir: empty ring")
	}
	putU64(l.enc.UBytesRaw(l.ring+sgx.UPtr(l.head*8), 8), uint64(r))
}

func (l *Layer) bitTest(tid uint32, ctr int) bool {
	b := l.enc.EBytes(l.bitmaps[tid]+sgx.EPtr(ctr/8), 1)
	return b[0]&(1<<(ctr%8)) != 0
}

func (l *Layer) bitSet(tid uint32, ctr int, v bool) {
	b := l.enc.EBytes(l.bitmaps[tid]+sgx.EPtr(ctr/8), 1)
	if v {
		b[0] |= 1 << (ctr % 8)
	} else {
		b[0] &^= 1 << (ctr % 8)
	}
}
