package redir

import (
	"errors"
	"testing"

	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/securecache"
	"github.com/ariakv/aria/internal/sgx"
)

func newLayer(t *testing.T, counters int, growth float64) (*Layer, *securecache.Cache, *sgx.Enclave) {
	t.Helper()
	enc := sgx.New(sgx.Config{EPCBytes: 64 << 20})
	cip, err := seccrypto.New(make([]byte, 16), make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	cache, err := securecache.New(enc, 8*16, securecache.Config{
		CapacityBytes: 64 << 10,
		CleanDiscard:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(enc, cip, cache, Config{
		InitialCounters: counters,
		Arity:           8,
		GrowthFactor:    growth,
		InitSeed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, cache, enc
}

func TestFetchFreeRoundTrip(t *testing.T) {
	l, _, _ := newLayer(t, 100, 0)
	r, err := l.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if !l.InUse(r) {
		t.Error("fetched counter not marked in use")
	}
	if got := l.Stats().Used; got != 1 {
		t.Errorf("used = %d, want 1", got)
	}
	if err := l.Free(r); err != nil {
		t.Fatal(err)
	}
	if l.InUse(r) {
		t.Error("freed counter still marked in use")
	}
}

func TestFetchUnique(t *testing.T) {
	l, _, _ := newLayer(t, 1000, 0)
	seen := make(map[RedPtr]bool)
	for i := 0; i < 1000; i++ {
		r, err := l.Fetch()
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if seen[r] {
			t.Fatalf("counter %v handed out twice", r)
		}
		seen[r] = true
	}
}

func TestExhaustionWithoutGrowth(t *testing.T) {
	l, _, _ := newLayer(t, 10, 0)
	for i := 0; i < 10; i++ {
		if _, err := l.Fetch(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Fetch(); !errors.Is(err, ErrExhausted) {
		t.Errorf("fetch past capacity: err = %v, want ErrExhausted", err)
	}
}

func TestGrowthAddsTree(t *testing.T) {
	l, _, _ := newLayer(t, 64, 1.0)
	for i := 0; i < 64; i++ {
		if _, err := l.Fetch(); err != nil {
			t.Fatal(err)
		}
	}
	r, err := l.Fetch()
	if err != nil {
		t.Fatalf("growth fetch: %v", err)
	}
	if r.Tree() != 1 {
		t.Errorf("counter after growth from tree %d, want 1", r.Tree())
	}
	st := l.Stats()
	if st.Trees != 2 || st.Grows != 1 || st.Capacity != 128 {
		t.Errorf("stats after growth = %+v", st)
	}
	// Counters in the new tree must be usable through the cache.
	if _, err := l.CounterBump(r); err != nil {
		t.Fatalf("bump in grown tree: %v", err)
	}
}

func TestReuseAfterFreeIsFIFO(t *testing.T) {
	l, _, _ := newLayer(t, 3, 0)
	a, _ := l.Fetch()
	b, _ := l.Fetch()
	c, _ := l.Fetch()
	_ = l.Free(b)
	_ = l.Free(a)
	r1, err := l.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != b {
		t.Errorf("first reuse = %v, want %v (FIFO)", r1, b)
	}
	r2, _ := l.Fetch()
	if r2 != a {
		t.Errorf("second reuse = %v, want %v", r2, a)
	}
	_ = c
}

func TestDoubleFreeDetected(t *testing.T) {
	l, _, _ := newLayer(t, 10, 0)
	r, _ := l.Fetch()
	if err := l.Free(r); err != nil {
		t.Fatal(err)
	}
	if err := l.Free(r); !errors.Is(err, ErrCorrupt) {
		t.Errorf("double free: err = %v, want ErrCorrupt", err)
	}
}

func TestRingAttackDetected(t *testing.T) {
	l, _, _ := newLayer(t, 10, 0)
	r, _ := l.Fetch() // r is in use
	// Malicious host points the free ring at the in-use counter, trying
	// to force keystream reuse.
	l.CorruptRingForTest(r)
	if _, err := l.Fetch(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("ring attack: err = %v, want ErrCorrupt", err)
	}
}

func TestBogusRedPtrDetected(t *testing.T) {
	l, _, _ := newLayer(t, 10, 0)
	l.CorruptRingForTest(makeRedPtr(7, 5)) // tree 7 does not exist
	if _, err := l.Fetch(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bogus tree redptr: err = %v, want ErrCorrupt", err)
	}
	if err := l.Free(makeRedPtr(0, 9999)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bogus ctr free: err = %v, want ErrCorrupt", err)
	}
}

func TestCounterOpsThroughCache(t *testing.T) {
	l, cache, _ := newLayer(t, 100, 0)
	r, _ := l.Fetch()
	v1, err := l.CounterGet(r)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := l.CounterBump(r)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Error("bump did not change counter")
	}
	if err := cache.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, tree := range l.Trees() {
		if err := tree.VerifyAll(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRedPtrEncoding(t *testing.T) {
	r := makeRedPtr(3, 123456789)
	if r.Tree() != 3 || r.Ctr() != 123456789 {
		t.Errorf("round trip = (%d,%d), want (3,123456789)", r.Tree(), r.Ctr())
	}
}
