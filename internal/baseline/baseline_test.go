package baseline

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ariakv/aria/internal/sgx"
)

func newStore(t *testing.T, tree bool) *Store {
	t.Helper()
	enc := sgx.New(sgx.Config{EPCBytes: 64 << 20})
	s, err := New(enc, Options{ExpectedKeys: 1024, Tree: tree})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func bothFlavours(t *testing.T, fn func(t *testing.T, s *Store)) {
	t.Helper()
	for _, tree := range []bool{false, true} {
		name := "hash"
		if tree {
			name = "tree"
		}
		t.Run(name, func(t *testing.T) { fn(t, newStore(t, tree)) })
	}
}

func key(i int) []byte   { return []byte(fmt.Sprintf("bl-key-%06d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("bl-val-%d", i*11)) }

func TestPutGetDelete(t *testing.T) {
	bothFlavours(t, func(t *testing.T, s *Store) {
		for i := 0; i < 500; i++ {
			if err := s.Put(key(i), value(i)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		for i := 0; i < 500; i++ {
			got, err := s.Get(key(i))
			if err != nil || !bytes.Equal(got, value(i)) {
				t.Fatalf("get %d: %v", i, err)
			}
		}
		for i := 0; i < 500; i += 2 {
			if err := s.Delete(key(i)); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		}
		for i := 0; i < 500; i++ {
			_, err := s.Get(key(i))
			if i%2 == 0 && !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted %d: %v", i, err)
			}
			if i%2 == 1 && err != nil {
				t.Fatalf("survivor %d: %v", i, err)
			}
		}
		if s.Keys() != 250 {
			t.Errorf("keys = %d, want 250", s.Keys())
		}
		if err := s.VerifyTree(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestUpdateValues(t *testing.T) {
	bothFlavours(t, func(t *testing.T, s *Store) {
		_ = s.Put(key(1), []byte("short"))
		long := bytes.Repeat([]byte("L"), 1000)
		if err := s.Put(key(1), long); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(key(1))
		if err != nil || !bytes.Equal(got, long) {
			t.Fatalf("grown update: %v", err)
		}
		if err := s.Put(key(1), []byte("tiny")); err != nil {
			t.Fatal(err)
		}
		got, _ = s.Get(key(1))
		if string(got) != "tiny" {
			t.Errorf("shrunk update = %q", got)
		}
		if s.Keys() != 1 {
			t.Errorf("keys = %d", s.Keys())
		}
	})
}

func TestRandomOpsMirror(t *testing.T) {
	bothFlavours(t, func(t *testing.T, s *Store) {
		mirror := make(map[string][]byte)
		rng := rand.New(rand.NewSource(13))
		for op := 0; op < 6000; op++ {
			k := key(rng.Intn(300))
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				v := make([]byte, rng.Intn(64)+1)
				rng.Read(v)
				if err := s.Put(k, v); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				mirror[string(k)] = v
			case 4:
				err := s.Delete(k)
				if _, ok := mirror[string(k)]; ok && err != nil {
					t.Fatalf("op %d delete: %v", op, err)
				}
				delete(mirror, string(k))
			default:
				got, err := s.Get(k)
				want, ok := mirror[string(k)]
				if ok && (err != nil || !bytes.Equal(got, want)) {
					t.Fatalf("op %d get: %v", op, err)
				}
				if !ok && !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d get missing: %v", op, err)
				}
			}
			if op%1000 == 999 {
				if err := s.VerifyTree(); err != nil {
					t.Fatalf("op %d invariant: %v", op, err)
				}
			}
		}
		if s.Keys() != len(mirror) {
			t.Errorf("keys = %d, mirror = %d", s.Keys(), len(mirror))
		}
	})
}

func TestPagingBeyondEPC(t *testing.T) {
	// The defining Baseline behaviour: working set beyond the EPC pages.
	enc := sgx.New(sgx.Config{EPCBytes: 1 << 20})
	s, err := New(enc, Options{ExpectedKeys: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 64)
	for i := 0; i < 1<<15; i++ {
		if err := s.Put(key(i), val); err != nil {
			t.Fatal(err)
		}
	}
	enc.ResetStats()
	for i := 0; i < 4096; i++ {
		if _, err := s.Get(key(i * 7 % (1 << 15))); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Stats().PageSwaps == 0 {
		t.Error("no secure paging despite store exceeding EPC")
	}
}

func TestNoCryptoCharged(t *testing.T) {
	bothFlavours(t, func(t *testing.T, s *Store) {
		_ = s.Put(key(1), value(1))
		_, _ = s.Get(key(1))
		st := s.Enclave().Stats()
		if st.MACs != 0 || st.CTROps != 0 {
			t.Errorf("baseline performed crypto: %+v", st)
		}
	})
}
