package baseline

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"github.com/ariakv/aria/internal/sgx"
)

// The B-tree flavour: classic B-tree nodes stored plaintext in enclave
// memory. Every node visited is an EPC touch over its full size, so large
// trees page heavily once past the EPC — the Baseline line of Figure 10.
//
// Node block layout (enclave memory):
//
//	flags(1) nkeys(2) { klen(2) vlen(2) key value }*nkeys [children (nkeys+1)*8]
type bnode struct {
	block    sgx.EPtr
	size     int // allocated payload bytes (size class)
	leaf     bool
	keys     [][]byte
	vals     [][]byte
	children []sgx.EPtr
	dirty    bool
}

func (s *Store) maxKeysT() int { return 2*s.degree - 1 }

func (s *Store) openNode(block sgx.EPtr) (*bnode, error) {
	hdr := s.enc.EBytes(block, 3)
	leaf := hdr[0]&1 != 0
	nkeys := int(binary.LittleEndian.Uint16(hdr[1:]))
	n := &bnode{block: block, leaf: leaf}
	// Decode conservatively: we do not store the payload length, so walk
	// the encoding (all lengths are trusted here — enclave memory).
	off := 3
	peek := func(sz int) []byte { return s.enc.EBytes(block+sgx.EPtr(off), sz) }
	n.keys = make([][]byte, nkeys)
	n.vals = make([][]byte, nkeys)
	for i := 0; i < nkeys; i++ {
		lens := peek(4)
		kl := int(binary.LittleEndian.Uint16(lens))
		vl := int(binary.LittleEndian.Uint16(lens[2:]))
		off += 4
		body := peek(kl + vl)
		n.keys[i] = append([]byte(nil), body[:kl]...)
		n.vals[i] = append([]byte(nil), body[kl:]...)
		off += kl + vl
	}
	if !leaf {
		n.children = make([]sgx.EPtr, nkeys+1)
		for i := range n.children {
			n.children[i] = sgx.EPtr(binary.LittleEndian.Uint64(peek(8)))
			off += 8
		}
	}
	n.size = off
	return n, nil
}

func (n *bnode) encodedSize() int {
	sz := 3
	for i := range n.keys {
		sz += 4 + len(n.keys[i]) + len(n.vals[i])
	}
	if !n.leaf {
		sz += len(n.children) * 8
	}
	return sz
}

// sealNode writes n back to enclave memory, reallocating when it outgrew
// its block. Returns the (possibly new) block address.
func (s *Store) sealNode(n *bnode) sgx.EPtr {
	need := n.encodedSize()
	if n.block == sgx.NilE {
		n.block = s.alloc(need)
		n.size = need
	} else if sizeClass(n.size) < need {
		s.freeBlock(n.block, n.size)
		n.block = s.alloc(need)
	}
	n.size = need
	buf := s.enc.EBytes(n.block, need)
	if n.leaf {
		buf[0] = 1
	} else {
		buf[0] = 0
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	off := 3
	for i := range n.keys {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(n.keys[i])))
		binary.LittleEndian.PutUint16(buf[off+2:], uint16(len(n.vals[i])))
		off += 4
		copy(buf[off:], n.keys[i])
		copy(buf[off+len(n.keys[i]):], n.vals[i])
		off += len(n.keys[i]) + len(n.vals[i])
	}
	if !n.leaf {
		for _, c := range n.children {
			binary.LittleEndian.PutUint64(buf[off:], uint64(c))
			off += 8
		}
	}
	return n.block
}

func searchKeys(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(keys[mid], key) {
		case 0:
			return mid, true
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

func (s *Store) treeGet(key []byte) ([]byte, error) {
	cur := s.root
	for cur != sgx.NilE {
		n, err := s.openNode(cur)
		if err != nil {
			return nil, err
		}
		pos, found := searchKeys(n.keys, key)
		if found {
			return append([]byte(nil), n.vals[pos]...), nil
		}
		if n.leaf {
			break
		}
		cur = n.children[pos]
	}
	return nil, ErrNotFound
}

type bSplit struct {
	key, val []byte
	right    sgx.EPtr
}

func (s *Store) treePut(key, value []byte) error {
	if s.root == sgx.NilE {
		n := &bnode{leaf: true, keys: [][]byte{append([]byte(nil), key...)}, vals: [][]byte{append([]byte(nil), value...)}}
		s.root = s.sealNode(n)
		s.live = 1
		return nil
	}
	nb, up, existed, err := s.treeInsert(s.root, key, value)
	if err != nil {
		return err
	}
	s.root = nb
	if up != nil {
		root := &bnode{
			leaf:     false,
			keys:     [][]byte{up.key},
			vals:     [][]byte{up.val},
			children: []sgx.EPtr{s.root, up.right},
		}
		s.root = s.sealNode(root)
	}
	if !existed {
		s.live++
	}
	return nil
}

func (s *Store) treeInsert(block sgx.EPtr, key, value []byte) (sgx.EPtr, *bSplit, bool, error) {
	n, err := s.openNode(block)
	if err != nil {
		return block, nil, false, err
	}
	pos, found := searchKeys(n.keys, key)
	if found {
		n.vals[pos] = append([]byte(nil), value...)
		return s.sealNode(n), nil, true, nil
	}
	if n.leaf {
		n.keys = insertBytesAt(n.keys, pos, append([]byte(nil), key...))
		n.vals = insertBytesAt(n.vals, pos, append([]byte(nil), value...))
	} else {
		old := n.children[pos]
		ncb, up, existed, err := s.treeInsert(old, key, value)
		if err != nil {
			return block, nil, false, err
		}
		if ncb == old && up == nil {
			return block, nil, existed, nil
		}
		n.children[pos] = ncb
		if up != nil {
			n.keys = insertBytesAt(n.keys, pos, up.key)
			n.vals = insertBytesAt(n.vals, pos, up.val)
			n.children = insertEPtrAt(n.children, pos+1, up.right)
		}
		if existed || up == nil {
			return s.sealNode(n), nil, existed, nil
		}
	}
	if len(n.keys) <= s.maxKeysT() {
		return s.sealNode(n), nil, false, nil
	}
	mid := len(n.keys) / 2
	up := &bSplit{key: n.keys[mid], val: n.vals[mid]}
	right := &bnode{leaf: n.leaf}
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.vals = append(right.vals, n.vals[mid+1:]...)
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	if !n.leaf {
		right.children = append(right.children, n.children[mid+1:]...)
		n.children = n.children[:mid+1]
	}
	up.right = s.sealNode(right)
	return s.sealNode(n), up, false, nil
}

func insertBytesAt(sl [][]byte, i int, v []byte) [][]byte {
	sl = append(sl, nil)
	copy(sl[i+1:], sl[i:])
	sl[i] = v
	return sl
}

func insertEPtrAt(sl []sgx.EPtr, i int, v sgx.EPtr) []sgx.EPtr {
	sl = append(sl, 0)
	copy(sl[i+1:], sl[i:])
	sl[i] = v
	return sl
}

func removeBytesAt(sl [][]byte, i int) [][]byte {
	copy(sl[i:], sl[i+1:])
	return sl[:len(sl)-1]
}

func removeEPtrAt(sl []sgx.EPtr, i int) []sgx.EPtr {
	copy(sl[i:], sl[i+1:])
	return sl[:len(sl)-1]
}

func (s *Store) treeDelete(key []byte) error {
	if s.root == sgx.NilE {
		return ErrNotFound
	}
	nb, deleted, err := s.treeDeleteRec(s.root, key)
	if err != nil {
		return err
	}
	s.root = nb
	if !deleted {
		return ErrNotFound
	}
	s.live--
	n, err := s.openNode(s.root)
	if err != nil {
		return err
	}
	if len(n.keys) == 0 {
		s.freeBlock(n.block, n.size)
		if n.leaf {
			s.root = sgx.NilE
		} else {
			s.root = n.children[0]
		}
	}
	return nil
}

func (s *Store) treeDeleteRec(block sgx.EPtr, key []byte) (sgx.EPtr, bool, error) {
	n, err := s.openNode(block)
	if err != nil {
		return block, false, err
	}
	pos, found := searchKeys(n.keys, key)
	if n.leaf {
		if !found {
			return block, false, nil
		}
		n.keys = removeBytesAt(n.keys, pos)
		n.vals = removeBytesAt(n.vals, pos)
		return s.sealNode(n), true, nil
	}
	if found {
		left, err := s.openNode(n.children[pos])
		if err != nil {
			return block, false, err
		}
		if len(left.keys) >= s.degree {
			pk, pv, ncb, err := s.treePopMax(n.children[pos])
			if err != nil {
				return block, false, err
			}
			n.children[pos] = ncb
			n.keys[pos], n.vals[pos] = pk, pv
			return s.sealNode(n), true, nil
		}
		right, err := s.openNode(n.children[pos+1])
		if err != nil {
			return block, false, err
		}
		if len(right.keys) >= s.degree {
			sk, sv, ncb, err := s.treePopMin(n.children[pos+1])
			if err != nil {
				return block, false, err
			}
			n.children[pos+1] = ncb
			n.keys[pos], n.vals[pos] = sk, sv
			return s.sealNode(n), true, nil
		}
		merged := s.treeMerge(n, pos, left, right)
		ncb, deleted, err := s.treeDeleteRec(merged, key)
		if err != nil {
			return block, false, err
		}
		n.children[pos] = ncb
		return s.sealNode(n), deleted, nil
	}
	childPos, err := s.treeEnsureFull(n, pos)
	if err != nil {
		return block, false, err
	}
	old := n.children[childPos]
	ncb, deleted, err := s.treeDeleteRec(old, key)
	if err != nil {
		return block, false, err
	}
	if ncb == old && !n.dirty {
		return block, deleted, nil
	}
	n.children[childPos] = ncb
	return s.sealNode(n), deleted, nil
}

func (s *Store) treePopMax(block sgx.EPtr) ([]byte, []byte, sgx.EPtr, error) {
	n, err := s.openNode(block)
	if err != nil {
		return nil, nil, block, err
	}
	if n.leaf {
		i := len(n.keys) - 1
		k, v := n.keys[i], n.vals[i]
		n.keys, n.vals = n.keys[:i], n.vals[:i]
		return k, v, s.sealNode(n), nil
	}
	cp, err := s.treeEnsureFull(n, len(n.children)-1)
	if err != nil {
		return nil, nil, block, err
	}
	k, v, ncb, err := s.treePopMax(n.children[cp])
	if err != nil {
		return nil, nil, block, err
	}
	n.children[cp] = ncb
	return k, v, s.sealNode(n), nil
}

func (s *Store) treePopMin(block sgx.EPtr) ([]byte, []byte, sgx.EPtr, error) {
	n, err := s.openNode(block)
	if err != nil {
		return nil, nil, block, err
	}
	if n.leaf {
		k, v := n.keys[0], n.vals[0]
		n.keys = removeBytesAt(n.keys, 0)
		n.vals = removeBytesAt(n.vals, 0)
		return k, v, s.sealNode(n), nil
	}
	cp, err := s.treeEnsureFull(n, 0)
	if err != nil {
		return nil, nil, block, err
	}
	k, v, ncb, err := s.treePopMin(n.children[cp])
	if err != nil {
		return nil, nil, block, err
	}
	n.children[cp] = ncb
	return k, v, s.sealNode(n), nil
}

func (s *Store) treeEnsureFull(n *bnode, pos int) (int, error) {
	child, err := s.openNode(n.children[pos])
	if err != nil {
		return pos, err
	}
	if len(child.keys) >= s.degree {
		return pos, nil
	}
	n.dirty = true
	if pos > 0 {
		left, err := s.openNode(n.children[pos-1])
		if err != nil {
			return pos, err
		}
		if len(left.keys) >= s.degree {
			child.keys = insertBytesAt(child.keys, 0, n.keys[pos-1])
			child.vals = insertBytesAt(child.vals, 0, n.vals[pos-1])
			li := len(left.keys) - 1
			n.keys[pos-1], n.vals[pos-1] = left.keys[li], left.vals[li]
			left.keys, left.vals = left.keys[:li], left.vals[:li]
			if !child.leaf {
				child.children = insertEPtrAt(child.children, 0, left.children[len(left.children)-1])
				left.children = left.children[:len(left.children)-1]
			}
			n.children[pos-1] = s.sealNode(left)
			n.children[pos] = s.sealNode(child)
			return pos, nil
		}
	}
	if pos < len(n.children)-1 {
		right, err := s.openNode(n.children[pos+1])
		if err != nil {
			return pos, err
		}
		if len(right.keys) >= s.degree {
			child.keys = append(child.keys, n.keys[pos])
			child.vals = append(child.vals, n.vals[pos])
			n.keys[pos], n.vals[pos] = right.keys[0], right.vals[0]
			right.keys = removeBytesAt(right.keys, 0)
			right.vals = removeBytesAt(right.vals, 0)
			if !child.leaf {
				child.children = append(child.children, right.children[0])
				right.children = removeEPtrAt(right.children, 0)
			}
			n.children[pos+1] = s.sealNode(right)
			n.children[pos] = s.sealNode(child)
			return pos, nil
		}
		s.treeMerge(n, pos, child, right)
		return pos, nil
	}
	left, err := s.openNode(n.children[pos-1])
	if err != nil {
		return pos, err
	}
	s.treeMerge(n, pos-1, left, child)
	return pos - 1, nil
}

// treeMerge folds n.keys[pos] and children pos, pos+1 into the left child.
func (s *Store) treeMerge(n *bnode, pos int, left, right *bnode) sgx.EPtr {
	n.dirty = true
	left.keys = append(left.keys, n.keys[pos])
	left.vals = append(left.vals, n.vals[pos])
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, right.vals...)
	if !left.leaf {
		left.children = append(left.children, right.children...)
	}
	s.freeBlock(right.block, right.size)
	nb := s.sealNode(left)
	n.keys = removeBytesAt(n.keys, pos)
	n.vals = removeBytesAt(n.vals, pos)
	n.children = removeEPtrAt(n.children, pos+1)
	n.children[pos] = nb
	return nb
}

// VerifyTree checks B-tree ordering invariants (tests).
func (s *Store) VerifyTree() error {
	if !s.opts.Tree {
		return nil
	}
	if s.root == sgx.NilE {
		if s.live != 0 {
			return fmt.Errorf("empty tree with %d live keys", s.live)
		}
		return nil
	}
	count := 0
	var walk func(b sgx.EPtr, lo, hi []byte) error
	walk = func(b sgx.EPtr, lo, hi []byte) error {
		n, err := s.openNode(b)
		if err != nil {
			return err
		}
		for i, k := range n.keys {
			if i > 0 && bytes.Compare(n.keys[i-1], k) >= 0 {
				return fmt.Errorf("node %#x out of order", b)
			}
			if lo != nil && bytes.Compare(k, lo) <= 0 || hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("node %#x violates bounds", b)
			}
		}
		count += len(n.keys)
		if n.leaf {
			return nil
		}
		for i, c := range n.children {
			var clo, chi []byte
			if i > 0 {
				clo = n.keys[i-1]
			} else {
				clo = lo
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			} else {
				chi = hi
			}
			if err := walk(c, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(s.root, nil, nil); err != nil {
		return err
	}
	if count != s.live {
		return fmt.Errorf("tree holds %d keys, %d live", count, s.live)
	}
	return nil
}
