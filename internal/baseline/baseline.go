// Package baseline implements the "Baseline" comparator of the Aria paper:
// an ordinary in-memory KV store placed entirely inside the enclave with no
// modification. SGX hardware transparently encrypts and integrity-protects
// every page, so the store itself performs no cryptography — but once the
// working set exceeds the EPC, every cold access triggers a ~40K-cycle
// secure page swap, which is the cliff Figure 2 shows at 24 MB keyspace.
//
// Both index flavours used in the evaluation are provided: a chained hash
// table (Figures 2, 9, 11) and a B-tree (Figures 10, 11).
package baseline

import (
	"bytes"
	"encoding/binary"
	"errors"

	"github.com/ariakv/aria/internal/sgx"
)

// Errors mirroring the other stores' surfaces.
var (
	ErrNotFound = errors.New("baseline: key not found")
	ErrTooLarge = errors.New("baseline: key or value exceeds configured maximum")
	ErrEmptyKey = errors.New("baseline: empty key")
)

// Options configures a baseline store.
type Options struct {
	// ExpectedKeys sizes the hash bucket array.
	ExpectedKeys int
	// BucketLoad is the target chain length (default 4).
	BucketLoad int
	// Tree selects the B-tree flavour instead of the hash table.
	Tree bool
	// BTreeDegree is the minimum degree (default 8).
	BTreeDegree int
	// MaxKeySize / MaxValueSize bound entries (defaults 256/4096).
	MaxKeySize   int
	MaxValueSize int
}

// Store is a plaintext KV store living entirely in enclave memory.
type Store struct {
	enc  *sgx.Enclave
	opts Options

	// hash index
	nbuckets int
	buckets  sgx.EPtr

	// btree index
	root   sgx.EPtr
	degree int

	// free lists per size class for entry/node blocks (trusted).
	free map[int][]sgx.EPtr

	live       int
	gets, puts uint64
}

// New creates a baseline store inside the enclave.
func New(enc *sgx.Enclave, opts Options) (*Store, error) {
	if opts.ExpectedKeys <= 0 {
		opts.ExpectedKeys = 1 << 20
	}
	if opts.BucketLoad <= 0 {
		opts.BucketLoad = 4
	}
	if opts.BTreeDegree <= 1 {
		opts.BTreeDegree = 8
	}
	if opts.MaxKeySize <= 0 {
		opts.MaxKeySize = 256
	}
	if opts.MaxValueSize <= 0 {
		opts.MaxValueSize = 4096
	}
	s := &Store{
		enc:    enc,
		opts:   opts,
		degree: opts.BTreeDegree,
		free:   make(map[int][]sgx.EPtr),
	}
	if !opts.Tree {
		s.nbuckets = opts.ExpectedKeys / opts.BucketLoad
		if s.nbuckets < 16 {
			s.nbuckets = 16
		}
		s.buckets = enc.EAlloc(s.nbuckets*8, sgx.CacheLine)
	}
	return s, nil
}

// sizeClass rounds n up to a power of two (min 32) for block reuse.
func sizeClass(n int) int {
	c := 32
	for c < n {
		c *= 2
	}
	return c
}

func (s *Store) alloc(n int) sgx.EPtr {
	c := sizeClass(n)
	if l := s.free[c]; len(l) > 0 {
		p := l[len(l)-1]
		s.free[c] = l[:len(l)-1]
		return p
	}
	return s.enc.EAlloc(c, 8)
}

func (s *Store) freeBlock(p sgx.EPtr, n int) {
	c := sizeClass(n)
	s.free[c] = append(s.free[c], p)
}

func (s *Store) check(key []byte, vlen int) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > s.opts.MaxKeySize || vlen > s.opts.MaxValueSize {
		return ErrTooLarge
	}
	return nil
}

// Get returns a copy of the value under key.
func (s *Store) Get(key []byte) ([]byte, error) {
	if err := s.check(key, 0); err != nil {
		return nil, err
	}
	s.gets++
	if s.opts.Tree {
		return s.treeGet(key)
	}
	return s.hashGet(key)
}

// Put inserts or updates a KV pair.
func (s *Store) Put(key, value []byte) error {
	if err := s.check(key, len(value)); err != nil {
		return err
	}
	s.puts++
	if s.opts.Tree {
		return s.treePut(key, value)
	}
	return s.hashPut(key, value)
}

// Delete removes a key.
func (s *Store) Delete(key []byte) error {
	if err := s.check(key, 0); err != nil {
		return err
	}
	if s.opts.Tree {
		return s.treeDelete(key)
	}
	return s.hashDelete(key)
}

// Keys returns the live entry count.
func (s *Store) Keys() int { return s.live }

// Enclave exposes the enclave for throughput accounting.
func (s *Store) Enclave() *sgx.Enclave { return s.enc }

// ---- hash flavour ------------------------------------------------------------

// Entry: next(8) klen(2) vlen(2) key value — all inside the enclave.
const hEntOverhead = 12

func (s *Store) hashOf(key []byte) int {
	h := uint64(14695981039346656037)
	for _, c := range key {
		h = (h ^ uint64(c)) * 1099511628211
	}
	s.enc.ChargeHash()
	return int(h % uint64(s.nbuckets))
}

func (s *Store) slot(b int) sgx.EPtr { return s.buckets + sgx.EPtr(b*8) }

func (s *Store) readPtrE(p sgx.EPtr) sgx.EPtr {
	return sgx.EPtr(binary.LittleEndian.Uint64(s.enc.EBytes(p, 8)))
}

func (s *Store) writePtrE(p sgx.EPtr, v sgx.EPtr) {
	binary.LittleEndian.PutUint64(s.enc.EBytes(p, 8), uint64(v))
}

func (s *Store) entKV(e sgx.EPtr) (next sgx.EPtr, k, v []byte) {
	hdr := s.enc.EBytes(e, hEntOverhead)
	next = sgx.EPtr(binary.LittleEndian.Uint64(hdr))
	klen := int(binary.LittleEndian.Uint16(hdr[8:]))
	vlen := int(binary.LittleEndian.Uint16(hdr[10:]))
	body := s.enc.EBytes(e+hEntOverhead, klen+vlen)
	return next, body[:klen], body[klen:]
}

func (s *Store) hashGet(key []byte) ([]byte, error) {
	e := s.readPtrE(s.slot(s.hashOf(key)))
	for e != sgx.NilE {
		next, k, v := s.entKV(e)
		if bytes.Equal(k, key) {
			out := make([]byte, len(v))
			copy(out, v)
			return out, nil
		}
		e = next
	}
	return nil, ErrNotFound
}

func (s *Store) hashPut(key, value []byte) error {
	b := s.hashOf(key)
	prev := s.slot(b)
	e := s.readPtrE(prev)
	for e != sgx.NilE {
		next, k, v := s.entKV(e)
		if bytes.Equal(k, key) {
			if len(v) == len(value) {
				copy(v, value)
				return nil
			}
			// Replace the block.
			ne := s.writeEntry(next, key, value)
			s.writePtrE(prev, ne)
			s.freeBlock(e, hEntOverhead+len(k)+len(v))
			return nil
		}
		prev = e
		e = next
	}
	ne := s.writeEntry(s.readPtrE(s.slot(b)), key, value)
	s.writePtrE(s.slot(b), ne)
	s.live++
	return nil
}

func (s *Store) writeEntry(next sgx.EPtr, key, value []byte) sgx.EPtr {
	n := hEntOverhead + len(key) + len(value)
	e := s.alloc(n)
	buf := s.enc.EBytes(e, n)
	binary.LittleEndian.PutUint64(buf, uint64(next))
	binary.LittleEndian.PutUint16(buf[8:], uint16(len(key)))
	binary.LittleEndian.PutUint16(buf[10:], uint16(len(value)))
	copy(buf[hEntOverhead:], key)
	copy(buf[hEntOverhead+len(key):], value)
	return e
}

func (s *Store) hashDelete(key []byte) error {
	b := s.hashOf(key)
	prev := s.slot(b)
	e := s.readPtrE(prev)
	for e != sgx.NilE {
		next, k, v := s.entKV(e)
		if bytes.Equal(k, key) {
			s.writePtrE(prev, next)
			s.freeBlock(e, hEntOverhead+len(k)+len(v))
			s.live--
			return nil
		}
		prev = e
		e = next
	}
	return ErrNotFound
}
