package compress

import (
	"bytes"
	"testing"
)

// FuzzDictDecompress drives arbitrary bytes through both untrusted
// decode paths: the serialized-dictionary loader and the per-record
// decompressor. Neither may panic or over-allocate; and any dictionary
// that loads must satisfy the round-trip law — whatever it compresses,
// it decompresses back byte-identically.
func FuzzDictDecompress(f *testing.F) {
	trained := Train([][]byte{
		[]byte("abcdefghijklmnop"),
		[]byte("bcdefghijklmnopq"),
		[]byte("abcdefghijklmnop"),
		[]byte("cdefghijklmnopqr"),
	})
	valid := trained.Serialize()
	f.Add(valid, []byte("abcdefghijklmnop"), 16)
	f.Add(valid, []byte{}, 0)
	f.Add([]byte{}, []byte("x"), 1)
	f.Add([]byte{dictVersion, 0}, []byte{0x80}, 4)
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 3 {
		corrupt[3] ^= 0x40
	}
	f.Add(corrupt, []byte("abcd"), 4)
	f.Fuzz(func(t *testing.T, dict, rec []byte, rawLen int) {
		if rawLen < 0 || rawLen > 1<<20 || len(dict) > MaxSerializedDict {
			t.Skip()
		}
		d, err := Load(dict)
		if err != nil {
			return // rejected dictionaries end the story
		}
		// Arbitrary record bytes: must decode or fail cleanly, never
		// panic, and a success must produce exactly rawLen bytes.
		if out, err := d.Decompress(rec, rawLen); err == nil && len(out) != rawLen {
			t.Fatalf("decompress returned %d bytes for declared %d", len(out), rawLen)
		}
		// Round-trip law for whatever the loaded dictionary encodes.
		comp := d.Compress(nil, rec)
		back, err := d.Decompress(comp, len(rec))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(back, rec) {
			t.Fatal("round trip mismatch")
		}
	})
}
