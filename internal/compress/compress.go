// Package compress implements the cold tier's sampled pattern-dictionary
// compressor (DESIGN.md §15): a dictionary of frequent byte patterns is
// built from a sample of the values being compacted, and each record is
// then encoded independently as a greedy cover of dictionary references
// and literal runs.
//
// The design follows the erigon lineage of dictionary compressors rather
// than a windowed LZ: there is NO cross-record state, so any single
// record can be decompressed knowing only the dictionary — the random
// access a cold tier needs to decompress one evicted value on a read
// miss without touching its neighbours. Determinism is a requirement,
// not an accident: given the same samples the same dictionary is built,
// so compacted segments (and the committed benchmark snapshots derived
// from them) are byte-stable across runs.
//
// Token stream (per compressed record):
//
//	0x00..0x7F  literal run: the low 7 bits + 1 (1..128) literal bytes follow
//	0x80..0xFF  pattern reference: copy dictionary pattern (byte - 0x80) whole
//
// A reference byte therefore addresses at most MaxPatterns = 128
// patterns; patterns are 4..255 bytes long. Decompression is a strict
// validator: an out-of-range reference, a truncated literal run, or an
// output size that disagrees with the declared raw length all fail —
// the fuzzer (FuzzDictDecompress) drives arbitrary token streams
// through this path.
package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

const (
	// MaxPatterns is the dictionary capacity: a pattern reference is one
	// byte with the high bit set, leaving 7 bits of index.
	MaxPatterns = 128
	// MinPatternLen is the shortest pattern worth a dictionary slot: a
	// reference byte must replace strictly more than itself, and the
	// prefix index below keys on 4 bytes.
	MinPatternLen = 4
	// MaxPatternLen keeps the serialized form's 1-byte length prefix.
	MaxPatternLen = 255
	// maxLiteralRun is the longest literal run one token can carry.
	maxLiteralRun = 128
	// dictVersion tags the serialized dictionary format.
	dictVersion = 1
	// MaxSerializedDict bounds what Load accepts: version + count +
	// MaxPatterns patterns of MaxPatternLen each, with headroom.
	MaxSerializedDict = 2 + MaxPatterns*(1+MaxPatternLen)
)

// ErrCorrupt is returned for any defect in a serialized dictionary or a
// compressed record: truncated tokens, out-of-range references, or a
// length mismatch. Inside sealed segments such a defect can only be a
// logic-level bug (the bytes authenticated), so callers treat it as
// corruption, not tampering.
var ErrCorrupt = errors.New("compress: corrupt input")

// Dict is an immutable pattern dictionary. The zero value (no patterns)
// is valid and encodes everything as literal runs.
type Dict struct {
	patterns [][]byte
	// index maps the first 4 bytes of each pattern to the pattern ids
	// sharing that prefix, longest pattern first, so the greedy encoder
	// probes one map entry per position and takes the longest match.
	index map[uint32][]int
}

// prefixKey packs the 4-byte pattern prefix the encoder probes on.
func prefixKey(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// newDict builds the probe index over an already-chosen pattern list.
func newDict(patterns [][]byte) *Dict {
	d := &Dict{patterns: patterns, index: make(map[uint32][]int, len(patterns))}
	for id, p := range patterns {
		k := prefixKey(p)
		d.index[k] = append(d.index[k], id)
	}
	for _, ids := range d.index {
		sort.SliceStable(ids, func(a, b int) bool {
			return len(d.patterns[ids[a]]) > len(d.patterns[ids[b]])
		})
	}
	return d
}

// Patterns returns the number of patterns in the dictionary.
func (d *Dict) Patterns() int { return len(d.patterns) }

// Bytes returns the serialized size of the dictionary: the number the
// aria_comp_dict_bytes gauge reports and segments pay to persist.
func (d *Dict) Bytes() int {
	n := 2
	for _, p := range d.patterns {
		n += 1 + len(p)
	}
	return n
}

// Serialize encodes the dictionary: version (1) || count (1) || per
// pattern, len (1) || bytes.
func (d *Dict) Serialize() []byte {
	out := make([]byte, 2, d.Bytes())
	out[0] = dictVersion
	out[1] = byte(len(d.patterns))
	for _, p := range d.patterns {
		out = append(out, byte(len(p)))
		out = append(out, p...)
	}
	return out
}

// Load parses a serialized dictionary, validating every bound.
func Load(b []byte) (*Dict, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: dictionary shorter than its header", ErrCorrupt)
	}
	if b[0] != dictVersion {
		return nil, fmt.Errorf("%w: unknown dictionary version %d", ErrCorrupt, b[0])
	}
	count := int(b[1])
	if count > MaxPatterns {
		return nil, fmt.Errorf("%w: dictionary claims %d patterns (max %d)", ErrCorrupt, count, MaxPatterns)
	}
	rest := b[2:]
	patterns := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return nil, fmt.Errorf("%w: dictionary pattern %d truncated", ErrCorrupt, i)
		}
		n := int(rest[0])
		rest = rest[1:]
		if n < MinPatternLen || len(rest) < n {
			return nil, fmt.Errorf("%w: dictionary pattern %d has bad length %d", ErrCorrupt, i, n)
		}
		patterns = append(patterns, append([]byte(nil), rest[:n]...))
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: dictionary has %d trailing bytes", ErrCorrupt, len(rest))
	}
	return newDict(patterns), nil
}

// candidateLengths is the ladder of substring lengths Train scores.
// Long patterns are tried first so a value that repeats whole is one
// reference; the short end still catches common prefixes.
var candidateLengths = []int{64, 48, 32, 24, 16, 12, 8, 6, 4}

// maxTrainSamples caps training work: sampling is the point of the
// design — the dictionary only has to represent the corpus, not index
// it.
const maxTrainSamples = 512

// Train builds a dictionary from a sample of the records about to be
// compressed. Candidate substrings are scored by the bytes they would
// save ((len-1) per occurrence beyond the first), the top scorers win
// dictionary slots, and candidates already covered by a chosen longer
// pattern are skipped. Deterministic for a given sample sequence.
func Train(samples [][]byte) *Dict {
	if len(samples) > maxTrainSamples {
		// Deterministic stride sampling, no RNG.
		stride := len(samples) / maxTrainSamples
		sub := make([][]byte, 0, maxTrainSamples)
		for i := 0; i < len(samples) && len(sub) < maxTrainSamples; i += stride {
			sub = append(sub, samples[i])
		}
		samples = sub
	}
	counts := make(map[string]int)
	for _, s := range samples {
		for _, n := range candidateLengths {
			if n > len(s) {
				continue
			}
			// Stride by half the length: adjacent offsets are near
			// duplicates; halving keeps phase coverage with 2x the work
			// of disjoint chunks.
			step := n / 2
			for off := 0; off+n <= len(s); off += step {
				counts[string(s[off:off+n])]++
			}
		}
	}
	type cand struct {
		pat   string
		score int
	}
	cands := make([]cand, 0, len(counts))
	for p, c := range counts {
		if c < 2 {
			continue
		}
		cands = append(cands, cand{p, (len(p) - 1) * (c - 1)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if len(cands[i].pat) != len(cands[j].pat) {
			return len(cands[i].pat) > len(cands[j].pat)
		}
		return cands[i].pat < cands[j].pat
	})
	var patterns [][]byte
	for _, c := range cands {
		if len(patterns) >= MaxPatterns {
			break
		}
		covered := false
		for _, chosen := range patterns {
			if bytes.Contains(chosen, []byte(c.pat)) {
				covered = true
				break
			}
		}
		if !covered {
			patterns = append(patterns, []byte(c.pat))
		}
	}
	return newDict(patterns)
}

// Compress appends the encoded form of src to dst and returns it. The
// raw length is NOT stored — records live inside framing that already
// carries it, and repeating it here would tax every record.
func (d *Dict) Compress(dst, src []byte) []byte {
	litStart := 0 // start of the pending literal run
	flush := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > maxLiteralRun {
				n = maxLiteralRun
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	i := 0
	for i < len(src) {
		if len(src)-i >= MinPatternLen && d.index != nil {
			if ids, ok := d.index[prefixKey(src[i:])]; ok {
				matched := false
				for _, id := range ids {
					p := d.patterns[id]
					if len(p) <= len(src)-i && bytes.HasPrefix(src[i:], p) {
						flush(i)
						dst = append(dst, 0x80|byte(id))
						i += len(p)
						litStart = i
						matched = true
						break
					}
				}
				if matched {
					continue
				}
			}
		}
		i++
	}
	flush(len(src))
	return dst
}

// Decompress decodes one compressed record whose raw length is known to
// be rawLen (carried by the surrounding framing), validating every
// token against the dictionary and the declared length.
func (d *Dict) Decompress(comp []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 {
		return nil, fmt.Errorf("%w: negative raw length", ErrCorrupt)
	}
	out := make([]byte, 0, rawLen)
	for i := 0; i < len(comp); {
		tok := comp[i]
		i++
		if tok < 0x80 {
			n := int(tok) + 1
			if i+n > len(comp) {
				return nil, fmt.Errorf("%w: literal run overruns record", ErrCorrupt)
			}
			if len(out)+n > rawLen {
				return nil, fmt.Errorf("%w: output exceeds declared length", ErrCorrupt)
			}
			out = append(out, comp[i:i+n]...)
			i += n
			continue
		}
		id := int(tok & 0x7F)
		if id >= len(d.patterns) {
			return nil, fmt.Errorf("%w: pattern reference %d out of range", ErrCorrupt, id)
		}
		p := d.patterns[id]
		if len(out)+len(p) > rawLen {
			return nil, fmt.Errorf("%w: output exceeds declared length", ErrCorrupt)
		}
		out = append(out, p...)
	}
	if len(out) != rawLen {
		return nil, fmt.Errorf("%w: decompressed %d bytes, expected %d", ErrCorrupt, len(out), rawLen)
	}
	return out, nil
}
