package compress

import (
	"bytes"
	"fmt"
	"testing"
)

// corpus builds the repo's default value corpus: cyclic lowercase runs
// at varying phases, the shape the workload generator emits.
func corpus(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		v := make([]byte, size)
		for j := range v {
			v[j] = byte('a' + (i+j)%26)
		}
		out[i] = v
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	samples := corpus(200, 32)
	d := Train(samples)
	if d.Patterns() == 0 {
		t.Fatal("training on a repetitive corpus produced an empty dictionary")
	}
	for i, s := range samples {
		comp := d.Compress(nil, s)
		got, err := d.Decompress(comp, len(s))
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if !bytes.Equal(got, s) {
			t.Fatalf("sample %d: round trip mismatch", i)
		}
	}
}

func TestCompressionRatioOnCorpus(t *testing.T) {
	samples := corpus(500, 32)
	d := Train(samples)
	var raw, comp int
	for _, s := range samples {
		raw += len(s)
		comp += len(d.Compress(nil, s))
	}
	if ratio := float64(comp) / float64(raw); ratio > 0.5 {
		t.Fatalf("corpus compressed to %.2fx, want <= 0.5x", ratio)
	}
}

func TestSerializeLoad(t *testing.T) {
	d := Train(corpus(100, 24))
	ser := d.Serialize()
	if len(ser) != d.Bytes() {
		t.Fatalf("Serialize returned %d bytes, Bytes() says %d", len(ser), d.Bytes())
	}
	d2, err := Load(ser)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded dictionary must encode identically: segments persist
	// the dictionary and decode with the loaded copy.
	src := corpus(1, 40)[0]
	if !bytes.Equal(d.Compress(nil, src), d2.Compress(nil, src)) {
		t.Fatal("loaded dictionary encodes differently")
	}
	got, err := d2.Decompress(d.Compress(nil, src), len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("cross decode: %v", err)
	}
}

func TestTrainDeterministic(t *testing.T) {
	a := Train(corpus(300, 32)).Serialize()
	b := Train(corpus(300, 32)).Serialize()
	if !bytes.Equal(a, b) {
		t.Fatal("Train is not deterministic for identical samples")
	}
}

func TestEmptyDictLiteralFallback(t *testing.T) {
	var d Dict
	src := []byte("incompressible-without-a-dictionary")
	comp := d.Compress(nil, src)
	got, err := d.Decompress(comp, len(src))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("literal fallback failed: %v", err)
	}
	// Worst-case expansion is one token byte per 128 literals.
	if max := len(src) + len(src)/maxLiteralRun + 1; len(comp) > max {
		t.Fatalf("literal encoding expanded to %d bytes (max %d)", len(comp), max)
	}
}

func TestRoundTripMixedSizes(t *testing.T) {
	d := Train(corpus(64, 48))
	for _, n := range []int{0, 1, 3, 4, 5, 26, 127, 128, 129, 300, 1024} {
		src := make([]byte, n)
		for j := range src {
			src[j] = byte('a' + (j*7)%26)
		}
		comp := d.Compress(nil, src)
		got, err := d.Decompress(comp, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("n=%d: mismatch", n)
		}
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	d := Train(corpus(100, 32))
	src := corpus(1, 32)[0]
	comp := d.Compress(nil, src)
	if _, err := d.Decompress(comp, len(src)+1); err == nil {
		t.Fatal("wrong raw length accepted")
	}
	if _, err := d.Decompress(comp[:len(comp)-1], len(src)); err == nil {
		t.Fatal("truncated record accepted")
	}
	var empty Dict
	if _, err := empty.Decompress([]byte{0x80}, 4); err == nil {
		t.Fatal("out-of-range pattern reference accepted")
	}
}

func TestLoadRejectsDefects(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"bad version":       {9, 0},
		"count overruns":    {dictVersion, 1},
		"short pattern":     {dictVersion, 1, 2, 'a', 'b'},
		"pattern truncated": {dictVersion, 1, 8, 'a', 'b'},
		"trailing bytes":    {dictVersion, 0, 'x'},
	}
	for name, b := range cases {
		if _, err := Load(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func BenchmarkCompress(b *testing.B) {
	d := Train(corpus(256, 64))
	src := corpus(1, 64)[0]
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		d.Compress(nil, src)
	}
}

func ExampleDict_Compress() {
	d := Train(corpus(100, 26))
	src := corpus(1, 26)[0]
	comp := d.Compress(nil, src)
	fmt.Println(len(comp) < len(src))
	// Output: true
}
