package seccrypto

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4493 test vectors use this key for AES-CMAC.
var rfcKey = mustHex("2b7e151628aed2a6abf7158809cf4f3c")

var rfcMsg = mustHex("6bc1bee22e409f96e93d7e117393172a" +
	"ae2d8a571e03ac9c9eb76fac45af8e51" +
	"30c81c46a35ce411e5fbc1191a0a52ef" +
	"f69f2445df4f9b17ad2b417be66c3710")

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

func newRFC(t *testing.T) *Cipher {
	t.Helper()
	c, err := New(rfcKey, rfcKey)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCMACRFC4493Vectors(t *testing.T) {
	c := newRFC(t)
	cases := []struct {
		name string
		msg  []byte
		want string
	}{
		{"len0", nil, "bb1d6929e95937287fa37d129b756746"},
		{"len16", rfcMsg[:16], "070a16b46b4d4144f79bdd9dd04a287c"},
		{"len40", rfcMsg[:40], "dfa66747de9ae63030ca32611497c827"},
		{"len64", rfcMsg[:64], "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got [16]byte
			c.MAC(&got, tc.msg)
			if hex.EncodeToString(got[:]) != tc.want {
				t.Errorf("MAC = %x, want %s", got, tc.want)
			}
		})
	}
}

func TestCMACSubkeys(t *testing.T) {
	c := newRFC(t)
	// RFC 4493 subkey generation example.
	wantK1 := "fbeed618357133667c85e08f7236a8de"
	wantK2 := "f7ddac306ae266ccf90bc11ee46d513b"
	if hex.EncodeToString(c.k1[:]) != wantK1 {
		t.Errorf("K1 = %x, want %s", c.k1, wantK1)
	}
	if hex.EncodeToString(c.k2[:]) != wantK2 {
		t.Errorf("K2 = %x, want %s", c.k2, wantK2)
	}
}

func TestMACPartsEquivalence(t *testing.T) {
	c := newRFC(t)
	check := func(msg []byte, split uint8) bool {
		var whole, parts [16]byte
		c.MAC(&whole, msg)
		cut := 0
		if len(msg) > 0 {
			cut = int(split) % (len(msg) + 1)
		}
		c.MAC(&parts, msg[:cut], msg[cut:])
		return whole == parts
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMACManyParts(t *testing.T) {
	c := newRFC(t)
	msg := rfcMsg
	var whole, parts [16]byte
	c.MAC(&whole, msg)
	// Byte-at-a-time split exercises every fill offset.
	single := make([][]byte, len(msg))
	for i := range msg {
		single[i] = msg[i : i+1]
	}
	c.MAC(&parts, single...)
	if whole != parts {
		t.Errorf("byte-wise MAC %x != whole MAC %x", parts, whole)
	}
	// Interleave empty parts.
	c.MAC(&parts, nil, msg[:7], nil, msg[7:], nil)
	if whole != parts {
		t.Errorf("MAC with empty parts %x != whole MAC %x", parts, whole)
	}
}

func TestVerifyMAC(t *testing.T) {
	c := newRFC(t)
	var mac [16]byte
	c.MAC(&mac, rfcMsg)
	if !c.VerifyMAC(mac[:], rfcMsg) {
		t.Error("VerifyMAC rejected a valid MAC")
	}
	tampered := append([]byte(nil), rfcMsg...)
	tampered[5] ^= 1
	if c.VerifyMAC(mac[:], tampered) {
		t.Error("VerifyMAC accepted a tampered message")
	}
	badMac := mac
	badMac[0] ^= 1
	if c.VerifyMAC(badMac[:], rfcMsg) {
		t.Error("VerifyMAC accepted a tampered MAC")
	}
}

func TestCTRRoundTrip(t *testing.T) {
	c := newRFC(t)
	check := func(msg []byte, value, salt uint64) bool {
		ctr := CounterBlock(value, salt)
		enc := make([]byte, len(msg))
		c.CTRCrypt(&ctr, enc, msg)
		dec := make([]byte, len(msg))
		c.CTRCrypt(&ctr, dec, enc)
		return bytes.Equal(dec, msg)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCTRCounterSeparation(t *testing.T) {
	c := newRFC(t)
	msg := []byte("sixteen byte msg")
	ctr1 := CounterBlock(1, 0)
	ctr2 := CounterBlock(2, 0)
	ctr3 := CounterBlock(1, 1)
	e1 := make([]byte, len(msg))
	e2 := make([]byte, len(msg))
	e3 := make([]byte, len(msg))
	c.CTRCrypt(&ctr1, e1, msg)
	c.CTRCrypt(&ctr2, e2, msg)
	c.CTRCrypt(&ctr3, e3, msg)
	if bytes.Equal(e1, e2) {
		t.Error("different counter values produced identical ciphertexts")
	}
	if bytes.Equal(e1, e3) {
		t.Error("different salts produced identical ciphertexts")
	}
	if bytes.Equal(e1, msg) {
		t.Error("ciphertext equals plaintext")
	}
}

func TestCTRInPlace(t *testing.T) {
	c := newRFC(t)
	msg := []byte("in-place encryption works")
	orig := append([]byte(nil), msg...)
	ctr := CounterBlock(42, 7)
	c.CTRCrypt(&ctr, msg, msg)
	if bytes.Equal(msg, orig) {
		t.Fatal("in-place encryption left plaintext unchanged")
	}
	c.CTRCrypt(&ctr, msg, msg)
	if !bytes.Equal(msg, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestNewRejectsBadKeys(t *testing.T) {
	if _, err := New([]byte("short"), rfcKey); err == nil {
		t.Error("New accepted a short encryption key")
	}
	if _, err := New(rfcKey, []byte("short")); err == nil {
		t.Error("New accepted a short MAC key")
	}
}

func TestCounterBlockLayout(t *testing.T) {
	b := CounterBlock(0x0102030405060708, 0x1112131415161718)
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1, 0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11}
	if !bytes.Equal(b[:], want) {
		t.Errorf("CounterBlock layout = %x, want %x", b, want)
	}
}
