// Package seccrypto provides the two cryptographic primitives the Aria paper
// uses inside the enclave: AES-128 counter-mode encryption
// (sgx_aes_ctr_encrypt) and AES-CMAC (sgx_rijndael128_cmac, RFC 4493).
//
// Both are real implementations on top of crypto/aes, so integrity and
// confidentiality attacks mounted in tests are genuinely detected or foiled
// rather than pattern-matched. Cycle accounting for these operations is the
// caller's responsibility (see sgx.Enclave.ChargeMAC / ChargeCTR), keeping
// the package free of simulator dependencies.
package seccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
)

// KeySize is the AES-128 key size used for both encryption and MACs.
const KeySize = 16

// MACSize is the CMAC output size.
const MACSize = 16

// CounterSize is the size of one encryption counter.
const CounterSize = 16

// Cipher bundles an encryption key and a MAC key, mirroring the two global
// session keys Aria provisions into the enclave at attestation time.
type Cipher struct {
	enc cipher.Block // encryption key schedule
	mac cipher.Block // MAC key schedule
	k1  [16]byte     // CMAC subkey for complete final blocks
	k2  [16]byte     // CMAC subkey for padded final blocks
}

// New creates a Cipher from a 16-byte encryption key and a 16-byte MAC key.
func New(encKey, macKey []byte) (*Cipher, error) {
	eb, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	mb, err := aes.NewCipher(macKey)
	if err != nil {
		return nil, err
	}
	c := &Cipher{enc: eb, mac: mb}
	c.deriveSubkeys()
	return c, nil
}

// deriveSubkeys computes the RFC 4493 subkeys K1 and K2.
func (c *Cipher) deriveSubkeys() {
	var l [16]byte
	c.mac.Encrypt(l[:], l[:])
	shiftLeft(&c.k1, &l)
	if l[0]&0x80 != 0 {
		c.k1[15] ^= 0x87
	}
	shiftLeft(&c.k2, &c.k1)
	if c.k1[0]&0x80 != 0 {
		c.k2[15] ^= 0x87
	}
}

func shiftLeft(dst, src *[16]byte) {
	var carry byte
	for i := 15; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
}

// CTRCrypt encrypts or decrypts src into dst (they may alias) using AES-CTR
// with the given 16-byte counter block. CTR mode is an involution, so the
// same call performs both directions.
func (c *Cipher) CTRCrypt(counter *[16]byte, dst, src []byte) {
	stream := cipher.NewCTR(c.enc, counter[:])
	stream.XORKeyStream(dst, src)
}

// MAC computes the AES-CMAC over the concatenation of the given parts and
// writes it to out. Accepting parts avoids materialising the concatenated
// message, which in Aria can span an entry header, counter, ciphertext, and
// address field living in different places.
func (c *Cipher) MAC(out *[16]byte, parts ...[]byte) {
	var x [16]byte // running CBC state
	var blk [16]byte
	fill := 0
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	processed := 0
	for _, p := range parts {
		for len(p) > 0 {
			n := copy(blk[fill:], p)
			fill += n
			processed += n
			p = p[n:]
			if fill == 16 && processed < total {
				xor16(&x, &blk)
				c.mac.Encrypt(x[:], x[:])
				fill = 0
			}
		}
	}
	// Final block.
	if total > 0 && fill == 16 {
		xor16(&blk, &c.k1)
		xor16(&x, &blk)
	} else {
		// Pad with 0x80 then zeros.
		blk[fill] = 0x80
		for i := fill + 1; i < 16; i++ {
			blk[i] = 0
		}
		xor16(&blk, &c.k2)
		xor16(&x, &blk)
	}
	c.mac.Encrypt(out[:], x[:])
}

// VerifyMAC recomputes the CMAC over parts and compares it with want in
// constant time. It returns true when the MAC matches.
func (c *Cipher) VerifyMAC(want []byte, parts ...[]byte) bool {
	var got [16]byte
	c.MAC(&got, parts...)
	return subtle.ConstantTimeCompare(got[:], want) == 1
}

func xor16(dst, src *[16]byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// CounterBlock builds a 16-byte CTR block from a 64-bit counter value and a
// 64-bit salt (Aria uses the counter slot index as salt so two different KV
// pairs never share a keystream even if their counter values collide).
func CounterBlock(value, salt uint64) [16]byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], value)
	binary.LittleEndian.PutUint64(b[8:], salt)
	return b
}
