package core
