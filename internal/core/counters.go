package core

import (
	"github.com/ariakv/aria/internal/merkle"
	"github.com/ariakv/aria/internal/redir"
	"github.com/ariakv/aria/internal/sgx"
)

// counterBackend abstracts where encryption counters live. Aria proper uses
// the redirection layer (counters in untrusted Merkle trees guarded by the
// Secure Cache); the "Aria w/o Cache" comparator of Figures 2/9/10/11 keeps
// every counter in a plain EPC array and relies on hardware secure paging
// when the array outgrows the EPC.
type counterBackend interface {
	Fetch() (redir.RedPtr, error)
	Free(redir.RedPtr) error
	CounterGet(redir.RedPtr) ([16]byte, error)
	CounterBump(redir.RedPtr) ([16]byte, error)
	Stats() redir.Stats
	Trees() []*merkle.Tree
}

// plainCounters is the Aria-w/o-Cache backend: a flat array of 16-byte
// counters in enclave memory. Every access is an EPC touch, so once the
// array exceeds the EPC the hardware pager swaps 4 KB pages of counters —
// hotness-aware but page-granular, exactly the behaviour the paper's
// motivation section measures.
type plainCounters struct {
	enc    *sgx.Enclave
	arenas []sgx.EPtr
	chunk  int // counters per arena
	free   []redir.RedPtr
	nextID int
	used   int
	seed   uint64
}

func newPlainCounters(enc *sgx.Enclave, initial int, seed uint64) *plainCounters {
	p := &plainCounters{enc: enc, chunk: initial, seed: seed | 1}
	p.grow()
	return p
}

func (p *plainCounters) grow() {
	base := p.enc.EAlloc(p.chunk*16, sgx.CacheLine)
	// Counters start at distinct pseudorandom values (same rationale as
	// the Merkle-tree initialisation).
	buf := p.enc.EBytesRaw(base, p.chunk*16)
	s := p.seed
	for i := 0; i+8 <= len(buf); i += 8 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v := s * 0x2545F4914F6CDD1D
		for j := 0; j < 8; j++ {
			buf[i+j] = byte(v >> (8 * j))
		}
	}
	start := len(p.arenas) * p.chunk
	p.arenas = append(p.arenas, base)
	for i := p.chunk - 1; i >= 0; i-- {
		p.free = append(p.free, redir.RedPtr(start+i))
	}
}

func (p *plainCounters) addr(r redir.RedPtr) sgx.EPtr {
	i := int(r)
	return p.arenas[i/p.chunk] + sgx.EPtr((i%p.chunk)*16)
}

func (p *plainCounters) Fetch() (redir.RedPtr, error) {
	if len(p.free) == 0 {
		p.grow()
	}
	r := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.used++
	return r, nil
}

func (p *plainCounters) Free(r redir.RedPtr) error {
	p.free = append(p.free, r)
	p.used--
	return nil
}

func (p *plainCounters) CounterGet(r redir.RedPtr) ([16]byte, error) {
	var out [16]byte
	copy(out[:], p.enc.EBytes(p.addr(r), 16))
	return out, nil
}

func (p *plainCounters) CounterBump(r redir.RedPtr) ([16]byte, error) {
	var out [16]byte
	b := p.enc.EBytes(p.addr(r), 16)
	for i := 0; i < 16; i++ {
		b[i]++
		if b[i] != 0 {
			break
		}
	}
	copy(out[:], b)
	return out, nil
}

func (p *plainCounters) Stats() redir.Stats {
	return redir.Stats{
		Trees:    0,
		Capacity: len(p.arenas) * p.chunk,
		Used:     p.used,
		EPCBytes: len(p.arenas) * p.chunk * 16,
	}
}

func (p *plainCounters) Trees() []*merkle.Tree { return nil }
