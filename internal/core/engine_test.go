package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ariakv/aria/internal/sgx"
)

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	enc := sgx.New(sgx.Config{EPCBytes: 64 << 20})
	if opts.ExpectedKeys == 0 {
		opts.ExpectedKeys = 4096
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 1 << 20
	}
	if opts.PinBudgetBytes == 0 {
		opts.PinBudgetBytes = 64 << 10
	}
	e, err := New(enc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func bothIndexes(t *testing.T, fn func(t *testing.T, e *Engine)) {
	t.Helper()
	for _, kind := range []IndexKind{HashIndex, BTreeIndex, BPTreeIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			fn(t, newEngine(t, Options{Index: kind}))
		})
	}
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%d-%d", i, i*7)) }

func TestPutGetRoundTrip(t *testing.T) {
	bothIndexes(t, func(t *testing.T, e *Engine) {
		for i := 0; i < 200; i++ {
			if err := e.Put(key(i), value(i)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		for i := 0; i < 200; i++ {
			got, err := e.Get(key(i))
			if err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
			if !bytes.Equal(got, value(i)) {
				t.Fatalf("get %d = %q, want %q", i, got, value(i))
			}
		}
		if got := e.Stats().Keys; got != 200 {
			t.Errorf("keys = %d, want 200", got)
		}
	})
}

func TestGetMissing(t *testing.T) {
	bothIndexes(t, func(t *testing.T, e *Engine) {
		if _, err := e.Get([]byte("nope")); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing get: err = %v, want ErrNotFound", err)
		}
		_ = e.Put(key(1), value(1))
		if _, err := e.Get([]byte("nope")); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing get on non-empty store: err = %v", err)
		}
	})
}

func TestUpdateSameSize(t *testing.T) {
	bothIndexes(t, func(t *testing.T, e *Engine) {
		_ = e.Put(key(1), []byte("aaaa"))
		if err := e.Put(key(1), []byte("bbbb")); err != nil {
			t.Fatal(err)
		}
		got, err := e.Get(key(1))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "bbbb" {
			t.Errorf("updated value = %q", got)
		}
		if got := e.Stats().Keys; got != 1 {
			t.Errorf("keys after update = %d, want 1", got)
		}
	})
}

func TestUpdateGrowingValue(t *testing.T) {
	bothIndexes(t, func(t *testing.T, e *Engine) {
		// Surround the key with neighbours so relocation must fix
		// chain/tree links.
		for i := 0; i < 50; i++ {
			_ = e.Put(key(i), value(i))
		}
		big := bytes.Repeat([]byte("x"), 2000)
		if err := e.Put(key(25), big); err != nil {
			t.Fatal(err)
		}
		got, err := e.Get(key(25))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, big) {
			t.Error("grown value mismatch")
		}
		// Neighbours must be unaffected.
		for i := 0; i < 50; i++ {
			if i == 25 {
				continue
			}
			if got, err := e.Get(key(i)); err != nil || !bytes.Equal(got, value(i)) {
				t.Fatalf("neighbour %d damaged: %v", i, err)
			}
		}
		if err := e.VerifyIntegrity(); err != nil {
			t.Fatalf("integrity after relocation: %v", err)
		}
	})
}

func TestDelete(t *testing.T) {
	bothIndexes(t, func(t *testing.T, e *Engine) {
		for i := 0; i < 100; i++ {
			_ = e.Put(key(i), value(i))
		}
		for i := 0; i < 100; i += 2 {
			if err := e.Delete(key(i)); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		}
		for i := 0; i < 100; i++ {
			got, err := e.Get(key(i))
			if i%2 == 0 {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("deleted key %d: err = %v", i, err)
				}
			} else if err != nil || !bytes.Equal(got, value(i)) {
				t.Fatalf("surviving key %d: %v", i, err)
			}
		}
		if got := e.Stats().Keys; got != 50 {
			t.Errorf("keys after deletes = %d, want 50", got)
		}
		if err := e.Delete(key(0)); !errors.Is(err, ErrNotFound) {
			t.Errorf("double delete: err = %v, want ErrNotFound", err)
		}
		if err := e.VerifyIntegrity(); err != nil {
			t.Fatalf("integrity after deletes: %v", err)
		}
	})
}

func TestInputValidation(t *testing.T) {
	bothIndexes(t, func(t *testing.T, e *Engine) {
		if err := e.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
			t.Errorf("empty key: %v", err)
		}
		if err := e.Put(bytes.Repeat([]byte("k"), 10000), []byte("v")); !errors.Is(err, ErrTooLarge) {
			t.Errorf("huge key: %v", err)
		}
		if err := e.Put([]byte("k"), bytes.Repeat([]byte("v"), 100000)); !errors.Is(err, ErrTooLarge) {
			t.Errorf("huge value: %v", err)
		}
	})
}

func TestEmptyValue(t *testing.T) {
	bothIndexes(t, func(t *testing.T, e *Engine) {
		if err := e.Put(key(1), nil); err != nil {
			t.Fatal(err)
		}
		got, err := e.Get(key(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("empty value round trip = %q", got)
		}
	})
}

func TestRandomOpsMirror(t *testing.T) {
	bothIndexes(t, func(t *testing.T, e *Engine) {
		mirror := make(map[string][]byte)
		rng := rand.New(rand.NewSource(7))
		const space = 400
		for op := 0; op < 6000; op++ {
			k := key(rng.Intn(space))
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // put
				v := make([]byte, rng.Intn(100)+1)
				rng.Read(v)
				if err := e.Put(k, v); err != nil {
					t.Fatalf("op %d put: %v", op, err)
				}
				mirror[string(k)] = v
			case 4: // delete
				err := e.Delete(k)
				_, exists := mirror[string(k)]
				if exists && err != nil {
					t.Fatalf("op %d delete existing: %v", op, err)
				}
				if !exists && !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d delete missing: %v", op, err)
				}
				delete(mirror, string(k))
			default: // get
				got, err := e.Get(k)
				want, exists := mirror[string(k)]
				if exists {
					if err != nil || !bytes.Equal(got, want) {
						t.Fatalf("op %d get: %v (got %q want %q)", op, err, got, want)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d get missing: %v", op, err)
				}
			}
		}
		if got := e.Stats().Keys; got != len(mirror) {
			t.Errorf("keys = %d, mirror = %d", got, len(mirror))
		}
		if err := e.VerifyIntegrity(); err != nil {
			t.Fatalf("integrity after churn: %v", err)
		}
		// Every mirrored key must still be present and correct.
		for k, want := range mirror {
			got, err := e.Get([]byte(k))
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("final get %q: %v", k, err)
			}
		}
	})
}

func TestCounterAreaGrowth(t *testing.T) {
	for _, kind := range []IndexKind{HashIndex, BTreeIndex, BPTreeIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			// Size the counter area well below demand: the hash
			// index uses one counter per key, the B-tree one per
			// node, so a tiny initial area forces MT expansion in
			// both.
			e := newEngine(t, Options{Index: kind, ExpectedKeys: 64})
			testGrowth(t, e)
		})
	}
}

func testGrowth(t *testing.T, e *Engine) {
	{
		n := 9000
		for i := 0; i < n; i++ {
			if err := e.Put(key(i), value(i)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		st := e.Stats()
		if st.Redir.Trees < 2 {
			t.Fatalf("expected counter-area growth, trees = %d", st.Redir.Trees)
		}
		for i := 0; i < n; i += 97 {
			if got, err := e.Get(key(i)); err != nil || !bytes.Equal(got, value(i)) {
				t.Fatalf("get %d after growth: %v", i, err)
			}
		}
		if err := e.VerifyIntegrity(); err != nil {
			t.Fatalf("integrity after growth: %v", err)
		}
	}
}

func TestStatsAccrue(t *testing.T) {
	bothIndexes(t, func(t *testing.T, e *Engine) {
		_ = e.Put(key(1), value(1))
		_, _ = e.Get(key(1))
		_ = e.Delete(key(1))
		st := e.Stats()
		if st.Puts != 1 || st.Gets != 1 || st.Deletes != 1 {
			t.Errorf("op counts = %+v", st)
		}
		if st.SGX.MACs == 0 || st.SGX.CTROps == 0 {
			t.Error("no crypto charged")
		}
	})
}
