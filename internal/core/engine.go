// Package core implements the Aria engine (paper §V): the Put/Get/Delete
// pipeline that combines the user-space heap allocator, the redirection
// layer, the Secure Cache, and an index structure into a secure in-memory
// key-value store.
//
// The engine follows the paper's decoupled design: security metadata
// (counters in a flat Merkle tree, guarded by the Secure Cache) is built on
// KV pairs only, independent of the index. Two index schemes are provided —
// a chained hash table with key hints (Aria-H, hash.go) and a B-tree with
// encrypted nodes (Aria-T, btree.go) — running on the identical metadata
// machinery, which is the paper's portability claim.
package core

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/ariakv/aria/internal/alloc"
	"github.com/ariakv/aria/internal/redir"
	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/securecache"
	"github.com/ariakv/aria/internal/sgx"
)

// IndexKind selects the index structure.
type IndexKind int

const (
	// HashIndex is the chained hash table with key hints (Aria-H).
	HashIndex IndexKind = iota
	// BTreeIndex is the B-tree with encrypted nodes (Aria-T).
	BTreeIndex
	// BPTreeIndex is the B+-tree with router-only interior nodes and
	// verified range scans (the paper's §VII future-work index).
	BPTreeIndex
)

func (k IndexKind) String() string {
	switch k {
	case BTreeIndex:
		return "btree"
	case BPTreeIndex:
		return "bptree"
	default:
		return "hash"
	}
}

// Errors returned by the engine. ErrIntegrity wraps every detected attack.
var (
	ErrNotFound  = errors.New("aria: key not found")
	ErrIntegrity = securecache.ErrIntegrity
	ErrTooLarge  = errors.New("aria: key or value exceeds configured maximum")
	ErrEmptyKey  = errors.New("aria: empty key")
	ErrNoScan    = errors.New("aria: index does not support range scans")
)

// Options configures an engine. The zero value is completed by sensible
// defaults in New.
type Options struct {
	// Index selects Aria-H or Aria-T.
	Index IndexKind
	// ExpectedKeys sizes the counter area, hash bucket array, and
	// metadata regions.
	ExpectedKeys int
	// BucketLoad is the target chain length for the hash index
	// (buckets = ExpectedKeys / BucketLoad). Default 4.
	BucketLoad int
	// Arity is the Merkle tree branch factor (default 8, swept in
	// Figure 15).
	Arity int
	// CacheBytes is the Secure Cache EPC budget. Negative disables the
	// cache entirely (pure write-through verification).
	CacheBytes int
	// PinBudgetBytes is the EPC budget for initial level pinning.
	PinBudgetBytes int
	// Policy is the cache replacement policy.
	Policy securecache.Policy
	// DisablePinning turns level pinning off (ablation arms).
	DisablePinning bool
	// StopSwap enables the hit-ratio stop-swap mode.
	StopSwap bool
	// PlainCounters selects the "Aria w/o Cache" design: all counters in
	// a flat EPC array protected by hardware secure paging, no Merkle
	// tree and no Secure Cache (Figures 2, 9, 10, 11).
	PlainCounters bool
	// DisableCleanDiscard forces evicted clean Secure Cache nodes to be
	// written back (EWB-style hardware behaviour) instead of discarded
	// (§IV-C ablation).
	DisableCleanDiscard bool
	// OcallAlloc makes every untrusted allocation exit the enclave
	// (the AriaBase arm of Figure 12) instead of using the user-space
	// heap allocator.
	OcallAlloc bool
	// MaxKeySize and MaxValueSize bound entry sizes (defaults 256/4096).
	MaxKeySize   int
	MaxValueSize int
	// BTreeDegree is the minimum degree t of the B-tree (default 8:
	// nodes hold 7..15 keys).
	BTreeDegree int
	// Seed makes counter initialisation deterministic.
	Seed uint64
	// EncKey and MACKey are the 16-byte session keys (random defaults).
	EncKey []byte
	MACKey []byte
}

func (o *Options) fillDefaults() {
	if o.ExpectedKeys <= 0 {
		o.ExpectedKeys = 1 << 20
	}
	if o.BucketLoad <= 0 {
		o.BucketLoad = 4
	}
	if o.Arity == 0 {
		o.Arity = 8
	}
	if o.MaxKeySize <= 0 {
		o.MaxKeySize = 256
	}
	if o.MaxValueSize <= 0 {
		o.MaxValueSize = 4096
	}
	if o.BTreeDegree <= 1 {
		o.BTreeDegree = 8
	}
	if o.EncKey == nil {
		o.EncKey = []byte("aria-enc-key-000")
	}
	if o.MACKey == nil {
		o.MACKey = []byte("aria-mac-key-000")
	}
}

// Stats aggregates the engine's own counters with its components'.
type Stats struct {
	Gets    uint64
	Puts    uint64
	Deletes uint64
	Keys    int

	Cache securecache.Stats
	Redir redir.Stats
	Heap  alloc.Stats
	SGX   sgx.Stats
}

type index interface {
	get(key []byte) ([]byte, error)
	put(key, value []byte) error
	delete(key []byte) error
	keys() int
	// verifyAll re-reads every entry through the full verification path;
	// used by audits and tests.
	verifyAll() error
}

// scanner is implemented by ordered indexes that support range scans.
type scanner interface {
	scan(start, end []byte, fn func(k, v []byte) bool) error
}

// Engine is one Aria store instance inside one enclave.
type Engine struct {
	enc   *sgx.Enclave
	cip   *seccrypto.Cipher
	heap  *alloc.Heap
	cache *securecache.Cache
	ctrs  counterBackend
	idx   index
	opts  Options

	// scratch is an enclave staging buffer for entry/node
	// seal-and-verify work.
	scratch  sgx.EPtr
	scratchN int

	gets, puts, dels uint64
}

// New builds an engine inside the given enclave.
func New(enc *sgx.Enclave, opts Options) (*Engine, error) {
	opts.fillDefaults()
	cip, err := seccrypto.New(opts.EncKey, opts.MACKey)
	if err != nil {
		return nil, fmt.Errorf("core: bad keys: %w", err)
	}
	e := &Engine{
		enc:  enc,
		cip:  cip,
		heap: alloc.New(enc, opts.OcallAlloc),
		opts: opts,
	}
	if opts.PlainCounters {
		// Aria w/o Cache: every counter in a flat EPC array, protected
		// by hardware secure paging alone. No Merkle tree, no Secure
		// Cache.
		e.ctrs = newPlainCounters(enc, opts.ExpectedKeys, opts.Seed+1)
	} else {
		cacheBytes := opts.CacheBytes
		if cacheBytes < 0 {
			cacheBytes = 0
		}
		pin := opts.PinBudgetBytes
		if opts.DisablePinning {
			pin = 0
		}
		cache, err := securecache.New(enc, opts.Arity*seccrypto.CounterSize, securecache.Config{
			CapacityBytes:   cacheBytes,
			Policy:          opts.Policy,
			PinBudgetBytes:  pin,
			StopSwapEnabled: opts.StopSwap,
			CleanDiscard:    !opts.DisableCleanDiscard,
		})
		if err != nil {
			return nil, err
		}
		e.cache = cache
		rl, err := redir.New(enc, cip, cache, redir.Config{
			InitialCounters: opts.ExpectedKeys,
			Arity:           opts.Arity,
			GrowthFactor:    1.0,
			InitSeed:        opts.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		e.ctrs = rl
	}
	// The scratch buffer is split in half: opens stage into the low half,
	// seals build into the high half, so a read-modify-write can hold a
	// decoded entry/node while assembling its replacement.
	e.scratchN = e.maxEntrySize()
	if n := e.maxNodeSize(); n > e.scratchN {
		e.scratchN = n
	}
	if n := e.maxBPNodeSize(); n > e.scratchN {
		e.scratchN = n
	}
	e.scratchN *= 2
	e.scratch = enc.EAlloc(e.scratchN, sgx.CacheLine)
	switch opts.Index {
	case HashIndex:
		e.idx, err = newHashIndex(e)
	case BTreeIndex:
		e.idx, err = newBTreeIndex(e)
	case BPTreeIndex:
		e.idx, err = newBPTreeIndex(e)
	default:
		err = fmt.Errorf("core: unknown index kind %d", opts.Index)
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Get returns a copy of the value stored under key.
func (e *Engine) Get(key []byte) ([]byte, error) {
	if err := e.checkKey(key); err != nil {
		return nil, err
	}
	e.gets++
	return e.idx.get(key)
}

// Put inserts or updates a KV pair.
func (e *Engine) Put(key, value []byte) error {
	if err := e.checkKey(key); err != nil {
		return err
	}
	if len(value) > e.opts.MaxValueSize {
		return ErrTooLarge
	}
	e.puts++
	return e.idx.put(key, value)
}

// Scan visits every pair with start <= key < end (nil end = unbounded) in
// key order, stopping early when fn returns false. Only ordered indexes
// (BPTreeIndex) support it. The key and value slices passed to fn are only
// valid during the call.
func (e *Engine) Scan(start, end []byte, fn func(k, v []byte) bool) error {
	sc, ok := e.idx.(scanner)
	if !ok {
		return ErrNoScan
	}
	return sc.scan(start, end, fn)
}

// Delete removes key. It returns ErrNotFound when the key is absent.
func (e *Engine) Delete(key []byte) error {
	if err := e.checkKey(key); err != nil {
		return err
	}
	e.dels++
	return e.idx.delete(key)
}

func (e *Engine) checkKey(key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > e.opts.MaxKeySize {
		return ErrTooLarge
	}
	return nil
}

// Flush forces all dirty Secure Cache state out to untrusted memory so the
// Merkle trees are externally consistent (used before offline audits).
func (e *Engine) Flush() error {
	if e.cache == nil {
		return nil
	}
	return e.cache.Flush()
}

// VerifyIntegrity audits the whole store offline: it flushes the cache,
// re-verifies every Merkle tree, and re-reads every entry through the full
// verification path. Any detected tampering is returned.
func (e *Engine) VerifyIntegrity() error {
	if err := e.Flush(); err != nil {
		return err
	}
	for _, t := range e.ctrs.Trees() {
		if err := t.VerifyAll(); err != nil {
			return err
		}
	}
	return e.idx.verifyAll()
}

// Stats returns a snapshot across all components.
func (e *Engine) Stats() Stats {
	st := Stats{
		Gets:    e.gets,
		Puts:    e.puts,
		Deletes: e.dels,
		Keys:    e.idx.keys(),
		Redir:   e.ctrs.Stats(),
		Heap:    e.heap.Stats(),
		SGX:     e.enc.Stats(),
	}
	if e.cache != nil {
		st.Cache = e.cache.Stats()
	}
	return st
}

// Enclave exposes the underlying enclave (throughput accounting).
func (e *Engine) Enclave() *sgx.Enclave { return e.enc }

// Cache exposes the Secure Cache (experiments and tests).
func (e *Engine) Cache() *securecache.Cache { return e.cache }

// equalInEnclave compares two byte strings inside the enclave.
func equalInEnclave(a, b []byte) bool { return bytes.Equal(a, b) }
