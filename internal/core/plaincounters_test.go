package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ariakv/aria/internal/sgx"
)

// Tests for the "Aria w/o Cache" configuration: same engine, counters in a
// plain EPC array guarded by hardware paging.

func TestPlainCountersRoundTrip(t *testing.T) {
	for _, kind := range []IndexKind{HashIndex, BTreeIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newEngine(t, Options{Index: kind, PlainCounters: true})
			for i := 0; i < 300; i++ {
				if err := e.Put(key(i), value(i)); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			for i := 0; i < 300; i++ {
				got, err := e.Get(key(i))
				if err != nil || !bytes.Equal(got, value(i)) {
					t.Fatalf("get %d: %v", i, err)
				}
			}
			for i := 0; i < 300; i += 3 {
				if err := e.Delete(key(i)); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
			}
			if err := e.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPlainCountersTamperDetected(t *testing.T) {
	e := newEngine(t, Options{Index: HashIndex, PlainCounters: true})
	_ = e.Put(key(1), value(1))
	block, _ := findEntryBlock(t, e, key(1))
	e.enc.UBytesRaw(block+entOffKV, 1)[0] ^= 1
	if _, err := e.Get(key(1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tamper with plain counters: err = %v, want ErrIntegrity", err)
	}
}

func TestPlainCountersPageWhenBeyondEPC(t *testing.T) {
	// A tiny EPC forces the counter array to page: the defining cost of
	// Aria w/o Cache at large keyspaces (Figure 2's crossover).
	enc := sgx.New(sgx.Config{EPCBytes: 1 << 20})
	e, err := New(enc, Options{
		Index:         HashIndex,
		PlainCounters: true,
		ExpectedKeys:  1 << 16, // 64K counters = 1 MB = whole EPC
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<16; i++ {
		if err := e.Put(key(i), value(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	enc.ResetStats()
	enc.SetMeasuring(true)
	for i := 0; i < 4096; i++ {
		if _, err := e.Get(key(i * 13 % (1 << 16))); err != nil {
			t.Fatal(err)
		}
	}
	if got := enc.Stats().PageSwaps; got == 0 {
		t.Error("no secure paging despite counter array exceeding EPC")
	}
}

func TestPlainCountersGrowth(t *testing.T) {
	e := newEngine(t, Options{Index: HashIndex, PlainCounters: true, ExpectedKeys: 64})
	for i := 0; i < 500; i++ {
		if err := e.Put(key(i), value(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if got := e.Stats().Redir.Capacity; got < 500 {
		t.Errorf("counter capacity %d did not grow past 500", got)
	}
}
