package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"github.com/ariakv/aria/internal/redir"
	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/sgx"
)

// bptreeIndex implements the B+-tree index the paper leaves as future work
// (§VII "Supporting for B+-tree-based Index"): interior nodes hold router
// keys only, all KV pairs live in leaves, and the store supports verified
// range scans.
//
// Protection matches Aria-T: every node (leaf or interior) is an encrypted,
// MAC-protected item with its own counter in the Merkle tree, and the MAC
// covers the node's untrusted block address, so the host can neither rewire
// nor splice nodes.
//
// Scans walk leaves by repeated root descent (O(log n) per leaf) rather
// than through sibling pointers. Leaves relocate whenever a reseal outgrows
// their heap block, and a physical next-leaf pointer would dangle across
// parents on every such move; descending again through MAC-verified
// interior nodes sidesteps the whole class of chain-splicing attacks and
// repair bookkeeping at a modest logarithmic cost.
//
// Block layout is identical to Aria-T nodes (tnOff* constants); only the
// payload differs:
//
//	leaf:     flags(1)=1 nkeys(2) { klen(2) vlen(2) key value }*
//	interior: flags(1)=0 nkeys(2) { klen(2) key }*  children (nkeys+1)*8
type bptreeIndex struct {
	e      *Engine
	t      int // minimum degree: leaves hold t-1..2t-1 pairs
	root   sgx.UPtr
	height int
	live   int
}

type bpnode struct {
	block    sgx.UPtr
	redptr   redir.RedPtr
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaves only
	children []sgx.UPtr
	// dirtyShape marks sibling borrow/merge changes that require reseal.
	dirtyShape bool
}

func newBPTreeIndex(e *Engine) (*bptreeIndex, error) {
	return &bptreeIndex{e: e, t: e.opts.BTreeDegree}, nil
}

func (bp *bptreeIndex) maxKeys() int { return 2*bp.t - 1 }

// maxBPNodeSize bounds the sealed size of any legal B+-tree node.
func (e *Engine) maxBPNodeSize() int {
	t := e.opts.BTreeDegree
	if t <= 1 {
		t = 8
	}
	maxKeys := 2*t - 1
	pay := 3 + maxKeys*(4+e.opts.MaxKeySize+e.opts.MaxValueSize) + (maxKeys+1)*8
	return tnOverhead + pay
}

// openBPNode verifies and decrypts the node at block.
func (bp *bptreeIndex) openBPNode(block sgx.UPtr) (*bpnode, error) {
	e := bp.e
	if !e.enc.UValid(block, tnOverhead) {
		return nil, fmt.Errorf("%w: node pointer %#x out of range", ErrIntegrity, block)
	}
	hdr := e.enc.UBytes(block, tnOffPay)
	paylen := int(binary.LittleEndian.Uint32(hdr[tnOffPayLen:]))
	if paylen <= 0 || tnOverhead+paylen > e.scratchN/2 {
		return nil, fmt.Errorf("%w: node at %#x has implausible payload length %d", ErrIntegrity, block, paylen)
	}
	total := tnOverhead + paylen
	if !e.enc.UValid(block, total) {
		return nil, fmt.Errorf("%w: node at %#x extends past the arena", ErrIntegrity, block)
	}
	e.enc.CopyIn(e.scratch, block, total)
	buf := e.enc.EBytesRaw(e.scratch, total)
	rp := redir.RedPtr(binary.LittleEndian.Uint64(buf[tnOffRedPtr:]))
	ctr, err := e.ctrs.CounterGet(rp)
	if err != nil {
		return nil, err
	}
	var ad [8]byte
	binary.LittleEndian.PutUint64(ad[:], uint64(block))
	macOff := tnOffPay + paylen
	e.enc.ChargeMAC(macOff + 8 + 16)
	if !e.cip.VerifyMAC(buf[macOff:macOff+seccrypto.MACSize], buf[:macOff], ad[:], ctr[:]) {
		return nil, fmt.Errorf("%w: b+tree node at %#x (tampered, replayed, or relocated)", ErrIntegrity, block)
	}
	e.enc.ChargeCTR(paylen)
	e.cip.CTRCrypt(&ctr, buf[tnOffPay:macOff], buf[tnOffPay:macOff])

	pay := make([]byte, paylen)
	copy(pay, buf[tnOffPay:macOff])
	n := &bpnode{block: block, redptr: rp, leaf: pay[0]&1 != 0}
	nkeys := int(binary.LittleEndian.Uint16(pay[1:]))
	off := 3
	bad := func() (*bpnode, error) {
		return nil, fmt.Errorf("%w: node at %#x truncated", ErrIntegrity, block)
	}
	if n.leaf {
		n.keys = make([][]byte, nkeys)
		n.vals = make([][]byte, nkeys)
		for i := 0; i < nkeys; i++ {
			if off+4 > paylen {
				return bad()
			}
			kl := int(binary.LittleEndian.Uint16(pay[off:]))
			vl := int(binary.LittleEndian.Uint16(pay[off+2:]))
			off += 4
			if off+kl+vl > paylen {
				return bad()
			}
			n.keys[i] = pay[off : off+kl]
			n.vals[i] = pay[off+kl : off+kl+vl]
			off += kl + vl
		}
		return n, nil
	}
	n.keys = make([][]byte, nkeys)
	for i := 0; i < nkeys; i++ {
		if off+2 > paylen {
			return bad()
		}
		kl := int(binary.LittleEndian.Uint16(pay[off:]))
		off += 2
		if off+kl > paylen {
			return bad()
		}
		n.keys[i] = pay[off : off+kl]
		off += kl
	}
	n.children = make([]sgx.UPtr, nkeys+1)
	for i := range n.children {
		if off+8 > paylen {
			return bad()
		}
		n.children[i] = sgx.UPtr(binary.LittleEndian.Uint64(pay[off:]))
		off += 8
	}
	return n, nil
}

// sealBPNode encodes, encrypts, MACs, and writes n, relocating if needed.
func (bp *bptreeIndex) sealBPNode(n *bpnode) (sgx.UPtr, error) {
	e := bp.e
	paylen := 3
	if n.leaf {
		for i := range n.keys {
			paylen += 4 + len(n.keys[i]) + len(n.vals[i])
		}
	} else {
		for i := range n.keys {
			paylen += 2 + len(n.keys[i])
		}
		paylen += len(n.children) * 8
	}
	total := tnOverhead + paylen

	if n.block == sgx.NilU {
		rp, err := e.ctrs.Fetch()
		if err != nil {
			return sgx.NilU, err
		}
		n.redptr = rp
		b, err := e.heap.Alloc(total)
		if err != nil {
			return sgx.NilU, err
		}
		n.block = b
	} else if e.heap.BlockSize(n.block) < total {
		if err := e.heap.Free(n.block); err != nil {
			return sgx.NilU, err
		}
		b, err := e.heap.Alloc(total)
		if err != nil {
			return sgx.NilU, err
		}
		n.block = b
	}

	ctr, err := e.ctrs.CounterBump(n.redptr)
	if err != nil {
		return sgx.NilU, err
	}
	half := e.scratchN / 2
	buf := e.enc.EBytesRaw(e.scratch+sgx.EPtr(half), total)
	e.enc.ETouch(e.scratch+sgx.EPtr(half), total)
	binary.LittleEndian.PutUint64(buf[tnOffRedPtr:], uint64(n.redptr))
	binary.LittleEndian.PutUint32(buf[tnOffPayLen:], uint32(paylen))
	pay := buf[tnOffPay : tnOffPay+paylen]
	if n.leaf {
		pay[0] = 1
	} else {
		pay[0] = 0
	}
	binary.LittleEndian.PutUint16(pay[1:], uint16(len(n.keys)))
	off := 3
	if n.leaf {
		for i := range n.keys {
			binary.LittleEndian.PutUint16(pay[off:], uint16(len(n.keys[i])))
			binary.LittleEndian.PutUint16(pay[off+2:], uint16(len(n.vals[i])))
			off += 4
			copy(pay[off:], n.keys[i])
			copy(pay[off+len(n.keys[i]):], n.vals[i])
			off += len(n.keys[i]) + len(n.vals[i])
		}
	} else {
		for i := range n.keys {
			binary.LittleEndian.PutUint16(pay[off:], uint16(len(n.keys[i])))
			off += 2
			copy(pay[off:], n.keys[i])
			off += len(n.keys[i])
		}
		for _, c := range n.children {
			binary.LittleEndian.PutUint64(pay[off:], uint64(c))
			off += 8
		}
	}
	e.enc.ChargeCTR(paylen)
	e.cip.CTRCrypt(&ctr, pay, pay)
	var ad [8]byte
	binary.LittleEndian.PutUint64(ad[:], uint64(n.block))
	macOff := tnOffPay + paylen
	var mac [16]byte
	e.enc.ChargeMAC(macOff + 8 + 16)
	e.cip.MAC(&mac, buf[:macOff], ad[:], ctr[:])
	copy(buf[macOff:], mac[:])
	e.enc.CopyOut(n.block, e.scratch+sgx.EPtr(half), total)
	return n.block, nil
}

func (bp *bptreeIndex) freeBPNode(n *bpnode) error {
	if err := bp.e.heap.Free(n.block); err != nil {
		return err
	}
	return bp.e.ctrs.Free(n.redptr)
}

// routeChild returns the child slot to descend for key: interior keys are
// separators with child[i] covering keys < keys[i] and child[i+1] covering
// keys >= keys[i].
func routeChild(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (bp *bptreeIndex) get(key []byte) ([]byte, error) {
	if bp.root == sgx.NilU {
		return nil, ErrNotFound
	}
	leaf, _, err := bp.findLeaf(key)
	if err != nil {
		return nil, err
	}
	pos, found := search(leaf.keys, key)
	if !found {
		return nil, ErrNotFound
	}
	out := make([]byte, len(leaf.vals[pos]))
	copy(out, leaf.vals[pos])
	return out, nil
}

// findLeaf descends to the leaf responsible for key, verifying every node.
// It also returns the leaf's upper separator bound — the smallest router key
// greater than the leaf's range, or nil on the rightmost path — which scans
// use to hop to the next leaf without sibling pointers.
func (bp *bptreeIndex) findLeaf(key []byte) (*bpnode, []byte, error) {
	cur := bp.root
	depth := 0
	var upper []byte
	for {
		n, err := bp.openBPNode(cur)
		if err != nil {
			return nil, nil, err
		}
		depth++
		if n.leaf {
			if depth != bp.height {
				return nil, nil, fmt.Errorf("%w: traversal depth %d != trusted height %d", ErrIntegrity, depth, bp.height)
			}
			return n, upper, nil
		}
		slot := routeChild(n.keys, key)
		if slot < len(n.keys) {
			upper = cloneBytes(n.keys[slot])
		}
		cur = n.children[slot]
	}
}

func (bp *bptreeIndex) put(key, value []byte) error {
	if bp.root == sgx.NilU {
		n := &bpnode{leaf: true, keys: [][]byte{cloneBytes(key)}, vals: [][]byte{cloneBytes(value)}}
		b, err := bp.sealBPNode(n)
		if err != nil {
			return err
		}
		bp.root = b
		bp.height = 1
		bp.live = 1
		return nil
	}
	nb, up, existed, err := bp.insertRec(bp.root, key, value)
	if err != nil {
		return err
	}
	bp.root = nb
	if up != nil {
		root := &bpnode{
			leaf:     false,
			keys:     [][]byte{up.key},
			children: []sgx.UPtr{bp.root, up.right},
		}
		b, err := bp.sealBPNode(root)
		if err != nil {
			return err
		}
		bp.root = b
		bp.height++
	}
	if !existed {
		bp.live++
	}
	return nil
}

// bpSplit carries a separator promoted to the parent during insertion.
type bpSplit struct {
	key   []byte
	right sgx.UPtr
}

func (bp *bptreeIndex) insertRec(block sgx.UPtr, key, value []byte) (sgx.UPtr, *bpSplit, bool, error) {
	n, err := bp.openBPNode(block)
	if err != nil {
		return block, nil, false, err
	}
	if n.leaf {
		pos, found := search(n.keys, key)
		if found {
			n.vals[pos] = value
			nb, err := bp.sealBPNode(n)
			return nb, nil, true, err
		}
		n.keys = insertAt(n.keys, pos, cloneBytes(key))
		n.vals = insertAt(n.vals, pos, cloneBytes(value))
		if len(n.keys) <= bp.maxKeys() {
			nb, err := bp.sealBPNode(n)
			return nb, nil, false, err
		}
		// Leaf split: the right sibling's first key is COPIED up (B+
		// semantics); all pairs stay in leaves.
		mid := len(n.keys) / 2
		right := &bpnode{leaf: true}
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		rb, err := bp.sealBPNode(right)
		if err != nil {
			return block, nil, false, err
		}
		nb, err := bp.sealBPNode(n)
		if err != nil {
			return block, nil, false, err
		}
		return nb, &bpSplit{key: cloneBytes(right.keys[0]), right: rb}, false, nil
	}
	slot := routeChild(n.keys, key)
	childBlock := n.children[slot]
	ncb, up, existed, err := bp.insertRec(childBlock, key, value)
	if err != nil {
		return block, nil, false, err
	}
	if ncb == childBlock && up == nil {
		return block, nil, existed, nil
	}
	n.children[slot] = ncb
	if up != nil {
		n.keys = insertAt(n.keys, slot, up.key)
		n.children = insertPtrAt(n.children, slot+1, up.right)
	}
	if len(n.keys) <= bp.maxKeys() {
		nb, err := bp.sealBPNode(n)
		return nb, nil, existed, err
	}
	// Interior split: the median separator MOVES up (not copied).
	mid := len(n.keys) / 2
	upKey := n.keys[mid]
	right := &bpnode{leaf: false}
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	rb, err := bp.sealBPNode(right)
	if err != nil {
		return block, nil, false, err
	}
	nb, err := bp.sealBPNode(n)
	if err != nil {
		return block, nil, false, err
	}
	return nb, &bpSplit{key: cloneBytes(upKey), right: rb}, existed, nil
}

func (bp *bptreeIndex) delete(key []byte) error {
	if bp.root == sgx.NilU {
		return ErrNotFound
	}
	nb, deleted, err := bp.deleteRec(bp.root, key)
	if err != nil {
		return err
	}
	bp.root = nb
	if !deleted {
		return ErrNotFound
	}
	bp.live--
	n, err := bp.openBPNode(bp.root)
	if err != nil {
		return err
	}
	if n.leaf && len(n.keys) == 0 {
		if err := bp.freeBPNode(n); err != nil {
			return err
		}
		bp.root = sgx.NilU
		bp.height = 0
	} else if !n.leaf && len(n.keys) == 0 {
		child := n.children[0]
		if err := bp.freeBPNode(n); err != nil {
			return err
		}
		bp.root = child
		bp.height--
	}
	return nil
}

// deleteRec removes key from the subtree, preemptively refilling the child
// it descends into (CLRS style adapted to B+ semantics: separators are
// router copies, so deleting a key never removes an interior entry except
// through merges).
func (bp *bptreeIndex) deleteRec(block sgx.UPtr, key []byte) (sgx.UPtr, bool, error) {
	n, err := bp.openBPNode(block)
	if err != nil {
		return block, false, err
	}
	if n.leaf {
		pos, found := search(n.keys, key)
		if !found {
			return block, false, nil
		}
		n.keys = removeAt(n.keys, pos)
		n.vals = removeAt(n.vals, pos)
		nb, err := bp.sealBPNode(n)
		return nb, true, err
	}
	slot := routeChild(n.keys, key)
	slot, err = bp.ensureChildFull(n, slot)
	if err != nil {
		return block, false, err
	}
	oldChild := n.children[slot]
	ncb, deleted, err := bp.deleteRec(oldChild, key)
	if err != nil {
		return block, false, err
	}
	if ncb == oldChild && !n.dirtyShape {
		return block, deleted, nil
	}
	n.children[slot] = ncb
	nb, err := bp.sealBPNode(n)
	return nb, deleted, err
}

// ensureChildFull guarantees n.children[pos] holds at least t entries,
// borrowing from siblings (updating separators) or merging. Returns the
// possibly shifted slot.
func (bp *bptreeIndex) ensureChildFull(n *bpnode, pos int) (int, error) {
	child, err := bp.openBPNode(n.children[pos])
	if err != nil {
		return pos, err
	}
	if len(child.keys) >= bp.t {
		return pos, nil
	}
	n.dirtyShape = true
	if pos > 0 {
		left, err := bp.openBPNode(n.children[pos-1])
		if err != nil {
			return pos, err
		}
		if len(left.keys) >= bp.t {
			// Rotate right through the separator.
			if child.leaf {
				li := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, left.keys[li])
				child.vals = insertAt(child.vals, 0, left.vals[li])
				left.keys = left.keys[:li]
				left.vals = left.vals[:li]
				n.keys[pos-1] = cloneBytes(child.keys[0])
			} else {
				child.keys = insertAt(child.keys, 0, n.keys[pos-1])
				li := len(left.keys) - 1
				n.keys[pos-1] = left.keys[li]
				left.keys = left.keys[:li]
				child.children = insertPtrAt(child.children, 0, left.children[len(left.children)-1])
				left.children = left.children[:len(left.children)-1]
			}
			if n.children[pos-1], err = bp.sealBPNode(left); err != nil {
				return pos, err
			}
			if n.children[pos], err = bp.sealBPNode(child); err != nil {
				return pos, err
			}
			return pos, nil
		}
	}
	if pos < len(n.children)-1 {
		right, err := bp.openBPNode(n.children[pos+1])
		if err != nil {
			return pos, err
		}
		if len(right.keys) >= bp.t {
			if child.leaf {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = removeAt(right.keys, 0)
				right.vals = removeAt(right.vals, 0)
				n.keys[pos] = cloneBytes(right.keys[0])
			} else {
				child.keys = append(child.keys, n.keys[pos])
				n.keys[pos] = right.keys[0]
				right.keys = removeAt(right.keys, 0)
				child.children = append(child.children, right.children[0])
				right.children = removePtrAt(right.children, 0)
			}
			if n.children[pos+1], err = bp.sealBPNode(right); err != nil {
				return pos, err
			}
			if n.children[pos], err = bp.sealBPNode(child); err != nil {
				return pos, err
			}
			return pos, nil
		}
		return pos, bp.mergeBP(n, pos, child, right)
	}
	left, err := bp.openBPNode(n.children[pos-1])
	if err != nil {
		return pos, err
	}
	return pos - 1, bp.mergeBP(n, pos-1, left, child)
}

// mergeBP folds children pos and pos+1 into the left one. For leaves the
// separator disappears (it was only a router copy); for interiors it moves
// down.
func (bp *bptreeIndex) mergeBP(n *bpnode, pos int, left, right *bpnode) error {
	n.dirtyShape = true
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
	} else {
		left.keys = append(left.keys, n.keys[pos])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	if err := bp.freeBPNode(right); err != nil {
		return err
	}
	nb, err := bp.sealBPNode(left)
	if err != nil {
		return err
	}
	n.keys = removeAt(n.keys, pos)
	n.children = removePtrAt(n.children, pos+1)
	n.children[pos] = nb
	return nil
}

func (bp *bptreeIndex) keys() int { return bp.live }

// scan emits every pair with start <= key < end (nil end = unbounded), in
// key order, while fn returns true. Leaves are reached by fresh verified
// descents; the upper separator bound returned by findLeaf identifies the
// next leaf's range, so the walk needs no (relocation-fragile) sibling
// pointers and every emitted pair has passed the full Merkle+MAC path.
func (bp *bptreeIndex) scan(start, end []byte, fn func(k, v []byte) bool) error {
	if bp.root == sgx.NilU {
		return nil
	}
	cursor := start
	for {
		leaf, upper, err := bp.findLeaf(cursor)
		if err != nil {
			return err
		}
		for i, k := range leaf.keys {
			if cursor != nil && bytes.Compare(k, cursor) < 0 {
				continue
			}
			if end != nil && bytes.Compare(k, end) >= 0 {
				return nil
			}
			if !fn(k, leaf.vals[i]) {
				return nil
			}
		}
		if upper == nil {
			return nil // rightmost leaf reached
		}
		if end != nil && bytes.Compare(upper, end) >= 0 {
			return nil
		}
		// upper is the inclusive lower bound of the next leaf's range
		// and strictly greater than every key just emitted.
		cursor = upper
	}
}

// verifyAll checks key order, bounds, uniform leaf depth, the live count,
// and the integrity of the leaf chain.
func (bp *bptreeIndex) verifyAll() error {
	if bp.root == sgx.NilU {
		if bp.live != 0 {
			return fmt.Errorf("%w: empty tree with %d live keys", ErrIntegrity, bp.live)
		}
		return nil
	}
	count := 0
	var walk func(block sgx.UPtr, depth int, lo, hi []byte) error
	walk = func(block sgx.UPtr, depth int, lo, hi []byte) error {
		n, err := bp.openBPNode(block)
		if err != nil {
			return err
		}
		for i, k := range n.keys {
			if i > 0 && bytes.Compare(n.keys[i-1], k) >= 0 {
				return fmt.Errorf("%w: node %#x keys out of order", ErrIntegrity, block)
			}
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("%w: node %#x violates lower bound", ErrIntegrity, block)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("%w: node %#x violates upper bound", ErrIntegrity, block)
			}
		}
		if n.leaf {
			if depth != bp.height {
				return fmt.Errorf("%w: leaf at depth %d, height %d", ErrIntegrity, depth, bp.height)
			}
			count += len(n.keys)
			return nil
		}
		keys := make([][]byte, len(n.keys))
		for i := range n.keys {
			keys[i] = cloneBytes(n.keys[i])
		}
		children := append([]sgx.UPtr(nil), n.children...)
		for i, c := range children {
			var clo, chi []byte
			if i > 0 {
				clo = keys[i-1]
			} else {
				clo = lo
			}
			if i < len(keys) {
				chi = keys[i]
			} else {
				chi = hi
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(bp.root, 1, nil, nil); err != nil {
		return err
	}
	if count != bp.live {
		return fmt.Errorf("%w: tree holds %d keys, %d live", ErrIntegrity, count, bp.live)
	}
	return nil
}
