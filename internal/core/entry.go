package core

import (
	"encoding/binary"
	"fmt"

	"github.com/ariakv/aria/internal/redir"
	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/sgx"
)

// KV entry layout in untrusted memory (paper §V-D step 4, plus the chain
// fields of Aria-H):
//
//	offset  0: next    (8)  plaintext chain pointer
//	offset  8: hint    (4)  key hint: hash of the plaintext key
//	offset 12: redptr  (8)  redirection pointer naming the counter
//	offset 20: klen    (2)
//	offset 22: vlen    (2)
//	offset 24: enc(key ‖ value)
//	offset 24+klen+vlen: MAC (16)
//
// The MAC binds redptr, lengths, ciphertext, the counter value, and the
// AdField — the untrusted address of the pointer that points at this entry
// (paper §V-C "Index Protection") — so swapping two chain pointers or
// relocating an entry is detected.
const (
	entOffNext   = 0
	entOffHint   = 8
	entOffRedPtr = 12
	entOffKLen   = 20
	entOffVLen   = 22
	entOffKV     = 24
	entOverhead  = entOffKV + seccrypto.MACSize
)

func (e *Engine) maxEntrySize() int {
	return entOverhead + e.opts.MaxKeySize + e.opts.MaxValueSize
}

// entryRef is a decoded, verified entry staged in enclave scratch memory.
type entryRef struct {
	block  sgx.UPtr
	next   sgx.UPtr
	hint   uint32
	redptr redir.RedPtr
	key    []byte // plaintext view into scratch; valid until next open/seal
	value  []byte
	size   int
}

// entryHeader reads only the plaintext chain header of an entry (next +
// hint), the cheap step of a chain walk.
func (e *Engine) entryHeader(block sgx.UPtr) (next sgx.UPtr, hint uint32) {
	b := e.enc.UBytes(block, 12)
	return sgx.UPtr(binary.LittleEndian.Uint64(b[entOffNext:])),
		binary.LittleEndian.Uint32(b[entOffHint:])
}

// openEntry copies the entry at block into enclave scratch, verifies its MAC
// against its counter and AdField, and decrypts it. adfield is the address
// of the pointer through which the entry was reached.
func (e *Engine) openEntry(block sgx.UPtr, adfield sgx.UPtr) (entryRef, error) {
	var ref entryRef
	if !e.enc.UValid(block, entOffKV) {
		return ref, fmt.Errorf("%w: entry pointer %#x out of range", ErrIntegrity, block)
	}
	hdr := e.enc.UBytes(block, entOffKV)
	klen := int(binary.LittleEndian.Uint16(hdr[entOffKLen:]))
	vlen := int(binary.LittleEndian.Uint16(hdr[entOffVLen:]))
	if klen == 0 || klen > e.opts.MaxKeySize || vlen > e.opts.MaxValueSize {
		return ref, fmt.Errorf("%w: entry at %#x has implausible lengths", ErrIntegrity, block)
	}
	total := entOverhead + klen + vlen
	if !e.enc.UValid(block, total) {
		return ref, fmt.Errorf("%w: entry at %#x extends past the arena", ErrIntegrity, block)
	}
	// Stage the whole entry inside the enclave before trusting any of it.
	e.enc.CopyIn(e.scratch, block, total)
	buf := e.enc.EBytesRaw(e.scratch, total)

	ref.block = block
	ref.next = sgx.UPtr(binary.LittleEndian.Uint64(buf[entOffNext:]))
	ref.hint = binary.LittleEndian.Uint32(buf[entOffHint:])
	ref.redptr = redir.RedPtr(binary.LittleEndian.Uint64(buf[entOffRedPtr:]))
	ref.size = total

	ctr, err := e.ctrs.CounterGet(ref.redptr)
	if err != nil {
		return ref, err
	}
	var ad [8]byte
	binary.LittleEndian.PutUint64(ad[:], uint64(adfield))
	macOff := entOffKV + klen + vlen
	e.enc.ChargeMAC(macOff - entOffRedPtr + 8 + 16)
	if !e.cip.VerifyMAC(buf[macOff:macOff+seccrypto.MACSize],
		buf[entOffRedPtr:macOff], ad[:], ctr[:]) {
		return ref, fmt.Errorf("%w: entry at %#x (tampered, replayed, or relocated)", ErrIntegrity, block)
	}
	// Decrypt key‖value in place.
	e.enc.ChargeCTR(klen + vlen)
	e.cip.CTRCrypt(&ctr, buf[entOffKV:macOff], buf[entOffKV:macOff])
	ref.key = buf[entOffKV : entOffKV+klen]
	ref.value = buf[entOffKV+klen : macOff]
	return ref, nil
}

// sealEntry builds, encrypts, and MACs an entry in the seal half of the
// scratch buffer and writes it to the given block. The counter must already
// have been bumped for this write.
func (e *Engine) sealEntry(block sgx.UPtr, next sgx.UPtr, hint uint32,
	rp redir.RedPtr, ctr [16]byte, key, value []byte, adfield sgx.UPtr) {
	total := entOverhead + len(key) + len(value)
	half := e.scratchN / 2
	buf := e.enc.EBytesRaw(e.scratch+sgx.EPtr(half), total)
	e.enc.ETouch(e.scratch+sgx.EPtr(half), total)
	binary.LittleEndian.PutUint64(buf[entOffNext:], uint64(next))
	binary.LittleEndian.PutUint32(buf[entOffHint:], hint)
	binary.LittleEndian.PutUint64(buf[entOffRedPtr:], uint64(rp))
	binary.LittleEndian.PutUint16(buf[entOffKLen:], uint16(len(key)))
	binary.LittleEndian.PutUint16(buf[entOffVLen:], uint16(len(value)))
	kv := buf[entOffKV : entOffKV+len(key)+len(value)]
	copy(kv, key)
	copy(kv[len(key):], value)
	e.enc.ChargeCTR(len(kv))
	e.cip.CTRCrypt(&ctr, kv, kv)
	macOff := entOffKV + len(key) + len(value)
	var ad [8]byte
	binary.LittleEndian.PutUint64(ad[:], uint64(adfield))
	var mac [16]byte
	e.enc.ChargeMAC(macOff - entOffRedPtr + 8 + 16)
	e.cip.MAC(&mac, buf[entOffRedPtr:macOff], ad[:], ctr[:])
	copy(buf[macOff:], mac[:])
	e.enc.CopyOut(block, e.scratch+sgx.EPtr(half), total)
}

// entrySealedSize returns the block size needed for a key/value pair.
func entrySealedSize(klen, vlen int) int { return entOverhead + klen + vlen }

// rewriteEntryMAC recomputes and rewrites the MAC of the entry at block
// after its AdField changed (its predecessor's pointer field moved, e.g. on
// unlink or relocation). The entry content is unchanged, so the counter is
// not bumped; the entry is verified under its old AdField first.
func (e *Engine) rewriteEntryMAC(block sgx.UPtr, oldAd, newAd sgx.UPtr) error {
	ref, err := e.openEntry(block, oldAd)
	if err != nil {
		return err
	}
	ctr, err := e.ctrs.CounterGet(ref.redptr)
	if err != nil {
		return err
	}
	// Re-encrypt (same counter, same plaintext — identical ciphertext)
	// and re-MAC under the new AdField.
	e.sealEntry(block, ref.next, ref.hint, ref.redptr, ctr, ref.key, ref.value, newAd)
	return nil
}

// writeNextPointer updates the plaintext chain pointer stored at addr.
func (e *Engine) writeNextPointer(addr sgx.UPtr, next sgx.UPtr) {
	binary.LittleEndian.PutUint64(e.enc.UBytes(addr, 8), uint64(next))
}

// readPointer reads a plaintext pointer stored at addr.
func (e *Engine) readPointer(addr sgx.UPtr) sgx.UPtr {
	return sgx.UPtr(binary.LittleEndian.Uint64(e.enc.UBytes(addr, 8)))
}
