package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func newBPEngine(t *testing.T) *Engine {
	t.Helper()
	return newEngine(t, Options{Index: BPTreeIndex})
}

func TestBPTreeRoundTrip(t *testing.T) {
	e := newBPEngine(t)
	for i := 0; i < 500; i++ {
		if err := e.Put(key(i), value(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 500; i++ {
		got, err := e.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if err := e.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestBPTreeScanFullOrder(t *testing.T) {
	e := newBPEngine(t)
	// Insert in random order; scan must return sorted order.
	perm := rand.New(rand.NewSource(4)).Perm(400)
	for _, i := range perm {
		if err := e.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := e.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("scan returned %d keys, want 400", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("scan output not sorted")
	}
}

func TestBPTreeScanRange(t *testing.T) {
	e := newBPEngine(t)
	for i := 0; i < 300; i++ {
		_ = e.Put(key(i), value(i))
	}
	var got []string
	err := e.Scan(key(100), key(150), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("range scan returned %d keys, want 50", len(got))
	}
	if got[0] != string(key(100)) || got[49] != string(key(149)) {
		t.Errorf("range bounds wrong: [%s, %s]", got[0], got[49])
	}
	// Values must match too.
	err = e.Scan(key(100), key(101), func(k, v []byte) bool {
		if !bytes.Equal(v, value(100)) {
			t.Errorf("scan value mismatch for %s", k)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBPTreeScanEarlyStop(t *testing.T) {
	e := newBPEngine(t)
	for i := 0; i < 300; i++ {
		_ = e.Put(key(i), value(i))
	}
	n := 0
	err := e.Scan(nil, nil, func(k, v []byte) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("early stop visited %d keys, want 10", n)
	}
}

func TestBPTreeScanEmptyAndMissingBounds(t *testing.T) {
	e := newBPEngine(t)
	if err := e.Scan(nil, nil, func(k, v []byte) bool { return true }); err != nil {
		t.Fatalf("scan of empty tree: %v", err)
	}
	for i := 0; i < 100; i += 2 { // only even keys
		_ = e.Put(key(i), value(i))
	}
	var got []string
	// Bounds that are not stored keys.
	if err := e.Scan(key(11), key(21), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{string(key(12)), string(key(14)), string(key(16)), string(key(18)), string(key(20))}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Range entirely above the keyspace.
	count := 0
	if err := e.Scan(key(1000), nil, func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("out-of-range scan returned %d keys", count)
	}
}

func TestBPTreeHashHasNoScan(t *testing.T) {
	e := newEngine(t, Options{Index: HashIndex})
	if err := e.Scan(nil, nil, func(k, v []byte) bool { return true }); !errors.Is(err, ErrNoScan) {
		t.Errorf("hash scan: err = %v, want ErrNoScan", err)
	}
}

func TestBPTreeRandomChurnMirror(t *testing.T) {
	e := newBPEngine(t)
	mirror := make(map[string][]byte)
	rng := rand.New(rand.NewSource(17))
	const space = 300
	for op := 0; op < 5000; op++ {
		k := key(rng.Intn(space))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			v := make([]byte, rng.Intn(120)+1)
			rng.Read(v)
			if err := e.Put(k, v); err != nil {
				t.Fatalf("op %d put: %v", op, err)
			}
			mirror[string(k)] = v
		case 4:
			err := e.Delete(k)
			if _, ok := mirror[string(k)]; ok && err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			delete(mirror, string(k))
		default:
			got, err := e.Get(k)
			want, ok := mirror[string(k)]
			if ok && (err != nil || !bytes.Equal(got, want)) {
				t.Fatalf("op %d get: %v", op, err)
			}
			if !ok && !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d get missing: %v", op, err)
			}
		}
		if op%1000 == 999 {
			if err := e.VerifyIntegrity(); err != nil {
				t.Fatalf("op %d audit: %v", op, err)
			}
		}
	}
	// Scan must agree with the mirror exactly.
	var keys []string
	for k := range mirror {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := e.Scan(nil, nil, func(k, v []byte) bool {
		if i >= len(keys) {
			t.Fatalf("scan produced extra key %q", k)
		}
		if string(k) != keys[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, k, keys[i])
		}
		if !bytes.Equal(v, mirror[keys[i]]) {
			t.Fatalf("scan value mismatch at %q", k)
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("scan produced %d keys, want %d", i, len(keys))
	}
}

func TestBPTreeDeleteToEmpty(t *testing.T) {
	e := newBPEngine(t)
	for i := 0; i < 200; i++ {
		_ = e.Put(key(i), value(i))
	}
	for i := 0; i < 200; i++ {
		if err := e.Delete(key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if got := e.Stats().Keys; got != 0 {
		t.Errorf("keys after drain = %d", got)
	}
	if _, err := e.Get(key(0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("get on drained tree: %v", err)
	}
	// The tree must be fully reusable.
	if err := e.Put(key(1), value(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestBPTreeNodeTamperDetected(t *testing.T) {
	e := newBPEngine(t)
	for i := 0; i < 400; i++ {
		_ = e.Put(key(i), value(i))
	}
	bp := e.idx.(*bptreeIndex)
	e.enc.UBytesRaw(bp.root+tnOffPay, 1)[0] ^= 1
	if _, err := e.Get(key(0)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tampered root: err = %v", err)
	}
}

func TestBPTreeScanDetectsTamper(t *testing.T) {
	e := newBPEngine(t)
	for i := 0; i < 400; i++ {
		_ = e.Put(key(i), value(i))
	}
	bp := e.idx.(*bptreeIndex)
	root, err := bp.openBPNode(bp.root)
	if err != nil {
		t.Fatal(err)
	}
	if root.leaf {
		t.Fatal("tree too shallow")
	}
	// Corrupt a leaf-side child; a full scan must hit it and fail.
	e.enc.UBytesRaw(root.children[1]+tnOffPay, 1)[0] ^= 0x40
	err = e.Scan(nil, nil, func(k, v []byte) bool { return true })
	if !errors.Is(err, ErrIntegrity) {
		t.Errorf("scan over tampered leaf: err = %v", err)
	}
}

func TestBPTreeGrowthAndLargeValues(t *testing.T) {
	e := newBPEngine(t)
	big := bytes.Repeat([]byte("B"), 1500)
	for i := 0; i < 300; i++ {
		v := value(i)
		if i%10 == 0 {
			v = big
		}
		if err := e.Put(key(i), v); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 300; i += 10 {
		got, err := e.Get(key(i))
		if err != nil || !bytes.Equal(got, big) {
			t.Fatalf("large value %d: %v", i, err)
		}
	}
	if err := e.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestBPTreeSequentialAndReverseInsert(t *testing.T) {
	for name, order := range map[string]func(i int) int{
		"ascending":  func(i int) int { return i },
		"descending": func(i int) int { return 999 - i },
	} {
		t.Run(name, func(t *testing.T) {
			e := newBPEngine(t)
			for i := 0; i < 1000; i++ {
				if err := e.Put(key(order(i)), value(order(i))); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			if err := e.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
			n := 0
			_ = e.Scan(nil, nil, func(k, v []byte) bool { n++; return true })
			if n != 1000 {
				t.Errorf("scan found %d keys, want 1000", n)
			}
		})
	}
}

func TestBPTreeStatsKeys(t *testing.T) {
	e := newBPEngine(t)
	for i := 0; i < 100; i++ {
		_ = e.Put(key(i), value(i))
	}
	_ = e.Put(key(50), []byte("update")) // no new key
	if got := e.Stats().Keys; got != 100 {
		t.Errorf("keys = %d, want 100", got)
	}
	_ = e.Delete(key(0))
	if got := e.Stats().Keys; got != 99 {
		t.Errorf("keys after delete = %d, want 99", got)
	}
}

func TestBPTreeScanBoundaryExactKeys(t *testing.T) {
	e := newBPEngine(t)
	for i := 0; i < 64; i++ {
		_ = e.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}
	var got []string
	// start == existing key (inclusive), end == existing key (exclusive)
	_ = e.Scan([]byte("k10"), []byte("k20"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 || got[0] != "k10" || got[9] != "k19" {
		t.Errorf("boundary scan = %v", got)
	}
}
