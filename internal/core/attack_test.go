package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/ariakv/aria/internal/sgx"
)

// Attack tests corrupt untrusted memory directly (as a malicious host can)
// and assert that the engine detects every manipulation the paper's threat
// model covers: tampering, replay, index-pointer rewiring, and unauthorized
// deletion.

// findEntryBlock locates the untrusted block of a key by walking the hash
// bucket array from outside the enclave (attacker's view).
func findEntryBlock(t *testing.T, e *Engine, k []byte) (block sgx.UPtr, ptrAddr sgx.UPtr) {
	t.Helper()
	h := e.idx.(*hashIndex)
	bucket, hint := h.hashKey(k)
	ptrAddr = h.bucketSlot(bucket)
	cur := sgx.UPtr(binary.LittleEndian.Uint64(e.enc.UBytesRaw(ptrAddr, 8)))
	for cur != sgx.NilU {
		hdr := e.enc.UBytesRaw(cur, 12)
		if binary.LittleEndian.Uint32(hdr[8:]) == hint {
			return cur, ptrAddr
		}
		ptrAddr = cur + entOffNext
		cur = sgx.UPtr(binary.LittleEndian.Uint64(hdr[:8]))
	}
	t.Fatal("entry not found from attacker view")
	return 0, 0
}

func TestCiphertextTamperDetected(t *testing.T) {
	e := newEngine(t, Options{Index: HashIndex})
	_ = e.Put(key(1), value(1))
	block, _ := findEntryBlock(t, e, key(1))
	e.enc.UBytesRaw(block+entOffKV, 1)[0] ^= 1
	if _, err := e.Get(key(1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("ciphertext tamper: err = %v, want ErrIntegrity", err)
	}
}

func TestMACTamperDetected(t *testing.T) {
	e := newEngine(t, Options{Index: HashIndex})
	_ = e.Put(key(1), value(1))
	block, _ := findEntryBlock(t, e, key(1))
	ref, err := e.openEntry(block, e.idx.(*hashIndex).bucketSlot(func() int { b, _ := e.idx.(*hashIndex).hashKey(key(1)); return b }()))
	if err != nil {
		t.Fatal(err)
	}
	macOff := entOffKV + len(ref.key) + len(ref.value)
	e.enc.UBytesRaw(block+sgx.UPtr(macOff), 1)[0] ^= 1
	if _, err := e.Get(key(1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("MAC tamper: err = %v, want ErrIntegrity", err)
	}
}

func TestLengthFieldTamperDetected(t *testing.T) {
	e := newEngine(t, Options{Index: HashIndex})
	_ = e.Put(key(1), value(1))
	block, _ := findEntryBlock(t, e, key(1))
	// Inflate vlen: either implausible (caught early) or MAC mismatch.
	binary.LittleEndian.PutUint16(e.enc.UBytesRaw(block+entOffVLen, 2), 60000)
	if _, err := e.Get(key(1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("length tamper: err = %v, want ErrIntegrity", err)
	}
}

func TestEntryReplayDetected(t *testing.T) {
	e := newEngine(t, Options{Index: HashIndex})
	_ = e.Put(key(1), []byte("balance=100"))
	block, _ := findEntryBlock(t, e, key(1))
	size := entOverhead + len(key(1)) + len("balance=100")
	old := append([]byte(nil), e.enc.UBytesRaw(block, size)...)

	// Honest update changes the value and bumps the counter.
	if err := e.Put(key(1), []byte("balance=000")); err != nil {
		t.Fatal(err)
	}
	// Attacker replays the stale entry bytes (same block, same size).
	copy(e.enc.UBytesRaw(block, size), old)
	if _, err := e.Get(key(1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("entry replay: err = %v, want ErrIntegrity", err)
	}
}

func TestPointerSwapDetected(t *testing.T) {
	// Figure 7's attack: exchange two slot pointers in the hash table.
	e := newEngine(t, Options{Index: HashIndex, ExpectedKeys: 64})
	// Insert enough keys that two distinct buckets are occupied.
	var k1, k2 []byte
	h := e.idx.(*hashIndex)
	for i := 0; i < 100 && k2 == nil; i++ {
		k := key(i)
		_ = e.Put(k, value(i))
		b, _ := h.hashKey(k)
		if k1 == nil {
			k1 = k
			continue
		}
		b1, _ := h.hashKey(k1)
		if b != b1 {
			k2 = k
		}
	}
	if k2 == nil {
		t.Fatal("could not find two buckets")
	}
	b1, _ := h.hashKey(k1)
	b2, _ := h.hashKey(k2)
	s1 := e.enc.UBytesRaw(h.bucketSlot(b1), 8)
	s2 := e.enc.UBytesRaw(h.bucketSlot(b2), 8)
	var tmp [8]byte
	copy(tmp[:], s1)
	copy(s1, s2)
	copy(s2, tmp[:])

	// Both lookups must detect the rewiring (AdField mismatch), not
	// silently miss.
	_, err1 := e.Get(k1)
	_, err2 := e.Get(k2)
	if !errors.Is(err1, ErrIntegrity) && !errors.Is(err2, ErrIntegrity) {
		t.Errorf("pointer swap undetected: err1=%v err2=%v", err1, err2)
	}
}

func TestUnauthorizedDeletionDetected(t *testing.T) {
	e := newEngine(t, Options{Index: HashIndex, ExpectedKeys: 64})
	_ = e.Put(key(1), value(1))
	_, ptrAddr := findEntryBlock(t, e, key(1))
	// Attacker clears the slot, making the key unreachable.
	binary.LittleEndian.PutUint64(e.enc.UBytesRaw(ptrAddr, 8), 0)
	if _, err := e.Get(key(1)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("unauthorized deletion: err = %v, want ErrIntegrity (not a silent miss)", err)
	}
}

func TestEntryRelocationDetected(t *testing.T) {
	// Copy an entry's bytes to a different block and point the bucket at
	// it: the AdField (pointer address) no longer matches.
	e := newEngine(t, Options{Index: HashIndex, ExpectedKeys: 64})
	_ = e.Put(key(1), value(1))
	_ = e.Put(key(2), value(2))
	b1, p1 := findEntryBlock(t, e, key(1))
	b2, p2 := findEntryBlock(t, e, key(2))
	if p1 == p2 {
		t.Skip("keys share a chain; relocation equals swap")
	}
	// Overwrite entry 2's block with entry 1's bytes and leave the
	// pointers alone: entry 1's MAC binds it to pointer address p1.
	size := entOverhead + len(key(1)) + len(value(1))
	copy(e.enc.UBytesRaw(b2, size), e.enc.UBytesRaw(b1, size))
	if _, err := e.Get(key(2)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("relocated entry accepted: err = %v", err)
	}
}

func TestTreeNodeTamperDetected(t *testing.T) {
	e := newEngine(t, Options{Index: BTreeIndex})
	for i := 0; i < 200; i++ {
		_ = e.Put(key(i), value(i))
	}
	bt := e.idx.(*btreeIndex)
	// Corrupt one byte of the root node's ciphertext.
	e.enc.UBytesRaw(bt.root+tnOffPay, 1)[0] ^= 1
	if _, err := e.Get(key(0)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tree node tamper: err = %v, want ErrIntegrity", err)
	}
}

func TestTreeNodeReplayDetected(t *testing.T) {
	e := newEngine(t, Options{Index: BTreeIndex})
	for i := 0; i < 50; i++ {
		_ = e.Put(key(i), value(i))
	}
	bt := e.idx.(*btreeIndex)
	// Snapshot the root block, update a key that lives in it, replay.
	hdr := e.enc.UBytesRaw(bt.root+tnOffPayLen, 4)
	paylen := int(binary.LittleEndian.Uint32(hdr))
	size := tnOverhead + paylen
	snap := append([]byte(nil), e.enc.UBytesRaw(bt.root, size)...)
	root, err := bt.openNode(bt.root)
	if err != nil {
		t.Fatal(err)
	}
	victim := append([]byte(nil), root.keys[0]...)
	if err := e.Put(victim, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if bt.root != root.block {
		t.Skip("root relocated; replay target moved")
	}
	copy(e.enc.UBytesRaw(bt.root, size), snap)
	if _, err := e.Get(victim); !errors.Is(err, ErrIntegrity) {
		t.Errorf("tree node replay: err = %v, want ErrIntegrity", err)
	}
}

func TestTreeNodeSwapDetected(t *testing.T) {
	e := newEngine(t, Options{Index: BTreeIndex})
	for i := 0; i < 500; i++ {
		_ = e.Put(key(i), value(i))
	}
	bt := e.idx.(*btreeIndex)
	root, err := bt.openNode(bt.root)
	if err != nil {
		t.Fatal(err)
	}
	if root.leaf || len(root.children) < 2 {
		t.Fatal("tree too shallow for swap test")
	}
	c0, c1 := root.children[0], root.children[1]
	// Swap the two children's block contents (attacker copies bytes).
	n0 := tnOverhead + int(binary.LittleEndian.Uint32(e.enc.UBytesRaw(c0+tnOffPayLen, 4)))
	n1 := tnOverhead + int(binary.LittleEndian.Uint32(e.enc.UBytesRaw(c1+tnOffPayLen, 4)))
	s0 := append([]byte(nil), e.enc.UBytesRaw(c0, n0)...)
	s1 := append([]byte(nil), e.enc.UBytesRaw(c1, n1)...)
	copy(e.enc.UBytesRaw(c0, n1), s1)
	copy(e.enc.UBytesRaw(c1, n0), s0)

	// Any lookup descending into either child must fail.
	detected := false
	for i := 0; i < 500 && !detected; i++ {
		if _, err := e.Get(key(i)); errors.Is(err, ErrIntegrity) {
			detected = true
		}
	}
	if !detected {
		t.Error("tree node swap undetected")
	}
}

func TestVerifyIntegrityCatchesColdTamper(t *testing.T) {
	// Tampering with an entry that is never read again is still caught
	// by the offline audit.
	bothIndexes(t, func(t *testing.T, e *Engine) {
		for i := 0; i < 100; i++ {
			_ = e.Put(key(i), value(i))
		}
		if err := e.VerifyIntegrity(); err != nil {
			t.Fatalf("clean store failed audit: %v", err)
		}
		switch idx := e.idx.(type) {
		case *hashIndex:
			block, _ := findEntryBlock(t, e, key(42))
			e.enc.UBytesRaw(block+entOffKV, 1)[0] ^= 0x80
			_ = idx
		case *btreeIndex:
			e.enc.UBytesRaw(idx.root+tnOffPay, 1)[0] ^= 0x80
		case *bptreeIndex:
			e.enc.UBytesRaw(idx.root+tnOffPay, 1)[0] ^= 0x80
		default:
			t.Fatalf("unknown index type %T", e.idx)
		}
		if err := e.VerifyIntegrity(); !errors.Is(err, ErrIntegrity) {
			t.Errorf("audit missed tamper: %v", err)
		}
	})
}

func TestConfidentiality(t *testing.T) {
	// The plaintext value must not appear anywhere in untrusted memory.
	bothIndexes(t, func(t *testing.T, e *Engine) {
		secret := []byte("TOP-SECRET-PLAINTEXT-0123456789")
		if err := e.Put([]byte("classified"), secret); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		um := e.enc.UBytesRaw(sgx.UPtr(0), e.enc.UntrustedUsedBytes())
		if bytes.Contains(um, secret) {
			t.Error("plaintext value leaked to untrusted memory")
		}
		if bytes.Contains(um, []byte("classified")) {
			t.Error("plaintext key leaked to untrusted memory")
		}
	})
}
