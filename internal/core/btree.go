package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"github.com/ariakv/aria/internal/redir"
	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/sgx"
)

// btreeIndex is Aria-T (paper §V-C): a B-tree whose nodes live in untrusted
// memory as individually encrypted and MAC-protected items, each with its
// own counter in the Merkle tree. Every node visited during a traversal is
// decrypted inside the enclave before the branch decision — the cost that
// makes tree-based secure stores roughly an order of magnitude slower than
// hash-based ones (Figure 10).
//
// Index protection: interior child pointers are inside the encrypted
// payload, so they cannot be rewired by the host; each node's MAC
// additionally covers its own untrusted block address (the AdField), so
// copying one node's bytes over another's block is detected. The root
// pointer and the tree height live in the EPC; a traversal that does not
// reach a leaf in exactly `height` steps indicates a structural attack.
//
// This AdField choice deviates slightly from the paper, which binds a node
// to the address of the pointer that points at it. With encrypted interior
// pointers the two are equally strong (see DESIGN.md §4), and self-binding
// avoids re-MACing every child whenever a parent reshuffles its slots.
//
// Node block layout in untrusted memory:
//
//	offset  0: redptr (8)
//	offset  8: paylen (4)
//	offset 12: enc(payload)
//	offset 12+paylen: MAC (16)
//
// Payload plaintext:
//
//	flags(1) nkeys(2) { klen(2) vlen(2) key value }*nkeys [children (nkeys+1)*8]
const (
	tnOffRedPtr = 0
	tnOffPayLen = 8
	tnOffPay    = 12
	tnOverhead  = tnOffPay + seccrypto.MACSize
)

type btreeIndex struct {
	e      *Engine
	t      int // minimum degree: nodes hold t-1..2t-1 keys (except root)
	root   sgx.UPtr
	height int // node levels from root to leaf inclusive; 0 = empty
	live   int
}

// tnode is a decoded, verified node. Key/value slices point into a single
// backing copy, so one open costs one allocation.
type tnode struct {
	block    sgx.UPtr
	redptr   redir.RedPtr
	leaf     bool
	keys     [][]byte
	vals     [][]byte
	children []sgx.UPtr
	// dirtyShape marks that sibling borrow/merge changed this node's
	// keys or children, so the caller must reseal it.
	dirtyShape bool
}

func newBTreeIndex(e *Engine) (*btreeIndex, error) {
	return &btreeIndex{e: e, t: e.opts.BTreeDegree}, nil
}

func (bt *btreeIndex) maxKeys() int { return 2*bt.t - 1 }

// maxNodeSize bounds the sealed size of any legal node.
func (e *Engine) maxNodeSize() int {
	t := e.opts.BTreeDegree
	if t <= 1 {
		t = 8
	}
	maxKeys := 2*t - 1
	pay := 3 + maxKeys*(4+e.opts.MaxKeySize+e.opts.MaxValueSize) + (maxKeys+1)*8
	return tnOverhead + pay
}

// openNode verifies and decrypts the node at block.
func (bt *btreeIndex) openNode(block sgx.UPtr) (*tnode, error) {
	e := bt.e
	if !e.enc.UValid(block, tnOverhead) {
		return nil, fmt.Errorf("%w: node pointer %#x out of range", ErrIntegrity, block)
	}
	hdr := e.enc.UBytes(block, tnOffPay)
	paylen := int(binary.LittleEndian.Uint32(hdr[tnOffPayLen:]))
	if paylen <= 0 || tnOverhead+paylen > e.scratchN/2 {
		return nil, fmt.Errorf("%w: node at %#x has implausible payload length %d", ErrIntegrity, block, paylen)
	}
	total := tnOverhead + paylen
	if !e.enc.UValid(block, total) {
		return nil, fmt.Errorf("%w: node at %#x extends past the arena", ErrIntegrity, block)
	}
	e.enc.CopyIn(e.scratch, block, total)
	buf := e.enc.EBytesRaw(e.scratch, total)
	rp := redir.RedPtr(binary.LittleEndian.Uint64(buf[tnOffRedPtr:]))
	ctr, err := e.ctrs.CounterGet(rp)
	if err != nil {
		return nil, err
	}
	var ad [8]byte
	binary.LittleEndian.PutUint64(ad[:], uint64(block))
	macOff := tnOffPay + paylen
	e.enc.ChargeMAC(macOff + 8 + 16)
	if !e.cip.VerifyMAC(buf[macOff:macOff+seccrypto.MACSize], buf[:macOff], ad[:], ctr[:]) {
		return nil, fmt.Errorf("%w: tree node at %#x (tampered, replayed, or relocated)", ErrIntegrity, block)
	}
	e.enc.ChargeCTR(paylen)
	e.cip.CTRCrypt(&ctr, buf[tnOffPay:macOff], buf[tnOffPay:macOff])

	// Decode into one backing copy (scratch is reused by the next open).
	pay := make([]byte, paylen)
	copy(pay, buf[tnOffPay:macOff])
	n := &tnode{block: block, redptr: rp, leaf: pay[0]&1 != 0}
	nkeys := int(binary.LittleEndian.Uint16(pay[1:]))
	off := 3
	n.keys = make([][]byte, nkeys)
	n.vals = make([][]byte, nkeys)
	for i := 0; i < nkeys; i++ {
		if off+4 > paylen {
			return nil, fmt.Errorf("%w: node at %#x truncated", ErrIntegrity, block)
		}
		kl := int(binary.LittleEndian.Uint16(pay[off:]))
		vl := int(binary.LittleEndian.Uint16(pay[off+2:]))
		off += 4
		if off+kl+vl > paylen {
			return nil, fmt.Errorf("%w: node at %#x truncated", ErrIntegrity, block)
		}
		n.keys[i] = pay[off : off+kl]
		n.vals[i] = pay[off+kl : off+kl+vl]
		off += kl + vl
	}
	if !n.leaf {
		n.children = make([]sgx.UPtr, nkeys+1)
		for i := range n.children {
			if off+8 > paylen {
				return nil, fmt.Errorf("%w: node at %#x truncated", ErrIntegrity, block)
			}
			n.children[i] = sgx.UPtr(binary.LittleEndian.Uint64(pay[off:]))
			off += 8
		}
	}
	return n, nil
}

// sealNode encodes, encrypts, and MACs n, writing it to its block
// (relocating to a larger one when needed; n.block is updated and the new
// address is returned so the caller can fix the parent's child pointer).
// A nil-block node is freshly allocated. The node's counter is bumped so
// every sealed image is fresh.
func (bt *btreeIndex) sealNode(n *tnode) (sgx.UPtr, error) {
	e := bt.e
	paylen := 3
	for i := range n.keys {
		paylen += 4 + len(n.keys[i]) + len(n.vals[i])
	}
	if !n.leaf {
		paylen += len(n.children) * 8
	}
	total := tnOverhead + paylen

	if n.block == sgx.NilU {
		rp, err := e.ctrs.Fetch()
		if err != nil {
			return sgx.NilU, err
		}
		n.redptr = rp
		b, err := e.heap.Alloc(total)
		if err != nil {
			return sgx.NilU, err
		}
		n.block = b
	} else if e.heap.BlockSize(n.block) < total {
		if err := e.heap.Free(n.block); err != nil {
			return sgx.NilU, err
		}
		b, err := e.heap.Alloc(total)
		if err != nil {
			return sgx.NilU, err
		}
		n.block = b
	}

	ctr, err := e.ctrs.CounterBump(n.redptr)
	if err != nil {
		return sgx.NilU, err
	}
	half := e.scratchN / 2
	buf := e.enc.EBytesRaw(e.scratch+sgx.EPtr(half), total)
	e.enc.ETouch(e.scratch+sgx.EPtr(half), total)
	binary.LittleEndian.PutUint64(buf[tnOffRedPtr:], uint64(n.redptr))
	binary.LittleEndian.PutUint32(buf[tnOffPayLen:], uint32(paylen))
	pay := buf[tnOffPay : tnOffPay+paylen]
	if n.leaf {
		pay[0] = 1
	} else {
		pay[0] = 0
	}
	binary.LittleEndian.PutUint16(pay[1:], uint16(len(n.keys)))
	off := 3
	for i := range n.keys {
		binary.LittleEndian.PutUint16(pay[off:], uint16(len(n.keys[i])))
		binary.LittleEndian.PutUint16(pay[off+2:], uint16(len(n.vals[i])))
		off += 4
		copy(pay[off:], n.keys[i])
		copy(pay[off+len(n.keys[i]):], n.vals[i])
		off += len(n.keys[i]) + len(n.vals[i])
	}
	if !n.leaf {
		for _, c := range n.children {
			binary.LittleEndian.PutUint64(pay[off:], uint64(c))
			off += 8
		}
	}
	e.enc.ChargeCTR(paylen)
	e.cip.CTRCrypt(&ctr, pay, pay)
	var ad [8]byte
	binary.LittleEndian.PutUint64(ad[:], uint64(n.block))
	macOff := tnOffPay + paylen
	var mac [16]byte
	e.enc.ChargeMAC(macOff + 8 + 16)
	e.cip.MAC(&mac, buf[:macOff], ad[:], ctr[:])
	copy(buf[macOff:], mac[:])
	e.enc.CopyOut(n.block, e.scratch+sgx.EPtr(half), total)
	return n.block, nil
}

// freeNode releases a node's block and counter (after a merge).
func (bt *btreeIndex) freeNode(n *tnode) error {
	if err := bt.e.heap.Free(n.block); err != nil {
		return err
	}
	return bt.e.ctrs.Free(n.redptr)
}

// search returns the position of key in keys, or the child slot to descend.
func search(keys [][]byte, key []byte) (pos int, found bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(keys[mid], key) {
		case 0:
			return mid, true
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

func (bt *btreeIndex) get(key []byte) ([]byte, error) {
	if bt.root == sgx.NilU {
		return nil, ErrNotFound
	}
	cur := bt.root
	depth := 0
	for {
		n, err := bt.openNode(cur)
		if err != nil {
			return nil, err
		}
		depth++
		pos, found := search(n.keys, key)
		if found {
			out := make([]byte, len(n.vals[pos]))
			copy(out, n.vals[pos])
			return out, nil
		}
		if n.leaf {
			if depth != bt.height {
				return nil, fmt.Errorf("%w: traversal depth %d != trusted height %d", ErrIntegrity, depth, bt.height)
			}
			return nil, ErrNotFound
		}
		cur = n.children[pos]
	}
}

func (bt *btreeIndex) put(key, value []byte) error {
	if bt.root == sgx.NilU {
		n := &tnode{leaf: true, keys: [][]byte{key}, vals: [][]byte{value}}
		b, err := bt.sealNode(n)
		if err != nil {
			return err
		}
		bt.root = b
		bt.height = 1
		bt.live = 1
		return nil
	}
	nb, up, existed, err := bt.insertRec(bt.root, key, value)
	if err != nil {
		return err
	}
	bt.root = nb
	if up != nil {
		newRoot := &tnode{
			leaf:     false,
			keys:     [][]byte{up.key},
			vals:     [][]byte{up.val},
			children: []sgx.UPtr{bt.root, up.right},
		}
		b, err := bt.sealNode(newRoot)
		if err != nil {
			return err
		}
		bt.root = b
		bt.height++
	}
	if !existed {
		bt.live++
	}
	return nil
}

// splitUp carries a median promoted to the parent during insertion.
type splitUp struct {
	key, val []byte
	right    sgx.UPtr
}

// insertRec inserts into the subtree at block. It returns the subtree's
// (possibly relocated) root block and, when the node split, the promoted
// median. existed reports whether the key was already present (update).
func (bt *btreeIndex) insertRec(block sgx.UPtr, key, value []byte) (sgx.UPtr, *splitUp, bool, error) {
	n, err := bt.openNode(block)
	if err != nil {
		return block, nil, false, err
	}
	pos, found := search(n.keys, key)
	if found {
		n.vals[pos] = value
		nb, err := bt.sealNode(n)
		return nb, nil, true, err
	}
	if n.leaf {
		n.keys = insertAt(n.keys, pos, cloneBytes(key))
		n.vals = insertAt(n.vals, pos, cloneBytes(value))
	} else {
		childBlock := n.children[pos]
		ncb, up, existed, err := bt.insertRec(childBlock, key, value)
		if err != nil {
			return block, nil, false, err
		}
		if ncb == childBlock && up == nil {
			// Child neither relocated nor split: this node is
			// untouched, no reseal needed.
			return block, nil, existed, nil
		}
		n.children[pos] = ncb
		if up != nil {
			n.keys = insertAt(n.keys, pos, up.key)
			n.vals = insertAt(n.vals, pos, up.val)
			n.children = insertPtrAt(n.children, pos+1, up.right)
		}
		if existed || up == nil {
			nb, err := bt.sealNode(n)
			return nb, nil, existed, err
		}
	}
	if len(n.keys) <= bt.maxKeys() {
		nb, err := bt.sealNode(n)
		return nb, nil, false, err
	}
	// Overfull (2t keys): split around the median.
	mid := len(n.keys) / 2
	up := &splitUp{key: n.keys[mid], val: n.vals[mid]}
	right := &tnode{leaf: n.leaf}
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.vals = append(right.vals, n.vals[mid+1:]...)
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	if !n.leaf {
		right.children = append(right.children, n.children[mid+1:]...)
		n.children = n.children[:mid+1]
	}
	rb, err := bt.sealNode(right)
	if err != nil {
		return block, nil, false, err
	}
	up.right = rb
	nb, err := bt.sealNode(n)
	return nb, up, false, err
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func insertAt(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertPtrAt(s []sgx.UPtr, i int, v sgx.UPtr) []sgx.UPtr {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt(s [][]byte, i int) [][]byte {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

func removePtrAt(s []sgx.UPtr, i int) []sgx.UPtr {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

func (bt *btreeIndex) delete(key []byte) error {
	if bt.root == sgx.NilU {
		return ErrNotFound
	}
	nb, deleted, err := bt.deleteRec(bt.root, key)
	if err != nil {
		return err
	}
	bt.root = nb
	if !deleted {
		return ErrNotFound
	}
	bt.live--
	// Shrink the root when it became an empty interior node.
	n, err := bt.openNode(bt.root)
	if err != nil {
		return err
	}
	if len(n.keys) == 0 {
		if n.leaf {
			if err := bt.freeNode(n); err != nil {
				return err
			}
			bt.root = sgx.NilU
			bt.height = 0
		} else {
			child := n.children[0]
			if err := bt.freeNode(n); err != nil {
				return err
			}
			bt.root = child
			bt.height--
		}
	}
	return nil
}

// deleteRec removes key from the subtree at block (CLRS B-tree deletion:
// every recursive step guarantees the node it descends into has at least t
// keys, borrowing from or merging with siblings first).
func (bt *btreeIndex) deleteRec(block sgx.UPtr, key []byte) (sgx.UPtr, bool, error) {
	n, err := bt.openNode(block)
	if err != nil {
		return block, false, err
	}
	pos, found := search(n.keys, key)
	if n.leaf {
		if !found {
			return block, false, nil
		}
		n.keys = removeAt(n.keys, pos)
		n.vals = removeAt(n.vals, pos)
		nb, err := bt.sealNode(n)
		return nb, true, err
	}
	if found {
		// Key in an interior node: replace it with its in-order
		// predecessor or successor, or merge the two children.
		left, err := bt.openNode(n.children[pos])
		if err != nil {
			return block, false, err
		}
		if len(left.keys) >= bt.t {
			pk, pv, ncb, err := bt.popMax(n.children[pos])
			if err != nil {
				return block, false, err
			}
			n.children[pos] = ncb
			n.keys[pos] = pk
			n.vals[pos] = pv
			nb, err := bt.sealNode(n)
			return nb, true, err
		}
		right, err := bt.openNode(n.children[pos+1])
		if err != nil {
			return block, false, err
		}
		if len(right.keys) >= bt.t {
			sk, sv, ncb, err := bt.popMin(n.children[pos+1])
			if err != nil {
				return block, false, err
			}
			n.children[pos+1] = ncb
			n.keys[pos] = sk
			n.vals[pos] = sv
			nb, err := bt.sealNode(n)
			return nb, true, err
		}
		// Both children minimal: merge them around the key, then
		// delete from the merged child.
		merged, err := bt.mergeChildren(n, pos, left, right)
		if err != nil {
			return block, false, err
		}
		ncb, deleted, err := bt.deleteRec(merged, key)
		if err != nil {
			return block, false, err
		}
		n.children[pos] = ncb
		nb, err := bt.sealNode(n)
		return nb, deleted, err
	}
	// Key not here: ensure the target child can lose a key, then recurse.
	childPos, err := bt.ensureFull(n, pos)
	if err != nil {
		return block, false, err
	}
	oldChild := n.children[childPos]
	ncb, deleted, err := bt.deleteRec(oldChild, key)
	if err != nil {
		return block, false, err
	}
	if ncb == oldChild && !n.dirtyShape {
		return block, deleted, nil
	}
	n.children[childPos] = ncb
	nb, err := bt.sealNode(n)
	return nb, deleted, err
}

// popMax removes and returns the maximum key/value of the subtree at block.
func (bt *btreeIndex) popMax(block sgx.UPtr) ([]byte, []byte, sgx.UPtr, error) {
	n, err := bt.openNode(block)
	if err != nil {
		return nil, nil, block, err
	}
	if n.leaf {
		i := len(n.keys) - 1
		k, v := n.keys[i], n.vals[i]
		n.keys = n.keys[:i]
		n.vals = n.vals[:i]
		nb, err := bt.sealNode(n)
		return k, v, nb, err
	}
	childPos, err := bt.ensureFull(n, len(n.children)-1)
	if err != nil {
		return nil, nil, block, err
	}
	k, v, ncb, err := bt.popMax(n.children[childPos])
	if err != nil {
		return nil, nil, block, err
	}
	n.children[childPos] = ncb
	nb, err := bt.sealNode(n)
	return k, v, nb, err
}

// popMin removes and returns the minimum key/value of the subtree at block.
func (bt *btreeIndex) popMin(block sgx.UPtr) ([]byte, []byte, sgx.UPtr, error) {
	n, err := bt.openNode(block)
	if err != nil {
		return nil, nil, block, err
	}
	if n.leaf {
		k, v := n.keys[0], n.vals[0]
		n.keys = removeAt(n.keys, 0)
		n.vals = removeAt(n.vals, 0)
		nb, err := bt.sealNode(n)
		return k, v, nb, err
	}
	childPos, err := bt.ensureFull(n, 0)
	if err != nil {
		return nil, nil, block, err
	}
	k, v, ncb, err := bt.popMin(n.children[childPos])
	if err != nil {
		return nil, nil, block, err
	}
	n.children[childPos] = ncb
	nb, err := bt.sealNode(n)
	return k, v, nb, err
}

// ensureFull guarantees n.children[pos] has at least t keys by borrowing
// from a sibling or merging; it returns the (possibly shifted) child slot to
// descend into and marks n dirty when its shape changed.
func (bt *btreeIndex) ensureFull(n *tnode, pos int) (int, error) {
	child, err := bt.openNode(n.children[pos])
	if err != nil {
		return pos, err
	}
	if len(child.keys) >= bt.t {
		return pos, nil
	}
	n.dirtyShape = true
	// Try borrowing from the left sibling.
	if pos > 0 {
		left, err := bt.openNode(n.children[pos-1])
		if err != nil {
			return pos, err
		}
		if len(left.keys) >= bt.t {
			// Rotate right: parent separator moves down, left's
			// max moves up.
			child.keys = insertAt(child.keys, 0, n.keys[pos-1])
			child.vals = insertAt(child.vals, 0, n.vals[pos-1])
			li := len(left.keys) - 1
			n.keys[pos-1] = left.keys[li]
			n.vals[pos-1] = left.vals[li]
			left.keys = left.keys[:li]
			left.vals = left.vals[:li]
			if !child.leaf {
				child.children = insertPtrAt(child.children, 0, left.children[len(left.children)-1])
				left.children = left.children[:len(left.children)-1]
			}
			if n.children[pos-1], err = bt.sealNode(left); err != nil {
				return pos, err
			}
			if n.children[pos], err = bt.sealNode(child); err != nil {
				return pos, err
			}
			return pos, nil
		}
	}
	// Try borrowing from the right sibling.
	if pos < len(n.children)-1 {
		right, err := bt.openNode(n.children[pos+1])
		if err != nil {
			return pos, err
		}
		if len(right.keys) >= bt.t {
			child.keys = append(child.keys, n.keys[pos])
			child.vals = append(child.vals, n.vals[pos])
			n.keys[pos] = right.keys[0]
			n.vals[pos] = right.vals[0]
			right.keys = removeAt(right.keys, 0)
			right.vals = removeAt(right.vals, 0)
			if !child.leaf {
				child.children = append(child.children, right.children[0])
				right.children = removePtrAt(right.children, 0)
			}
			if n.children[pos+1], err = bt.sealNode(right); err != nil {
				return pos, err
			}
			if n.children[pos], err = bt.sealNode(child); err != nil {
				return pos, err
			}
			return pos, nil
		}
		// Merge with the right sibling.
		if _, err := bt.mergeChildren(n, pos, child, right); err != nil {
			return pos, err
		}
		return pos, nil
	}
	// Merge with the left sibling (child is the rightmost slot).
	left, err := bt.openNode(n.children[pos-1])
	if err != nil {
		return pos, err
	}
	if _, err := bt.mergeChildren(n, pos-1, left, child); err != nil {
		return pos, err
	}
	return pos - 1, nil
}

// mergeChildren folds n.keys[pos] and children pos, pos+1 into one node
// (the left child, resealed), removing the separator and right child from
// n. n itself is NOT resealed here — callers always reseal n afterwards.
func (bt *btreeIndex) mergeChildren(n *tnode, pos int, left, right *tnode) (sgx.UPtr, error) {
	n.dirtyShape = true
	left.keys = append(left.keys, n.keys[pos])
	left.vals = append(left.vals, n.vals[pos])
	left.keys = append(left.keys, right.keys...)
	left.vals = append(left.vals, right.vals...)
	if !left.leaf {
		left.children = append(left.children, right.children...)
	}
	if err := bt.freeNode(right); err != nil {
		return sgx.NilU, err
	}
	nb, err := bt.sealNode(left)
	if err != nil {
		return sgx.NilU, err
	}
	n.keys = removeAt(n.keys, pos)
	n.vals = removeAt(n.vals, pos)
	n.children = removePtrAt(n.children, pos+1)
	n.children[pos] = nb
	return nb, nil
}

func (bt *btreeIndex) keys() int { return bt.live }

// verifyAll walks the whole tree, verifying every node, checking key order,
// uniform leaf depth, and the live count.
func (bt *btreeIndex) verifyAll() error {
	if bt.root == sgx.NilU {
		if bt.live != 0 {
			return fmt.Errorf("%w: empty tree with %d live keys", ErrIntegrity, bt.live)
		}
		return nil
	}
	count := 0
	var walk func(block sgx.UPtr, depth int, lo, hi []byte) error
	walk = func(block sgx.UPtr, depth int, lo, hi []byte) error {
		n, err := bt.openNode(block)
		if err != nil {
			return err
		}
		for i, k := range n.keys {
			if i > 0 && bytes.Compare(n.keys[i-1], k) >= 0 {
				return fmt.Errorf("%w: node %#x keys out of order", ErrIntegrity, block)
			}
			if lo != nil && bytes.Compare(k, lo) <= 0 {
				return fmt.Errorf("%w: node %#x violates lower bound", ErrIntegrity, block)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("%w: node %#x violates upper bound", ErrIntegrity, block)
			}
		}
		count += len(n.keys)
		if n.leaf {
			if depth != bt.height {
				return fmt.Errorf("%w: leaf at depth %d, height %d", ErrIntegrity, depth, bt.height)
			}
			return nil
		}
		// Children are revisited recursively; copy bounds since the
		// decoded node is invalidated by nested opens.
		keys := make([][]byte, len(n.keys))
		for i := range n.keys {
			keys[i] = cloneBytes(n.keys[i])
		}
		children := append([]sgx.UPtr(nil), n.children...)
		for i, c := range children {
			var clo, chi []byte
			if i > 0 {
				clo = keys[i-1]
			} else {
				clo = lo
			}
			if i < len(keys) {
				chi = keys[i]
			} else {
				chi = hi
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(bt.root, 1, nil, nil); err != nil {
		return err
	}
	if count != bt.live {
		return fmt.Errorf("%w: tree holds %d keys, %d live", ErrIntegrity, count, bt.live)
	}
	return nil
}
