package core

import (
	"bytes"
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

// Property-based tests over the engine and its indexes: random key/value
// populations must round-trip, order, and audit cleanly for every index.

func TestQuickRoundTripAllIndexes(t *testing.T) {
	for _, kind := range []IndexKind{HashIndex, BTreeIndex, BPTreeIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newEngine(t, Options{Index: kind})
			stored := make(map[string][]byte)
			check := func(rawKey []byte, rawVal []byte) bool {
				if len(rawKey) == 0 || len(rawKey) > 64 {
					return true // out of scope for this property
				}
				if len(rawVal) > 256 {
					rawVal = rawVal[:256]
				}
				if err := e.Put(rawKey, rawVal); err != nil {
					t.Logf("put: %v", err)
					return false
				}
				stored[string(rawKey)] = append([]byte(nil), rawVal...)
				got, err := e.Get(rawKey)
				if err != nil || !bytes.Equal(got, rawVal) {
					t.Logf("get after put: %v", err)
					return false
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
			// All stored keys must remain intact and the audit clean.
			for k, v := range stored {
				got, err := e.Get([]byte(k))
				if err != nil || !bytes.Equal(got, v) {
					t.Fatalf("final get %q: %v", k, err)
				}
			}
			if err := e.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickScanMatchesSortedKeys(t *testing.T) {
	e := newEngine(t, Options{Index: BPTreeIndex})
	inserted := make(map[string]bool)
	insert := func(rawKey []byte) bool {
		if len(rawKey) == 0 || len(rawKey) > 48 {
			return true
		}
		if err := e.Put(rawKey, []byte("v")); err != nil {
			return false
		}
		inserted[string(rawKey)] = true
		return true
	}
	if err := quick.Check(insert, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, len(inserted))
	for k := range inserted {
		want = append(want, k)
	}
	sort.Strings(want)
	var got []string
	if err := e.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan found %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestQuickScanSubrangeConsistency(t *testing.T) {
	// Property: for random bounds (a, b), Scan(a, b) returns exactly the
	// stored keys k with a <= k < b, in order.
	e := newEngine(t, Options{Index: BPTreeIndex})
	var all []string
	for i := 0; i < 500; i += 3 {
		k := key(i)
		_ = e.Put(k, value(i))
		all = append(all, string(k))
	}
	sort.Strings(all)
	check := func(ai, bi uint16) bool {
		a := key(int(ai) % 600)
		b := key(int(bi) % 600)
		if bytes.Compare(a, b) > 0 {
			a, b = b, a
		}
		var want []string
		for _, k := range all {
			if k >= string(a) && k < string(b) {
				want = append(want, k)
			}
		}
		var got []string
		if err := e.Scan(a, b, func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeleteIdempotence(t *testing.T) {
	// Property: after Delete(k), Get(k) is ErrNotFound and a second
	// Delete(k) is ErrNotFound, for any random key that was inserted.
	for _, kind := range []IndexKind{HashIndex, BTreeIndex, BPTreeIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newEngine(t, Options{Index: kind})
			check := func(rawKey []byte) bool {
				if len(rawKey) == 0 || len(rawKey) > 64 {
					return true
				}
				if err := e.Put(rawKey, []byte("x")); err != nil {
					return false
				}
				if err := e.Delete(rawKey); err != nil {
					return false
				}
				if _, err := e.Get(rawKey); !errors.Is(err, ErrNotFound) {
					return false
				}
				return errors.Is(e.Delete(rawKey), ErrNotFound)
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
				t.Error(err)
			}
			if err := e.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQuickBinaryKeysAndValues(t *testing.T) {
	// Keys and values with NUL bytes, high bits, and repeated content
	// must be handled verbatim by every index.
	nasty := [][]byte{
		{0},
		{0, 0, 0},
		{0xff, 0xfe, 0xfd},
		bytes.Repeat([]byte{0xaa}, 64),
		[]byte("key\x00with\x00nuls"),
		{1},
		{1, 0},
		{1, 0, 0},
	}
	for _, kind := range []IndexKind{HashIndex, BTreeIndex, BPTreeIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			e := newEngine(t, Options{Index: kind})
			for i, k := range nasty {
				if err := e.Put(k, nasty[(i+1)%len(nasty)]); err != nil {
					t.Fatalf("put %x: %v", k, err)
				}
			}
			for i, k := range nasty {
				got, err := e.Get(k)
				if err != nil || !bytes.Equal(got, nasty[(i+1)%len(nasty)]) {
					t.Fatalf("get %x: %v", k, err)
				}
			}
			if err := e.VerifyIntegrity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
