package core

import (
	"testing"

	"github.com/ariakv/aria/internal/securecache"
	"github.com/ariakv/aria/internal/sgx"
)

// TestPolicyPinningChurnMatrix loads a keyspace far larger than the Secure
// Cache under every (policy, pinning) combination. It is a regression test
// for a queue-corruption bug where an LRU hit on a victim mid-eviction
// (unlinked but still in the lookup table) reset the replacement queue.
func TestPolicyPinningChurnMatrix(t *testing.T) {
	for _, cfg := range []struct {
		name   string
		policy securecache.Policy
		nopin  bool
	}{
		{"lru-nopin", securecache.LRU, true},
		{"fifo-pin", securecache.FIFO, false},
		{"fifo-nopin", securecache.FIFO, true},
		{"lru-pin", securecache.LRU, false},
	} {
		t.Run(cfg.name, func(t *testing.T) { runChurn(t, cfg.policy, cfg.nopin) })
	}
}

func runChurn(t *testing.T, policy securecache.Policy, nopin bool) {
	enc := sgx.New(sgx.Config{EPCBytes: 91 << 20 / 128, MeasureOff: true})
	e, err := New(enc, Options{
		Index:          HashIndex,
		ExpectedKeys:   78125,
		CacheBytes:     91 << 20 / 128 * 7 / 10,
		Policy:         policy,
		DisablePinning: nopin,
		PinBudgetBytes: 32 << 10,
		OcallAlloc:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 78125; i++ {
		if err := e.Put(key(i), value(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
}
