package core

import (
	"fmt"

	"github.com/ariakv/aria/internal/sgx"
)

// hashIndex is Aria-H (paper §V-C): a chained hash table whose bucket array
// and chain pointers live in untrusted memory. Each entry carries a key
// hint — a hash of the plaintext key — so a chain walk only decrypts
// candidates whose hint matches, mirroring ShieldStore's key-hint trick.
//
// Index protection: the bucket head array and next pointers are plaintext
// and writable by the host, so every entry's MAC covers the address of the
// pointer that points at it (the AdField), and the enclave keeps a
// per-bucket entry count; chain-pointer swaps relocate entries (AdField
// mismatch) and unauthorized deletions make the count disagree with the
// walked chain.
type hashIndex struct {
	e        *Engine
	nbuckets int
	buckets  sgx.UPtr // nbuckets * 8-byte head pointers, untrusted
	counts   sgx.EPtr // nbuckets * 2-byte entry counts, EPC
	live     int
}

func newHashIndex(e *Engine) (*hashIndex, error) {
	n := e.opts.ExpectedKeys / e.opts.BucketLoad
	if n < 16 {
		n = 16
	}
	h := &hashIndex{
		e:        e,
		nbuckets: n,
		buckets:  e.enc.UAlloc(n*8, sgx.CacheLine),
		counts:   e.enc.EAlloc(n*2, sgx.CacheLine),
	}
	return h, nil
}

// hashKey derives the bucket index and the key hint from the plaintext key
// with two independently seeded FNV-1a passes, computed inside the enclave.
func (h *hashIndex) hashKey(key []byte) (bucket int, hint uint32) {
	const (
		offset1 = 14695981039346656037
		offset2 = 0x9E3779B97F4A7C15
		prime   = 1099511628211
	)
	h1 := uint64(offset1)
	h2 := uint64(offset2)
	for _, b := range key {
		h1 = (h1 ^ uint64(b)) * prime
		h2 = (h2 ^ uint64(b)) * prime
	}
	h.e.enc.ChargeHash()
	return int(h1 % uint64(h.nbuckets)), uint32(h2)
}

func (h *hashIndex) bucketSlot(b int) sgx.UPtr { return h.buckets + sgx.UPtr(b*8) }

func (h *hashIndex) count(b int) int {
	buf := h.e.enc.EBytes(h.counts+sgx.EPtr(b*2), 2)
	return int(buf[0]) | int(buf[1])<<8
}

func (h *hashIndex) setCount(b, v int) {
	buf := h.e.enc.EBytes(h.counts+sgx.EPtr(b*2), 2)
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
}

// walkState tracks a chain traversal position.
type walkState struct {
	ptrAddr sgx.UPtr // address of the pointer that led to cur
	cur     sgx.UPtr // current entry block (NilU at end)
	visited int
}

func (h *hashIndex) startWalk(bucket int) walkState {
	slot := h.bucketSlot(bucket)
	return walkState{ptrAddr: slot, cur: h.e.readPointer(slot)}
}

func (h *hashIndex) advance(w *walkState, next sgx.UPtr) {
	w.ptrAddr = w.cur + entOffNext
	w.cur = next
	w.visited++
}

// find walks the chain for key, fully verifying and decrypting every
// hint-matching candidate. On a miss it cross-checks the walked length
// against the trusted per-bucket count (unauthorized-deletion detection)
// and then re-walks the chain verifying every entry's MAC and AdField:
// key hints let the fast path skip foreign entries, so a swapped-in entry
// from another bucket would otherwise turn an existing key into a silent
// miss (Figure 7's attack). Hits never pay for this; only misses do.
func (h *hashIndex) find(key []byte) (entryRef, walkState, error) {
	bucket, hint := h.hashKey(key)
	limit := h.count(bucket)
	w := h.startWalk(bucket)
	for w.cur != sgx.NilU {
		// Wild or cyclic chain pointers are attacks, not crashes: the
		// pointer must lie in the arena and the chain must not exceed
		// the trusted entry count.
		if !h.e.enc.UValid(w.cur, entOverhead) || w.visited > limit {
			return entryRef{}, w, fmt.Errorf("%w: bucket %d chain corrupted", ErrIntegrity, bucket)
		}
		next, entHint := h.e.entryHeader(w.cur)
		if entHint == hint {
			ref, err := h.e.openEntry(w.cur, w.ptrAddr)
			if err != nil {
				return entryRef{}, w, err
			}
			if equalInEnclave(ref.key, key) {
				w.visited++
				return ref, w, nil
			}
			next = ref.next
		}
		h.advance(&w, next)
	}
	if w.visited != h.count(bucket) {
		return entryRef{}, w, fmt.Errorf("%w: bucket %d has %d reachable entries, enclave recorded %d (deletion attack)",
			ErrIntegrity, bucket, w.visited, h.count(bucket))
	}
	if err := h.verifyChain(bucket); err != nil {
		return entryRef{}, w, err
	}
	return entryRef{}, w, ErrNotFound
}

// verifyChain opens every entry of a bucket through the full verification
// path, confirming each is bound (via its AdField) to the pointer it was
// reached through.
func (h *hashIndex) verifyChain(bucket int) error {
	limit := h.count(bucket)
	w := h.startWalk(bucket)
	for w.cur != sgx.NilU {
		if !h.e.enc.UValid(w.cur, entOverhead) || w.visited > limit {
			return fmt.Errorf("%w: bucket %d chain corrupted", ErrIntegrity, bucket)
		}
		ref, err := h.e.openEntry(w.cur, w.ptrAddr)
		if err != nil {
			return err
		}
		h.advance(&w, ref.next)
	}
	return nil
}

func (h *hashIndex) get(key []byte) ([]byte, error) {
	ref, _, err := h.find(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(ref.value))
	copy(out, ref.value)
	return out, nil
}

func (h *hashIndex) put(key, value []byte) error {
	bucket, hint := h.hashKey(key)
	// Walk the whole chain: detect duplicates and find the tail, whose
	// next field becomes the new entry's AdField (tail insertion keeps
	// existing AdFields stable, §V-C). find also runs the miss-path
	// chain verification, so a new-key insert never silently coexists
	// with a hidden (relocated) copy of the same key.
	ref, w, err := h.find(key)
	switch {
	case err == nil:
		return h.update(ref, w, key, value)
	case err != ErrNotFound:
		return err
	}
	tailPtrAddr := w.ptrAddr

	// New key: fetch a counter, bump it, seal at the tail.
	rp, err := h.e.ctrs.Fetch()
	if err != nil {
		return err
	}
	ctr, err := h.e.ctrs.CounterBump(rp)
	if err != nil {
		return err
	}
	block, err := h.e.heap.Alloc(entrySealedSize(len(key), len(value)))
	if err != nil {
		return err
	}
	h.e.sealEntry(block, sgx.NilU, hint, rp, ctr, key, value, tailPtrAddr)
	h.e.writeNextPointer(tailPtrAddr, block)
	h.setCount(bucket, h.count(bucket)+1)
	h.live++
	return nil
}

// update overwrites an existing entry's value, reusing its counter
// (bumped) and its chain position. If the new payload no longer fits the
// old block, the entry is relocated and its successor's AdField is fixed.
func (h *hashIndex) update(ref entryRef, w walkState, key, value []byte) error {
	ctr, err := h.e.ctrs.CounterBump(ref.redptr)
	if err != nil {
		return err
	}
	need := entrySealedSize(len(key), len(value))
	// The unoptimized allocation path (AriaBase, Figure 12) allocates a
	// fresh buffer from the host for every written value instead of
	// updating in place, paying the OCALL round trips.
	if !h.e.opts.OcallAlloc && h.e.heap.BlockSize(ref.block) >= need {
		h.e.sealEntry(ref.block, ref.next, ref.hint, ref.redptr, ctr, key, value, w.ptrAddr)
		return nil
	}
	// Relocate: seal into a fresh block, relink, fix successor AdField.
	nb, err := h.e.heap.Alloc(need)
	if err != nil {
		return err
	}
	h.e.sealEntry(nb, ref.next, ref.hint, ref.redptr, ctr, key, value, w.ptrAddr)
	h.e.writeNextPointer(w.ptrAddr, nb)
	if ref.next != sgx.NilU {
		if err := h.e.rewriteEntryMAC(ref.next, ref.block+entOffNext, nb+entOffNext); err != nil {
			return err
		}
	}
	return h.e.heap.Free(ref.block)
}

func (h *hashIndex) delete(key []byte) error {
	ref, w, err := h.find(key)
	if err != nil {
		return err
	}
	bucket, _ := h.hashKey(key)
	// Unlink, then rebind the successor to its new predecessor pointer.
	h.e.writeNextPointer(w.ptrAddr, ref.next)
	if ref.next != sgx.NilU {
		if err := h.e.rewriteEntryMAC(ref.next, ref.block+entOffNext, w.ptrAddr); err != nil {
			return err
		}
	}
	if err := h.e.ctrs.Free(ref.redptr); err != nil {
		return err
	}
	if err := h.e.heap.Free(ref.block); err != nil {
		return err
	}
	h.setCount(bucket, h.count(bucket)-1)
	h.live--
	return nil
}

func (h *hashIndex) keys() int { return h.live }

// verifyAll re-reads every entry in every bucket through the verification
// path and cross-checks chain lengths against the trusted counts.
func (h *hashIndex) verifyAll() error {
	total := 0
	for b := 0; b < h.nbuckets; b++ {
		limit := h.count(b)
		w := h.startWalk(b)
		for w.cur != sgx.NilU {
			if !h.e.enc.UValid(w.cur, entOverhead) || w.visited > limit {
				return fmt.Errorf("%w: bucket %d chain corrupted", ErrIntegrity, b)
			}
			ref, err := h.e.openEntry(w.cur, w.ptrAddr)
			if err != nil {
				return fmt.Errorf("bucket %d: %w", b, err)
			}
			h.advance(&w, ref.next)
		}
		if w.visited != h.count(b) {
			return fmt.Errorf("%w: bucket %d length %d != trusted count %d",
				ErrIntegrity, b, w.visited, h.count(b))
		}
		total += w.visited
	}
	if total != h.live {
		return fmt.Errorf("%w: %d entries reachable, %d live", ErrIntegrity, total, h.live)
	}
	return nil
}
