// Package workload generates the two request streams the Aria paper
// evaluates with: YCSB microbenchmarks (uniform and Zipfian key popularity,
// configurable read ratio and value size) and the Facebook ETC production
// workload (mixed tiny/small/large values with Zipfian access to the small
// classes).
//
// Generators are deterministic given a seed, so every experiment reproduces
// identical request streams across runs and machines.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// Dist selects the key-popularity distribution.
type Dist int

const (
	// Uniform picks every key with equal probability.
	Uniform Dist = iota
	// Zipfian uses the YCSB scrambled-Zipfian distribution.
	Zipfian
)

func (d Dist) String() string {
	if d == Zipfian {
		return "zipfian"
	}
	return "uniform"
}

// DefaultKeySize matches the paper's fixed 16-byte keys.
const DefaultKeySize = 16

// Config parameterises a generator.
type Config struct {
	// Keys is the keyspace size (distinct keys).
	Keys int
	// Dist selects uniform or Zipfian popularity.
	Dist Dist
	// Skew is the Zipfian theta (paper default 0.99; Figure 16b sweeps
	// 0.8–1.2).
	Skew float64
	// ReadRatio is the fraction of Get operations (0.0–1.0).
	ReadRatio float64
	// ValueSize is the fixed value size for YCSB runs. Ignored in ETC
	// mode.
	ValueSize int
	// ETC switches to the Facebook ETC value-size mix: 40% tiny
	// (1–13 B), 55% small (14–300 B), 5% large (>300 B); Zipfian access
	// over tiny+small, uniform over large.
	ETC bool
	// KeySize is the key length (default 16).
	KeySize int
	// Seed makes the stream deterministic.
	Seed int64
}

// Op is one generated request.
type Op struct {
	Read  bool
	Key   []byte
	Value []byte // nil for reads
}

// Generator produces a deterministic request stream.
type Generator struct {
	cfg Config
	rng *rand.Rand
	zip *zipfGen

	// ETC split: keys [0, smallEnd) are tiny+small (Zipfian), keys
	// [smallEnd, Keys) are large (uniform).
	smallEnd int

	keyBuf []byte
	valBuf []byte
}

// New creates a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.Keys <= 0 {
		return nil, fmt.Errorf("workload: keyspace %d must be positive", cfg.Keys)
	}
	if cfg.KeySize <= 0 {
		cfg.KeySize = DefaultKeySize
	}
	if cfg.KeySize < 10 {
		return nil, fmt.Errorf("workload: key size %d too small to encode the keyspace", cfg.KeySize)
	}
	if cfg.Skew == 0 {
		cfg.Skew = 0.99
	}
	if cfg.ValueSize <= 0 && !cfg.ETC {
		cfg.ValueSize = 16
	}
	g := &Generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed | 1)),
		keyBuf: make([]byte, cfg.KeySize),
		valBuf: make([]byte, 1200),
	}
	g.smallEnd = cfg.Keys
	if cfg.ETC {
		g.smallEnd = cfg.Keys * 95 / 100
		if g.smallEnd < 1 {
			g.smallEnd = 1
		}
	}
	if cfg.Dist == Zipfian || cfg.ETC {
		g.zip = newZipf(g.smallEnd, cfg.Skew, cfg.Seed)
	}
	return g, nil
}

// Keys returns the keyspace size.
func (g *Generator) Keys() int { return g.cfg.Keys }

// KeyAt encodes key index i into a fixed-size key. The encoding is stable:
// load phases and request phases agree on it.
func (g *Generator) KeyAt(i int) []byte {
	k := g.keyBuf
	k[0] = 'k'
	for j := 1; j < len(k)-8; j++ {
		k[j] = '0'
	}
	binary.BigEndian.PutUint64(k[len(k)-8:], uint64(i))
	return k
}

// valueSizeFor returns the deterministic value size of key i.
func (g *Generator) valueSizeFor(i int) int {
	if !g.cfg.ETC {
		return g.cfg.ValueSize
	}
	h := splitmix(uint64(i) + 0x1234)
	tinyEnd := g.cfg.Keys * 40 / 100
	switch {
	case i < tinyEnd:
		return 1 + int(h%13) // tiny: 1–13 B
	case i < g.smallEnd:
		return 14 + int(h%287) // small: 14–300 B
	default:
		return 301 + int(h%724) // large: 301–1024 B
	}
}

// ValueAt fills a deterministic value for key i (content derived from the
// index so correctness checks can recompute it).
func (g *Generator) ValueAt(i int) []byte {
	n := g.valueSizeFor(i)
	v := g.valBuf[:n]
	s := splitmix(uint64(i) ^ 0xBEEF)
	for j := range v {
		v[j] = byte('a' + (s+uint64(j*131))%26)
	}
	return v
}

// NextIndex draws the next key index from the configured distribution.
// Exposed for drivers that need the index itself — e.g. YCSB E's scans
// (the index anchors a range) and YCSB F's read-modify-write (the same
// index is read and then CAS-written).
func (g *Generator) NextIndex() int {
	if g.cfg.ETC {
		// 5% of requests go uniformly to the large class (matching its
		// key share); the rest follow the Zipfian over tiny+small.
		if g.smallEnd < g.cfg.Keys && g.rng.Float64() < 0.05 {
			return g.smallEnd + g.rng.Intn(g.cfg.Keys-g.smallEnd)
		}
		return g.zip.next(g.rng)
	}
	if g.cfg.Dist == Zipfian {
		return g.zip.next(g.rng)
	}
	return g.rng.Intn(g.cfg.Keys)
}

// Next fills op with the next request. The Key and Value slices are reused
// across calls; consumers must not retain them.
func (g *Generator) Next(op *Op) {
	i := g.NextIndex()
	op.Key = g.KeyAt(i)
	if g.rng.Float64() < g.cfg.ReadRatio {
		op.Read = true
		op.Value = nil
		return
	}
	op.Read = false
	op.Value = g.ValueAt(i)
}

// splitmix is SplitMix64: a cheap, well-distributed hash for deterministic
// per-key derivations.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ---- YCSB scrambled Zipfian --------------------------------------------------

// zipfGen implements the YCSB ZipfianGenerator (Gray's method) with the
// scrambled variant: the rank drawn from the Zipfian is hashed across the
// keyspace so hot keys are spread rather than clustered at low indices.
//
// Gray's closed-form method is only valid for theta < 1 (its alpha term is
// 1/(1-theta)); for the unprecedented skew levels the paper also evaluates
// (theta >= 1, Figure 16b) it falls back to math/rand's rejection-sampling
// Zipf, which covers s > 1.
type zipfGen struct {
	n             int
	theta         float64
	alpha         float64
	zetan         float64
	zeta2         float64
	eta           float64
	halfPowTheta  float64
	scrambleSpace int
	heavy         *rand.Zipf // theta >= 1 sampler
}

// zetaCache memoises the O(n) zeta sums, which dominate generator setup for
// large keyspaces.
var zetaCache sync.Map // struct{n int; theta float64} -> float64

func zeta(n int, theta float64) float64 {
	type key struct {
		n     int
		theta float64
	}
	if v, ok := zetaCache.Load(key{n, theta}); ok {
		return v.(float64)
	}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	zetaCache.Store(key{n, theta}, sum)
	return sum
}

func newZipf(n int, theta float64, seed int64) *zipfGen {
	z := &zipfGen{
		n:             n,
		theta:         theta,
		scrambleSpace: n,
	}
	if theta >= 1 {
		s := theta
		if s <= 1 {
			s = 1.0001 // rand.Zipf requires s > 1
		}
		z.heavy = rand.NewZipf(rand.New(rand.NewSource(seed^0x5bf0)), s, 1, uint64(n-1))
		return z
	}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.halfPowTheta = 1.0 + math.Pow(0.5, theta)
	return z
}

// next draws a scrambled Zipfian rank in [0, n).
func (z *zipfGen) next(rng *rand.Rand) int {
	var rank int
	if z.heavy != nil {
		rank = int(z.heavy.Uint64())
	} else {
		u := rng.Float64()
		uz := u * z.zetan
		switch {
		case uz < 1.0:
			rank = 0
		case uz < z.halfPowTheta:
			rank = 1
		default:
			rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		}
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	// Scramble: spread the hot ranks across the keyspace.
	return int(splitmix(uint64(rank)) % uint64(z.scrambleSpace))
}
