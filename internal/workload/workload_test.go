package workload

import (
	"bytes"
	"math"
	"sort"
	"testing"
)

func TestKeyEncodingStableAndUnique(t *testing.T) {
	g, err := New(Config{Keys: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		k := string(g.KeyAt(i))
		if len(k) != DefaultKeySize {
			t.Fatalf("key size %d", len(k))
		}
		if seen[k] {
			t.Fatalf("duplicate key for index %d", i)
		}
		seen[k] = true
	}
	// Stable across calls.
	k1 := append([]byte(nil), g.KeyAt(42)...)
	_ = g.KeyAt(43)
	if !bytes.Equal(k1, g.KeyAt(42)) {
		t.Error("KeyAt not stable")
	}
}

func TestValueDeterministic(t *testing.T) {
	g, _ := New(Config{Keys: 100, ValueSize: 64, Seed: 1})
	v1 := append([]byte(nil), g.ValueAt(7)...)
	_ = g.ValueAt(8)
	if !bytes.Equal(v1, g.ValueAt(7)) {
		t.Error("ValueAt not deterministic")
	}
	if len(v1) != 64 {
		t.Errorf("value size = %d, want 64", len(v1))
	}
}

func TestReadRatio(t *testing.T) {
	for _, ratio := range []float64{0, 0.5, 0.95, 1.0} {
		g, _ := New(Config{Keys: 1000, ReadRatio: ratio, Seed: 9})
		reads := 0
		var op Op
		const n = 20000
		for i := 0; i < n; i++ {
			g.Next(&op)
			if op.Read {
				reads++
				if op.Value != nil {
					t.Fatal("read op carries a value")
				}
			} else if op.Value == nil {
				t.Fatal("write op without value")
			}
		}
		got := float64(reads) / n
		if math.Abs(got-ratio) > 0.02 {
			t.Errorf("read ratio %.2f: observed %.3f", ratio, got)
		}
	}
}

func TestUniformSpread(t *testing.T) {
	g, _ := New(Config{Keys: 100, Dist: Uniform, ReadRatio: 1, Seed: 3})
	counts := make(map[string]int)
	var op Op
	for i := 0; i < 50000; i++ {
		g.Next(&op)
		counts[string(op.Key)]++
	}
	if len(counts) != 100 {
		t.Fatalf("uniform touched %d keys, want 100", len(counts))
	}
	for k, c := range counts {
		if c < 300 || c > 700 {
			t.Errorf("key %q count %d far from uniform 500", k, c)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g, _ := New(Config{Keys: 10000, Dist: Zipfian, Skew: 0.99, ReadRatio: 1, Seed: 3})
	counts := make(map[string]int)
	var op Op
	const n = 200000
	for i := 0; i < n; i++ {
		g.Next(&op)
		counts[string(op.Key)]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	// Zipf 0.99: the hottest key draws a few percent of all requests and
	// the top-10 a large chunk.
	if float64(freqs[0])/n < 0.02 {
		t.Errorf("hottest key share %.4f too small for zipf 0.99", float64(freqs[0])/n)
	}
	top10 := 0
	for _, f := range freqs[:10] {
		top10 += f
	}
	if float64(top10)/n < 0.15 {
		t.Errorf("top-10 share %.4f too small", float64(top10)/n)
	}
}

func TestHigherSkewIsMoreConcentrated(t *testing.T) {
	share := func(skew float64) float64 {
		g, _ := New(Config{Keys: 10000, Dist: Zipfian, Skew: skew, ReadRatio: 1, Seed: 3})
		counts := make(map[string]int)
		var op Op
		const n = 100000
		for i := 0; i < n; i++ {
			g.Next(&op)
			counts[string(op.Key)]++
		}
		freqs := make([]int, 0, len(counts))
		for _, c := range counts {
			freqs = append(freqs, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
		top := 0
		for i := 0; i < 100 && i < len(freqs); i++ {
			top += freqs[i]
		}
		return float64(top) / n
	}
	s08, s12 := share(0.8), share(1.2)
	if s12 <= s08 {
		t.Errorf("skew 1.2 top-100 share %.3f not above skew 0.8 share %.3f", s12, s08)
	}
}

func TestZipfianScrambleSpreads(t *testing.T) {
	// Scrambled Zipfian: hot keys must not all be low indices.
	g, _ := New(Config{Keys: 10000, Dist: Zipfian, ReadRatio: 1, Seed: 3})
	counts := make(map[string]int)
	var op Op
	for i := 0; i < 100000; i++ {
		g.Next(&op)
		counts[string(op.Key)]++
	}
	type kv struct {
		k string
		c int
	}
	var all []kv
	for k, c := range counts {
		all = append(all, kv{k, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	lowIdx := 0
	for _, e := range all[:20] {
		idx := int(e.k[len(e.k)-1]) | int(e.k[len(e.k)-2])<<8
		if idx < 100 {
			lowIdx++
		}
	}
	if lowIdx > 10 {
		t.Errorf("%d of top-20 hot keys have low indices; scramble not working", lowIdx)
	}
}

func TestETCSizeMix(t *testing.T) {
	g, _ := New(Config{Keys: 10000, ETC: true, Seed: 3})
	tiny, small, large := 0, 0, 0
	for i := 0; i < 10000; i++ {
		switch n := len(g.ValueAt(i)); {
		case n <= 13:
			tiny++
		case n <= 300:
			small++
		default:
			large++
		}
	}
	if tiny != 4000 || small != 5500 || large != 500 {
		t.Errorf("ETC mix tiny/small/large = %d/%d/%d, want 4000/5500/500", tiny, small, large)
	}
}

func TestETCLargeClassTraffic(t *testing.T) {
	g, _ := New(Config{Keys: 10000, ETC: true, ReadRatio: 1, Seed: 3})
	largeReqs := 0
	var op Op
	const n = 100000
	for i := 0; i < n; i++ {
		g.Next(&op)
		idx := int(uint64(op.Key[len(op.Key)-1]) | uint64(op.Key[len(op.Key)-2])<<8 |
			uint64(op.Key[len(op.Key)-3])<<16)
		if idx >= 9500 {
			largeReqs++
		}
	}
	got := float64(largeReqs) / n
	if math.Abs(got-0.05) > 0.01 {
		t.Errorf("large-class request share = %.3f, want ~0.05", got)
	}
}

func TestDeterministicStreams(t *testing.T) {
	mk := func() []string {
		g, _ := New(Config{Keys: 1000, Dist: Zipfian, ReadRatio: 0.5, Seed: 77})
		var ops []string
		var op Op
		for i := 0; i < 500; i++ {
			g.Next(&op)
			ops = append(ops, string(op.Key))
		}
		return ops
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at op %d", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Keys: 0}); err == nil {
		t.Error("accepted zero keyspace")
	}
	if _, err := New(Config{Keys: 10, KeySize: 4}); err == nil {
		t.Error("accepted undersized keys")
	}
}
