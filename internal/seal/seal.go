// Package seal implements the sealed-record format the durability
// subsystem writes outside the enclave: AES-128-CTR encryption plus an
// AES-CMAC chained across records, simulating SGX sealing (state
// encrypted under an enclave-bound key before it leaves trusted memory,
// the pattern of "Securing the Storage Data Path with SGX Enclaves").
//
// A sealed record is
//
//	seq (8, LE) || epoch (8, LE) || ciphertext || CMAC (16 bytes)
//
// where the CMAC covers the previous record's MAC (the chain), the
// lineage salt, the sequence number, the epoch, and the ciphertext.
// Chaining the MACs makes reordering, splicing, and replay of records
// detectable: record n+1 verifies only against record n's
// authenticator, and the first record of a lineage verifies only
// against a chain value derived from the lineage label.
//
// The epoch is a random 64-bit value drawn once per Sealer (one sealing
// session — in Aria, one process lifetime of a durable store). It is
// XORed into the CTR counter block's salt half, so the keystream of a
// record is a function of (key, salt, epoch, seq). This is what makes
// sequence-number reuse across crash recoveries safe: when recovery
// truncates a torn tail or salvages a tampered log, the next append
// re-issues the dropped record's sequence number — but through a new
// Sealer with a fresh epoch, so the re-sealed record never shares a
// keystream with the ciphertext the host may have kept from before the
// crash (no two-time pad). The epoch travels in the clear inside the
// record (it is a nonce, not a secret) and is authenticated by the
// CMAC, so the host can neither choose it nor swap it without breaking
// the chain. Two sessions collide only if their random epochs collide
// (probability 2^-64 per pair).
//
// Like internal/seccrypto, the package is simulator-free: cycle
// accounting for sealing is the caller's responsibility (see
// sgx.Enclave.SealOut / SealIn).
package seal

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"github.com/ariakv/aria/internal/seccrypto"
)

// Overhead is the number of bytes Seal adds around a payload: the
// 8-byte sequence number, the 8-byte epoch, and the 16-byte CMAC.
const Overhead = 16 + seccrypto.MACSize

// ErrTampered reports that a sealed record failed authentication: its
// MAC did not verify against the expected chain value, which covers
// bit flips, reordering, splicing, and replay of records.
var ErrTampered = errors.New("seal: record authentication failed")

// Chain is the running authenticator state threaded through a record
// lineage: record n's MAC, which record n+1 is verified against.
type Chain [seccrypto.MACSize]byte

// Sealer seals and opens records under keys derived from the store
// seed, simulating the enclave-bound key EGETKEY would return on real
// hardware: the same seed (enclave identity) always derives the same
// keys, and a different seed cannot open the records. Each Sealer
// carries a fresh random epoch that is folded into every keystream it
// produces (see the package comment), so two Sealers never encrypt
// under the same counter blocks even when they seal the same sequence
// numbers.
type Sealer struct {
	c     *seccrypto.Cipher
	epoch uint64
}

// New derives a Sealer's encryption and MAC keys from the store seed
// and draws the session epoch.
func New(seed uint64) *Sealer {
	var m [8 + 12]byte
	binary.LittleEndian.PutUint64(m[:8], seed)
	copy(m[8:], "aria-seal-v1")
	d := sha256.Sum256(m[:])
	c, err := seccrypto.New(d[:16], d[16:])
	if err != nil {
		// Unreachable: the derived keys are always the right size.
		panic(err)
	}
	var e [8]byte
	if _, err := rand.Read(e[:]); err != nil {
		// Unreachable in practice: the platform CSPRNG never fails on
		// supported targets, and a sealer without a fresh epoch must
		// not seal anything.
		panic(err)
	}
	return &Sealer{c: c, epoch: binary.LittleEndian.Uint64(e[:])}
}

// Epoch returns the sealer's session epoch (exposed for tests that
// assert keystream separation across sessions).
func (s *Sealer) Epoch() uint64 { return s.epoch }

// ChainInit returns the initial chain value for a record lineage,
// binding the lineage label and its starting sequence number so a
// record sealed for one lineage cannot start another.
func (s *Sealer) ChainInit(label string, start uint64) Chain {
	var seq [8]byte
	binary.LittleEndian.PutUint64(seq[:], start)
	var out [seccrypto.MACSize]byte
	s.c.MAC(&out, []byte(label), seq[:])
	return out
}

// Seal encrypts payload under (seq, salt, epoch) and returns the sealed
// record together with the successor chain value. The salt partitions
// the keystream by purpose (WAL records vs snapshot records — callers
// may fold further lineage identity into it), and the sealer's epoch is
// XORed in so no other sealing session shares the counter blocks.
func (s *Sealer) Seal(seq, salt uint64, chain Chain, payload []byte) ([]byte, Chain) {
	rec := make([]byte, Overhead+len(payload))
	binary.LittleEndian.PutUint64(rec[:8], seq)
	binary.LittleEndian.PutUint64(rec[8:16], s.epoch)
	ctr := seccrypto.CounterBlock(seq, salt^s.epoch)
	s.c.CTRCrypt(&ctr, rec[16:16+len(payload)], payload)
	var saltB [8]byte
	binary.LittleEndian.PutUint64(saltB[:], salt)
	var mac [seccrypto.MACSize]byte
	s.c.MAC(&mac, chain[:], saltB[:], rec[:16+len(payload)])
	copy(rec[16+len(payload):], mac[:])
	return rec, mac
}

// Open verifies rec against the expected chain value and decrypts it,
// returning the sequence number, the payload, and the successor chain.
// The record's own (authenticated) epoch drives the keystream, so a
// sealer opens records written by any earlier session under the same
// seed. Any authentication failure — including a record too short to
// carry the seal framing — returns ErrTampered.
func (s *Sealer) Open(salt uint64, chain Chain, rec []byte) (seq uint64, payload []byte, next Chain, err error) {
	if len(rec) < Overhead {
		return 0, nil, chain, ErrTampered
	}
	body := rec[:len(rec)-seccrypto.MACSize]
	mac := rec[len(rec)-seccrypto.MACSize:]
	var saltB [8]byte
	binary.LittleEndian.PutUint64(saltB[:], salt)
	if !s.c.VerifyMAC(mac, chain[:], saltB[:], body) {
		return 0, nil, chain, ErrTampered
	}
	seq = binary.LittleEndian.Uint64(rec[:8])
	epoch := binary.LittleEndian.Uint64(rec[8:16])
	payload = make([]byte, len(body)-16)
	ctr := seccrypto.CounterBlock(seq, salt^epoch)
	s.c.CTRCrypt(&ctr, payload, body[16:])
	copy(next[:], mac)
	return seq, payload, next, nil
}
