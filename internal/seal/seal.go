// Package seal implements the sealed-record format the durability
// subsystem writes outside the enclave: AES-128-CTR encryption plus an
// AES-CMAC chained across records, simulating SGX sealing (state
// encrypted under an enclave-bound key before it leaves trusted memory,
// the pattern of "Securing the Storage Data Path with SGX Enclaves").
//
// A sealed record is
//
//	seq (8 bytes, little endian) || ciphertext || CMAC (16 bytes)
//
// where the CMAC covers the previous record's MAC (the chain), the
// lineage salt, the sequence number, and the ciphertext. Chaining the MACs makes
// reordering, splicing, and replay of records detectable: record n+1
// verifies only against record n's authenticator, and the first record
// of a lineage verifies only against a chain value derived from the
// lineage label. Sequence numbers are bound into both the MAC and the
// CTR counter block, so no two records ever share a keystream.
//
// Like internal/seccrypto, the package is simulator-free: cycle
// accounting for sealing is the caller's responsibility (see
// sgx.Enclave.SealOut / SealIn).
package seal

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"github.com/ariakv/aria/internal/seccrypto"
)

// Overhead is the number of bytes Seal adds around a payload: the
// 8-byte sequence number prefix and the 16-byte CMAC suffix.
const Overhead = 8 + seccrypto.MACSize

// ErrTampered reports that a sealed record failed authentication: its
// MAC did not verify against the expected chain value, which covers
// bit flips, reordering, splicing, and replay of records.
var ErrTampered = errors.New("seal: record authentication failed")

// Chain is the running authenticator state threaded through a record
// lineage: record n's MAC, which record n+1 is verified against.
type Chain [seccrypto.MACSize]byte

// Sealer seals and opens records under keys derived from the store
// seed, simulating the enclave-bound key EGETKEY would return on real
// hardware: the same seed (enclave identity) always derives the same
// keys, and a different seed cannot open the records.
type Sealer struct {
	c *seccrypto.Cipher
}

// New derives a Sealer's encryption and MAC keys from the store seed.
func New(seed uint64) *Sealer {
	var m [8 + 12]byte
	binary.LittleEndian.PutUint64(m[:8], seed)
	copy(m[8:], "aria-seal-v1")
	d := sha256.Sum256(m[:])
	c, err := seccrypto.New(d[:16], d[16:])
	if err != nil {
		// Unreachable: the derived keys are always the right size.
		panic(err)
	}
	return &Sealer{c: c}
}

// ChainInit returns the initial chain value for a record lineage,
// binding the lineage label and its starting sequence number so a
// record sealed for one lineage cannot start another.
func (s *Sealer) ChainInit(label string, start uint64) Chain {
	var seq [8]byte
	binary.LittleEndian.PutUint64(seq[:], start)
	var out [seccrypto.MACSize]byte
	s.c.MAC(&out, []byte(label), seq[:])
	return out
}

// Seal encrypts payload under (seq, salt) and returns the sealed record
// together with the successor chain value. The salt partitions the
// keystream by purpose (WAL records vs snapshot records), so equal
// sequence numbers in different lineages never reuse a counter block.
func (s *Sealer) Seal(seq, salt uint64, chain Chain, payload []byte) ([]byte, Chain) {
	rec := make([]byte, Overhead+len(payload))
	binary.LittleEndian.PutUint64(rec[:8], seq)
	ctr := seccrypto.CounterBlock(seq, salt)
	s.c.CTRCrypt(&ctr, rec[8:8+len(payload)], payload)
	var saltB [8]byte
	binary.LittleEndian.PutUint64(saltB[:], salt)
	var mac [seccrypto.MACSize]byte
	s.c.MAC(&mac, chain[:], saltB[:], rec[:8+len(payload)])
	copy(rec[8+len(payload):], mac[:])
	return rec, mac
}

// Open verifies rec against the expected chain value and decrypts it,
// returning the sequence number, the payload, and the successor chain.
// Any authentication failure — including a record too short to carry
// the seal framing — returns ErrTampered.
func (s *Sealer) Open(salt uint64, chain Chain, rec []byte) (seq uint64, payload []byte, next Chain, err error) {
	if len(rec) < Overhead {
		return 0, nil, chain, ErrTampered
	}
	body := rec[:len(rec)-seccrypto.MACSize]
	mac := rec[len(rec)-seccrypto.MACSize:]
	var saltB [8]byte
	binary.LittleEndian.PutUint64(saltB[:], salt)
	if !s.c.VerifyMAC(mac, chain[:], saltB[:], body) {
		return 0, nil, chain, ErrTampered
	}
	seq = binary.LittleEndian.Uint64(rec[:8])
	payload = make([]byte, len(body)-8)
	ctr := seccrypto.CounterBlock(seq, salt)
	s.c.CTRCrypt(&ctr, payload, body[8:])
	copy(next[:], mac)
	return seq, payload, next, nil
}
