package seal

import (
	"bytes"
	"errors"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	s := New(42)
	chain := s.ChainInit("test", 7)
	payloads := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 300)}
	c := chain
	var recs [][]byte
	for i, p := range payloads {
		rec, next := s.Seal(uint64(7+i), 1, c, p)
		recs = append(recs, rec)
		c = next
	}
	c = chain
	for i, rec := range recs {
		seq, p, next, err := s.Open(1, c, rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if seq != uint64(7+i) {
			t.Fatalf("record %d: seq %d, want %d", i, seq, 7+i)
		}
		if !bytes.Equal(p, payloads[i]) {
			t.Fatalf("record %d: payload mismatch", i)
		}
		c = next
	}
}

// TestCrossSessionOpen seals with one Sealer and opens with another
// under the same seed: the record's authenticated epoch must drive the
// keystream, so records survive process restarts (a fresh Sealer with a
// fresh epoch recovers them).
func TestCrossSessionOpen(t *testing.T) {
	a, b := New(42), New(42)
	chain := a.ChainInit("test", 3)
	rec, _ := a.Seal(3, 9, chain, []byte("across sessions"))
	seq, p, _, err := b.Open(9, b.ChainInit("test", 3), rec)
	if err != nil {
		t.Fatalf("cross-session open: %v", err)
	}
	if seq != 3 || string(p) != "across sessions" {
		t.Fatalf("cross-session open: seq=%d payload=%q", seq, p)
	}
}

// TestEpochSeparatesKeystream pins the two-time-pad defence: two
// sealing sessions re-using the same sequence number and salt (the
// situation crash recovery creates when it truncates a torn tail and
// re-appends) must not share a keystream. If they did, XORing the two
// ciphertexts would equal XORing the two plaintexts.
func TestEpochSeparatesKeystream(t *testing.T) {
	a, b := New(7), New(7)
	if a.Epoch() == b.Epoch() {
		t.Fatal("two sealers drew the same epoch (random source broken?)")
	}
	p1 := []byte("secret payload AAAA")
	p2 := []byte("secret payload BBBB")
	chain := a.ChainInit("test", 5)
	r1, _ := a.Seal(5, 1, chain, p1)
	r2, _ := b.Seal(5, 1, chain, p2)
	ct1 := r1[16 : 16+len(p1)]
	ct2 := r2[16 : 16+len(p2)]
	reuse := true
	for i := range p1 {
		if ct1[i]^ct2[i] != p1[i]^p2[i] {
			reuse = false
			break
		}
	}
	if reuse {
		t.Fatal("same-seq records from two sessions share a keystream (two-time pad)")
	}
}

func TestOpenRejectsFlippedBytes(t *testing.T) {
	s := New(1)
	chain := s.ChainInit("test", 0)
	rec, _ := s.Seal(0, 0, chain, []byte("payload"))
	for i := range rec {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x01
		if _, _, _, err := s.Open(0, chain, bad); !errors.Is(err, ErrTampered) {
			t.Fatalf("flip at byte %d not detected: %v", i, err)
		}
	}
}

func TestOpenRejectsWrongChainAndSeed(t *testing.T) {
	s := New(1)
	chain := s.ChainInit("test", 0)
	rec, next := s.Seal(0, 0, chain, []byte("first"))
	rec2, _ := s.Seal(1, 0, next, []byte("second"))
	// Reordering: record 2 against the initial chain.
	if _, _, _, err := s.Open(0, chain, rec2); !errors.Is(err, ErrTampered) {
		t.Fatalf("reordered record not detected: %v", err)
	}
	// A different seed (enclave identity) cannot open the record.
	other := New(2)
	if _, _, _, err := other.Open(0, other.ChainInit("test", 0), rec); !errors.Is(err, ErrTampered) {
		t.Fatalf("foreign-seed open not detected: %v", err)
	}
	// A different salt (lineage purpose) fails as well.
	if _, _, _, err := s.Open(9, chain, rec); !errors.Is(err, ErrTampered) {
		t.Fatalf("cross-salt open not detected: %v", err)
	}
}

func TestOpenRejectsShortRecord(t *testing.T) {
	s := New(1)
	chain := s.ChainInit("test", 0)
	for n := 0; n < Overhead; n++ {
		if _, _, _, err := s.Open(0, chain, make([]byte, n)); !errors.Is(err, ErrTampered) {
			t.Fatalf("short record (%d bytes) not rejected: %v", n, err)
		}
	}
}
