package seal

import (
	"bytes"
	"errors"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	s := New(42)
	chain := s.ChainInit("test", 7)
	payloads := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 300)}
	c := chain
	var recs [][]byte
	for i, p := range payloads {
		rec, next := s.Seal(uint64(7+i), 1, c, p)
		recs = append(recs, rec)
		c = next
	}
	c = chain
	for i, rec := range recs {
		seq, p, next, err := s.Open(1, c, rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if seq != uint64(7+i) {
			t.Fatalf("record %d: seq %d, want %d", i, seq, 7+i)
		}
		if !bytes.Equal(p, payloads[i]) {
			t.Fatalf("record %d: payload mismatch", i)
		}
		c = next
	}
}

func TestOpenRejectsFlippedBytes(t *testing.T) {
	s := New(1)
	chain := s.ChainInit("test", 0)
	rec, _ := s.Seal(0, 0, chain, []byte("payload"))
	for i := range rec {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x01
		if _, _, _, err := s.Open(0, chain, bad); !errors.Is(err, ErrTampered) {
			t.Fatalf("flip at byte %d not detected: %v", i, err)
		}
	}
}

func TestOpenRejectsWrongChainAndSeed(t *testing.T) {
	s := New(1)
	chain := s.ChainInit("test", 0)
	rec, next := s.Seal(0, 0, chain, []byte("first"))
	rec2, _ := s.Seal(1, 0, next, []byte("second"))
	// Reordering: record 2 against the initial chain.
	if _, _, _, err := s.Open(0, chain, rec2); !errors.Is(err, ErrTampered) {
		t.Fatalf("reordered record not detected: %v", err)
	}
	// A different seed (enclave identity) cannot open the record.
	other := New(2)
	if _, _, _, err := other.Open(0, other.ChainInit("test", 0), rec); !errors.Is(err, ErrTampered) {
		t.Fatalf("foreign-seed open not detected: %v", err)
	}
	// A different salt (lineage purpose) fails as well.
	if _, _, _, err := s.Open(9, chain, rec); !errors.Is(err, ErrTampered) {
		t.Fatalf("cross-salt open not detected: %v", err)
	}
}

func TestOpenRejectsShortRecord(t *testing.T) {
	s := New(1)
	chain := s.ChainInit("test", 0)
	for n := 0; n < Overhead; n++ {
		if _, _, _, err := s.Open(0, chain, make([]byte, n)); !errors.Is(err, ErrTampered) {
			t.Fatalf("short record (%d bytes) not rejected: %v", n, err)
		}
	}
}
