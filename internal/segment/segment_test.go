package segment

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/ariakv/aria/internal/seal"
)

// buildPairs returns n pairs with the repo's cyclic-alphabet values and
// a sprinkling of tombstones, deliberately added out of key order.
func buildPairs(n int) []Pair {
	pairs := make([]Pair, 0, n)
	for i := n - 1; i >= 0; i-- {
		key := []byte(fmt.Sprintf("key-%06d", i))
		if i%17 == 0 {
			pairs = append(pairs, Pair{Key: key, Tombstone: true})
			continue
		}
		v := make([]byte, 32)
		for j := range v {
			v[j] = byte('a' + (i+j)%26)
		}
		pairs = append(pairs, Pair{Key: key, Value: v})
	}
	return pairs
}

func readAll(t *testing.T, path string, s *seal.Sealer) (Meta, []Pair) {
	t.Helper()
	var got []Pair
	meta, err := Read(path, s, func(p Pair) error {
		cp := Pair{Key: append([]byte(nil), p.Key...), Tombstone: p.Tombstone}
		if !p.Tombstone {
			cp.Value = append([]byte(nil), p.Value...)
		}
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Read(%s): %v", filepath.Base(path), err)
	}
	return meta, got
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(7)
	pairs := buildPairs(500)
	meta, err := Write(dir, s, 42, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Pairs != 500 || meta.Covered != 42 {
		t.Fatalf("meta = %+v", meta)
	}
	rmeta, got := readAll(t, filepath.Join(dir, Name(42)), seal.New(7))
	if rmeta.Pairs != 500 || rmeta.Tombstones != meta.Tombstones {
		t.Fatalf("read meta = %+v, write meta = %+v", rmeta, meta)
	}
	if len(got) != 500 {
		t.Fatalf("read %d pairs", len(got))
	}
	// Pairs come back sorted; Write sorted its input in place.
	for i := range got {
		if !bytes.Equal(got[i].Key, pairs[i].Key) || got[i].Tombstone != pairs[i].Tombstone ||
			!bytes.Equal(got[i].Value, pairs[i].Value) {
			t.Fatalf("pair %d mismatch", i)
		}
		if i > 0 && bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
			t.Fatalf("pairs not sorted at %d", i)
		}
	}
}

func TestCompressionShrinksCorpus(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(3)
	pairs := make([]Pair, 2048)
	for i := range pairs {
		v := make([]byte, 64)
		for j := range v {
			v[j] = byte('a' + (i+j)%26)
		}
		pairs[i] = Pair{Key: []byte(fmt.Sprintf("key-%06d", i)), Value: v}
	}
	meta, err := Write(dir, s, 1, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if meta.CompBytes*2 > meta.RawBytes {
		t.Fatalf("values compressed to %d of %d raw bytes, want <= 0.5x", meta.CompBytes, meta.RawBytes)
	}
}

func TestCollectorSortsThenLoads(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(9)
	c := NewCollector(4)
	buf := []byte("zzz")
	c.Add(buf, []byte("last"), false)
	buf[0] = 'a' // Add must have copied
	c.Add([]byte("aaa"), []byte("first"), false)
	c.Add([]byte("mmm"), nil, true)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, err := c.Load(dir, s, 5); err != nil {
		t.Fatal(err)
	}
	_, got := readAll(t, filepath.Join(dir, Name(5)), s)
	want := []string{"aaa", "mmm", "zzz"}
	for i, k := range want {
		if string(got[i].Key) != k {
			t.Fatalf("pair %d key = %q, want %q", i, got[i].Key, k)
		}
	}
	if string(got[2].Value) != "last" {
		t.Fatalf("collector did not copy the key buffer: %q", got[2].Value)
	}
}

func TestReadRejectsEveryByteFlip(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(11)
	if _, err := Write(dir, s, 9, buildPairs(40)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, Name(9))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(orig) > 4096 {
		step = len(orig) / 4096
	}
	for off := 0; off < len(orig); off += step {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, rerr := Read(path, seal.New(11), nil); !errors.Is(rerr, ErrTampered) {
			t.Fatalf("flip at offset %d: got %v, want ErrTampered", off, rerr)
		}
	}
}

func TestReadRejectsEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(13)
	if _, err := Write(dir, s, 4, buildPairs(20)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, Name(4))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(orig); n++ {
		if err := os.WriteFile(path, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, rerr := Read(path, seal.New(13), nil); !errors.Is(rerr, ErrTampered) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrTampered", n, rerr)
		}
	}
}

func TestReadRejectsWrongSealer(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, seal.New(1), 2, buildPairs(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(filepath.Join(dir, Name(2)), seal.New(2), nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("wrong sealer: got %v", err)
	}
}

func TestSetRoundTripAndListing(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(21)
	if _, err := WriteSet(dir, s, 10, 77, []string{Name(5), Name(10)}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSet(dir, s, 30, 99, []string{Name(30)}); err != nil {
		t.Fatal(err)
	}
	sets, err := Sets(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || sets[0].Covered != 30 || sets[1].Covered != 10 {
		t.Fatalf("sets = %+v", sets)
	}
	covered, clock, names, err := ReadSet(sets[1].Path, seal.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if covered != 10 || clock != 77 || len(names) != 2 || names[0] != Name(5) || names[1] != Name(10) {
		t.Fatalf("ReadSet = %d %d %v", covered, clock, names)
	}
}

func TestReadSetRejectsEveryByteFlip(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(23)
	if _, err := WriteSet(dir, s, 8, 1, []string{Name(8)}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SetName(8))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(orig); off++ {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, rerr := ReadSet(path, seal.New(23)); !errors.Is(rerr, ErrTampered) {
			t.Fatalf("flip at offset %d: got %v", off, rerr)
		}
	}
}

func TestPruneKeepsReferencedGenerations(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(31)
	// Three generations: set@10 = {seg5, seg10}, set@20 = {seg5, seg20}
	// (seg5 carried forward), set@30 = {seg30}.
	for _, c := range []uint64{5, 10, 20, 30} {
		if _, err := Write(dir, s, c, buildPairs(5)); err != nil {
			t.Fatal(err)
		}
	}
	mustSet := func(covered uint64, names ...string) {
		t.Helper()
		if _, err := WriteSet(dir, s, covered, 0, names); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(10, Name(5), Name(10))
	mustSet(20, Name(5), Name(20))
	mustSet(30, Name(30))
	if err := os.WriteFile(filepath.Join(dir, Name(99)+tmpSuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Keep generations covering >= 20: set@20 and set@30 survive, and
	// set@20 still references seg5 — carried-forward members must live.
	if err := Prune(dir, s, 20); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		Name(5): true, Name(20): true, Name(30): true,
		SetName(20): true, SetName(30): true,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range entries {
		got[e.Name()] = true
	}
	for n := range want {
		if !got[n] {
			t.Errorf("pruned %s, which a surviving set references", n)
		}
	}
	for n := range got {
		if !want[n] {
			t.Errorf("left %s behind", n)
		}
	}
}

func TestPruneRefusesWhenManifestUnreadable(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(37)
	if _, err := Write(dir, s, 10, buildPairs(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSet(dir, s, 10, 0, []string{Name(10)}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SetName(10))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, s, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, Name(10))); err != nil {
		t.Fatal("prune deleted a segment while its manifest was unreadable")
	}
}

func TestIsStateFile(t *testing.T) {
	cases := map[string]bool{
		Name(1):            true,
		SetName(7):         true,
		"seg-abc.seal":     false,
		"wal-000.log":      false,
		Name(1) + ".tmp":   false,
		"snap-000.seal":    false,
		"segset-1234.seal": false, // wrong digit count
	}
	for name, want := range cases {
		if got := IsStateFile(name); got != want {
			t.Errorf("IsStateFile(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestWriteRejectsOversizeKey(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, seal.New(1), 1, []Pair{{Key: make([]byte, maxSegmentKey+1)}}); err == nil {
		t.Fatal("oversize key accepted")
	}
}

func TestEmptySegment(t *testing.T) {
	dir := t.TempDir()
	s := seal.New(41)
	if _, err := Write(dir, s, 6, nil); err != nil {
		t.Fatal(err)
	}
	meta, got := readAll(t, filepath.Join(dir, Name(6)), s)
	if meta.Pairs != 0 || len(got) != 0 {
		t.Fatalf("empty segment read back %d pairs", len(got))
	}
}
