// Package segment implements the cold tier's on-disk format (DESIGN.md
// §15): immutable, sorted, compressed, sealed segments, plus the sealed
// set manifests that name which segments constitute a recovery point.
//
// A segment is born at a checkpoint and never modified afterwards: a
// sort-then-load collector gathers the pairs to persist, sorts them by
// key, trains a pattern dictionary (internal/compress) on their values,
// and writes one sealed file — header (with the embedded dictionary),
// value-compressed pair blocks, trailer — via the same write-temp +
// fsync + rename discipline snapshots use. AES-CMAC covers the
// *compressed* bytes: compression happens inside the trust boundary,
// sealing wraps its output, so the bytes that cross into untrusted
// storage are both smaller and authenticated — there is no window where
// plaintext or unauthenticated data is exposed.
//
// Recovery state is the newest valid *set*: a sealed manifest
// (segset-<seq>.seal) listing member segments in apply order. An
// incremental checkpoint appends one segment and rewrites the manifest;
// compaction rewrites everything into a single segment and starts a new
// set. Any defect in a renamed segment or manifest — bad MAC, broken
// framing, missing trailer, wrong count — is tampering, never a crash
// artifact, and returns ErrTampered.
package segment

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/ariakv/aria/internal/compress"
	"github.com/ariakv/aria/internal/seal"
)

const (
	segPrefix = "seg-"
	setPrefix = "segset-"
	sealExt   = ".seal"
	tmpSuffix = ".tmp"

	// headerBytes frames every sealed record: length (4, LE) || ^length
	// (4), mirroring the WAL and snapshot framing.
	headerBytes    = 8
	maxRecordBytes = 1 << 26

	// saltSegment/saltSet are the keystream domains ("ariaSEG1" /
	// "ariaSSET"); each file XORs its covered sequence in, so no two
	// files share a counter block.
	saltSegment = 0x6172696153454731
	saltSet     = 0x6172696153534554

	segChainLabel = "aria-segment-v1"
	setChainLabel = "aria-segment-set-v1"

	segMagic = "ariaseg1"
	setMagic = "ariasegset1"

	// targetBlockRaw is the uncompressed payload a pair block aims for.
	// Blocks amortize the per-record seal (CMAC + CTR fixed costs) over
	// hundreds of pairs — the difference between a segment and the
	// snapshot format's record-per-pair, and most of the cold tier's
	// on-disk win for small values.
	targetBlockRaw = 32 << 10

	// maxSegmentKey bounds keys to the uint16 length prefix.
	maxSegmentKey = 1<<16 - 1

	// Entry flags.
	flagTombstone = 1 << 0
	flagRawStored = 1 << 1 // value stored uncompressed (dictionary did not help)
)

// ErrTampered reports an authentication or framing defect in a segment
// or set manifest. Published files are immutable and renamed atomically,
// so any defect means the bytes were modified.
var ErrTampered = errors.New("segment: sealed segment failed verification")

// Pair is one logical entry in a segment: a key with its (raw) value,
// or a tombstone recording a deletion that must shadow older segments.
type Pair struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

// Meta describes one written or read segment, carrying the numbers the
// caller needs for honest cost accounting and metrics.
type Meta struct {
	Covered    uint64
	Name       string
	Pairs      int
	Tombstones int
	// RawBytes is the uncompressed key+value payload; CompBytes is what
	// the values compressed to (keys are stored raw — they are the sort
	// order). DictBytes is the embedded dictionary's serialized size.
	RawBytes  int64
	CompBytes int64
	DictBytes int
	FileBytes int64
	// BlockBytes lists each sealed block record's payload size, so the
	// writer/reader charge one CTR+CMAC per block over exactly the
	// bytes that were sealed.
	BlockBytes []int
}

// Name returns the file name of a segment born at covered.
func Name(covered uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, covered, sealExt)
}

// SetName returns the file name of a set manifest covering seq.
func SetName(covered uint64) string {
	return fmt.Sprintf("%s%020d%s", setPrefix, covered, sealExt)
}

// parseName extracts the covered sequence from a prefixed file name.
func parseName(name, prefix string, covered *uint64) bool {
	if len(name) != len(prefix)+20+len(sealExt) ||
		!strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, sealExt) {
		return false
	}
	var v uint64
	for _, c := range name[len(prefix) : len(name)-len(sealExt)] {
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + uint64(c-'0')
	}
	*covered = v
	return true
}

// IsStateFile reports whether name is a segment or set-manifest file;
// the durable layer uses it to classify directory contents.
func IsStateFile(name string) bool {
	var v uint64
	return parseName(name, segPrefix, &v) || parseName(name, setPrefix, &v)
}

// Collector is the sort-then-load half of a compaction: Add gathers
// pairs in arbitrary order (copying them — callers reuse buffers), Load
// sorts, trains the dictionary, and writes the segment. At this repo's
// scales the sort runs in memory; the etl-style shape (collect
// everything, order it, then build the immutable artifact in one pass)
// is what keeps segments sorted and single-pass to write.
type Collector struct {
	pairs []Pair
}

// NewCollector returns an empty collector sized for n pairs.
func NewCollector(n int) *Collector {
	return &Collector{pairs: make([]Pair, 0, n)}
}

// Add records one pair or tombstone, copying key and value.
func (c *Collector) Add(key, value []byte, tombstone bool) {
	p := Pair{Key: append([]byte(nil), key...), Tombstone: tombstone}
	if !tombstone {
		p.Value = append([]byte(nil), value...)
	}
	c.pairs = append(c.pairs, p)
}

// Len returns the number of collected pairs.
func (c *Collector) Len() int { return len(c.pairs) }

// Load sorts the collected pairs and writes them as one segment born at
// covered. The collector must not be reused afterwards.
func (c *Collector) Load(dir string, s *seal.Sealer, covered uint64) (Meta, error) {
	return Write(dir, s, covered, c.pairs)
}

// segSalt is the keystream domain of one segment file.
func segSalt(covered uint64) uint64 { return saltSegment ^ covered }

// setSalt is the keystream domain of one set manifest.
func setSalt(covered uint64) uint64 { return saltSet ^ covered }

// Write sorts pairs by key and seals them into dir/Name(covered):
// header record carrying the trained dictionary, blocks of
// value-compressed entries, and a trailer proving completeness. The
// file is written to a temporary name, fsynced, renamed, and the
// directory fsynced, so a published segment is always whole.
func Write(dir string, s *seal.Sealer, covered uint64, pairs []Pair) (Meta, error) {
	for i := range pairs {
		if len(pairs[i].Key) > maxSegmentKey {
			return Meta{}, fmt.Errorf("segment: key of %d bytes exceeds the %d-byte framing limit", len(pairs[i].Key), maxSegmentKey)
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return bytes.Compare(pairs[i].Key, pairs[j].Key) < 0 })

	// Train on the values about to be stored; tombstones carry none.
	samples := make([][]byte, 0, len(pairs))
	for i := range pairs {
		if !pairs[i].Tombstone && len(pairs[i].Value) > 0 {
			samples = append(samples, pairs[i].Value)
		}
	}
	dict := compress.Train(samples)
	dictSer := dict.Serialize()

	// Encode blocks first so the header can declare the block count.
	meta := Meta{Covered: covered, Name: Name(covered), Pairs: len(pairs), DictBytes: len(dictSer)}
	var blocks [][]byte
	var cur []byte
	curRaw := 0
	var u2 [2]byte
	var u4 [4]byte
	flush := func() {
		if len(cur) > 0 {
			body := make([]byte, 4, 4+len(cur))
			binary.LittleEndian.PutUint32(body, uint32(curRaw))
			blocks = append(blocks, append(body, cur...))
			cur, curRaw = nil, 0
		}
	}
	for i := range pairs {
		p := &pairs[i]
		flags := byte(0)
		var comp []byte
		if p.Tombstone {
			flags |= flagTombstone
			meta.Tombstones++
		} else {
			comp = dict.Compress(nil, p.Value)
			if len(comp) >= len(p.Value) {
				flags |= flagRawStored
				comp = p.Value
			}
			meta.CompBytes += int64(len(comp))
		}
		meta.RawBytes += int64(len(p.Key) + len(p.Value))
		cur = append(cur, flags)
		binary.LittleEndian.PutUint16(u2[:], uint16(len(p.Key)))
		cur = append(cur, u2[:]...)
		cur = append(cur, p.Key...)
		if !p.Tombstone {
			binary.LittleEndian.PutUint32(u4[:], uint32(len(p.Value)))
			cur = append(cur, u4[:]...)
			binary.LittleEndian.PutUint32(u4[:], uint32(len(comp)))
			cur = append(cur, u4[:]...)
			cur = append(cur, comp...)
		}
		curRaw++
		if len(cur) >= targetBlockRaw {
			flush()
		}
	}
	flush()

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Meta{}, fmt.Errorf("segment: create dir: %w", err)
	}
	final := filepath.Join(dir, meta.Name)
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return Meta{}, fmt.Errorf("segment: create temp: %w", err)
	}
	defer os.Remove(tmp)
	chain := s.ChainInit(segChainLabel, covered)
	seq := uint64(0)
	emit := func(payload []byte) error {
		rec, next := s.Seal(seq, segSalt(covered), chain, payload)
		var hdr [headerBytes]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], ^uint32(len(rec)))
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := f.Write(rec); err != nil {
			return err
		}
		meta.FileBytes += int64(headerBytes + len(rec))
		chain = next
		seq++
		return nil
	}
	hdr := make([]byte, len(segMagic)+8+4+8+4, len(segMagic)+24+len(dictSer))
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint64(hdr[len(segMagic):], covered)
	binary.LittleEndian.PutUint32(hdr[len(segMagic)+8:], uint32(len(blocks)))
	binary.LittleEndian.PutUint64(hdr[len(segMagic)+12:], uint64(len(pairs)))
	binary.LittleEndian.PutUint32(hdr[len(segMagic)+20:], uint32(len(dictSer)))
	hdr = append(hdr, dictSer...)
	if err := emit(hdr); err != nil {
		f.Close()
		return Meta{}, fmt.Errorf("segment: write header: %w", err)
	}
	for _, b := range blocks {
		if err := emit(b); err != nil {
			f.Close()
			return Meta{}, fmt.Errorf("segment: write block: %w", err)
		}
		meta.BlockBytes = append(meta.BlockBytes, len(b))
	}
	trailer := make([]byte, 3+8)
	copy(trailer, "end")
	binary.LittleEndian.PutUint64(trailer[3:], uint64(len(pairs)))
	if err := emit(trailer); err != nil {
		f.Close()
		return Meta{}, fmt.Errorf("segment: write trailer: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return Meta{}, fmt.Errorf("segment: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return Meta{}, fmt.Errorf("segment: close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return Meta{}, fmt.Errorf("segment: publish: %w", err)
	}
	syncDir(dir)
	return meta, nil
}

// Read verifies and decodes one segment, calling fn once per pair in
// key order with the decompressed value (the Pair's slices are only
// valid during the call). Every defect returns ErrTampered; an error
// from fn aborts the read and is returned verbatim.
func Read(path string, s *seal.Sealer, fn func(Pair) error) (Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, fmt.Errorf("segment: read: %w", err)
	}
	base := filepath.Base(path)
	var declared uint64
	if !parseName(base, segPrefix, &declared) {
		return Meta{}, fmt.Errorf("%w: %s: malformed name", ErrTampered, base)
	}
	meta := Meta{Covered: declared, Name: base, FileBytes: int64(len(data))}
	chain := s.ChainInit(segChainLabel, declared)
	seq := uint64(0)
	off := int64(0)
	next := func() ([]byte, error) {
		rest := data[off:]
		if len(rest) < headerBytes {
			return nil, fmt.Errorf("%w: %s: cut short at offset %d", ErrTampered, base, off)
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		check := binary.LittleEndian.Uint32(rest[4:8])
		if check != ^length || length < seal.Overhead || length > maxRecordBytes ||
			int64(len(rest)) < headerBytes+int64(length) {
			return nil, fmt.Errorf("%w: %s: bad record framing at offset %d", ErrTampered, base, off)
		}
		rec := rest[headerBytes : headerBytes+int64(length)]
		gotSeq, payload, nc, err := s.Open(segSalt(declared), chain, rec)
		if err != nil || gotSeq != seq {
			return nil, fmt.Errorf("%w: %s: record %d failed authentication", ErrTampered, base, seq)
		}
		chain = nc
		seq++
		off += headerBytes + int64(length)
		return payload, nil
	}
	hdr, err := next()
	if err != nil {
		return Meta{}, err
	}
	if len(hdr) < len(segMagic)+24 || !strings.HasPrefix(string(hdr), segMagic) {
		return Meta{}, fmt.Errorf("%w: %s: bad header", ErrTampered, base)
	}
	covered := binary.LittleEndian.Uint64(hdr[len(segMagic):])
	blockCount := binary.LittleEndian.Uint32(hdr[len(segMagic)+8:])
	pairCount := binary.LittleEndian.Uint64(hdr[len(segMagic)+12:])
	dictLen := binary.LittleEndian.Uint32(hdr[len(segMagic)+20:])
	if covered != declared || int(dictLen) != len(hdr)-len(segMagic)-24 ||
		dictLen > compress.MaxSerializedDict {
		return Meta{}, fmt.Errorf("%w: %s: header inconsistent", ErrTampered, base)
	}
	dict, err := compress.Load(hdr[len(segMagic)+24:])
	if err != nil {
		return Meta{}, fmt.Errorf("%w: %s: embedded dictionary: %v", ErrTampered, base, err)
	}
	meta.DictBytes = int(dictLen)
	var seen uint64
	var prevKey []byte
	for b := uint32(0); b < blockCount; b++ {
		body, err := next()
		if err != nil {
			return Meta{}, err
		}
		meta.BlockBytes = append(meta.BlockBytes, len(body))
		if len(body) < 4 {
			return Meta{}, fmt.Errorf("%w: %s: short block", ErrTampered, base)
		}
		count := binary.LittleEndian.Uint32(body[:4])
		rest := body[4:]
		for i := uint32(0); i < count; i++ {
			if len(rest) < 3 {
				return Meta{}, fmt.Errorf("%w: %s: entry truncated", ErrTampered, base)
			}
			flags := rest[0]
			klen := int(binary.LittleEndian.Uint16(rest[1:3]))
			rest = rest[3:]
			if len(rest) < klen {
				return Meta{}, fmt.Errorf("%w: %s: entry key overruns block", ErrTampered, base)
			}
			p := Pair{Key: rest[:klen]}
			rest = rest[klen:]
			if prevKey != nil && bytes.Compare(prevKey, p.Key) >= 0 {
				return Meta{}, fmt.Errorf("%w: %s: keys out of order", ErrTampered, base)
			}
			prevKey = p.Key
			if flags&flagTombstone != 0 {
				p.Tombstone = true
				meta.Tombstones++
			} else {
				if len(rest) < 8 {
					return Meta{}, fmt.Errorf("%w: %s: entry lengths truncated", ErrTampered, base)
				}
				rawLen := int(binary.LittleEndian.Uint32(rest[:4]))
				compLen := int(binary.LittleEndian.Uint32(rest[4:8]))
				rest = rest[8:]
				if compLen > len(rest) || rawLen > maxRecordBytes {
					return Meta{}, fmt.Errorf("%w: %s: entry value overruns block", ErrTampered, base)
				}
				comp := rest[:compLen]
				rest = rest[compLen:]
				if flags&flagRawStored != 0 {
					if compLen != rawLen {
						return Meta{}, fmt.Errorf("%w: %s: raw-stored entry length mismatch", ErrTampered, base)
					}
					p.Value = comp
				} else {
					v, derr := dict.Decompress(comp, rawLen)
					if derr != nil {
						return Meta{}, fmt.Errorf("%w: %s: entry decompression: %v", ErrTampered, base, derr)
					}
					p.Value = v
				}
				meta.CompBytes += int64(compLen)
			}
			meta.RawBytes += int64(len(p.Key) + len(p.Value))
			meta.Pairs++
			seen++
			if fn != nil {
				if err := fn(p); err != nil {
					return Meta{}, err
				}
			}
		}
		if len(rest) != 0 {
			return Meta{}, fmt.Errorf("%w: %s: block has trailing bytes", ErrTampered, base)
		}
	}
	trailer, err := next()
	if err != nil {
		return Meta{}, err
	}
	if len(trailer) != 3+8 || string(trailer[:3]) != "end" ||
		binary.LittleEndian.Uint64(trailer[3:]) != seen || seen != pairCount ||
		off != int64(len(data)) {
		return Meta{}, fmt.Errorf("%w: %s: bad trailer", ErrTampered, base)
	}
	return meta, nil
}

// SetRef names one set manifest found on disk.
type SetRef struct {
	Covered uint64
	Path    string
}

// Sets lists the set manifests in dir, newest first.
func Sets(dir string) ([]SetRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("segment: read dir: %w", err)
	}
	var sets []SetRef
	for _, e := range entries {
		var covered uint64
		if e.Type().IsRegular() && parseName(e.Name(), setPrefix, &covered) {
			sets = append(sets, SetRef{covered, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Covered > sets[j].Covered })
	return sets, nil
}

// WriteSet seals a set manifest covering seq: the member segment file
// names in apply order (oldest first) plus an opaque 8-byte caller
// payload (aria stores its version clock there, so recovery restores it
// before replaying anything). Write-temp + rename, like every published
// artifact. Returns the bytes written, for boundary-cost accounting.
func WriteSet(dir string, s *seal.Sealer, covered, clock uint64, names []string) (int64, error) {
	body := make([]byte, len(setMagic)+8+8+4)
	copy(body, setMagic)
	binary.LittleEndian.PutUint64(body[len(setMagic):], covered)
	binary.LittleEndian.PutUint64(body[len(setMagic)+8:], clock)
	binary.LittleEndian.PutUint32(body[len(setMagic)+16:], uint32(len(names)))
	var u2 [2]byte
	for _, n := range names {
		if n != filepath.Base(n) || len(n) > maxSegmentKey {
			return 0, fmt.Errorf("segment: bad member name %q", n)
		}
		binary.LittleEndian.PutUint16(u2[:], uint16(len(n)))
		body = append(body, u2[:]...)
		body = append(body, n...)
	}
	rec, _ := s.Seal(0, setSalt(covered), s.ChainInit(setChainLabel, covered), body)
	out := make([]byte, headerBytes, headerBytes+len(rec))
	binary.LittleEndian.PutUint32(out[:4], uint32(len(rec)))
	binary.LittleEndian.PutUint32(out[4:8], ^uint32(len(rec)))
	out = append(out, rec...)
	final := filepath.Join(dir, SetName(covered))
	tmp := final + tmpSuffix
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return 0, fmt.Errorf("segment: write set temp: %w", err)
	}
	defer os.Remove(tmp)
	f, err := os.Open(tmp)
	if err == nil {
		_ = f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("segment: publish set: %w", err)
	}
	syncDir(dir)
	return int64(len(out)), nil
}

// ReadSet verifies one set manifest and returns its covered sequence,
// caller payload, and member names in apply order.
func ReadSet(path string, s *seal.Sealer) (covered, clock uint64, names []string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("segment: read set: %w", err)
	}
	base := filepath.Base(path)
	var declared uint64
	if !parseName(base, setPrefix, &declared) {
		return 0, 0, nil, fmt.Errorf("%w: %s: malformed name", ErrTampered, base)
	}
	if len(data) < headerBytes {
		return 0, 0, nil, fmt.Errorf("%w: %s: cut short", ErrTampered, base)
	}
	length := binary.LittleEndian.Uint32(data[:4])
	check := binary.LittleEndian.Uint32(data[4:8])
	if check != ^length || length < seal.Overhead || length > maxRecordBytes ||
		int64(len(data)) != int64(headerBytes)+int64(length) {
		return 0, 0, nil, fmt.Errorf("%w: %s: bad framing", ErrTampered, base)
	}
	seq, body, _, serr := s.Open(setSalt(declared), s.ChainInit(setChainLabel, declared), data[headerBytes:])
	if serr != nil || seq != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %s: failed authentication", ErrTampered, base)
	}
	if len(body) < len(setMagic)+20 || !strings.HasPrefix(string(body), setMagic) {
		return 0, 0, nil, fmt.Errorf("%w: %s: bad payload", ErrTampered, base)
	}
	covered = binary.LittleEndian.Uint64(body[len(setMagic):])
	clock = binary.LittleEndian.Uint64(body[len(setMagic)+8:])
	count := binary.LittleEndian.Uint32(body[len(setMagic)+16:])
	if covered != declared {
		return 0, 0, nil, fmt.Errorf("%w: %s: covers seq %d but name declares %d", ErrTampered, base, covered, declared)
	}
	rest := body[len(setMagic)+20:]
	names = make([]string, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 2 {
			return 0, 0, nil, fmt.Errorf("%w: %s: member name truncated", ErrTampered, base)
		}
		n := int(binary.LittleEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < n {
			return 0, 0, nil, fmt.Errorf("%w: %s: member name overruns payload", ErrTampered, base)
		}
		names = append(names, string(rest[:n]))
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %s: trailing bytes", ErrTampered, base)
	}
	return covered, clock, names, nil
}

// Prune removes set manifests older than keep, segment files no
// surviving manifest references, and stale temporaries. A generation is
// a SET, not a file: a surviving manifest protects every member it
// names, however old the member's own birth sequence is — this is what
// keeps two-generation retention meaning two recovery points rather
// than two arbitrary piles of files. If any surviving manifest cannot
// be read, Prune deletes nothing: a tampered manifest is an incident
// for recovery to classify, not for the janitor to destroy.
func Prune(dir string, s *seal.Sealer, keep uint64) error {
	sets, err := Sets(dir)
	if err != nil {
		return err
	}
	referenced := make(map[string]bool)
	for _, ref := range sets {
		if ref.Covered < keep {
			continue
		}
		_, _, names, rerr := ReadSet(ref.Path, s)
		if rerr != nil {
			return nil // conservative: keep everything for recovery to judge
		}
		for _, n := range names {
			referenced[n] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("segment: read dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		var covered uint64
		switch {
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, tmpSuffix),
			strings.HasPrefix(name, setPrefix) && strings.HasSuffix(name, tmpSuffix):
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("segment: remove stale temp: %w", err)
			}
		case parseName(name, setPrefix, &covered) && covered < keep:
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("segment: remove old set: %w", err)
			}
		case parseName(name, segPrefix, &covered) && !referenced[name]:
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("segment: remove unreferenced segment: %w", err)
			}
		}
	}
	return nil
}

// syncDir fsyncs a directory so a rename is durable; best-effort on
// platforms where directories cannot be fsynced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
