package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/ariakv/aria/internal/seal"
)

// FuzzSegmentRecover feeds arbitrary bytes to the segment reader under
// the recovery contract: Read must never panic, must return ErrTampered
// (not success) for anything that is not exactly a sealed segment, and
// for genuine segments must reproduce the written pairs — including
// after arbitrary mutation, where acceptance would be an authentication
// bypass.
func FuzzSegmentRecover(f *testing.F) {
	seedDir := f.TempDir()
	s := seal.New(171)
	pairs := []Pair{
		{Key: []byte("alpha"), Value: []byte("abcdefghijklmnopqrstuvwxyz")},
		{Key: []byte("beta"), Value: []byte("bcdefghijklmnopqrstuvwxyza")},
		{Key: []byte("gamma"), Tombstone: true},
	}
	if _, err := Write(seedDir, s, 3, pairs); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(seedDir, Name(3)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, uint64(3))
	f.Add(valid[:len(valid)/2], uint64(3))
	mut := append([]byte(nil), valid...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut, uint64(3))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte("ariaseg1 but not sealed"), uint64(1))

	f.Fuzz(func(t *testing.T, data []byte, covered uint64) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		dir := t.TempDir()
		path := filepath.Join(dir, Name(covered))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Pair
		meta, err := Read(path, seal.New(171), func(p Pair) error {
			cp := Pair{Key: append([]byte(nil), p.Key...), Tombstone: p.Tombstone}
			if !p.Tombstone {
				cp.Value = append([]byte(nil), p.Value...)
			}
			got = append(got, cp)
			return nil
		})
		if err != nil {
			return // rejected: the only acceptable outcome for junk
		}
		// Read succeeded: the bytes authenticated under the seed key, so
		// they can only be a genuinely written copy of the seed segment
		// (the sealer's session epoch travels in each record, so copies
		// from other process runs differ in bytes but not in content).
		if covered != 3 {
			t.Fatalf("reader accepted a segment renamed to covered=%d", covered)
		}
		if meta.Pairs != len(pairs) || len(got) != len(pairs) {
			t.Fatalf("accepted segment decoded %d pairs, want %d", len(got), len(pairs))
		}
		for i := range pairs {
			if !bytes.Equal(got[i].Key, pairs[i].Key) || got[i].Tombstone != pairs[i].Tombstone ||
				!bytes.Equal(got[i].Value, pairs[i].Value) {
				t.Fatalf("pair %d mismatch after accepted read", i)
			}
		}
	})
}
