package merkle

import (
	"strings"
	"testing"

	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/sgx"
)

func testKit(t *testing.T, counters, arity int) (*sgx.Enclave, *Tree) {
	t.Helper()
	enc := sgx.New(sgx.Config{EPCBytes: 16 << 20})
	cip, err := seccrypto.New(make([]byte, 16), make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(enc, cip, Config{Counters: counters, Arity: arity, InitSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return enc, tree
}

func TestGeometry(t *testing.T) {
	cases := []struct {
		counters, arity int
		wantHeight      int
		wantL0Nodes     int
	}{
		{8, 8, 1, 1},  // all counters fit one node: single level
		{9, 8, 2, 2},  // two leaf nodes, one top node
		{64, 8, 2, 8}, // 8 leaves -> 1 top
		{65, 8, 3, 9}, // 9 leaves -> 2 -> 1
		{1000, 2, 10, 500},
		{4096, 16, 3, 256},
	}
	for _, tc := range cases {
		_, tree := testKit(t, tc.counters, tc.arity)
		if got := tree.Height(); got != tc.wantHeight {
			t.Errorf("counters=%d arity=%d: height = %d, want %d", tc.counters, tc.arity, got, tc.wantHeight)
		}
		if got := tree.Nodes(0); got != tc.wantL0Nodes {
			t.Errorf("counters=%d arity=%d: L0 nodes = %d, want %d", tc.counters, tc.arity, got, tc.wantL0Nodes)
		}
		if got := tree.Nodes(tree.Height() - 1); got != 1 {
			t.Errorf("top level has %d nodes, want 1", got)
		}
		if got := tree.NodeSize(); got != tc.arity*SlotSize {
			t.Errorf("node size = %d, want %d", got, tc.arity*SlotSize)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	enc := sgx.New(sgx.Config{EPCBytes: 1 << 20})
	cip, _ := seccrypto.New(make([]byte, 16), make([]byte, 16))
	if _, err := New(enc, cip, Config{Counters: 0, Arity: 8}); err == nil {
		t.Error("accepted zero counters")
	}
	if _, err := New(enc, cip, Config{Counters: 10, Arity: 1}); err == nil {
		t.Error("accepted arity 1")
	}
}

func TestInitialTreeIsConsistent(t *testing.T) {
	for _, arity := range []int{2, 8, 16} {
		_, tree := testKit(t, 1000, arity)
		if err := tree.VerifyAll(); err != nil {
			t.Errorf("arity %d: fresh tree fails verification: %v", arity, err)
		}
	}
}

func TestCountersAreInitialised(t *testing.T) {
	enc, tree := testKit(t, 256, 8)
	zero := make([]byte, 16)
	zeros := 0
	for i := 0; i < 256; i++ {
		node, slot := tree.CounterPos(i)
		b := enc.UBytesRaw(tree.NodeAddr(0, node)+sgx.UPtr(slot*SlotSize), SlotSize)
		if string(b) == string(zero) {
			zeros++
		}
	}
	if zeros > 1 {
		t.Errorf("%d of 256 counters are zero; expected pseudorandom initialisation", zeros)
	}
}

func TestContiguousLayout(t *testing.T) {
	_, tree := testKit(t, 1000, 8)
	// Node addresses within a level must be contiguous...
	for lvl := 0; lvl < tree.Height(); lvl++ {
		for idx := 1; idx < tree.Nodes(lvl) && idx < 50; idx++ {
			gap := tree.NodeAddr(lvl, idx) - tree.NodeAddr(lvl, idx-1)
			if int(gap) != tree.NodeSize() {
				t.Fatalf("level %d: node stride %d, want %d", lvl, gap, tree.NodeSize())
			}
		}
	}
	// ...and levels must be adjacent (flat, single allocation).
	for lvl := 1; lvl < tree.Height(); lvl++ {
		prevEnd := tree.NodeAddr(lvl-1, 0) + sgx.UPtr(tree.LevelBytes(lvl-1))
		if tree.NodeAddr(lvl, 0) != prevEnd {
			t.Fatalf("level %d does not start where level %d ends", lvl, lvl-1)
		}
	}
}

func TestTamperDetectedByVerifyAll(t *testing.T) {
	enc, tree := testKit(t, 1000, 8)
	// Flip one bit of one counter in untrusted memory.
	b := enc.UBytesRaw(tree.NodeAddr(0, 3), 1)
	b[0] ^= 1
	err := tree.VerifyAll()
	if err == nil {
		t.Fatal("tampered counter not detected")
	}
	if !strings.Contains(err.Error(), "level 0") {
		t.Errorf("error does not identify tampered level: %v", err)
	}
}

func TestTamperInnerNodeDetected(t *testing.T) {
	enc, tree := testKit(t, 4096, 8)
	if tree.Height() < 3 {
		t.Fatal("tree too short for inner-node test")
	}
	b := enc.UBytesRaw(tree.NodeAddr(1, 0), 1)
	b[0] ^= 0xff
	if err := tree.VerifyAll(); err == nil {
		t.Fatal("tampered inner node not detected")
	}
}

func TestRootReplayDetected(t *testing.T) {
	enc, tree := testKit(t, 1000, 8)
	// Snapshot the whole untrusted tree, modify a counter and rebuild the
	// MAC chain (as an honest store would), then replay the snapshot.
	total := tree.TotalBytes()
	base := tree.NodeAddr(0, 0)
	snap := append([]byte(nil), enc.UBytesRaw(base, total)...)

	// Honest update: change counter 0 and fix up ancestors + root.
	cip, _ := seccrypto.New(make([]byte, 16), make([]byte, 16))
	_ = cip
	b := enc.UBytesRaw(tree.NodeAddr(0, 0), SlotSize)
	b[0] ^= 0x55
	rebuild(t, enc, tree)
	if err := tree.VerifyAll(); err != nil {
		t.Fatalf("honest update failed verification: %v", err)
	}

	// Replay attack: restore the old untrusted bytes wholesale.
	copy(enc.UBytesRaw(base, total), snap)
	if err := tree.VerifyAll(); err == nil {
		t.Fatal("replay of stale tree not detected (root should mismatch)")
	}
}

// rebuild recomputes all ancestor MACs after a direct counter edit, using
// only public accessors (this mimics what securecache eviction does).
func rebuild(t *testing.T, enc *sgx.Enclave, tree *Tree) {
	t.Helper()
	var mac [16]byte
	for lvl := 0; lvl < tree.Height()-1; lvl++ {
		for idx := 0; idx < tree.Nodes(lvl); idx++ {
			data := enc.UBytesRaw(tree.NodeAddr(lvl, idx), tree.NodeSize())
			tree.NodeMAC(&mac, data, lvl, idx)
			pidx, slot := tree.ParentOf(idx)
			dst := enc.UBytesRaw(tree.NodeAddr(lvl+1, pidx)+sgx.UPtr(slot*SlotSize), SlotSize)
			copy(dst, mac[:])
		}
	}
	top := tree.Height() - 1
	data := enc.UBytesRaw(tree.NodeAddr(top, 0), tree.NodeSize())
	tree.NodeMAC(&mac, data, top, 0)
	tree.SetRoot(&mac)
}

func TestNodeMACPositional(t *testing.T) {
	_, tree := testKit(t, 1000, 8)
	data := make([]byte, tree.NodeSize())
	var m1, m2, m3 [16]byte
	tree.NodeMAC(&m1, data, 0, 0)
	tree.NodeMAC(&m2, data, 0, 1)
	tree.NodeMAC(&m3, data, 1, 0)
	if m1 == m2 {
		t.Error("identical MAC for different node indexes (transplant possible)")
	}
	if m1 == m3 {
		t.Error("identical MAC for different levels (transplant possible)")
	}
}

func TestNodeMACTreeSeparation(t *testing.T) {
	enc := sgx.New(sgx.Config{EPCBytes: 16 << 20})
	cip, _ := seccrypto.New(make([]byte, 16), make([]byte, 16))
	t1, _ := New(enc, cip, Config{Counters: 100, Arity: 8, TreeID: 0})
	t2, _ := New(enc, cip, Config{Counters: 100, Arity: 8, TreeID: 1})
	data := make([]byte, t1.NodeSize())
	var m1, m2 [16]byte
	t1.NodeMAC(&m1, data, 0, 0)
	t2.NodeMAC(&m2, data, 0, 0)
	if m1 == m2 {
		t.Error("identical MAC across trees (cross-tree transplant possible)")
	}
}

func TestCounterPosRoundTrip(t *testing.T) {
	_, tree := testKit(t, 1000, 8)
	for ctr := 0; ctr < 1000; ctr += 37 {
		node, slot := tree.CounterPos(ctr)
		if node*8+slot != ctr {
			t.Errorf("CounterPos(%d) = (%d,%d), inconsistent", ctr, node, slot)
		}
		if slot >= tree.Arity() {
			t.Errorf("CounterPos(%d) slot %d >= arity", ctr, slot)
		}
	}
}

func TestChargesAccrue(t *testing.T) {
	enc, tree := testKit(t, 1000, 8)
	enc.ResetStats()
	var mac [16]byte
	tree.NodeMAC(&mac, make([]byte, tree.NodeSize()), 0, 0)
	st := enc.Stats()
	if st.MACs != 1 {
		t.Errorf("MAC ops = %d, want 1", st.MACs)
	}
	if st.MACBytes != uint64(tree.NodeSize()+16) {
		t.Errorf("MAC bytes = %d, want %d", st.MACBytes, tree.NodeSize()+16)
	}
}

func TestRootMatchesCharge(t *testing.T) {
	enc, tree := testKit(t, 100, 8)
	enc.ResetStats()
	var mac [16]byte
	_ = tree.RootMatches(&mac)
	if enc.Stats().EnclaveLines == 0 {
		t.Error("RootMatches did not charge an EPC access")
	}
}
