// Package merkle implements Aria's flat N-ary Merkle tree over encryption
// counters (paper §IV-D), laid out in one contiguous untrusted allocation
// (§V-A) so that node addresses are pure offset arithmetic and traversals
// benefit from hardware prefetching.
//
// Level 0 holds the 16-byte encryption counters, grouped into nodes of
// `arity` counters. Every higher level holds one 16-byte MAC per child node,
// again grouped `arity` to a node, so a node at any level is exactly
// arity*16 bytes — the input length of the MAC function, which is the
// "flattening" knob Figure 15 sweeps. The MAC of the single top node (the
// root MAC) lives in the EPC.
//
// MAC inputs are domain-separated with (treeID, level, index) so a node can
// never be transplanted to a different position or tree, and trees can be
// added at runtime for counter-area expansion (§V-C) without sharing state.
package merkle

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/ariakv/aria/internal/seccrypto"
	"github.com/ariakv/aria/internal/sgx"
)

// SlotSize is the size of one counter or one MAC inside a node.
const SlotSize = 16

// ErrIntegrity reports a Merkle verification failure, i.e. a detected
// attack on untrusted security metadata.
var ErrIntegrity = errors.New("merkle: integrity verification failed (replay or tamper attack detected)")

type level struct {
	off   sgx.UPtr // offset of the level inside the contiguous allocation
	nodes int
}

// Tree is one flat Merkle tree protecting a counter area.
type Tree struct {
	enc   *sgx.Enclave
	cip   *seccrypto.Cipher
	id    uint32
	arity int

	counters int // leaf counter capacity
	nodeSize int
	levels   []level // levels[0] = counter blocks, levels[len-1] = top (1 node)
	base     sgx.UPtr
	total    int

	rootE sgx.EPtr // 16-byte root MAC in the EPC
}

// Config parameterises a tree.
type Config struct {
	// Counters is the leaf capacity (one counter per KV pair).
	Counters int
	// Arity is the branch factor: counters (or child MACs) per node.
	Arity int
	// TreeID domain-separates MACs between trees of one store.
	TreeID uint32
	// InitSeed seeds the deterministic "random" counter initialisation.
	InitSeed uint64
}

// New allocates and initialises a consistent tree: counters get pseudorandom
// initial values (paper §IV-B: "assign a random value to each counter
// first") and MACs are built bottom-up until the root, all inside the
// enclave. Initialisation cost is charged to the enclave clock if it is
// measuring.
func New(enc *sgx.Enclave, cip *seccrypto.Cipher, cfg Config) (*Tree, error) {
	if cfg.Counters <= 0 {
		return nil, fmt.Errorf("merkle: counter capacity %d must be positive", cfg.Counters)
	}
	if cfg.Arity < 2 {
		return nil, fmt.Errorf("merkle: arity %d must be >= 2", cfg.Arity)
	}
	t := &Tree{
		enc:      enc,
		cip:      cip,
		id:       cfg.TreeID,
		arity:    cfg.Arity,
		counters: cfg.Counters,
		nodeSize: cfg.Arity * SlotSize,
	}
	// Compute the level geometry.
	nodes := (cfg.Counters + cfg.Arity - 1) / cfg.Arity
	off := 0
	for {
		t.levels = append(t.levels, level{off: sgx.UPtr(off), nodes: nodes})
		off += nodes * t.nodeSize
		if nodes == 1 {
			break
		}
		nodes = (nodes + cfg.Arity - 1) / cfg.Arity
	}
	t.total = off
	t.base = enc.UAlloc(off, sgx.CacheLine)
	for i := range t.levels {
		t.levels[i].off += t.base
	}
	t.rootE = enc.EAlloc(SlotSize, SlotSize)
	t.initialize(cfg.InitSeed)
	return t, nil
}

// initialize fills counters with a deterministic keystream and builds all
// MAC levels bottom-up.
func (t *Tree) initialize(seed uint64) {
	// Counter initialisation: xorshift64* keystream, written level-0 wide.
	s := seed | 1
	l0 := t.levels[0]
	buf := t.enc.UBytesRaw(l0.off, l0.nodes*t.nodeSize)
	for i := 0; i+8 <= len(buf); i += 8 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		binary.LittleEndian.PutUint64(buf[i:], s*0x2545F4914F6CDD1D)
	}
	t.enc.UTouch(l0.off, len(buf))
	// Build MAC levels bottom-up.
	var mac [16]byte
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		li := t.levels[lvl]
		for idx := 0; idx < li.nodes; idx++ {
			data := t.enc.UBytesRaw(t.NodeAddr(lvl, idx), t.nodeSize)
			t.macOf(&mac, data, lvl, idx)
			pOff, slot := t.parentMACAddr(lvl, idx)
			copy(t.enc.UBytesRaw(pOff, SlotSize), mac[:])
			_ = slot
		}
		t.enc.UTouch(li.off, li.nodes*t.nodeSize)
	}
	// Root MAC over the single top node.
	top := len(t.levels) - 1
	data := t.enc.UBytesRaw(t.NodeAddr(top, 0), t.nodeSize)
	t.macOf(&mac, data, top, 0)
	copy(t.enc.EBytes(t.rootE, SlotSize), mac[:])
}

// ID returns the tree's identifier.
func (t *Tree) ID() uint32 { return t.id }

// Arity returns the branch factor.
func (t *Tree) Arity() int { return t.arity }

// NodeSize returns the node (and MAC-input) size in bytes.
func (t *Tree) NodeSize() int { return t.nodeSize }

// Height returns the number of node levels (level 0 = counters).
func (t *Tree) Height() int { return len(t.levels) }

// Counters returns the leaf counter capacity.
func (t *Tree) Counters() int { return t.counters }

// Nodes returns the node count at a level.
func (t *Tree) Nodes(lvl int) int { return t.levels[lvl].nodes }

// LevelBytes returns the total size of a level in bytes.
func (t *Tree) LevelBytes(lvl int) int { return t.levels[lvl].nodes * t.nodeSize }

// TotalBytes returns the untrusted footprint of the whole tree.
func (t *Tree) TotalBytes() int { return t.total }

// NodeAddr returns the untrusted address of node (lvl, idx).
func (t *Tree) NodeAddr(lvl, idx int) sgx.UPtr {
	return t.levels[lvl].off + sgx.UPtr(idx*t.nodeSize)
}

// ParentOf returns the parent node index and the child's MAC slot within it.
func (t *Tree) ParentOf(idx int) (pidx, slot int) {
	return idx / t.arity, idx % t.arity
}

// parentMACAddr returns the untrusted address of the MAC slot covering node
// (lvl, idx).
func (t *Tree) parentMACAddr(lvl, idx int) (sgx.UPtr, int) {
	pidx, slot := t.ParentOf(idx)
	return t.NodeAddr(lvl+1, pidx) + sgx.UPtr(slot*SlotSize), slot
}

// CounterPos maps a counter index to its leaf node and slot.
func (t *Tree) CounterPos(ctr int) (nodeIdx, slot int) {
	return ctr / t.arity, ctr % t.arity
}

// macOf computes the positional MAC of node data without charging cycles.
func (t *Tree) macOf(out *[16]byte, data []byte, lvl, idx int) {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], t.id)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(lvl))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(idx))
	t.cip.MAC(out, data, hdr[:])
}

// NodeMAC computes the positional MAC of node data, charging the enclave
// for one CMAC over nodeSize+16 bytes.
func (t *Tree) NodeMAC(out *[16]byte, data []byte, lvl, idx int) {
	t.enc.ChargeMAC(len(data) + 16)
	t.macOf(out, data, lvl, idx)
}

// RootMatches compares mac with the EPC-resident root, charging one EPC
// access.
func (t *Tree) RootMatches(mac *[16]byte) bool {
	stored := t.enc.EBytes(t.rootE, SlotSize)
	same := true
	for i, b := range stored {
		if mac[i] != b {
			same = false
		}
	}
	return same
}

// SetRoot replaces the EPC-resident root MAC.
func (t *Tree) SetRoot(mac *[16]byte) {
	copy(t.enc.EBytes(t.rootE, SlotSize), mac[:])
}

// VerifyAll re-verifies every node of the tree against its parent and the
// root, reading untrusted memory directly. It is an offline audit used by
// tests and by recovery tooling; it charges no cycles.
func (t *Tree) VerifyAll() error {
	var mac [16]byte
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		for idx := 0; idx < t.levels[lvl].nodes; idx++ {
			data := t.enc.UBytesRaw(t.NodeAddr(lvl, idx), t.nodeSize)
			t.macOf(&mac, data, lvl, idx)
			pAddr, _ := t.parentMACAddr(lvl, idx)
			stored := t.enc.UBytesRaw(pAddr, SlotSize)
			if string(stored) != string(mac[:]) {
				return fmt.Errorf("%w: node (level %d, index %d)", ErrIntegrity, lvl, idx)
			}
		}
	}
	top := len(t.levels) - 1
	data := t.enc.UBytesRaw(t.NodeAddr(top, 0), t.nodeSize)
	t.macOf(&mac, data, top, 0)
	stored := t.enc.EBytesRaw(t.rootE, SlotSize)
	if string(stored) != string(mac[:]) {
		return fmt.Errorf("%w: root", ErrIntegrity)
	}
	return nil
}
