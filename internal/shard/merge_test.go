package shard

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
)

// fakeShard is an ordered in-memory map with Ranger.Scan semantics,
// including the only-valid-during-the-call slice contract (it reuses one
// buffer across callbacks so aliasing bugs in Merge surface immediately).
type fakeShard struct {
	keys   []string
	vals   map[string]string
	scans  int // bounded scans issued (merge refills)
	failAt string
}

func newFakeShard(pairs map[string]string) *fakeShard {
	f := &fakeShard{vals: pairs}
	for k := range pairs {
		f.keys = append(f.keys, k)
	}
	sort.Strings(f.keys)
	return f
}

var errShardBroken = errors.New("shard scan failed")

func (f *fakeShard) scan(start, end []byte, fn func(k, v []byte) bool) error {
	f.scans++
	buf := make([]byte, 0, 64)
	for _, k := range f.keys {
		if start != nil && k < string(start) {
			continue
		}
		if end != nil && k >= string(end) {
			break
		}
		if f.failAt != "" && k >= f.failAt {
			return errShardBroken
		}
		buf = append(buf[:0], k...)
		if !fn(buf, []byte(f.vals[k])) {
			return nil
		}
	}
	return nil
}

// buildShards partitions count keys across n fake shards with the real
// router, returning the shards and the globally sorted key list.
func buildShards(n, count int) ([]*fakeShard, []string) {
	r := NewRouter(n)
	parts := make([]map[string]string, n)
	for i := range parts {
		parts[i] = make(map[string]string)
	}
	var all []string
	for i := 0; i < count; i++ {
		k := fmt.Sprintf("mk-%05d", i)
		parts[r.Pick([]byte(k))][k] = "v" + k
		all = append(all, k)
	}
	sort.Strings(all)
	shards := make([]*fakeShard, n)
	for i := range shards {
		shards[i] = newFakeShard(parts[i])
	}
	return shards, all
}

func scanFuncs(shards []*fakeShard) []ScanFunc {
	out := make([]ScanFunc, len(shards))
	for i, s := range shards {
		out[i] = s.scan
	}
	return out
}

func TestMergeGlobalOrderNoDuplicates(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1, 3, 64} {
			shards, want := buildShards(n, 500)
			var got []string
			prev := ""
			err := Merge(scanFuncs(shards), nil, nil, batch, func(k, v []byte) bool {
				ks := string(k)
				if prev != "" && ks <= prev {
					t.Fatalf("n=%d batch=%d: order violated: %q after %q", n, batch, ks, prev)
				}
				if string(v) != "v"+ks {
					t.Fatalf("n=%d batch=%d: key %q got value %q", n, batch, ks, v)
				}
				prev = ks
				got = append(got, ks)
				return true
			})
			if err != nil {
				t.Fatalf("n=%d batch=%d: %v", n, batch, err)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d batch=%d: delivered %d keys, want %d", n, batch, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d batch=%d: key %d = %q, want %q", n, batch, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMergeRangeBounds(t *testing.T) {
	shards, all := buildShards(4, 300)
	start, end := []byte(all[50]), []byte(all[120])
	var got []string
	if err := Merge(scanFuncs(shards), start, end, 7, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := all[50:120] // start inclusive, end exclusive
	if len(got) != len(want) || got[0] != want[0] || got[len(got)-1] != want[len(want)-1] {
		t.Fatalf("range merge delivered %d keys [%s..%s], want %d [%s..%s]",
			len(got), got[0], got[len(got)-1], len(want), want[0], want[len(want)-1])
	}
}

func TestMergeEarlyStop(t *testing.T) {
	shards, _ := buildShards(4, 300)
	seen := 0
	if err := Merge(scanFuncs(shards), nil, nil, 8, func(k, v []byte) bool {
		seen++
		return seen < 25
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 25 {
		t.Errorf("early stop delivered %d pairs, want 25", seen)
	}
	// After the stop, no shard may be scanned again: count total bounded
	// scans and re-merge to confirm no state leaked (fresh cursors).
	total := 0
	for _, s := range shards {
		total += s.scans
	}
	if total > 4+4 { // initial fill (4) plus at most one refill each
		t.Errorf("early-stopped merge issued %d bounded scans", total)
	}
}

func TestMergeShardErrorPropagates(t *testing.T) {
	shards, all := buildShards(4, 200)
	// Break one shard partway through its own keyspace.
	victim := shards[2]
	if len(victim.keys) < 4 {
		t.Fatal("victim shard too small for the test")
	}
	victim.failAt = victim.keys[len(victim.keys)/2]

	prev := ""
	delivered := 0
	err := Merge(scanFuncs(shards), nil, nil, 5, func(k, v []byte) bool {
		ks := string(k)
		if prev != "" && ks <= prev {
			t.Fatalf("order violated before error: %q after %q", ks, prev)
		}
		prev = ks
		delivered++
		return true
	})
	if !errors.Is(err, errShardBroken) {
		t.Fatalf("merge error = %v, want errShardBroken", err)
	}
	if delivered == 0 || delivered >= len(all) {
		t.Errorf("delivered %d of %d pairs before the error", delivered, len(all))
	}
}

func TestMergeSingleShardPassThrough(t *testing.T) {
	// With one shard the merge must not copy: the callback sees the
	// shard's own (reused) buffer, same as scanning the store directly.
	shards, _ := buildShards(1, 50)
	var first []byte
	aliased := false
	if err := Merge(scanFuncs(shards), nil, nil, 0, func(k, v []byte) bool {
		if first == nil {
			first = k
		} else if &first[0] == &k[0] {
			aliased = true
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !aliased {
		t.Error("single-shard merge copied pairs instead of passing through")
	}
	if shards[0].scans != 1 {
		t.Errorf("single-shard merge issued %d scans, want 1", shards[0].scans)
	}
}

func TestMergeTieBreaksByShardIndex(t *testing.T) {
	// Partitioned keyspaces never tie, but the merge must still be
	// deterministic and lossless if streams overlap.
	a := newFakeShard(map[string]string{"dup": "from-a", "a1": "va"})
	b := newFakeShard(map[string]string{"dup": "from-b", "z1": "vz"})
	var got []string
	if err := Merge([]ScanFunc{a.scan, b.scan}, nil, nil, 4, func(k, v []byte) bool {
		got = append(got, string(k)+"="+string(v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1=va", "dup=from-a", "dup=from-b", "z1=vz"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMergeCopiesSurviveCallback(t *testing.T) {
	// Multi-shard merges buffer pairs; the slices handed to the callback
	// must not be clobbered by the shard's buffer reuse mid-batch.
	shards, _ := buildShards(4, 100)
	var keys [][]byte
	if err := Merge(scanFuncs(shards), nil, nil, 16, func(k, v []byte) bool {
		keys = append(keys, k) // retain without copying: merge owns these
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("retained key %d (%q) clobbered (prev %q)", i, keys[i], keys[i-1])
		}
	}
}
