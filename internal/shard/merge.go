package shard

import "bytes"

// ScanFunc is the shape of one shard's ordered range scan: visit every
// pair with start <= key < end (nil end = unbounded) in key order,
// stopping early when fn returns false. The slices passed to fn are only
// valid during the call — exactly the contract of aria.Ranger.Scan.
type ScanFunc func(start, end []byte, fn func(key, value []byte) bool) error

// DefaultBatch is the number of pairs Merge pulls from a shard per
// refill. Larger batches amortize the B+-tree re-descent each refill
// pays; smaller ones bound how long a shard's lock is held while other
// shards' operations wait.
const DefaultBatch = 64

// pair is one buffered KV copy. Merge owns these copies, so the slices it
// hands to the caller stay valid for the duration of the callback even
// though the underlying shard scan has already moved on.
type pair struct {
	key, value []byte
}

// cursor tracks one shard's progress through the merge.
type cursor struct {
	scan  ScanFunc
	buf   []pair // pairs fetched but not yet delivered
	next  int    // index of the head pair in buf
	start []byte // where the next refill begins (inclusive)
	done  bool   // shard exhausted its range
}

// refill pulls up to batch pairs from the shard, starting at c.start.
// Each refill is one bounded scan: the shard's lock (taken inside
// c.scan) is held only for the duration of the batch, not the whole
// merge.
func (c *cursor) refill(end []byte, batch int) error {
	if c.done {
		return nil
	}
	c.buf = c.buf[:0]
	c.next = 0
	err := c.scan(c.start, end, func(k, v []byte) bool {
		c.buf = append(c.buf, pair{
			key:   append([]byte(nil), k...),
			value: append([]byte(nil), v...),
		})
		return len(c.buf) < batch
	})
	if err != nil {
		return err
	}
	if len(c.buf) < batch {
		// The scan ended before filling the batch: range exhausted.
		c.done = true
	} else {
		// More may follow; resume just past the last delivered key.
		// Appending 0x00 yields the immediate successor in bytewise
		// order, so the next (inclusive) scan cannot re-deliver it.
		last := c.buf[len(c.buf)-1].key
		c.start = append(append(c.start[:0], last...), 0)
	}
	return nil
}

func (c *cursor) head() *pair {
	if c.next >= len(c.buf) {
		return nil
	}
	return &c.buf[c.next]
}

// Merge runs a k-way merge over the per-shard ordered scans, delivering
// every pair with start <= key < end in global key order, stopping early
// when fn returns false. batch <= 0 selects DefaultBatch.
//
// Shards of a partitioned keyspace hold disjoint keys, so no key is ever
// delivered twice; should two streams nevertheless tie, the lower shard
// index wins and both pairs are delivered (Merge never silently drops
// data). A scan error from any shard aborts the merge immediately with
// that error; pairs already delivered stay delivered, matching the
// mid-stream error semantics of a single store's Scan.
func Merge(scans []ScanFunc, start, end []byte, batch int, fn func(key, value []byte) bool) error {
	if batch <= 0 {
		batch = DefaultBatch
	}
	if len(scans) == 1 {
		// One shard needs no merge machinery — and no copies.
		return scans[0](start, end, fn)
	}
	cursors := make([]*cursor, len(scans))
	for i, sc := range scans {
		c := &cursor{scan: sc, start: append([]byte(nil), start...)}
		if err := c.refill(end, batch); err != nil {
			return err
		}
		cursors[i] = c
	}
	for {
		// Select the smallest head across shards. Shard counts are
		// small (typically <= 64), so a linear pass beats heap
		// bookkeeping and keeps ties deterministic: lowest index wins.
		min := -1
		for i, c := range cursors {
			h := c.head()
			if h == nil {
				continue
			}
			if min < 0 || bytes.Compare(h.key, cursors[min].head().key) < 0 {
				min = i
			}
		}
		if min < 0 {
			return nil // every shard exhausted
		}
		c := cursors[min]
		h := c.head()
		if !fn(h.key, h.value) {
			return nil // caller stopped the scan
		}
		c.next++
		if c.head() == nil && !c.done {
			if err := c.refill(end, batch); err != nil {
				return err
			}
		}
	}
}
