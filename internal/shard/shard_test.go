package shard

import (
	"fmt"
	"testing"
)

func TestRouterDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		r := NewRouter(n)
		for i := 0; i < 1000; i++ {
			key := []byte(fmt.Sprintf("key-%06d", i))
			s := r.Pick(key)
			if s < 0 || s >= n {
				t.Fatalf("n=%d: Pick out of range: %d", n, s)
			}
			if again := r.Pick(key); again != s {
				t.Fatalf("n=%d: Pick not deterministic: %d then %d", n, s, again)
			}
		}
	}
}

func TestRouterBalance(t *testing.T) {
	const n, keys = 8, 100_000
	r := NewRouter(n)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Pick([]byte(fmt.Sprintf("balance-key-%08d", i)))]++
	}
	// FNV over distinct keys should land within ±20% of the fair share.
	fair := keys / n
	for i, c := range counts {
		if c < fair*8/10 || c > fair*12/10 {
			t.Errorf("shard %d holds %d keys, fair share %d (counts %v)", i, c, fair, counts)
		}
	}
}

func TestRouterDegenerate(t *testing.T) {
	r := NewRouter(0)
	if r.Shards() != 1 {
		t.Errorf("Shards() = %d, want 1", r.Shards())
	}
	if r.Pick([]byte("anything")) != 0 {
		t.Error("single-shard router must route everything to 0")
	}
	var zero Router
	if zero.Pick([]byte("k")) != 0 || zero.Shards() != 1 {
		t.Error("zero-value router must behave as one shard")
	}
}

func TestSplitBudgetSumsExactly(t *testing.T) {
	for _, tc := range []struct{ total, n int }{
		{100, 4}, {101, 4}, {103, 4}, {7, 8}, {91 << 20, 3}, {1, 1},
	} {
		parts := SplitBudget(tc.total, tc.n)
		if len(parts) != tc.n {
			t.Fatalf("SplitBudget(%d,%d) returned %d parts", tc.total, tc.n, len(parts))
		}
		sum := 0
		for _, p := range parts {
			sum += p
		}
		if sum != tc.total {
			t.Errorf("SplitBudget(%d,%d) sums to %d", tc.total, tc.n, sum)
		}
		// Fairness: no two shares differ by more than one byte.
		for _, p := range parts {
			if p < parts[0]-1 || p > parts[0]+1 {
				t.Errorf("SplitBudget(%d,%d) unfair: %v", tc.total, tc.n, parts)
			}
		}
	}
}

func TestSplitBudgetSentinels(t *testing.T) {
	// 0 ("use default") and negative ("disabled") budgets must reach every
	// shard unchanged, not divided into meaninglessness.
	for _, total := range []int{0, -1} {
		for _, p := range SplitBudget(total, 4) {
			if p != total {
				t.Errorf("SplitBudget(%d,4) altered sentinel: got %d", total, p)
			}
		}
	}
}

func TestSplitKeys(t *testing.T) {
	if got := SplitKeys(1000, 4); got != 250 {
		t.Errorf("SplitKeys(1000,4) = %d", got)
	}
	if got := SplitKeys(1001, 4); got != 251 {
		t.Errorf("SplitKeys(1001,4) = %d, want rounded up", got)
	}
	if got := SplitKeys(2, 8); got != 1 {
		t.Errorf("SplitKeys(2,8) = %d", got)
	}
	if got := SplitKeys(0, 4); got != 0 {
		t.Errorf("SplitKeys sentinel altered: %d", got)
	}
}
