// Package shard partitions a keyspace across N independent store
// instances. It is the machinery behind aria.Options.Shards: each shard is
// a complete single-enclave Aria store with a 1/N slice of the EPC budget
// (the paper's multi-tenant split, §VI-D5), and this package supplies the
// pieces that are store-agnostic — the deterministic key router, the
// budget splitter, and the k-way merge that turns N per-shard ordered
// scans into one globally ordered stream.
//
// The package deliberately knows nothing about the aria root package (the
// dependency points the other way); everything here operates on keys,
// byte budgets, and scan callbacks.
package shard

import "math/bits"

// fnv-1a 64-bit, inlined rather than importing hash/fnv: the router is on
// the per-operation fast path and must not allocate.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Router deterministically assigns keys to one of N shards. The zero
// value routes everything to shard 0.
type Router struct {
	n int
}

// NewRouter returns a router over n shards (n < 1 is treated as 1).
func NewRouter(n int) Router {
	if n < 1 {
		n = 1
	}
	return Router{n: n}
}

// Shards returns the shard count.
func (r Router) Shards() int {
	if r.n < 1 {
		return 1
	}
	return r.n
}

// Pick returns the shard index for key. The mapping depends only on the
// key bytes and the shard count, so it is stable across processes and
// restarts — a requirement for any future persistent or distributed
// deployment of the same partitioning.
func (r Router) Pick(key []byte) int {
	if r.n <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	// FNV-1a's high bits avalanche poorly on short, similar keys, and the
	// multiply-shift reduction below consumes exactly those bits — so run
	// the 64-bit murmur3 finalizer first to spread the entropy.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	// Multiply-shift reduction avoids the modulo bias of h % n and is
	// cheaper than a division.
	hi, _ := bits.Mul64(h, uint64(r.n))
	return int(hi)
}

// SplitBudget divides a byte budget fairly across n shards: every shard
// gets total/n and the first total%n shards get one extra byte, so the
// slices always sum to the original budget. Non-positive budgets are
// sentinels (0 = "use the default", negative = "disabled") and are passed
// through to every shard unchanged.
func SplitBudget(total, n int) []int {
	if n < 1 {
		n = 1
	}
	out := make([]int, n)
	if total <= 0 {
		for i := range out {
			out[i] = total
		}
		return out
	}
	each, extra := total/n, total%n
	for i := range out {
		out[i] = each
		if i < extra {
			out[i]++
		}
	}
	return out
}

// SplitKeys divides an expected-key count across n shards, rounding up so
// each shard's index and counter area are sized for its fair share plus
// hash-routing slack.
func SplitKeys(total, n int) int {
	if n < 1 {
		n = 1
	}
	if total <= 0 {
		return total
	}
	per := (total + n - 1) / n
	if per < 1 {
		per = 1
	}
	return per
}
