package sgx

import (
	"os"
	"strconv"
)

// CostModel prices every hardware event the simulator tracks, in CPU cycles.
//
// The constants default to the numbers the Aria paper itself cites for the
// i7-7700 / SGX v2.6 platform: an EPC hit costs on the order of 200 cycles,
// a secure page swap about 40K cycles, and an enclave edge call (ECALL or
// OCALL) 8K-14K cycles. Crypto costs follow AES-NI throughput with the fixed
// per-call overhead of the SGX SDK primitives.
//
// Relative performance between the compared designs is governed by *event
// counts* (MAC computations, page swaps, edge calls, bytes moved), so the
// reproduced curves keep the paper's shape even though the absolute cycle
// prices are approximations.
type CostModel struct {
	// EnclaveLineCycles is charged per 64-byte cache line touched inside
	// the EPC. It models the Memory Encryption Engine overhead on the
	// path between the LLC and enclave memory.
	EnclaveLineCycles uint64

	// UntrustedLineCycles is charged per 64-byte cache line touched in
	// ordinary untrusted DRAM.
	UntrustedLineCycles uint64

	// PageSwapCycles is the cost of one hardware secure-paging event:
	// evicting one EPC page (encrypt, integrity-tree update, OS context
	// switch) and loading its replacement (decrypt, verify).
	PageSwapCycles uint64

	// EcallCycles and OcallCycles price crossing the enclave boundary.
	EcallCycles uint64
	OcallCycles uint64

	// MACFixedCycles + n*MACByteCycles is the cost of one AES-CMAC over n
	// bytes computed inside the enclave (sgx_rijndael128_cmac).
	MACFixedCycles uint64
	MACByteCycles  uint64

	// CTRFixedCycles + n*CTRByteCycles is the cost of one AES-CTR
	// encryption or decryption over n bytes (sgx_aes_ctr_encrypt).
	CTRFixedCycles uint64
	CTRByteCycles  uint64

	// HashCycles is the cost of one non-cryptographic hash (bucket hash,
	// key hint).
	HashCycles uint64

	// CompressFixedCycles + n*CompressByteCycles is the cost of encoding
	// n input bytes with the cold-tier pattern-dictionary compressor
	// (internal/compress): a dictionary probe per position plus the
	// token emission. Priced per *input* byte — compression work scales
	// with what goes in, not with what comes out.
	CompressFixedCycles uint64
	CompressByteCycles  uint64

	// DecompressFixedCycles + n*DecompressByteCycles is the cost of
	// expanding one compressed record back to n output bytes. Cheaper
	// per byte than compression (no matching, just copies), and priced
	// per *output* byte — the work is materializing the plaintext.
	DecompressFixedCycles uint64
	DecompressByteCycles  uint64

	// CPUHz converts accumulated cycles into simulated seconds when
	// reporting throughput. The paper's testbed is a 3.6 GHz i7-7700.
	CPUHz float64
}

// PerturbEnv names the environment variable DefaultCosts reads: a float
// factor applied to EnclaveLineCycles (e.g. "1.06" prices enclave memory
// touches 6% higher). It exists for sensitivity runs — in particular the
// bench-regression guard demonstrates its own teeth by showing that a 6%
// perturbation pushes the committed benchmark tables out of tolerance.
const PerturbEnv = "ARIA_COST_PERTURB"

// DefaultCosts returns the cost model used throughout the reproduction.
func DefaultCosts() CostModel {
	c := defaultCosts()
	if v := os.Getenv(PerturbEnv); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			c.EnclaveLineCycles = uint64(float64(c.EnclaveLineCycles)*f + 0.5)
		}
	}
	return c
}

func defaultCosts() CostModel {
	return CostModel{
		EnclaveLineCycles:   255,
		UntrustedLineCycles: 90,
		PageSwapCycles:      40000,
		EcallCycles:         9000,
		OcallCycles:         10000,
		MACFixedCycles:      1150,
		MACByteCycles:       2,
		CTRFixedCycles:      780,
		CTRByteCycles:       2,
		HashCycles:          40,
		// Dictionary compression runs at a few cycles per input byte
		// (hash-probe matching, in the ballpark of LZ-class encoders on
		// the paper's testbed); decompression is a straight token walk.
		CompressFixedCycles:   600,
		CompressByteCycles:    6,
		DecompressFixedCycles: 200,
		DecompressByteCycles:  1,
		CPUHz:                 3.6e9,
	}
}

// InsecureCosts returns a cost model for the "Aria w/o SGX" configuration of
// Figure 12: the same code running outside any enclave. Memory accesses are
// plain DRAM accesses, there is no secure paging, and edge calls are free,
// but the cryptographic work is unchanged.
func InsecureCosts() CostModel {
	c := DefaultCosts()
	c.EnclaveLineCycles = c.UntrustedLineCycles
	c.PageSwapCycles = 0
	c.EcallCycles = 0
	c.OcallCycles = 0
	return c
}
