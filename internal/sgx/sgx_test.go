package sgx

import (
	"testing"
	"testing/quick"
)

func newTestEnclave(epcPages int) *Enclave {
	return New(Config{EPCBytes: epcPages * PageSize})
}

func TestAllocAlignment(t *testing.T) {
	e := newTestEnclave(16)
	p1 := e.EAlloc(10, 8)
	if p1%8 != 0 {
		t.Errorf("EAlloc returned unaligned pointer %d", p1)
	}
	p2 := e.EAlloc(1, 64)
	if p2%64 != 0 {
		t.Errorf("EAlloc(align=64) returned %d", p2)
	}
	u := e.UAlloc(3, 4096)
	if u%4096 != 0 {
		t.Errorf("UAlloc(align=4096) returned %d", u)
	}
}

func TestAllocZeroNeverReturned(t *testing.T) {
	e := newTestEnclave(4)
	if p := e.EAlloc(8, 1); p == NilE {
		t.Error("EAlloc returned the nil enclave pointer")
	}
	if u := e.UAlloc(8, 1); u == NilU {
		t.Error("UAlloc returned the nil untrusted pointer")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	e := newTestEnclave(8)
	p := e.EAlloc(32, 8)
	copy(e.EBytes(p, 32), "hello enclave memory world!!!!!!")
	if string(e.EBytesRaw(p, 5)) != "hello" {
		t.Error("enclave bytes did not round trip")
	}
	u := e.UAlloc(32, 8)
	copy(e.UBytes(u, 32), "hello untrusted dram percussion!")
	if string(e.UBytesRaw(u, 5)) != "hello" {
		t.Error("untrusted bytes did not round trip")
	}
}

func TestCopyInOut(t *testing.T) {
	e := newTestEnclave(8)
	u := e.UAlloc(16, 1)
	p := e.EAlloc(16, 1)
	copy(e.UBytesRaw(u, 16), "abcdefghijklmnop")
	e.CopyIn(p, u, 16)
	if string(e.EBytesRaw(p, 16)) != "abcdefghijklmnop" {
		t.Fatal("CopyIn corrupted data")
	}
	u2 := e.UAlloc(16, 1)
	e.CopyOut(u2, p, 16)
	if string(e.UBytesRaw(u2, 16)) != "abcdefghijklmnop" {
		t.Fatal("CopyOut corrupted data")
	}
}

func TestPagingStartsWhenEPCExceeded(t *testing.T) {
	e := newTestEnclave(4) // 4-page EPC (one frame consumed by the reserved page)
	var ptrs []EPtr
	for i := 0; i < 8; i++ {
		ptrs = append(ptrs, e.EAlloc(PageSize, PageSize))
	}
	// Touch the first 3 pages: they fit alongside the reserved page.
	for i := 0; i < 3; i++ {
		e.ETouch(ptrs[i], 1)
	}
	if got := e.Stats().PageSwaps; got != 0 {
		t.Fatalf("page swaps before EPC full = %d, want 0", got)
	}
	// Touching more pages than fit must trigger secure paging.
	for i := 0; i < 8; i++ {
		e.ETouch(ptrs[i], 1)
	}
	if got := e.Stats().PageSwaps; got == 0 {
		t.Fatal("no page swaps after exceeding EPC capacity")
	}
}

func TestClockKeepsHotPagesResident(t *testing.T) {
	e := newTestEnclave(8)
	hot := e.EAlloc(PageSize, PageSize)
	var cold []EPtr
	for i := 0; i < 32; i++ {
		cold = append(cold, e.EAlloc(PageSize, PageSize))
	}
	// Interleave: the hot page is touched before every cold touch, so
	// CLOCK's referenced bit should keep it resident most of the time.
	e.ResetStats()
	for round := 0; round < 4; round++ {
		for _, c := range cold {
			e.ETouch(hot, 1)
			e.ETouch(c, 1)
		}
	}
	swaps := e.Stats().PageSwaps
	// Hot page misses would roughly double the swap count; with CLOCK it
	// should stay close to the cold-page miss count (4 rounds * 32 pages).
	if swaps > 4*32+16 {
		t.Errorf("CLOCK not hotness-aware: %d swaps for 128 cold touches", swaps)
	}
}

func TestCycleAccounting(t *testing.T) {
	e := newTestEnclave(8)
	costs := e.Costs()
	e.ResetStats()
	e.Ecall()
	e.Ocall()
	e.ChargeMAC(100)
	e.ChargeCTR(64)
	e.ChargeHash()
	want := costs.EcallCycles + costs.OcallCycles +
		costs.MACFixedCycles + 100*costs.MACByteCycles +
		costs.CTRFixedCycles + 64*costs.CTRByteCycles +
		costs.HashCycles
	if got := e.Cycles(); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	st := e.Stats()
	if st.Ecalls != 1 || st.Ocalls != 1 || st.MACs != 1 || st.CTROps != 1 || st.Hashes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMeasureOff(t *testing.T) {
	e := newTestEnclave(8)
	e.SetMeasuring(false)
	p := e.EAlloc(PageSize*32, PageSize)
	e.ETouch(p, PageSize*32)
	e.Ecall()
	e.ChargeMAC(1000)
	if got := e.Cycles(); got != 0 {
		t.Errorf("cycles accrued while not measuring: %d", got)
	}
	e.SetMeasuring(true)
	e.ChargeHash()
	if e.Cycles() == 0 {
		t.Error("cycles not accrued after re-enabling measurement")
	}
}

func TestLineTouchCost(t *testing.T) {
	e := newTestEnclave(8)
	costs := e.Costs()
	p := e.EAlloc(256, CacheLine)
	e.ETouch(p, 1) // warm the page so only line cost remains
	e.ResetStats()
	e.ETouch(p, 1)
	if got := e.Cycles(); got != costs.EnclaveLineCycles {
		t.Errorf("1-byte touch = %d cycles, want %d", got, costs.EnclaveLineCycles)
	}
	e.ResetStats()
	e.ETouch(p, 65) // spans two lines
	if got := e.Cycles(); got != 2*costs.EnclaveLineCycles {
		t.Errorf("65-byte touch = %d cycles, want %d", got, 2*costs.EnclaveLineCycles)
	}
	e.ResetStats()
	u := e.UAlloc(256, CacheLine)
	e.UTouch(u, 64)
	if got := e.Cycles(); got != costs.UntrustedLineCycles {
		t.Errorf("untrusted touch = %d cycles, want %d", got, costs.UntrustedLineCycles)
	}
}

func TestSecondsConversion(t *testing.T) {
	e := newTestEnclave(8)
	e.Advance(uint64(e.Costs().CPUHz)) // exactly one simulated second
	if got := e.Seconds(); got < 0.999 || got > 1.001 {
		t.Errorf("Seconds() = %v, want 1.0", got)
	}
}

func TestInsecureCostsDisableSGXOverheads(t *testing.T) {
	c := InsecureCosts()
	if c.EnclaveLineCycles != c.UntrustedLineCycles {
		t.Error("insecure model should price enclave memory like DRAM")
	}
	if c.PageSwapCycles != 0 || c.EcallCycles != 0 || c.OcallCycles != 0 {
		t.Error("insecure model should have no paging or edge-call cost")
	}
	if c.MACFixedCycles == 0 || c.CTRFixedCycles == 0 {
		t.Error("insecure model must keep crypto costs (Aria w/o SGX still encrypts)")
	}
}

func TestAllocDataIndependence(t *testing.T) {
	// Property: bytes written through one allocation never leak into
	// another, even across arena growth.
	e := newTestEnclave(8)
	type alloc struct {
		p EPtr
		n int
		v byte
	}
	var allocs []alloc
	check := func(sz uint16, v byte) bool {
		n := int(sz%512) + 1
		p := e.EAlloc(n, 8)
		b := e.EBytesRaw(p, n)
		for i := range b {
			b[i] = v
		}
		allocs = append(allocs, alloc{p, n, v})
		for _, a := range allocs {
			bb := e.EBytesRaw(a.p, a.n)
			for _, got := range bb {
				if got != a.v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUntrustedRawBypassesAccounting(t *testing.T) {
	e := newTestEnclave(8)
	u := e.UAlloc(64, 1)
	e.ResetStats()
	_ = e.UBytesRaw(u, 64)
	if e.Cycles() != 0 {
		t.Error("UBytesRaw must not charge cycles (attacker-side access)")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	e := newTestEnclave(4)
	p := e.EAlloc(16, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds enclave access did not panic")
		}
	}()
	e.EBytes(p, 1<<30)
}
