// Package sgx simulates an Intel SGX enclave precisely enough to reproduce
// the performance effects the Aria paper studies: the limited Enclave Page
// Cache (EPC), hardware secure paging at 4 KB granularity, Memory Encryption
// Engine access overheads, and the cost of ECALL/OCALL edge transitions.
//
// The simulator exposes two byte arenas:
//
//   - the enclave heap, whose pages compete for a bounded EPC resident set
//     managed with a CLOCK (second-chance) policy, matching the
//     hotness-aware behaviour of the real SGX paging driver; and
//   - untrusted memory, which is ordinary DRAM.
//
// All pointers are arena offsets (EPtr, UPtr), which makes page residency
// checks and the contiguous address arithmetic of Aria's Merkle tree exact,
// and lets tests flip real bytes in "untrusted memory" to mount attacks.
//
// Time is a deterministic cycle counter advanced by a CostModel; benchmarks
// convert cycles to seconds at the model's nominal clock rate. Determinism
// means every experiment reproduces bit-identical numbers on any machine.
package sgx

import (
	"fmt"
)

const (
	// PageSize is the SGX paging granularity.
	PageSize = 4096
	// CacheLine is the MEE protection granularity.
	CacheLine = 64
)

// EPtr addresses a byte in the enclave heap arena.
type EPtr uint64

// UPtr addresses a byte in the untrusted memory arena.
type UPtr uint64

// NilU is the canonical invalid untrusted pointer. Offset 0 is reserved at
// arena construction so that 0 never addresses live data.
const NilU UPtr = 0

// NilE is the canonical invalid enclave pointer.
const NilE EPtr = 0

// Config sizes the simulated platform.
type Config struct {
	// EPCBytes is the usable EPC capacity. The paper's testbed exposes
	// 91 MB to the user.
	EPCBytes int
	// Costs prices events; zero value means DefaultCosts.
	Costs CostModel
	// MeasureOff disables cycle accounting entirely (used while bulk
	// loading stores before the measured phase).
	MeasureOff bool
}

// Stats is the event ledger of one enclave.
type Stats struct {
	Cycles         uint64
	PageSwaps      uint64
	Ecalls         uint64
	Ocalls         uint64
	MACs           uint64
	MACBytes       uint64
	CTROps         uint64
	CTRBytes       uint64
	EnclaveLines   uint64
	UntrustedLines uint64
	Hashes         uint64
	// Batches counts batched edge crossings (BatchEnter calls) and
	// BatchedOps the operations they amortized: BatchedOps/Batches is the
	// realized batch size, and comparing Batches against Ecalls shows how
	// much of the edge-call budget the batch path carried.
	Batches    uint64
	BatchedOps uint64
}

type pageState struct {
	resident bool
	ref      bool
}

// Enclave is one simulated SGX enclave plus the untrusted address space of
// its host process.
type Enclave struct {
	cfg   Config
	costs CostModel

	cycles    uint64
	measuring bool

	heap  []byte
	pages []pageState
	// resident tracks how many enclave pages currently occupy the EPC;
	// maxResident is the EPC capacity in pages.
	resident    int
	maxResident int
	hand        int

	uheap []byte

	stats Stats
}

// New creates an enclave with the given configuration.
func New(cfg Config) *Enclave {
	if cfg.EPCBytes <= 0 {
		panic("sgx: EPCBytes must be positive")
	}
	zero := CostModel{}
	if cfg.Costs == zero {
		cfg.Costs = DefaultCosts()
	}
	e := &Enclave{
		cfg:         cfg,
		costs:       cfg.Costs,
		measuring:   !cfg.MeasureOff,
		maxResident: cfg.EPCBytes / PageSize,
	}
	if e.maxResident < 1 {
		e.maxResident = 1
	}
	// Reserve offset 0 in both arenas so the zero pointer is never valid.
	e.heap = make([]byte, CacheLine)
	e.pages = append(e.pages, pageState{resident: true, ref: true})
	e.resident = 1
	e.uheap = make([]byte, CacheLine)
	return e
}

// Costs returns the enclave's cost model.
func (e *Enclave) Costs() CostModel { return e.costs }

// SetMeasuring toggles cycle accounting. Loading a store before the measured
// window runs with accounting off, exactly like excluding the load phase
// from a wall-clock measurement.
func (e *Enclave) SetMeasuring(on bool) { e.measuring = on }

// Measuring reports whether cycle accounting is active.
func (e *Enclave) Measuring() bool { return e.measuring }

// Advance adds cycles to the simulated clock.
func (e *Enclave) Advance(c uint64) {
	if e.measuring {
		e.cycles += c
	}
}

// Cycles returns the simulated clock.
func (e *Enclave) Cycles() uint64 { return e.cycles }

// Seconds converts the simulated clock to seconds at the nominal CPU rate.
func (e *Enclave) Seconds() float64 { return float64(e.cycles) / e.costs.CPUHz }

// Stats returns a snapshot of the event ledger.
func (e *Enclave) Stats() Stats {
	s := e.stats
	s.Cycles = e.cycles
	return s
}

// ResetStats zeroes the ledger and the clock (typically after warm-up).
func (e *Enclave) ResetStats() {
	e.stats = Stats{}
	e.cycles = 0
}

// EPCUsedBytes reports how much enclave heap has been allocated.
func (e *Enclave) EPCUsedBytes() int { return len(e.heap) }

// UntrustedUsedBytes reports how much untrusted arena has been allocated.
func (e *Enclave) UntrustedUsedBytes() int { return len(e.uheap) }

// EPCCapacity returns the configured EPC size in bytes.
func (e *Enclave) EPCCapacity() int { return e.cfg.EPCBytes }

func align(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) &^ (a - 1)
}

// EAlloc reserves n bytes in the enclave heap with the given alignment and
// returns their address. Enclave allocations never fail; exceeding the EPC
// capacity triggers secure paging on access rather than allocation failure,
// matching SGX's demand-paged enclave heap.
func (e *Enclave) EAlloc(n, alignment int) EPtr {
	if n < 0 {
		panic("sgx: negative allocation")
	}
	off := align(len(e.heap), alignment)
	end := off + n
	if end > cap(e.heap) {
		grown := make([]byte, end, growCap(cap(e.heap), end))
		copy(grown, e.heap)
		e.heap = grown
	} else {
		e.heap = e.heap[:end]
	}
	// Extend the page table; fresh pages start non-resident and are
	// faulted in on first touch (EAUG-style demand paging). While the
	// resident set has room, faults are free: they model one-time EADD.
	for p := len(e.pages); p <= (end-1)/PageSize; p++ {
		e.pages = append(e.pages, pageState{})
	}
	return EPtr(off)
}

// UAlloc reserves n bytes of untrusted memory with the given alignment.
func (e *Enclave) UAlloc(n, alignment int) UPtr {
	if n < 0 {
		panic("sgx: negative allocation")
	}
	off := align(len(e.uheap), alignment)
	end := off + n
	if end > cap(e.uheap) {
		grown := make([]byte, end, growCap(cap(e.uheap), end))
		copy(grown, e.uheap)
		e.uheap = grown
	} else {
		e.uheap = e.uheap[:end]
	}
	return UPtr(off)
}

func growCap(old, need int) int {
	c := old * 2
	if c < need {
		c = need
	}
	const minCap = 1 << 16
	if c < minCap {
		c = minCap
	}
	return c
}

func lines(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64((n + CacheLine - 1) / CacheLine)
}

// ETouch models the enclave-side cost of accessing n bytes at p: MEE
// per-line overhead plus secure paging for any non-resident page spanned.
func (e *Enclave) ETouch(p EPtr, n int) {
	if !e.measuring {
		return
	}
	ln := lines(n)
	e.stats.EnclaveLines += ln
	e.cycles += ln * e.costs.EnclaveLineCycles
	first := int(p) / PageSize
	last := (int(p) + n - 1) / PageSize
	for pg := first; pg <= last; pg++ {
		e.touchPage(pg)
	}
}

func (e *Enclave) touchPage(pg int) {
	st := &e.pages[pg]
	if st.resident {
		st.ref = true
		return
	}
	if e.resident < e.maxResident {
		// Free EPC frame: fault the page in without an eviction. This
		// models initial EADD/EAUG, which is not the 40K-cycle swap.
		st.resident = true
		st.ref = true
		e.resident++
		return
	}
	// Secure paging: evict a victim chosen by CLOCK, then load pg.
	e.evictOnePage()
	st.resident = true
	st.ref = true
	e.resident++
	e.stats.PageSwaps++
	e.cycles += e.costs.PageSwapCycles
}

func (e *Enclave) evictOnePage() {
	for {
		if e.hand >= len(e.pages) {
			e.hand = 0
		}
		st := &e.pages[e.hand]
		if st.resident {
			if st.ref {
				st.ref = false
			} else {
				st.resident = false
				e.resident--
				e.hand++
				return
			}
		}
		e.hand++
	}
}

// UTouch models the cost of accessing n bytes of untrusted DRAM at p.
func (e *Enclave) UTouch(p UPtr, n int) {
	if !e.measuring {
		return
	}
	ln := lines(n)
	e.stats.UntrustedLines += ln
	e.cycles += ln * e.costs.UntrustedLineCycles
}

// EBytes returns the enclave heap bytes [p, p+n) and charges the access.
func (e *Enclave) EBytes(p EPtr, n int) []byte {
	e.boundsE(p, n)
	e.ETouch(p, n)
	return e.heap[p : int(p)+n : int(p)+n]
}

// UBytes returns the untrusted bytes [p, p+n) and charges the access.
func (e *Enclave) UBytes(p UPtr, n int) []byte {
	e.boundsU(p, n)
	e.UTouch(p, n)
	return e.uheap[p : int(p)+n : int(p)+n]
}

// EBytesRaw returns enclave heap bytes without charging an access. It exists
// for code that has already charged the touch (e.g. a caller that batches
// accounting) and for test assertions.
func (e *Enclave) EBytesRaw(p EPtr, n int) []byte {
	e.boundsE(p, n)
	return e.heap[p : int(p)+n : int(p)+n]
}

// UValid reports whether [p, p+n) lies inside the allocated untrusted
// arena. Stores use it to validate attacker-controlled pointers before
// dereferencing them, turning wild pointers into detected attacks instead
// of faults.
func (e *Enclave) UValid(p UPtr, n int) bool {
	return p > 0 && int(p) >= 0 && n >= 0 && int(p)+n <= len(e.uheap)
}

// UBytesRaw returns untrusted bytes without charging an access. Attack tests
// use it to corrupt data behind the store's back, exactly like a malicious
// host process would.
func (e *Enclave) UBytesRaw(p UPtr, n int) []byte {
	e.boundsU(p, n)
	return e.uheap[p : int(p)+n : int(p)+n]
}

func (e *Enclave) boundsE(p EPtr, n int) {
	if int(p) < 0 || int(p)+n > len(e.heap) {
		panic(fmt.Sprintf("sgx: enclave access [%d,%d) out of bounds (heap %d)", p, int(p)+n, len(e.heap)))
	}
}

func (e *Enclave) boundsU(p UPtr, n int) {
	if int(p) < 0 || int(p)+n > len(e.uheap) {
		panic(fmt.Sprintf("sgx: untrusted access [%d,%d) out of bounds (arena %d)", p, int(p)+n, len(e.uheap)))
	}
}

// CopyIn copies n bytes from untrusted memory into the enclave heap,
// charging both sides. This is the path every Merkle-tree node takes before
// it can be verified: MAC computation happens only over EPC-resident bytes.
func (e *Enclave) CopyIn(dst EPtr, src UPtr, n int) {
	copy(e.heap[dst:int(dst)+n], e.uheap[src:int(src)+n])
	e.UTouch(src, n)
	e.ETouch(dst, n)
}

// CopyOut copies n bytes from the enclave heap to untrusted memory.
func (e *Enclave) CopyOut(dst UPtr, src EPtr, n int) {
	copy(e.uheap[dst:int(dst)+n], e.heap[src:int(src)+n])
	e.ETouch(src, n)
	e.UTouch(dst, n)
}

// Ecall charges one entry into the enclave.
func (e *Enclave) Ecall() {
	if !e.measuring {
		return
	}
	e.stats.Ecalls++
	e.cycles += e.costs.EcallCycles
}

// Ocall charges one exit from the enclave (e.g. a system call such as
// malloc performed on behalf of enclave code).
func (e *Enclave) Ocall() {
	if !e.measuring {
		return
	}
	e.stats.Ocalls++
	e.cycles += e.costs.OcallCycles
}

// BatchEnter charges one batched entry into the enclave: a single ECALL
// plus one boundary copy of the n-byte marshalled request (an untrusted
// read and an enclave write per cache line), amortized over ops
// operations. The enclave staging buffer is assumed EPC-resident, so the
// copy prices MEE line overhead but not secure paging — batching exists
// precisely to keep the per-operation edge cost off the hot path, and a
// resident staging area is how a real enclave server achieves that.
func (e *Enclave) BatchEnter(ops, n int) {
	if !e.measuring {
		return
	}
	e.stats.Batches++
	e.stats.BatchedOps += uint64(ops)
	e.stats.Ecalls++
	e.cycles += e.costs.EcallCycles
	ln := lines(n)
	e.stats.UntrustedLines += ln
	e.stats.EnclaveLines += ln
	e.cycles += ln * (e.costs.UntrustedLineCycles + e.costs.EnclaveLineCycles)
}

// BatchExit charges the matching batched exit: one OCALL (the response
// leaves the enclave and is handed to the host's send path) plus the
// boundary copy-out of the n-byte marshalled response.
func (e *Enclave) BatchExit(n int) {
	if !e.measuring {
		return
	}
	e.stats.Ocalls++
	e.cycles += e.costs.OcallCycles
	ln := lines(n)
	e.stats.UntrustedLines += ln
	e.stats.EnclaveLines += ln
	e.cycles += ln * (e.costs.UntrustedLineCycles + e.costs.EnclaveLineCycles)
}

// SealOut charges pushing n sealed bytes out of the enclave to
// untrusted storage: one OCALL (the host write performed on behalf of
// enclave code) plus the boundary copy of the sealed bytes (both-side
// line charges), mirroring BatchExit. This is the extra edge cost every
// durable append pays on top of the in-memory operation; fsyncs are
// charged separately as plain Ocalls by the caller.
func (e *Enclave) SealOut(n int) {
	if !e.measuring {
		return
	}
	e.stats.Ocalls++
	e.cycles += e.costs.OcallCycles
	ln := lines(n)
	e.stats.UntrustedLines += ln
	e.stats.EnclaveLines += ln
	e.cycles += ln * (e.costs.UntrustedLineCycles + e.costs.EnclaveLineCycles)
}

// SealIn charges pulling n sealed bytes back into the enclave during
// recovery: one OCALL (the host read) plus the boundary copy-in,
// mirroring SealOut in the opposite direction.
func (e *Enclave) SealIn(n int) {
	if !e.measuring {
		return
	}
	e.stats.Ocalls++
	e.cycles += e.costs.OcallCycles
	ln := lines(n)
	e.stats.UntrustedLines += ln
	e.stats.EnclaveLines += ln
	e.cycles += ln * (e.costs.UntrustedLineCycles + e.costs.EnclaveLineCycles)
}

// ChargeMAC accounts one CMAC computation over n bytes.
func (e *Enclave) ChargeMAC(n int) {
	if !e.measuring {
		return
	}
	e.stats.MACs++
	e.stats.MACBytes += uint64(n)
	e.cycles += e.costs.MACFixedCycles + uint64(n)*e.costs.MACByteCycles
}

// ChargeCTR accounts one AES-CTR encryption or decryption over n bytes.
func (e *Enclave) ChargeCTR(n int) {
	if !e.measuring {
		return
	}
	e.stats.CTROps++
	e.stats.CTRBytes += uint64(n)
	e.cycles += e.costs.CTRFixedCycles + uint64(n)*e.costs.CTRByteCycles
}

// ChargeHash accounts one non-cryptographic hash (bucket index, key hint).
func (e *Enclave) ChargeHash() {
	if !e.measuring {
		return
	}
	e.stats.Hashes++
	e.cycles += e.costs.HashCycles
}

// ChargeCompress accounts one cold-tier compression pass over n input
// bytes (internal/compress greedy cover encoding). Compute-only: the
// boundary copy of the (smaller) output is charged separately by the
// caller via SealOut/SealIn, which is precisely where compression pays
// off — fewer sealed bytes cross the boundary.
func (e *Enclave) ChargeCompress(n int) {
	if !e.measuring {
		return
	}
	e.cycles += e.costs.CompressFixedCycles + uint64(n)*e.costs.CompressByteCycles
}

// ChargeDecompress accounts expanding one compressed record to n output
// bytes on a cold-tier read or recovery.
func (e *Enclave) ChargeDecompress(n int) {
	if !e.measuring {
		return
	}
	e.cycles += e.costs.DecompressFixedCycles + uint64(n)*e.costs.DecompressByteCycles
}
