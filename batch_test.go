package aria

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ariakv/aria/obs"
)

// batchSchemes covers one representative of each implementation family:
// the Aria core engine, the ShieldStore comparator, and the EPC baseline.
var batchSchemes = []Scheme{AriaHash, ShieldStoreScheme, BaselineHash}

func openBatchStore(t *testing.T, scheme Scheme, shards int) Store {
	t.Helper()
	st, err := Open(Options{
		Scheme:       scheme,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Shards:       shards,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBatchRoundTrip checks the positional contract on every scheme
// family: MPut then MGet returns each value at its key's position, a fully
// successful batch returns a nil error slice, failures land at their own
// positions only, and MDelete removes exactly its keys.
func TestBatchRoundTrip(t *testing.T) {
	for _, scheme := range batchSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			st := openBatchStore(t, scheme, 1)
			const n = 64
			pairs := make([]KV, n)
			keys := make([][]byte, n)
			for i := range pairs {
				pairs[i] = KV{Key: testKey(i), Value: testValue(i)}
				keys[i] = pairs[i].Key
			}
			if errs := st.MPut(pairs); errs != nil {
				t.Fatalf("MPut errs = %v, want nil", errs)
			}
			vals, errs := st.MGet(keys)
			if errs != nil {
				t.Fatalf("MGet errs = %v, want nil", errs)
			}
			for i, v := range vals {
				if !bytes.Equal(v, testValue(i)) {
					t.Fatalf("vals[%d] = %q, want %q", i, v, testValue(i))
				}
			}

			// A miss must land at its own position and leave the rest whole.
			probe := [][]byte{testKey(0), []byte("absent"), testKey(1)}
			vals, errs = st.MGet(probe)
			if len(vals) != 3 || len(errs) != 3 {
				t.Fatalf("lengths = %d/%d, want 3/3", len(vals), len(errs))
			}
			if errs[0] != nil || errs[2] != nil || !errors.Is(errs[1], ErrNotFound) {
				t.Fatalf("errs = %v, want ErrNotFound only at [1]", errs)
			}
			if vals[1] != nil || !bytes.Equal(vals[0], testValue(0)) || !bytes.Equal(vals[2], testValue(1)) {
				t.Fatalf("vals around the miss are wrong: %q", vals)
			}

			if errs := st.MDelete(keys[:8]); errs != nil {
				t.Fatalf("MDelete errs = %v, want nil", errs)
			}
			if _, err := st.Get(keys[0]); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after MDelete = %v, want ErrNotFound", err)
			}
			if _, err := st.Get(keys[8]); err != nil {
				t.Fatalf("Get of surviving key = %v, want nil", err)
			}
		})
	}
}

// TestBatchPerKeyErrors checks that an invalid key fails alone: the empty
// key is rejected per position while its batch-mates commit.
func TestBatchPerKeyErrors(t *testing.T) {
	st := openBatchStore(t, AriaHash, 1)
	errs := st.MPut([]KV{
		{Key: testKey(1), Value: testValue(1)},
		{Key: nil, Value: testValue(2)},
		{Key: testKey(3), Value: testValue(3)},
	})
	if len(errs) != 3 || errs[0] != nil || errs[2] != nil || !errors.Is(errs[1], ErrEmptyKey) {
		t.Fatalf("MPut errs = %v, want ErrEmptyKey only at [1]", errs)
	}
	for _, i := range []int{1, 3} {
		if _, err := st.Get(testKey(i)); err != nil {
			t.Fatalf("batch-mate %d did not commit: %v", i, err)
		}
	}
}

// TestBatchEdgeAccounting checks the tentpole's cost model: one batch is
// one ECALL/OCALL bracket regardless of size, Stats reports the realized
// batch size, and the per-key cycle cost falls as the batch grows.
func TestBatchEdgeAccounting(t *testing.T) {
	for _, scheme := range batchSchemes {
		t.Run(scheme.String(), func(t *testing.T) {
			st := openBatchStore(t, scheme, 1)
			const n = 64
			keys := make([][]byte, n)
			pairs := make([]KV, n)
			for i := range keys {
				pairs[i] = KV{Key: testKey(i), Value: testValue(i)}
				keys[i] = pairs[i].Key
			}
			if errs := st.MPut(pairs); errs != nil {
				t.Fatal(errs)
			}
			st.ResetStats()

			// One n-key batch: exactly one edge round trip.
			if _, errs := st.MGet(keys); errs != nil {
				t.Fatal(errs)
			}
			s1 := st.Stats()
			if s1.Batches != 1 || s1.BatchedKeys != n {
				t.Fatalf("Batches/BatchedKeys = %d/%d, want 1/%d", s1.Batches, s1.BatchedKeys, n)
			}
			if s1.Ecalls != 1 || s1.Ocalls != 1 {
				t.Fatalf("Ecalls/Ocalls = %d/%d, want 1/1", s1.Ecalls, s1.Ocalls)
			}
			batched := s1.SimCycles

			// n single-key batches: n edge round trips, higher total cost.
			st.ResetStats()
			for _, k := range keys {
				if _, errs := st.MGet([][]byte{k}); errs != nil {
					t.Fatal(errs)
				}
			}
			s2 := st.Stats()
			if s2.Batches != n || s2.BatchedKeys != n {
				t.Fatalf("Batches/BatchedKeys = %d/%d, want %d/%d", s2.Batches, s2.BatchedKeys, n, n)
			}
			if s2.Ecalls != n {
				t.Fatalf("Ecalls = %d, want %d", s2.Ecalls, n)
			}
			if batched >= s2.SimCycles {
				t.Fatalf("batched %d cycles not cheaper than %d singles at %d cycles",
					batched, n, s2.SimCycles)
			}
		})
	}
}

// TestShardedBatchFanOut checks order-preserving reassembly across
// parallel shards and that the aggregate Stats sums each shard's batched
// entries.
func TestShardedBatchFanOut(t *testing.T) {
	const shards, n = 4, 200
	st := openBatchStore(t, AriaHash, shards)
	pairs := make([]KV, n)
	keys := make([][]byte, n)
	for i := range pairs {
		pairs[i] = KV{Key: testKey(i), Value: testValue(i)}
		keys[i] = pairs[i].Key
	}
	if errs := st.MPut(pairs); errs != nil {
		t.Fatalf("MPut errs = %v", errs)
	}
	vals, errs := st.MGet(keys)
	if errs != nil {
		t.Fatalf("MGet errs = %v", errs)
	}
	for i, v := range vals {
		if !bytes.Equal(v, testValue(i)) {
			t.Fatalf("vals[%d] = %q, want %q (reassembly broke ordering)", i, v, testValue(i))
		}
	}

	// Every shard served a sub-batch (200 keys over 4 shards cannot all
	// land on one), and the aggregate sums them.
	sh := st.(Sharded)
	var batches, batchedKeys uint64
	for i := 0; i < sh.NumShards(); i++ {
		ss := sh.ShardStats(i)
		if ss.Batches == 0 {
			t.Fatalf("shard %d served no batches", i)
		}
		batches += ss.Batches
		batchedKeys += ss.BatchedKeys
	}
	agg := st.Stats()
	if agg.Batches != batches || agg.BatchedKeys != batchedKeys {
		t.Fatalf("aggregate Batches/BatchedKeys = %d/%d, want %d/%d",
			agg.Batches, agg.BatchedKeys, batches, batchedKeys)
	}
	if batchedKeys != 2*n {
		t.Fatalf("BatchedKeys = %d, want %d (MPut + MGet)", batchedKeys, 2*n)
	}

	// Positional errors survive the scatter/gather.
	probe := [][]byte{[]byte("absent-a"), testKey(5), []byte("absent-b")}
	_, errs = st.MGet(probe)
	if len(errs) != 3 || errs[1] != nil ||
		!errors.Is(errs[0], ErrNotFound) || !errors.Is(errs[2], ErrNotFound) {
		t.Fatalf("sharded MGet errs = %v, want misses at [0] and [2]", errs)
	}

	if errs := st.MDelete(keys); errs != nil {
		t.Fatalf("MDelete errs = %v", errs)
	}
	if st.Stats().Keys != 0 {
		t.Fatalf("keys after MDelete = %d, want 0", st.Stats().Keys)
	}
}

// TestMeteredBatch checks the new metric families: batch counters, the
// batch-size histogram, and the amortized per-key cycle histogram, all
// labelled by op.
func TestMeteredBatch(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := Open(Options{
		Scheme: AriaHash, EPCBytes: 16 << 20, ExpectedKeys: 4096,
		Shards: 2, Seed: 5, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	pairs := make([]KV, n)
	keys := make([][]byte, n)
	for i := range pairs {
		pairs[i] = KV{Key: testKey(i), Value: testValue(i)}
		keys[i] = pairs[i].Key
	}
	if errs := st.MPut(pairs); errs != nil {
		t.Fatal(errs)
	}
	if _, errs := st.MGet(keys); errs != nil {
		t.Fatal(errs)
	}
	_, _ = st.MGet([][]byte{[]byte("absent")})

	snap := reg.Snapshot()
	if got, _ := snap.Value(metricBatchKeysTotal, obs.Labels{"op": "mget"}); got != n+1 {
		t.Fatalf("%s{op=mget} = %v, want %d", metricBatchKeysTotal, got, n+1)
	}
	if got, _ := snap.Value(metricBatchKeysTotal, obs.Labels{"op": "mput"}); got != n {
		t.Fatalf("%s{op=mput} = %v, want %d", metricBatchKeysTotal, got, n)
	}
	// Not-found is a normal outcome, not a per-key error.
	if got, _ := snap.Value(metricBatchKeyErrors, obs.Labels{"op": "mget"}); got != 0 {
		t.Fatalf("%s{op=mget} = %v, want 0", metricBatchKeyErrors, got)
	}
	var sizeCount uint64
	for _, shard := range []string{"0", "1"} {
		if h, ok := snap.Histogram(metricBatchSize, obs.Labels{"op": "mget", "shard": shard}); ok {
			sizeCount += h.Count
		}
	}
	if sizeCount == 0 {
		t.Fatalf("%s recorded no batches", metricBatchSize)
	}
	found := false
	for _, shard := range []string{"0", "1"} {
		if h, ok := snap.Histogram(metricBatchKeySimCycles, obs.Labels{"op": "mget", "shard": shard}); ok && h.Count > 0 && h.Sum > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("%s recorded no per-key cycle samples", metricBatchKeySimCycles)
	}
}

// TestBatchEmpty checks the degenerate batch: no keys, no errors, and no
// panic — but the edge bracket is still charged, matching "one enclave
// entry per MGet call" exactly.
func TestBatchEmpty(t *testing.T) {
	st := openBatchStore(t, AriaHash, 1)
	vals, errs := st.MGet(nil)
	if len(vals) != 0 || errs != nil {
		t.Fatalf("MGet(nil) = %v, %v", vals, errs)
	}
	if errs := st.MPut(nil); errs != nil {
		t.Fatalf("MPut(nil) = %v", errs)
	}
	if errs := st.MDelete(nil); errs != nil {
		t.Fatalf("MDelete(nil) = %v", errs)
	}
}
