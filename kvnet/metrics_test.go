package kvnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/obs"
)

// TestMetricsRoundTrip drives every client operation through an
// instrumented server and checks that both sides' counters and latency
// histograms record exactly the traffic that happened, and that wire
// bytes and connection gauges move.
func TestMetricsRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	srv := startServerConfig(t, openStore(t), ServerConfig{Metrics: reg})
	addr := waitAddr(t, srv)

	cli, err := DialConfig(addr, ClientConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const n = 25
	for i := 0; i < n; i++ {
		if err := cli.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := cli.Get([]byte(fmt.Sprintf("k%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Delete([]byte("k00")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Stats(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, tc := range []struct {
		name string
		op   string
		want float64
	}{
		{metricSrvRequests, "put", n},
		{metricSrvRequests, "get", n},
		{metricSrvRequests, "delete", 1},
		{metricSrvRequests, "stats", 1},
		{metricCliRequests, "put", n},
		{metricCliRequests, "get", n},
		{metricCliRequests, "delete", 1},
		{metricCliRequests, "stats", 1},
	} {
		if got, _ := snap.Value(tc.name, obs.Labels{"op": tc.op}); got != tc.want {
			t.Errorf("%s{op=%s} = %v, want %v", tc.name, tc.op, got, tc.want)
		}
	}
	for _, name := range []string{metricSrvDuration, metricCliDuration} {
		h, ok := snap.Histogram(name, obs.Labels{"op": "get"})
		if !ok || h.Count != n {
			t.Errorf("%s{op=get}: ok=%v count=%d, want count %d", name, ok, h.Count, n)
		}
	}
	if got, _ := snap.Value(metricSrvBytesRead, nil); got == 0 {
		t.Error("no wire bytes counted as read")
	}
	if got, _ := snap.Value(metricSrvBytesWrite, nil); got == 0 {
		t.Error("no wire bytes counted as written")
	}
	if got, _ := snap.Value(metricSrvConns, nil); got != 1 {
		t.Errorf("%s = %v, want 1", metricSrvConns, got)
	}
	if got, _ := snap.Value(metricSrvActive, nil); got != 1 {
		t.Errorf("%s = %v, want 1 while the client is connected", metricSrvActive, got)
	}

	// Closing the client must return the active-connection gauge to zero
	// once the server notices the EOF.
	cli.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, _ := reg.Snapshot().Value(metricSrvActive, nil); got == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("active connection gauge never returned to zero after client close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsScanRoundTrip covers the streaming path: one scan request
// is one server-side observation regardless of how many pairs stream.
func TestMetricsScanRoundTrip(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaBPTree,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := startServerConfig(t, st, ServerConfig{Metrics: reg})
	addr := waitAddr(t, srv)
	cli, err := DialConfig(addr, ClientConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 10; i++ {
		if err := cli.Put([]byte(fmt.Sprintf("s%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	pairs := 0
	if err := cli.Scan(nil, nil, 0, func(k, v []byte) bool {
		pairs++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if pairs != 10 {
		t.Fatalf("scan delivered %d pairs, want 10", pairs)
	}
	snap := reg.Snapshot()
	if got, _ := snap.Value(metricSrvRequests, obs.Labels{"op": "scan"}); got != 1 {
		t.Errorf("%s{op=scan} = %v, want 1", metricSrvRequests, got)
	}
	if got, _ := snap.Value(metricCliRequests, obs.Labels{"op": "scan"}); got != 1 {
		t.Errorf("%s{op=scan} = %v, want 1", metricCliRequests, got)
	}
}

// TestMetricsShedAndRetry drives a client into a full server and checks
// the shed/busy/retry/redial counters on both sides.
func TestMetricsShedAndRetry(t *testing.T) {
	reg := obs.NewRegistry()
	srv := startServerConfig(t, openStore(t), ServerConfig{
		MaxConns:     1,
		DrainTimeout: 200 * time.Millisecond,
		Metrics:      reg,
	})
	addr := waitAddr(t, srv)

	hog, err := DialConfig(addr, ClientConfig{Retry: NoRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	if err := hog.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	turned, err := DialConfig(addr, ClientConfig{Retry: fastRetry(3), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer turned.Close()
	if _, err := turned.Get([]byte("k")); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("over-limit op = %v, want ErrServerBusy", err)
	}

	snap := reg.Snapshot()
	if got, _ := snap.Value(metricSrvShed, nil); got < 1 {
		t.Errorf("%s = %v, want >= 1", metricSrvShed, got)
	}
	if got, _ := snap.Value(metricCliBusy, nil); got < 1 {
		t.Errorf("%s = %v, want >= 1", metricCliBusy, got)
	}
	// fastRetry(3) means two extra attempts, each after a redial.
	if got, _ := snap.Value(metricCliRetries, nil); got != 2 {
		t.Errorf("%s = %v, want 2", metricCliRetries, got)
	}
	if got, _ := snap.Value(metricCliRedials, nil); got < 1 {
		t.Errorf("%s = %v, want >= 1", metricCliRedials, got)
	}
	if got, _ := snap.Value(metricCliRequests, obs.Labels{"op": "get"}); got != 1 {
		t.Errorf("%s{op=get} = %v, want 1 (one operation, three attempts)", metricCliRequests, got)
	}
}
