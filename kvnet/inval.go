package kvnet

// Invalidation push for coherent client-side caches (the ccache
// package). A client that caches values locally opens a dedicated
// opInvalSub stream; the server pushes one (key-hash, shard, seq) entry
// for every write it commits, so the client can evict before serving
// stale bytes. The stream reuses the subscribe machinery's heartbeat
// (stReplBeat) and graceful-drain (stDraining) frames, so liveness and
// shutdown behave exactly like a replication subscription. The layouts:
//
//	opInvalSub request:
//	    key = empty, value = empty
//	stInvalRec response body:
//	    N × (keyHash u64 BE | shard u32 BE | seq u64 BE)
//	stReplBeat response body:
//	    highest locally assigned seq u64 BE (advisory; 0 under repl)
//
// Versioning: on a replicated primary, seq is the write's WAL
// watermark (ReplBackend.Watermark, same value a PutW response
// carries), so cache versions and replication watermarks share one
// clock. A non-replicated server numbers its writes with a local
// atomic counter — still monotone, which is all the coherence contract
// needs. Entries carry a hash, not the key: the cache invalidates the
// whole hash bucket, so a collision costs a spurious eviction, never a
// stale serve.
//
// Delivery policy: a subscriber that cannot keep up (its buffered
// channel overflows) has its stream terminated rather than ever
// blocking the write path; the client observes stream loss, drops its
// cache cold, and redials. Losing invalidations is therefore always
// converted into losing the whole cache — coherence-safe by
// construction.

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ariakv/aria"
)

// InvalEntry is one pushed invalidation: the write's key hash
// (InvalHash), its WAL shard, and the sequence number versioning it.
type InvalEntry struct {
	// Hash is InvalHash of the written key.
	Hash uint64
	// Shard is the WAL shard the write landed on (0 when not replicated).
	Shard uint32
	// Seq is the write's version: its WAL watermark on a replicated
	// primary, a server-local monotone counter otherwise.
	Seq uint64
}

// invalEntryBytes is one encoded invalidation entry.
const invalEntryBytes = 20

// invalBatchMax bounds entries coalesced into one stInvalRec frame.
const invalBatchMax = 128

// InvalHash hashes a key for invalidation matching: FNV-1a 64,
// computed identically by the server (when pushing) and the cache
// (when indexing), so an entry always finds its bucket.
func InvalHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// encodeInvalEntries builds an stInvalRec body.
func encodeInvalEntries(entries []InvalEntry) []byte {
	out := make([]byte, len(entries)*invalEntryBytes)
	for i, e := range entries {
		off := i * invalEntryBytes
		binary.BigEndian.PutUint64(out[off:off+8], e.Hash)
		binary.BigEndian.PutUint32(out[off+8:off+12], e.Shard)
		binary.BigEndian.PutUint64(out[off+12:off+20], e.Seq)
	}
	return out
}

// decodeInvalEntries parses an stInvalRec body. The length must be a
// positive multiple of the entry size; the frame cap already bounds the
// count, so a hostile body can never drive an oversized allocation.
func decodeInvalEntries(body []byte) ([]InvalEntry, error) {
	if len(body) == 0 || len(body)%invalEntryBytes != 0 {
		return nil, errMalformed
	}
	entries := make([]InvalEntry, len(body)/invalEntryBytes)
	for i := range entries {
		off := i * invalEntryBytes
		entries[i] = InvalEntry{
			Hash:  binary.BigEndian.Uint64(body[off : off+8]),
			Shard: binary.BigEndian.Uint32(body[off+8 : off+12]),
			Seq:   binary.BigEndian.Uint64(body[off+12 : off+20]),
		}
	}
	return entries, nil
}

// ---- server side ---------------------------------------------------------------

// invalHub fans committed-write invalidations out to every subscribed
// stream. Publishing never blocks: a full subscriber is killed instead
// (see the delivery policy above).
type invalHub struct {
	mu       sync.Mutex
	subs     map[*invalConn]struct{}
	localSeq atomic.Uint64 // write numbering when no repl backend versions writes
}

// invalConn is one subscribed stream's mailbox.
type invalConn struct {
	ch   chan InvalEntry
	kill chan struct{} // closed on overflow; the handler drops the stream
	once sync.Once
}

func (c *invalConn) dead() { c.once.Do(func() { close(c.kill) }) }

func (c *invalConn) isDead() bool {
	select {
	case <-c.kill:
		return true
	default:
		return false
	}
}

func newInvalHub() *invalHub {
	return &invalHub{subs: make(map[*invalConn]struct{})}
}

func (h *invalHub) add(c *invalConn) {
	h.mu.Lock()
	h.subs[c] = struct{}{}
	h.mu.Unlock()
}

func (h *invalHub) remove(c *invalConn) {
	h.mu.Lock()
	delete(h.subs, c)
	h.mu.Unlock()
}

// publish delivers one entry to every live subscriber. Ordering
// matters for coherence: publish is called only after the store commit,
// so a subscriber registered before the commit always receives the
// entry, and one registered after can only have fetched post-commit
// bytes — either way no stale value survives.
func (h *invalHub) publish(e InvalEntry) {
	h.mu.Lock()
	for c := range h.subs {
		if c.isDead() {
			continue
		}
		select {
		case c.ch <- e:
		default:
			c.dead()
		}
	}
	h.mu.Unlock()
}

// invalPublish pushes an invalidation for one committed write. On a
// replicated primary the entry carries the write's WAL watermark; a
// plain server numbers writes locally.
func (s *Server) invalPublish(key []byte) {
	h := s.inval
	if h == nil {
		return
	}
	var shard uint32
	var seq uint64
	if b := s.cfg.Repl; b != nil {
		shard = b.ShardForKey(key)
		seq = b.Watermark(shard)
	} else {
		seq = h.localSeq.Add(1)
	}
	h.publish(InvalEntry{Hash: InvalHash(key), Shard: shard, Seq: seq})
	s.met.invalPushed()
}

// invalPublishBatch pushes invalidations for a batch write's
// successfully applied keys (a per-key failure leaves that key's cached
// value valid, so it is deliberately not pushed).
func (s *Server) invalPublishBatch(keys [][]byte, errs []error) {
	if s.inval == nil {
		return
	}
	for i, k := range keys {
		if errAt(errs, i) == nil {
			s.invalPublish(k)
		}
	}
}

// startInvalStream validates an invalidation subscription and spawns its
// stream goroutine — the tag becomes a server-push channel on the shared
// connection, exactly like a replication subscription. Only a node whose
// writes flow through this server can push complete invalidations, so
// replicas — whose applier bypasses the kvnet write path — refuse the
// stream and the cache in front of them stays deliberately cold.
func (sc *srvConn) startInvalStream(tag uint32) {
	s := sc.s
	w := tagWriter{sc: sc, tag: tag}
	if s.inval == nil {
		s.met.badRequest()
		_ = w.send(encodeResponse(stBadReq, []byte("kvnet: invalidation push not enabled")))
		return
	}
	if b := s.cfg.Repl; b != nil && b.Role() != RolePrimary {
		if b.Role() == RoleFenced {
			_ = w.send(errResponse(aria.ErrFenced))
			return
		}
		s.met.badRequest()
		_ = w.send(encodeResponse(stBadReq, []byte("kvnet: invalidation push serves primaries only")))
		return
	}
	if !sc.addStream(tag, nil) {
		s.met.badRequest()
		_ = w.send(encodeResponse(stBadReq, []byte("kvnet: tag already carries a stream")))
		return
	}
	sc.streams.Add(1)
	sc.inflight.Add(1)
	s.met.taggedStream(1)
	go func() {
		defer sc.streamExit(tag)
		if err := s.runInvalStream(w); err != nil && !errors.Is(err, net.ErrClosed) {
			s.logf("kvnet: invalidation stream error: %v", err)
		}
	}()
}

// runInvalStream registers a mailbox with the hub and forwards entries
// as coalesced stInvalRec frames, interleaving heartbeats, until the
// connection tears down, the mailbox overflows, or the server drains (a
// typed stDraining goodbye, shared with repl subscribe). Overflow
// aborts the whole connection: the coherence contract turns lost
// invalidations into a lost stream, and a cache must observe that as
// transport failure no matter which tags share the connection.
func (s *Server) runInvalStream(w tagWriter) error {
	sc := w.sc
	ic := &invalConn{
		ch:   make(chan InvalEntry, s.cfg.InvalBuffer),
		kill: make(chan struct{}),
	}
	s.inval.add(ic)
	defer s.inval.remove(ic)
	s.met.invalSubOpened()
	defer s.met.invalSubClosed()

	// Hello heartbeat: sent after hub registration, so a client that has
	// seen any frame knows every later commit will reach its stream.
	s.met.taggedPush()
	if err := w.send(encodeResponse(stReplBeat, u64be(s.inval.localSeq.Load()))); err != nil {
		return err
	}

	ticker := time.NewTicker(s.cfg.InvalHeartbeat)
	defer ticker.Stop()
	buf := make([]InvalEntry, 0, invalBatchMax)
	for {
		// Overflow outranks buffered entries: the client must go cold.
		select {
		case <-ic.kill:
			s.met.invalOverflow()
			sc.abort()
			return nil
		default:
		}
		select {
		case <-s.closing:
			return w.send(encodeResponse(stDraining, nil))
		case <-sc.stop:
			return nil
		case <-ic.kill:
			s.met.invalOverflow()
			sc.abort()
			return nil
		case e := <-ic.ch:
			buf = append(buf[:0], e)
		coalesce:
			for len(buf) < invalBatchMax {
				select {
				case e2 := <-ic.ch:
					buf = append(buf, e2)
				default:
					break coalesce
				}
			}
			s.met.taggedPush()
			if err := w.send(encodeResponse(stInvalRec, encodeInvalEntries(buf))); err != nil {
				return err
			}
		case <-ticker.C:
			s.met.taggedPush()
			if err := w.send(encodeResponse(stReplBeat, u64be(s.inval.localSeq.Load()))); err != nil {
				return err
			}
		}
	}
}

// ---- client side ---------------------------------------------------------------

// InvalEvent is one frame on an invalidation stream: a batch of
// entries, or a heartbeat proving the stream is live while idle.
type InvalEvent struct {
	// Entries holds the pushed invalidations (nil on a heartbeat).
	Entries []InvalEntry
	// Beat marks a heartbeat frame.
	Beat bool
	// Seq is the heartbeat's advisory sequence body.
	Seq uint64
}

// InvalSub is a client-side invalidation stream, either on its own
// dedicated connection (DialInvalSub) or as one tag on a client's
// multiplexed data connection (Client.InvalStream). It is not redialed
// internally — the ccache package owns that policy, because a broken
// stream must drop the cache cold before re-arming.
type InvalSub struct {
	src streamSrc
}

// DialInvalSub opens an invalidation stream on a dedicated connection.
// The server answers with a hello heartbeat once the subscription is
// registered; a cache must not serve from warm state until it has seen
// that first frame.
func DialInvalSub(addr string, dialTimeout time.Duration) (*InvalSub, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	if err := clientHello(conn, dialTimeout); err != nil {
		conn.Close()
		return nil, err
	}
	src := &connStream{conn: conn}
	if err := src.write(encodeRequest(opInvalSub, nil, nil, 0)); err != nil {
		conn.Close()
		return nil, err
	}
	return &InvalSub{src: src}, nil
}

// InvalStream opens an invalidation stream as one tag on this client's
// multiplexed data connection, sharing it with unary traffic. The same
// hello-heartbeat warm-up rule applies. Closing the stream abandons its
// tag; the connection stays usable.
func (c *Client) InvalStream() (*InvalSub, error) {
	src, err := c.openMuxStream(encodeRequest(opInvalSub, nil, nil, 0))
	if err != nil {
		return nil, err
	}
	return &InvalSub{src: src}, nil
}

// Next returns the stream's next event, waiting at most timeout (<= 0
// waits forever). Terminal conditions come back as errors: ErrDraining
// on graceful server shutdown, or the transport failure that ended the
// stream. A timeout is the cache's heartbeat-liveness failure — the
// stream is presumed dead and the cache must go cold.
func (s *InvalSub) Next(timeout time.Duration) (InvalEvent, error) {
	resp, release, err := s.src.next(timeout)
	if err != nil {
		return InvalEvent{}, err
	}
	defer release()
	body := resp[1:]
	switch resp[0] {
	case stInvalRec:
		entries, err := decodeInvalEntries(body)
		if err != nil {
			return InvalEvent{}, err
		}
		return InvalEvent{Entries: entries}, nil
	case stReplBeat:
		if len(body) != 8 {
			return InvalEvent{}, errMalformed
		}
		return InvalEvent{Beat: true, Seq: binary.BigEndian.Uint64(body)}, nil
	case stDraining:
		return InvalEvent{}, ErrDraining
	default:
		return InvalEvent{}, statusErr(resp[0], body)
	}
}

// Close tears the stream down: a dedicated connection closes; a shared
// data connection stays open with the stream's tag abandoned.
func (s *InvalSub) Close() error { return s.src.close() }
