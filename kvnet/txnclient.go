package kvnet

// Client surface for the transactional protocol: versioned reads,
// compare-and-swap, TTL writes, and multi-key optimistic commits. Each
// maps onto one wire op (see protocol.go); the typed outcomes
// (ErrCASMismatch, ErrTxnConflict) survive the round trip via their
// dedicated status codes, so retry loops written against the in-process
// store work unchanged over the network.

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/ariakv/aria"
)

// GetV fetches a value together with the version the store holds it
// at, for a later CompareAndSwap or transaction check.
func (c *Client) GetV(key []byte) ([]byte, uint64, error) {
	status, body, err := c.unary(opGetV, key, nil, 0, true)
	if err != nil {
		return nil, 0, err
	}
	if err := statusErr(status, body); err != nil {
		return nil, 0, err
	}
	if len(body) < 8 {
		return nil, 0, fmt.Errorf("kvnet: versioned read response shorter than its version")
	}
	return body[8:], binary.BigEndian.Uint64(body[:8]), nil
}

// CompareAndSwap writes key only if it is still at version expect
// (expect 0 = key must be absent). A lost race answers ErrCASMismatch;
// re-read with GetV and retry. Retry rules match Put.
func (c *Client) CompareAndSwap(key, value []byte, expect uint64) error {
	_, err := c.CompareAndSwapW(key, value, expect)
	return err
}

// CompareAndSwapW is CompareAndSwap returning the write's watermark,
// like PutW.
func (c *Client) CompareAndSwapW(key, value []byte, expect uint64) (Watermark, error) {
	status, body, err := c.unary(opCAS, key, encodeCASValue(value, expect), 0, false)
	if err != nil {
		return Watermark{}, err
	}
	if err := statusErr(status, body); err != nil {
		return Watermark{}, err
	}
	return parseWatermark(body)
}

// PutTTL stores a pair that expires ttl from now (ttl <= 0 stores
// without expiry). Retry rules match Put.
func (c *Client) PutTTL(key, value []byte, ttl time.Duration) error {
	_, err := c.PutTTLW(key, value, ttl)
	return err
}

// PutTTLW is PutTTL returning the write's watermark, like PutW.
func (c *Client) PutTTLW(key, value []byte, ttl time.Duration) (Watermark, error) {
	if ttl < 0 {
		ttl = 0
	}
	v := make([]byte, 8+len(value))
	binary.BigEndian.PutUint64(v[:8], uint64(ttl))
	copy(v[8:], value)
	status, body, err := c.unary(opPutTTL, key, v, 0, false)
	if err != nil {
		return Watermark{}, err
	}
	if err := statusErr(status, body); err != nil {
		return Watermark{}, err
	}
	return parseWatermark(body)
}

// TxnCommit commits an optimistic multi-key transaction in one round
// trip: every version check validates on the server and the writes
// apply all-or-nothing. A failed check answers ErrTxnConflict with
// nothing applied. Retry rules match Put (the commit is not idempotent).
func (c *Client) TxnCommit(ops []aria.TxnOp) error {
	_, err := c.TxnCommitW(ops)
	return err
}

// TxnCommitW is TxnCommit returning one watermark per WAL shard the
// transaction wrote (empty on a non-replicated server), for read-your-
// writes via GetAt across every key the transaction touched.
func (c *Client) TxnCommitW(ops []aria.TxnOp) ([]Watermark, error) {
	payload, err := encodeTxnRequest(ops)
	if err != nil {
		return nil, err
	}
	status, body, err := c.unaryRaw(opTxnCommit, payload, false)
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, body); err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, nil
	}
	marks, err := decodeWatermarks(body)
	if err != nil {
		return nil, fmt.Errorf("kvnet: malformed watermark list in txn response")
	}
	return marks, nil
}

// encodeCASValue packs the expected version and the new value into the
// request's value field.
func encodeCASValue(value []byte, expect uint64) []byte {
	out := make([]byte, 8+len(value))
	binary.BigEndian.PutUint64(out[:8], expect)
	copy(out[8:], value)
	return out
}
