package kvnet

// Wire tests for the transactional protocol: versioned reads, CAS, TTL
// writes, and multi-key commits, plus the error round-trip pins for the
// two optimistic-concurrency sentinels across the unary, batch-shaped
// (txn), and sharded paths.

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/ariakv/aria"
)

// Sentinel stubs for the transactional surface, completing
// sentinelStore for the new ops.
func (s *sentinelStore) GetV(key []byte) ([]byte, uint64, error) { return nil, 0, s.err }
func (s *sentinelStore) CompareAndSwap(key, value []byte, expect uint64) error {
	return s.err
}
func (s *sentinelStore) PutTTL(key, value []byte, ttl time.Duration) error { return s.err }
func (s *sentinelStore) TxnCommit(ops []aria.TxnOp) error                  { return s.err }

// TestTxnSentinelsSurviveWireRoundTrip pins stCASMismatch and
// stTxnConflict: the client must report the kvnet sentinel AND the
// aria sentinel it wraps, for every transactional op.
func TestTxnSentinelsSurviveWireRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		store  error
		kvnet  error
		ariaIs error
	}{
		{"cas-mismatch", aria.ErrCASMismatch, ErrCASMismatch, aria.ErrCASMismatch},
		{"txn-conflict", aria.ErrTxnConflict, ErrTxnConflict, aria.ErrTxnConflict},
		{"not-found", aria.ErrNotFound, ErrNotFound, aria.ErrNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl := startSentinelServer(t, tc.store)
			check := func(op string, err error) {
				t.Helper()
				if !errors.Is(err, tc.kvnet) {
					t.Errorf("%s: %v does not match kvnet sentinel %v", op, err, tc.kvnet)
				}
				if !errors.Is(err, tc.ariaIs) {
					t.Errorf("%s: %v does not match aria sentinel %v", op, err, tc.ariaIs)
				}
			}
			_, _, err := cl.GetV([]byte("k"))
			check("GetV", err)
			check("CompareAndSwap", cl.CompareAndSwap([]byte("k"), []byte("v"), 1))
			check("PutTTL", cl.PutTTL([]byte("k"), []byte("v"), time.Minute))
			check("TxnCommit", cl.TxnCommit([]aria.TxnOp{{Key: []byte("k"), Value: []byte("v")}}))
		})
	}
}

// TestTxnOverWire drives the happy paths end-to-end against a real
// store: versioned reads observe CAS bumps, CAS enforces versions, TTL
// writes expire, and a multi-key commit validates and applies
// atomically.
func TestTxnOverWire(t *testing.T) {
	_, cl := startServer(t, aria.AriaHash)

	// Versioned read + CAS cycle.
	if err := cl.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ver, err := cl.GetV([]byte("k"))
	if err != nil || !bytes.Equal(v, []byte("v1")) || ver == 0 {
		t.Fatalf("GetV = %q v%d, %v; want v1 at a nonzero version", v, ver, err)
	}
	if err := cl.CompareAndSwap([]byte("k"), []byte("v2"), ver); err != nil {
		t.Fatalf("CAS at the observed version: %v", err)
	}
	if err := cl.CompareAndSwap([]byte("k"), []byte("v3"), ver); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("CAS at a stale version: %v, want ErrCASMismatch", err)
	}
	if v, _ = cl.Get([]byte("k")); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("after CAS race: %q, want v2 (loser must not apply)", v)
	}
	// expect=0 means "must be absent".
	if err := cl.CompareAndSwap([]byte("k"), []byte("x"), 0); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("create-CAS over an existing key: %v, want ErrCASMismatch", err)
	}
	if err := cl.CompareAndSwap([]byte("fresh"), []byte("x"), 0); err != nil {
		t.Fatalf("create-CAS on an absent key: %v", err)
	}

	// Multi-key commit: a check at the current version passes and both
	// writes land.
	_, kver, err := cl.GetV([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	ops := []aria.TxnOp{
		{Key: []byte("k"), Value: []byte("v-txn"), Check: true, Version: kver},
		{Key: []byte("other"), Value: []byte("w")},
		{Key: []byte("fresh"), Delete: true},
	}
	if err := cl.TxnCommit(ops); err != nil {
		t.Fatalf("TxnCommit: %v", err)
	}
	if v, _ = cl.Get([]byte("k")); !bytes.Equal(v, []byte("v-txn")) {
		t.Fatalf("txn write k = %q, want v-txn", v)
	}
	if v, _ = cl.Get([]byte("other")); !bytes.Equal(v, []byte("w")) {
		t.Fatalf("txn write other = %q, want w", v)
	}
	if _, err = cl.Get([]byte("fresh")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("txn delete fresh: %v, want ErrNotFound", err)
	}

	// A stale check aborts the whole commit: no write applies.
	bad := []aria.TxnOp{
		{Key: []byte("k"), ReadOnly: true, Check: true, Version: kver}, // stale now
		{Key: []byte("other"), Value: []byte("should-not-land")},
	}
	if err := cl.TxnCommit(bad); !errors.Is(err, ErrTxnConflict) || !errors.Is(err, aria.ErrTxnConflict) {
		t.Fatalf("stale txn: %v, want ErrTxnConflict", err)
	}
	if v, _ = cl.Get([]byte("other")); !bytes.Equal(v, []byte("w")) {
		t.Fatalf("conflicted txn leaked a write: other = %q, want w", v)
	}

	// TTL: the key serves until its deadline, then reads as absent.
	if err := cl.PutTTL([]byte("ttl"), []byte("short"), 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, err = cl.Get([]byte("ttl")); err != nil || !bytes.Equal(v, []byte("short")) {
		t.Fatalf("ttl key before deadline: %q, %v", v, err)
	}
	time.Sleep(80 * time.Millisecond)
	if _, err = cl.Get([]byte("ttl")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ttl key after deadline: %v, want ErrNotFound", err)
	}
}

// TestTxnCrossShardOverWire commits a transaction whose keys span
// shards of a sharded store and proves conflict-abort stays atomic
// across the shard boundary.
func TestTxnCrossShardOverWire(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	sh := st.(aria.Sharded)
	// Find two keys on different shards.
	a := []byte("alpha-000")
	var b []byte
	for i := 0; i < 64 && b == nil; i++ {
		k := []byte{byte('b'), byte('0' + i%10), byte('0' + i/10)}
		if sh.ShardFor(k) != sh.ShardFor(a) {
			b = k
		}
	}
	if b == nil {
		t.Fatal("could not find keys on two different shards")
	}
	if err := cl.Put(a, []byte("1")); err != nil {
		t.Fatal(err)
	}
	_, averMain, err := cl.GetV(a)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-shard commit: check on shard(a), writes on both shards.
	ops := []aria.TxnOp{
		{Key: a, Value: []byte("2"), Check: true, Version: averMain},
		{Key: b, Value: []byte("2")},
	}
	if err := cl.TxnCommit(ops); err != nil {
		t.Fatalf("cross-shard commit: %v", err)
	}
	for _, k := range [][]byte{a, b} {
		if v, gerr := cl.Get(k); gerr != nil || !bytes.Equal(v, []byte("2")) {
			t.Fatalf("after cross-shard commit, %q = %q, %v", k, v, gerr)
		}
	}
	// Stale cross-shard commit: the conflict on shard(a) must abort the
	// write on shard(b) too.
	stale := []aria.TxnOp{
		{Key: a, Value: []byte("3"), Check: true, Version: averMain}, // stale
		{Key: b, Value: []byte("3")},
	}
	if err := cl.TxnCommit(stale); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("stale cross-shard commit: %v, want ErrTxnConflict", err)
	}
	if v, _ := cl.Get(b); !bytes.Equal(v, []byte("2")) {
		t.Fatalf("conflicted cross-shard txn leaked onto shard(b): %q, want 2", v)
	}
}

// FuzzDecodeTxnRequest hammers the transaction decoder with arbitrary
// bytes: it must never panic, and every accepted payload must re-encode
// to an equivalent op list (decode∘encode = identity on the accepted
// set).
func FuzzDecodeTxnRequest(f *testing.F) {
	seed := func(ops []aria.TxnOp) {
		if p, err := encodeTxnRequest(ops); err == nil {
			f.Add(p)
		}
	}
	seed([]aria.TxnOp{{Key: []byte("k"), Value: []byte("v")}})
	seed([]aria.TxnOp{
		{Key: []byte("a"), ReadOnly: true, Check: true, Version: 7},
		{Key: []byte("b"), Delete: true},
		{Key: []byte("c"), Value: []byte("v"), TTL: time.Minute, Check: true, Version: 9},
	})
	f.Add([]byte{opTxnCommit})
	f.Add([]byte{opTxnCommit, 0, 0, 0, 1, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rq, err := decodeTxnRequest(data)
		if err != nil {
			return
		}
		if len(rq.tops) == 0 {
			t.Fatal("accepted a transaction with zero ops")
		}
		re, rerr := encodeTxnRequest(rq.tops)
		if rerr != nil {
			t.Fatalf("accepted ops failed to re-encode: %v", rerr)
		}
		rq2, derr := decodeTxnRequest(re)
		if derr != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", derr)
		}
		if len(rq2.tops) != len(rq.tops) {
			t.Fatalf("round trip changed op count: %d != %d", len(rq2.tops), len(rq.tops))
		}
	})
}
