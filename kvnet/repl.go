package kvnet

// Replication on the wire. A primary streams its sealed WAL records to
// subscribed replicas verbatim — the sealed bytes authenticate
// themselves, so the network needs no more trust than the disk — and
// replicas push applied-sequence acks back on the same connection. The
// wire layer stays policy-free: all replication decisions (fencing,
// catch-up, snapshot bootstrap, sync acks) live behind the ReplBackend
// interface a server is configured with, implemented by the repl
// package. The layouts:
//
//	opSubscribe / opSegmentCatchup request:
//	    key = shard u32 BE | afterSeq u64 BE | generation u64 BE
//	opReplAck (subscriber → publisher, on the subscribe connection):
//	    key = shard u32 BE | appliedSeq u64 BE
//	opSnapshotTransfer request:
//	    key = shard u32 BE
//	watermark entry (write response body, GetAt request value):
//	    shard u32 BE | seq u64 BE
//
// A subscribe stream answers with stSegStart/stReplRec/stReplBeat
// frames and ends with a typed reason: stDraining (server shutdown),
// stFenced (subscriber or publisher fenced), stSnapAvail (afterSeq
// predates the retained WAL; bootstrap from a snapshot), or stDone
// (catch-up complete).

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"github.com/ariakv/aria"
)

// Replication roles reported by ReplBackend.Role and ReplInfo.Role.
const (
	// RolePrimary accepts writes and publishes its WAL to subscribers.
	RolePrimary = "primary"
	// RoleReplica applies the primary's stream and serves reads.
	RoleReplica = "replica"
	// RoleFenced is an ex-primary a newer generation has fenced; it
	// serves nothing until re-seeded.
	RoleFenced = "fenced"
)

// ReplEvent kinds (ReplEvent.Kind).
const (
	// EvSegStart marks a segment boundary; Seq is the segment's first
	// sequence number and resets the subscriber's verification chain.
	EvSegStart = byte(iota + 1)
	// EvRecord carries one sealed WAL record in Rec.
	EvRecord
	// EvHeartbeat reports the publisher's next sequence number in Seq
	// while the subscriber is caught up.
	EvHeartbeat
	// EvSnapshotNeeded reports that afterSeq predates the retained WAL;
	// Seq is the newest snapshot's covered sequence number. The stream
	// ends after it.
	EvSnapshotNeeded
)

// ReplEvent is one event on a subscribe stream, produced by a
// ReplBackend on the server and consumed from a Subscription on the
// client.
type ReplEvent struct {
	// Kind is one of the Ev* constants.
	Kind byte
	// Seq carries the kind-specific sequence number (see the kinds).
	Seq uint64
	// Rec is the sealed record bytes for EvRecord, nil otherwise.
	Rec []byte
}

// ReplBackend is the replication policy surface a Server exposes over
// the wire. The kvnet layer translates between frames and these calls;
// the repl package implements them for primaries and replicas.
type ReplBackend interface {
	// Role returns the node's current role (RolePrimary, RoleReplica,
	// or RoleFenced).
	Role() string
	// Generation returns the sealed replication generation the node
	// serves under.
	Generation() uint64
	// Shards returns the number of WAL lineages the node replicates.
	Shards() int
	// AppliedSeq returns the highest sequence number shard has applied
	// (on a primary: committed).
	AppliedSeq(shard uint32) uint64
	// Lag returns the node's apply lag behind the primary in sequence
	// numbers (zero on a primary).
	Lag() uint64
	// Watermark returns the watermark sequence for a write that just
	// committed on shard.
	Watermark(shard uint32) uint64
	// ShardForKey routes a key to its WAL shard.
	ShardForKey(key []byte) uint32
	// WaitCommitted blocks until the configured number of replicas
	// acked appliedSeq >= seq on shard, or fails after the configured
	// timeout. A nil error with no sync replicas configured is
	// immediate.
	WaitCommitted(shard uint32, seq uint64) error
	// Subscribe streams shard's sealed WAL from afterSeq+1 via emit.
	// gen is the subscriber's generation for fencing checks. With tail
	// set it follows the live log until stop closes (emitting
	// heartbeats while caught up); otherwise it returns nil once caught
	// up. acks delivers the subscriber's applied sequence numbers.
	// Returning aria.ErrFenced (wrapped) tells the wire layer to end
	// the stream with stFenced.
	Subscribe(shard uint32, afterSeq, gen uint64, tail bool, acks <-chan uint64, stop <-chan struct{}, emit func(ReplEvent) error) error
	// SnapshotPath returns the newest snapshot file for shard and the
	// sequence it covers, or an error wrapping aria.ErrNotFound when
	// none exists.
	SnapshotPath(shard uint32) (path string, covered uint64, err error)
}

// ReplInfo is the opReplStatus response: the node's replication state
// as JSON, consumed by replicas (to learn the primary's generation) and
// by operators via ariactl.
type ReplInfo struct {
	// Role is the node's role (RolePrimary, RoleReplica, RoleFenced).
	Role string
	// Generation is the node's sealed replication generation.
	Generation uint64
	// Shards is the number of replicated WAL lineages.
	Shards int
	// Lag is the node's apply lag in sequence numbers (replicas only).
	Lag uint64
	// Applied is the per-shard highest applied sequence number.
	Applied []uint64
}

// Watermark names one shard's committed sequence number, returned by
// PutW/DeleteW and passed to GetAt for read-your-writes reads.
type Watermark struct {
	// Shard is the WAL shard the write landed on.
	Shard uint32
	// Seq is the sequence number the write committed at (or before).
	Seq uint64
}

// watermarkBytes is one encoded watermark entry: shard u32 + seq u64.
const watermarkBytes = 12

// encodeWatermark encodes one watermark entry.
func encodeWatermark(shard uint32, seq uint64) []byte {
	out := make([]byte, watermarkBytes)
	binary.BigEndian.PutUint32(out[:4], shard)
	binary.BigEndian.PutUint64(out[4:], seq)
	return out
}

// decodeWatermarks parses a concatenation of watermark entries.
func decodeWatermarks(body []byte) ([]Watermark, error) {
	if len(body)%watermarkBytes != 0 {
		return nil, errMalformed
	}
	marks := make([]Watermark, 0, len(body)/watermarkBytes)
	for off := 0; off < len(body); off += watermarkBytes {
		marks = append(marks, Watermark{
			Shard: binary.BigEndian.Uint32(body[off : off+4]),
			Seq:   binary.BigEndian.Uint64(body[off+4 : off+watermarkBytes]),
		})
	}
	return marks, nil
}

// encodeSubscribeKey builds the opSubscribe/opSegmentCatchup key.
func encodeSubscribeKey(shard uint32, afterSeq, gen uint64) []byte {
	out := make([]byte, 20)
	binary.BigEndian.PutUint32(out[:4], shard)
	binary.BigEndian.PutUint64(out[4:12], afterSeq)
	binary.BigEndian.PutUint64(out[12:20], gen)
	return out
}

// decodeSubscribeKey parses the opSubscribe/opSegmentCatchup key.
func decodeSubscribeKey(key []byte) (shard uint32, afterSeq, gen uint64, err error) {
	if len(key) != 20 {
		return 0, 0, 0, errMalformed
	}
	return binary.BigEndian.Uint32(key[:4]),
		binary.BigEndian.Uint64(key[4:12]),
		binary.BigEndian.Uint64(key[12:20]), nil
}

// u64be encodes one big-endian uint64 (stSegStart/stReplBeat bodies).
func u64be(v uint64) []byte {
	var out [8]byte
	binary.BigEndian.PutUint64(out[:], v)
	return out[:]
}

// ---- server side ---------------------------------------------------------------

// replGate rejects requests the node's role forbids: a fenced node
// serves nothing but stats (reads AND writes fail, so a partitioned
// ex-primary can never answer stale data as if it were live), and a
// replica rejects writes. It returns the response to send, or nil to
// let the request through.
func (s *Server) replGate(rq request) []byte {
	b := s.cfg.Repl
	if b == nil {
		return nil
	}
	switch b.Role() {
	case RoleFenced:
		switch rq.op {
		case opStats, opReplStatus:
			return nil
		}
		return errResponse(aria.ErrFenced)
	case RoleReplica:
		switch rq.op {
		case opPut, opDelete, opMPut, opMDelete, opCheckpoint,
			opCAS, opPutTTL, opTxnCommit:
			return errResponse(aria.ErrReadOnlyReplica)
		}
	}
	return nil
}

// replWriteAck produces a write response body for a replicated
// primary: the write's watermark entry, after any configured
// synchronous replication wait. Non-replicated servers return a nil
// body, which old clients already expect.
func (s *Server) replWriteAck(key []byte) ([]byte, error) {
	b := s.cfg.Repl
	if b == nil || b.Role() != RolePrimary {
		return nil, nil
	}
	shard := b.ShardForKey(key)
	seq := b.Watermark(shard)
	if err := b.WaitCommitted(shard, seq); err != nil {
		return nil, fmt.Errorf("kvnet: write applied locally but not acked by replicas: %w", err)
	}
	return encodeWatermark(shard, seq), nil
}

// replTxnAck is replWriteAck for a committed transaction: one watermark
// entry per distinct WAL shard the transaction wrote, concatenated in
// first-touch order (the same list layout GetAt accepts).
func (s *Server) replTxnAck(ops []aria.TxnOp) ([]byte, error) {
	b := s.cfg.Repl
	if b == nil || b.Role() != RolePrimary {
		return nil, nil
	}
	seen := make(map[uint32]bool, 2)
	var body []byte
	for i := range ops {
		if ops[i].ReadOnly {
			continue
		}
		shard := b.ShardForKey(ops[i].Key)
		if seen[shard] {
			continue
		}
		seen[shard] = true
		seq := b.Watermark(shard)
		if err := b.WaitCommitted(shard, seq); err != nil {
			return nil, fmt.Errorf("kvnet: transaction applied locally but not acked by replicas: %w", err)
		}
		body = append(body, encodeWatermark(shard, seq)...)
	}
	return body, nil
}

// replLagCheck enforces a GetAt watermark list against the node's
// applied state: the first entry the node has not applied yet comes
// back as stLagging. A primary trivially satisfies its own watermarks.
func (s *Server) replLagCheck(marks []byte) []byte {
	b := s.cfg.Repl
	if b == nil {
		return nil // watermarks are advisory on a non-replicated server
	}
	wm, err := decodeWatermarks(marks)
	if err != nil {
		return encodeResponse(stBadReq, []byte("kvnet: malformed watermark list"))
	}
	if b.Role() == RolePrimary {
		return nil
	}
	for _, m := range wm {
		if b.AppliedSeq(m.Shard) < m.Seq {
			return encodeResponse(stLagging, encodeWatermark(m.Shard, m.Seq))
		}
	}
	return nil
}

// replOverlay fills the replication fields of a stats snapshot.
func (s *Server) replOverlay(st aria.Stats) aria.Stats {
	if b := s.cfg.Repl; b != nil {
		st.ReplRole = b.Role()
		st.ReplGeneration = b.Generation()
		st.ReplLag = b.Lag()
	}
	return st
}

// serveReplStatus answers opReplStatus with the node's ReplInfo.
func (s *Server) serveReplStatus(w tagWriter) error {
	b := s.cfg.Repl
	if b == nil {
		return w.send(encodeResponse(stBadReq, []byte("kvnet: replication not enabled")))
	}
	info := ReplInfo{
		Role:       b.Role(),
		Generation: b.Generation(),
		Shards:     b.Shards(),
		Lag:        b.Lag(),
	}
	for i := 0; i < info.Shards; i++ {
		info.Applied = append(info.Applied, b.AppliedSeq(uint32(i)))
	}
	body, err := json.Marshal(info)
	if err != nil {
		return w.send(encodeResponse(stError, []byte(err.Error())))
	}
	return w.send(encodeResponse(stOK, body))
}

// snapChunkBytes is the snapshot transfer chunk size.
const snapChunkBytes = 1 << 20

// serveSnapshotTransfer streams the newest snapshot file for the
// requested shard: stOK with the covered sequence, stSnapChunk frames
// with the raw sealed file bytes (verbatim — any same-seed sealer can
// open them), then stDone.
func (s *Server) serveSnapshotTransfer(w tagWriter, rq request) error {
	b := s.cfg.Repl
	if b == nil {
		return w.send(encodeResponse(stBadReq, []byte("kvnet: replication not enabled")))
	}
	if len(rq.key) != 4 {
		return w.send(encodeResponse(stBadReq, []byte("kvnet: malformed snapshot request")))
	}
	shard := binary.BigEndian.Uint32(rq.key)
	path, covered, err := b.SnapshotPath(shard)
	if err != nil {
		return w.send(errResponse(err))
	}
	f, err := os.Open(path)
	if err != nil {
		return w.send(encodeResponse(stError, []byte(err.Error())))
	}
	defer f.Close()
	if err := w.send(encodeResponse(stOK, u64be(covered))); err != nil {
		return err
	}
	buf := make([]byte, snapChunkBytes)
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			if err := w.send(encodeResponse(stSnapChunk, buf[:n])); err != nil {
				return err
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return rerr // mid-stream failure: close without stDone, client rejects
		}
	}
	return w.send(encodeResponse(stDone, nil))
}

// addStream registers a live stream tag (acks is nil for streams that
// carry no subscriber acks). It fails on a tag already carrying one.
func (sc *srvConn) addStream(tag uint32, acks chan uint64) bool {
	sc.tagMu.Lock()
	defer sc.tagMu.Unlock()
	if _, dup := sc.streamTags[tag]; dup {
		return false
	}
	sc.streamTags[tag] = acks
	return true
}

// streamExit unregisters a stream tag and retires its in-flight slot.
func (sc *srvConn) streamExit(tag uint32) {
	sc.tagMu.Lock()
	delete(sc.streamTags, tag)
	sc.tagMu.Unlock()
	sc.s.met.taggedStream(-1)
	sc.done()
	sc.streams.Done()
}

// startSubscribe validates a subscribe/catch-up request and spawns its
// stream goroutine. The tag becomes a server-push channel on the shared
// connection — unary requests keep flowing on other tags while sealed
// WAL records stream out on this one, and the subscriber's opReplAck
// frames are routed back to it by tag (routeAck).
func (sc *srvConn) startSubscribe(tag uint32, rq request) {
	s := sc.s
	w := tagWriter{sc: sc, tag: tag}
	b := s.cfg.Repl
	if b == nil {
		s.met.badRequest()
		_ = w.send(encodeResponse(stBadReq, []byte("kvnet: replication not enabled")))
		return
	}
	shard, afterSeq, gen, err := decodeSubscribeKey(rq.key)
	if err != nil {
		s.met.badRequest()
		_ = w.send(encodeResponse(stBadReq, []byte("kvnet: malformed subscribe request")))
		return
	}
	tail := rq.op == opSubscribe
	// Acks land in a capacity-1 keep-latest mailbox: they are
	// cumulative, so only the newest matters and the reader never
	// blocks behind a slow publisher loop.
	acks := make(chan uint64, 1)
	if !sc.addStream(tag, acks) {
		s.met.badRequest()
		_ = w.send(encodeResponse(stBadReq, []byte("kvnet: tag already carries a stream")))
		return
	}
	sc.streams.Add(1)
	sc.inflight.Add(1)
	s.met.taggedStream(1)
	go func() {
		defer sc.streamExit(tag)
		if err := s.runSubscribe(w, b, shard, afterSeq, gen, tail, acks); err != nil && !errors.Is(err, net.ErrClosed) {
			s.logf("kvnet: subscribe stream error: %v", err)
		}
	}()
}

// runSubscribe drives the backend's Subscribe for one stream tag,
// translating events to frames.
func (s *Server) runSubscribe(w tagWriter, b ReplBackend, shard uint32, afterSeq, gen uint64, tail bool, acks <-chan uint64) error {
	// stop closes on server drain or connection teardown.
	stop := make(chan struct{})
	var stopOnce sync.Once
	handlerDone := make(chan struct{})
	defer close(handlerDone)
	go func() {
		select {
		case <-s.closing:
		case <-w.sc.stop:
		case <-handlerDone:
		}
		stopOnce.Do(func() { close(stop) })
	}()

	emit := func(ev ReplEvent) error {
		s.met.taggedPush()
		switch ev.Kind {
		case EvSegStart:
			return w.send(encodeResponse(stSegStart, u64be(ev.Seq)))
		case EvRecord:
			return w.send(encodeResponse(stReplRec, ev.Rec))
		case EvHeartbeat:
			return w.send(encodeResponse(stReplBeat, u64be(ev.Seq)))
		case EvSnapshotNeeded:
			return w.send(encodeResponse(stSnapAvail, u64be(ev.Seq)))
		default:
			return fmt.Errorf("kvnet: unknown repl event kind %d", ev.Kind)
		}
	}
	err := b.Subscribe(shard, afterSeq, gen, tail, acks, stop, emit)
	switch {
	case errors.Is(err, aria.ErrFenced):
		return w.send(encodeResponse(stFenced, []byte(err.Error())))
	case err != nil:
		return err
	}
	select {
	case <-s.closing:
		// Graceful drain: a typed goodbye so the subscriber redials
		// instead of interpreting the close as a failure.
		return w.send(encodeResponse(stDraining, nil))
	default:
	}
	if !tail {
		return w.send(encodeResponse(stDone, nil))
	}
	return nil
}

// ---- client side ---------------------------------------------------------------

// PutW stores a pair and returns the write's watermark. On a
// non-replicated server the watermark is zero-valued; the retry rules
// match Put.
func (c *Client) PutW(key, value []byte) (Watermark, error) {
	status, body, err := c.unary(opPut, key, value, 0, false)
	if err != nil {
		return Watermark{}, err
	}
	if err := statusErr(status, body); err != nil {
		return Watermark{}, err
	}
	return parseWatermark(body)
}

// DeleteW removes a key and returns the write's watermark, like PutW.
func (c *Client) DeleteW(key []byte) (Watermark, error) {
	status, body, err := c.unary(opDelete, key, nil, 0, false)
	if err != nil {
		return Watermark{}, err
	}
	if err := statusErr(status, body); err != nil {
		return Watermark{}, err
	}
	return parseWatermark(body)
}

// parseWatermark reads the optional watermark body of a write response.
func parseWatermark(body []byte) (Watermark, error) {
	if len(body) == 0 {
		return Watermark{}, nil // not a replicated primary
	}
	marks, err := decodeWatermarks(body)
	if err != nil || len(marks) != 1 {
		return Watermark{}, fmt.Errorf("kvnet: malformed watermark in write response")
	}
	return marks[0], nil
}

// GetAt fetches a value, requiring the serving node to have applied
// every given watermark. A replica that has not yet caught up answers
// ErrLagging (the caller may wait and retry, or fail over to the
// primary); a primary always satisfies its own watermarks.
func (c *Client) GetAt(key []byte, marks []Watermark) ([]byte, error) {
	wm := make([]byte, 0, len(marks)*watermarkBytes)
	for _, m := range marks {
		wm = append(wm, encodeWatermark(m.Shard, m.Seq)...)
	}
	status, body, err := c.unary(opGet, key, wm, 0, true)
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, body); err != nil {
		return nil, err
	}
	return body, nil
}

// ReplStatus fetches the server's replication state.
func (c *Client) ReplStatus() (ReplInfo, error) {
	var info ReplInfo
	status, body, err := c.unary(opReplStatus, nil, nil, 0, true)
	if err != nil {
		return info, err
	}
	if err := statusErr(status, body); err != nil {
		return info, err
	}
	err = json.Unmarshal(body, &info)
	return info, err
}

// Subscription is a client-side subscribe stream carrying sealed WAL
// records one way and applied-sequence acks the other. It runs either on
// a dedicated connection (DialSubscribe) or as one tag on a client's
// multiplexed data connection (Client.SubscribeStream). It is not
// retried or redialed internally — the replica applier owns that policy.
type Subscription struct {
	src streamSrc
}

// subscribeRequest builds the stream-opening request body.
func subscribeRequest(shard uint32, afterSeq, gen uint64, tail bool) []byte {
	op := byte(opSegmentCatchup)
	if tail {
		op = opSubscribe
	}
	return encodeRequest(op, encodeSubscribeKey(shard, afterSeq, gen), nil, 0)
}

// DialSubscribe opens a subscribe (tail=true) or catch-up (tail=false)
// stream for one shard on a dedicated connection, starting after
// afterSeq, identifying the subscriber's replication generation for
// fencing.
func DialSubscribe(addr string, shard uint32, afterSeq, gen uint64, tail bool, dialTimeout time.Duration) (*Subscription, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	if err := clientHello(conn, dialTimeout); err != nil {
		conn.Close()
		return nil, err
	}
	src := &connStream{conn: conn}
	if err := src.write(subscribeRequest(shard, afterSeq, gen, tail)); err != nil {
		conn.Close()
		return nil, err
	}
	return &Subscription{src: src}, nil
}

// SubscribeStream opens the same stream as one tag on this client's
// multiplexed data connection, sharing it with unary traffic and other
// streams. Closing the subscription abandons its tag; the connection
// stays usable.
func (c *Client) SubscribeStream(shard uint32, afterSeq, gen uint64, tail bool) (*Subscription, error) {
	src, err := c.openMuxStream(subscribeRequest(shard, afterSeq, gen, tail))
	if err != nil {
		return nil, err
	}
	return &Subscription{src: src}, nil
}

// Next returns the stream's next event, waiting at most timeout (<= 0
// waits forever). Terminal conditions come back as errors: io.EOF for
// a completed catch-up (stDone), ErrDraining, ErrFenced (matching
// aria.ErrFenced), or the transport failure that ended the stream.
func (s *Subscription) Next(timeout time.Duration) (ReplEvent, error) {
	resp, release, err := s.src.next(timeout)
	if err != nil {
		return ReplEvent{}, err
	}
	defer release()
	body := resp[1:]
	seqBody := func() (uint64, error) {
		if len(body) != 8 {
			return 0, errMalformed
		}
		return binary.BigEndian.Uint64(body), nil
	}
	switch resp[0] {
	case stSegStart:
		seq, err := seqBody()
		return ReplEvent{Kind: EvSegStart, Seq: seq}, err
	case stReplRec:
		// Copy: body may alias a pooled frame buffer released on return.
		return ReplEvent{Kind: EvRecord, Rec: append([]byte(nil), body...)}, nil
	case stReplBeat:
		seq, err := seqBody()
		return ReplEvent{Kind: EvHeartbeat, Seq: seq}, err
	case stSnapAvail:
		seq, err := seqBody()
		return ReplEvent{Kind: EvSnapshotNeeded, Seq: seq}, err
	case stDone:
		return ReplEvent{}, io.EOF
	case stDraining:
		return ReplEvent{}, ErrDraining
	case stFenced:
		return ReplEvent{}, fmt.Errorf("%w: %s", ErrFenced, body)
	default:
		return ReplEvent{}, statusErr(resp[0], body)
	}
}

// Ack reports the subscriber's highest applied sequence number for the
// stream's shard back to the publisher.
func (s *Subscription) Ack(shard uint32, appliedSeq uint64) error {
	key := make([]byte, watermarkBytes)
	binary.BigEndian.PutUint32(key[:4], shard)
	binary.BigEndian.PutUint64(key[4:], appliedSeq)
	return s.src.write(encodeRequest(opReplAck, key, nil, 0))
}

// Close tears the stream down: a dedicated connection closes; a shared
// data connection stays open with the stream's tag abandoned.
func (s *Subscription) Close() error { return s.src.close() }

// FetchSnapshot transfers the newest sealed snapshot file for shard
// from addr, returning its covered sequence and raw bytes (verbatim —
// the caller writes them under wal.SnapshotName(covered) and lets its
// own sealer verify them at open). timeout bounds each frame.
func FetchSnapshot(addr string, shard uint32, timeout time.Duration) (uint64, []byte, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	if err := clientHello(conn, timeout); err != nil {
		return 0, nil, err
	}
	key := make([]byte, 4)
	binary.BigEndian.PutUint32(key, shard)
	if err := writeFrame(conn, taggedPayload(soleStreamTag, encodeRequest(opSnapshotTransfer, key, nil, 0))); err != nil {
		return 0, nil, err
	}
	touch := func() {
		if timeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(timeout))
		}
	}
	next := func() ([]byte, error) {
		touch()
		payload, err := readFrame(conn, maxTaggedReplWire)
		if err != nil {
			return nil, err
		}
		_, resp, err := splitTag(payload)
		if err != nil || len(resp) < 1 {
			return nil, errMalformed
		}
		return resp, nil
	}
	resp, err := next()
	if err != nil {
		return 0, nil, err
	}
	if resp[0] != stOK {
		return 0, nil, statusErr(resp[0], resp[1:])
	}
	if len(resp) != 9 {
		return 0, nil, errMalformed
	}
	covered := binary.BigEndian.Uint64(resp[1:])
	var data []byte
	for {
		resp, err := next()
		if err != nil {
			return 0, nil, fmt.Errorf("kvnet: snapshot transfer cut short: %w", err)
		}
		switch resp[0] {
		case stSnapChunk:
			data = append(data, resp[1:]...)
		case stDone:
			return covered, data, nil
		default:
			return 0, nil, statusErr(resp[0], resp[1:])
		}
	}
}
