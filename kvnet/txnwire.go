package kvnet

// Wire layout for opTxnCommit. The request packs the whole transaction
// into one frame:
//
//	op (1) || count (u32 BE) || count records
//
// each record:
//
//	kind (1) || check (1) || [version u64 BE, if check == 1]
//	|| klen (u16 BE) || key
//	|| [ttl u64 BE nanoseconds, if kind == txnKindWirePutTTL]
//	|| [vlen (u32 BE) || value, if kind writes a value]
//
// kinds: 0 put, 1 delete, 2 put-with-ttl, 3 read-only version check
// (check must be 1 and no value follows). The decoder bounds-checks
// every length against the wire limits before use, exactly like
// decodeRequest, so a hostile frame can never drive an oversized
// allocation (FuzzDecodeTxnRequest leans on this).

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/ariakv/aria"
)

const (
	txnKindWirePut    = 0
	txnKindWireDelete = 1
	txnKindWirePutTTL = 2
	txnKindWireCheck  = 3
)

// maxTxnWireOps bounds the op count of one transaction frame; combined
// with the frame size cap it keeps a hostile count field from driving a
// huge allocation.
const maxTxnWireOps = 1 << 16

// encodeTxnRequest builds an opTxnCommit request payload.
func encodeTxnRequest(ops []aria.TxnOp) ([]byte, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("kvnet: empty transaction")
	}
	if len(ops) > maxTxnWireOps {
		return nil, fmt.Errorf("kvnet: transaction of %d ops exceeds limit %d", len(ops), maxTxnWireOps)
	}
	buf := make([]byte, 0, 5+len(ops)*16)
	buf = append(buf, opTxnCommit)
	var u4 [4]byte
	binary.BigEndian.PutUint32(u4[:], uint32(len(ops)))
	buf = append(buf, u4[:]...)
	var u8 [8]byte
	for i := range ops {
		op := &ops[i]
		if len(op.Key) > maxKeyWire {
			return nil, fmt.Errorf("kvnet: txn op %d: key too large for the wire", i)
		}
		kind := byte(txnKindWirePut)
		switch {
		case op.ReadOnly:
			if !op.Check {
				return nil, fmt.Errorf("kvnet: txn op %d: read-only op without a version check", i)
			}
			kind = txnKindWireCheck
		case op.Delete:
			kind = txnKindWireDelete
		case op.TTL > 0:
			kind = txnKindWirePutTTL
		}
		check := byte(0)
		if op.Check {
			check = 1
		}
		buf = append(buf, kind, check)
		if op.Check {
			binary.BigEndian.PutUint64(u8[:], op.Version)
			buf = append(buf, u8[:]...)
		}
		var k2 [2]byte
		binary.BigEndian.PutUint16(k2[:], uint16(len(op.Key)))
		buf = append(buf, k2[:]...)
		buf = append(buf, op.Key...)
		if kind == txnKindWirePutTTL {
			binary.BigEndian.PutUint64(u8[:], uint64(op.TTL))
			buf = append(buf, u8[:]...)
		}
		if kind == txnKindWirePut || kind == txnKindWirePutTTL {
			if len(op.Value) > maxValueWire {
				return nil, fmt.Errorf("kvnet: txn op %d: value too large for the wire", i)
			}
			binary.BigEndian.PutUint32(u4[:], uint32(len(op.Value)))
			buf = append(buf, u4[:]...)
			buf = append(buf, op.Value...)
		}
	}
	return buf, nil
}

// decodeTxnRequest parses an opTxnCommit request payload.
func decodeTxnRequest(buf []byte) (request, error) {
	var rq request
	if len(buf) < 5 || buf[0] != opTxnCommit {
		return rq, errMalformed
	}
	rq.op = buf[0]
	count := binary.BigEndian.Uint32(buf[1:5])
	rest := buf[5:]
	if count == 0 || count > maxTxnWireOps || int(count) > len(rest) {
		return rq, errMalformed
	}
	ops := make([]aria.TxnOp, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 2 {
			return rq, errMalformed
		}
		kind, check := rest[0], rest[1]
		rest = rest[2:]
		if kind > txnKindWireCheck || check > 1 {
			return rq, errMalformed
		}
		var op aria.TxnOp
		if check == 1 {
			if len(rest) < 8 {
				return rq, errMalformed
			}
			op.Check = true
			op.Version = binary.BigEndian.Uint64(rest[:8])
			rest = rest[8:]
		}
		if len(rest) < 2 {
			return rq, errMalformed
		}
		klen := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if klen > maxKeyWire || len(rest) < klen {
			return rq, errMalformed
		}
		op.Key = rest[:klen]
		rest = rest[klen:]
		switch kind {
		case txnKindWireCheck:
			if !op.Check {
				return rq, errMalformed
			}
			op.ReadOnly = true
		case txnKindWireDelete:
			op.Delete = true
		case txnKindWirePutTTL, txnKindWirePut:
			if kind == txnKindWirePutTTL {
				if len(rest) < 8 {
					return rq, errMalformed
				}
				ttl := binary.BigEndian.Uint64(rest[:8])
				if ttl > 1<<62 {
					return rq, errMalformed
				}
				op.TTL = time.Duration(ttl)
				rest = rest[8:]
			}
			if len(rest) < 4 {
				return rq, errMalformed
			}
			vlen64 := uint64(binary.BigEndian.Uint32(rest[:4]))
			if vlen64 > maxValueWire {
				return rq, errMalformed
			}
			vlen := int(vlen64)
			rest = rest[4:]
			if len(rest) < vlen {
				return rq, errMalformed
			}
			op.Value = rest[:vlen]
			rest = rest[vlen:]
		}
		ops = append(ops, op)
	}
	if len(rest) != 0 {
		return rq, errMalformed
	}
	rq.tops = ops
	return rq, nil
}
