package kvnet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/obs"
)

// Server lifecycle states (Server.state).
const (
	stateNew = iota
	stateServing
	stateClosed
)

var (
	// ErrServerClosed is returned by Serve and ListenAndServe after Close.
	ErrServerClosed = errors.New("kvnet: server closed")
	// errAlreadyServing is returned by a second concurrent Serve call.
	errAlreadyServing = errors.New("kvnet: Serve called twice on the same Server")
)

// ServerConfig tunes the server's robustness limits. Zero values select
// the defaults below; use a negative duration to disable a timeout.
type ServerConfig struct {
	// MaxConns caps simultaneous connections; beyond it new connections
	// are shed with an stBusy response and closed (default 1024).
	MaxConns int
	// IdleTimeout bounds how long a connection may sit between requests,
	// including the time to read one full request frame (default 2m).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response frame write (default 30s).
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight connections
	// before force-closing them (default 5s).
	DrainTimeout time.Duration
	// ConnWorkers is the per-connection worker-pool size: how many
	// requests one connection executes concurrently (default 8). Tags
	// beyond it queue in arrival order; the pool bounds goroutines per
	// connection no matter how deep the client pipelines. On a store
	// that is not ConcurrentSafe the workers still serialize on the
	// store mutex — the pool then only overlaps wire decode with store
	// work.
	ConnWorkers int
	// Metrics, when non-nil, instruments the server into the given
	// registry: request counts and service-time histograms by operation,
	// wire bytes in/out, connection admission/shedding, corrupt and
	// malformed frame counts, and handler panics. nil (the default)
	// disables network instrumentation entirely. See docs/OPERATIONS.md
	// for the metric catalogue.
	Metrics *obs.Registry
	// Repl, when non-nil, enables the replication surface: subscribe
	// and snapshot-transfer streams, role-based request gating (a
	// replica rejects writes, a fenced node rejects everything),
	// watermark bodies on write responses, and watermarked reads. See
	// the repl package for implementations.
	Repl ReplBackend
	// InvalPush enables the invalidation stream (opInvalSub) for
	// coherent client-side caches: every committed write is pushed as a
	// (key-hash, shard, seq) entry to subscribed streams. Off by
	// default; see inval.go and the ccache package.
	InvalPush bool
	// InvalHeartbeat is the idle heartbeat interval on invalidation
	// streams (default 500ms). Caches treat heartbeat silence as stream
	// loss and drop cold.
	InvalHeartbeat time.Duration
	// InvalBuffer is the per-subscriber invalidation mailbox depth
	// (default 1024). A subscriber that falls this far behind has its
	// stream terminated — the write path never blocks on a slow cache.
	InvalBuffer int
}

func (c *ServerConfig) fillDefaults() {
	if c.MaxConns == 0 {
		c.MaxConns = 1024
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.ConnWorkers == 0 {
		c.ConnWorkers = 8
	}
	if c.InvalHeartbeat == 0 {
		c.InvalHeartbeat = 500 * time.Millisecond
	}
	if c.InvalBuffer == 0 {
		c.InvalBuffer = 1024
	}
}

// Server serves an aria.Store over TCP. Plain store engines are
// single-threaded by design (they model one enclave thread, matching the
// paper's single-threaded evaluation), so requests from all connections
// are serialized through one mutex; concurrency buys connection handling,
// not operation parallelism. Stores that declare themselves safe for
// concurrent use — aria.ConcurrentStore with ConcurrentSafe() == true,
// e.g. a store opened with Options.Shards > 1 — skip that global mutex
// entirely: the store serializes internally (per shard), so requests
// touching different shards execute concurrently on different cores.
//
// A handler panic is confined to its connection: the client receives an
// stError response and the connection closes, but the process and the
// other connections keep serving.
type Server struct {
	store      aria.Store
	cfg        ServerConfig
	mu         sync.Mutex // serializes store access (one enclave thread)
	concurrent bool       // store locks internally; skip s.mu

	state     atomic.Int32
	lisMu     sync.Mutex
	lis       net.Listener
	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
	closeErr  error
	shed      atomic.Uint64 // connections refused at the limit
	logf      func(format string, args ...any)
	met       *serverMetrics // nil when ServerConfig.Metrics is nil (no-op hooks)
	inval     *invalHub      // nil unless ServerConfig.InvalPush
}

// NewServer wraps a store with default limits.
func NewServer(store aria.Store) *Server {
	return NewServerConfig(store, ServerConfig{})
}

// NewServerConfig wraps a store with explicit limits.
func NewServerConfig(store aria.Store, cfg ServerConfig) *Server {
	cfg.fillDefaults()
	s := &Server{
		store:   store,
		cfg:     cfg,
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
		logf:    log.Printf,
	}
	if cs, ok := store.(aria.ConcurrentStore); ok && cs.ConcurrentSafe() {
		s.concurrent = true
	}
	if cfg.Metrics != nil {
		s.met = newServerMetrics(cfg.Metrics)
	}
	if cfg.InvalPush {
		s.inval = newInvalHub()
	}
	return s
}

// SetLogf replaces the server's logger (tests use a silent one).
func (s *Server) SetLogf(f func(string, ...any)) { s.logf = f }

// ShedConns reports how many connections were refused at the limit.
func (s *Server) ShedConns() uint64 { return s.shed.Load() }

// Serve accepts connections on lis until Close. It returns after the
// listener fails or is closed. Calling Serve twice, or after Close,
// returns an error instead of corrupting server state.
func (s *Server) Serve(lis net.Listener) error {
	if !s.state.CompareAndSwap(stateNew, stateServing) {
		lis.Close()
		if s.state.Load() == stateClosed {
			return ErrServerClosed
		}
		return errAlreadyServing
	}
	s.lisMu.Lock()
	s.lis = lis
	s.lisMu.Unlock()
	// Close may have raced between the CAS and the listener store; make
	// sure a concurrent Close always finds a listener to shut down.
	select {
	case <-s.closing:
		lis.Close()
		return ErrServerClosed
	default:
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return ErrServerClosed
			default:
				return err
			}
		}
		s.connMu.Lock()
		if len(s.conns) >= s.cfg.MaxConns {
			s.connMu.Unlock()
			s.shed.Add(1)
			s.met.connShed()
			go s.shedConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.met.connOpened()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// shedConn tells an over-limit connection to go away and closes it.
// The half-close + drain lets the stBusy frame reach a client whose
// request is still in flight: closing with unread bytes pending would
// send an RST that can discard the response on the way.
func (s *Server) shedConn(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	_ = writeFrame(conn, encodeResponse(stBusy, []byte("server at connection limit")))
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		_, _ = io.Copy(io.Discard, io.LimitReader(conn, maxFrameWire))
	}
	_ = conn.Close()
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Addr returns the bound address (nil until Serve has started).
func (s *Server) Addr() net.Addr {
	s.lisMu.Lock()
	defer s.lisMu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Close stops accepting, lets in-flight connections finish for up to
// DrainTimeout, then force-closes the stragglers. It is idempotent;
// subsequent calls return the first call's result.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		prev := s.state.Swap(stateClosed)
		close(s.closing)
		s.lisMu.Lock()
		lis := s.lis
		s.lisMu.Unlock()
		if lis != nil {
			s.closeErr = lis.Close()
		}
		if prev != stateServing {
			return
		}
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		if s.cfg.DrainTimeout > 0 {
			select {
			case <-done:
				return
			case <-time.After(s.cfg.DrainTimeout):
				s.connMu.Lock()
				for c := range s.conns {
					_ = c.Close()
				}
				s.connMu.Unlock()
			}
		}
		<-done
	})
	return s.closeErr
}

func (s *Server) forget(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// srvJob is one decoded request waiting for a pool worker. buf is the
// pooled payload backing rq's slices; the worker releases it after the
// request is served.
type srvJob struct {
	tag uint32
	rq  request
	buf *[]byte
}

// srvConn is the per-connection state of the multiplexed protocol: one
// reader (the handle goroutine) decoding tagged frames, a bounded worker
// pool executing requests out of order, long-lived goroutines for push
// streams (replication subscriptions and cache invalidations — just tags
// on the same connection), and one writer goroutine coalescing response
// frames into writev-style flushes.
type srvConn struct {
	s    *Server
	conn net.Conn // metrics-wrapped

	jobs chan srvJob  // reader → workers; closed by the reader at teardown
	wq   chan *[]byte // assembled wire frames → writer; pooled, writer releases

	// stop tells stream goroutines to wind down; sends still succeed so
	// in-flight responses can drain. down means the connection is dead:
	// sends fail fast. abort closes both; normal teardown only stop.
	stop     chan struct{}
	stopOnce sync.Once
	down     chan struct{}
	downOnce sync.Once

	workers    sync.WaitGroup
	streams    sync.WaitGroup
	writerDone chan struct{}

	// inflight counts queued + executing requests and live streams; the
	// reader arms the idle deadline only when it is zero, so a slow op
	// never trips the idle reaper.
	inflight atomic.Int64

	tagMu      sync.Mutex
	streamTags map[uint32]chan uint64 // live stream tag → ack box (nil for inval)
}

// tagWriter delivers response frames for one tag to the connection's
// writer goroutine. payload is status byte + body, exactly what
// encodeResponse builds.
type tagWriter struct {
	sc  *srvConn
	tag uint32
}

func (t tagWriter) send(payload []byte) error {
	bp := getBuf()
	*bp = appendFrame((*bp)[:0], t.tag, payload)
	select {
	case t.sc.wq <- bp:
		return nil
	case <-t.sc.down:
		putBuf(bp)
		return net.ErrClosed
	}
}

// quiesce signals stream goroutines to wind down.
func (sc *srvConn) quiesce() { sc.stopOnce.Do(func() { close(sc.stop) }) }

// abort force-closes the connection: pending sends fail fast and the
// blocked reader wakes. Used on write failure and handler panic; a
// normal teardown drains instead.
func (sc *srvConn) abort() {
	sc.quiesce()
	sc.downOnce.Do(func() {
		close(sc.down)
		_ = sc.conn.Close()
	})
}

// done retires one unary request. When it was the last in-flight work it
// re-arms the idle deadline, so a reader already blocked on the next
// header becomes reapable again.
func (sc *srvConn) done() {
	if sc.inflight.Add(-1) == 0 && sc.s.cfg.IdleTimeout > 0 {
		_ = sc.conn.SetReadDeadline(time.Now().Add(sc.s.cfg.IdleTimeout))
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.forget(conn)
	defer s.met.connClosed()
	// The wrapper counts wire bytes; deadlines and Close pass through to
	// the underlying connection.
	sc := &srvConn{
		s:          s,
		conn:       s.met.wrap(conn),
		jobs:       make(chan srvJob, s.cfg.ConnWorkers),
		wq:         make(chan *[]byte, 64),
		stop:       make(chan struct{}),
		down:       make(chan struct{}),
		writerDone: make(chan struct{}),
		streamTags: make(map[uint32]chan uint64),
	}
	if !s.hello(sc) {
		_ = conn.Close()
		return
	}
	for i := 0; i < s.cfg.ConnWorkers; i++ {
		sc.workers.Add(1)
		go sc.worker()
	}
	s.met.poolWorkers(float64(s.cfg.ConnWorkers))
	go sc.writer()
	reason := sc.readLoop()
	// Teardown. Order matters for the corrupt-frame contract: stop
	// accepting work, let every in-flight request finish and its response
	// reach the write queue, and only then append the tag-0 stCorrupt
	// notice. TCP ordering then turns the drain into a guarantee the
	// client can rely on: any request still unanswered when the client
	// reads the notice was never processed, so blanket retry — writes
	// included — is safe.
	close(sc.jobs)
	sc.quiesce()
	sc.workers.Wait()
	sc.streams.Wait()
	s.met.poolWorkers(float64(-s.cfg.ConnWorkers))
	if reason != nil {
		var payload []byte
		switch {
		case errors.Is(reason, errCorruptFrame):
			s.met.corruptFrame()
			payload = encodeResponse(stCorrupt, []byte(reason.Error()))
		case errors.Is(reason, errMalformed):
			s.met.badRequest()
			payload = encodeResponse(stBadReq, []byte(reason.Error()))
		}
		if payload != nil {
			select {
			case <-sc.down:
			default:
				bp := getBuf()
				*bp = appendFrame((*bp)[:0], 0, payload)
				sc.wq <- bp // all other producers have exited
			}
		}
	}
	close(sc.wq)
	<-sc.writerDone
	_ = conn.Close()
}

// hello performs the version handshake as the connection's first
// exchange. It returns false when the connection must close instead.
func (s *Server) hello(sc *srvConn) bool {
	if s.cfg.IdleTimeout > 0 {
		_ = sc.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	payload, err := readFrame(sc.conn, maxTaggedWire)
	if err != nil {
		switch {
		case errors.Is(err, errCorruptFrame):
			// Damaged in transit, not a version mismatch: answer with the
			// retryable notice, exactly like a corrupt mid-session frame.
			s.met.corruptFrame()
			s.touchWrite(sc.conn)
			_ = writeFrame(sc.conn, encodeResponse(stCorrupt, []byte(err.Error())))
		case errors.Is(err, errMalformed):
			s.rejectVersion(sc.conn, err.Error())
		}
		return false
	}
	tag, body, err := splitTag(payload)
	if err != nil || tag != 0 {
		s.rejectVersion(sc.conn, "first frame is not a hello")
		return false
	}
	ver, ok := parseHello(body)
	if !ok {
		s.rejectVersion(sc.conn, "first frame is not a hello")
		return false
	}
	if ver != protocolVersion {
		s.rejectVersion(sc.conn, fmt.Sprintf("server speaks protocol %d, client sent %d", protocolVersion, ver))
		return false
	}
	s.touchWrite(sc.conn)
	var vb [2]byte
	binary.BigEndian.PutUint16(vb[:], protocolVersion)
	bp := getBuf()
	*bp = appendFrame((*bp)[:0], 0, encodeResponse(stOK, vb[:]))
	_, werr := sc.conn.Write(*bp)
	putBuf(bp)
	return werr == nil
}

// rejectVersion answers a first frame that is not a valid hello. The
// rejection is written untagged — status byte first — so a version-1
// client parses a typed status instead of misreading a tagged frame.
func (s *Server) rejectVersion(conn net.Conn, msg string) {
	s.met.badRequest()
	s.touchWrite(conn)
	_ = writeFrame(conn, encodeResponse(stBadVersion, []byte("protocol version mismatch: "+msg)))
}

// readLoop is the connection's reader: it decodes tagged frames and
// dispatches them — unary requests to the worker pool, subscriptions to
// new stream goroutines, acks to their stream's mailbox — until the
// connection dies or the stream desynchronizes. The returned error is
// the teardown reason for frames that deserve a tag-0 notice (corrupt or
// oversized); a clean EOF or transport error returns nil.
func (sc *srvConn) readLoop() error {
	s := sc.s
	for {
		if s.cfg.IdleTimeout > 0 {
			if sc.inflight.Load() == 0 {
				_ = sc.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			} else {
				// Mid-flight: a slow op must not trip the idle reaper
				// while the client waits for its response.
				_ = sc.conn.SetReadDeadline(time.Time{})
			}
		}
		bp, err := readFramePooled(sc.conn, maxTaggedWire)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && sc.inflight.Load() > 0 {
				// The idle deadline raced a request completion; the
				// connection is mid-flight, not idle.
				continue
			}
			if errors.Is(err, errCorruptFrame) || errors.Is(err, errMalformed) {
				return err
			}
			return nil // EOF, idle timeout, or broken connection
		}
		tag, body, terr := splitTag(*bp)
		if terr != nil || tag == 0 {
			// Frame boundaries are intact (the payload was consumed), so
			// an unattributable or reserved-tag request costs a tag-0
			// complaint, not the connection.
			s.met.badRequest()
			sc.respond(0, encodeResponse(stBadReq, []byte("request on reserved tag 0")))
			putBuf(bp)
			continue
		}
		rq, derr := decodeRequest(body)
		if derr != nil {
			s.met.badRequest()
			sc.respond(tag, encodeResponse(stBadReq, []byte(derr.Error())))
			putBuf(bp)
			continue
		}
		switch rq.op {
		case opHello:
			s.met.badRequest()
			sc.respond(tag, encodeResponse(stBadReq, []byte("duplicate hello")))
			putBuf(bp)
		case opSubscribe, opSegmentCatchup:
			sc.startSubscribe(tag, rq)
			putBuf(bp)
		case opInvalSub:
			sc.startInvalStream(tag)
			putBuf(bp)
		case opReplAck:
			sc.routeAck(tag, rq)
			putBuf(bp)
		default:
			sc.inflight.Add(1)
			s.met.inflightDelta(1)
			s.met.poolQueued(1)
			sc.jobs <- srvJob{tag: tag, rq: rq, buf: bp}
		}
	}
}

// respond enqueues a response frame from the reader, best-effort.
func (sc *srvConn) respond(tag uint32, payload []byte) {
	bp := getBuf()
	*bp = appendFrame((*bp)[:0], tag, payload)
	select {
	case sc.wq <- bp:
	case <-sc.down:
		putBuf(bp)
	}
}

// routeAck forwards a subscriber's applied-seq ack to its stream's
// keep-latest mailbox. Acks for a tag with no live stream are dropped —
// they are advisory progress reports, never required for correctness.
func (sc *srvConn) routeAck(tag uint32, rq request) {
	if len(rq.key) != watermarkBytes {
		sc.s.met.badRequest()
		sc.respond(tag, encodeResponse(stBadReq, []byte("bad replication ack")))
		return
	}
	seq := binary.BigEndian.Uint64(rq.key[4:])
	sc.tagMu.Lock()
	ch := sc.streamTags[tag]
	sc.tagMu.Unlock()
	if ch == nil {
		return
	}
	for {
		select {
		case ch <- seq:
			return
		default:
		}
		select {
		case <-ch: // displace the stale ack; only the latest matters
		default:
		}
	}
}

// worker executes queued requests until the reader closes the job
// channel. A panic is confined to its request: the client gets stError
// on the tag, the connection aborts, the worker and process survive.
func (sc *srvConn) worker() {
	defer sc.workers.Done()
	for job := range sc.jobs {
		sc.s.met.poolQueued(-1)
		t0 := time.Now()
		panicked := sc.s.serveRecover(tagWriter{sc: sc, tag: job.tag}, job.rq)
		sc.s.met.request(job.rq.op, uint64(time.Since(t0)))
		putBuf(job.buf)
		sc.s.met.inflightDelta(-1)
		sc.done()
		if panicked {
			sc.abort()
		}
	}
}

// writer is the connection's single write path: it collects pending
// response frames and hands them to the kernel in one writev-style flush
// (net.Buffers), recycling the frame buffers afterwards. On a write
// failure it aborts the connection but keeps draining the queue so no
// producer ever blocks on a dead connection.
func (sc *srvConn) writer() {
	defer close(sc.writerDone)
	var bufs net.Buffers
	var owned []*[]byte
	failed := false
	for bp := range sc.wq {
		bufs, owned = bufs[:0], owned[:0]
		bufs = append(bufs, *bp)
		owned = append(owned, bp)
	gather:
		for len(owned) < 32 {
			select {
			case more, ok := <-sc.wq:
				if !ok {
					break gather
				}
				bufs = append(bufs, *more)
				owned = append(owned, more)
			default:
				break gather
			}
		}
		if !failed {
			sc.s.touchWrite(sc.conn)
			if _, err := bufs.WriteTo(sc.conn); err != nil {
				failed = true
				sc.abort()
			}
		}
		for _, b := range owned {
			putBuf(b)
		}
	}
}

// touchWrite pushes the connection's write deadline forward.
func (s *Server) touchWrite(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

// serveRecover runs one request, converting a handler panic into an
// stError response plus connection abort instead of process death.
func (s *Server) serveRecover(w tagWriter, rq request) (panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			s.met.panicked()
			s.logf("kvnet: panic serving op %d: %v", rq.op, p)
			_ = w.send(encodeResponse(stError, []byte(fmt.Sprintf("internal error: %v", p))))
			panicked = true
		}
	}()
	if err := s.serve(w, rq); err != nil && !errors.Is(err, net.ErrClosed) {
		s.logf("kvnet: connection error: %v", err)
	}
	return false
}

// serve executes one request against the store and emits the response
// frames on the request's tag.
func (s *Server) serve(w tagWriter, rq request) error {
	if !s.concurrent {
		// One enclave thread: every request takes the global lock. A
		// concurrency-safe store serializes internally instead, so two
		// requests on different shards overlap here.
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	// Role gating comes first: a fenced ex-primary must answer with its
	// typed sentinel before any store access, and a replica rejects
	// writes the same way.
	if resp := s.replGate(rq); resp != nil {
		return w.send(resp)
	}
	if rq.op == opReplStatus {
		return s.serveReplStatus(w)
	}
	if rq.op == opSnapshotTransfer {
		return s.serveSnapshotTransfer(w, rq)
	}
	// Crossing into the enclave costs one ECALL per request. Batch ops
	// skip this: their native store path charges one amortized batched
	// entry for the whole request instead.
	if rq.op >= opMGet && rq.op <= opMDelete {
		return s.serveBatch(w, rq)
	}
	if ec, ok := s.store.(aria.EdgeCaller); ok {
		ec.ChargeEcall()
	}
	switch rq.op {
	case opGet:
		// A watermarked read (GetAt) carries its watermark list in the
		// value field; a replica that has not applied them yet answers
		// stLagging instead of stale data.
		if len(rq.value) > 0 {
			if resp := s.replLagCheck(rq.value); resp != nil {
				return w.send(resp)
			}
		}
		v, err := s.store.Get(rq.key)
		if err != nil {
			return w.send(errResponse(err))
		}
		return w.send(encodeResponse(stOK, v))
	case opPut:
		if err := s.store.Put(rq.key, rq.value); err != nil {
			return w.send(errResponse(err))
		}
		s.invalPublish(rq.key)
		body, err := s.replWriteAck(rq.key)
		if err != nil {
			return w.send(encodeResponse(stError, []byte(err.Error())))
		}
		return w.send(encodeResponse(stOK, body))
	case opDelete:
		if err := s.store.Delete(rq.key); err != nil {
			return w.send(errResponse(err))
		}
		s.invalPublish(rq.key)
		body, err := s.replWriteAck(rq.key)
		if err != nil {
			return w.send(encodeResponse(stError, []byte(err.Error())))
		}
		return w.send(encodeResponse(stOK, body))
	case opGetV:
		// Watermarked versioned reads carry their watermark list in the
		// value field, exactly like opGet.
		if len(rq.value) > 0 {
			if resp := s.replLagCheck(rq.value); resp != nil {
				return w.send(resp)
			}
		}
		v, ver, err := s.store.GetV(rq.key)
		if err != nil {
			return w.send(errResponse(err))
		}
		body := make([]byte, 8+len(v))
		binary.BigEndian.PutUint64(body[:8], ver)
		copy(body[8:], v)
		return w.send(encodeResponse(stOK, body))
	case opCAS:
		if len(rq.value) < 8 {
			s.met.badRequest()
			return w.send(encodeResponse(stBadReq, []byte("cas request shorter than its version")))
		}
		expect := binary.BigEndian.Uint64(rq.value[:8])
		if err := s.store.CompareAndSwap(rq.key, rq.value[8:], expect); err != nil {
			return w.send(errResponse(err))
		}
		s.invalPublish(rq.key)
		body, err := s.replWriteAck(rq.key)
		if err != nil {
			return w.send(encodeResponse(stError, []byte(err.Error())))
		}
		return w.send(encodeResponse(stOK, body))
	case opPutTTL:
		if len(rq.value) < 8 {
			s.met.badRequest()
			return w.send(encodeResponse(stBadReq, []byte("put-ttl request shorter than its ttl")))
		}
		ttl := time.Duration(binary.BigEndian.Uint64(rq.value[:8]))
		if err := s.store.PutTTL(rq.key, rq.value[8:], ttl); err != nil {
			return w.send(errResponse(err))
		}
		s.invalPublish(rq.key)
		body, err := s.replWriteAck(rq.key)
		if err != nil {
			return w.send(encodeResponse(stError, []byte(err.Error())))
		}
		return w.send(encodeResponse(stOK, body))
	case opTxnCommit:
		if err := s.store.TxnCommit(rq.tops); err != nil {
			return w.send(errResponse(err))
		}
		// Every written key invalidates client-side caches, exactly as if
		// it had been Put individually — the commit already happened, so
		// the invalidations describe the new state.
		for i := range rq.tops {
			if !rq.tops[i].ReadOnly {
				s.invalPublish(rq.tops[i].Key)
			}
		}
		body, err := s.replTxnAck(rq.tops)
		if err != nil {
			return w.send(encodeResponse(stError, []byte(err.Error())))
		}
		return w.send(encodeResponse(stOK, body))
	case opStats:
		body, err := json.Marshal(s.replOverlay(s.store.Stats()))
		if err != nil {
			return w.send(encodeResponse(stError, []byte(err.Error())))
		}
		return w.send(encodeResponse(stOK, body))
	case opCheckpoint:
		d, ok := s.store.(aria.Durable)
		if !ok {
			return w.send(errResponse(aria.ErrNotDurable))
		}
		if err := d.Checkpoint(); err != nil {
			return w.send(errResponse(err))
		}
		return w.send(encodeResponse(stOK, nil))
	case opScan:
		r, ok := s.store.(aria.Ranger)
		if !ok {
			return w.send(errResponse(aria.ErrNoScan))
		}
		var end []byte
		if len(rq.value) > 0 {
			end = rq.value
		}
		limit := rq.limit
		var streamErr error
		err := r.Scan(rq.key, end, func(k, v []byte) bool {
			if streamErr = w.send(encodeResponse(stMore, encodePair(k, v))); streamErr != nil {
				return false
			}
			if limit > 0 {
				limit--
				if limit == 0 {
					return false
				}
			}
			return true
		})
		if streamErr != nil {
			return streamErr
		}
		if err != nil {
			// Sharded stores always expose the Ranger surface and report
			// unsupported indexes via the sentinel instead; errResponse
			// keeps the wire response identical to a store without Ranger.
			return w.send(errResponse(err))
		}
		return w.send(encodeResponse(stDone, nil))
	default:
		s.met.badRequest()
		return w.send(encodeResponse(stBadReq, []byte(fmt.Sprintf("unknown op %d", rq.op))))
	}
}

func errResponse(err error) []byte {
	switch {
	case errors.Is(err, aria.ErrNotFound):
		return encodeResponse(stNotFound, nil)
	case errors.Is(err, aria.ErrIntegrity):
		return encodeResponse(stIntegrity, []byte(err.Error()))
	case errors.Is(err, aria.ErrTooLarge):
		return encodeResponse(stTooLarge, []byte(err.Error()))
	case errors.Is(err, aria.ErrEmptyKey):
		return encodeResponse(stEmptyKey, nil)
	case errors.Is(err, aria.ErrNoScan):
		return encodeResponse(stNoScan, nil)
	case errors.Is(err, aria.ErrNotDurable):
		return encodeResponse(stNotDurable, nil)
	case errors.Is(err, aria.ErrFenced):
		return encodeResponse(stFenced, []byte(err.Error()))
	case errors.Is(err, aria.ErrReadOnlyReplica):
		return encodeResponse(stReadOnly, nil)
	case errors.Is(err, aria.ErrLagging):
		return encodeResponse(stLagging, nil)
	case errors.Is(err, aria.ErrCASMismatch):
		return encodeResponse(stCASMismatch, []byte(err.Error()))
	case errors.Is(err, aria.ErrTxnConflict):
		return encodeResponse(stTxnConflict, []byte(err.Error()))
	default:
		return encodeResponse(stError, []byte(err.Error()))
	}
}
