package kvnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/obs"
)

// Server lifecycle states (Server.state).
const (
	stateNew = iota
	stateServing
	stateClosed
)

var (
	// ErrServerClosed is returned by Serve and ListenAndServe after Close.
	ErrServerClosed = errors.New("kvnet: server closed")
	// errAlreadyServing is returned by a second concurrent Serve call.
	errAlreadyServing = errors.New("kvnet: Serve called twice on the same Server")
)

// ServerConfig tunes the server's robustness limits. Zero values select
// the defaults below; use a negative duration to disable a timeout.
type ServerConfig struct {
	// MaxConns caps simultaneous connections; beyond it new connections
	// are shed with an stBusy response and closed (default 1024).
	MaxConns int
	// IdleTimeout bounds how long a connection may sit between requests,
	// including the time to read one full request frame (default 2m).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response frame write (default 30s).
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight connections
	// before force-closing them (default 5s).
	DrainTimeout time.Duration
	// Metrics, when non-nil, instruments the server into the given
	// registry: request counts and service-time histograms by operation,
	// wire bytes in/out, connection admission/shedding, corrupt and
	// malformed frame counts, and handler panics. nil (the default)
	// disables network instrumentation entirely. See docs/OPERATIONS.md
	// for the metric catalogue.
	Metrics *obs.Registry
	// Repl, when non-nil, enables the replication surface: subscribe
	// and snapshot-transfer streams, role-based request gating (a
	// replica rejects writes, a fenced node rejects everything),
	// watermark bodies on write responses, and watermarked reads. See
	// the repl package for implementations.
	Repl ReplBackend
	// InvalPush enables the invalidation stream (opInvalSub) for
	// coherent client-side caches: every committed write is pushed as a
	// (key-hash, shard, seq) entry to subscribed streams. Off by
	// default; see inval.go and the ccache package.
	InvalPush bool
	// InvalHeartbeat is the idle heartbeat interval on invalidation
	// streams (default 500ms). Caches treat heartbeat silence as stream
	// loss and drop cold.
	InvalHeartbeat time.Duration
	// InvalBuffer is the per-subscriber invalidation mailbox depth
	// (default 1024). A subscriber that falls this far behind has its
	// stream terminated — the write path never blocks on a slow cache.
	InvalBuffer int
}

func (c *ServerConfig) fillDefaults() {
	if c.MaxConns == 0 {
		c.MaxConns = 1024
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.InvalHeartbeat == 0 {
		c.InvalHeartbeat = 500 * time.Millisecond
	}
	if c.InvalBuffer == 0 {
		c.InvalBuffer = 1024
	}
}

// Server serves an aria.Store over TCP. Plain store engines are
// single-threaded by design (they model one enclave thread, matching the
// paper's single-threaded evaluation), so requests from all connections
// are serialized through one mutex; concurrency buys connection handling,
// not operation parallelism. Stores that declare themselves safe for
// concurrent use — aria.ConcurrentStore with ConcurrentSafe() == true,
// e.g. a store opened with Options.Shards > 1 — skip that global mutex
// entirely: the store serializes internally (per shard), so requests
// touching different shards execute concurrently on different cores.
//
// A handler panic is confined to its connection: the client receives an
// stError response and the connection closes, but the process and the
// other connections keep serving.
type Server struct {
	store      aria.Store
	cfg        ServerConfig
	mu         sync.Mutex // serializes store access (one enclave thread)
	concurrent bool       // store locks internally; skip s.mu

	state     atomic.Int32
	lisMu     sync.Mutex
	lis       net.Listener
	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
	closeErr  error
	shed      atomic.Uint64 // connections refused at the limit
	logf      func(format string, args ...any)
	met       *serverMetrics // nil when ServerConfig.Metrics is nil (no-op hooks)
	inval     *invalHub      // nil unless ServerConfig.InvalPush
}

// NewServer wraps a store with default limits.
func NewServer(store aria.Store) *Server {
	return NewServerConfig(store, ServerConfig{})
}

// NewServerConfig wraps a store with explicit limits.
func NewServerConfig(store aria.Store, cfg ServerConfig) *Server {
	cfg.fillDefaults()
	s := &Server{
		store:   store,
		cfg:     cfg,
		conns:   make(map[net.Conn]struct{}),
		closing: make(chan struct{}),
		logf:    log.Printf,
	}
	if cs, ok := store.(aria.ConcurrentStore); ok && cs.ConcurrentSafe() {
		s.concurrent = true
	}
	if cfg.Metrics != nil {
		s.met = newServerMetrics(cfg.Metrics)
	}
	if cfg.InvalPush {
		s.inval = newInvalHub()
	}
	return s
}

// SetLogf replaces the server's logger (tests use a silent one).
func (s *Server) SetLogf(f func(string, ...any)) { s.logf = f }

// ShedConns reports how many connections were refused at the limit.
func (s *Server) ShedConns() uint64 { return s.shed.Load() }

// Serve accepts connections on lis until Close. It returns after the
// listener fails or is closed. Calling Serve twice, or after Close,
// returns an error instead of corrupting server state.
func (s *Server) Serve(lis net.Listener) error {
	if !s.state.CompareAndSwap(stateNew, stateServing) {
		lis.Close()
		if s.state.Load() == stateClosed {
			return ErrServerClosed
		}
		return errAlreadyServing
	}
	s.lisMu.Lock()
	s.lis = lis
	s.lisMu.Unlock()
	// Close may have raced between the CAS and the listener store; make
	// sure a concurrent Close always finds a listener to shut down.
	select {
	case <-s.closing:
		lis.Close()
		return ErrServerClosed
	default:
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return ErrServerClosed
			default:
				return err
			}
		}
		s.connMu.Lock()
		if len(s.conns) >= s.cfg.MaxConns {
			s.connMu.Unlock()
			s.shed.Add(1)
			s.met.connShed()
			go s.shedConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.met.connOpened()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// shedConn tells an over-limit connection to go away and closes it.
// The half-close + drain lets the stBusy frame reach a client whose
// request is still in flight: closing with unread bytes pending would
// send an RST that can discard the response on the way.
func (s *Server) shedConn(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	_ = writeFrame(conn, encodeResponse(stBusy, []byte("server at connection limit")))
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		_, _ = io.Copy(io.Discard, io.LimitReader(conn, maxFrameWire))
	}
	_ = conn.Close()
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Addr returns the bound address (nil until Serve has started).
func (s *Server) Addr() net.Addr {
	s.lisMu.Lock()
	defer s.lisMu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Close stops accepting, lets in-flight connections finish for up to
// DrainTimeout, then force-closes the stragglers. It is idempotent;
// subsequent calls return the first call's result.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		prev := s.state.Swap(stateClosed)
		close(s.closing)
		s.lisMu.Lock()
		lis := s.lis
		s.lisMu.Unlock()
		if lis != nil {
			s.closeErr = lis.Close()
		}
		if prev != stateServing {
			return
		}
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		if s.cfg.DrainTimeout > 0 {
			select {
			case <-done:
				return
			case <-time.After(s.cfg.DrainTimeout):
				s.connMu.Lock()
				for c := range s.conns {
					_ = c.Close()
				}
				s.connMu.Unlock()
			}
		}
		<-done
	})
	return s.closeErr
}

func (s *Server) forget(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

func (s *Server) handle(conn net.Conn) {
	defer s.forget(conn)
	defer conn.Close()
	defer s.met.connClosed()
	// The wrapper counts wire bytes; deadlines and Close pass through to
	// the underlying connection.
	wire := s.met.wrap(conn)
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = wire.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		frame, err := readFrame(wire, maxFrameWire)
		if err != nil {
			switch {
			case errors.Is(err, errCorruptFrame):
				// The request was damaged in transit and never decoded:
				// tell the client it is safe to retry, then resync by
				// closing the (possibly desynchronized) stream.
				s.met.corruptFrame()
				s.touchWrite(wire)
				_ = writeFrame(wire, encodeResponse(stCorrupt, []byte(err.Error())))
			case errors.Is(err, errMalformed):
				s.met.badRequest()
				s.touchWrite(wire)
				_ = writeFrame(wire, encodeResponse(stBadReq, []byte(err.Error())))
			}
			return // EOF, timeout, or broken connection
		}
		rq, err := decodeRequest(frame)
		if err != nil {
			s.met.badRequest()
			s.touchWrite(wire)
			_ = writeFrame(wire, encodeResponse(stBadReq, []byte(err.Error())))
			return
		}
		s.touchWrite(wire)
		if rq.op == opSubscribe || rq.op == opSegmentCatchup {
			// The connection becomes a dedicated replication stream; the
			// handler owns it until the stream ends, then the connection
			// closes (a subscriber redials to resume).
			if err := s.serveSubscribe(wire, rq); err != nil && !errors.Is(err, net.ErrClosed) {
				s.logf("kvnet: subscribe stream error: %v", err)
			}
			return
		}
		if rq.op == opInvalSub {
			// Same dedication for invalidation streams: the handler owns
			// the connection until the stream ends (drain, overflow, or
			// connection death), then the cache redials cold.
			if err := s.serveInvalSub(wire); err != nil && !errors.Is(err, net.ErrClosed) {
				s.logf("kvnet: invalidation stream error: %v", err)
			}
			return
		}
		t0 := time.Now()
		err = s.serveRecover(wire, rq)
		s.met.request(rq.op, uint64(time.Since(t0)))
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.logf("kvnet: connection error: %v", err)
			}
			return
		}
	}
}

// touchWrite pushes the connection's write deadline forward.
func (s *Server) touchWrite(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

// serveRecover runs one request, converting a handler panic into an
// stError response plus connection close instead of process death.
func (s *Server) serveRecover(conn net.Conn, rq request) (err error) {
	defer func() {
		if p := recover(); p != nil {
			s.met.panicked()
			s.logf("kvnet: panic serving op %d: %v", rq.op, p)
			s.touchWrite(conn)
			_ = writeFrame(conn, encodeResponse(stError, []byte(fmt.Sprintf("internal error: %v", p))))
			err = fmt.Errorf("kvnet: handler panic: %v", p)
		}
	}()
	return s.serve(conn, rq)
}

// serve executes one request against the store and writes the response.
func (s *Server) serve(conn net.Conn, rq request) error {
	if !s.concurrent {
		// One enclave thread: every request takes the global lock. A
		// concurrency-safe store serializes internally instead, so two
		// requests on different shards overlap here.
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	// Role gating comes first: a fenced ex-primary must answer with its
	// typed sentinel before any store access, and a replica rejects
	// writes the same way.
	if resp := s.replGate(rq); resp != nil {
		return writeFrame(conn, resp)
	}
	if rq.op == opReplStatus {
		return s.serveReplStatus(conn)
	}
	if rq.op == opSnapshotTransfer {
		return s.serveSnapshotTransfer(conn, rq)
	}
	// Crossing into the enclave costs one ECALL per request. Batch ops
	// skip this: their native store path charges one amortized batched
	// entry for the whole request instead.
	if rq.op >= opMGet && rq.op <= opMDelete {
		return s.serveBatch(conn, rq)
	}
	if ec, ok := s.store.(aria.EdgeCaller); ok {
		ec.ChargeEcall()
	}
	switch rq.op {
	case opGet:
		// A watermarked read (GetAt) carries its watermark list in the
		// value field; a replica that has not applied them yet answers
		// stLagging instead of stale data.
		if len(rq.value) > 0 {
			if resp := s.replLagCheck(rq.value); resp != nil {
				return writeFrame(conn, resp)
			}
		}
		v, err := s.store.Get(rq.key)
		if err != nil {
			return writeFrame(conn, errResponse(err))
		}
		return writeFrame(conn, encodeResponse(stOK, v))
	case opPut:
		if err := s.store.Put(rq.key, rq.value); err != nil {
			return writeFrame(conn, errResponse(err))
		}
		s.invalPublish(rq.key)
		body, err := s.replWriteAck(rq.key)
		if err != nil {
			return writeFrame(conn, encodeResponse(stError, []byte(err.Error())))
		}
		return writeFrame(conn, encodeResponse(stOK, body))
	case opDelete:
		if err := s.store.Delete(rq.key); err != nil {
			return writeFrame(conn, errResponse(err))
		}
		s.invalPublish(rq.key)
		body, err := s.replWriteAck(rq.key)
		if err != nil {
			return writeFrame(conn, encodeResponse(stError, []byte(err.Error())))
		}
		return writeFrame(conn, encodeResponse(stOK, body))
	case opStats:
		body, err := json.Marshal(s.replOverlay(s.store.Stats()))
		if err != nil {
			return writeFrame(conn, encodeResponse(stError, []byte(err.Error())))
		}
		return writeFrame(conn, encodeResponse(stOK, body))
	case opCheckpoint:
		d, ok := s.store.(aria.Durable)
		if !ok {
			return writeFrame(conn, errResponse(aria.ErrNotDurable))
		}
		if err := d.Checkpoint(); err != nil {
			return writeFrame(conn, errResponse(err))
		}
		return writeFrame(conn, encodeResponse(stOK, nil))
	case opScan:
		r, ok := s.store.(aria.Ranger)
		if !ok {
			return writeFrame(conn, errResponse(aria.ErrNoScan))
		}
		var end []byte
		if len(rq.value) > 0 {
			end = rq.value
		}
		limit := rq.limit
		var streamErr error
		err := r.Scan(rq.key, end, func(k, v []byte) bool {
			s.touchWrite(conn)
			if streamErr = writeFrame(conn, encodeResponse(stMore, encodePair(k, v))); streamErr != nil {
				return false
			}
			if limit > 0 {
				limit--
				if limit == 0 {
					return false
				}
			}
			return true
		})
		if streamErr != nil {
			return streamErr
		}
		if err != nil {
			// Sharded stores always expose the Ranger surface and report
			// unsupported indexes via the sentinel instead; errResponse
			// keeps the wire response identical to a store without Ranger.
			return writeFrame(conn, errResponse(err))
		}
		return writeFrame(conn, encodeResponse(stDone, nil))
	default:
		s.met.badRequest()
		return writeFrame(conn, encodeResponse(stBadReq, []byte(fmt.Sprintf("unknown op %d", rq.op))))
	}
}

func errResponse(err error) []byte {
	switch {
	case errors.Is(err, aria.ErrNotFound):
		return encodeResponse(stNotFound, nil)
	case errors.Is(err, aria.ErrIntegrity):
		return encodeResponse(stIntegrity, []byte(err.Error()))
	case errors.Is(err, aria.ErrTooLarge):
		return encodeResponse(stTooLarge, []byte(err.Error()))
	case errors.Is(err, aria.ErrEmptyKey):
		return encodeResponse(stEmptyKey, nil)
	case errors.Is(err, aria.ErrNoScan):
		return encodeResponse(stNoScan, nil)
	case errors.Is(err, aria.ErrNotDurable):
		return encodeResponse(stNotDurable, nil)
	case errors.Is(err, aria.ErrFenced):
		return encodeResponse(stFenced, []byte(err.Error()))
	case errors.Is(err, aria.ErrReadOnlyReplica):
		return encodeResponse(stReadOnly, nil)
	case errors.Is(err, aria.ErrLagging):
		return encodeResponse(stLagging, nil)
	default:
		return encodeResponse(stError, []byte(err.Error()))
	}
}
