package kvnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"github.com/ariakv/aria"
)

// Server serves an aria.Store over TCP. The store engines are
// single-threaded by design (they model one enclave thread, matching the
// paper's single-threaded evaluation), so requests from all connections are
// serialized through one mutex; concurrency buys connection handling, not
// operation parallelism.
type Server struct {
	store aria.Store
	mu    sync.Mutex // serializes store access (one enclave thread)

	lis     net.Listener
	wg      sync.WaitGroup
	closing chan struct{}
	logf    func(format string, args ...any)
}

// NewServer wraps a store.
func NewServer(store aria.Store) *Server {
	return &Server{
		store:   store,
		closing: make(chan struct{}),
		logf:    log.Printf,
	}
}

// SetLogf replaces the server's logger (tests use a silent one).
func (s *Server) SetLogf(f func(string, ...any)) { s.logf = f }

// Serve accepts connections on lis until Close. It returns after the
// listener fails or is closed.
func (s *Server) Serve(lis net.Listener) error {
	s.lis = lis
	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Addr returns the bound address (valid after Serve starts).
func (s *Server) Addr() net.Addr {
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	close(s.closing)
	var err error
	if s.lis != nil {
		err = s.lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	for {
		frame, err := readFrame(conn, 16+maxKeyWire+maxValueWire)
		if err != nil {
			return // EOF or broken connection
		}
		rq, err := decodeRequest(frame)
		if err != nil {
			_ = writeFrame(conn, encodeResponse(stBadReq, []byte(err.Error())))
			return
		}
		if err := s.serve(conn, rq); err != nil {
			s.logf("kvnet: connection error: %v", err)
			return
		}
	}
}

// serve executes one request against the store and writes the response.
func (s *Server) serve(conn net.Conn, rq request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Crossing into the enclave costs one ECALL per request.
	if ec, ok := s.store.(aria.EdgeCaller); ok {
		ec.ChargeEcall()
	}
	switch rq.op {
	case opGet:
		v, err := s.store.Get(rq.key)
		if err != nil {
			return writeFrame(conn, errResponse(err))
		}
		return writeFrame(conn, encodeResponse(stOK, v))
	case opPut:
		if err := s.store.Put(rq.key, rq.value); err != nil {
			return writeFrame(conn, errResponse(err))
		}
		return writeFrame(conn, encodeResponse(stOK, nil))
	case opDelete:
		if err := s.store.Delete(rq.key); err != nil {
			return writeFrame(conn, errResponse(err))
		}
		return writeFrame(conn, encodeResponse(stOK, nil))
	case opStats:
		body, err := json.Marshal(s.store.Stats())
		if err != nil {
			return writeFrame(conn, encodeResponse(stError, []byte(err.Error())))
		}
		return writeFrame(conn, encodeResponse(stOK, body))
	case opScan:
		r, ok := s.store.(aria.Ranger)
		if !ok {
			return writeFrame(conn, encodeResponse(stBadReq, []byte(aria.ErrNoScan.Error())))
		}
		var end []byte
		if len(rq.value) > 0 {
			end = rq.value
		}
		limit := rq.limit
		var streamErr error
		err := r.Scan(rq.key, end, func(k, v []byte) bool {
			if streamErr = writeFrame(conn, encodeResponse(stMore, encodePair(k, v))); streamErr != nil {
				return false
			}
			if limit > 0 {
				limit--
				if limit == 0 {
					return false
				}
			}
			return true
		})
		if streamErr != nil {
			return streamErr
		}
		if err != nil {
			return writeFrame(conn, errResponse(err))
		}
		return writeFrame(conn, encodeResponse(stDone, nil))
	default:
		return writeFrame(conn, encodeResponse(stBadReq, []byte(fmt.Sprintf("unknown op %d", rq.op))))
	}
}

func errResponse(err error) []byte {
	switch {
	case errors.Is(err, aria.ErrNotFound):
		return encodeResponse(stNotFound, nil)
	case errors.Is(err, aria.ErrIntegrity):
		return encodeResponse(stIntegrity, []byte(err.Error()))
	default:
		return encodeResponse(stError, []byte(err.Error()))
	}
}
