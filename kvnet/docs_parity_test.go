package kvnet

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/obs"
)

// TestDocsMetricsParity enforces that docs/OPERATIONS.md documents
// exactly the metric families the live endpoint emits — no undocumented
// metric, no documented ghost. It builds a registry covering every
// layer (sharded store, kvnet server, kvnet client), renders the
// Prometheus output, and compares the family set against the names in
// the catalogue tables.
func TestDocsMetricsParity(t *testing.T) {
	reg := obs.NewRegistry()
	// Store layer: a sharded store registers per-op instruments eagerly
	// and its collectors emit the Stats-mirror families at scrape time.
	if _, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     8 << 20,
		ExpectedKeys: 64,
		Shards:       2,
		Metrics:      reg,
	}); err != nil {
		t.Fatal(err)
	}
	// Network layer: constructing the instrument sets registers every
	// server and client family without needing live traffic.
	newServerMetrics(reg)
	newClientMetrics(reg)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	emitted := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			emitted[strings.Fields(line)[2]] = true
		}
	}
	if len(emitted) == 0 {
		t.Fatal("no metric families emitted")
	}

	doc, err := os.ReadFile(filepath.Join("..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	// Catalogue rows are markdown table lines whose first cell is the
	// backticked family name.
	nameRe := regexp.MustCompile("^\\| `((?:aria|kvnet)_[a-z0-9_]+)`")
	documented := map[string]bool{}
	for _, line := range strings.Split(string(doc), "\n") {
		if m := nameRe.FindStringSubmatch(line); m != nil {
			if documented[m[1]] {
				t.Errorf("docs/OPERATIONS.md lists %s twice", m[1])
			}
			documented[m[1]] = true
		}
	}

	var missing, ghosts []string
	for name := range emitted {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !emitted[name] {
			ghosts = append(ghosts, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(ghosts)
	if len(missing) > 0 {
		t.Errorf("emitted but not documented in docs/OPERATIONS.md: %v", missing)
	}
	if len(ghosts) > 0 {
		t.Errorf("documented in docs/OPERATIONS.md but never emitted: %v", ghosts)
	}
}

// TestDocsProtocolParity enforces that docs/PROTOCOL.md — the normative
// wire spec — names exactly the opcode and status constants protocol.go
// defines: every op*/st* constant must appear backticked in the spec,
// and the spec must not name one that no longer exists. A new opcode
// without spec coverage, or a renamed status leaving a stale spec row,
// fails the build.
func TestDocsProtocolParity(t *testing.T) {
	src, err := os.ReadFile("protocol.go")
	if err != nil {
		t.Fatal(err)
	}
	constRe := regexp.MustCompile(`(?m)^\t((?:op|st)[A-Z][A-Za-z]*)\s*=`)
	defined := map[string]bool{}
	for _, m := range constRe.FindAllStringSubmatch(string(src), -1) {
		defined[m[1]] = true
	}
	if len(defined) < 30 {
		t.Fatalf("only %d op*/st* constants found in protocol.go; extraction broken?", len(defined))
	}

	doc, err := os.ReadFile(filepath.Join("..", "docs", "PROTOCOL.md"))
	if err != nil {
		t.Fatal(err)
	}
	nameRe := regexp.MustCompile("`((?:op|st)[A-Z][A-Za-z]*)`")
	named := map[string]bool{}
	for _, m := range nameRe.FindAllStringSubmatch(string(doc), -1) {
		named[m[1]] = true
	}

	var missing, ghosts []string
	for c := range defined {
		if !named[c] {
			missing = append(missing, c)
		}
	}
	for c := range named {
		if !defined[c] {
			ghosts = append(ghosts, c)
		}
	}
	sort.Strings(missing)
	sort.Strings(ghosts)
	if len(missing) > 0 {
		t.Errorf("defined in protocol.go but absent from docs/PROTOCOL.md: %v", missing)
	}
	if len(ghosts) > 0 {
		t.Errorf("named in docs/PROTOCOL.md but not defined in protocol.go: %v", ghosts)
	}
}
