package kvnet

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/obs"
)

// TestDocsMetricsParity enforces that docs/OPERATIONS.md documents
// exactly the metric families the live endpoint emits — no undocumented
// metric, no documented ghost. It builds a registry covering every
// layer (sharded store, kvnet server, kvnet client), renders the
// Prometheus output, and compares the family set against the names in
// the catalogue tables.
func TestDocsMetricsParity(t *testing.T) {
	reg := obs.NewRegistry()
	// Store layer: a sharded store registers per-op instruments eagerly
	// and its collectors emit the Stats-mirror families at scrape time.
	if _, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     8 << 20,
		ExpectedKeys: 64,
		Shards:       2,
		Metrics:      reg,
	}); err != nil {
		t.Fatal(err)
	}
	// Network layer: constructing the instrument sets registers every
	// server and client family without needing live traffic.
	newServerMetrics(reg)
	newClientMetrics(reg)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	emitted := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			emitted[strings.Fields(line)[2]] = true
		}
	}
	if len(emitted) == 0 {
		t.Fatal("no metric families emitted")
	}

	doc, err := os.ReadFile(filepath.Join("..", "docs", "OPERATIONS.md"))
	if err != nil {
		t.Fatal(err)
	}
	// Catalogue rows are markdown table lines whose first cell is the
	// backticked family name.
	nameRe := regexp.MustCompile("^\\| `((?:aria|kvnet)_[a-z0-9_]+)`")
	documented := map[string]bool{}
	for _, line := range strings.Split(string(doc), "\n") {
		if m := nameRe.FindStringSubmatch(line); m != nil {
			if documented[m[1]] {
				t.Errorf("docs/OPERATIONS.md lists %s twice", m[1])
			}
			documented[m[1]] = true
		}
	}

	var missing, ghosts []string
	for name := range emitted {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !emitted[name] {
			ghosts = append(ghosts, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(ghosts)
	if len(missing) > 0 {
		t.Errorf("emitted but not documented in docs/OPERATIONS.md: %v", missing)
	}
	if len(ghosts) > 0 {
		t.Errorf("documented in docs/OPERATIONS.md but never emitted: %v", ghosts)
	}
}
