package kvnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/ariakv/aria"
)

// fastRetry is a retry policy tuned for tests: quick and bounded.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    attempts,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.2,
	}
}

func startServerConfig(t *testing.T, store aria.Store, cfg ServerConfig) *Server {
	t.Helper()
	srv := NewServerConfig(store, cfg)
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return srv
}

func openStore(t *testing.T) aria.Store {
	t.Helper()
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// ---- scan frame-cap regression (client/server caps must agree) ----------

// bigPairStore serves one near-wire-max pair without the enclave
// simulator, to exercise the framing layer at its limits.
type bigPairStore struct {
	aria.Store // unimplemented surface (GetV, CAS, TTL, txn) panics if reached
	key, value []byte
}

func (s *bigPairStore) Put(key, value []byte) error { return nil }
func (s *bigPairStore) Get(key []byte) ([]byte, error) {
	if bytes.Equal(key, s.key) {
		return s.value, nil
	}
	return nil, aria.ErrNotFound
}
func (s *bigPairStore) Delete(key []byte) error { return aria.ErrNotFound }
func (s *bigPairStore) MGet(keys [][]byte) ([][]byte, []error) {
	vals := make([][]byte, len(keys))
	var errs []error
	for i, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			if errs == nil {
				errs = make([]error, len(keys))
			}
			errs[i] = err
			continue
		}
		vals[i] = v
	}
	return vals, errs
}
func (s *bigPairStore) MPut(pairs []aria.KV) []error { return nil }
func (s *bigPairStore) MDelete(keys [][]byte) []error {
	errs := make([]error, len(keys))
	for i := range errs {
		errs[i] = aria.ErrNotFound
	}
	return errs
}
func (s *bigPairStore) Stats() aria.Stats      { return aria.Stats{Keys: 1} }
func (s *bigPairStore) VerifyIntegrity() error { return nil }
func (s *bigPairStore) SetMeasuring(on bool)   {}
func (s *bigPairStore) ResetStats()            {}
func (s *bigPairStore) Scan(start, end []byte, fn func(k, v []byte) bool) error {
	fn(s.key, s.value)
	return nil
}

func TestScanDeliversNearMaxPair(t *testing.T) {
	// A pair whose encodePair body exceeds the client's former read cap
	// of 16+maxValueWire: klen+vlen must beat 13+maxValueWire.
	key := bytes.Repeat([]byte{'k'}, 65535)
	value := bytes.Repeat([]byte{'v'}, maxValueWire)
	fake := &bigPairStore{key: key, value: value}
	srv := startServerConfig(t, fake, ServerConfig{DrainTimeout: 200 * time.Millisecond})
	addr := waitAddr(t, srv)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	got := 0
	err = cl.Scan(nil, nil, 0, func(k, v []byte) bool {
		got++
		if len(k) != len(key) || len(v) != len(value) {
			t.Errorf("pair sizes = %d/%d, want %d/%d", len(k), len(v), len(key), len(value))
		}
		return true
	})
	if err != nil {
		t.Fatalf("near-max pair killed the scan: %v", err)
	}
	if got != 1 {
		t.Fatalf("delivered %d pairs, want 1", got)
	}
	// The connection must remain usable after the giant frame.
	if _, err := cl.Get(key); err != nil {
		t.Fatalf("connection unusable after near-max scan: %v", err)
	}
}

// ---- client resilience ---------------------------------------------------

func TestClientReconnectsAfterServerDropsConn(t *testing.T) {
	// An aggressive idle timeout makes the server drop the connection
	// between operations; the client must redial transparently.
	srv := startServerConfig(t, openStore(t), ServerConfig{
		IdleTimeout:  5 * time.Millisecond,
		DrainTimeout: 200 * time.Millisecond,
	})
	cl, err := DialConfig(waitAddr(t, srv), ClientConfig{Retry: fastRetry(5)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(30 * time.Millisecond) // let the server expire the conn
		if _, err := cl.Get([]byte("k")); err != nil {
			t.Fatalf("round %d: reconnect failed: %v", i, err)
		}
	}
}

func TestClientCloseIsIdempotentAndRaceSafe(t *testing.T) {
	srv := startServerConfig(t, openStore(t), ServerConfig{DrainTimeout: 200 * time.Millisecond})
	cl, err := DialConfig(waitAddr(t, srv), ClientConfig{Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	_ = cl.Put([]byte("k"), []byte("v"))

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := cl.Get([]byte("k")); errors.Is(err, ErrClientClosed) {
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	for g := 0; g < 3; g++ { // concurrent closes
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := cl.Close(); err != nil {
		t.Errorf("repeated Close: %v", err)
	}
	if _, err := cl.Get([]byte("k")); !errors.Is(err, ErrClientClosed) {
		t.Errorf("Get after Close = %v, want ErrClientClosed", err)
	}
	if err := cl.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClientClosed) {
		t.Errorf("Put after Close = %v, want ErrClientClosed", err)
	}
}

// ---- server lifecycle ----------------------------------------------------

func TestServeTwiceAndAfterCloseRejected(t *testing.T) {
	srv := NewServerConfig(openStore(t), ServerConfig{DrainTimeout: 100 * time.Millisecond})
	srv.SetLogf(func(string, ...any) {})
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis1) //nolint:errcheck
	waitAddr(t, srv)

	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(lis2); err == nil {
		t.Fatal("second Serve succeeded")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	srv2 := NewServer(openStore(t))
	srv2.SetLogf(func(string, ...any) {})
	if err := srv2.Close(); err != nil {
		t.Fatalf("Close before Serve: %v", err)
	}
	lis3, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Serve(lis3); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve after Close = %v, want ErrServerClosed", err)
	}
}

func TestLoadSheddingAtConnectionLimit(t *testing.T) {
	srv := startServerConfig(t, openStore(t), ServerConfig{
		MaxConns:     1,
		DrainTimeout: 200 * time.Millisecond,
	})
	addr := waitAddr(t, srv)

	hog, err := DialConfig(addr, ClientConfig{Retry: NoRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	if err := hog.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Without retries the shed connection surfaces ErrServerBusy.
	turned, err := DialConfig(addr, ClientConfig{Retry: NoRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer turned.Close()
	if _, err := turned.Get([]byte("k")); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("over-limit op = %v, want ErrServerBusy", err)
	}
	if srv.ShedConns() == 0 {
		t.Error("server did not count the shed connection")
	}

	// A retrying client rides out the busy period: free the slot shortly
	// after it starts retrying.
	patient, err := DialConfig(addr, ClientConfig{Retry: fastRetry(10)})
	if err != nil {
		t.Fatal(err)
	}
	defer patient.Close()
	go func() {
		time.Sleep(10 * time.Millisecond)
		hog.Close()
	}()
	if _, err := patient.Get([]byte("k")); err != nil {
		t.Fatalf("retrying client failed through busy period: %v", err)
	}
}

// ---- panic isolation -----------------------------------------------------

// panicStore panics on a trigger key, modelling a handler bug.
type panicStore struct {
	aria.Store
}

func (p *panicStore) Get(key []byte) ([]byte, error) {
	if bytes.Equal(key, []byte("boom")) {
		panic("handler bug")
	}
	return p.Store.Get(key)
}

func TestPanicIsolatedToConnection(t *testing.T) {
	srv := startServerConfig(t, &panicStore{Store: openStore(t)},
		ServerConfig{DrainTimeout: 200 * time.Millisecond})
	addr := waitAddr(t, srv)

	cl, err := DialConfig(addr, ClientConfig{Retry: NoRetry()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get([]byte("boom")); err == nil {
		t.Fatal("panicking op reported success")
	}
	// The server process survives: a fresh connection still works.
	cl2, err := DialConfig(addr, ClientConfig{Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if v, err := cl2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("server unusable after panic: %q %v", v, err)
	}
}

// ---- adversarial wire input ---------------------------------------------

func TestServerSurvivesMalformedFrameFlood(t *testing.T) {
	srv := startServerConfig(t, openStore(t), ServerConfig{
		IdleTimeout:  200 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond,
		DrainTimeout: 200 * time.Millisecond,
	})
	addr := waitAddr(t, srv)

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		switch i % 5 {
		case 0: // oversized frame header
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], uint32(maxFrameWire+1+rng.Intn(1<<20)))
			conn.Write(hdr[:])
		case 1: // truncated frame: header promises more than is sent
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], 100)
			conn.Write(hdr[:])
			conn.Write([]byte{1, 2, 3})
		case 2: // pure garbage
			junk := make([]byte, 64+rng.Intn(512))
			rng.Read(junk)
			conn.Write(junk)
		case 3: // valid frame, garbage payload
			junk := make([]byte, 7+rng.Intn(64))
			rng.Read(junk)
			writeFrame(conn, junk)
		case 4: // lying length fields inside the payload
			writeFrame(conn, encodeResponse(opGet, []byte{0xff, 0xff, 0xff, 0xff}))
		}
		// Drain whatever the server answers, then hang up.
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		io.Copy(io.Discard, conn) //nolint:errcheck
		conn.Close()
	}

	// The process survived and still serves well-formed traffic.
	cl, err := DialConfig(addr, ClientConfig{Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put([]byte("alive"), []byte("yes")); err != nil {
		t.Fatalf("server dead after malformed flood: %v", err)
	}
	if v, err := cl.Get([]byte("alive")); err != nil || string(v) != "yes" {
		t.Fatalf("get after flood: %q %v", v, err)
	}
}

func TestIdleConnectionReaped(t *testing.T) {
	srv := startServerConfig(t, openStore(t), ServerConfig{
		IdleTimeout:  20 * time.Millisecond,
		DrainTimeout: 100 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection produced data")
	} else if errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatal("idle connection not reaped within its timeout")
	}
}
