package kvnet

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/ariakv/aria"
)

func startServer(t *testing.T, scheme aria.Scheme) (*Server, *Client) {
	t.Helper()
	st, err := aria.Open(aria.Options{
		Scheme:       scheme,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestClientServerRoundTrip(t *testing.T) {
	_, cl := startServer(t, aria.AriaHash)
	if err := cl.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get([]byte("alpha"))
	if err != nil || !bytes.Equal(v, []byte("one")) {
		t.Fatalf("get = %q, %v", v, err)
	}
	if err := cl.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get([]byte("alpha")); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted get: %v", err)
	}
	if err := cl.Delete([]byte("alpha")); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestManyPairsAndStats(t *testing.T) {
	_, cl := startServer(t, aria.AriaHash)
	for i := 0; i < 500; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i += 7 {
		v, err := cl.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %d: %q %v", i, v, err)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 500 {
		t.Errorf("remote keys = %d, want 500", st.Keys)
	}
	if st.Ecalls == 0 {
		t.Error("no ECALLs charged for networked requests")
	}
}

func TestScanOverWire(t *testing.T) {
	_, cl := startServer(t, aria.AriaBPTree)
	for i := 0; i < 200; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("sk-%04d", i)), []byte(fmt.Sprintf("sv-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	err := cl.Scan([]byte("sk-0050"), []byte("sk-0060"), 0, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 || keys[0] != "sk-0050" || keys[9] != "sk-0059" {
		t.Errorf("scan keys = %v", keys)
	}
	// Limit.
	keys = nil
	if err := cl.Scan(nil, nil, 5, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 {
		t.Errorf("limited scan returned %d keys", len(keys))
	}
	// Early client stop still leaves the connection usable.
	n := 0
	if err := cl.Scan(nil, nil, 50, func(k, v []byte) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get([]byte("sk-0000")); err != nil {
		t.Fatalf("connection unusable after early-stopped scan: %v", err)
	}
}

func TestScanOnHashStore(t *testing.T) {
	_, cl := startServer(t, aria.AriaHash)
	err := cl.Scan(nil, nil, 0, func(k, v []byte) bool { return true })
	if err == nil {
		t.Error("scan on hash store succeeded")
	}
}

// waitAddr polls until Serve has published the bound address.
func waitAddr(t *testing.T, srv *Server) string {
	t.Helper()
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			return a.String()
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never published its address")
	return ""
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, aria.AriaHash)
	addr := waitAddr(t, srv)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 100; i++ {
				k := []byte(fmt.Sprintf("c%d-k%03d", c, i))
				if err := cl.Put(k, []byte("v")); err != nil {
					errs <- err
					return
				}
				if _, err := cl.Get(k); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestIntegrityErrorOverWire(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 1024,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()
	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 200; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("ik-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the server's untrusted memory behind its back.
	cor := st.(aria.Corrupter)
	snap := cor.SnapshotUntrusted()
	for i := 0; i < 200; i++ {
		_ = cl.Put([]byte(fmt.Sprintf("ik-%03d", i)), []byte("w"))
	}
	cor.RestoreUntrusted(snap)

	sawIntegrity := false
	for i := 0; i < 200 && !sawIntegrity; i++ {
		if _, err := cl.Get([]byte(fmt.Sprintf("ik-%03d", i))); errors.Is(err, ErrIntegrityRemote) {
			sawIntegrity = true
		}
	}
	if !sawIntegrity {
		t.Error("replay attack on the server not surfaced to the client")
	}
}

func TestProtocolCodecs(t *testing.T) {
	rq := encodeRequest(opPut, []byte("k"), []byte("value"), 7)
	dec, err := decodeRequest(rq)
	if err != nil {
		t.Fatal(err)
	}
	if dec.op != opPut || string(dec.key) != "k" || string(dec.value) != "value" || dec.limit != 7 {
		t.Errorf("decoded = %+v", dec)
	}
	if _, err := decodeRequest([]byte{1, 2}); err == nil {
		t.Error("truncated request accepted")
	}
	k, v, err := decodePair(encodePair([]byte("kk"), []byte("vv")))
	if err != nil || string(k) != "kk" || string(v) != "vv" {
		t.Errorf("pair round trip: %q %q %v", k, v, err)
	}
	if _, _, err := decodePair([]byte{9}); err == nil {
		t.Error("truncated pair accepted")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	_, cl := startServer(t, aria.AriaHash)
	if err := cl.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted over wire")
	}
}
