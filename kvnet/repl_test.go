package kvnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"github.com/ariakv/aria"
)

// fakeBackend is a scriptable ReplBackend for wire-level tests: the
// repl package's real policy is tested end to end in its own package;
// here we pin the frame translation and the typed status codes.
type fakeBackend struct {
	role    string
	gen     uint64
	applied uint64
	lag     uint64
	subErr  error // returned by Subscribe after events
	events  []ReplEvent
	waitErr error
}

func (f *fakeBackend) Role() string                  { return f.role }
func (f *fakeBackend) Generation() uint64            { return f.gen }
func (f *fakeBackend) Shards() int                   { return 1 }
func (f *fakeBackend) AppliedSeq(uint32) uint64      { return f.applied }
func (f *fakeBackend) Lag() uint64                   { return f.lag }
func (f *fakeBackend) Watermark(uint32) uint64       { return f.applied }
func (f *fakeBackend) ShardForKey([]byte) uint32     { return 0 }
func (f *fakeBackend) WaitCommitted(uint32, uint64) error {
	return f.waitErr
}
func (f *fakeBackend) SnapshotPath(uint32) (string, uint64, error) {
	return "", 0, fmt.Errorf("no snapshot: %w", aria.ErrNotFound)
}

func (f *fakeBackend) Subscribe(_ uint32, _, _ uint64, tail bool, _ <-chan uint64, stop <-chan struct{}, emit func(ReplEvent) error) error {
	for _, ev := range f.events {
		if err := emit(ev); err != nil {
			return err
		}
	}
	if f.subErr != nil {
		return f.subErr
	}
	if !tail {
		return nil
	}
	// Tail mode: heartbeat until the server drains or the conn dies.
	for {
		select {
		case <-stop:
			return nil
		case <-time.After(5 * time.Millisecond):
		}
		if err := emit(ReplEvent{Kind: EvHeartbeat, Seq: f.applied + 1}); err != nil {
			return err
		}
	}
}

func startReplServer(t *testing.T, b ReplBackend) (*Server, *Client) {
	t.Helper()
	st, err := aria.Open(aria.Options{EPCBytes: 16 << 20, ExpectedKeys: 1024, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerConfig(st, ServerConfig{Repl: b})
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestReplicaRejectsWritesTyped pins the read-only replica sentinel
// across the wire, both kvnet and aria spellings.
func TestReplicaRejectsWritesTyped(t *testing.T) {
	_, c := startReplServer(t, &fakeBackend{role: RoleReplica, gen: 3})
	err := c.Put([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrReadOnlyReplica) || !errors.Is(err, aria.ErrReadOnlyReplica) {
		t.Fatalf("replica write: got %v, want ErrReadOnlyReplica", err)
	}
	if err := c.Delete([]byte("k")); !errors.Is(err, aria.ErrReadOnlyReplica) {
		t.Fatalf("replica delete: got %v", err)
	}
	// Reads pass the gate (key absent, so NotFound).
	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replica read: got %v, want ErrNotFound", err)
	}
}

// TestFencedRejectsEverythingTyped pins that a fenced node serves
// neither reads nor writes and that the sentinel survives the wire.
func TestFencedRejectsEverythingTyped(t *testing.T) {
	_, c := startReplServer(t, &fakeBackend{role: RoleFenced, gen: 1})
	if err := c.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrFenced) || !errors.Is(err, aria.ErrFenced) {
		t.Fatalf("fenced write: got %v, want ErrFenced", err)
	}
	if _, err := c.Get([]byte("k")); !errors.Is(err, aria.ErrFenced) {
		t.Fatalf("fenced read: got %v, want ErrFenced", err)
	}
	// Stats stays reachable so operators can see the fenced role.
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("fenced stats: %v", err)
	}
	if st.ReplRole != RoleFenced || st.ReplGeneration != 1 {
		t.Fatalf("fenced stats overlay = %q gen %d", st.ReplRole, st.ReplGeneration)
	}
}

// TestWatermarkAndLaggingRead pins the PutW watermark body and the
// stLagging path for a watermarked read a replica has not caught up to.
func TestWatermarkAndLaggingRead(t *testing.T) {
	b := &fakeBackend{role: RolePrimary, gen: 2, applied: 41}
	_, c := startReplServer(t, b)
	wm, err := c.PutW([]byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	// The store committed one record on top of the fake's applied seq;
	// the fake reports a constant, so the watermark echoes it.
	if wm.Seq != 41 || wm.Shard != 0 {
		t.Fatalf("watermark = %+v", wm)
	}
	// A primary satisfies its own watermarks.
	if _, err := c.GetAt([]byte("k"), []Watermark{wm}); err != nil {
		t.Fatalf("GetAt on primary: %v", err)
	}

	// The same read against a lagging replica comes back typed.
	lb := &fakeBackend{role: RoleReplica, gen: 2, applied: 40}
	_, lc := startReplServer(t, lb)
	_, err = lc.GetAt([]byte("k"), []Watermark{{Shard: 0, Seq: 41}})
	if !errors.Is(err, ErrLagging) || !errors.Is(err, aria.ErrLagging) {
		t.Fatalf("lagging read: got %v, want ErrLagging", err)
	}
	// A watermark it has applied passes the gate.
	if _, err := lc.GetAt([]byte("k"), []Watermark{{Shard: 0, Seq: 40}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("caught-up read: got %v, want ErrNotFound", err)
	}
}

// TestWriteSyncTimeoutSurfaced pins that a WaitCommitted failure turns
// into a write error (the write IS locally durable; the client must
// treat it as in doubt, not as lost).
func TestWriteSyncTimeoutSurfaced(t *testing.T) {
	b := &fakeBackend{role: RolePrimary, gen: 1, waitErr: errors.New("0/1 sync replicas acked")}
	_, c := startReplServer(t, b)
	err := c.Put([]byte("k"), []byte("v"))
	if err == nil {
		t.Fatal("want sync-replication error, got nil")
	}
}

// TestSubscribeDrainTyped pins the graceful-drain goodbye: closing the
// server mid-subscription delivers stDraining, not a bare conn reset,
// so the subscriber knows to redial rather than report a failure.
func TestSubscribeDrainTyped(t *testing.T) {
	srv, _ := startReplServer(t, &fakeBackend{role: RolePrimary, gen: 1, applied: 7})
	sub, err := DialSubscribe(srv.Addr().String(), 0, 7, 1, true, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// First event: a heartbeat proving the stream is live.
	ev, err := sub.Next(2 * time.Second)
	if err != nil || ev.Kind != EvHeartbeat {
		t.Fatalf("first event = %+v, %v", ev, err)
	}
	go srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ev, err = sub.Next(2 * time.Second)
		if err == nil && ev.Kind == EvHeartbeat {
			if time.Now().After(deadline) {
				t.Fatal("no drain notice before deadline")
			}
			continue
		}
		break
	}
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("drain: got %v, want ErrDraining", err)
	}
}

// TestSubscribeFencedTyped pins the stFenced stream ending for a stale
// subscriber generation, surviving as both sentinels.
func TestSubscribeFencedTyped(t *testing.T) {
	b := &fakeBackend{
		role:   RolePrimary,
		gen:    5,
		subErr: fmt.Errorf("subscriber generation 2 predates 5: %w", aria.ErrFenced),
	}
	srv, _ := startReplServer(t, b)
	sub, err := DialSubscribe(srv.Addr().String(), 0, 10, 2, true, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	_, err = sub.Next(2 * time.Second)
	if !errors.Is(err, ErrFenced) || !errors.Is(err, aria.ErrFenced) {
		t.Fatalf("fenced subscribe: got %v, want ErrFenced", err)
	}
}

// TestCatchupEndsWithDone pins the finite catch-up stream shape:
// scripted events, then io.EOF from stDone.
func TestCatchupEndsWithDone(t *testing.T) {
	b := &fakeBackend{
		role: RolePrimary,
		gen:  1,
		events: []ReplEvent{
			{Kind: EvSegStart, Seq: 1},
			{Kind: EvRecord, Rec: []byte("sealed-bytes")},
		},
	}
	srv, _ := startReplServer(t, b)
	sub, err := DialSubscribe(srv.Addr().String(), 0, 0, 1, false, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ev, err := sub.Next(2 * time.Second)
	if err != nil || ev.Kind != EvSegStart || ev.Seq != 1 {
		t.Fatalf("ev1 = %+v, %v", ev, err)
	}
	ev, err = sub.Next(2 * time.Second)
	if err != nil || ev.Kind != EvRecord || string(ev.Rec) != "sealed-bytes" {
		t.Fatalf("ev2 = %+v, %v", ev, err)
	}
	if _, err = sub.Next(2 * time.Second); !errors.Is(err, io.EOF) {
		t.Fatalf("end: got %v, want io.EOF", err)
	}
}

// TestSnapshotTransferNotFoundTyped pins the typed miss for a primary
// without a snapshot.
func TestSnapshotTransferNotFoundTyped(t *testing.T) {
	srv, _ := startReplServer(t, &fakeBackend{role: RolePrimary, gen: 1})
	_, _, err := FetchSnapshot(srv.Addr().String(), 0, time.Second)
	if !errors.Is(err, aria.ErrNotFound) {
		t.Fatalf("snapshot miss: got %v, want ErrNotFound", err)
	}
}

// TestReplStatus pins the opReplStatus JSON round trip.
func TestReplStatus(t *testing.T) {
	_, c := startReplServer(t, &fakeBackend{role: RoleReplica, gen: 9, applied: 123, lag: 4})
	info, err := c.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != RoleReplica || info.Generation != 9 || info.Shards != 1 ||
		info.Lag != 4 || len(info.Applied) != 1 || info.Applied[0] != 123 {
		t.Fatalf("ReplStatus = %+v", info)
	}
}
