package kvnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet/chaos"
	"github.com/ariakv/aria/obs"
)

func batchKey(i int) []byte   { return []byte(fmt.Sprintf("bk-%05d", i)) }
func batchValue(i int) []byte { return []byte(fmt.Sprintf("bv-%05d", i)) }

// TestBatchWireRoundTrip drives MPut/MGet/MDelete through a real server
// and checks the positional contract survives the wire: values at their
// keys' positions, nil error slices on full success, per-key errors at
// their own positions only.
func TestBatchWireRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st, err := aria.Open(aria.Options{
				Scheme:       aria.AriaHash,
				EPCBytes:     16 << 20,
				ExpectedKeys: 4096,
				Shards:       shards,
				Seed:         7,
			})
			if err != nil {
				t.Fatal(err)
			}
			srv := startServerConfig(t, st, ServerConfig{DrainTimeout: 200 * time.Millisecond})
			cl, err := Dial(waitAddr(t, srv))
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			const n = 100
			pairs := make([]aria.KV, n)
			keys := make([][]byte, n)
			for i := range pairs {
				pairs[i] = aria.KV{Key: batchKey(i), Value: batchValue(i)}
				keys[i] = pairs[i].Key
			}
			if errs := cl.MPut(pairs); errs != nil {
				t.Fatalf("MPut errs = %v, want nil", errs)
			}
			vals, errs := cl.MGet(keys)
			if errs != nil {
				t.Fatalf("MGet errs = %v, want nil", errs)
			}
			for i, v := range vals {
				if !bytes.Equal(v, batchValue(i)) {
					t.Fatalf("vals[%d] = %q, want %q", i, v, batchValue(i))
				}
			}

			probe := [][]byte{batchKey(0), []byte("absent"), batchKey(1)}
			vals, errs = cl.MGet(probe)
			if len(errs) != 3 || errs[0] != nil || errs[2] != nil || !errors.Is(errs[1], ErrNotFound) {
				t.Fatalf("MGet errs = %v, want ErrNotFound only at [1]", errs)
			}
			if vals[1] != nil || !bytes.Equal(vals[0], batchValue(0)) {
				t.Fatalf("values around the miss are wrong: %q", vals)
			}

			// Per-key write errors: the empty key fails alone.
			errs = cl.MPut([]aria.KV{
				{Key: batchKey(0), Value: []byte("new")},
				{Key: nil, Value: []byte("x")},
			})
			if len(errs) != 2 || errs[0] != nil || errs[1] == nil {
				t.Fatalf("MPut empty-key errs = %v", errs)
			}
			if v, err := cl.Get(batchKey(0)); err != nil || string(v) != "new" {
				t.Fatalf("batch-mate write lost: %q, %v", v, err)
			}

			if errs := cl.MDelete(keys[:10]); errs != nil {
				t.Fatalf("MDelete errs = %v, want nil", errs)
			}
			if _, err := cl.Get(batchKey(5)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after MDelete = %v, want ErrNotFound", err)
			}
			errs = cl.MDelete([][]byte{batchKey(5), batchKey(50)})
			if len(errs) != 2 || !errors.Is(errs[0], ErrNotFound) || errs[1] != nil {
				t.Fatalf("MDelete of gone+live = %v", errs)
			}
		})
	}
}

// TestBatchServerEdgeAccounting checks the server routes batches through
// the store's native amortized path: one batched enclave entry per
// request, not one ECALL per key.
func TestBatchServerEdgeAccounting(t *testing.T) {
	st := openStore(t)
	srv := startServerConfig(t, st, ServerConfig{DrainTimeout: 200 * time.Millisecond})
	cl, err := Dial(waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 64
	pairs := make([]aria.KV, n)
	keys := make([][]byte, n)
	for i := range pairs {
		pairs[i] = aria.KV{Key: batchKey(i), Value: batchValue(i)}
		keys[i] = pairs[i].Key
	}
	if errs := cl.MPut(pairs); errs != nil {
		t.Fatal(errs)
	}
	st.ResetStats()
	if _, errs := cl.MGet(keys); errs != nil {
		t.Fatal(errs)
	}
	s := st.Stats()
	if s.Batches != 1 || s.BatchedKeys != n {
		t.Fatalf("Batches/BatchedKeys = %d/%d, want 1/%d", s.Batches, s.BatchedKeys, n)
	}
	if s.Ecalls != 1 {
		t.Fatalf("Ecalls = %d, want 1 (batch must not pay per-key or per-request edge costs)", s.Ecalls)
	}
}

// mapStore is an in-memory aria.Store without the enclave simulator,
// accepting records of any size — it exercises the wire layer at limits
// the simulated stores' small-value slabs cannot reach. It counts batch
// calls so tests can observe client-side splitting from the server side.
type mapStore struct {
	aria.Store // unimplemented surface (GetV, CAS, TTL, txn) panics if reached
	mu         sync.Mutex
	m          map[string][]byte
	batchCalls int
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[string(key)] = append([]byte(nil), value...)
	return nil
}

func (s *mapStore) Get(key []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[string(key)]
	if !ok {
		return nil, aria.ErrNotFound
	}
	return v, nil
}

func (s *mapStore) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[string(key)]; !ok {
		return aria.ErrNotFound
	}
	delete(s.m, string(key))
	return nil
}

func (s *mapStore) MGet(keys [][]byte) ([][]byte, []error) {
	s.mu.Lock()
	s.batchCalls++
	s.mu.Unlock()
	vals := make([][]byte, len(keys))
	var errs []error
	for i, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			if errs == nil {
				errs = make([]error, len(keys))
			}
			errs[i] = err
			continue
		}
		vals[i] = v
	}
	return vals, errs
}

func (s *mapStore) MPut(pairs []aria.KV) []error {
	s.mu.Lock()
	s.batchCalls++
	s.mu.Unlock()
	for _, p := range pairs {
		s.Put(p.Key, p.Value) //nolint:errcheck
	}
	return nil
}

func (s *mapStore) MDelete(keys [][]byte) []error {
	s.mu.Lock()
	s.batchCalls++
	s.mu.Unlock()
	var errs []error
	for i, k := range keys {
		if err := s.Delete(k); err != nil {
			if errs == nil {
				errs = make([]error, len(keys))
			}
			errs[i] = err
		}
	}
	return errs
}

func (s *mapStore) batches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batchCalls
}

func (s *mapStore) Stats() aria.Stats      { return aria.Stats{} }
func (s *mapStore) VerifyIntegrity() error { return nil }
func (s *mapStore) SetMeasuring(on bool)   {}
func (s *mapStore) ResetStats()            {}
func (s *mapStore) Scan(start, end []byte, fn func(k, v []byte) bool) error {
	return nil
}

// TestBatchClientSplitsOversized sends a batch whose marshalled size
// exceeds the frame cap and checks the client splits it transparently:
// every record lands (in order, across several server-side batch calls),
// and the splits counter records the extra requests. A single record the
// wire cannot carry at all fails locally at its own position without
// sinking the batch.
func TestBatchClientSplitsOversized(t *testing.T) {
	st := newMapStore()
	srv := startServerConfig(t, st, ServerConfig{DrainTimeout: 200 * time.Millisecond})
	reg := obs.NewRegistry()
	cl, err := DialConfig(waitAddr(t, srv), ClientConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	big := bytes.Repeat([]byte{'x'}, 8<<20) // three of these exceed maxFrameWire
	pairs := []aria.KV{
		{Key: []byte("big-0"), Value: big},
		{Key: []byte("big-1"), Value: big},
		{Key: []byte("big-2"), Value: big},
		{Key: []byte("too-big"), Value: bytes.Repeat([]byte{'y'}, maxValueWire+1)},
		{Key: []byte("small"), Value: []byte("v")},
	}
	errs := cl.MPut(pairs)
	if len(errs) != len(pairs) {
		t.Fatalf("errs = %v", errs)
	}
	for i, e := range errs {
		if i == 3 {
			if !errors.Is(e, ErrTooLarge) {
				t.Fatalf("errs[3] = %v, want ErrTooLarge", e)
			}
			continue
		}
		if e != nil {
			t.Fatalf("errs[%d] = %v, want nil", i, e)
		}
	}
	if st.batches() < 2 {
		t.Fatalf("server saw %d batch calls, want >= 2 (client must have split)", st.batches())
	}
	if v, _ := snapValue(t, reg, metricCliSplits, nil); v == 0 {
		t.Fatal("oversized batch produced no split count")
	}
	if _, err := st.Get([]byte("too-big")); !errors.Is(err, aria.ErrNotFound) {
		t.Fatal("rejected record reached the server anyway")
	}

	vals, gerrs := cl.MGet([][]byte{[]byte("big-1"), []byte("small"), []byte("too-big")})
	if len(vals) != 3 || !bytes.Equal(vals[0], big) || string(vals[1]) != "v" {
		t.Fatalf("MGet after split returned wrong values (lens %d/%d)", len(vals[0]), len(vals[1]))
	}
	if gerrs == nil || !errors.Is(gerrs[2], ErrNotFound) {
		t.Fatalf("gerrs = %v, want ErrNotFound at [2]", gerrs)
	}
}

// TestBatchPlan pins the splitter's contract: contiguous in-order
// sub-batches under the budget, local rejects excluded without sinking
// their neighbours, and the extra-request count.
func TestBatchPlan(t *testing.T) {
	const budget = maxFrameWire - batchReqOverhead
	sizes := []int{budget - 1, 2, budget, 3, 4}
	okAll := func(i int) bool { return true }
	var runs [][2]int
	var rejects []int
	collect := func(start, end int) { runs = append(runs, [2]int{start, end}) }
	rejectFn := func(i int) { rejects = append(rejects, i) }

	extra := batchPlan(len(sizes), func(i int) int { return sizes[i] }, okAll, rejectFn, collect)
	// budget-1 leaves no room for the next record; the full-budget record
	// gets a frame of its own; the small tail shares one.
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 5}}
	if len(rejects) != 0 || len(runs) != len(want) {
		t.Fatalf("runs = %v, rejects = %v", runs, rejects)
	}
	for i, r := range runs {
		if r != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
	if extra != 3 {
		t.Fatalf("extra = %d, want 3", extra)
	}

	// A rejected record splits its run but never reaches the wire.
	runs, rejects = nil, nil
	extra = batchPlan(4, func(i int) int { return 1 },
		func(i int) bool { return i != 2 }, rejectFn, collect)
	if len(rejects) != 1 || rejects[0] != 2 {
		t.Fatalf("rejects = %v, want [2]", rejects)
	}
	if len(runs) != 2 || runs[0] != [2]int{0, 2} || runs[1] != [2]int{3, 4} {
		t.Fatalf("runs = %v", runs)
	}
	if extra != 1 {
		t.Fatalf("extra = %d, want 1", extra)
	}

	// Empty input: no runs, no requests.
	runs = nil
	if extra = batchPlan(0, nil, nil, nil, collect); extra != 0 || len(runs) != 0 {
		t.Fatalf("empty plan ran something: %v, %d", runs, extra)
	}
}

func snapValue(t *testing.T, reg *obs.Registry, name string, labels obs.Labels) (float64, bool) {
	t.Helper()
	return reg.Snapshot().Value(name, labels)
}

// scriptedServer runs script against the first accepted connection —
// a server stand-in for deterministic wire-level fault tests.
func scriptedServer(t *testing.T, script func(conn net.Conn)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				script(conn)
			}(conn)
		}
	}()
	return lis.Addr().String()
}

// scriptHello answers the server side of the v2 handshake on a scripted
// connection.
func scriptHello(conn net.Conn) error {
	payload, err := readFrame(conn, maxTaggedWire)
	if err != nil {
		return err
	}
	tag, body, err := splitTag(payload)
	if err != nil || tag != 0 {
		return errMalformed
	}
	if _, ok := parseHello(body); !ok {
		return errMalformed
	}
	var ver [2]byte
	binary.BigEndian.PutUint16(ver[:], protocolVersion)
	return writeFrame(conn, taggedPayload(0, encodeResponse(stOK, ver[:])))
}

// scriptReadRequest reads one tagged request frame off a scripted
// connection and returns its tag.
func scriptReadRequest(conn net.Conn) (uint32, error) {
	payload, err := readFrame(conn, maxTaggedReplWire)
	if err != nil {
		return 0, err
	}
	tag, _, err := splitTag(payload)
	return tag, err
}

// taggedHdr is the on-wire prefix of every v2 frame: frame header + tag.
const taggedHdr = frameHdrSize + tagHdrSize

// mgetStream builds the full well-formed response stream for n OK
// records on one tag.
func mgetStream(tag uint32, n int) []byte {
	var body []byte
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(n))
	body = append(body, cnt[:]...)
	for i := 0; i < n; i++ {
		body = append(body, encodeMGetRecord(stOK, batchValue(i))...)
	}
	var out []byte
	out = appendFrame(out, tag, encodeResponse(stMore, body))
	var total [4]byte
	binary.BigEndian.PutUint32(total[:], uint32(n))
	out = appendFrame(out, tag, encodeResponse(stDone, total[:]))
	return out
}

// TestBatchPartialNeverDelivered cuts the response stream at every
// dangerous spot — mid-frame, between frames before stDone, and with a
// lying stDone total — and asserts the client reports failure for every
// key in the batch. Records that were fully streamed before the cut must
// be discarded: a partial batch is never delivered as success.
func TestBatchPartialNeverDelivered(t *testing.T) {
	const n = 4
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = batchKey(i)
	}
	// A fresh client's first operation registers the mux's first tag: 1.
	const opTag = 1
	full := mgetStream(opTag, n)
	doneFrame := func(total uint32) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], total)
		return appendFrame(nil, opTag, encodeResponse(stDone, b[:]))
	}
	// shortMore is the complete stMore frame carrying only n-2 records.
	shortMore := mgetStream(opTag, n-2)
	shortMore = shortMore[:len(shortMore)-(taggedHdr+5)]
	cases := []struct {
		name string
		resp []byte
	}{
		// Cut inside the stMore frame, after two full records crossed.
		{"mid-frame cut", full[:taggedHdr+5+2*(5+len(batchValue(0)))]},
		// All records delivered, stream closed before stDone.
		{"missing stDone", full[:len(full)-(taggedHdr+5)]},
		// Records short but stDone claims the full count.
		{"lying stDone", append(append([]byte{}, shortMore...), doneFrame(n)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := scriptedServer(t, func(conn net.Conn) {
				if err := scriptHello(conn); err != nil {
					return
				}
				if _, err := scriptReadRequest(conn); err != nil {
					return
				}
				conn.Write(tc.resp) //nolint:errcheck
			})
			cl, err := DialConfig(addr, ClientConfig{
				Retry:     NoRetry(),
				OpTimeout: time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			vals, errs := cl.MGet(keys)
			if errs == nil {
				t.Fatal("cut batch stream reported success")
			}
			for i := range keys {
				if errs[i] == nil {
					t.Fatalf("position %d delivered despite the cut (errs = %v)", i, errs)
				}
				if vals[i] != nil {
					t.Fatalf("position %d kept value %q from a cut stream", i, vals[i])
				}
			}
		})
	}
}

// TestBatchCorruptResponseSurfaces damages a batch response frame's
// checksum and asserts the client surfaces the corruption rather than
// decoding damaged records.
func TestBatchCorruptResponseSurfaces(t *testing.T) {
	const n = 3
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = batchKey(i)
	}
	addr := scriptedServer(t, func(conn net.Conn) {
		if err := scriptHello(conn); err != nil {
			return
		}
		tag, err := scriptReadRequest(conn)
		if err != nil {
			return
		}
		resp := mgetStream(tag, n)
		resp[taggedHdr+10] ^= 0x20 // flip a record byte under the CRC
		conn.Write(resp)           //nolint:errcheck
	})
	cl, err := DialConfig(addr, ClientConfig{Retry: NoRetry(), OpTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	vals, errs := cl.MGet(keys)
	if errs == nil {
		t.Fatal("corrupt batch response reported success")
	}
	for i := range keys {
		if !errors.Is(errs[i], ErrFrameCorrupt) {
			t.Fatalf("errs[%d] = %v, want frame checksum mismatch", i, errs[i])
		}
		if vals[i] != nil {
			t.Fatalf("position %d delivered from a corrupt stream", i)
		}
	}
}

// TestBatchRetryAfterCut proves the retry path: the first attempt's stream
// is cut mid-frame, the retry succeeds against a real server, and the full
// batch arrives — MGet is idempotent, so the client may replay it.
func TestBatchRetryAfterCut(t *testing.T) {
	st := openStore(t)
	for i := 0; i < 4; i++ {
		if err := st.Put(batchKey(i), batchValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := startServerConfig(t, st, ServerConfig{DrainTimeout: 200 * time.Millisecond})
	real := waitAddr(t, srv)

	var cut atomic.Bool
	cut.Store(true)
	addr := scriptedServer(t, func(conn net.Conn) {
		if cut.Swap(false) {
			if err := scriptHello(conn); err != nil {
				return
			}
			tag, err := scriptReadRequest(conn)
			if err != nil {
				return
			}
			full := mgetStream(tag, 4)
			conn.Write(full[:taggedHdr+9]) //nolint:errcheck
			return                         // close mid-frame
		}
		// Later connections: transparent proxy to the real server.
		up, err := net.Dial("tcp", real)
		if err != nil {
			return
		}
		defer up.Close()
		go func() { io_copy(up, conn) }()
		io_copy(conn, up)
	})
	cl, err := DialConfig(addr, ClientConfig{Retry: fastRetry(4), OpTimeout: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	keys := [][]byte{batchKey(0), batchKey(1), batchKey(2), batchKey(3)}
	vals, errs := cl.MGet(keys)
	if errs != nil {
		t.Fatalf("retried MGet errs = %v, want nil", errs)
	}
	for i, v := range vals {
		if !bytes.Equal(v, batchValue(i)) {
			t.Fatalf("vals[%d] = %q after retry, want %q", i, v, batchValue(i))
		}
	}
}

func io_copy(dst net.Conn, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// TestChaosBatchesNoLostAcks drives a batched workload through the fault
// proxy: every MPut whose per-key result came back nil must be durable,
// and every MGet either returns a consistent positional result or a
// per-key error — never a silently partial batch.
func TestChaosBatchesNoLostAcks(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerConfig(st, ServerConfig{
		IdleTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		DrainTimeout: 200 * time.Millisecond,
		MaxConns:     64,
	})
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	px, err := chaos.New(lis.Addr().String(), chaos.Config{
		Seed: 17,
		Up:   chaosFaults(900),
		Down: chaosFaults(900),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	cl, err := DialConfig(px.Addr(), ClientConfig{
		Retry:       fastRetry(8),
		DialTimeout: time.Second,
		OpTimeout:   500 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	type state struct {
		value   string
		certain bool
	}
	expected := make(map[string]state)
	key := func(i int) string { return fmt.Sprintf("cb-%03d", i) }
	rng := rand.New(rand.NewSource(2))
	var ackedKeys, failedKeys int
	for round := 0; round < 120; round++ {
		n := 1 + rng.Intn(16)
		switch rng.Intn(3) {
		case 0, 1: // batched put
			pairs := make([]aria.KV, n)
			for j := range pairs {
				pairs[j] = aria.KV{
					Key:   []byte(key(rng.Intn(200))),
					Value: []byte(fmt.Sprintf("bv-%d-%d", round, j)),
				}
			}
			errs := cl.MPut(pairs)
			for j, p := range pairs {
				if errAt(errs, j) == nil {
					expected[string(p.Key)] = state{value: string(p.Value), certain: true}
					ackedKeys++
				} else {
					expected[string(p.Key)] = state{certain: false}
					failedKeys++
				}
			}
		case 2: // batched get: positional consistency under faults
			keys := make([][]byte, n)
			for j := range keys {
				keys[j] = []byte(key(rng.Intn(200)))
			}
			vals, errs := cl.MGet(keys)
			for j, k := range keys {
				st, ok := expected[string(k)]
				if !ok || !st.certain {
					continue
				}
				if errAt(errs, j) == nil && string(vals[j]) != st.value {
					// A duplicate key later in the batch may have overwritten
					// this position's expectation only via certain acks, so a
					// mismatch here is a real wrong-value delivery.
					if !duplicateKey(keys, j) {
						t.Fatalf("MGet[%d] = %q, want %q (key %s)", j, vals[j], st.value, k)
					}
				}
			}
		}
	}
	cl.Close()
	px.Close()
	srv.Close()

	if ackedKeys == 0 {
		t.Fatal("no batched write was ever acknowledged — proxy too hostile")
	}
	ps := px.Stats()
	if ps.Drops+ps.Truncates+ps.Corrupts == 0 {
		t.Fatalf("proxy injected no faults (stats %+v) — test is vacuous", ps)
	}
	t.Logf("chaos batches: %d acked keys, %d failed keys, proxy %+v", ackedKeys, failedKeys, ps)

	lost := 0
	for k, s := range expected {
		if !s.certain {
			continue
		}
		v, err := st.Get([]byte(k))
		if err != nil || string(v) != s.value {
			lost++
			t.Errorf("key %s: acked batched write %q lost (got %q, %v)", k, s.value, v, err)
		}
	}
	if lost != 0 {
		t.Fatalf("%d acknowledged batched writes lost", lost)
	}
	if err := st.VerifyIntegrity(); err != nil {
		t.Fatalf("store integrity after chaos run: %v", err)
	}
}

// duplicateKey reports whether keys[j] appears at another position too
// (batched workloads may carry the same key twice; per-position value
// expectations then depend on server-side apply order).
func duplicateKey(keys [][]byte, j int) bool {
	for i, k := range keys {
		if i != j && bytes.Equal(k, keys[j]) {
			return true
		}
	}
	return false
}

// ---- fuzz ----------------------------------------------------------------------

func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add(encodeBatchKeys(opMGet, [][]byte{[]byte("a"), []byte("bb")}))
	f.Add(encodeBatchKeys(opMDelete, [][]byte{[]byte("k")}))
	f.Add(encodeBatchPairs([]aria.KV{{Key: []byte("k"), Value: []byte("v")}}))
	f.Add(encodeBatchKeys(opMGet, nil))
	f.Add([]byte{opMGet, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{opMPut, 0, 0, 0, 1, 0, 1, 'k', 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rq, err := decodeRequest(data)
		if err != nil || rq.op < opMGet || rq.op > opMDelete {
			return
		}
		for _, k := range rq.mkeys {
			if len(k) > maxKeyWire {
				t.Fatalf("decoded key of %d bytes exceeds wire limit", len(k))
			}
		}
		if rq.op == opMPut {
			if len(rq.mvals) != len(rq.mkeys) {
				t.Fatalf("mput decoded %d keys but %d values", len(rq.mkeys), len(rq.mvals))
			}
			for _, v := range rq.mvals {
				if len(v) > maxValueWire {
					t.Fatalf("decoded value of %d bytes exceeds wire limit", len(v))
				}
			}
			pairs := make([]aria.KV, len(rq.mkeys))
			for i := range pairs {
				pairs[i] = aria.KV{Key: rq.mkeys[i], Value: rq.mvals[i]}
			}
			rt, err := decodeRequest(encodeBatchPairs(pairs))
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if len(rt.mkeys) != len(rq.mkeys) {
				t.Fatalf("round trip count mismatch")
			}
			return
		}
		rt, err := decodeRequest(encodeBatchKeys(rq.op, rq.mkeys))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if rt.op != rq.op || len(rt.mkeys) != len(rq.mkeys) {
			t.Fatalf("round trip mismatch: %d keys vs %d", len(rt.mkeys), len(rq.mkeys))
		}
		for i := range rt.mkeys {
			if !bytes.Equal(rt.mkeys[i], rq.mkeys[i]) {
				t.Fatalf("key %d round trip mismatch", i)
			}
		}
	})
}

func FuzzParseBatchRecord(f *testing.F) {
	f.Add(byte(opMGet), encodeMGetRecord(stOK, []byte("value")))
	f.Add(byte(opMGet), encodeMGetRecord(stNotFound, nil))
	f.Add(byte(opMPut), encodeWriteRecord(stOK, nil))
	f.Add(byte(opMDelete), encodeWriteRecord(stError, []byte("boom")))
	f.Add(byte(opMGet), []byte{0})
	f.Fuzz(func(t *testing.T, op byte, data []byte) {
		status, rec, rest, err := parseBatchRecord(op, data)
		if err != nil {
			return
		}
		if len(rec)+len(rest) > len(data) {
			t.Fatal("parsed record exceeds input")
		}
		var re []byte
		if op == opMGet {
			re = encodeMGetRecord(status, rec)
		} else {
			re = encodeWriteRecord(status, rec)
		}
		s2, r2, rest2, err := parseBatchRecord(op, re)
		if err != nil || s2 != status || !bytes.Equal(r2, rec) || len(rest2) != 0 {
			t.Fatalf("record round trip: %v %q (%v)", s2, r2, err)
		}
	})
}
