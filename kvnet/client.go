package kvnet

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"github.com/ariakv/aria"
)

// Client is a connection to an aria server. It is safe for concurrent use;
// requests are serialized over one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response frame.
func (c *Client) roundTrip(op byte, key, value []byte, limit uint32) (byte, []byte, error) {
	if err := writeFrame(c.conn, encodeRequest(op, key, value, limit)); err != nil {
		return 0, nil, err
	}
	resp, err := readFrame(c.conn, 16+maxValueWire)
	if err != nil {
		return 0, nil, err
	}
	if len(resp) < 1 {
		return 0, nil, errMalformed
	}
	return resp[0], resp[1:], nil
}

func statusErr(status byte, body []byte) error {
	switch status {
	case stOK:
		return nil
	case stNotFound:
		return ErrNotFound
	case stIntegrity:
		return fmt.Errorf("%w: %s", ErrIntegrityRemote, body)
	default:
		return fmt.Errorf("kvnet: server error: %s", body)
	}
}

// Get fetches a value.
func (c *Client) Get(key []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, body, err := c.roundTrip(opGet, key, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, body); err != nil {
		return nil, err
	}
	return body, nil
}

// Put stores a pair.
func (c *Client) Put(key, value []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, body, err := c.roundTrip(opPut, key, value, 0)
	if err != nil {
		return err
	}
	return statusErr(status, body)
}

// Delete removes a key.
func (c *Client) Delete(key []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, body, err := c.roundTrip(opDelete, key, nil, 0)
	if err != nil {
		return err
	}
	return statusErr(status, body)
}

// Stats fetches the server store's counters.
func (c *Client) Stats() (aria.Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out aria.Stats
	status, body, err := c.roundTrip(opStats, nil, nil, 0)
	if err != nil {
		return out, err
	}
	if err := statusErr(status, body); err != nil {
		return out, err
	}
	err = json.Unmarshal(body, &out)
	return out, err
}

// Scan streams pairs with start <= key < end (nil end = unbounded, limit 0 =
// unlimited) in key order, invoking fn for each; fn returning false stops
// consuming (the remainder of the stream is drained).
func (c *Client) Scan(start, end []byte, limit uint32, fn func(key, value []byte) bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, encodeRequest(opScan, start, end, limit)); err != nil {
		return err
	}
	keepGoing := true
	for {
		resp, err := readFrame(c.conn, 16+maxValueWire)
		if err != nil {
			return err
		}
		if len(resp) < 1 {
			return errMalformed
		}
		switch resp[0] {
		case stMore:
			k, v, err := decodePair(resp[1:])
			if err != nil {
				return err
			}
			if keepGoing && !fn(k, v) {
				keepGoing = false
			}
		case stDone:
			return nil
		default:
			return statusErr(resp[0], resp[1:])
		}
	}
}
