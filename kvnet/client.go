package kvnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/obs"
)

var (
	// ErrClientClosed is returned by every operation after Close.
	ErrClientClosed = errors.New("kvnet: client closed")
	// ErrServerBusy reports that the server shed the connection at its
	// connection limit. The request was not processed, so retrying any
	// operation — idempotent or not — is safe.
	ErrServerBusy = errors.New("kvnet: server busy (connection limit)")
	// ErrScanInterrupted reports a transport failure after a scan already
	// delivered pairs; the client does not restart the stream because the
	// callback would observe duplicates.
	ErrScanInterrupted = errors.New("kvnet: scan interrupted mid-stream")
	// ErrFrameCorrupt reports that a frame failed its checksum: the bytes
	// were altered in transit. Corrupt requests are rejected by the server
	// before processing (safe to retry); corrupt responses surface as
	// transport failures.
	ErrFrameCorrupt = errors.New("kvnet: frame corrupted in transit")
)

// RetryPolicy tunes the client's automatic retries. Transport failures on
// idempotent operations (Get, Scan, Stats) are always retried; Put and
// Delete are retried only when the failure happened before the request
// could have reached the server (dial errors and stBusy shedding), so a
// non-idempotent request is never silently applied twice.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// InitialBackoff is the sleep before the second attempt (default 10ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the sleep between attempts (default 500ms).
	MaxBackoff time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// Jitter randomizes each sleep by ±Jitter fraction (default 0.2).
	Jitter float64
}

// DefaultRetryPolicy returns the policy Dial uses.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    4,
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     500 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.2,
	}
}

// NoRetry returns a policy that disables retries entirely.
func NoRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

func (p *RetryPolicy) fillDefaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy().MaxAttempts
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = DefaultRetryPolicy().InitialBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryPolicy().MaxBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
}

// ClientConfig tunes a client's resilience behaviour. Zero values select
// the defaults; a negative OpTimeout disables per-operation deadlines.
type ClientConfig struct {
	// Retry is the retry policy (zero value: DefaultRetryPolicy; use
	// NoRetry to disable).
	Retry RetryPolicy
	// DialTimeout bounds each (re)connection attempt (default 5s).
	DialTimeout time.Duration
	// OpTimeout bounds each request/response exchange; for scans it
	// applies per frame, so a long stream that keeps making progress is
	// not cut off (default 30s).
	OpTimeout time.Duration
	// Seed makes the retry jitter deterministic (tests); 0 uses 1.
	Seed int64
	// Metrics, when non-nil, instruments the client into the given
	// registry: operation counts and caller-observed latency histograms
	// (retries and backoff included) by operation, retry/redial counts,
	// and how often the server answered stBusy or stCorrupt. nil (the
	// default) disables client instrumentation. See docs/OPERATIONS.md
	// for the metric catalogue.
	Metrics *obs.Registry
}

func (c *ClientConfig) fillDefaults() {
	if c.Retry == (RetryPolicy{}) {
		c.Retry = DefaultRetryPolicy()
	} else {
		c.Retry.fillDefaults()
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Client is a connection to an aria server. It is safe for concurrent use;
// requests are serialized over one connection. A broken connection is
// redialed transparently on the next operation.
type Client struct {
	addr string
	cfg  ClientConfig

	mu  sync.Mutex // serializes operations; guards rng
	rng *rand.Rand

	st     sync.Mutex // guards conn and closed; Close never waits on mu
	conn   net.Conn
	closed bool

	met *clientMetrics // nil when ClientConfig.Metrics is nil (no-op hooks)
}

// Dial connects to a server with the default resilience config.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a server with explicit resilience settings. The
// initial connection is established eagerly so configuration errors
// surface immediately; later reconnects happen lazily per operation.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fillDefaults()
	c := &Client{
		addr: addr,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Metrics != nil {
		c.met = newClientMetrics(cfg.Metrics)
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

// Close closes the connection. It is idempotent, safe to call while an
// operation is in flight (the operation fails with ErrClientClosed), and
// never blocks behind an in-flight request.
func (c *Client) Close() error {
	c.st.Lock()
	if c.closed {
		c.st.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	c.st.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// netOpError marks a transport-level failure inside one attempt. The
// connection is dropped; retryable says whether this operation may run
// again on a fresh connection.
type netOpError struct {
	err       error
	retryable bool
}

func (e *netOpError) Error() string { return e.err.Error() }
func (e *netOpError) Unwrap() error { return e.err }

// acquireConn returns the live connection, redialing if the previous one
// was dropped.
func (c *Client) acquireConn() (net.Conn, error) {
	c.st.Lock()
	if c.closed {
		c.st.Unlock()
		return nil, ErrClientClosed
	}
	if c.conn != nil {
		conn := c.conn
		c.st.Unlock()
		return conn, nil
	}
	c.st.Unlock()
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.met.redialed()
	c.st.Lock()
	if c.closed {
		c.st.Unlock()
		conn.Close()
		return nil, ErrClientClosed
	}
	c.conn = conn
	c.st.Unlock()
	return conn, nil
}

// dropConn discards a connection after a transport failure.
func (c *Client) dropConn(conn net.Conn) {
	c.st.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.st.Unlock()
	conn.Close()
}

func (c *Client) isClosed() bool {
	c.st.Lock()
	defer c.st.Unlock()
	return c.closed
}

// backoff sleeps before retry attempt n (1-based) with exponential growth
// and deterministic jitter.
func (c *Client) backoff(n int) {
	p := c.cfg.Retry
	d := float64(p.InitialBackoff)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*c.rng.Float64()-1)
	}
	if d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// do runs op with reconnect + retry handling. Dial failures are always
// retryable (the request never left the client); op signals transport
// failures with *netOpError and decides their retryability itself. Any
// other error is a definitive server response and is returned as-is.
func (c *Client) do(op func(conn net.Conn) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 1; attempt <= c.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.met.retried()
			c.backoff(attempt - 1)
		}
		conn, err := c.acquireConn()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return err
			}
			lastErr = err
			continue // connect-phase failure: retryable for every op
		}
		if c.cfg.OpTimeout > 0 {
			_ = conn.SetDeadline(time.Now().Add(c.cfg.OpTimeout))
		}
		err = op(conn)
		if err == nil {
			return nil
		}
		var ne *netOpError
		if !errors.As(err, &ne) {
			return err // definitive response from the server
		}
		c.dropConn(conn)
		if c.isClosed() {
			return ErrClientClosed
		}
		lastErr = ne.err
		if !ne.retryable {
			return ne.err
		}
	}
	return lastErr
}

// unary performs one request/response exchange. idempotent controls
// whether mid-exchange transport failures are retried.
func (c *Client) unary(op byte, key, value []byte, limit uint32, idempotent bool) (byte, []byte, error) {
	var status byte
	var body []byte
	t0 := time.Now()
	defer func() { c.met.request(op, uint64(time.Since(t0))) }()
	err := c.do(func(conn net.Conn) error {
		if err := writeFrame(conn, encodeRequest(op, key, value, limit)); err != nil {
			return &netOpError{err: err, retryable: idempotent}
		}
		resp, err := readFrame(conn, maxFrameWire)
		if err != nil {
			return &netOpError{err: err, retryable: idempotent}
		}
		if len(resp) < 1 {
			return &netOpError{err: errMalformed, retryable: idempotent}
		}
		switch resp[0] {
		case stBusy:
			// The server shed the connection before reading the request:
			// retrying is safe even for non-idempotent operations.
			c.met.sawBusy()
			return &netOpError{err: ErrServerBusy, retryable: true}
		case stCorrupt:
			// The request was damaged in transit and rejected before
			// processing: retrying is safe even for Put/Delete.
			c.met.sawCorrupt()
			return &netOpError{err: fmt.Errorf("%w (request)", ErrFrameCorrupt), retryable: true}
		}
		status, body = resp[0], resp[1:]
		return nil
	})
	return status, body, err
}

// statusErr maps a response status back onto the sentinel errResponse
// encoded from, so errors.Is against the aria sentinels holds on the
// client exactly as it would against the store in-process.
func statusErr(status byte, body []byte) error {
	switch status {
	case stOK:
		return nil
	case stNotFound:
		return ErrNotFound
	case stIntegrity:
		return fmt.Errorf("%w: %s", ErrIntegrityRemote, body)
	case stBusy:
		return ErrServerBusy
	case stTooLarge:
		return ErrTooLarge
	case stEmptyKey:
		return ErrEmptyKey
	case stNoScan:
		return ErrNoScan
	case stNotDurable:
		return ErrNotDurable
	case stFenced:
		return ErrFenced
	case stReadOnly:
		return ErrReadOnlyReplica
	case stLagging:
		return ErrLagging
	case stDraining:
		return ErrDraining
	default:
		return fmt.Errorf("kvnet: server error: %s", body)
	}
}

// Get fetches a value.
func (c *Client) Get(key []byte) ([]byte, error) {
	status, body, err := c.unary(opGet, key, nil, 0, true)
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, body); err != nil {
		return nil, err
	}
	return body, nil
}

// Put stores a pair. A Put whose request may already have reached the
// server is not retried automatically; callers that treat their writes as
// idempotent can simply call Put again on error.
func (c *Client) Put(key, value []byte) error {
	status, body, err := c.unary(opPut, key, value, 0, false)
	if err != nil {
		return err
	}
	return statusErr(status, body)
}

// Delete removes a key. Like Put, it is only retried on connect-phase
// failures.
func (c *Client) Delete(key []byte) error {
	status, body, err := c.unary(opDelete, key, nil, 0, false)
	if err != nil {
		return err
	}
	return statusErr(status, body)
}

// Checkpoint asks the server to write a sealed snapshot and truncate
// the WAL it makes obsolete. A server whose store was opened without a
// data dir answers ErrNotDurable. Checkpointing twice is harmless, so
// transport failures are retried like idempotent operations.
func (c *Client) Checkpoint() error {
	status, body, err := c.unary(opCheckpoint, nil, nil, 0, true)
	if err != nil {
		return err
	}
	return statusErr(status, body)
}

// Stats fetches the server store's counters.
func (c *Client) Stats() (aria.Stats, error) {
	var out aria.Stats
	status, body, err := c.unary(opStats, nil, nil, 0, true)
	if err != nil {
		return out, err
	}
	if err := statusErr(status, body); err != nil {
		return out, err
	}
	err = json.Unmarshal(body, &out)
	return out, err
}

// Scan streams pairs with start <= key < end (nil end = unbounded, limit 0
// = unlimited) in key order, invoking fn for each; fn returning false stops
// consuming (the remainder of the stream is drained). A transport failure
// before the first pair is retried like any idempotent operation; after
// pairs have been delivered the scan fails with ErrScanInterrupted instead
// of restarting, so fn never observes duplicates.
func (c *Client) Scan(start, end []byte, limit uint32, fn func(key, value []byte) bool) error {
	t0 := time.Now()
	defer func() { c.met.request(opScan, uint64(time.Since(t0))) }()
	return c.do(func(conn net.Conn) error {
		delivered := false
		fail := func(err error) error {
			if delivered {
				return &netOpError{err: fmt.Errorf("%w: %v", ErrScanInterrupted, err), retryable: false}
			}
			return &netOpError{err: err, retryable: true}
		}
		if err := writeFrame(conn, encodeRequest(opScan, start, end, limit)); err != nil {
			return fail(err)
		}
		keepGoing := true
		for {
			if c.cfg.OpTimeout > 0 {
				_ = conn.SetDeadline(time.Now().Add(c.cfg.OpTimeout))
			}
			resp, err := readFrame(conn, maxFrameWire)
			if err != nil {
				return fail(err)
			}
			if len(resp) < 1 {
				return fail(errMalformed)
			}
			switch resp[0] {
			case stMore:
				k, v, err := decodePair(resp[1:])
				if err != nil {
					return fail(err)
				}
				delivered = true
				if keepGoing && !fn(k, v) {
					keepGoing = false
				}
			case stDone:
				return nil
			case stBusy:
				c.met.sawBusy()
				return &netOpError{err: ErrServerBusy, retryable: true}
			case stCorrupt:
				// The scan request never decoded server-side, so no pair
				// can have been delivered; fail() keeps this retryable.
				c.met.sawCorrupt()
				return fail(fmt.Errorf("%w (request)", ErrFrameCorrupt))
			default:
				return statusErr(resp[0], resp[1:])
			}
		}
	})
}
