package kvnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/obs"
)

var (
	// ErrClientClosed is returned by every operation after Close.
	ErrClientClosed = errors.New("kvnet: client closed")
	// ErrServerBusy reports that the server shed the connection at its
	// connection limit. The request was not processed, so retrying any
	// operation — idempotent or not — is safe.
	ErrServerBusy = errors.New("kvnet: server busy (connection limit)")
	// ErrScanInterrupted reports a transport failure after a scan already
	// delivered pairs; the client does not restart the stream because the
	// callback would observe duplicates.
	ErrScanInterrupted = errors.New("kvnet: scan interrupted mid-stream")
	// ErrFrameCorrupt reports that a frame failed its checksum: the bytes
	// were altered in transit. Corrupt requests are rejected by the server
	// before processing (safe to retry); corrupt responses surface as
	// transport failures.
	ErrFrameCorrupt = errors.New("kvnet: frame corrupted in transit")
)

// RetryPolicy tunes the client's automatic retries. Transport failures on
// idempotent operations (Get, Scan, Stats) are always retried; Put and
// Delete are retried only when the failure happened before the request
// could have reached the server (dial errors and stBusy shedding), so a
// non-idempotent request is never silently applied twice.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// InitialBackoff is the sleep before the second attempt (default 10ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the sleep between attempts (default 500ms).
	MaxBackoff time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// Jitter randomizes each sleep by ±Jitter fraction (default 0.2).
	Jitter float64
}

// DefaultRetryPolicy returns the policy Dial uses.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    4,
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     500 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.2,
	}
}

// NoRetry returns a policy that disables retries entirely.
func NoRetry() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

func (p *RetryPolicy) fillDefaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy().MaxAttempts
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = DefaultRetryPolicy().InitialBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryPolicy().MaxBackoff
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
}

// ClientConfig tunes a client's resilience behaviour. Zero values select
// the defaults; a negative OpTimeout disables per-operation deadlines.
type ClientConfig struct {
	// Retry is the retry policy (zero value: DefaultRetryPolicy; use
	// NoRetry to disable).
	Retry RetryPolicy
	// DialTimeout bounds each (re)connection attempt, hello handshake
	// included (default 5s).
	DialTimeout time.Duration
	// OpTimeout bounds each request/response exchange; for scans it
	// applies per frame, so a long stream that keeps making progress is
	// not cut off (default 30s).
	OpTimeout time.Duration
	// Seed makes the retry jitter deterministic (tests); 0 uses 1.
	Seed int64
	// Metrics, when non-nil, instruments the client into the given
	// registry: operation counts and caller-observed latency histograms
	// (retries and backoff included) by operation, retry/redial counts,
	// and how often the server answered stBusy or stCorrupt. nil (the
	// default) disables client instrumentation. See docs/OPERATIONS.md
	// for the metric catalogue.
	Metrics *obs.Registry
}

func (c *ClientConfig) fillDefaults() {
	if c.Retry == (RetryPolicy{}) {
		c.Retry = DefaultRetryPolicy()
	} else {
		c.Retry.fillDefaults()
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Client is a connection to an aria server. It is safe for concurrent use;
// concurrent operations are pipelined over one multiplexed connection
// using tagged frames, so responses complete out of order and a slow scan
// does not head-of-line block the gets issued behind it. A broken
// connection is redialed transparently on the next operation.
type Client struct {
	addr string
	cfg  ClientConfig

	rngMu sync.Mutex // guards rng (backoff jitter)
	rng   *rand.Rand

	st      sync.Mutex // guards the fields below; Close never waits on an op
	mx      *mux
	pre     net.Conn      // eagerly dialed by DialConfig, consumed by the first op
	dialing chan struct{} // non-nil while one goroutine dials+handshakes
	closed  bool

	met *clientMetrics // nil when ClientConfig.Metrics is nil (no-op hooks)
}

// Dial connects to a server with the default resilience config.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects to a server with explicit resilience settings. The
// initial connection is established eagerly so configuration errors
// surface immediately; the protocol handshake and later reconnects happen
// lazily per operation, where the retry policy governs them.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fillDefaults()
	c := &Client{
		addr: addr,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Metrics != nil {
		c.met = newClientMetrics(cfg.Metrics)
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.pre = conn
	return c, nil
}

// Close closes the connection. It is idempotent, safe to call while an
// operation is in flight (the operation fails with ErrClientClosed), and
// never blocks behind an in-flight request.
func (c *Client) Close() error {
	c.st.Lock()
	if c.closed {
		c.st.Unlock()
		return nil
	}
	c.closed = true
	m, pre := c.mx, c.pre
	c.mx, c.pre = nil, nil
	c.st.Unlock()
	if pre != nil {
		_ = pre.Close()
	}
	if m != nil {
		m.fail(ErrClientClosed, false)
	}
	return nil
}

// netOpError marks a transport-level failure inside one attempt. The
// connection is dropped; retryable says whether this operation may run
// again on a fresh connection.
type netOpError struct {
	err       error
	retryable bool
}

func (e *netOpError) Error() string { return e.err.Error() }
func (e *netOpError) Unwrap() error { return e.err }

// acquireMux returns the live multiplexed connection, dialing and
// handshaking if the previous one died. Concurrent acquirers coalesce on
// one dial; each failed attempt is retried by whichever operation needs a
// connection next (its retry budget pays for it).
func (c *Client) acquireMux() (*mux, error) {
	for {
		c.st.Lock()
		if c.closed {
			c.st.Unlock()
			return nil, ErrClientClosed
		}
		if c.mx != nil && !c.mx.isDead() {
			m := c.mx
			c.st.Unlock()
			return m, nil
		}
		c.mx = nil
		if ch := c.dialing; ch != nil {
			c.st.Unlock()
			<-ch // another op is dialing; re-check when it finishes
			continue
		}
		ch := make(chan struct{})
		c.dialing = ch
		pre := c.pre
		c.pre = nil
		c.st.Unlock()

		m, err := c.dialMux(pre)

		c.st.Lock()
		c.dialing = nil
		close(ch)
		if err != nil {
			c.st.Unlock()
			return nil, err
		}
		if c.closed {
			c.st.Unlock()
			m.fail(ErrClientClosed, false)
			return nil, ErrClientClosed
		}
		c.mx = m
		c.st.Unlock()
		return m, nil
	}
}

// dialMux establishes one connection: TCP dial (unless DialConfig already
// did), hello handshake, reader goroutine.
func (c *Client) dialMux(pre net.Conn) (*mux, error) {
	conn := pre
	if conn == nil {
		var err error
		conn, err = net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		c.met.redialed()
	}
	if err := clientHello(conn, c.cfg.DialTimeout); err != nil {
		_ = conn.Close()
		if errors.Is(err, ErrServerBusy) {
			c.met.sawBusy()
		}
		if errors.Is(err, ErrFrameCorrupt) {
			c.met.sawCorrupt()
		}
		return nil, err
	}
	m := newMux(conn, c.met)
	go m.readLoop()
	return m, nil
}

// dropMux discards a mux after a transport failure.
func (c *Client) dropMux(m *mux) {
	c.st.Lock()
	if c.mx == m {
		c.mx = nil
	}
	c.st.Unlock()
	m.fail(errors.New("kvnet: connection dropped"), false)
}

func (c *Client) isClosed() bool {
	c.st.Lock()
	defer c.st.Unlock()
	return c.closed
}

// backoff sleeps before retry attempt n (1-based) with exponential growth
// and deterministic jitter.
func (c *Client) backoff(n int) {
	p := c.cfg.Retry
	d := float64(p.InitialBackoff)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if p.Jitter > 0 {
		c.rngMu.Lock()
		d *= 1 + p.Jitter*(2*c.rng.Float64()-1)
		c.rngMu.Unlock()
	}
	if d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// do runs op with reconnect + retry handling. Connect-phase failures —
// dial errors, stBusy shedding, a corrupt hello — are always retryable
// (the request never left the client); op signals transport failures with
// *netOpError and decides their retryability itself. Any other error is a
// definitive server response and is returned as-is. A version rejection
// is definitive too: redialing cannot change what the server speaks.
func (c *Client) do(op func(m *mux) error) error {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.met.retried()
			c.backoff(attempt - 1)
		}
		m, err := c.acquireMux()
		if err != nil {
			if errors.Is(err, ErrClientClosed) || errors.Is(err, ErrBadVersion) {
				return err
			}
			lastErr = err
			continue // connect-phase failure: retryable for every op
		}
		err = op(m)
		if err == nil {
			return nil
		}
		var ne *netOpError
		if !errors.As(err, &ne) {
			return err // definitive response from the server
		}
		c.dropMux(m)
		if c.isClosed() {
			return ErrClientClosed
		}
		lastErr = ne.err
		if !ne.retryable {
			return ne.err
		}
	}
	return lastErr
}

// unary performs one request/response exchange on a fresh tag. idempotent
// controls whether mid-exchange transport failures are retried; a mux
// teardown that proves pending requests were never processed (stBusy,
// stCorrupt notices) upgrades even non-idempotent operations to
// retryable.
func (c *Client) unary(op byte, key, value []byte, limit uint32, idempotent bool) (byte, []byte, error) {
	return c.unaryRaw(op, encodeRequest(op, key, value, limit), idempotent)
}

// unaryRaw is unary for ops whose request payload is pre-encoded
// (opTxnCommit builds its own multi-op layout).
func (c *Client) unaryRaw(op byte, payload []byte, idempotent bool) (byte, []byte, error) {
	var status byte
	var body []byte
	t0 := time.Now()
	defer func() { c.met.request(op, uint64(time.Since(t0))) }()
	err := c.do(func(m *mux) error {
		tag, cl, err := m.register(1)
		if err != nil {
			// The mux died before the request was sent: always retryable.
			return &netOpError{err: err, retryable: true}
		}
		if err := m.writeRequest(tag, payload, c.cfg.OpTimeout); err != nil {
			return &netOpError{err: err, retryable: idempotent}
		}
		f, safe, err := m.await(cl, c.cfg.OpTimeout)
		if err != nil {
			return &netOpError{err: err, retryable: idempotent || safe}
		}
		status = f.resp[0]
		body = append([]byte(nil), f.resp[1:]...)
		putBuf(f.buf)
		m.deregister(tag)
		return nil
	})
	return status, body, err
}

// statusErr maps a response status back onto the sentinel errResponse
// encoded from, so errors.Is against the aria sentinels holds on the
// client exactly as it would against the store in-process.
func statusErr(status byte, body []byte) error {
	switch status {
	case stOK:
		return nil
	case stNotFound:
		return ErrNotFound
	case stIntegrity:
		return fmt.Errorf("%w: %s", ErrIntegrityRemote, body)
	case stBusy:
		return ErrServerBusy
	case stTooLarge:
		return ErrTooLarge
	case stEmptyKey:
		return ErrEmptyKey
	case stNoScan:
		return ErrNoScan
	case stNotDurable:
		return ErrNotDurable
	case stFenced:
		return ErrFenced
	case stReadOnly:
		return ErrReadOnlyReplica
	case stLagging:
		return ErrLagging
	case stCASMismatch:
		return fmt.Errorf("%w: %s", ErrCASMismatch, body)
	case stTxnConflict:
		return fmt.Errorf("%w: %s", ErrTxnConflict, body)
	case stDraining:
		return ErrDraining
	case stBadVersion:
		return fmt.Errorf("%w: %s", ErrBadVersion, body)
	default:
		return fmt.Errorf("kvnet: server error: %s", body)
	}
}

// Get fetches a value.
func (c *Client) Get(key []byte) ([]byte, error) {
	status, body, err := c.unary(opGet, key, nil, 0, true)
	if err != nil {
		return nil, err
	}
	if err := statusErr(status, body); err != nil {
		return nil, err
	}
	return body, nil
}

// Put stores a pair. A Put whose request may already have reached the
// server is not retried automatically; callers that treat their writes as
// idempotent can simply call Put again on error.
func (c *Client) Put(key, value []byte) error {
	status, body, err := c.unary(opPut, key, value, 0, false)
	if err != nil {
		return err
	}
	return statusErr(status, body)
}

// Delete removes a key. Like Put, it is only retried on connect-phase
// failures.
func (c *Client) Delete(key []byte) error {
	status, body, err := c.unary(opDelete, key, nil, 0, false)
	if err != nil {
		return err
	}
	return statusErr(status, body)
}

// Checkpoint asks the server to write a sealed snapshot and truncate
// the WAL it makes obsolete. A server whose store was opened without a
// data dir answers ErrNotDurable. Checkpointing twice is harmless, so
// transport failures are retried like idempotent operations.
func (c *Client) Checkpoint() error {
	status, body, err := c.unary(opCheckpoint, nil, nil, 0, true)
	if err != nil {
		return err
	}
	return statusErr(status, body)
}

// Stats fetches the server store's counters.
func (c *Client) Stats() (aria.Stats, error) {
	var out aria.Stats
	status, body, err := c.unary(opStats, nil, nil, 0, true)
	if err != nil {
		return out, err
	}
	if err := statusErr(status, body); err != nil {
		return out, err
	}
	err = json.Unmarshal(body, &out)
	return out, err
}

// Scan streams pairs with start <= key < end (nil end = unbounded, limit 0
// = unlimited) in key order, invoking fn for each; fn returning false stops
// consuming (the remainder of the stream is drained). A transport failure
// before the first pair is retried like any idempotent operation; after
// pairs have been delivered the scan fails with ErrScanInterrupted instead
// of restarting, so fn never observes duplicates. The stream occupies one
// tag; other operations on the same client proceed concurrently.
func (c *Client) Scan(start, end []byte, limit uint32, fn func(key, value []byte) bool) error {
	t0 := time.Now()
	defer func() { c.met.request(opScan, uint64(time.Since(t0))) }()
	return c.do(func(m *mux) error {
		delivered := false
		fail := func(err error) error {
			if delivered {
				return &netOpError{err: fmt.Errorf("%w: %v", ErrScanInterrupted, err), retryable: false}
			}
			return &netOpError{err: err, retryable: true}
		}
		tag, cl, err := m.register(streamCallBuffer)
		if err != nil {
			return &netOpError{err: err, retryable: true}
		}
		if err := m.writeRequest(tag, encodeRequest(opScan, start, end, limit), c.cfg.OpTimeout); err != nil {
			return fail(err)
		}
		keepGoing := true
		for {
			f, _, err := m.await(cl, c.cfg.OpTimeout)
			if err != nil {
				return fail(err)
			}
			switch f.resp[0] {
			case stMore:
				k, v, perr := decodePair(f.resp[1:])
				if perr != nil {
					putBuf(f.buf)
					return fail(perr)
				}
				delivered = true
				if keepGoing && !fn(k, v) {
					keepGoing = false
				}
				putBuf(f.buf)
			case stDone:
				putBuf(f.buf)
				m.deregister(tag)
				return nil
			default:
				status := f.resp[0]
				body := append([]byte(nil), f.resp[1:]...)
				putBuf(f.buf)
				m.deregister(tag)
				return statusErr(status, body)
			}
		}
	})
}
