package kvnet

import (
	"net"

	"github.com/ariakv/aria/obs"
)

// This file wires the obs registry through the network layer. Both the
// server and the client take an optional *obs.Registry in their configs;
// nil (the default) means every hook below is a nil-receiver no-op that
// the branch predictor eats, and no instrument is ever registered. The
// metric catalogue lives in docs/OPERATIONS.md; the parity test keeps
// the two in sync.

// opNames maps wire op codes to metric label values.
var opNames = [opMDelete + 1]string{
	opGet:     "get",
	opPut:     "put",
	opDelete:  "delete",
	opStats:   "stats",
	opScan:    "scan",
	opMGet:    "mget",
	opMPut:    "mput",
	opMDelete: "mdelete",
}

// Server-side metric family names.
const (
	metricSrvRequests   = "kvnet_requests_total"
	metricSrvDuration   = "kvnet_request_duration_ns"
	metricSrvBytesRead  = "kvnet_bytes_read_total"
	metricSrvBytesWrite = "kvnet_bytes_written_total"
	metricSrvActive     = "kvnet_active_conns"
	metricSrvConns      = "kvnet_conns_total"
	metricSrvShed       = "kvnet_shed_conns_total"
	metricSrvCorrupt    = "kvnet_corrupt_frames_total"
	metricSrvBadReq     = "kvnet_bad_requests_total"
	metricSrvPanics     = "kvnet_panics_total"
	metricSrvBatchKeys  = "kvnet_batch_keys"
	metricSrvInvalSubs  = "kvnet_inval_subs"
	metricSrvInvalPush  = "kvnet_inval_pushed_total"
	metricSrvInvalOver  = "kvnet_inval_overflows_total"
	metricSrvInflight   = "kvnet_inflight"
	metricSrvPoolWork   = "kvnet_pool_workers"
	metricSrvPoolQueue  = "kvnet_pool_queued"
	metricSrvTaggedStr  = "kvnet_tagged_streams"
	metricSrvTaggedPush = "kvnet_tagged_pushes_total"
)

// Client-side metric family names.
const (
	metricCliRequests = "kvnet_client_requests_total"
	metricCliDuration = "kvnet_client_request_ns"
	metricCliRetries  = "kvnet_client_retries_total"
	metricCliRedials  = "kvnet_client_redials_total"
	metricCliBusy     = "kvnet_client_busy_total"
	metricCliCorrupt  = "kvnet_client_corrupt_total"
	metricCliBatchKey = "kvnet_client_batch_keys"
	metricCliSplits   = "kvnet_client_batch_splits_total"
)

// serverMetrics holds the server's instruments. A nil *serverMetrics is
// valid and turns every method into a no-op, so call sites never branch
// on whether metrics are enabled.
type serverMetrics struct {
	requests [opMDelete + 1]*obs.Counter
	duration [opMDelete + 1]*obs.Histogram
	batchSz  [opMDelete + 1]*obs.Histogram // batch ops only

	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
	activeConns  *obs.Gauge
	connsTotal   *obs.Counter
	shedConns    *obs.Counter
	corrupt      *obs.Counter
	badReq       *obs.Counter
	panics       *obs.Counter
	invalSubs    *obs.Gauge
	invalPush    *obs.Counter
	invalOver    *obs.Counter
	inflight     *obs.Gauge
	poolWork     *obs.Gauge
	poolQueue    *obs.Gauge
	taggedStr    *obs.Gauge
	taggedPushes *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{
		bytesRead: reg.Counter(metricSrvBytesRead,
			"Bytes read from admitted client connections.", nil),
		bytesWritten: reg.Counter(metricSrvBytesWrite,
			"Bytes written to admitted client connections.", nil),
		activeConns: reg.Gauge(metricSrvActive,
			"Client connections currently admitted.", nil),
		connsTotal: reg.Counter(metricSrvConns,
			"Client connections admitted since start.", nil),
		shedConns: reg.Counter(metricSrvShed,
			"Connections refused with stBusy at the MaxConns limit.", nil),
		corrupt: reg.Counter(metricSrvCorrupt,
			"Request frames rejected by checksum (stCorrupt sent).", nil),
		badReq: reg.Counter(metricSrvBadReq,
			"Malformed or unknown requests rejected (stBadReq sent).", nil),
		panics: reg.Counter(metricSrvPanics,
			"Handler panics converted to stError responses.", nil),
		invalSubs: reg.Gauge(metricSrvInvalSubs,
			"Invalidation streams currently subscribed.", nil),
		invalPush: reg.Counter(metricSrvInvalPush,
			"Invalidation entries published to subscribed streams.", nil),
		invalOver: reg.Counter(metricSrvInvalOver,
			"Invalidation streams terminated because their mailbox overflowed.", nil),
		inflight: reg.Gauge(metricSrvInflight,
			"Tagged requests admitted to connection worker pools and not yet retired.", nil),
		poolWork: reg.Gauge(metricSrvPoolWork,
			"Per-connection pool workers currently running, summed over connections.", nil),
		poolQueue: reg.Gauge(metricSrvPoolQueue,
			"Tagged requests waiting for a free pool worker, summed over connections.", nil),
		taggedStr: reg.Gauge(metricSrvTaggedStr,
			"Push streams (subscribe, invalidation) currently carried on tagged data connections.", nil),
		taggedPushes: reg.Counter(metricSrvTaggedPush,
			"Frames pushed to clients on stream tags (replication records, heartbeats, invalidations).", nil),
	}
	for op := byte(opGet); op <= opMDelete; op++ {
		l := obs.Labels{"op": opNames[op]}
		m.requests[op] = reg.Counter(metricSrvRequests,
			"Requests served, by operation.", l)
		m.duration[op] = reg.Histogram(metricSrvDuration,
			"Request service time in nanoseconds (store call plus response write).", l)
	}
	for op := byte(opMGet); op <= opMDelete; op++ {
		m.batchSz[op] = reg.Histogram(metricSrvBatchKeys,
			"Keys per batch request served, by operation.",
			obs.Labels{"op": opNames[op]})
	}
	return m
}

// batchKeys records the size of one served batch request.
func (m *serverMetrics) batchKeys(op byte, n int) {
	if m == nil || int(op) >= len(m.batchSz) || m.batchSz[op] == nil {
		return
	}
	m.batchSz[op].Record(uint64(n))
}

func (m *serverMetrics) connOpened() {
	if m == nil {
		return
	}
	m.connsTotal.Inc()
	m.activeConns.Add(1)
}

func (m *serverMetrics) connClosed() {
	if m == nil {
		return
	}
	m.activeConns.Add(-1)
}

func (m *serverMetrics) connShed() {
	if m != nil {
		m.shedConns.Inc()
	}
}

func (m *serverMetrics) corruptFrame() {
	if m != nil {
		m.corrupt.Inc()
	}
}

func (m *serverMetrics) badRequest() {
	if m != nil {
		m.badReq.Inc()
	}
}

func (m *serverMetrics) panicked() {
	if m != nil {
		m.panics.Inc()
	}
}

func (m *serverMetrics) invalSubOpened() {
	if m != nil {
		m.invalSubs.Add(1)
	}
}

func (m *serverMetrics) invalSubClosed() {
	if m != nil {
		m.invalSubs.Add(-1)
	}
}

func (m *serverMetrics) invalPushed() {
	if m != nil {
		m.invalPush.Inc()
	}
}

func (m *serverMetrics) invalOverflow() {
	if m != nil {
		m.invalOver.Inc()
	}
}

func (m *serverMetrics) inflightDelta(d float64) {
	if m != nil {
		m.inflight.Add(d)
	}
}

func (m *serverMetrics) poolWorkers(d float64) {
	if m != nil {
		m.poolWork.Add(d)
	}
}

func (m *serverMetrics) poolQueued(d float64) {
	if m != nil {
		m.poolQueue.Add(d)
	}
}

func (m *serverMetrics) taggedStream(d float64) {
	if m != nil {
		m.taggedStr.Add(d)
	}
}

func (m *serverMetrics) taggedPush() {
	if m != nil {
		m.taggedPushes.Inc()
	}
}

// request records one served request. Unknown op codes were already
// counted as bad requests and carry no instrument.
func (m *serverMetrics) request(op byte, ns uint64) {
	if m == nil || int(op) >= len(m.requests) || m.requests[op] == nil {
		return
	}
	m.requests[op].Inc()
	m.duration[op].Record(ns)
}

// wrap wires a connection's reads and writes into the byte counters.
func (m *serverMetrics) wrap(conn net.Conn) net.Conn {
	if m == nil {
		return conn
	}
	return &countingConn{Conn: conn, read: m.bytesRead, written: m.bytesWritten}
}

// countingConn counts bytes as they cross the wire. Counters are atomic,
// so concurrent connections share them without coordination.
type countingConn struct {
	net.Conn
	read    *obs.Counter
	written *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.read.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.written.Add(uint64(n))
	}
	return n, err
}

// clientMetrics holds the client's instruments; nil is a no-op set, same
// contract as serverMetrics.
type clientMetrics struct {
	requests [opMDelete + 1]*obs.Counter
	duration [opMDelete + 1]*obs.Histogram
	batchSz  [opMDelete + 1]*obs.Histogram // batch ops only

	retries *obs.Counter
	redials *obs.Counter
	busy    *obs.Counter
	corrupt *obs.Counter
	splits  *obs.Counter
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	m := &clientMetrics{
		retries: reg.Counter(metricCliRetries,
			"Operation attempts beyond the first (retry policy fired).", nil),
		redials: reg.Counter(metricCliRedials,
			"Lazy reconnects after a dropped connection.", nil),
		busy: reg.Counter(metricCliBusy,
			"stBusy shed responses received from the server.", nil),
		corrupt: reg.Counter(metricCliCorrupt,
			"stCorrupt responses received (request damaged in transit).", nil),
		splits: reg.Counter(metricCliSplits,
			"Extra requests produced by splitting oversized batches.", nil),
	}
	for op := byte(opGet); op <= opMDelete; op++ {
		l := obs.Labels{"op": opNames[op]}
		m.requests[op] = reg.Counter(metricCliRequests,
			"Client operations completed (any outcome), by operation.", l)
		m.duration[op] = reg.Histogram(metricCliDuration,
			"Client operation latency in nanoseconds, retries included.", l)
	}
	for op := byte(opMGet); op <= opMDelete; op++ {
		m.batchSz[op] = reg.Histogram(metricCliBatchKey,
			"Keys per batch operation issued, by operation.",
			obs.Labels{"op": opNames[op]})
	}
	return m
}

// batchKeys records the size of one issued batch operation.
func (m *clientMetrics) batchKeys(op byte, n int) {
	if m == nil || int(op) >= len(m.batchSz) || m.batchSz[op] == nil {
		return
	}
	m.batchSz[op].Record(uint64(n))
}

// batchSplit records extra requests produced by splitting one batch.
func (m *clientMetrics) batchSplit(n int) {
	if m != nil && n > 0 {
		m.splits.Add(uint64(n))
	}
}

// request records one completed client operation, retries and backoff
// included — the latency the caller actually experienced.
func (m *clientMetrics) request(op byte, ns uint64) {
	if m == nil {
		return
	}
	m.requests[op].Inc()
	m.duration[op].Record(ns)
}

func (m *clientMetrics) retried() {
	if m != nil {
		m.retries.Inc()
	}
}

func (m *clientMetrics) redialed() {
	if m != nil {
		m.redials.Inc()
	}
}

func (m *clientMetrics) sawBusy() {
	if m != nil {
		m.busy.Inc()
	}
}

func (m *clientMetrics) sawCorrupt() {
	if m != nil {
		m.corrupt.Inc()
	}
}
