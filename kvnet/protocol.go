// Package kvnet provides a client/server layer over an aria.Store,
// mirroring the paper's deployment model: the store runs inside an enclave
// on an untrusted host, and clients reach it over a channel whose
// protection the paper delegates to SGX remote attestation (§II-B). The
// wire protocol here is the post-attestation session: framing plus typed
// status codes; transport security is assumed established, exactly as the
// paper assumes it.
//
// Each request entering the store pays one ECALL on the simulated enclave,
// modelling the edge-call cost a networked deployment adds over the
// paper's server-side-generated workloads.
package kvnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"github.com/ariakv/aria"
)

// protocolVersion is the wire protocol generation. Version 2 introduced
// tagged frames: every payload after the hello exchange is prefixed with
// a client-assigned 32-bit tag, responses complete out of order, and one
// connection sustains many in-flight requests. A server rejects hellos
// from any other version (and hello-less version-1 connections) with the
// typed stBadVersion — it never limps along speaking the wrong framing.
// The normative spec is docs/PROTOCOL.md; the parity test keeps it and
// this file in lockstep.
const protocolVersion = 2

// helloMagic opens every hello body so a stray non-kvnet client can
// never be mistaken for an old-version peer ("ARIA").
const helloMagic = 0x41524941

// Op codes. The batch ops (opMGet and above) carry multi-record payloads
// and stream multi-record responses; see batch.go for their wire layout.
const (
	opGet        = 1
	opPut        = 2
	opDelete     = 3
	opStats      = 4
	opScan       = 5
	opMGet       = 6
	opMPut       = 7
	opMDelete    = 8
	opCheckpoint = 9

	// Replication ops (see repl.go for their wire layout). opSubscribe
	// opens a long-lived tail stream of sealed WAL records;
	// opSegmentCatchup is its finite form, ending with stDone once the
	// subscriber has caught up. opReplAck flows subscriber→publisher on
	// the subscribe connection, carrying the applied sequence number.
	opSubscribe        = 10
	opReplAck          = 11
	opSegmentCatchup   = 12
	opSnapshotTransfer = 13
	opReplStatus       = 14

	// opInvalSub opens a long-lived invalidation stream for client-side
	// caches (see inval.go): the server pushes a (key-hash, shard, seq)
	// entry for every committed write, reusing the subscribe stream's
	// heartbeat (stReplBeat) and graceful-drain (stDraining) machinery.
	opInvalSub = 15

	// opHello is the first request on every connection: tag 0, body =
	// magic (u32 BE) + protocol version (u16 BE). The server answers on
	// tag 0 with stOK (body = its version) or rejects the connection with
	// stBadVersion. No other request is accepted before the hello.
	opHello = 16

	// Transactional ops. opGetV is a versioned read: the response body is
	// version (u64 BE) + value. opCAS packs expect (u64 BE) + new value
	// into the value field. opPutTTL packs ttl nanoseconds (u64 BE) +
	// value into the value field. opTxnCommit carries a multi-op commit
	// payload (see txnwire.go for its layout).
	opGetV      = 17
	opCAS       = 18
	opPutTTL    = 19
	opTxnCommit = 20
)

// Status codes. Typed store sentinels each get their own code so
// errors.Is keeps working across the wire: the server maps a sentinel
// to its status, the client maps the status back to an error wrapping
// the same aria sentinel (see errResponse/statusErr and the round-trip
// table test).
const (
	stOK         = 0
	stNotFound   = 1
	stIntegrity  = 2
	stBadReq     = 3
	stError      = 4
	stMore       = 5  // scan: another pair follows
	stDone       = 6  // scan: end of range
	stBusy       = 7  // server at connection limit; retry later
	stCorrupt    = 8  // request frame failed its checksum; not processed, retry safe
	stTooLarge   = 9  // key or value exceeds the store's limits
	stEmptyKey   = 10 // empty or nil key
	stNoScan     = 11 // store's index does not support range scans
	stNotDurable = 12 // checkpoint on a store opened without a data dir

	// Replication statuses (see repl.go). Subscribe streams interleave
	// stSegStart/stReplRec/stReplBeat frames; stDraining, stFenced, and
	// stSnapAvail terminate them with a typed reason, and stDone ends a
	// finite catch-up or snapshot stream.
	stSegStart  = 13 // subscribe: segment boundary; body = first seq (u64 BE)
	stReplRec   = 14 // subscribe: body = one sealed WAL record, verbatim
	stReplBeat  = 15 // subscribe: heartbeat; body = publisher next seq (u64 BE)
	stSnapAvail = 16 // subscribe: afterSeq predates retained WAL; body = snapshot covered seq (u64 BE)
	stDraining  = 17 // subscribe: server shutting down; redial another node
	stFenced    = 18 // node fenced by a newer replication generation
	stReadOnly  = 19 // write sent to a replica
	stLagging   = 20 // watermarked read not yet applied; body = violating watermark entry
	stSnapChunk = 21 // snapshot transfer: body = raw snapshot file bytes
	stInvalRec  = 22 // inval stream: body = concatenated invalidation entries (see inval.go)

	// stBadVersion rejects a connection whose first frame is not a valid
	// hello for this server's protocol version. It is written UNTAGGED
	// (status byte first) so that a version-1 client — which reads the
	// first payload byte as a status — sees a typed failure instead of
	// misparsing a tagged frame. The connection closes after it.
	stBadVersion = 23

	// Optimistic-concurrency outcomes. Both carry the store's error text
	// as the body, like stError, but keep their own codes so errors.Is
	// matches the aria sentinels across the wire.
	stCASMismatch = 24 // compare-and-swap lost: key not at the expected version
	stTxnConflict = 25 // transaction aborted: a version check failed at commit
)

// nonTerminal reports whether a status leaves its exchange open: more
// frames will follow on the same tag. Everything else is terminal — the
// server sends nothing further on the tag and the client may reuse it.
func nonTerminal(status byte) bool {
	switch status {
	case stMore, stSegStart, stReplRec, stReplBeat, stSnapAvail, stSnapChunk, stInvalRec:
		return true
	}
	return false
}

// Wire limits.
const (
	maxKeyWire   = 1 << 16
	maxValueWire = 1 << 24

	// maxFrameWire bounds every frame in either direction. A request
	// carries op+lengths+key+value (≤ 11+maxKeyWire+maxValueWire); the
	// largest response is a scan pair (status + 2-byte key length + key +
	// value, ≤ 3+maxKeyWire+maxValueWire). Client and server MUST read
	// with the same cap: a reader cap smaller than the writer's maximum
	// kills the connection on legitimate near-max pairs.
	maxFrameWire = 16 + maxKeyWire + maxValueWire

	// maxReplFrameWire caps subscribe/snapshot stream frames. A sealed
	// WAL record carries a whole Put (key + value + wal framing + seal
	// overhead), which can exceed a request frame by the sealing
	// overhead, so replication readers use a slightly larger cap.
	maxReplFrameWire = maxFrameWire + 128

	// tagHdrSize is the tag prefix on every version-2 payload.
	tagHdrSize = 4

	// maxTaggedWire and maxTaggedReplWire are the version-2 read caps:
	// the version-1 payload limits plus the tag prefix.
	maxTaggedWire     = maxFrameWire + tagHdrSize
	maxTaggedReplWire = maxReplFrameWire + tagHdrSize
)

// The exported sentinels wrap their aria counterparts, so a caller can
// match either the kvnet name or the aria sentinel with errors.Is —
// the typed error survives the wire round trip.
var (
	// ErrIntegrityRemote reports that the server detected an attack.
	ErrIntegrityRemote = fmt.Errorf("kvnet: server detected an integrity violation: %w", aria.ErrIntegrity)
	// ErrNotFound mirrors aria.ErrNotFound across the wire.
	ErrNotFound = fmt.Errorf("kvnet: %w", aria.ErrNotFound)
	// ErrEmptyKey mirrors aria.ErrEmptyKey across the wire.
	ErrEmptyKey = fmt.Errorf("kvnet: %w", aria.ErrEmptyKey)
	// ErrNoScan mirrors aria.ErrNoScan across the wire.
	ErrNoScan = fmt.Errorf("kvnet: %w", aria.ErrNoScan)
	// ErrNotDurable mirrors aria.ErrNotDurable across the wire.
	ErrNotDurable = fmt.Errorf("kvnet: %w", aria.ErrNotDurable)
	// ErrFenced mirrors aria.ErrFenced across the wire: the node was
	// fenced by a newer replication generation and must be re-seeded.
	ErrFenced = fmt.Errorf("kvnet: %w", aria.ErrFenced)
	// ErrReadOnlyReplica mirrors aria.ErrReadOnlyReplica across the
	// wire: writes go to the primary.
	ErrReadOnlyReplica = fmt.Errorf("kvnet: %w", aria.ErrReadOnlyReplica)
	// ErrLagging mirrors aria.ErrLagging across the wire: the replica
	// has not yet applied the read's watermark.
	ErrLagging = fmt.Errorf("kvnet: %w", aria.ErrLagging)
	// ErrCASMismatch mirrors aria.ErrCASMismatch across the wire: the
	// key was not at the expected version.
	ErrCASMismatch = fmt.Errorf("kvnet: %w", aria.ErrCASMismatch)
	// ErrTxnConflict mirrors aria.ErrTxnConflict across the wire: a
	// version check failed at commit and nothing was applied.
	ErrTxnConflict = fmt.Errorf("kvnet: %w", aria.ErrTxnConflict)
	// ErrDraining reports that the server closed a subscribe stream to
	// shut down gracefully; the subscriber should redial.
	ErrDraining = errors.New("kvnet: server draining; redial")
	// ErrBadVersion reports that the peer speaks a different protocol
	// version; there is no compatibility mode, so the dial fails typed.
	ErrBadVersion = errors.New("kvnet: protocol version mismatch")
	// errMalformed reports a framing violation.
	errMalformed = errors.New("kvnet: malformed frame")
	// errCorruptFrame reports a frame whose checksum does not match: the
	// bytes were altered in transit. The stream may be desynchronized, so
	// the connection must be closed after reporting it.
	errCorruptFrame = errors.New("kvnet: frame checksum mismatch")
)

// Every frame is protected by a CRC32-C over its payload, carried in the
// header. This is corruption *detection*, not authentication — the threat
// model still delegates channel protection to SGX remote attestation
// (§II-B); the checksum exists so that line noise or a faulty middlebox
// can never turn a damaged request into an acknowledged wrong write.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHdrSize is the frame header: 4-byte length + 4-byte CRC32-C.
const frameHdrSize = 8

// request is one decoded client request.
type request struct {
	op    byte
	key   []byte
	value []byte // put: value; scan: exclusive end key (may be empty)
	limit uint32 // scan only

	mkeys [][]byte // batch ops: keys, in request order
	mvals [][]byte // opMPut: values aligned with mkeys

	tops []aria.TxnOp // opTxnCommit: decoded transaction ops
}

// writeFrame writes a length-prefixed, checksummed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [frameHdrSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame with a size cap and verifies its checksum.
// A checksum mismatch returns errCorruptFrame; the caller must treat the
// stream as desynchronized and close the connection.
func readFrame(r io.Reader, maxLen int) ([]byte, error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if int64(n) > int64(maxLen) {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", errMalformed, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if crc32.Checksum(buf, crcTable) != binary.BigEndian.Uint32(hdr[4:]) {
		return nil, errCorruptFrame
	}
	return buf, nil
}

// encodeRequest builds a request frame payload.
func encodeRequest(op byte, key, value []byte, limit uint32) []byte {
	buf := make([]byte, 0, 1+2+len(key)+4+len(value)+4)
	buf = append(buf, op)
	var k2 [2]byte
	binary.BigEndian.PutUint16(k2[:], uint16(len(key)))
	buf = append(buf, k2[:]...)
	buf = append(buf, key...)
	var v4 [4]byte
	binary.BigEndian.PutUint32(v4[:], uint32(len(value)))
	buf = append(buf, v4[:]...)
	buf = append(buf, value...)
	binary.BigEndian.PutUint32(v4[:], limit)
	buf = append(buf, v4[:]...)
	return buf
}

// decodeRequest parses a request frame payload. It rejects length fields
// that exceed the wire limits before using them, so a hostile frame can
// never drive an oversized slice or an overflowing index.
func decodeRequest(buf []byte) (request, error) {
	var rq request
	if len(buf) >= 1 && buf[0] >= opMGet && buf[0] <= opMDelete {
		return decodeBatchRequest(buf)
	}
	if len(buf) >= 1 && buf[0] == opTxnCommit {
		return decodeTxnRequest(buf)
	}
	if len(buf) < 7 {
		return rq, errMalformed
	}
	rq.op = buf[0]
	klen := int(binary.BigEndian.Uint16(buf[1:3]))
	if klen > maxKeyWire {
		return rq, errMalformed
	}
	rest := buf[3:]
	if len(rest) < klen+4 {
		return rq, errMalformed
	}
	rq.key = rest[:klen]
	rest = rest[klen:]
	vlen64 := uint64(binary.BigEndian.Uint32(rest[:4]))
	if vlen64 > maxValueWire {
		return rq, errMalformed
	}
	vlen := int(vlen64)
	rest = rest[4:]
	if len(rest) < vlen+4 {
		return rq, errMalformed
	}
	rq.value = rest[:vlen]
	rq.limit = binary.BigEndian.Uint32(rest[vlen : vlen+4])
	return rq, nil
}

// encodeResponse builds a response frame payload: status byte + body.
func encodeResponse(status byte, body []byte) []byte {
	out := make([]byte, 1+len(body))
	out[0] = status
	copy(out[1:], body)
	return out
}

// encodePair builds a scan-stream pair body.
func encodePair(key, value []byte) []byte {
	out := make([]byte, 2+len(key)+len(value))
	binary.BigEndian.PutUint16(out[:2], uint16(len(key)))
	copy(out[2:], key)
	copy(out[2+len(key):], value)
	return out
}

// decodePair splits a scan-stream pair body.
func decodePair(body []byte) (key, value []byte, err error) {
	if len(body) < 2 {
		return nil, nil, errMalformed
	}
	klen := int(binary.BigEndian.Uint16(body[:2]))
	if len(body) < 2+klen {
		return nil, nil, errMalformed
	}
	return body[2 : 2+klen], body[2+klen:], nil
}

// maxPooledBuf caps the size of buffers recycled through the frame pool.
// Jumbo frames (multi-megabyte values, snapshot chunks) are allocated
// fresh and dropped on release so a single large op cannot pin megabytes
// inside the pool forever.
const maxPooledBuf = 64 << 10

// bufPool recycles frame buffers on both ends of the connection: the
// readers' payload buffers and the writers' assembled wire frames. At
// steady state (small ops) neither direction allocates per frame.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// getBuf returns a zero-length pooled buffer. Release with putBuf.
func getBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// putBuf recycles a buffer obtained from getBuf. Safe on nil.
func putBuf(b *[]byte) {
	if b == nil || cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// grow resizes *b to n bytes, reallocating only when capacity is short.
func grow(b *[]byte, n int) []byte {
	if cap(*b) < n {
		*b = make([]byte, n)
	}
	*b = (*b)[:n]
	return *b
}

// readFramePooled is readFrame with the payload read into a pooled
// buffer. The caller owns the returned buffer and must release it with
// putBuf once the payload (and any sub-slices of it) are dead.
func readFramePooled(r io.Reader, maxLen int) (*[]byte, error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if int64(n) > int64(maxLen) {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", errMalformed, n)
	}
	bp := getBuf()
	buf := grow(bp, int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		putBuf(bp)
		return nil, err
	}
	if crc32.Checksum(buf, crcTable) != binary.BigEndian.Uint32(hdr[4:]) {
		putBuf(bp)
		return nil, errCorruptFrame
	}
	return bp, nil
}

// appendFrame appends one complete tagged wire frame — header, tag,
// body — to dst and returns the extended slice. The CRC32-C covers
// tag||body, exactly as readFrame expects. Appending several frames to
// the same buffer before a single Write is the writer-side coalescing
// primitive.
func appendFrame(dst []byte, tag uint32, body []byte) []byte {
	var pre [frameHdrSize + tagHdrSize]byte
	binary.BigEndian.PutUint32(pre[:4], uint32(tagHdrSize+len(body)))
	binary.BigEndian.PutUint32(pre[frameHdrSize:], tag)
	start := len(dst)
	dst = append(dst, pre[:]...)
	dst = append(dst, body...)
	binary.BigEndian.PutUint32(dst[start+4:start+frameHdrSize],
		crc32.Checksum(dst[start+frameHdrSize:len(dst):len(dst)], crcTable))
	return dst
}

// splitTag splits a version-2 payload into its tag and body.
func splitTag(payload []byte) (uint32, []byte, error) {
	if len(payload) < tagHdrSize {
		return 0, nil, fmt.Errorf("%w: payload shorter than its tag", errMalformed)
	}
	return binary.BigEndian.Uint32(payload[:tagHdrSize]), payload[tagHdrSize:], nil
}

// taggedPayload prefixes a request or response body with its tag. The
// hot paths build whole frames in pooled buffers via appendFrame; this
// is the convenience form for handshakes and dedicated stream
// connections.
func taggedPayload(tag uint32, body []byte) []byte {
	out := make([]byte, tagHdrSize+len(body))
	binary.BigEndian.PutUint32(out[:tagHdrSize], tag)
	copy(out[tagHdrSize:], body)
	return out
}

// soleStreamTag is the tag a dedicated stream connection (DialSubscribe,
// DialInvalSub, FetchSnapshot) puts its single exchange on. Tag 0 stays
// reserved for the hello and connection-level notices even there.
const soleStreamTag = 1

// helloBodySize is the hello request body: op + magic (u32) + version (u16).
const helloBodySize = 7

// encodeHello builds the hello request body (tag excluded).
func encodeHello() []byte {
	b := make([]byte, helloBodySize)
	b[0] = opHello
	binary.BigEndian.PutUint32(b[1:5], helloMagic)
	binary.BigEndian.PutUint16(b[5:7], protocolVersion)
	return b
}

// parseHello validates a hello request body and returns the version.
func parseHello(body []byte) (uint16, bool) {
	if len(body) != helloBodySize || body[0] != opHello ||
		binary.BigEndian.Uint32(body[1:5]) != helloMagic {
		return 0, false
	}
	return binary.BigEndian.Uint16(body[5:7]), true
}
