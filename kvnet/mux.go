package kvnet

// Client-side multiplexing. A mux owns one connection after the hello
// handshake: operations register a tag, write their request, and wait on
// a per-tag channel while a single reader goroutine dispatches response
// frames by tag. Responses complete out of order, so a slow scan or
// checkpoint no longer head-of-line blocks the gets pipelined behind it.
//
// Failure is connection-granular: an operation timeout, a corrupt or
// unroutable frame, or a tag-0 notice kills the whole mux (a tag whose
// response may still arrive can never be reused safely). The Client's
// retry layer then redials, exactly as it redialed broken lock-step
// connections before. The server's corrupt-frame drain makes tag-0
// stBusy/stCorrupt notices "safe": every request still pending when the
// notice arrives was provably never processed, so even writes retry.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// streamCallBuffer is the per-tag channel depth for streaming exchanges
// (scan, batch, subscribe, inval). A consumer more than this many frames
// behind backpressures the connection's reader.
const streamCallBuffer = 64

// call is one registered tag: the channel its response frames arrive on.
type call struct {
	ch chan muxFrame
	// abandoned marks a stream whose consumer is gone: the reader drops
	// this tag's frames instead of delivering them, and frees the tag on
	// the stream's terminal frame. The server keeps pushing until the
	// connection closes — abandoning is client-side only.
	abandoned atomic.Bool
}

// muxFrame is one dispatched response: resp is status byte + body,
// aliasing the pooled buf, which the consumer releases with putBuf.
type muxFrame struct {
	resp []byte
	buf  *[]byte
}

// mux is one multiplexed client connection.
type mux struct {
	conn net.Conn
	met  *clientMetrics // nil-safe hooks

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint32]*call
	nextTag uint32

	err      error // teardown reason; written before dead closes
	safe     bool  // teardown proves pending requests were never processed
	dead     chan struct{}
	deadOnce sync.Once
}

func newMux(conn net.Conn, met *clientMetrics) *mux {
	return &mux{
		conn:    conn,
		met:     met,
		pending: make(map[uint32]*call),
		dead:    make(chan struct{}),
	}
}

// fail kills the mux: the reason is recorded, every waiter wakes, and
// the connection closes. safe reports that the failure proves no pending
// request was processed (pre-hello shed, corrupt-request notice), which
// upgrades even non-idempotent pending operations to retryable.
func (m *mux) fail(err error, safe bool) {
	m.deadOnce.Do(func() {
		m.err, m.safe = err, safe
		close(m.dead)
		_ = m.conn.Close()
	})
}

func (m *mux) isDead() bool {
	select {
	case <-m.dead:
		return true
	default:
		return false
	}
}

// register allocates a fresh tag. Tags are never reused while pending,
// and tag 0 stays reserved for the hello and connection notices.
func (m *mux) register(buffer int) (uint32, *call, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.isDead() {
		return 0, nil, m.err
	}
	for {
		m.nextTag++
		if m.nextTag == 0 {
			m.nextTag = 1
		}
		if _, busy := m.pending[m.nextTag]; !busy {
			break
		}
	}
	cl := &call{ch: make(chan muxFrame, buffer)}
	m.pending[m.nextTag] = cl
	return m.nextTag, cl, nil
}

// deregister frees a tag after its terminal frame.
func (m *mux) deregister(tag uint32) {
	m.mu.Lock()
	delete(m.pending, tag)
	m.mu.Unlock()
}

// writeRequest frames and writes one tagged request body.
func (m *mux) writeRequest(tag uint32, body []byte, timeout time.Duration) error {
	bp := getBuf()
	*bp = appendFrame((*bp)[:0], tag, body)
	m.wmu.Lock()
	if timeout > 0 {
		_ = m.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	_, err := m.conn.Write(*bp)
	m.wmu.Unlock()
	putBuf(bp)
	if err != nil {
		m.fail(err, false)
	}
	return err
}

// await waits for the call's next frame. A timeout is fatal to the whole
// mux: the tag's response may still arrive later, so the tag — and with
// it the connection — can never be trusted again. On mux death the
// returned safe flag carries the teardown's retry guarantee.
func (m *mux) await(cl *call, timeout time.Duration) (muxFrame, bool, error) {
	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case f := <-cl.ch:
		return f, false, nil
	case <-m.dead:
		// A frame may have been delivered just before death.
		select {
		case f := <-cl.ch:
			return f, false, nil
		default:
		}
		return muxFrame{}, m.safe, m.err
	case <-timeoutC:
		err := fmt.Errorf("kvnet: operation timed out after %v", timeout)
		m.fail(err, false)
		return muxFrame{}, false, err
	}
}

// readLoop dispatches response frames by tag until the connection dies.
func (m *mux) readLoop() {
	for {
		bp, err := readFramePooled(m.conn, maxTaggedReplWire)
		if err != nil {
			if errors.Is(err, errCorruptFrame) {
				m.fail(fmt.Errorf("%w (response)", ErrFrameCorrupt), false)
			} else {
				m.fail(err, false)
			}
			return
		}
		tag, body, terr := splitTag(*bp)
		if terr != nil || len(body) < 1 {
			putBuf(bp)
			m.fail(errMalformed, false)
			return
		}
		if tag == 0 {
			m.notice(body)
			putBuf(bp)
			return
		}
		m.mu.Lock()
		cl := m.pending[tag]
		m.mu.Unlock()
		if cl == nil {
			putBuf(bp)
			m.fail(fmt.Errorf("kvnet: response on unknown tag %d", tag), false)
			return
		}
		if cl.abandoned.Load() {
			if !nonTerminal(body[0]) {
				m.deregister(tag)
			}
			putBuf(bp)
			continue
		}
		select {
		case cl.ch <- muxFrame{resp: body, buf: bp}:
		case <-m.dead:
			putBuf(bp)
			return
		}
	}
}

// notice handles a tag-0 connection-level frame. The only ones a server
// sends are terminal: stBusy (shed), stCorrupt (request damaged in
// transit; the server drained in-flight work first, so everything still
// pending is provably unprocessed), or stBadReq for an unattributable
// frame. All of them kill the mux.
func (m *mux) notice(body []byte) {
	status, msg := body[0], body[1:]
	switch status {
	case stBusy:
		m.met.sawBusy()
		m.fail(ErrServerBusy, true)
	case stCorrupt:
		m.met.sawCorrupt()
		m.fail(fmt.Errorf("%w (request)", ErrFrameCorrupt), true)
	default:
		m.fail(fmt.Errorf("kvnet: connection notice status %d: %s", status, msg), false)
	}
}

// clientHello performs the version handshake on a fresh connection: it
// writes the tag-0 hello and reads the tag-0 answer. Untagged rejections
// are classified: stBusy (shed before the hello) → ErrServerBusy,
// stCorrupt → ErrFrameCorrupt, anything else — including a version-1
// server misparsing the hello — → ErrBadVersion.
func clientHello(conn net.Conn, timeout time.Duration) error {
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	if err := writeFrame(conn, taggedPayload(0, encodeHello())); err != nil {
		return err
	}
	payload, err := readFrame(conn, maxTaggedWire)
	if err != nil {
		return err
	}
	if len(payload) == 0 {
		return errMalformed
	}
	if payload[0] != 0 {
		// Untagged: the first byte is a status, not a tag.
		switch payload[0] {
		case stBusy:
			return ErrServerBusy
		case stCorrupt:
			return fmt.Errorf("%w (hello)", ErrFrameCorrupt)
		default:
			return fmt.Errorf("%w: %s", ErrBadVersion, payload[1:])
		}
	}
	_, body, err := splitTag(payload)
	if err != nil || len(body) < 1 {
		return errMalformed
	}
	if body[0] != stOK {
		return fmt.Errorf("%w: %s", ErrBadVersion, body[1:])
	}
	return nil
}

// streamSrc abstracts where a client-side stream's frames come from: a
// dedicated connection (DialSubscribe, DialInvalSub) or a tag on a
// multiplexed data connection (Client.SubscribeStream,
// Client.InvalStream).
type streamSrc interface {
	// next returns the stream's next response payload (status + body).
	// release recycles the frame's buffer and is non-nil iff err is nil;
	// the payload must not be used after calling it.
	next(timeout time.Duration) (resp []byte, release func(), err error)
	// write sends a request body upstream on the stream's tag (acks).
	write(body []byte) error
	// close tears the stream down.
	close() error
}

// connStream is a stream on its own dedicated connection, everything on
// soleStreamTag.
type connStream struct {
	conn net.Conn
	wmu  sync.Mutex // serializes upstream writes against each other
}

func noRelease() {}

func (s *connStream) next(timeout time.Duration) ([]byte, func(), error) {
	if timeout > 0 {
		_ = s.conn.SetReadDeadline(time.Now().Add(timeout))
	} else {
		_ = s.conn.SetReadDeadline(time.Time{})
	}
	payload, err := readFrame(s.conn, maxTaggedReplWire)
	if err != nil {
		return nil, nil, err
	}
	_, resp, err := splitTag(payload)
	if err != nil || len(resp) < 1 {
		return nil, nil, errMalformed
	}
	return resp, noRelease, nil
}

func (s *connStream) write(body []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return writeFrame(s.conn, taggedPayload(soleStreamTag, body))
}

func (s *connStream) close() error { return s.conn.Close() }

// muxStream is a stream multiplexed on a data connection: one tag among
// many. Closing abandons the tag client-side — the server keeps pushing
// until the connection closes; the reader discards the frames.
type muxStream struct {
	m       *mux
	tag     uint32
	cl      *call
	timeout time.Duration // write timeout
}

func (s *muxStream) next(timeout time.Duration) ([]byte, func(), error) {
	f, _, err := s.m.await(s.cl, timeout)
	if err != nil {
		return nil, nil, err
	}
	buf := f.buf
	return f.resp, func() { putBuf(buf) }, nil
}

func (s *muxStream) write(body []byte) error {
	return s.m.writeRequest(s.tag, body, s.timeout)
}

func (s *muxStream) close() error {
	s.cl.abandoned.Store(true)
	return nil
}

// openMuxStream registers a stream tag on the client's live mux and
// sends its opening request. Streams are not retried: a dead connection
// surfaces from the stream's first next().
func (c *Client) openMuxStream(body []byte) (*muxStream, error) {
	m, err := c.acquireMux()
	if err != nil {
		return nil, err
	}
	tag, cl, err := m.register(streamCallBuffer)
	if err != nil {
		return nil, err
	}
	if err := m.writeRequest(tag, body, c.cfg.OpTimeout); err != nil {
		return nil, err
	}
	return &muxStream{m: m, tag: tag, cl: cl, timeout: c.cfg.OpTimeout}, nil
}
