package kvnet

// Round-trip tests for typed errors: every store sentinel the server
// can emit must come back out of the client still matching errors.Is
// against BOTH the kvnet sentinel and the aria sentinel it wraps —
// over the unary path and inside positional batch errors. This is the
// wire-protocol analogue of the in-process error contract, and it pins
// the errResponse → status → statusErr mapping so a new sentinel
// cannot silently fall into the generic stError bucket.

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"github.com/ariakv/aria"
)

func mustListen(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return lis
}

// sentinelStore returns a fixed error from every operation, letting
// the table drive each sentinel through the real server and client.
type sentinelStore struct {
	aria.Store // panics if an unstubbed method is hit
	err        error
}

func (s *sentinelStore) Get(key []byte) ([]byte, error) { return nil, s.err }
func (s *sentinelStore) Put(key, value []byte) error    { return s.err }
func (s *sentinelStore) Delete(key []byte) error        { return s.err }

func (s *sentinelStore) MGet(keys [][]byte) ([][]byte, []error) {
	errs := make([]error, len(keys))
	for i := range errs {
		errs[i] = s.err
	}
	return make([][]byte, len(keys)), errs
}

func (s *sentinelStore) MPut(pairs []aria.KV) []error {
	errs := make([]error, len(pairs))
	for i := range errs {
		errs[i] = s.err
	}
	return errs
}

func (s *sentinelStore) MDelete(keys [][]byte) []error {
	_, errs := s.MGet(keys)
	return errs
}

func startSentinelServer(t *testing.T, err error) *Client {
	t.Helper()
	srv := NewServer(&sentinelStore{err: err})
	srv.SetLogf(func(string, ...any) {})
	lis := mustListen(t)
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	cl, derr := Dial(lis.Addr().String())
	if derr != nil {
		t.Fatal(derr)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestSentinelsSurviveWireRoundTrip(t *testing.T) {
	key := [][]byte{[]byte("k")}
	pair := []aria.KV{{Key: []byte("k"), Value: []byte("v")}}
	for _, tc := range []struct {
		name   string
		store  error // what the store returns server-side
		kvnet  error // the kvnet sentinel the client must report
		ariaIs error // the aria sentinel errors.Is must still reach
	}{
		{"not-found", aria.ErrNotFound, ErrNotFound, aria.ErrNotFound},
		{"integrity", aria.ErrIntegrity, ErrIntegrityRemote, aria.ErrIntegrity},
		{"too-large", aria.ErrTooLarge, ErrTooLarge, aria.ErrTooLarge},
		{"empty-key", aria.ErrEmptyKey, ErrEmptyKey, aria.ErrEmptyKey},
		{"not-durable", aria.ErrNotDurable, ErrNotDurable, aria.ErrNotDurable},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl := startSentinelServer(t, tc.store)
			check := func(op string, err error) {
				t.Helper()
				if !errors.Is(err, tc.kvnet) {
					t.Errorf("%s: %v does not match kvnet sentinel %v", op, err, tc.kvnet)
				}
				if !errors.Is(err, tc.ariaIs) {
					t.Errorf("%s: %v does not match aria sentinel %v", op, err, tc.ariaIs)
				}
			}
			_, err := cl.Get([]byte("k"))
			check("Get", err)
			check("Put", cl.Put([]byte("k"), []byte("v")))
			check("Delete", cl.Delete([]byte("k")))

			_, gerrs := cl.MGet(key)
			if gerrs == nil {
				t.Fatal("MGet returned no errors")
			}
			check("MGet", gerrs[0])
			if perrs := cl.MPut(pair); perrs == nil {
				t.Fatal("MPut returned no errors")
			} else {
				check("MPut", perrs[0])
			}
			if derrs := cl.MDelete(key); derrs == nil {
				t.Fatal("MDelete returned no errors")
			} else {
				check("MDelete", derrs[0])
			}
		})
	}
}

// TestRealStoreSentinelsOverWire drives the sentinels that a real
// store produces end-to-end, without stubs: empty keys, oversized
// keys, scans on an unordered index, and checkpoints without a data
// dir.
func TestRealStoreSentinelsOverWire(t *testing.T) {
	_, cl := startServer(t, aria.AriaHash)

	if err := cl.Put(nil, []byte("v")); !errors.Is(err, aria.ErrEmptyKey) {
		t.Errorf("empty-key put: %v, want aria.ErrEmptyKey", err)
	}
	big := bytes.Repeat([]byte("k"), 9999) // within wire limits, over store limits
	if err := cl.Put(big, []byte("v")); !errors.Is(err, aria.ErrTooLarge) {
		t.Errorf("oversized put: %v, want aria.ErrTooLarge", err)
	}
	err := cl.Scan(nil, nil, 0, func(k, v []byte) bool { return true })
	if !errors.Is(err, aria.ErrNoScan) || !errors.Is(err, ErrNoScan) {
		t.Errorf("scan on hash index: %v, want ErrNoScan", err)
	}
	if err := cl.Checkpoint(); !errors.Is(err, aria.ErrNotDurable) || !errors.Is(err, ErrNotDurable) {
		t.Errorf("checkpoint without data dir: %v, want ErrNotDurable", err)
	}
}

// TestCheckpointOverWire runs a durable store behind the server and
// checkpoints it remotely.
func TestCheckpointOverWire(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
		DataDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := st.(aria.Durable)
	t.Cleanup(func() { d.Close() })
	srv := NewServer(st)
	srv.SetLogf(func(string, ...any) {})
	lis := mustListen(t)
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Checkpoint(); err != nil {
		t.Fatalf("remote checkpoint: %v", err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 {
		t.Errorf("Checkpoints = %d, want 1", stats.Checkpoints)
	}
	if stats.WALRecords == 0 {
		t.Error("WALRecords = 0 over the wire (stats JSON dropped wal fields?)")
	}
}
