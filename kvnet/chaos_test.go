package kvnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet/chaos"
)

// chaosFaults is the per-direction fault mix for the workload tests:
// faults land on average every `mean` forwarded bytes, split across all
// four kinds.
func chaosFaults(mean int) chaos.Faults {
	return chaos.Faults{
		MeanBytes: mean,
		Drop:      2,
		Delay:     3,
		Truncate:  2,
		Corrupt:   3,
		MaxDelay:  2 * time.Millisecond,
	}
}

// TestChaosWorkloadNoLostAcks drives a mixed 1k-op workload through the
// fault proxy and asserts the core durability contract: every write the
// client saw acknowledged (and not later overwritten/deleted) is present
// with the acknowledged value once the dust settles.
func TestChaosWorkloadNoLostAcks(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerConfig(st, ServerConfig{
		IdleTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		DrainTimeout: 200 * time.Millisecond,
		MaxConns:     64,
	})
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	// Every fault kind runs in both directions: the per-frame CRC turns
	// any in-transit corruption into a detected, retriable failure, so a
	// flipped bit can neither fake an ack nor ack a damaged write.
	px, err := chaos.New(lis.Addr().String(), chaos.Config{
		Seed: 42,
		Up:   chaosFaults(700),
		Down: chaosFaults(700),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	cl, err := DialConfig(px.Addr(), ClientConfig{
		Retry:       fastRetry(8),
		DialTimeout: time.Second,
		OpTimeout:   500 * time.Millisecond,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// expected tracks, per key, the last acknowledged state — but only
	// while no unacknowledged op has muddied it since ("certain").
	type state struct {
		value   string
		deleted bool
		certain bool
	}
	expected := make(map[string]state)
	key := func(i int) string { return fmt.Sprintf("ck-%03d", i) }

	rng := rand.New(rand.NewSource(1))
	var acks, failures int
	for i := 0; i < 1000; i++ {
		k := key(rng.Intn(200))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // put
			v := fmt.Sprintf("v-%d", i)
			if err := cl.Put([]byte(k), []byte(v)); err == nil {
				expected[k] = state{value: v, certain: true}
				acks++
			} else {
				expected[k] = state{certain: false}
				failures++
			}
		case 6, 7, 8: // get: liveness only; value checked post-hoc
			if _, err := cl.Get([]byte(k)); err != nil &&
				!errors.Is(err, ErrNotFound) {
				failures++
			}
		case 9: // delete
			if err := cl.Delete([]byte(k)); err == nil ||
				errors.Is(err, ErrNotFound) {
				expected[k] = state{deleted: true, certain: true}
				acks++
			} else {
				expected[k] = state{certain: false}
				failures++
			}
		}
	}
	cl.Close()
	px.Close()
	srv.Close()

	if acks == 0 {
		t.Fatal("no operation was ever acknowledged — proxy too hostile for a meaningful test")
	}
	ps := px.Stats()
	if ps.Drops+ps.Truncates+ps.Corrupts == 0 {
		t.Fatalf("proxy injected no faults (stats %+v) — test is vacuous", ps)
	}
	t.Logf("chaos: %d acks, %d client-visible failures, proxy %+v", acks, failures, ps)

	// Verify acknowledged state directly against the store.
	lost := 0
	for k, s := range expected {
		if !s.certain {
			continue
		}
		v, err := st.Get([]byte(k))
		switch {
		case s.deleted:
			if !errors.Is(err, aria.ErrNotFound) {
				lost++
				t.Errorf("key %s: acked delete but Get = %q, %v", k, v, err)
			}
		default:
			if err != nil || string(v) != s.value {
				lost++
				t.Errorf("key %s: acked write %q lost (got %q, %v)", k, s.value, v, err)
			}
		}
	}
	if lost != 0 {
		t.Fatalf("%d acknowledged writes lost", lost)
	}
	if err := st.VerifyIntegrity(); err != nil {
		t.Fatalf("store integrity after chaos run: %v", err)
	}
}

// TestChaosScansStayConsistent runs scans through the proxy: a scan either
// completes with correctly ordered, uncorrupted pairs, fails cleanly, or
// reports ErrScanInterrupted — it never delivers duplicate keys.
func TestChaosScansStayConsistent(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaBPTree,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerConfig(st, ServerConfig{
		IdleTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		DrainTimeout: 200 * time.Millisecond,
	})
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	for i := 0; i < 300; i++ {
		if err := st.Put([]byte(fmt.Sprintf("sk-%04d", i)), []byte(fmt.Sprintf("sv-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Faults only on the response path, where scan streams live.
	px, err := chaos.New(lis.Addr().String(), chaos.Config{
		Seed: 99,
		Down: chaos.Faults{MeanBytes: 2000, Drop: 1, Delay: 2, Truncate: 1, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	cl, err := DialConfig(px.Addr(), ClientConfig{
		Retry:     fastRetry(6),
		OpTimeout: 500 * time.Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	completed, interrupted := 0, 0
	for round := 0; round < 30; round++ {
		seen := make(map[string]bool)
		prev := ""
		err := cl.Scan(nil, nil, 0, func(k, v []byte) bool {
			ks := string(k)
			if seen[ks] {
				t.Fatalf("scan delivered duplicate key %q", ks)
			}
			if ks <= prev {
				t.Fatalf("scan order violated: %q after %q", ks, prev)
			}
			seen[ks] = true
			prev = ks
			return true
		})
		switch {
		case err == nil:
			if len(seen) != 300 {
				t.Fatalf("completed scan returned %d keys, want 300", len(seen))
			}
			completed++
		case errors.Is(err, ErrScanInterrupted):
			interrupted++
		}
	}
	if completed == 0 {
		t.Fatal("no scan ever completed through the proxy")
	}
	t.Logf("chaos scans: %d completed, %d interrupted", completed, interrupted)
}
