package kvnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/ariakv/aria"
)

// Tests for the version-2 multiplexed transport: tagged frames, the
// per-connection worker pool, out-of-order completion, and the push
// streams that share the data connection. The headline property under
// test is the absence of head-of-line blocking — a slow request parked
// inside the store must not delay fast requests pipelined behind it on
// the same connection.

// slowStore wraps a sharded ordered store, stalling Get on one chosen
// key. Unlike gatedStore it stalls by duration, not handshake, so the
// torture test can hit the slow key from many goroutines at once. Scan
// is forwarded explicitly: interface embedding does not surface the
// concrete store's Ranger implementation through aria.Store.
type slowStore struct {
	aria.Store
	slow  []byte
	delay time.Duration
}

func (s *slowStore) Get(key []byte) ([]byte, error) {
	if bytes.Equal(key, s.slow) {
		time.Sleep(s.delay)
	}
	return s.Store.Get(key)
}

func (s *slowStore) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	return s.Store.(aria.Ranger).Scan(start, end, fn)
}

func (s *slowStore) ConcurrentSafe() bool { return true }

// TestPipelinedFastOpsDuringSlowOp is the no-HOL acceptance check for
// the multiplexed client: with ONE client (one connection), gets issued
// while another get is parked inside the store still complete. Under
// the version-1 lock-step client this deadlocks — the connection cannot
// carry a second request until the first response arrives.
func TestPipelinedFastOpsDuringSlowOp(t *testing.T) {
	gs, cl, _ := startGatedServer(t, true)

	gateDone := make(chan error, 1)
	go func() {
		_, err := cl.Get([]byte(gs.gate))
		gateDone <- err
	}()
	select {
	case <-gs.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("gated request never reached the store")
	}

	// The slow get is parked inside the store. Fast gets pipelined on
	// the same connection must all complete while it is stuck.
	for i := 0; i < 32; i++ {
		if _, err := cl.Get(gs.other); err != nil {
			t.Fatalf("fast get %d during slow op: %v", i, err)
		}
	}
	select {
	case err := <-gateDone:
		t.Fatalf("gated get returned before release: %v", err)
	default:
	}

	close(gs.release)
	select {
	case err := <-gateDone:
		if err != nil {
			t.Fatalf("gated get after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gated get never completed after release")
	}
}

// TestPipelinedTortureMixedOps drives 256 concurrent mixed operations
// — gets, puts, scans, batches, checkpoints, and deliberately slow gets
// — through ONE client connection with a deliberately small worker pool,
// and asserts no response is ever delivered to the wrong request: every
// value read back must match the value derived from its own key.
func TestPipelinedTortureMixedOps(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaBPTree,
		EPCBytes:     16 << 20,
		ExpectedKeys: 2048,
		Seed:         7,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	val := func(k string) string { return "val-of-" + k }
	for i := 0; i < 128; i++ {
		k := fmt.Sprintf("tk-%04d", i)
		if err := st.Put([]byte(k), []byte(val(k))); err != nil {
			t.Fatal(err)
		}
	}
	slow := &slowStore{Store: st, slow: []byte("tk-0000"), delay: 40 * time.Millisecond}
	srv := startServerConfig(t, slow, ServerConfig{ConnWorkers: 4})
	cl, err := Dial(waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 256
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fail := func(format string, args ...any) {
				errs <- fmt.Errorf("op %d: "+format, append([]any{i}, args...)...)
			}
			switch {
			case i == 0:
				// The store has no DataDir; the typed miss must come
				// back intact through the pipelined connection.
				if err := cl.Checkpoint(); !errors.Is(err, aria.ErrNotDurable) {
					fail("checkpoint: got %v, want ErrNotDurable", err)
				}
			case i%64 == 1:
				// Slow get: parks a pool worker for the full delay.
				v, err := cl.Get(slow.slow)
				if err != nil || string(v) != val(string(slow.slow)) {
					fail("slow get: %q, %v", v, err)
				}
			case i%5 == 2:
				k := fmt.Sprintf("pk-%04d", i)
				if err := cl.Put([]byte(k), []byte(val(k))); err != nil {
					fail("put: %v", err)
					return
				}
				v, err := cl.Get([]byte(k))
				if err != nil || string(v) != val(k) {
					fail("read-own-write: %q, %v", v, err)
				}
			case i%5 == 3:
				// Scan a fixed preloaded range; puts above use a
				// different prefix so the expected count is stable.
				start, end := fmt.Sprintf("tk-%04d", 10), fmt.Sprintf("tk-%04d", 20)
				n, last := 0, ""
				err := cl.Scan([]byte(start), []byte(end), 0, func(k, v []byte) bool {
					if string(v) != val(string(k)) {
						fail("scan pair %q=%q", k, v)
					}
					if string(k) <= last {
						fail("scan order: %q after %q", k, last)
					}
					last, n = string(k), n+1
					return true
				})
				if err != nil || n != 10 {
					fail("scan: %d pairs, %v", n, err)
				}
			case i%5 == 4:
				keys := [][]byte{
					[]byte(fmt.Sprintf("tk-%04d", i%128)),
					[]byte(fmt.Sprintf("tk-%04d", (i+31)%128)),
					[]byte(fmt.Sprintf("tk-%04d", (i+67)%128)),
				}
				vals, errsl := cl.MGet(keys) // errsl is nil when every key succeeded
				for p, k := range keys {
					if errsl != nil && errsl[p] != nil {
						fail("mget %q: %v", k, errsl[p])
					} else if string(vals[p]) != val(string(k)) {
						fail("mget %q: %q", k, vals[p])
					}
				}
			default:
				k := fmt.Sprintf("tk-%04d", i%128)
				v, err := cl.Get([]byte(k))
				if err != nil || string(v) != val(k) {
					fail("get %q: %q, %v", k, v, err)
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("torture ops did not complete (pipeline stalled?)")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMalformedRequestKeepsConnection pins the version-2 error scope: a
// request that frames correctly but fails to decode is answered with
// stBadReq on its own tag, and the connection keeps serving — only
// checksum failures (where the tag itself is untrustworthy) kill it.
func TestMalformedRequestKeepsConnection(t *testing.T) {
	srv := startServerConfig(t, openStore(t), ServerConfig{
		IdleTimeout:  2 * time.Second,
		WriteTimeout: time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := clientHello(conn, time.Second); err != nil {
		t.Fatal(err)
	}

	// A framed-but-garbage body on tag 5: checksum passes, decode fails.
	if _, err := conn.Write(appendFrame(nil, 5, []byte{0xEE, 0xFF})); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := readFrame(conn, maxTaggedWire)
	if err != nil {
		t.Fatal(err)
	}
	tag, body, err := splitTag(resp)
	if err != nil || tag != 5 || len(body) < 1 || body[0] != stBadReq {
		t.Fatalf("malformed request: tag %d status %d (%v), want tag 5 stBadReq", tag, body[0], err)
	}

	// The same connection must still serve a well-formed request.
	if _, err := conn.Write(appendFrame(nil, 6, encodeRequest(opGet, []byte("missing"), nil, 0))); err != nil {
		t.Fatal(err)
	}
	resp, err = readFrame(conn, maxTaggedWire)
	if err != nil {
		t.Fatalf("connection died after stBadReq: %v", err)
	}
	tag, body, err = splitTag(resp)
	if err != nil || tag != 6 || len(body) < 1 || body[0] != stNotFound {
		t.Fatalf("follow-up get: tag %d status %d (%v), want tag 6 stNotFound", tag, body[0], err)
	}
}

// TestReservedTagAndDuplicateHello pins the tag-0 rules after the
// handshake: tag 0 belongs to connection-scope notices, so requests on
// it (a second hello included) are rejected with stBadReq while the
// connection keeps serving real tags.
func TestReservedTagAndDuplicateHello(t *testing.T) {
	srv := startServerConfig(t, openStore(t), ServerConfig{
		IdleTimeout:  2 * time.Second,
		WriteTimeout: time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := clientHello(conn, time.Second); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))

	for name, frame := range map[string][]byte{
		"request on tag 0": appendFrame(nil, 0, encodeRequest(opGet, []byte("k"), nil, 0)),
		"duplicate hello":  appendFrame(nil, 9, encodeHello()),
	} {
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		resp, err := readFrame(conn, maxTaggedWire)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, body, err := splitTag(resp)
		if err != nil || len(body) < 1 || body[0] != stBadReq {
			t.Fatalf("%s: status %d (%v), want stBadReq", name, body[0], err)
		}
	}

	// Real tags still work afterwards.
	if _, err := conn.Write(appendFrame(nil, 2, encodeRequest(opGet, []byte("k"), nil, 0))); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn, maxTaggedWire)
	if err != nil {
		t.Fatalf("connection died after reserved-tag rejections: %v", err)
	}
	if tag, body, err := splitTag(resp); err != nil || tag != 2 || body[0] != stNotFound {
		t.Fatalf("follow-up get: tag %d status %d (%v)", tag, body[0], err)
	}
}

// TestHelloVersionMismatch pins version negotiation: a hello carrying
// an unknown protocol version is answered with an UNTAGGED stBadVersion
// — readable by any frame-speaking client regardless of its tag layer —
// and the connection closes.
func TestHelloVersionMismatch(t *testing.T) {
	srv := startServerConfig(t, openStore(t), ServerConfig{
		IdleTimeout:  time.Second,
		WriteTimeout: time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	body := encodeHello()
	body[len(body)-1] = 99 // future protocol version
	if err := writeFrame(conn, taggedPayload(0, body)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := readFrame(conn, maxTaggedWire)
	if err != nil {
		t.Fatalf("no response to version-99 hello: %v", err)
	}
	if len(resp) < 1 || resp[0] != stBadVersion {
		t.Fatalf("hello rejection status = %d, want stBadVersion", resp[0])
	}
	// The server closes after rejecting; nothing further arrives.
	if _, err := readFrame(conn, maxTaggedWire); err == nil {
		t.Fatal("connection stayed open after version rejection")
	}

	// The high-level client surfaces the same rejection as ErrBadVersion
	// when pointed at a peer that rejects its hello. Simulate with a
	// one-shot listener speaking the rejection.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		readFrame(c, maxTaggedWire) //nolint:errcheck
		writeFrame(c, encodeResponse(stBadVersion, nil)) //nolint:errcheck
	}()
	cl, err := DialConfig(lis.Addr().String(), ClientConfig{Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Get([]byte("k")); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("client against rejecting server: got %v, want ErrBadVersion", err)
	}
}

// TestSharedConnInvalStream runs an invalidation stream as one tag on a
// client's data connection, interleaved with that client's own unary
// traffic, and checks closing the stream leaves the connection serving.
func TestSharedConnInvalStream(t *testing.T) {
	srv := startServerConfig(t, openStore(t), ServerConfig{
		InvalPush:      true,
		InvalHeartbeat: 200 * time.Millisecond,
		DrainTimeout:   100 * time.Millisecond,
	})
	cl, err := Dial(waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sub, err := cl.InvalStream()
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next(2 * time.Second)
	if err != nil || !ev.Beat {
		t.Fatalf("first stream event = %+v, %v; want hello heartbeat", ev, err)
	}

	// A put on the SAME connection that carries the stream must both
	// complete and come back as a pushed invalidation.
	if err := cl.Put([]byte("shared"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	want := InvalHash([]byte("shared"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		ev, err := sub.Next(time.Until(deadline))
		if err != nil {
			t.Fatalf("waiting for invalidation: %v", err)
		}
		if ev.Beat {
			continue
		}
		if len(ev.Entries) != 1 || ev.Entries[0].Hash != want {
			t.Fatalf("pushed entries %+v, want one entry with hash %#x", ev.Entries, want)
		}
		break
	}

	// Unary traffic keeps flowing while the stream is attached...
	if v, err := cl.Get([]byte("shared")); err != nil || string(v) != "v" {
		t.Fatalf("get during stream: %q, %v", v, err)
	}
	// ...and closing the stream abandons only its tag.
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("after-close"), []byte("w")); err != nil {
		t.Fatalf("put after stream close: %v", err)
	}
	if v, err := cl.Get([]byte("after-close")); err != nil || string(v) != "w" {
		t.Fatalf("get after stream close: %q, %v", v, err)
	}
}

// TestSharedConnSubscribeStream runs a replication catch-up stream as a
// tag on the data connection, with unary requests pipelined beside it.
func TestSharedConnSubscribeStream(t *testing.T) {
	b := &fakeBackend{
		role: RolePrimary,
		gen:  1,
		events: []ReplEvent{
			{Kind: EvSegStart, Seq: 1},
			{Kind: EvRecord, Rec: []byte("sealed-bytes")},
		},
	}
	srv, cl := startReplServer(t, b)
	_ = srv

	sub, err := cl.SubscribeStream(0, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Interleave: a unary get on the same connection mid-stream.
	if _, err := cl.Get([]byte("missing")); !errors.Is(err, aria.ErrNotFound) {
		t.Fatalf("get beside stream: %v, want ErrNotFound", err)
	}

	ev, err := sub.Next(2 * time.Second)
	if err != nil || ev.Kind != EvSegStart || ev.Seq != 1 {
		t.Fatalf("ev1 = %+v, %v", ev, err)
	}
	ev, err = sub.Next(2 * time.Second)
	if err != nil || ev.Kind != EvRecord || string(ev.Rec) != "sealed-bytes" {
		t.Fatalf("ev2 = %+v, %v", ev, err)
	}
	if _, err = sub.Next(2 * time.Second); !errors.Is(err, io.EOF) {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}

	// The catch-up stream ended; its connection still serves.
	if err := cl.Put([]byte("post-stream"), []byte("x")); err != nil {
		t.Fatalf("put after stream end: %v", err)
	}
}

// TestFrameCodecAllocs pins the pooled frame path: once the pool is
// warm, reading a tagged frame (readFramePooled) and building one
// (appendFrame into a pooled buffer) must each cost at most one
// allocation per operation.
func TestFrameCodecAllocs(t *testing.T) {
	body := encodeRequest(opPut, []byte("alloc-test-key"), bytes.Repeat([]byte("v"), 256), 0)
	frame := appendFrame(nil, 7, body)

	r := bytes.NewReader(frame)
	// Warm the pool outside the measured region.
	for i := 0; i < 16; i++ {
		r.Reset(frame)
		buf, err := readFramePooled(r, maxTaggedWire)
		if err != nil {
			t.Fatal(err)
		}
		putBuf(buf)
	}

	readAllocs := testing.AllocsPerRun(1000, func() {
		r.Reset(frame)
		buf, err := readFramePooled(r, maxTaggedWire)
		if err != nil {
			panic(err)
		}
		putBuf(buf)
	})
	if readAllocs > 1 {
		t.Errorf("readFramePooled: %.1f allocs/op, want <= 1", readAllocs)
	}

	writeAllocs := testing.AllocsPerRun(1000, func() {
		b := getBuf()
		*b = appendFrame((*b)[:0], 7, body)
		putBuf(b)
	})
	if writeAllocs > 1 {
		t.Errorf("pooled appendFrame: %.1f allocs/op, want <= 1", writeAllocs)
	}
}
