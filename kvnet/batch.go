package kvnet

// Batched operations on the wire. A batch request is one frame carrying
// op + record count + per-key records; the response is a stream of stMore
// frames (each packing as many per-key result records as fit under the
// shared maxFrameWire cap) terminated by an stDone frame carrying the
// total record count. The client cross-checks that total against the
// batch it sent, so a cut stream can never be mistaken for a complete
// response — a partial batch is never delivered.
//
// Request records:
//
//	opMGet/opMDelete:  klen u16 | key
//	opMPut:            klen u16 | key | vlen u32 | value
//
// Response records, in request order across the stMore stream:
//
//	opMGet:            status | blen u32 | body (value on stOK, else message)
//	opMPut/opMDelete:  status | mlen u16 | message (empty on stOK/stNotFound)
//
// Batches whose marshalled request would exceed maxFrameWire are split by
// the client into several requests; each sub-batch follows the same
// idempotency rules as its unary counterpart (MGet sub-batches retry on
// any transport failure, MPut/MDelete only when the request cannot have
// reached the server).

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/ariakv/aria"
)

// ErrTooLarge reports a key or value exceeding the wire or store
// limits. Oversized batch records are rejected client-side — never
// sent — and the rest of the batch proceeds; the same sentinel comes
// back for records the store itself refuses, wrapping aria.ErrTooLarge
// in both cases.
var ErrTooLarge = fmt.Errorf("kvnet: key or value exceeds wire limits: %w", aria.ErrTooLarge)

// batchReqOverhead is the fixed request prefix: op byte + record count.
const batchReqOverhead = 5

// encodeBatchKeys builds an opMGet/opMDelete request payload.
func encodeBatchKeys(op byte, keys [][]byte) []byte {
	n := batchReqOverhead
	for _, k := range keys {
		n += 2 + len(k)
	}
	buf := make([]byte, batchReqOverhead, n)
	buf[0] = op
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(keys)))
	var k2 [2]byte
	for _, k := range keys {
		binary.BigEndian.PutUint16(k2[:], uint16(len(k)))
		buf = append(buf, k2[:]...)
		buf = append(buf, k...)
	}
	return buf
}

// encodeBatchPairs builds an opMPut request payload.
func encodeBatchPairs(pairs []aria.KV) []byte {
	n := batchReqOverhead
	for _, p := range pairs {
		n += 2 + len(p.Key) + 4 + len(p.Value)
	}
	buf := make([]byte, batchReqOverhead, n)
	buf[0] = opMPut
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(pairs)))
	var k2 [2]byte
	var v4 [4]byte
	for _, p := range pairs {
		binary.BigEndian.PutUint16(k2[:], uint16(len(p.Key)))
		buf = append(buf, k2[:]...)
		buf = append(buf, p.Key...)
		binary.BigEndian.PutUint32(v4[:], uint32(len(p.Value)))
		buf = append(buf, v4[:]...)
		buf = append(buf, p.Value...)
	}
	return buf
}

// decodeBatchRequest parses a batch request payload. Like decodeRequest it
// validates every length field before using it, and it bounds the record
// count by the bytes actually present before allocating, so a hostile
// count can never drive an oversized allocation.
func decodeBatchRequest(buf []byte) (request, error) {
	var rq request
	if len(buf) < batchReqOverhead {
		return rq, errMalformed
	}
	rq.op = buf[0]
	count := binary.BigEndian.Uint32(buf[1:5])
	rest := buf[5:]
	minRec := uint64(2)
	if rq.op == opMPut {
		minRec = 6
	}
	if uint64(count)*minRec > uint64(len(rest)) {
		return rq, errMalformed
	}
	rq.mkeys = make([][]byte, 0, count)
	if rq.op == opMPut {
		rq.mvals = make([][]byte, 0, count)
	}
	for i := uint32(0); i < count; i++ {
		if len(rest) < 2 {
			return rq, errMalformed
		}
		klen := int(binary.BigEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if klen > maxKeyWire || len(rest) < klen {
			return rq, errMalformed
		}
		rq.mkeys = append(rq.mkeys, rest[:klen])
		rest = rest[klen:]
		if rq.op != opMPut {
			continue
		}
		if len(rest) < 4 {
			return rq, errMalformed
		}
		vlen64 := uint64(binary.BigEndian.Uint32(rest[:4]))
		if vlen64 > maxValueWire {
			return rq, errMalformed
		}
		rest = rest[4:]
		vlen := int(vlen64)
		if len(rest) < vlen {
			return rq, errMalformed
		}
		rq.mvals = append(rq.mvals, rest[:vlen])
		rest = rest[vlen:]
	}
	if len(rest) != 0 {
		return rq, errMalformed
	}
	return rq, nil
}

// encodeMGetRecord builds one opMGet response record.
func encodeMGetRecord(status byte, body []byte) []byte {
	out := make([]byte, 5+len(body))
	out[0] = status
	binary.BigEndian.PutUint32(out[1:5], uint32(len(body)))
	copy(out[5:], body)
	return out
}

// encodeWriteRecord builds one opMPut/opMDelete response record.
func encodeWriteRecord(status byte, msg []byte) []byte {
	if len(msg) > 1<<16-1 {
		msg = msg[:1<<16-1]
	}
	out := make([]byte, 3+len(msg))
	out[0] = status
	binary.BigEndian.PutUint16(out[1:3], uint16(len(msg)))
	copy(out[3:], msg)
	return out
}

// parseBatchRecord consumes one response record for op from body,
// returning the remainder.
func parseBatchRecord(op byte, body []byte) (status byte, rec, rest []byte, err error) {
	if op == opMGet {
		if len(body) < 5 {
			return 0, nil, nil, errMalformed
		}
		blen := int(binary.BigEndian.Uint32(body[1:5]))
		if blen > maxValueWire || len(body) < 5+blen {
			return 0, nil, nil, errMalformed
		}
		return body[0], body[5 : 5+blen], body[5+blen:], nil
	}
	if len(body) < 3 {
		return 0, nil, nil, errMalformed
	}
	mlen := int(binary.BigEndian.Uint16(body[1:3]))
	if len(body) < 3+mlen {
		return 0, nil, nil, errMalformed
	}
	return body[0], body[3 : 3+mlen], body[3+mlen:], nil
}

// batchStatus maps a per-key store error onto a wire status + message,
// mirroring errResponse for the unary path.
func batchStatus(err error) (byte, []byte) {
	if err == nil {
		return stOK, nil
	}
	resp := errResponse(err)
	return resp[0], resp[1:]
}

// errAt indexes a positional error slice that may be nil (all succeeded).
func errAt(errs []error, i int) error {
	if errs == nil {
		return nil
	}
	return errs[i]
}

// ---- server side ---------------------------------------------------------------

// streamBatch writes n response records as a chunked stMore stream under
// the frame cap, then the stDone total the client verifies.
func (s *Server) streamBatch(w tagWriter, n int, record func(i int) []byte) error {
	const maxBody = maxFrameWire - 1 // encodeResponse prepends the status byte
	body := make([]byte, 4, 64<<10)
	count := 0
	flush := func() error {
		if count == 0 {
			return nil
		}
		binary.BigEndian.PutUint32(body[:4], uint32(count))
		if err := w.send(encodeResponse(stMore, body)); err != nil {
			return err
		}
		body = body[:4]
		count = 0
		return nil
	}
	for i := 0; i < n; i++ {
		rec := record(i)
		if len(body)+len(rec) > maxBody {
			if err := flush(); err != nil {
				return err
			}
		}
		body = append(body, rec...)
		count++
	}
	if err := flush(); err != nil {
		return err
	}
	var total [4]byte
	binary.BigEndian.PutUint32(total[:], uint32(n))
	return w.send(encodeResponse(stDone, total[:]))
}

// serveBatch executes one decoded batch request against the store's native
// batch path (which charges its own amortized edge costs — the per-request
// ECALL the unary path pays is deliberately skipped for batches) and
// streams the per-key results back.
func (s *Server) serveBatch(w tagWriter, rq request) error {
	s.met.batchKeys(rq.op, len(rq.mkeys))
	switch rq.op {
	case opMGet:
		vals, errs := s.store.MGet(rq.mkeys)
		return s.streamBatch(w, len(rq.mkeys), func(i int) []byte {
			if err := errAt(errs, i); err != nil {
				st, msg := batchStatus(err)
				return encodeMGetRecord(st, msg)
			}
			return encodeMGetRecord(stOK, vals[i])
		})
	case opMPut:
		pairs := make([]aria.KV, len(rq.mkeys))
		for i := range pairs {
			pairs[i] = aria.KV{Key: rq.mkeys[i], Value: rq.mvals[i]}
		}
		errs := s.store.MPut(pairs)
		s.invalPublishBatch(rq.mkeys, errs)
		return s.streamBatch(w, len(pairs), func(i int) []byte {
			st, msg := batchStatus(errAt(errs, i))
			return encodeWriteRecord(st, msg)
		})
	default: // opMDelete; decode admits nothing else into the batch range
		errs := s.store.MDelete(rq.mkeys)
		s.invalPublishBatch(rq.mkeys, errs)
		return s.streamBatch(w, len(rq.mkeys), func(i int) []byte {
			st, msg := batchStatus(errAt(errs, i))
			return encodeWriteRecord(st, msg)
		})
	}
}

// ---- client side ---------------------------------------------------------------

// batchCall runs one sub-batch exchange: write the request frame, consume
// the stMore stream, cross-check the stDone total. deliver receives each
// record in request order (0-based within this sub-batch); on a retry it
// is re-invoked from the start, overwriting the previous attempt's
// positional results.
func (c *Client) batchCall(op byte, payload []byte, n int, idempotent bool,
	deliver func(j int, status byte, body []byte)) error {
	return c.do(func(m *mux) error {
		tfail := func(err error) error { return &netOpError{err: err, retryable: idempotent} }
		tag, cl, err := m.register(streamCallBuffer)
		if err != nil {
			// The mux died before the request was sent: always retryable.
			return &netOpError{err: err, retryable: true}
		}
		if err := m.writeRequest(tag, payload, c.cfg.OpTimeout); err != nil {
			return tfail(err)
		}
		got := 0
		for {
			f, safe, err := m.await(cl, c.cfg.OpTimeout)
			if err != nil {
				// A teardown that proves the request was never processed
				// (stBusy/stCorrupt notice) is retryable even for writes,
				// and no record can have been delivered yet.
				return &netOpError{err: err, retryable: idempotent || safe}
			}
			terminal := !nonTerminal(f.resp[0])
			switch f.resp[0] {
			case stMore:
				body := f.resp[1:]
				if len(body) < 4 {
					putBuf(f.buf)
					return tfail(errMalformed)
				}
				cnt := binary.BigEndian.Uint32(body[:4])
				body = body[4:]
				for i := uint32(0); i < cnt; i++ {
					var status byte
					var rec []byte
					status, rec, body, err = parseBatchRecord(op, body)
					if err != nil {
						putBuf(f.buf)
						return tfail(err)
					}
					if got >= n {
						putBuf(f.buf)
						return tfail(fmt.Errorf("%w: more records than requested", errMalformed))
					}
					deliver(got, status, rec)
					got++
				}
				rest := len(body)
				putBuf(f.buf)
				if rest != 0 {
					return tfail(errMalformed)
				}
			case stDone:
				bad := len(f.resp) != 5 || binary.BigEndian.Uint32(f.resp[1:5]) != uint32(n) || got != n
				putBuf(f.buf)
				m.deregister(tag)
				if bad {
					return tfail(fmt.Errorf("%w: partial batch response (%d of %d records)",
						errMalformed, got, n))
				}
				return nil
			default:
				// Whole-batch failure (stBadReq/stError): definitive.
				status := f.resp[0]
				body := append([]byte(nil), f.resp[1:]...)
				putBuf(f.buf)
				if terminal {
					m.deregister(tag)
				}
				return statusErr(status, body)
			}
		}
	})
}

// batchPlan greedily walks positions [0, n), calling reject for records
// the wire cannot carry and run(start, end) for each contiguous sub-batch
// whose marshalled records fit one request frame. size(i) is record i's
// request bytes; ok(i) false rejects it. Returns how many extra requests
// the split produced.
func batchPlan(n int, size func(i int) int, ok func(i int) bool,
	reject func(i int), run func(start, end int)) int {
	const budget = maxFrameWire - batchReqOverhead
	calls := 0
	emit := func(start, end int) {
		if start < end {
			run(start, end)
			calls++
		}
	}
	start, used := 0, 0
	for i := 0; i < n; i++ {
		if !ok(i) {
			emit(start, i)
			reject(i)
			start, used = i+1, 0
			continue
		}
		rec := size(i)
		if used+rec > budget && used > 0 {
			emit(start, i)
			start, used = i, 0
		}
		used += rec
	}
	emit(start, n)
	if calls > 1 {
		return calls - 1
	}
	return 0
}

// MGet fetches a batch of keys in one round trip (or several, if the
// marshalled batch exceeds the frame cap and must be split). Results are
// positional with the same contract as aria.Store.MGet; a sub-batch that
// ultimately fails fills only its own positions with the failure, and the
// remaining sub-batches still run. MGet is idempotent: sub-batches are
// retried on any transport failure.
func (c *Client) MGet(keys [][]byte) ([][]byte, []error) {
	vals := make([][]byte, len(keys))
	var errs []error
	setErr := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(keys))
		}
		errs[i] = err
	}
	t0 := time.Now()
	defer func() { c.met.request(opMGet, uint64(time.Since(t0))) }()
	c.met.batchKeys(opMGet, len(keys))
	splits := batchPlan(len(keys),
		func(i int) int { return 2 + len(keys[i]) },
		func(i int) bool { return len(keys[i]) < maxKeyWire },
		func(i int) { setErr(i, ErrTooLarge) },
		func(start, end int) {
			sub := keys[start:end]
			err := c.batchCall(opMGet, encodeBatchKeys(opMGet, sub), len(sub), true,
				func(j int, status byte, body []byte) {
					p := start + j
					if status == stOK {
						// Copy: body aliases a pooled frame buffer that is
						// recycled after delivery.
						vals[p] = append([]byte(nil), body...)
						if errs != nil {
							errs[p] = nil
						}
						return
					}
					vals[p] = nil
					setErr(p, statusErr(status, body))
				})
			if err != nil {
				for p := start; p < end; p++ {
					vals[p] = nil
					setErr(p, err)
				}
			}
		})
	c.met.batchSplit(splits)
	return vals, errs
}

// MPut applies a batch of writes with the same positional contract as
// aria.Store.MPut. Like Put, a sub-batch whose request may already have
// reached the server is not retried; connect-phase failures, stBusy
// shedding, and stCorrupt rejections are, because the server provably did
// not process them.
func (c *Client) MPut(pairs []aria.KV) []error {
	var errs []error
	setErr := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(pairs))
		}
		errs[i] = err
	}
	t0 := time.Now()
	defer func() { c.met.request(opMPut, uint64(time.Since(t0))) }()
	c.met.batchKeys(opMPut, len(pairs))
	splits := batchPlan(len(pairs),
		func(i int) int { return 2 + len(pairs[i].Key) + 4 + len(pairs[i].Value) },
		func(i int) bool {
			return len(pairs[i].Key) < maxKeyWire && len(pairs[i].Value) <= maxValueWire
		},
		func(i int) { setErr(i, ErrTooLarge) },
		func(start, end int) {
			sub := pairs[start:end]
			err := c.batchCall(opMPut, encodeBatchPairs(sub), len(sub), false,
				func(j int, status byte, body []byte) {
					if status == stOK {
						if errs != nil {
							errs[start+j] = nil
						}
						return
					}
					setErr(start+j, statusErr(status, body))
				})
			if err != nil {
				for p := start; p < end; p++ {
					setErr(p, err)
				}
			}
		})
	c.met.batchSplit(splits)
	return errs
}

// MDelete removes a batch of keys with the same positional contract as
// aria.Store.MDelete and the same retry rules as MPut.
func (c *Client) MDelete(keys [][]byte) []error {
	var errs []error
	setErr := func(i int, err error) {
		if errs == nil {
			errs = make([]error, len(keys))
		}
		errs[i] = err
	}
	t0 := time.Now()
	defer func() { c.met.request(opMDelete, uint64(time.Since(t0))) }()
	c.met.batchKeys(opMDelete, len(keys))
	splits := batchPlan(len(keys),
		func(i int) int { return 2 + len(keys[i]) },
		func(i int) bool { return len(keys[i]) < maxKeyWire },
		func(i int) { setErr(i, ErrTooLarge) },
		func(start, end int) {
			sub := keys[start:end]
			err := c.batchCall(opMDelete, encodeBatchKeys(opMDelete, sub), len(sub), false,
				func(j int, status byte, body []byte) {
					if status == stOK {
						if errs != nil {
							errs[start+j] = nil
						}
						return
					}
					setErr(start+j, statusErr(status, body))
				})
			if err != nil {
				for p := start; p < end; p++ {
					setErr(p, err)
				}
			}
		})
	c.met.batchSplit(splits)
	return errs
}
