package kvnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"testing"
	"time"

	"github.com/ariakv/aria"
)

// Fuzz harnesses for the wire decoders. They run their seed corpus under
// plain `go test`; `go test -fuzz=FuzzDecodeRequest ./kvnet` explores
// further. The invariants: the decoders never panic, never accept length
// fields beyond the wire limits, and never return altered bytes as valid.

func FuzzDecodeRequest(f *testing.F) {
	f.Add(encodeRequest(opGet, []byte("k"), nil, 0))
	f.Add(encodeRequest(opPut, []byte("key"), []byte("value"), 0))
	f.Add(encodeRequest(opScan, []byte("a"), []byte("z"), 100))
	f.Add(encodeRequest(opDelete, bytes.Repeat([]byte("k"), 300), nil, 0))
	f.Add([]byte{})
	f.Add([]byte{1, 2})
	f.Add([]byte{opPut, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte{opPut, 0, 1, 'k', 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rq, err := decodeRequest(data)
		if err != nil {
			return
		}
		if rq.op >= opMGet && rq.op <= opMDelete {
			// Batch requests carry mkeys/mvals, not key/value; their
			// round trip is FuzzDecodeBatchRequest's job.
			return
		}
		if len(rq.key) > maxKeyWire {
			t.Fatalf("decoded key of %d bytes exceeds wire limit", len(rq.key))
		}
		if len(rq.value) > maxValueWire {
			t.Fatalf("decoded value of %d bytes exceeds wire limit", len(rq.value))
		}
		// A successfully decoded request re-encodes to an equivalent one.
		rt, err := decodeRequest(encodeRequest(rq.op, rq.key, rq.value, rq.limit))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if rt.op != rq.op || !bytes.Equal(rt.key, rq.key) ||
			!bytes.Equal(rt.value, rq.value) || rt.limit != rq.limit {
			t.Fatalf("round trip mismatch: %+v vs %+v", rt, rq)
		}
	})
}

func frameBytes(payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(nil))
	f.Add(frameBytes([]byte("hello")))
	f.Add(frameBytes(encodeRequest(opPut, []byte("k"), []byte("v"), 0)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 5, 0, 0, 0, 0, 'a', 'b'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data), maxFrameWire)
		if err != nil {
			return
		}
		if len(payload) > maxFrameWire {
			t.Fatalf("frame of %d bytes exceeds the cap it was read with", len(payload))
		}
		// An accepted frame must carry a matching checksum.
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(data[4:8]) {
			t.Fatal("readFrame accepted a frame with a bad checksum")
		}
	})
}

func FuzzDecodePair(f *testing.F) {
	f.Add(encodePair([]byte("k"), []byte("v")))
	f.Add(encodePair(nil, nil))
	f.Add([]byte{9})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, v, err := decodePair(data)
		if err != nil {
			return
		}
		rk, rv, err := decodePair(encodePair(k, v))
		if err != nil || !bytes.Equal(rk, k) || !bytes.Equal(rv, v) {
			t.Fatalf("pair round trip: %q/%q vs %q/%q (%v)", rk, rv, k, v, err)
		}
	})
}

// TestSingleBitFlipAlwaysDetected flips every byte of a small frame in
// turn and asserts readFrame never hands back altered bytes as valid.
func TestSingleBitFlipAlwaysDetected(t *testing.T) {
	orig := frameBytes(encodeRequest(opPut, []byte("key"), []byte("value"), 0))
	for i := range orig {
		for _, mask := range []byte{0x01, 0x80, 0xff} {
			damaged := append([]byte(nil), orig...)
			damaged[i] ^= mask
			payload, err := readFrame(bytes.NewReader(damaged), maxFrameWire)
			if err == nil {
				t.Fatalf("flip at byte %d (mask %#x) accepted: payload %q", i, mask, payload)
			}
		}
	}
}

// TestCorruptRequestRejectedBeforeProcessing corrupts a Put frame on the
// wire and asserts the server answers stCorrupt without touching the
// store, then closes the connection.
func TestCorruptRequestRejectedBeforeProcessing(t *testing.T) {
	st := openStore(t)
	srv := startServerConfig(t, st, ServerConfig{
		IdleTimeout:  time.Second,
		WriteTimeout: time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := frameBytes(encodeRequest(opPut, []byte("poison"), []byte("v"), 0))
	frame[len(frame)-1] ^= 0x40 // damage the value byte in transit
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	resp, err := readFrame(conn, maxFrameWire)
	if err != nil {
		t.Fatalf("no response to corrupt frame: %v", err)
	}
	if len(resp) < 1 || resp[0] != stCorrupt {
		t.Fatalf("response status = %d, want stCorrupt", resp[0])
	}
	// The damaged write must not have been applied.
	if _, err := st.Get([]byte("poison")); !errors.Is(err, aria.ErrNotFound) {
		t.Fatalf("corrupt put reached the store: %v", err)
	}
}
