package kvnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"testing"
	"time"

	"github.com/ariakv/aria"
)

// Fuzz harnesses for the wire decoders. They run their seed corpus under
// plain `go test`; `go test -fuzz=FuzzDecodeRequest ./kvnet` explores
// further. The invariants: the decoders never panic, never accept length
// fields beyond the wire limits, and never return altered bytes as valid.

func FuzzDecodeRequest(f *testing.F) {
	f.Add(encodeRequest(opGet, []byte("k"), nil, 0))
	f.Add(encodeRequest(opPut, []byte("key"), []byte("value"), 0))
	f.Add(encodeRequest(opScan, []byte("a"), []byte("z"), 100))
	f.Add(encodeRequest(opDelete, bytes.Repeat([]byte("k"), 300), nil, 0))
	f.Add([]byte{})
	f.Add([]byte{1, 2})
	f.Add([]byte{opPut, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte{opPut, 0, 1, 'k', 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rq, err := decodeRequest(data)
		if err != nil {
			return
		}
		if rq.op >= opMGet && rq.op <= opMDelete {
			// Batch requests carry mkeys/mvals, not key/value; their
			// round trip is FuzzDecodeBatchRequest's job.
			return
		}
		if len(rq.key) > maxKeyWire {
			t.Fatalf("decoded key of %d bytes exceeds wire limit", len(rq.key))
		}
		if len(rq.value) > maxValueWire {
			t.Fatalf("decoded value of %d bytes exceeds wire limit", len(rq.value))
		}
		// A successfully decoded request re-encodes to an equivalent one.
		rt, err := decodeRequest(encodeRequest(rq.op, rq.key, rq.value, rq.limit))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if rt.op != rq.op || !bytes.Equal(rt.key, rq.key) ||
			!bytes.Equal(rt.value, rq.value) || rt.limit != rq.limit {
			t.Fatalf("round trip mismatch: %+v vs %+v", rt, rq)
		}
	})
}

func frameBytes(payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(nil))
	f.Add(frameBytes([]byte("hello")))
	f.Add(frameBytes(encodeRequest(opPut, []byte("k"), []byte("v"), 0)))
	// Tagged (version-2) frames: hello handshake, a tagged request, a
	// tagged response, and a frame whose payload is a bare tag.
	f.Add(appendFrame(nil, 0, encodeHello()))
	f.Add(appendFrame(nil, 7, encodeRequest(opGet, []byte("k"), nil, 0)))
	f.Add(appendFrame(nil, 1<<31, encodeResponse(stOK, []byte("v"))))
	f.Add(frameBytes(taggedPayload(42, nil)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 5, 0, 0, 0, 0, 'a', 'b'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data), maxFrameWire)
		if err != nil {
			return
		}
		if len(payload) > maxFrameWire {
			t.Fatalf("frame of %d bytes exceeds the cap it was read with", len(payload))
		}
		// An accepted frame must carry a matching checksum.
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(data[4:8]) {
			t.Fatal("readFrame accepted a frame with a bad checksum")
		}
	})
}

func FuzzDecodePair(f *testing.F) {
	f.Add(encodePair([]byte("k"), []byte("v")))
	f.Add(encodePair(nil, nil))
	f.Add([]byte{9})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, v, err := decodePair(data)
		if err != nil {
			return
		}
		rk, rv, err := decodePair(encodePair(k, v))
		if err != nil || !bytes.Equal(rk, k) || !bytes.Equal(rv, v) {
			t.Fatalf("pair round trip: %q/%q vs %q/%q (%v)", rk, rv, k, v, err)
		}
	})
}

// FuzzSplitTag covers the version-2 tag layer: splitTag never panics,
// and whatever it accepts round-trips through taggedPayload.
func FuzzSplitTag(f *testing.F) {
	f.Add(taggedPayload(0, encodeHello()))
	f.Add(taggedPayload(1, encodeRequest(opGet, []byte("k"), nil, 0)))
	f.Add(taggedPayload(0xffffffff, nil))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		tag, body, err := splitTag(data)
		if err != nil {
			if len(data) >= tagHdrSize {
				t.Fatalf("splitTag rejected a %d-byte payload", len(data))
			}
			return
		}
		rt, rb, err := splitTag(taggedPayload(tag, body))
		if err != nil || rt != tag || !bytes.Equal(rb, body) {
			t.Fatalf("tag round trip: %d/%q vs %d/%q (%v)", rt, rb, tag, body, err)
		}
	})
}

// FuzzParseHello asserts the hello parser never panics and only accepts
// the exact magic-framed body encodeHello produces.
func FuzzParseHello(f *testing.F) {
	f.Add(encodeHello())
	f.Add([]byte{opHello, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, ok := parseHello(data); ok && !bytes.Equal(data[:5], encodeHello()[:5]) {
			t.Fatalf("parseHello accepted %x", data)
		}
	})
}

// TestSingleBitFlipAlwaysDetected flips every byte of a small frame in
// turn and asserts readFrame never hands back altered bytes as valid.
func TestSingleBitFlipAlwaysDetected(t *testing.T) {
	orig := frameBytes(encodeRequest(opPut, []byte("key"), []byte("value"), 0))
	for i := range orig {
		for _, mask := range []byte{0x01, 0x80, 0xff} {
			damaged := append([]byte(nil), orig...)
			damaged[i] ^= mask
			payload, err := readFrame(bytes.NewReader(damaged), maxFrameWire)
			if err == nil {
				t.Fatalf("flip at byte %d (mask %#x) accepted: payload %q", i, mask, payload)
			}
		}
	}
}

// TestCorruptRequestRejectedBeforeProcessing corrupts a Put frame on the
// wire — once before the hello and once on a live tagged connection —
// and asserts the server answers stCorrupt without touching the store,
// then closes the connection.
func TestCorruptRequestRejectedBeforeProcessing(t *testing.T) {
	st := openStore(t)
	srv := startServerConfig(t, st, ServerConfig{
		IdleTimeout:  time.Second,
		WriteTimeout: time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})
	addr := waitAddr(t, srv)

	t.Run("pre-hello", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		frame := frameBytes(taggedPayload(0, encodeHello()))
		frame[len(frame)-1] ^= 0x40 // damage the hello in transit
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(time.Second))
		resp, err := readFrame(conn, maxTaggedWire)
		if err != nil {
			t.Fatalf("no response to corrupt frame: %v", err)
		}
		// Pre-hello notices are untagged: the status leads the payload.
		if len(resp) < 1 || resp[0] != stCorrupt {
			t.Fatalf("response status = %d, want stCorrupt", resp[0])
		}
	})

	t.Run("post-hello", func(t *testing.T) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := clientHello(conn, time.Second); err != nil {
			t.Fatal(err)
		}
		frame := appendFrame(nil, 3, encodeRequest(opPut, []byte("poison"), []byte("v"), 0))
		frame[len(frame)-1] ^= 0x40 // damage the value byte in transit
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(time.Second))
		resp, err := readFrame(conn, maxTaggedWire)
		if err != nil {
			t.Fatalf("no response to corrupt frame: %v", err)
		}
		// Post-hello the notice arrives on reserved tag 0.
		tag, body, err := splitTag(resp)
		if err != nil || tag != 0 {
			t.Fatalf("corrupt notice tag = %d (%v), want 0", tag, err)
		}
		if len(body) < 1 || body[0] != stCorrupt {
			t.Fatalf("response status = %d, want stCorrupt", body[0])
		}
	})

	// The damaged writes must not have been applied.
	if _, err := st.Get([]byte("poison")); !errors.Is(err, aria.ErrNotFound) {
		t.Fatalf("corrupt put reached the store: %v", err)
	}
}
