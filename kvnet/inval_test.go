package kvnet

import (
	"bytes"
	"errors"
	"hash/fnv"
	"testing"
	"time"

	"github.com/ariakv/aria"
)

// startInvalServer starts a server with invalidation push enabled and a
// fast heartbeat, returning it with a connected data client.
func startInvalServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	st := openStore(t)
	srv := startServerConfig(t, st, ServerConfig{
		InvalPush:      true,
		InvalHeartbeat: 25 * time.Millisecond,
		DrainTimeout:   200 * time.Millisecond,
	})
	cl, err := Dial(waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

// collectInvals reads events until n entries arrived or the deadline
// passed, skipping heartbeats.
func collectInvals(t *testing.T, sub *InvalSub, n int, deadline time.Duration) []InvalEntry {
	t.Helper()
	var out []InvalEntry
	stop := time.Now().Add(deadline)
	for len(out) < n && time.Now().Before(stop) {
		ev, err := sub.Next(time.Second)
		if err != nil {
			t.Fatalf("stream ended after %d/%d entries: %v", len(out), n, err)
		}
		out = append(out, ev.Entries...)
	}
	if len(out) < n {
		t.Fatalf("collected %d/%d entries before deadline", len(out), n)
	}
	return out
}

// TestInvalSubStreamsWrites pins the tentpole wire contract: every
// committed write — unary and batch, puts and deletes — arrives as an
// entry whose hash matches InvalHash(key) and whose seq is monotone.
func TestInvalSubStreamsWrites(t *testing.T) {
	srv, cl := startInvalServer(t)
	sub, err := DialInvalSub(waitAddr(t, srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Hello heartbeat confirms hub registration before any write below.
	ev, err := sub.Next(time.Second)
	if err != nil || !ev.Beat {
		t.Fatalf("hello = %+v, %v; want heartbeat", ev, err)
	}

	if err := cl.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("beta"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if errs := cl.MPut([]aria.KV{
		{Key: []byte("gamma"), Value: []byte("3")},
		{Key: []byte("delta"), Value: []byte("4")},
	}); errs != nil {
		t.Fatalf("mput: %v", errs)
	}
	if errs := cl.MDelete([][]byte{[]byte("gamma")}); errs != nil {
		t.Fatalf("mdelete: %v", errs)
	}

	entries := collectInvals(t, sub, 6, 3*time.Second)
	want := []string{"alpha", "beta", "alpha", "gamma", "delta", "gamma"}
	for i, k := range want {
		if entries[i].Hash != InvalHash([]byte(k)) {
			t.Errorf("entry %d: hash %#x, want InvalHash(%q)", i, entries[i].Hash, k)
		}
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq <= entries[i-1].Seq {
			t.Errorf("seq not monotone at %d: %d then %d", i, entries[i-1].Seq, entries[i].Seq)
		}
	}
}

// TestInvalSubHeartbeat proves an idle stream stays demonstrably live.
func TestInvalSubHeartbeat(t *testing.T) {
	srv, _ := startInvalServer(t)
	sub, err := DialInvalSub(waitAddr(t, srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 3; i++ {
		ev, err := sub.Next(time.Second)
		if err != nil {
			t.Fatalf("beat %d: %v", i, err)
		}
		if !ev.Beat {
			t.Fatalf("beat %d: got %+v, want heartbeat", i, ev)
		}
	}
}

// TestInvalSubDrainTyped pins the satellite fix: graceful server drain
// ends invalidation streams with the same typed ErrDraining goodbye the
// repl subscribe path uses — never a raw connection reset.
func TestInvalSubDrainTyped(t *testing.T) {
	srv, _ := startInvalServer(t)
	sub, err := DialInvalSub(waitAddr(t, srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if ev, err := sub.Next(time.Second); err != nil || !ev.Beat {
		t.Fatalf("hello = %+v, %v", ev, err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	for {
		_, err := sub.Next(2 * time.Second)
		if err == nil {
			continue // late heartbeat raced the close
		}
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("drain ended stream with %v, want ErrDraining", err)
		}
		break
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestInvalSubDisabled: a server without InvalPush refuses the stream
// with a typed response instead of hanging or resetting.
func TestInvalSubDisabled(t *testing.T) {
	st := openStore(t)
	srv := startServerConfig(t, st, ServerConfig{DrainTimeout: 100 * time.Millisecond})
	sub, err := DialInvalSub(waitAddr(t, srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Next(time.Second); err == nil || errors.Is(err, ErrDraining) {
		t.Fatalf("disabled server answered %v, want a typed refusal", err)
	}
}

// TestInvalSubReplicaRefused: a replica's applier bypasses the kvnet
// write path, so it cannot push complete invalidations and must refuse
// the stream — a cache in front of it stays cold rather than stale.
func TestInvalSubReplicaRefused(t *testing.T) {
	st := openStore(t)
	srv := startServerConfig(t, st, ServerConfig{
		InvalPush:    true,
		Repl:         &fakeBackend{role: RoleReplica, gen: 1},
		DrainTimeout: 100 * time.Millisecond,
	})
	sub, err := DialInvalSub(waitAddr(t, srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.Next(time.Second); err == nil || errors.Is(err, ErrDraining) {
		t.Fatalf("replica answered %v, want a typed refusal", err)
	}
}

// TestInvalSubOverflowTerminatesStream: a subscriber that stops reading
// is cut off once its mailbox overflows — the write path never blocks
// on a slow cache, and the client observes stream loss (goes cold).
func TestInvalSubOverflowTerminatesStream(t *testing.T) {
	st := openStore(t)
	srv := startServerConfig(t, st, ServerConfig{
		InvalPush:      true,
		InvalHeartbeat: time.Hour, // no beats: the mailbox must do the killing
		InvalBuffer:    1,
		DrainTimeout:   100 * time.Millisecond,
	})
	cl, err := Dial(waitAddr(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sub, err := DialInvalSub(waitAddr(t, srv), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if ev, err := sub.Next(time.Second); err != nil || !ev.Beat {
		t.Fatalf("hello = %+v, %v", ev, err)
	}
	// Flood writes without reading the stream; buffer 1 overflows fast.
	for i := 0; i < 64; i++ {
		if err := cl.Put([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Drain whatever was in flight; the stream must end with a
	// transport error (server hung up), not ErrDraining.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, err := sub.Next(time.Second)
		if err == nil {
			continue
		}
		if errors.Is(err, ErrDraining) {
			t.Fatalf("overflow ended stream with ErrDraining, want transport error")
		}
		return
	}
	t.Fatal("stream survived a mailbox overflow")
}

// TestInvalEntriesRoundTrip pins the entry codec.
func TestInvalEntriesRoundTrip(t *testing.T) {
	in := []InvalEntry{
		{Hash: 1, Shard: 0, Seq: 9},
		{Hash: ^uint64(0), Shard: 3, Seq: ^uint64(0)},
		{Hash: InvalHash([]byte("key")), Shard: 7, Seq: 42},
	}
	out, err := decodeInvalEntries(encodeInvalEntries(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("entry %d: %+v vs %+v", i, out[i], in[i])
		}
	}
	for _, bad := range [][]byte{{}, {1}, bytes.Repeat([]byte{0}, invalEntryBytes-1), bytes.Repeat([]byte{0}, invalEntryBytes+1)} {
		if _, err := decodeInvalEntries(bad); err == nil {
			t.Errorf("decode accepted %d bytes", len(bad))
		}
	}
}

// FuzzDecodeInvalEntries fuzzes the invalidation-frame decoder: never
// panic, only accept whole positive multiples of the entry size, and
// round-trip every accepted body byte-exactly.
func FuzzDecodeInvalEntries(f *testing.F) {
	f.Add(encodeInvalEntries([]InvalEntry{{Hash: 1, Shard: 2, Seq: 3}}))
	f.Add(encodeInvalEntries([]InvalEntry{
		{Hash: InvalHash([]byte("a")), Shard: 0, Seq: 1},
		{Hash: InvalHash([]byte("b")), Shard: 1, Seq: 2},
	}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, invalEntryBytes))
	f.Add(bytes.Repeat([]byte{0}, invalEntryBytes-1))
	f.Add(bytes.Repeat([]byte{7}, invalEntryBytes*3+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeInvalEntries(data)
		if err != nil {
			return
		}
		if len(data) == 0 || len(data)%invalEntryBytes != 0 {
			t.Fatalf("decoder accepted %d bytes", len(data))
		}
		if len(entries) != len(data)/invalEntryBytes {
			t.Fatalf("decoded %d entries from %d bytes", len(entries), len(data))
		}
		if !bytes.Equal(encodeInvalEntries(entries), data) {
			t.Fatal("round trip altered bytes")
		}
	})
}

// TestInvalHashStable pins the hash function to FNV-1a 64: the server
// and every client must agree forever, or invalidations stop matching
// buckets.
func TestInvalHashStable(t *testing.T) {
	for _, k := range []string{"", "a", "key", "some/longer/key-0001234"} {
		h := fnv.New64a()
		_, _ = h.Write([]byte(k))
		if got, want := InvalHash([]byte(k)), h.Sum64(); got != want {
			t.Errorf("InvalHash(%q) = %#x, want %#x", k, got, want)
		}
	}
}
