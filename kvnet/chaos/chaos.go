// Package chaos provides a deterministic, seedable TCP fault proxy for
// robustness testing of the kvnet client/server pair. The proxy sits
// between a client and a server and injects faults — dropped connections,
// delays, truncated streams, and bit flips — at byte offsets fixed by the
// seed, so a given (seed, byte stream) pair always faults at the same
// points regardless of TCP segmentation or goroutine scheduling.
//
// Each proxied connection derives two independent fault lanes (one per
// direction) from the proxy seed and a per-connection counter, so the
// fault schedule is reproducible across runs even when connections are
// retried in different wall-clock order.
package chaos

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault kinds, chosen by weight at each injection point.
const (
	kindDrop = iota
	kindDelay
	kindTruncate
	kindCorrupt
)

// Faults configures injection for one direction of a proxied connection.
type Faults struct {
	// MeanBytes is the average number of forwarded bytes between injected
	// faults; 0 disables injection for this direction.
	MeanBytes int
	// Drop, Delay, Truncate, and Corrupt weight the choice of fault at
	// each injection point. Drop closes both halves without forwarding
	// the rest of the stream; Truncate forwards up to the fault offset
	// first; Delay sleeps up to MaxDelay; Corrupt flips one bit-pattern
	// in the byte at the fault offset and keeps forwarding.
	Drop, Delay, Truncate, Corrupt int
	// MaxDelay bounds each injected delay (default 2ms).
	MaxDelay time.Duration
}

func (f Faults) weightSum() int { return f.Drop + f.Delay + f.Truncate + f.Corrupt }

// Config configures a Proxy.
type Config struct {
	// Seed fixes the fault schedule.
	Seed uint64
	// Up applies to client→server bytes, Down to server→client bytes.
	Up, Down Faults
	// ChunkSize is the forwarding buffer size (default 4096).
	ChunkSize int
}

// Stats counts injected faults (atomically updated; read any time).
type Stats struct {
	Conns, Drops, Delays, Truncates, Corrupts uint64
}

// Proxy is a running fault proxy. Create with New, point clients at
// Addr(), and Close when done.
type Proxy struct {
	target string
	cfg    Config
	lis    net.Listener

	connID   atomic.Uint64
	drops    atomic.Uint64
	delays   atomic.Uint64
	truncs   atomic.Uint64
	corrupts atomic.Uint64

	partitioned atomic.Bool
	bhUp        atomic.Bool // discard client→server bytes
	bhDown      atomic.Bool // discard server→client bytes

	mu     sync.Mutex
	active map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string, cfg Config) (*Proxy, error) {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4096
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		cfg:    cfg,
		lis:    lis,
		active: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Stats returns the injected-fault counters so far.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:     p.connID.Load(),
		Drops:     p.drops.Load(),
		Delays:    p.delays.Load(),
		Truncates: p.truncs.Load(),
		Corrupts:  p.corrupts.Load(),
	}
}

// Close stops accepting, severs all proxied connections, and waits for
// the forwarding goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	err := p.lis.Close()
	for c := range p.active {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// Partition severs every proxied connection and refuses new ones until
// Heal, simulating a full network partition between the two endpoints.
func (p *Proxy) Partition() {
	p.partitioned.Store(true)
	p.mu.Lock()
	for c := range p.active {
		c.Close()
	}
	p.mu.Unlock()
}

// Heal lifts a Partition; new connections flow again (existing ones
// were severed and must be redialed).
func (p *Proxy) Heal() { p.partitioned.Store(false) }

// SetBlackhole discards bytes in the chosen directions without closing
// connections — the half-open failure a crashed peer or asymmetric
// route produces, which desynchronizes streams instead of ending them.
// Both false restores normal forwarding for subsequently read bytes.
func (p *Proxy) SetBlackhole(up, down bool) {
	p.bhUp.Store(up)
	p.bhDown.Store(down)
}

// Flap runs n partition/heal cycles, holding the partition for down and
// the healed link for up each cycle. It blocks until done.
func (p *Proxy) Flap(n int, down, up time.Duration) {
	for i := 0; i < n; i++ {
		p.Partition()
		time.Sleep(down)
		p.Heal()
		time.Sleep(up)
	}
}

// blackholed reports whether dir (0 = up, 1 = down) currently discards.
func (p *Proxy) blackholed(dir uint64) bool {
	if dir == 0 {
		return p.bhUp.Load()
	}
	return p.bhDown.Load()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.active[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.active, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cconn, err := p.lis.Accept()
		if err != nil {
			return
		}
		if p.partitioned.Load() {
			cconn.Close()
			continue
		}
		id := p.connID.Add(1)
		sconn, err := net.Dial("tcp", p.target)
		if err != nil {
			cconn.Close()
			continue
		}
		if !p.track(cconn) || !p.track(sconn) {
			cconn.Close()
			sconn.Close()
			return
		}
		var once sync.Once
		closeBoth := func() {
			once.Do(func() {
				cconn.Close()
				sconn.Close()
				p.untrack(cconn)
				p.untrack(sconn)
			})
		}
		p.wg.Add(2)
		go p.pipe(sconn, cconn, p.cfg.Up, laneSeed(p.cfg.Seed, id, 0), 0, closeBoth)
		go p.pipe(cconn, sconn, p.cfg.Down, laneSeed(p.cfg.Seed, id, 1), 1, closeBoth)
	}
}

// laneSeed derives a per-connection, per-direction rng seed.
func laneSeed(seed, id, dir uint64) int64 {
	x := seed ^ (id*2+dir)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int64(x & 0x7fffffffffffffff)
}

// nextFault draws the next fault's absolute stream offset and kind.
func nextFault(rng *rand.Rand, f Faults, pos uint64) (uint64, int) {
	gap := uint64(1 + f.MeanBytes/2 + rng.Intn(f.MeanBytes+1))
	w := rng.Intn(f.weightSum())
	switch {
	case w < f.Drop:
		return pos + gap, kindDrop
	case w < f.Drop+f.Delay:
		return pos + gap, kindDelay
	case w < f.Drop+f.Delay+f.Truncate:
		return pos + gap, kindTruncate
	default:
		return pos + gap, kindCorrupt
	}
}

// pipe forwards src→dst, injecting faults at rng-predetermined byte
// offsets. Any exit severs both halves of the proxied connection. dir
// names the lane (0 = up, 1 = down) for blackhole checks.
func (p *Proxy) pipe(dst, src net.Conn, f Faults, seed int64, dir uint64, closeBoth func()) {
	defer p.wg.Done()
	defer closeBoth()
	inject := f.MeanBytes > 0 && f.weightSum() > 0
	rng := rand.New(rand.NewSource(seed))
	maxDelay := f.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	var pos, at uint64
	var kind int
	if inject {
		at, kind = nextFault(rng, f, 0)
	}
	buf := make([]byte, p.cfg.ChunkSize)
	for {
		n, rerr := src.Read(buf)
		b := buf[:n]
		if p.blackholed(dir) {
			// Swallow the bytes without closing anything: to the peers
			// the link looks alive but silent, and any bytes discarded
			// mid-frame leave the stream desynchronized — exactly what a
			// half-open connection does.
			b = nil
			pos += uint64(n)
		}
		for len(b) > 0 {
			if !inject || pos+uint64(len(b)) <= at {
				if _, err := dst.Write(b); err != nil {
					return
				}
				pos += uint64(len(b))
				b = nil
				break
			}
			// The fault offset lands inside this chunk.
			cut := int(at - pos)
			switch kind {
			case kindDrop:
				p.drops.Add(1)
				return
			case kindTruncate:
				p.truncs.Add(1)
				if cut > 0 {
					_, _ = dst.Write(b[:cut])
				}
				return
			case kindDelay:
				p.delays.Add(1)
				if cut > 0 {
					if _, err := dst.Write(b[:cut]); err != nil {
						return
					}
				}
				time.Sleep(time.Duration(1 + rng.Int63n(int64(maxDelay))))
				pos += uint64(cut)
				b = b[cut:]
			case kindCorrupt:
				p.corrupts.Add(1)
				mask := byte(1 + rng.Intn(255))
				if cut > 0 {
					if _, err := dst.Write(b[:cut]); err != nil {
						return
					}
				}
				flipped := []byte{b[cut] ^ mask}
				if _, err := dst.Write(flipped); err != nil {
					return
				}
				pos += uint64(cut) + 1
				b = b[cut+1:]
			}
			at, kind = nextFault(rng, f, pos)
		}
		if rerr != nil {
			return
		}
	}
}
