package chaos

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				io.Copy(conn, conn) //nolint:errcheck
			}()
		}
	}()
	return lis.Addr().String(), func() { lis.Close(); wg.Wait() }
}

// corruptionOffsets sends a fixed byte stream through a fresh proxy with
// only Corrupt faults enabled and returns the set of stream offsets whose
// bytes came back altered.
func corruptionOffsets(t *testing.T, target string, seed uint64, payload []byte) []int {
	t.Helper()
	px, err := New(target, Config{
		Seed: seed,
		Up:   Faults{MeanBytes: 256, Corrupt: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		conn.Write(payload) //nolint:errcheck
	}()
	got := make([]byte, len(payload))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("echo read: %v", err)
	}
	var offs []int
	for i := range payload {
		if got[i] != payload[i] {
			offs = append(offs, i)
		}
	}
	return offs
}

// TestFaultScheduleIsSeedDeterministic runs the identical byte stream
// through two independent proxies with the same seed and asserts the
// corruption lands at the same stream offsets, then confirms a different
// seed produces a different schedule.
func TestFaultScheduleIsSeedDeterministic(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()

	payload := make([]byte, 8192)
	rand.New(rand.NewSource(5)).Read(payload)

	a := corruptionOffsets(t, addr, 42, payload)
	b := corruptionOffsets(t, addr, 42, payload)
	if len(a) == 0 {
		t.Fatal("no corruption injected; MeanBytes too large for stream")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different fault offsets: %v vs %v", a, b)
		}
	}
	c := corruptionOffsets(t, addr, 43, payload)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault schedules")
	}
}

// TestProxyCloseSeversConnections ensures Close tears everything down
// without leaking goroutines (the race detector watches the rest).
func TestProxyCloseSeversConnections(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	px, err := New(addr, Config{Seed: 1, Up: Faults{MeanBytes: 1024, Delay: 1, MaxDelay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", px.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("ping")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil || !bytes.Equal(buf, msg) {
		t.Fatalf("echo through proxy: %q %v", buf, err)
	}
	if err := px.Close(); err != nil {
		t.Fatalf("proxy close: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("proxied connection still alive after Close")
	}
	if px.Stats().Conns != 1 {
		t.Errorf("conns = %d, want 1", px.Stats().Conns)
	}
}
