package kvnet

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet/chaos"
)

// Concurrency tests for the capability-detected serving path: a store
// declaring ConcurrentSafe() lets two in-flight requests overlap inside
// the server, while every other store keeps the old one-global-lock path.

// gatedStore wraps a store and stalls Get on one chosen key until
// released, making "a request is in flight inside the store" observable.
// ConcurrentSafe is forwarded as configured, so the same wrapper drives
// both the concurrent path and the serialized control.
type gatedStore struct {
	aria.Store
	gate    string
	other   []byte        // a loaded key on a different shard than gate
	entered chan struct{} // closed when the gated Get has entered the store
	release chan struct{} // the gated Get returns once this closes
	safe    bool
}

func (g *gatedStore) Get(key []byte) ([]byte, error) {
	if string(key) == g.gate {
		close(g.entered)
		<-g.release
	}
	return g.Store.Get(key)
}

func (g *gatedStore) ConcurrentSafe() bool { return g.safe }

// twoShardKeys returns two loaded keys that route to different shards.
func twoShardKeys(t *testing.T, st aria.Store) (a, b []byte) {
	t.Helper()
	sh, ok := st.(aria.Sharded)
	if !ok {
		t.Fatal("store is not sharded")
	}
	for i := 0; i < 256; i++ {
		k := []byte(fmt.Sprintf("gk-%04d", i))
		if err := st.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
		switch {
		case a == nil:
			a = k
		case b == nil && sh.ShardFor(k) != sh.ShardFor(a):
			b = k
		}
	}
	if b == nil {
		t.Fatal("could not find keys on two different shards")
	}
	return a, b
}

func startGatedServer(t *testing.T, safe bool) (*gatedStore, *Client, *Client) {
	t.Helper()
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 1024,
		Seed:         7,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := twoShardKeys(t, st)
	gs := &gatedStore{
		Store:   st,
		gate:    string(a),
		entered: make(chan struct{}),
		release: make(chan struct{}),
		safe:    safe,
	}
	gs.other = b
	t.Cleanup(func() {
		select {
		case <-gs.release:
		default:
			close(gs.release)
		}
	})

	srv := NewServer(gs)
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	dial := func() *Client {
		cl, err := Dial(lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	return gs, dial(), dial()
}

// TestConcurrentStoreRequestsOverlap is the acceptance check for the
// removed global mutex: with a sharded (concurrency-safe) store, a
// request to shard B completes while a request to shard A is still
// blocked inside the store — impossible under the old one-lock server.
func TestConcurrentStoreRequestsOverlap(t *testing.T) {
	gs, cl1, cl2 := startGatedServer(t, true)

	gateDone := make(chan error, 1)
	go func() {
		_, err := cl1.Get([]byte(gs.gate))
		gateDone <- err
	}()
	select {
	case <-gs.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("gated request never reached the store")
	}

	// The gated request is parked inside the store. A request to a
	// different shard must complete anyway.
	otherDone := make(chan error, 1)
	go func() {
		_, err := cl2.Get(gs.other)
		otherDone <- err
	}()
	select {
	case err := <-otherDone:
		if err != nil {
			t.Fatalf("overlapping request failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request to a different shard did not overlap an in-flight request")
	}

	close(gs.release)
	if err := <-gateDone; err != nil {
		t.Fatalf("gated request failed after release: %v", err)
	}
}

// TestPlainStoreRequestsSerialize is the control: the same store without
// the ConcurrentSafe declaration keeps the old behaviour — the second
// request waits for the first to leave the store.
func TestPlainStoreRequestsSerialize(t *testing.T) {
	gs, cl1, cl2 := startGatedServer(t, false)

	gateDone := make(chan error, 1)
	go func() {
		_, err := cl1.Get([]byte(gs.gate))
		gateDone <- err
	}()
	select {
	case <-gs.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("gated request never reached the store")
	}

	otherDone := make(chan error, 1)
	go func() {
		_, err := cl2.Get(gs.other)
		otherDone <- err
	}()
	select {
	case err := <-otherDone:
		t.Fatalf("serialized server let requests overlap (err=%v)", err)
	case <-time.After(300 * time.Millisecond):
		// Expected: the second request is queued on the global lock.
	}

	close(gs.release)
	if err := <-gateDone; err != nil {
		t.Fatalf("gated request failed after release: %v", err)
	}
	if err := <-otherDone; err != nil {
		t.Fatalf("queued request failed after release: %v", err)
	}
}

// TestShardedServerRoundTrip drives the full wire protocol against a
// sharded store: point ops, stats aggregation, and concurrent clients.
func TestShardedServerRoundTrip(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 400; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("sk-%04d", i)), []byte(fmt.Sprintf("sv-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i += 13 {
		v, err := cl.Get([]byte(fmt.Sprintf("sk-%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("sv-%d", i) {
			t.Fatalf("get %d = %q, %v", i, v, err)
		}
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Keys != 400 {
		t.Errorf("remote aggregate keys = %d, want 400", stats.Keys)
	}
	if stats.Ecalls == 0 {
		t.Error("no ECALLs charged across shards")
	}
}

// TestShardedScanOverWire checks the merged cross-shard scan through the
// protocol: global order and exact range bounds, same as unsharded.
func TestShardedScanOverWire(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaBPTree,
		EPCBytes:     16 << 20,
		ExpectedKeys: 1024,
		Seed:         7,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()
	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 300; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("wk-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	if err := cl.Scan([]byte("wk-0050"), []byte("wk-0070"), 0, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 20 || keys[0] != "wk-0050" || keys[19] != "wk-0069" {
		t.Fatalf("sharded wire scan = %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("wire scan order violated: %q before %q", keys[i-1], keys[i])
		}
	}
}

// TestShardedChaosScansStayConsistent reruns the chaos scan-consistency
// suite against a sharded store: through transport faults, the merged
// scan either completes in order, fails cleanly, or reports
// ErrScanInterrupted — and never delivers duplicates, preserving the
// single-store semantics through the k-way merge.
func TestShardedChaosScansStayConsistent(t *testing.T) {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaBPTree,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
		Shards:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerConfig(st, ServerConfig{
		IdleTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
		DrainTimeout: 200 * time.Millisecond,
	})
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	for i := 0; i < 300; i++ {
		if err := st.Put([]byte(fmt.Sprintf("ck-%04d", i)), []byte(fmt.Sprintf("cv-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	px, err := chaos.New(lis.Addr().String(), chaos.Config{
		Seed: 99,
		Down: chaos.Faults{MeanBytes: 2000, Drop: 1, Delay: 2, Truncate: 1, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	cl, err := DialConfig(px.Addr(), ClientConfig{
		Retry:     fastRetry(6),
		OpTimeout: 500 * time.Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	completed, interrupted := 0, 0
	for round := 0; round < 30; round++ {
		seen := make(map[string]bool)
		prev := ""
		err := cl.Scan(nil, nil, 0, func(k, v []byte) bool {
			ks := string(k)
			if seen[ks] {
				t.Fatalf("sharded scan delivered duplicate key %q", ks)
			}
			if ks <= prev {
				t.Fatalf("sharded scan order violated: %q after %q", ks, prev)
			}
			seen[ks] = true
			prev = ks
			return true
		})
		switch {
		case err == nil:
			if len(seen) != 300 {
				t.Fatalf("completed scan returned %d keys, want 300", len(seen))
			}
			completed++
		case errors.Is(err, ErrScanInterrupted):
			interrupted++
		}
	}
	if completed == 0 {
		t.Fatal("no sharded scan ever completed through the proxy")
	}
	t.Logf("sharded chaos scans: %d completed, %d interrupted", completed, interrupted)
}
