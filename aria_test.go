package aria

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

var allSchemes = []Scheme{
	AriaHash, AriaTree, AriaBPTree, NoCacheHash, NoCacheTree,
	ShieldStoreScheme, BaselineHash, BaselineTree,
}

func openSmall(t *testing.T, s Scheme) Store {
	t.Helper()
	st, err := Open(Options{
		Scheme:               s,
		EPCBytes:             32 << 20,
		ExpectedKeys:         2048,
		SecureCacheBytes:     1 << 20,
		PinBudgetBytes:       64 << 10,
		ShieldStoreRootBytes: 16 << 10,
		Seed:                 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAllSchemesRoundTrip(t *testing.T) {
	for _, s := range allSchemes {
		t.Run(s.String(), func(t *testing.T) {
			st := openSmall(t, s)
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("key-%05d", i))
				v := []byte(fmt.Sprintf("val-%d", i))
				if err := st.Put(k, v); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("key-%05d", i))
				got, err := st.Get(k)
				if err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("val-%d", i))) {
					t.Fatalf("get %d: %v", i, err)
				}
			}
			if err := st.Delete([]byte("key-00000")); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get([]byte("key-00000")); !errors.Is(err, ErrNotFound) {
				t.Errorf("deleted key: %v", err)
			}
			if _, err := st.Get([]byte("never-existed")); !errors.Is(err, ErrNotFound) {
				t.Errorf("missing key: %v", err)
			}
			if err := st.VerifyIntegrity(); err != nil {
				t.Fatalf("audit: %v", err)
			}
			stats := st.Stats()
			if stats.Keys != 299 {
				t.Errorf("keys = %d, want 299", stats.Keys)
			}
			if stats.Scheme != s {
				t.Errorf("stats scheme = %v", stats.Scheme)
			}
		})
	}
}

func TestErrorMapping(t *testing.T) {
	for _, s := range allSchemes {
		t.Run(s.String(), func(t *testing.T) {
			st := openSmall(t, s)
			if err := st.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
				t.Errorf("empty key: %v", err)
			}
			if err := st.Put(bytes.Repeat([]byte("k"), 9999), nil); !errors.Is(err, ErrTooLarge) {
				t.Errorf("huge key: %v", err)
			}
			if err := st.Delete([]byte("missing")); !errors.Is(err, ErrNotFound) {
				t.Errorf("missing delete: %v", err)
			}
		})
	}
}

func TestMeasurementWindow(t *testing.T) {
	st, err := Open(Options{
		Scheme:       AriaHash,
		EPCBytes:     32 << 20,
		ExpectedKeys: 1024,
		MeasureOff:   true,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		_ = st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("v"))
	}
	if got := st.Stats().SimCycles; got != 0 {
		t.Fatalf("cycles accrued during load: %d", got)
	}
	st.SetMeasuring(true)
	st.ResetStats()
	for i := 0; i < 500; i++ {
		_, _ = st.Get([]byte(fmt.Sprintf("key-%05d", i)))
	}
	stats := st.Stats()
	if stats.SimCycles == 0 || stats.SimSeconds <= 0 {
		t.Error("no cycles accrued during measured window")
	}
	if stats.MACs == 0 {
		t.Error("no MACs recorded")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range allSchemes {
		if s.String() == "" || s.String()[0] == 's' && s != ShieldStoreScheme {
			continue
		}
	}
	if AriaHash.String() != "aria-h" || ShieldStoreScheme.String() != "shieldstore" {
		t.Error("unexpected scheme names")
	}
	if Scheme(99).String() != "scheme(99)" {
		t.Error("unknown scheme formatting")
	}
}

func TestUnknownScheme(t *testing.T) {
	if _, err := Open(Options{Scheme: Scheme(42)}); err == nil {
		t.Error("Open accepted unknown scheme")
	}
}

func TestWithoutSGXIsCheaper(t *testing.T) {
	run := func(withoutSGX bool) uint64 {
		st, err := Open(Options{
			Scheme:       AriaHash,
			EPCBytes:     32 << 20,
			ExpectedKeys: 4096,
			WithoutSGX:   withoutSGX,
			MeasureOff:   true,
			Seed:         5,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			_ = st.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("0123456789abcdef"))
		}
		st.SetMeasuring(true)
		st.ResetStats()
		for i := 0; i < 2000; i++ {
			_, _ = st.Get([]byte(fmt.Sprintf("key-%05d", i)))
		}
		return st.Stats().SimCycles
	}
	with := run(false)
	without := run(true)
	if without >= with {
		t.Errorf("w/o SGX (%d cycles) not cheaper than with SGX (%d)", without, with)
	}
	// Figure 12 reports ~25%; accept a broad band around it.
	overhead := float64(with-without) / float64(with)
	if overhead < 0.05 || overhead > 0.60 {
		t.Logf("SGX overhead fraction = %.2f (paper: ~0.26)", overhead)
	}
}

func TestRangerScan(t *testing.T) {
	st := openSmall(t, AriaBPTree)
	for i := 0; i < 100; i++ {
		if err := st.Put([]byte(fmt.Sprintf("rk-%03d", i)), []byte(fmt.Sprintf("rv-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r, ok := st.(Ranger)
	if !ok {
		t.Fatal("AriaBPTree store does not implement Ranger")
	}
	var got []string
	if err := r.Scan([]byte("rk-010"), []byte("rk-020"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "rk-010" {
		t.Errorf("scan = %v", got)
	}
	// Hash-indexed stores must report ErrNoScan, not silently no-op.
	hst := openSmall(t, AriaHash)
	if hr, ok := hst.(Ranger); ok {
		if err := hr.Scan(nil, nil, func(k, v []byte) bool { return true }); !errors.Is(err, ErrNoScan) {
			t.Errorf("hash scan err = %v, want ErrNoScan", err)
		}
	}
}
