package aria

// The semantics layer: versions, TTL expiry, compare-and-swap, and
// multi-key transactions, layered over every scheme store.
//
// Each key carries trusted in-enclave metadata — a monotonically
// assigned version and an optional absolute expiry deadline — held in a
// small map the simulator does not price (it stands in for metadata a
// real enclave would keep alongside the encryption counters it already
// maintains per key, so plain Get/Put costs are unchanged and the
// committed benchmark snapshots stay valid; DESIGN.md §14 argues the
// accounting). Everything that touches untrusted memory — the actual
// reads, writes, and the physical deletes that reclaim expired keys —
// still flows through the scheme store and is charged as usual.
//
// Versions come from one per-store counter that only moves forward:
// a delete/recreate cycle always yields a strictly larger version, so
// CompareAndSwap and transaction validation are ABA-safe. Expired keys
// are logically absent the moment their deadline passes; the physical
// delete happens lazily when a read touches the key, or in a background
// sweeper pass (Options.TTLSweepEvery).

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// plainStore is the pre-transactional store surface the scheme engines
// implement; semStore layers GetV/CompareAndSwap/PutTTL/TxnCommit on
// top of it.
type plainStore interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	MGet(keys [][]byte) ([][]byte, []error)
	MPut(pairs []KV) []error
	MDelete(keys [][]byte) []error
	Stats() Stats
	VerifyIntegrity() error
	SetMeasuring(on bool)
	ResetStats()
}

// keyMeta is the trusted per-key metadata: the version assigned by the
// last write and the absolute expiry deadline (unix nanoseconds, 0 =
// never).
type keyMeta struct {
	ver uint64
	exp int64
}

// txnWrite is one resolved transaction write: TTLs have been converted
// to absolute deadlines, so the same slice applies identically at
// commit time, during WAL replay, and on a replica.
type txnWrite struct {
	key, value []byte
	del        bool
	exp int64 // absolute unix nanos; 0 = no expiry
}

// semantic is the internal surface the durability layer uses to drive
// the semantics store underneath it: resolving and committing
// transactions, replaying absolute-expiry writes, and persisting the
// version metadata into snapshots.
type semantic interface {
	resolveTxn(ops []TxnOp) ([]txnWrite, error)
	commitTxn(ops []TxnOp, writes []txnWrite) error
	applyTxnWrites(writes []txnWrite) error
	putExpireAbs(key, value []byte, exp int64) error
	restorePair(key, value []byte, ver uint64, exp int64) error
	metaOf(key []byte) (ver uint64, exp int64)
	clockVersion() uint64
	setClockVersion(v uint64)
	nowNanos() int64
}

// semStore implements the semantics layer. Its mutex serializes all
// store access (the simulated enclave models a single trusted thread),
// which also lets the background sweeper run safely alongside callers.
type semStore struct {
	inner    plainStore
	now      func() time.Time
	maxKey   int
	maxValue int

	mu     sync.Mutex
	meta   map[string]keyMeta
	vclock uint64

	txnCommits    uint64
	txnConflicts  uint64
	casMismatches uint64
	ttlExpired    uint64
	ttlSwept      uint64
	ttlSweeps     uint64

	sweepEvery time.Duration
	stopC      chan struct{}
	wg         sync.WaitGroup
	closed     bool
}

func newSemStore(inner plainStore, opts Options) *semStore {
	s := &semStore{
		inner:      inner,
		now:        opts.Now,
		maxKey:     opts.MaxKeySize,
		maxValue:   opts.MaxValueSize,
		meta:       make(map[string]keyMeta),
		sweepEvery: opts.TTLSweepEvery,
	}
	if s.now == nil {
		s.now = time.Now
	}
	// Mirror the engines' limit defaults so transaction writes can be
	// pre-validated before any of them applies (all-or-nothing).
	if s.maxKey <= 0 {
		s.maxKey = 256
	}
	if s.maxValue <= 0 {
		s.maxValue = 4096
	}
	if s.sweepEvery > 0 {
		s.stopC = make(chan struct{})
		s.wg.Add(1)
		go s.sweepLoop()
	}
	return s
}

// reapIfExpiredLocked reports whether key is expired at the current
// clock and, if so, reclaims it: the physical delete is charged to the
// scheme store like any other delete, and the metadata entry is
// dropped. Expired keys are logically absent whether or not a reap has
// happened yet.
func (s *semStore) reapIfExpiredLocked(key []byte) bool {
	m, ok := s.meta[string(key)]
	if !ok || m.exp == 0 || s.now().UnixNano() < m.exp {
		return false
	}
	_ = s.inner.Delete(key)
	delete(s.meta, string(key))
	s.ttlExpired++
	return true
}

func (s *semStore) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(key, value, 0)
}

// putLocked writes through the scheme store and, on success, assigns
// the key a fresh version and the given expiry deadline. A plain Put
// (exp 0) over a TTL key clears the TTL.
func (s *semStore) putLocked(key, value []byte, exp int64) error {
	if err := s.inner.Put(key, value); err != nil {
		return err
	}
	s.vclock++
	s.meta[string(key)] = keyMeta{ver: s.vclock, exp: exp}
	return nil
}

func (s *semStore) Get(key []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reapIfExpiredLocked(key) {
		return nil, ErrNotFound
	}
	return s.inner.Get(key)
}

func (s *semStore) GetV(key []byte) ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reapIfExpiredLocked(key) {
		return nil, 0, ErrNotFound
	}
	v, err := s.inner.Get(key)
	if err != nil {
		return nil, 0, err
	}
	return v, s.meta[string(key)].ver, nil
}

func (s *semStore) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reapIfExpiredLocked(key) {
		return ErrNotFound
	}
	if err := s.inner.Delete(key); err != nil {
		return err
	}
	delete(s.meta, string(key))
	return nil
}

func (s *semStore) PutTTL(key, value []byte, ttl time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var exp int64
	if ttl > 0 {
		exp = s.now().Add(ttl).UnixNano()
	}
	return s.putLocked(key, value, exp)
}

// putExpireAbs writes a key with an already-absolute expiry deadline:
// the WAL replay and replica apply path, where re-deriving the deadline
// from a relative TTL would drift from the sealed record.
func (s *semStore) putExpireAbs(key, value []byte, exp int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(key, value, exp)
}

func (s *semStore) CompareAndSwap(key, value []byte, expect uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapIfExpiredLocked(key)
	var cur uint64
	if m, ok := s.meta[string(key)]; ok {
		cur = m.ver
	}
	if cur != expect {
		s.casMismatches++
		return fmt.Errorf("%w: key at version %d, expected %d", ErrCASMismatch, cur, expect)
	}
	return s.putLocked(key, value, 0)
}

func (s *semStore) TxnCommit(ops []TxnOp) error {
	writes, err := s.resolveTxn(ops)
	if err != nil {
		return err
	}
	return s.commitTxn(ops, writes)
}

// resolveTxn validates a transaction's shape and converts its relative
// TTLs into absolute deadlines, stamped once for the whole commit. The
// size pre-checks make the later apply loop infallible under normal
// operation, keeping the commit all-or-nothing.
func (s *semStore) resolveTxn(ops []TxnOp) ([]txnWrite, error) {
	if len(ops) == 0 {
		return nil, errors.New("aria: empty transaction")
	}
	nowN := s.now().UnixNano()
	writes := make([]txnWrite, 0, len(ops))
	for i := range ops {
		op := &ops[i]
		if op.ReadOnly {
			if !op.Check {
				return nil, fmt.Errorf("aria: txn op %d: read-only op without a version check", i)
			}
			continue
		}
		if len(op.Key) == 0 {
			return nil, ErrEmptyKey
		}
		if len(op.Key) > s.maxKey || (!op.Delete && len(op.Value) > s.maxValue) {
			return nil, ErrTooLarge
		}
		w := txnWrite{key: op.Key, value: op.Value, del: op.Delete}
		if !op.Delete && op.TTL > 0 {
			w.exp = nowN + int64(op.TTL)
		}
		writes = append(writes, w)
	}
	return writes, nil
}

// commitTxn validates every version check and, only if all hold,
// applies the writes. Validation reads only trusted metadata, so a
// failed commit costs no untrusted access and changes nothing.
func (s *semStore) commitTxn(ops []TxnOp, writes []txnWrite) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range ops {
		op := &ops[i]
		if !op.Check {
			continue
		}
		s.reapIfExpiredLocked(op.Key)
		var cur uint64
		if m, ok := s.meta[string(op.Key)]; ok {
			cur = m.ver
		}
		if cur != op.Version {
			s.txnConflicts++
			return fmt.Errorf("%w: key at version %d, expected %d", ErrTxnConflict, cur, op.Version)
		}
	}
	if err := s.applyTxnWritesLocked(writes); err != nil {
		return err
	}
	// Only write-applying commits count: a cross-shard commit runs a
	// validation-only sub-transaction per shard first (see sharded.go),
	// and counting those would inflate the metric.
	if len(writes) > 0 {
		s.txnCommits++
	}
	return nil
}

// applyTxnWrites applies already-resolved writes without validation:
// the WAL replay and replica path, where the decision to commit was
// made (and sealed) by the original primary.
func (s *semStore) applyTxnWrites(writes []txnWrite) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyTxnWritesLocked(writes)
}

func (s *semStore) applyTxnWritesLocked(writes []txnWrite) error {
	for i := range writes {
		w := &writes[i]
		if w.del {
			// Deleting an absent key inside a transaction is a no-op,
			// like replaying a delete over a snapshot that no longer
			// holds the key.
			if err := s.inner.Delete(w.key); err != nil && !errors.Is(err, ErrNotFound) {
				return fmt.Errorf("aria: txn apply: %w", err)
			}
			delete(s.meta, string(w.key))
			continue
		}
		if err := s.inner.Put(w.key, w.value); err != nil {
			return fmt.Errorf("aria: txn apply: %w", err)
		}
		s.vclock++
		s.meta[string(w.key)] = keyMeta{ver: s.vclock, exp: w.exp}
	}
	return nil
}

// restorePair reinstates a snapshot pair with its recorded version and
// expiry, without advancing the version clock (setClockVersion restores
// that separately).
func (s *semStore) restorePair(key, value []byte, ver uint64, exp int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.inner.Put(key, value); err != nil {
		return err
	}
	s.meta[string(key)] = keyMeta{ver: ver, exp: exp}
	return nil
}

func (s *semStore) metaOf(key []byte) (uint64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.meta[string(key)]
	return m.ver, m.exp
}

func (s *semStore) clockVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vclock
}

func (s *semStore) setClockVersion(v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.vclock {
		s.vclock = v
	}
}

func (s *semStore) nowNanos() int64 { return s.now().UnixNano() }

// ---- batches ---------------------------------------------------------------------

func (s *semStore) MGet(keys [][]byte) ([][]byte, []error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		s.reapIfExpiredLocked(k)
	}
	return s.inner.MGet(keys)
}

func (s *semStore) MPut(pairs []KV) []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	errs := s.inner.MPut(pairs)
	for i := range pairs {
		if errs == nil || errs[i] == nil {
			s.vclock++
			s.meta[string(pairs[i].Key)] = keyMeta{ver: s.vclock}
		}
	}
	return errs
}

func (s *semStore) MDelete(keys [][]byte) []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		s.reapIfExpiredLocked(k)
	}
	errs := s.inner.MDelete(keys)
	for i, k := range keys {
		if errs == nil || errs[i] == nil {
			delete(s.meta, string(k))
		}
	}
	return errs
}

// ---- sweeper ---------------------------------------------------------------------

func (s *semStore) sweepLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.sweepEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopC:
			return
		case <-t.C:
			s.sweepOnce()
		}
	}
}

// sweepOnce removes every key whose deadline has passed. The pass
// enters the enclave once (charged as an ECALL when the scheme exposes
// its edge) and pays a normal delete per reclaimed key; scanning the
// trusted metadata itself is EPC-resident work the simulator does not
// price, like any other in-enclave bookkeeping.
func (s *semStore) sweepOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ec, ok := s.inner.(EdgeCaller); ok {
		ec.ChargeEcall()
	}
	nowN := s.now().UnixNano()
	for k, m := range s.meta {
		if m.exp == 0 || nowN < m.exp {
			continue
		}
		_ = s.inner.Delete([]byte(k))
		delete(s.meta, k)
		s.ttlSwept++
	}
	s.ttlSweeps++
}

// ---- plumbing --------------------------------------------------------------------

func (s *semStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.inner.Stats()
	st.TxnCommits = s.txnCommits
	st.TxnConflicts = s.txnConflicts
	st.CASMismatches = s.casMismatches
	st.TTLExpired = s.ttlExpired
	st.TTLSwept = s.ttlSwept
	st.TTLSweeps = s.ttlSweeps
	return st
}

func (s *semStore) VerifyIntegrity() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.VerifyIntegrity()
}

func (s *semStore) SetMeasuring(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.SetMeasuring(on)
}

func (s *semStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.txnCommits, s.txnConflicts, s.casMismatches = 0, 0, 0
	s.ttlExpired, s.ttlSwept, s.ttlSweeps = 0, 0, 0
	s.inner.ResetStats()
}

// Checkpoint implements Durable: the semantics layer itself has no
// lineage, so it reports ErrNotDurable exactly like a store opened
// without DataDir (the durability wrapper overrides this).
func (s *semStore) Checkpoint() error { return ErrNotDurable }

// Close stops the background sweeper, if one is running. Safe to call
// more than once.
func (s *semStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.stopC != nil {
		close(s.stopC)
		s.wg.Wait()
	}
	return nil
}

// Scan passes through to ordered scheme stores; unordered indexes
// report ErrNoScan. Expired-but-unreaped keys may still appear in a
// scan — range scans read the untrusted index directly, and pruning
// them would require a trusted lookup per visited key; the sweeper
// bounds the window (documented in DESIGN.md §14).
func (s *semStore) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.inner.(Ranger); ok {
		return r.Scan(start, end, fn)
	}
	return ErrNoScan
}

func (s *semStore) ChargeEcall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ec, ok := s.inner.(EdgeCaller); ok {
		ec.ChargeEcall()
	}
}

func (s *semStore) UntrustedSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.inner.(Corrupter); ok {
		return c.UntrustedSize()
	}
	return 0
}

func (s *semStore) FlipUntrustedByte(offset int, mask byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.inner.(Corrupter); ok {
		return c.FlipUntrustedByte(offset, mask)
	}
	return false
}

func (s *semStore) SnapshotUntrusted() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.inner.(Corrupter); ok {
		return c.SnapshotUntrusted()
	}
	return nil
}

func (s *semStore) RestoreUntrusted(snap []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.inner.(Corrupter); ok {
		c.RestoreUntrusted(snap)
	}
}
