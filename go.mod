module github.com/ariakv/aria

go 1.22
