// Quickstart: open an Aria store, write and read a few pairs, delete one,
// and run the offline integrity audit.
package main

import (
	"fmt"
	"log"

	"github.com/ariakv/aria"
)

func main() {
	// Open Aria with the hash index inside a simulated 91 MB-EPC enclave.
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		ExpectedKeys: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Values are encrypted, MAC'd, and freshness-protected before they
	// ever reach untrusted memory.
	if err := st.Put([]byte("user:1001"), []byte(`{"name":"ada","balance":100}`)); err != nil {
		log.Fatal(err)
	}
	if err := st.Put([]byte("user:1002"), []byte(`{"name":"grace","balance":250}`)); err != nil {
		log.Fatal(err)
	}

	v, err := st.Get([]byte("user:1001"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:1001 = %s\n", v)

	if err := st.Delete([]byte("user:1002")); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Get([]byte("user:1002")); err == aria.ErrNotFound {
		fmt.Println("user:1002 deleted")
	}

	// Audit the whole store: every Merkle node and every entry is
	// re-verified against the EPC-resident roots.
	if err := st.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrity audit clean")

	s := st.Stats()
	fmt.Printf("ops: %d gets, %d puts, %d deletes; %d MACs computed; cache hit ratio %.2f\n",
		s.Gets, s.Puts, s.Deletes, s.MACs, s.CacheHitRatio)
}
