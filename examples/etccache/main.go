// ETC cache example: run a Facebook-ETC-like production workload (the mixed
// tiny/small/large value population of the paper's §VI-B) against Aria and
// print a small capacity-planning report: throughput, Secure Cache hit
// ratio, and EPC footprint — the numbers an operator deciding between Aria
// and ShieldStore would look at.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

func main() {
	var (
		keys = flag.Int("keys", 300000, "keyspace size")
		ops  = flag.Int("ops", 60000, "measured operations")
	)
	flag.Parse()

	fmt.Printf("Facebook ETC population: 40%% tiny (1-13B), 55%% small (14-300B), 5%% large (>300B)\n")
	fmt.Printf("keyspace=%d, RD_95 request mix\n\n", *keys)
	fmt.Printf("%-12s  %12s  %10s  %12s\n", "scheme", "ops/s", "hit-ratio", "EPC-used-MB")

	for _, scheme := range []aria.Scheme{aria.AriaHash, aria.ShieldStoreScheme, aria.NoCacheHash} {
		st, err := aria.Open(aria.Options{
			Scheme:       scheme,
			EPCBytes:     16 << 20,
			ExpectedKeys: *keys,
			MeasureOff:   true,
		})
		if err != nil {
			log.Fatal(err)
		}
		gen, err := workload.New(workload.Config{Keys: *keys, ETC: true, ReadRatio: 0.95, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *keys; i++ {
			if err := st.Put(gen.KeyAt(i), gen.ValueAt(i)); err != nil {
				log.Fatal(err)
			}
		}
		var op workload.Op
		for i := 0; i < *ops/2; i++ {
			gen.Next(&op)
			apply(st, &op)
		}
		st.SetMeasuring(true)
		st.ResetStats()
		for i := 0; i < *ops; i++ {
			gen.Next(&op)
			apply(st, &op)
		}
		s := st.Stats()
		fmt.Printf("%-12s  %12.0f  %10.2f  %12.1f\n",
			scheme, float64(*ops)/s.SimSeconds, s.CacheHitRatio,
			float64(s.EPCUsedBytes)/(1<<20))
	}
}

func apply(st aria.Store, op *workload.Op) {
	var err error
	if op.Read {
		_, err = st.Get(op.Key)
		if err == aria.ErrNotFound {
			err = nil
		}
	} else {
		err = st.Put(op.Key, op.Value)
	}
	if err != nil {
		log.Fatal(err)
	}
}
