// Range-scan example: the B+-tree extension (paper §VII future work) serves
// verified, ordered range queries — here a small time-series workload where
// a dashboard reads the latest window of samples.
package main

import (
	"fmt"
	"log"

	"github.com/ariakv/aria"
)

func main() {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaBPTree,
		ExpectedKeys: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest samples keyed by (sensor, timestamp); lexicographic order
	// keeps each sensor's samples contiguous.
	for sensor := 0; sensor < 4; sensor++ {
		for ts := 0; ts < 1000; ts++ {
			k := fmt.Sprintf("sensor-%d/t-%06d", sensor, ts)
			v := fmt.Sprintf("%.2f", 20.0+float64((sensor*37+ts*13)%90)/10)
			if err := st.Put([]byte(k), []byte(v)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("ingested 4000 samples across 4 sensors")

	// Every sample read by a scan has passed the full Merkle+MAC
	// verification path, so the dashboard cannot be fed stale or forged
	// readings.
	ranger := st.(aria.Ranger)
	fmt.Println("\nlast 5 samples of sensor-2:")
	start := []byte("sensor-2/t-000995")
	end := []byte("sensor-2/t-999999")
	if err := ranger.Scan(start, end, func(k, v []byte) bool {
		fmt.Printf("  %s = %s\n", k, v)
		return true
	}); err != nil {
		log.Fatal(err)
	}

	count := 0
	if err := ranger.Scan([]byte("sensor-1/"), []byte("sensor-2/"), func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsensor-1 holds %d samples (full verified scan)\n", count)

	if err := st.VerifyIntegrity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("integrity audit clean")
}
