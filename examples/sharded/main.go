// Sharded store example: scale out past the single-enclave design by hash-
// partitioning the keyspace across four independent Aria instances
// (Options.Shards). Each shard gets a 1/4 slice of the EPC budget and its
// own lock, so goroutines touching different shards proceed concurrently.
// The demo drives a mixed read/write workload from several goroutines and
// prints the aggregate throughput, the per-shard breakdown, and the
// store's health.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

func main() {
	var (
		shards  = flag.Int("shards", 4, "independent enclave instances")
		keys    = flag.Int("keys", 50_000, "keyspace size")
		ops     = flag.Int("ops", 200_000, "total operations across all workers")
		workers = flag.Int("workers", 8, "concurrent client goroutines")
	)
	flag.Parse()

	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     8 << 20, // total; split fairly across shards
		ExpectedKeys: *keys,
		Shards:       *shards,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bulk-load the keyspace, then measure a concurrent mixed workload.
	loader, err := workload.New(workload.Config{Keys: *keys, ValueSize: 64, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < loader.Keys(); i++ {
		if err := st.Put(loader.KeyAt(i), loader.ValueAt(i)); err != nil {
			log.Fatal(err)
		}
	}

	st.SetMeasuring(true)
	st.ResetStats() // zeroes the simulated clock; op counters stay cumulative
	perWorker := *ops / *workers
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		// One generator per goroutine: generators are not concurrency-
		// safe, and distinct seeds keep the streams independent.
		gen, err := workload.New(workload.Config{
			Keys:      *keys,
			Dist:      workload.Zipfian,
			Skew:      0.99,
			ReadRatio: 0.9,
			ValueSize: 64,
			Seed:      int64(100 + w),
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(gen *workload.Generator) {
			defer wg.Done()
			var op workload.Op
			for i := 0; i < perWorker; i++ {
				gen.Next(&op)
				if op.Read {
					if _, err := st.Get(op.Key); err != nil && err != aria.ErrNotFound {
						log.Fatal(err)
					}
				} else if err := st.Put(op.Key, op.Value); err != nil {
					log.Fatal(err)
				}
			}
		}(gen)
	}
	wg.Wait()
	st.SetMeasuring(false)

	// Aggregate view: counters are summed across shards; the simulated
	// clock is the slowest shard's (shards run in parallel).
	stats := st.Stats()
	done := perWorker * *workers
	fmt.Printf("%d workers, %d shards, %d ops (90%% reads, Zipf-0.99)\n",
		*workers, *shards, done)
	fmt.Printf("aggregate: %.0f ops/s simulated, cache hit ratio %.0f%%, health %s\n\n",
		float64(done)/stats.SimSeconds, stats.CacheHitRatio*100, stats.Health())

	// Per-shard breakdown: keys and gets show how evenly the hash router
	// spread the keyspace and the traffic.
	sh := st.(aria.Sharded)
	fmt.Println("shard  keys   gets    hit-ratio  epc-used")
	for i := 0; i < sh.NumShards(); i++ {
		ss := sh.ShardStats(i)
		fmt.Printf("%-5d  %-5d  %-6d  %-9s  %d KB\n",
			i, ss.Keys, ss.Gets, fmt.Sprintf("%.0f%%", ss.CacheHitRatio*100),
			ss.EPCUsedBytes>>10)
	}
}
