// YCSB example: load a keyspace, then compare Aria-H against ShieldStore
// under a skewed and a uniform YCSB workload — a miniature of the paper's
// Figure 9 that a user can run in seconds.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

func main() {
	var (
		keys = flag.Int("keys", 200000, "keyspace size")
		ops  = flag.Int("ops", 50000, "measured operations per point")
		skew = flag.Float64("skew", 0.99, "zipfian skewness")
	)
	flag.Parse()

	fmt.Printf("keyspace=%d, ops=%d, zipf=%.2f (simulated 3.6GHz cycles)\n\n", *keys, *ops, *skew)
	fmt.Printf("%-14s  %-10s  %12s  %10s\n", "workload", "scheme", "ops/s", "hit-ratio")

	for _, dist := range []workload.Dist{workload.Zipfian, workload.Uniform} {
		for _, scheme := range []aria.Scheme{aria.AriaHash, aria.ShieldStoreScheme} {
			thr, hit := run(scheme, dist, *keys, *ops, *skew)
			fmt.Printf("%-14s  %-10s  %12.0f  %10.2f\n",
				fmt.Sprintf("%v-R95", dist), scheme, thr, hit)
		}
	}
}

func run(scheme aria.Scheme, dist workload.Dist, keys, ops int, skew float64) (float64, float64) {
	st, err := aria.Open(aria.Options{
		Scheme:       scheme,
		EPCBytes:     8 << 20, // small EPC so the keyspace is "large"
		ExpectedKeys: keys,
		MeasureOff:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.New(workload.Config{
		Keys: keys, Dist: dist, Skew: skew, ReadRatio: 0.95, ValueSize: 64, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if err := st.Put(gen.KeyAt(i), gen.ValueAt(i)); err != nil {
			log.Fatal(err)
		}
	}
	var op workload.Op
	for i := 0; i < ops/2; i++ { // warm the Secure Cache
		gen.Next(&op)
		apply(st, &op)
	}
	st.SetMeasuring(true)
	st.ResetStats()
	for i := 0; i < ops; i++ {
		gen.Next(&op)
		apply(st, &op)
	}
	s := st.Stats()
	return float64(ops) / s.SimSeconds, s.CacheHitRatio
}

func apply(st aria.Store, op *workload.Op) {
	var err error
	if op.Read {
		_, err = st.Get(op.Key)
		if err == aria.ErrNotFound {
			err = nil
		}
	} else {
		err = st.Put(op.Key, op.Value)
	}
	if err != nil {
		log.Fatal(err)
	}
}
