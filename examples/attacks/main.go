// Attack demo: act as the malicious host from the paper's threat model.
// Using the fault-injection interface, corrupt untrusted memory underneath
// a live Aria store — random tampering and a full replay of stale state —
// and show that every manipulation is detected rather than served.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"github.com/ariakv/aria"
)

func main() {
	st, err := aria.Open(aria.Options{
		Scheme:       aria.AriaHash,
		ExpectedKeys: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := st.Put(acct(i), []byte(fmt.Sprintf("balance=%06d", i*10))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("loaded 2000 accounts; clean audit:", audit(st))

	cor := st.(aria.Corrupter)

	// --- Attack 1: random bit flips across untrusted memory. ------------
	// Everything outside the enclave is fair game: entries, Merkle
	// nodes, chain pointers, allocator free lists.
	rng := rand.New(rand.NewSource(1))
	flips := 0
	for i := 0; i < 200; i++ {
		if cor.FlipUntrustedByte(rng.Intn(cor.UntrustedSize()), 0xFF) {
			flips++
		}
	}
	fmt.Printf("\n[attack 1] flipped %d random untrusted bytes\n", flips)
	if err := st.VerifyIntegrity(); errors.Is(err, aria.ErrIntegrity) {
		fmt.Println("          audit detected the tampering:", short(err))
	} else {
		log.Fatalf("          TAMPERING NOT DETECTED (audit err = %v)", err)
	}

	// --- Attack 2: replay stale state wholesale. -------------------------
	// A fresh store this time: snapshot all untrusted memory, let the
	// store update a balance, then restore the snapshot — the classic
	// replay a MAC alone cannot catch.
	st2, err := aria.Open(aria.Options{Scheme: aria.AriaHash, ExpectedKeys: 1000})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		_ = st2.Put(acct(i), []byte(fmt.Sprintf("balance=%06d", 100)))
	}
	cor2 := st2.(aria.Corrupter)
	snap := cor2.SnapshotUntrusted()
	if err := st2.Put(acct(7), []byte("balance=000000")); err != nil { // spend it all
		log.Fatal(err)
	}
	cor2.RestoreUntrusted(snap) // host replays the old, richer state
	fmt.Println("\n[attack 2] replayed a pre-spend snapshot of untrusted memory")
	_, err = st2.Get(acct(7))
	if errors.Is(err, aria.ErrIntegrity) {
		fmt.Println("          stale balance rejected:", short(err))
	} else {
		log.Fatalf("          REPLAY NOT DETECTED (get err = %v)", err)
	}

	fmt.Println("\nall attacks detected")
}

func acct(i int) []byte { return []byte(fmt.Sprintf("acct-%05d", i)) }

func audit(st aria.Store) string {
	if err := st.VerifyIntegrity(); err != nil {
		return "FAILED: " + err.Error()
	}
	return "PASS"
}

func short(err error) string {
	s := err.Error()
	if len(s) > 90 {
		return s[:90] + "..."
	}
	return s
}
