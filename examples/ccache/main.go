// Coherent client-cache example: two clients front one aria-server
// with the ccache package. Client B caches a hot key locally — reads
// cost zero network hops — until client A overwrites it; the server's
// invalidation push evicts B's copy, and B's next read refetches the
// new value. The demo prints each step so the coherence contract is
// visible: read-your-writes for the writer, push-bounded freshness for
// everyone else, and a hit counter proving the hot reads never left
// the process.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/ccache"
	"github.com/ariakv/aria/kvnet"
)

func main() {
	// An in-process server stands in for `aria-server -inval-push`.
	st, err := aria.Open(aria.Options{Scheme: aria.AriaHash, ExpectedKeys: 10000})
	if err != nil {
		log.Fatal(err)
	}
	srv := kvnet.NewServerConfig(st, kvnet.ServerConfig{
		InvalPush:      true,
		InvalHeartbeat: 50 * time.Millisecond,
	})
	srv.SetLogf(func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()
	addr := lis.Addr().String()
	fmt.Printf("server with invalidation push on %s\n\n", addr)

	// Two independent cached clients, as two processes would open them.
	a, err := ccache.Open(addr, ccache.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	b, err := ccache.Open(addr, ccache.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	waitArmed(a, "A")
	waitArmed(b, "B")

	key := []byte("config/feature-flags")

	// A writes; read-your-writes holds for A immediately.
	must(a.Put(key, []byte("v1")))
	fmt.Printf("A wrote %s = v1\n", key)

	// B reads the key hot: the first read fetches and fills, the rest
	// are served from B's local LRU without touching the network.
	for i := 0; i < 5; i++ {
		v, err := b.Get(key)
		must(err)
		fmt.Printf("B read  %s = %s  (hits so far: %d)\n", key, v, b.Stats().Hits)
	}

	// A overwrites. The server pushes an invalidation to every
	// subscribed cache; B's copy is dropped within push latency.
	must(a.Put(key, []byte("v2")))
	fmt.Printf("\nA wrote %s = v2 — server pushes the invalidation\n", key)
	for {
		v, err := b.Get(key)
		must(err)
		if string(v) == "v2" {
			fmt.Printf("B read  %s = %s  (refetched after the push)\n", key, v)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	stats := b.Stats()
	fmt.Printf("\nB cache stats: hits=%d misses=%d invalidations=%d hit-ratio=%.0f%%\n",
		stats.Hits, stats.Misses, stats.Invalidations, stats.HitRatio()*100)
}

// waitArmed blocks until the cache's invalidation stream is live (it
// starts cold and arms on the stream's hello frame).
func waitArmed(c *ccache.Cache, name string) {
	for !c.Stats().Armed {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("cache %s armed: invalidation stream live\n", name)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
