// Multi-tenant example: several independent enclaves share one physical EPC
// budget, as in the paper's cloud scenario (§VI-D5). Each tenant's Secure
// Cache shrinks to its EPC share; the example reports per-tenant throughput
// for Aria and ShieldStore side by side, showing Aria degrading gracefully
// where ShieldStore's longer verification chains bite.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/workload"
)

func main() {
	var (
		keys   = flag.Int("keys", 150000, "keyspace per tenant")
		ops    = flag.Int("ops", 30000, "measured operations per tenant")
		epcMB  = flag.Int("epc", 8, "total EPC budget shared by all tenants, MB")
		counts = []int{1, 2, 4}
	)
	flag.Parse()

	fmt.Printf("shared EPC %d MB, %d keys and %d ops per tenant\n\n", *epcMB, *keys, *ops)
	fmt.Printf("%-8s  %-12s  %14s\n", "tenants", "scheme", "avg ops/s/tenant")

	for _, tenants := range counts {
		for _, scheme := range []aria.Scheme{aria.AriaHash, aria.ShieldStoreScheme} {
			total := 0.0
			for tn := 0; tn < tenants; tn++ {
				total += runTenant(scheme, *keys, *ops, *epcMB<<20/tenants, int64(tn))
			}
			fmt.Printf("%-8d  %-12s  %14.0f\n", tenants, scheme, total/float64(tenants))
		}
	}
}

func runTenant(scheme aria.Scheme, keys, ops, epcShare int, seed int64) float64 {
	st, err := aria.Open(aria.Options{
		Scheme:               scheme,
		EPCBytes:             epcShare,
		SecureCacheBytes:     epcShare / 10 * 7,
		ShieldStoreRootBytes: epcShare / 10 * 7,
		ExpectedKeys:         keys,
		MeasureOff:           true,
		Seed:                 uint64(seed),
	})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.New(workload.Config{
		Keys: keys, Dist: workload.Zipfian, Skew: 0.99, ReadRatio: 0.95, ValueSize: 64,
		Seed: 11 + seed*1297,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if err := st.Put(gen.KeyAt(i), gen.ValueAt(i)); err != nil {
			log.Fatal(err)
		}
	}
	var op workload.Op
	for i := 0; i < ops/2; i++ {
		gen.Next(&op)
		apply(st, &op)
	}
	st.SetMeasuring(true)
	st.ResetStats()
	for i := 0; i < ops; i++ {
		gen.Next(&op)
		apply(st, &op)
	}
	return float64(ops) / st.Stats().SimSeconds
}

func apply(st aria.Store, op *workload.Op) {
	var err error
	if op.Read {
		_, err = st.Get(op.Key)
		if err == aria.ErrNotFound {
			err = nil
		}
	} else {
		err = st.Put(op.Key, op.Value)
	}
	if err != nil {
		log.Fatal(err)
	}
}
