package repl

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/seal"
	"github.com/ariakv/aria/internal/shard"
	"github.com/ariakv/aria/kvnet"
	"github.com/ariakv/aria/obs"
	"github.com/ariakv/aria/wal"
)

// Config tunes a replication node. The zero value is usable: an
// asynchronous primary (no sync replicas) or replica with the defaults
// noted per field.
type Config struct {
	// SyncReplicas, on a primary, is how many subscribers must
	// acknowledge a write's sequence number before the write is
	// acknowledged to the client. Zero (the default) acknowledges after
	// local durability only — replication is asynchronous and a
	// failover can lose the unshipped suffix.
	SyncReplicas int
	// WaitTimeout bounds the synchronous-replication wait (default 5s).
	// On expiry the write fails with a typed error; the data IS durable
	// locally, so the client must treat the write as in doubt.
	WaitTimeout time.Duration
	// AckEvery is the replica's ack cadence in applied records (default
	// 1: ack every record — chatty but the tightest watermark).
	AckEvery uint64
	// RedialBackoff is the replica's pause between subscribe stream
	// dials (default 50ms).
	RedialBackoff time.Duration
	// PollInterval is the publisher's idle wake interval, bounding
	// heartbeat spacing while a subscriber is caught up (default 25ms).
	PollInterval time.Duration
	// DialTimeout bounds dials and snapshot bootstrap frames (default 5s).
	DialTimeout time.Duration
	// StreamTimeout bounds each subscribe stream read on the replica
	// (default 30s). Publisher heartbeats arrive every PollInterval, so
	// an expiry means the primary is gone and triggers a redial.
	StreamTimeout time.Duration
	// Promote lets OpenPrimary open a data directory whose sealed role
	// is replica, bumping the generation — the offline promotion path.
	// Without it, opening a replica's directory as a primary is refused.
	Promote bool
	// Metrics, when set, registers the repl_* instrument families.
	Metrics *obs.Registry
	// Logf receives replication progress and fault lines (default: drop).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 5 * time.Second
	}
	if c.AckEvery == 0 {
		c.AckEvery = 1
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 30 * time.Second
	}
}

// Node is one replicated store instance — primary or replica — and the
// kvnet.ReplBackend its server is configured with. A primary publishes
// its sealed WAL to subscribers and optionally waits for their acks; a
// replica runs one applier per WAL shard, replaying the primary's
// stream through the normal write path.
type Node struct {
	store       aria.Store
	rep         aria.Replicable
	cfg         Config
	dataDir     string
	genSealer   *seal.Sealer
	seed        uint64
	shards      int
	router      shard.Router
	met         *metrics
	primaryAddr string // replica: where to subscribe

	mu          sync.Mutex
	role        string
	gen         uint64
	primaryGen  uint64   // replica: last generation learned from the primary
	primaryNext []uint64 // replica: per-shard publisher next seq from heartbeats

	// Commit wake: the store's commit hook closes and replaces wakeCh,
	// so every publisher loop blocked on the previous channel wakes.
	wakeMu sync.Mutex
	wakeCh chan struct{}

	// Per-shard sync-ack bookkeeping (primary).
	acks   []*shardAcks
	subSeq atomic.Uint64 // subscriber ids

	closeC    chan struct{}
	closeOnce sync.Once
	stopC     chan struct{} // applier stop (closed by Promote/fence/Close)
	stopOnce  sync.Once
	applierWG sync.WaitGroup
}

// shardAcks tracks which subscribers acked what on one shard. bump is a
// close-and-replace broadcast: every recorded ack (and every subscriber
// departure) closes the current channel so WaitCommitted recounts.
type shardAcks struct {
	mu    sync.Mutex
	acked map[uint64]uint64
	bump  chan struct{}
}

func newShardAcks() *shardAcks {
	return &shardAcks{acked: make(map[uint64]uint64), bump: make(chan struct{})}
}

func (a *shardAcks) record(id, seq uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if seq <= a.acked[id] {
		return
	}
	a.acked[id] = seq
	close(a.bump)
	a.bump = make(chan struct{})
}

func (a *shardAcks) forget(id uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.acked, id)
	close(a.bump)
	a.bump = make(chan struct{})
}

// lineageDir returns the WAL lineage directory for shard i under a root
// data directory, matching the layout aria.Open uses.
func lineageDir(dataDir string, shards, i int) string {
	if shards <= 1 {
		return dataDir
	}
	return filepath.Join(dataDir, fmt.Sprintf("shard-%d", i))
}

func newNode(opts aria.Options, cfg Config) *Node {
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	n := &Node{
		cfg:       cfg,
		dataDir:   opts.DataDir,
		genSealer: seal.New(opts.Seed),
		seed:      opts.Seed,
		shards:    shards,
		router:    shard.NewRouter(shards),
		met:       newMetrics(cfg.Metrics),
		wakeCh:    make(chan struct{}),
		closeC:    make(chan struct{}),
		stopC:     make(chan struct{}),
	}
	n.primaryNext = make([]uint64, shards)
	n.acks = make([]*shardAcks, shards)
	for i := range n.acks {
		n.acks[i] = newShardAcks()
	}
	return n
}

// openReplicable opens the store and asserts it exposes WAL lineages.
func (n *Node) openReplicable(opts aria.Options) error {
	st, err := aria.Open(opts)
	if err != nil {
		return err
	}
	rep, ok := st.(aria.Replicable)
	if !ok || rep.WALShards() == 0 {
		if d, okd := st.(aria.Durable); okd {
			d.Close()
		}
		return errors.New("repl: store is not replicable (open it with a DataDir)")
	}
	n.store, n.rep = st, rep
	return nil
}

// OpenPrimary opens (or creates) a durable store as the replication
// primary. A fresh directory starts at generation 1; an existing
// primary directory resumes its recorded generation; a directory whose
// sealed role is replica is refused unless cfg.Promote is set, which
// bumps the generation (offline promotion). A fenced directory is
// always refused — re-seed it.
func OpenPrimary(opts aria.Options, cfg Config) (*Node, error) {
	cfg.fillDefaults()
	if opts.DataDir == "" {
		return nil, errors.New("repl: replication requires Options.DataDir")
	}
	n := newNode(opts, cfg)
	gen, role, ok, err := readGeneration(n.dataDir, n.genSealer)
	if err != nil {
		return nil, err
	}
	switch {
	case !ok:
		gen = 1
	case role == storedFenced:
		return nil, fmt.Errorf("repl: data dir is fenced; wipe and re-seed it: %w", aria.ErrFenced)
	case role == storedReplica && !cfg.Promote:
		return nil, errors.New("repl: data dir belongs to a replica; pass Config.Promote to promote it")
	case role == storedReplica:
		gen++
	}
	if err := writeGeneration(n.dataDir, n.genSealer, gen, storedPrimary); err != nil {
		return nil, err
	}
	if err := n.openReplicable(opts); err != nil {
		return nil, err
	}
	n.role, n.gen = kvnet.RolePrimary, gen
	if role == storedReplica {
		n.met.promoted()
	}
	n.rep.SetCommitHook(n.commitWake)
	return n, nil
}

// OpenReplica opens a durable store as a read replica of the primary at
// primaryAddr. A fresh directory bootstraps each shard lineage from the
// primary's newest sealed snapshot (when one exists) and then streams
// the WAL tail; an existing replica directory resumes from its local
// log end. An ex-primary's directory is accepted but keeps its old
// generation, so the new primary's fencing handshake decides its fate —
// the node fences itself on the first subscribe and must be re-seeded.
func OpenReplica(opts aria.Options, primaryAddr string, cfg Config) (*Node, error) {
	cfg.fillDefaults()
	if opts.DataDir == "" {
		return nil, errors.New("repl: replication requires Options.DataDir")
	}
	n := newNode(opts, cfg)
	n.primaryAddr = primaryAddr
	gen, role, ok, err := readGeneration(n.dataDir, n.genSealer)
	if err != nil {
		return nil, err
	}
	if ok && role == storedFenced {
		return nil, fmt.Errorf("repl: data dir is fenced; wipe and re-seed it: %w", aria.ErrFenced)
	}
	if err := aria.InitDataDir(n.dataDir, n.seed, n.shards); err != nil {
		return nil, err
	}
	if err := n.bootstrapSnapshots(); err != nil {
		return nil, err
	}
	// Learn the primary's generation. An ex-primary's directory keeps
	// its own recorded generation instead: presenting the stale number
	// is exactly what lets the new primary fence it.
	info, ierr := fetchReplStatus(primaryAddr, cfg.DialTimeout)
	if ierr != nil {
		return nil, fmt.Errorf("repl: cannot reach primary %s: %w", primaryAddr, ierr)
	}
	n.primaryGen = info.Generation
	if !ok || role != storedPrimary {
		// Clean replicas (and fresh directories) follow the primary's
		// generation; an ex-primary keeps its stale one and lets the
		// handshake fence it.
		gen = info.Generation
	}
	if err := writeGeneration(n.dataDir, n.genSealer, gen, roleByteFor(ok, role)); err != nil {
		return nil, err
	}
	if err := n.openReplicable(opts); err != nil {
		return nil, err
	}
	n.role, n.gen = kvnet.RoleReplica, gen
	for i := 0; i < n.shards; i++ {
		n.applierWG.Add(1)
		go n.applyLoop(i)
	}
	return n, nil
}

// roleByteFor keeps an ex-primary's directory marked primary until the
// fencing handshake resolves it; everything else is a replica.
func roleByteFor(ok bool, stored byte) byte {
	if ok && stored == storedPrimary {
		return storedPrimary
	}
	return storedReplica
}

// bootstrapSnapshots seeds every still-fresh shard lineage from the
// primary's newest sealed snapshot, written verbatim — the replica's
// own sealer verifies it during recovery. A primary without a snapshot
// (or without WAL pruning) simply streams from sequence one.
func (n *Node) bootstrapSnapshots() error {
	for i := 0; i < n.shards; i++ {
		dir := lineageDir(n.dataDir, n.shards, i)
		segs, err := wal.Segments(dir)
		if err != nil {
			return err
		}
		snaps, err := wal.ListSnapshots(dir)
		if err != nil {
			return err
		}
		if len(segs) > 0 || len(snaps) > 0 {
			continue // existing lineage resumes from its own log
		}
		covered, data, err := kvnet.FetchSnapshot(n.primaryAddr, uint32(i), n.cfg.DialTimeout)
		if errors.Is(err, aria.ErrNotFound) {
			continue // primary has no snapshot; stream the full WAL
		}
		if err != nil {
			return fmt.Errorf("repl: snapshot bootstrap for shard %d: %w", i, err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		final := filepath.Join(dir, wal.SnapshotName(covered))
		tmp := final + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, final); err != nil {
			os.Remove(tmp)
			return err
		}
		n.logf("repl: shard %d: bootstrapped from snapshot covering seq %d (%d bytes)", i, covered, len(data))
	}
	return nil
}

// fetchReplStatus asks addr for its replication state over a throwaway
// connection.
func fetchReplStatus(addr string, timeout time.Duration) (kvnet.ReplInfo, error) {
	c, err := kvnet.DialConfig(addr, kvnet.ClientConfig{
		Retry:       kvnet.NoRetry(),
		DialTimeout: timeout,
		OpTimeout:   timeout,
	})
	if err != nil {
		return kvnet.ReplInfo{}, err
	}
	defer c.Close()
	return c.ReplStatus()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Store returns the node's underlying store, for serving through kvnet
// (pass the node itself as ServerConfig.Repl).
func (n *Node) Store() aria.Store { return n.store }

// commitWake is the store's commit hook: wake every publisher loop.
func (n *Node) commitWake() {
	n.wakeMu.Lock()
	close(n.wakeCh)
	n.wakeCh = make(chan struct{})
	n.wakeMu.Unlock()
}

// wakeChan returns the channel the next commit will close.
func (n *Node) wakeChan() <-chan struct{} {
	n.wakeMu.Lock()
	defer n.wakeMu.Unlock()
	return n.wakeCh
}

// ---- kvnet.ReplBackend -----------------------------------------------------------

// Role implements kvnet.ReplBackend.
func (n *Node) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Generation implements kvnet.ReplBackend.
func (n *Node) Generation() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gen
}

// Shards implements kvnet.ReplBackend.
func (n *Node) Shards() int { return n.shards }

// AppliedSeq implements kvnet.ReplBackend: the highest sequence number
// shard has committed locally (fresh lineages report zero).
func (n *Node) AppliedSeq(shard uint32) uint64 {
	if int(shard) >= n.shards {
		return 0
	}
	return n.rep.WALShardNextSeq(int(shard)) - 1
}

// Watermark implements kvnet.ReplBackend: the sequence number covering
// a write that just committed on shard.
func (n *Node) Watermark(shard uint32) uint64 { return n.AppliedSeq(shard) }

// ShardForKey implements kvnet.ReplBackend with the same hash router
// the sharded store uses, so a key's watermark names the WAL lineage
// its write actually landed in.
func (n *Node) ShardForKey(key []byte) uint32 { return uint32(n.router.Pick(key)) }

// Lag implements kvnet.ReplBackend: a replica's largest per-shard gap
// between the publisher's last advertised sequence and the locally
// applied one. A primary reports zero.
func (n *Node) Lag() uint64 {
	n.mu.Lock()
	role := n.role
	next := make([]uint64, len(n.primaryNext))
	copy(next, n.primaryNext)
	n.mu.Unlock()
	if role != kvnet.RoleReplica {
		return 0
	}
	var lag uint64
	for i, pn := range next {
		if pn == 0 {
			continue // no heartbeat yet
		}
		if applied := n.AppliedSeq(uint32(i)); pn-1 > applied && pn-1-applied > lag {
			lag = pn - 1 - applied
		}
	}
	return lag
}

// WaitCommitted implements kvnet.ReplBackend: with SyncReplicas
// configured, block until that many subscribers acked seq on shard.
func (n *Node) WaitCommitted(shard uint32, seq uint64) error {
	if n.cfg.SyncReplicas <= 0 || int(shard) >= n.shards {
		return nil
	}
	a := n.acks[shard]
	timer := time.NewTimer(n.cfg.WaitTimeout)
	defer timer.Stop()
	for {
		a.mu.Lock()
		count := 0
		for _, s := range a.acked {
			if s >= seq {
				count++
			}
		}
		bump := a.bump
		a.mu.Unlock()
		if count >= n.cfg.SyncReplicas {
			return nil
		}
		select {
		case <-bump:
		case <-timer.C:
			return fmt.Errorf("repl: %d/%d sync replicas acked seq %d on shard %d within %v",
				count, n.cfg.SyncReplicas, seq, shard, n.cfg.WaitTimeout)
		case <-n.closeC:
			return errors.New("repl: node closing")
		}
	}
}

// SnapshotPath implements kvnet.ReplBackend: the newest sealed
// snapshot file for shard, or aria.ErrNotFound.
func (n *Node) SnapshotPath(shard uint32) (string, uint64, error) {
	if int(shard) >= n.shards {
		return "", 0, fmt.Errorf("repl: unknown shard %d", shard)
	}
	snaps, err := wal.ListSnapshots(n.rep.WALShardDir(int(shard)))
	if err != nil {
		return "", 0, err
	}
	if len(snaps) == 0 {
		return "", 0, fmt.Errorf("repl: no snapshot for shard %d: %w", shard, aria.ErrNotFound)
	}
	return snaps[0].Path, snaps[0].Covered, nil
}

// ---- role transitions ------------------------------------------------------------

// Promote turns a live replica into the primary: appliers stop, the
// generation advances past every generation this node has seen, and
// the new role is sealed into the data directory before writes are
// accepted. The ex-primary, if it ever comes back, presents the old
// generation and is fenced.
func (n *Node) Promote() error {
	n.mu.Lock()
	if n.role != kvnet.RoleReplica {
		role := n.role
		n.mu.Unlock()
		return fmt.Errorf("repl: cannot promote a %s node", role)
	}
	n.mu.Unlock()

	// Stop the appliers first so no stream apply races the role flip.
	n.stopOnce.Do(func() { close(n.stopC) })
	n.applierWG.Wait()

	n.mu.Lock()
	gen := n.gen
	if n.primaryGen > gen {
		gen = n.primaryGen
	}
	gen++
	if err := writeGeneration(n.dataDir, n.genSealer, gen, storedPrimary); err != nil {
		n.mu.Unlock()
		return err
	}
	n.gen = gen
	n.role = kvnet.RolePrimary
	n.mu.Unlock()
	n.rep.SetCommitHook(n.commitWake)
	n.met.promoted()
	n.logf("repl: promoted to primary at generation %d", gen)
	return nil
}

// becomeFenced seals the fenced role into the data directory and stops
// serving. Called from publisher or applier goroutines, so it signals
// the appliers without waiting for them.
func (n *Node) becomeFenced(newerGen uint64) {
	n.mu.Lock()
	if n.role == kvnet.RoleFenced {
		n.mu.Unlock()
		return
	}
	n.role = kvnet.RoleFenced
	gen := n.gen
	n.mu.Unlock()
	if err := writeGeneration(n.dataDir, n.genSealer, gen, storedFenced); err != nil {
		n.logf("repl: persisting fenced role failed: %v", err)
	}
	n.stopOnce.Do(func() { close(n.stopC) })
	n.logf("repl: fenced by generation %d (ours: %d); re-seed this node", newerGen, gen)
}

// stopped reports whether the appliers were told to stop.
func (n *Node) stopped() bool {
	select {
	case <-n.stopC:
		return true
	case <-n.closeC:
		return true
	default:
		return false
	}
}

// Close stops replication and closes the store.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { close(n.closeC) })
	n.stopOnce.Do(func() { close(n.stopC) })
	n.applierWG.Wait()
	if n.rep != nil {
		n.rep.SetCommitHook(nil)
	}
	if d, ok := n.store.(aria.Durable); ok {
		return d.Close()
	}
	return nil
}
