// The replication chaos suite: real stores, real TCP, kill/promote/
// fence/heal cycles. The headline gate is zero acknowledged-write
// loss — every write the primary acked under synchronous replication
// must be readable from the promoted replica — plus the typed fencing
// sentinel surviving the wire from an ex-primary.
package repl_test

import (
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet"
	"github.com/ariakv/aria/kvnet/chaos"
	"github.com/ariakv/aria/repl"
)

func testOpts(dir string, shards int) aria.Options {
	return aria.Options{
		Scheme:       aria.AriaHash,
		EPCBytes:     16 << 20,
		ExpectedKeys: 4096,
		Seed:         7,
		Shards:       shards,
		DataDir:      dir,
		// The suite measures replication latency, not disk latency.
		Fsync: aria.FsyncNever,
	}
}

// fastCfg keeps the suite quick: tight heartbeats and redials.
func fastCfg() repl.Config {
	return repl.Config{
		AckEvery:      1,
		RedialBackoff: 20 * time.Millisecond,
		PollInterval:  5 * time.Millisecond,
		DialTimeout:   2 * time.Second,
		StreamTimeout: 2 * time.Second,
		WaitTimeout:   5 * time.Second,
	}
}

// serveNode exposes a node over kvnet on a fresh loopback port (or on
// addr when non-empty, for restarts on a stable address).
func serveNode(t *testing.T, n *repl.Node, addr string) (*kvnet.Server, string) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv := kvnet.NewServerConfig(n.Store(), kvnet.ServerConfig{
		Repl: n,
		// Lingering test clients should not stall every server Close for
		// the default drain window.
		DrainTimeout: 250 * time.Millisecond,
	})
	srv.SetLogf(func(string, ...any) {})
	var lis net.Listener
	var err error
	// A just-closed listener's port can linger briefly; retry the bind.
	for i := 0; i < 50; i++ {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	return srv, lis.Addr().String()
}

func dial(t *testing.T, addr string) *kvnet.Client {
	t.Helper()
	c, err := kvnet.DialConfig(addr, kvnet.ClientConfig{Retry: kvnet.NoRetry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ackedWrite is one write the primary acknowledged, with the watermark
// the client must be able to read it back at.
type ackedWrite struct {
	key, val string
	wm       kvnet.Watermark
}

// TestReplicationBasics: a replica applies the primary's stream, serves
// watermarked reads, and reports its role over the wire.
func TestReplicationBasics(t *testing.T) {
	pDir, rDir := t.TempDir(), t.TempDir()
	primary, err := repl.OpenPrimary(testOpts(pDir, 2), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pSrv, pAddr := serveNode(t, primary, "")
	defer pSrv.Close()

	replica, err := repl.OpenReplica(testOpts(rDir, 2), pAddr, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	rSrv, rAddr := serveNode(t, replica, "")
	defer rSrv.Close()

	pc, rc := dial(t, pAddr), dial(t, rAddr)
	var writes []ackedWrite
	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i)
		wm, err := pc.PutW([]byte(k), []byte(v))
		if err != nil {
			t.Fatalf("PutW %s: %v", k, err)
		}
		writes = append(writes, ackedWrite{k, v, wm})
	}
	// Read-your-writes on the replica: wait out the lag per watermark,
	// then the value must match.
	for _, w := range writes {
		var got []byte
		waitFor(t, 10*time.Second, "replica to apply "+w.key, func() bool {
			v, err := rc.GetAt([]byte(w.key), []kvnet.Watermark{w.wm})
			if errors.Is(err, kvnet.ErrLagging) {
				return false
			}
			if err != nil {
				t.Fatalf("GetAt %s: %v", w.key, err)
			}
			got = v
			return true
		})
		if string(got) != w.val {
			t.Fatalf("replica %s = %q, want %q", w.key, got, w.val)
		}
	}
	// Deletes replicate too.
	wm, err := pc.DeleteW([]byte("key-000"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "replica to apply the delete", func() bool {
		_, err := rc.GetAt([]byte("key-000"), []kvnet.Watermark{wm})
		return errors.Is(err, kvnet.ErrNotFound)
	})
	// The replica rejects writes with the typed sentinel.
	if err := rc.Put([]byte("x"), []byte("y")); !errors.Is(err, aria.ErrReadOnlyReplica) {
		t.Fatalf("replica write: got %v, want ErrReadOnlyReplica", err)
	}
	// Roles and generations over the wire.
	pi, err := pc.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	ri, err := rc.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if pi.Role != kvnet.RolePrimary || ri.Role != kvnet.RoleReplica {
		t.Fatalf("roles = %s/%s", pi.Role, ri.Role)
	}
	if pi.Generation != ri.Generation {
		t.Fatalf("generations diverge: %d vs %d", pi.Generation, ri.Generation)
	}
}

// TestFailoverZeroAckedWriteLoss is the headline chaos gate. Two
// kill-promote-fence-reseed cycles: under SyncReplicas=1, every
// acknowledged write must be readable from the promoted replica at its
// watermark, and the fenced ex-primary must reject late traffic with
// the typed sentinel across the wire.
func TestFailoverZeroAckedWriteLoss(t *testing.T) {
	cfg := fastCfg()
	cfg.SyncReplicas = 1

	dirA, dirB := t.TempDir(), t.TempDir()
	nodeA, err := repl.OpenPrimary(testOpts(dirA, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srvA, addrA := serveNode(t, nodeA, "")

	nodeB, err := repl.OpenReplica(testOpts(dirB, 1), addrA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srvB, addrB := serveNode(t, nodeB, "")

	// Roles rotate per cycle: p* is the current primary, r* the replica.
	pNode, pSrv, pAddr, pDir := nodeA, srvA, addrA, dirA
	rNode, rSrv, rAddr, rDir := nodeB, srvB, addrB, dirB

	var acked []ackedWrite
	for cycle := 0; cycle < 2; cycle++ {
		pc := dial(t, pAddr)
		for i := 0; i < 25; i++ {
			k := fmt.Sprintf("c%d-key-%03d", cycle, i)
			v := fmt.Sprintf("c%d-val-%03d", cycle, i)
			wm, err := pc.PutW([]byte(k), []byte(v))
			if err != nil {
				t.Fatalf("cycle %d PutW %s: %v", cycle, k, err)
			}
			// SyncReplicas=1: this ack means the replica applied it.
			acked = append(acked, ackedWrite{k, v, wm})
		}

		// Kill the primary, hard: server gone, store closed.
		pSrv.Close()
		if err := pNode.Close(); err != nil {
			t.Fatalf("cycle %d: close primary: %v", cycle, err)
		}

		// The replica must already hold every acked write — check before
		// promotion through the replica read path (watermarked reads).
		rc := dial(t, rAddr)
		for _, w := range acked {
			v, err := rc.GetAt([]byte(w.key), []kvnet.Watermark{w.wm})
			if err != nil {
				t.Fatalf("cycle %d: acked write %s lost before promote: %v", cycle, w.key, err)
			}
			if string(v) != w.val {
				t.Fatalf("cycle %d: acked write %s = %q, want %q", cycle, w.key, v, w.val)
			}
		}

		// Promote. The node keeps serving on the same address.
		if err := rNode.Promote(); err != nil {
			t.Fatalf("cycle %d: promote: %v", cycle, err)
		}
		for _, w := range acked {
			v, err := rc.GetAt([]byte(w.key), []kvnet.Watermark{w.wm})
			if err != nil {
				t.Fatalf("cycle %d: acked write %s lost after promote: %v", cycle, w.key, err)
			}
			if string(v) != w.val {
				t.Fatalf("cycle %d: acked write %s corrupted after promote", cycle, w.key)
			}
		}

		// The ex-primary comes back as a would-be replica of the new
		// primary. Its stale sealed generation gets it fenced on the
		// first subscribe, and the fenced role rejects reads and writes
		// with the typed sentinel — across the wire.
		exNode, err := repl.OpenReplica(testOpts(pDir, 1), rAddr, fastCfg())
		if err != nil {
			t.Fatalf("cycle %d: reopen ex-primary: %v", cycle, err)
		}
		waitFor(t, 10*time.Second, "ex-primary to fence itself", func() bool {
			return exNode.Role() == kvnet.RoleFenced
		})
		exSrv, exAddr := serveNode(t, exNode, "")
		exc := dial(t, exAddr)
		if err := exc.Put([]byte("late-write"), []byte("doomed")); !errors.Is(err, aria.ErrFenced) || !errors.Is(err, kvnet.ErrFenced) {
			t.Fatalf("cycle %d: late write to fenced ex-primary: got %v, want ErrFenced", cycle, err)
		}
		if _, err := exc.Get([]byte(acked[0].key)); !errors.Is(err, aria.ErrFenced) {
			t.Fatalf("cycle %d: read from fenced ex-primary: got %v, want ErrFenced", cycle, err)
		}
		exSrv.Close()
		exNode.Close()
		// A fenced directory refuses both roles until re-seeded.
		if _, err := repl.OpenPrimary(testOpts(pDir, 1), fastCfg()); !errors.Is(err, aria.ErrFenced) {
			t.Fatalf("cycle %d: fenced dir reopened as primary: %v", cycle, err)
		}

		// Re-seed: wipe the directory and rejoin as a clean replica.
		if err := os.RemoveAll(pDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(pDir, 0o755); err != nil {
			t.Fatal(err)
		}
		newReplica, err := repl.OpenReplica(testOpts(pDir, 1), rAddr, cfg)
		if err != nil {
			t.Fatalf("cycle %d: re-seed replica: %v", cycle, err)
		}
		newSrv, newAddr := serveNode(t, newReplica, "")

		// Swap roles for the next cycle (one tuple assignment: the RHS is
		// evaluated before anything moves). The promoted node's sync
		// writes only succeed once the re-seeded replica is streaming,
		// which the next cycle's first PutW implicitly waits for.
		pNode, pSrv, pAddr, pDir, rNode, rSrv, rAddr, rDir =
			rNode, rSrv, rAddr, rDir, newReplica, newSrv, newAddr, pDir
		t.Logf("cycle %d complete: %d acked writes verified", cycle, len(acked))
	}
	pSrv.Close()
	pNode.Close()
	rSrv.Close()
	rNode.Close()
}

// TestStalenessBoundAcrossPartition: a watermarked read on a
// partitioned replica answers the typed lagging sentinel (never stale
// data), and converges once the partition heals.
func TestStalenessBoundAcrossPartition(t *testing.T) {
	pDir, rDir := t.TempDir(), t.TempDir()
	primary, err := repl.OpenPrimary(testOpts(pDir, 1), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pSrv, pAddr := serveNode(t, primary, "")
	defer pSrv.Close()

	// The replica reaches the primary only through the fault proxy.
	proxy, err := chaos.New(pAddr, chaos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	replica, err := repl.OpenReplica(testOpts(rDir, 1), proxy.Addr(), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	rSrv, rAddr := serveNode(t, replica, "")
	defer rSrv.Close()

	pc, rc := dial(t, pAddr), dial(t, rAddr)
	wm1, err := pc.PutW([]byte("before"), []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "replica to apply the first write", func() bool {
		_, err := rc.GetAt([]byte("before"), []kvnet.Watermark{wm1})
		return err == nil
	})

	proxy.Partition()
	wm2, err := pc.PutW([]byte("during"), []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	// The replica cannot have it; the watermark makes that a typed
	// refusal instead of silently stale data.
	if _, err := rc.GetAt([]byte("during"), []kvnet.Watermark{wm2}); !errors.Is(err, aria.ErrLagging) {
		t.Fatalf("partitioned watermark read: got %v, want ErrLagging", err)
	}
	// Unwatermarked reads still serve (stale by contract).
	if _, err := rc.Get([]byte("before")); err != nil {
		t.Fatalf("stale read during partition: %v", err)
	}

	proxy.Heal()
	var got []byte
	waitFor(t, 15*time.Second, "replica to converge after heal", func() bool {
		v, err := rc.GetAt([]byte("during"), []kvnet.Watermark{wm2})
		if err != nil {
			return false
		}
		got = v
		return true
	})
	if string(got) != "v2" {
		t.Fatalf("converged value = %q", got)
	}
}

// TestLinkFlapConvergence: writes racing repeated partition/heal cycles
// all make it to the replica once the link settles.
func TestLinkFlapConvergence(t *testing.T) {
	pDir, rDir := t.TempDir(), t.TempDir()
	primary, err := repl.OpenPrimary(testOpts(pDir, 1), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pSrv, pAddr := serveNode(t, primary, "")
	defer pSrv.Close()

	proxy, err := chaos.New(pAddr, chaos.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	replica, err := repl.OpenReplica(testOpts(rDir, 1), proxy.Addr(), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	rSrv, rAddr := serveNode(t, replica, "")
	defer rSrv.Close()

	pc, rc := dial(t, pAddr), dial(t, rAddr)
	done := make(chan struct{})
	go func() {
		defer close(done)
		proxy.Flap(4, 40*time.Millisecond, 60*time.Millisecond)
	}()
	var writes []ackedWrite
	for i := 0; i < 60; i++ {
		k, v := fmt.Sprintf("flap-%03d", i), fmt.Sprintf("v-%03d", i)
		wm, err := pc.PutW([]byte(k), []byte(v))
		if err != nil {
			t.Fatalf("PutW %s: %v", k, err)
		}
		writes = append(writes, ackedWrite{k, v, wm})
		time.Sleep(5 * time.Millisecond)
	}
	<-done
	for _, w := range writes {
		var got []byte
		waitFor(t, 15*time.Second, "replica to apply "+w.key, func() bool {
			v, err := rc.GetAt([]byte(w.key), []kvnet.Watermark{w.wm})
			if err != nil {
				return false
			}
			got = v
			return true
		})
		if string(got) != w.val {
			t.Fatalf("%s = %q, want %q", w.key, got, w.val)
		}
	}
}

// TestGracefulDrainRedial: closing the serving frontend mid-stream (the
// node stays up) sends the subscriber a typed drain notice; when a new
// frontend binds the same address, replication resumes without loss.
func TestGracefulDrainRedial(t *testing.T) {
	pDir, rDir := t.TempDir(), t.TempDir()
	primary, err := repl.OpenPrimary(testOpts(pDir, 1), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pSrv, pAddr := serveNode(t, primary, "")

	replica, err := repl.OpenReplica(testOpts(rDir, 1), pAddr, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	rSrv, rAddr := serveNode(t, replica, "")
	defer rSrv.Close()

	pc, rc := dial(t, pAddr), dial(t, rAddr)
	wm, err := pc.PutW([]byte("pre-drain"), []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "replica to apply pre-drain write", func() bool {
		_, err := rc.GetAt([]byte("pre-drain"), []kvnet.Watermark{wm})
		return err == nil
	})

	// Drain the primary's frontend; the replica applier sees stDraining
	// and starts redialing the same address.
	pSrv.Close()
	pSrv, _ = serveNode(t, primary, pAddr)
	defer pSrv.Close()

	pc2 := dial(t, pAddr)
	wm2, err := pc2.PutW([]byte("post-drain"), []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "replica to resume after drain", func() bool {
		v, err := rc.GetAt([]byte("post-drain"), []kvnet.Watermark{wm2})
		return err == nil && string(v) == "v2"
	})
}

// TestSnapshotBootstrap: after a checkpoint prunes the primary's WAL, a
// fresh replica must bootstrap from the sealed snapshot and then tail
// the remaining log; a subscriber below the pruned horizon is told to
// re-seed via the snapshot notice.
func TestSnapshotBootstrap(t *testing.T) {
	pDir, rDir := t.TempDir(), t.TempDir()
	primary, err := repl.OpenPrimary(testOpts(pDir, 1), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pSrv, pAddr := serveNode(t, primary, "")
	defer pSrv.Close()

	pc := dial(t, pAddr)
	for i := 0; i < 30; i++ {
		if err := pc.Put([]byte(fmt.Sprintf("snap-%03d", i)), []byte(fmt.Sprintf("v-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Two checkpoint generations: retention keeps the previous snapshot
	// as a fallback, so pruning only reaches past history after the
	// second checkpoint.
	if err := pc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 35; i++ {
		if err := pc.Put([]byte(fmt.Sprintf("snap-%03d", i)), []byte(fmt.Sprintf("v-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var postWMs []kvnet.Watermark
	for i := 35; i < 40; i++ {
		wm, err := pc.PutW([]byte(fmt.Sprintf("snap-%03d", i)), []byte(fmt.Sprintf("v-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		postWMs = append(postWMs, wm)
	}

	// A subscriber claiming a position below the pruned horizon gets the
	// snapshot notice, not a silent gap.
	info, err := pc.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := kvnet.DialSubscribe(pAddr, 0, 1, info.Generation, true, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sub.Next(2 * time.Second)
	sub.Close()
	if err != nil || ev.Kind != kvnet.EvSnapshotNeeded {
		t.Fatalf("pruned-horizon subscribe: ev=%+v err=%v, want EvSnapshotNeeded", ev, err)
	}
	if ev.Seq == 0 {
		t.Fatal("snapshot notice carries no covered seq")
	}

	// A fresh replica bootstraps: snapshot transfer, then WAL tail.
	replica, err := repl.OpenReplica(testOpts(rDir, 1), pAddr, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	rSrv, rAddr := serveNode(t, replica, "")
	defer rSrv.Close()
	rc := dial(t, rAddr)
	waitFor(t, 15*time.Second, "bootstrapped replica to catch up", func() bool {
		_, err := rc.GetAt([]byte("snap-039"), postWMs[len(postWMs)-1:])
		return err == nil
	})
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("snap-%03d", i)
		v, err := rc.Get([]byte(k))
		if err != nil {
			t.Fatalf("replica missing %s after snapshot bootstrap: %v", k, err)
		}
		if want := fmt.Sprintf("v-%03d", i); string(v) != want {
			t.Fatalf("replica %s = %q, want %q", k, v, want)
		}
	}
}

// TestReplicaRestartResumes: a cleanly restarted replica resumes from
// its own durable log end instead of re-streaming from scratch.
func TestReplicaRestartResumes(t *testing.T) {
	pDir, rDir := t.TempDir(), t.TempDir()
	primary, err := repl.OpenPrimary(testOpts(pDir, 1), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pSrv, pAddr := serveNode(t, primary, "")
	defer pSrv.Close()
	pc := dial(t, pAddr)

	replica, err := repl.OpenReplica(testOpts(rDir, 1), pAddr, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	wm, err := pc.PutW([]byte("phase-1"), []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "replica to apply phase 1", func() bool {
		return replica.AppliedSeq(0) >= wm.Seq
	})
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	// Writes land while the replica is down.
	wm2, err := pc.PutW([]byte("phase-2"), []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}

	replica2, err := repl.OpenReplica(testOpts(rDir, 1), pAddr, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer replica2.Close()
	rSrv, rAddr := serveNode(t, replica2, "")
	defer rSrv.Close()
	rc := dial(t, rAddr)
	waitFor(t, 10*time.Second, "restarted replica to catch up", func() bool {
		v, err := rc.GetAt([]byte("phase-2"), []kvnet.Watermark{wm2})
		return err == nil && string(v) == "v2"
	})
	if v, err := rc.Get([]byte("phase-1")); err != nil || string(v) != "v1" {
		t.Fatalf("phase-1 after restart = %q, %v", v, err)
	}
}
