package repl

import (
	"errors"
	"io"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/internal/seal"
	"github.com/ariakv/aria/kvnet"
	"github.com/ariakv/aria/wal"
)

// shardSealer builds the verifier sealer for one WAL lineage, matching
// the per-shard seed offset the sharded store derives.
func (n *Node) shardSealer(shardIdx int) *seal.Sealer {
	if n.shards > 1 {
		return seal.New(n.seed + uint64(shardIdx))
	}
	return seal.New(n.seed)
}

// sleep waits d or until the appliers are told to stop.
func (n *Node) sleep(d time.Duration) {
	select {
	case <-n.stopC:
	case <-n.closeC:
	case <-time.After(d):
	}
}

// applyLoop is a replica's per-shard applier: it subscribes to the
// primary from the local log end and replays the stream until told to
// stop, redialing after transient failures. Terminal conditions —
// fencing, pruned history, divergence — end the loop for good.
func (n *Node) applyLoop(shardIdx int) {
	defer n.applierWG.Done()
	for !n.stopped() {
		applied := n.rep.WALShardNextSeq(shardIdx) - 1
		n.met.redial()
		sub, err := kvnet.DialSubscribe(n.primaryAddr, uint32(shardIdx), applied, n.Generation(), true, n.cfg.DialTimeout)
		if err != nil {
			n.logf("repl: shard %d: dial %s: %v", shardIdx, n.primaryAddr, err)
			n.sleep(n.cfg.RedialBackoff)
			continue
		}
		done := n.applyStream(shardIdx, sub)
		sub.Close()
		if done {
			return
		}
		n.sleep(n.cfg.RedialBackoff)
	}
}

// applyStream drains one subscribe stream, verifying every record with
// the replica's own sealer and applying each exactly once through the
// normal write path (which re-seals it into the replica's WAL under
// the same sequence number). It returns true when the applier should
// stop for good, false to redial.
func (n *Node) applyStream(shardIdx int, sub *kvnet.Subscription) (done bool) {
	v := wal.NewStreamVerifier(n.shardSealer(shardIdx))
	applied := n.rep.WALShardNextSeq(shardIdx) - 1
	lastAcked := applied
	ack := func() bool {
		if err := sub.Ack(uint32(shardIdx), applied); err != nil {
			return false
		}
		lastAcked = applied
		return true
	}
	for {
		if n.stopped() {
			return true
		}
		ev, err := sub.Next(n.cfg.StreamTimeout)
		switch {
		case err == nil:
		case errors.Is(err, aria.ErrFenced):
			n.becomeFenced(0)
			return true
		case errors.Is(err, kvnet.ErrDraining):
			n.logf("repl: shard %d: publisher draining; redialing", shardIdx)
			return false
		case errors.Is(err, io.EOF):
			return false
		default:
			n.logf("repl: shard %d: stream: %v", shardIdx, err)
			return false
		}
		switch ev.Kind {
		case kvnet.EvSegStart:
			v.StartSegment(ev.Seq)
		case kvnet.EvRecord:
			seq, payload, verr := v.Verify(ev.Rec)
			if verr != nil {
				n.logf("repl: shard %d: record failed verification: %v", shardIdx, verr)
				return false
			}
			if seq <= applied {
				continue // already applied on a previous stream
			}
			if seq != applied+1 {
				n.logf("repl: shard %d: gap: got seq %d, want %d", shardIdx, seq, applied+1)
				return false
			}
			if aerr := aria.ApplyWALPayload(n.store, payload); aerr != nil {
				// The stream verified but the state disagrees: this
				// replica has diverged. Loud stop; re-seed it.
				n.logf("repl: shard %d: APPLY DIVERGENCE at seq %d: %v", shardIdx, seq, aerr)
				return true
			}
			applied = seq
			n.noteApplied(shardIdx)
			if applied-lastAcked >= n.cfg.AckEvery && !ack() {
				return false
			}
		case kvnet.EvHeartbeat:
			n.notePrimaryNext(shardIdx, ev.Seq)
			// Ack only if we advanced since the last ack, so an idle
			// heartbeat does not echo into an ack/recompute spin.
			if lastAcked != applied && !ack() {
				return false
			}
		case kvnet.EvSnapshotNeeded:
			n.logf("repl: shard %d: primary pruned history past our position (snapshot covers seq %d); re-seed this replica",
				shardIdx, ev.Seq)
			return true
		}
	}
}

// notePrimaryNext records the publisher's advertised next sequence for
// lag accounting and refreshes the lag gauge.
func (n *Node) notePrimaryNext(shardIdx int, next uint64) {
	n.mu.Lock()
	n.primaryNext[shardIdx] = next
	n.mu.Unlock()
	n.met.setLag(n.Lag())
}

// noteApplied refreshes the lag gauge after an apply.
func (n *Node) noteApplied(int) {
	n.met.setLag(n.Lag())
}
