// Replication of the transactional record shapes: CAS results, TTL
// deadlines, and multi-key group commits must reach the replica as the
// same atomic units the primary logged, and survive promotion.
package repl_test

import (
	"errors"
	"testing"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet"
	"github.com/ariakv/aria/repl"
)

func TestReplicationTxnAndTTL(t *testing.T) {
	pDir, rDir := t.TempDir(), t.TempDir()
	primary, err := repl.OpenPrimary(testOpts(pDir, 2), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pSrv, pAddr := serveNode(t, primary, "")
	defer pSrv.Close()

	replica, err := repl.OpenReplica(testOpts(rDir, 2), pAddr, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	rSrv, rAddr := serveNode(t, replica, "")
	defer rSrv.Close()

	pc, rc := dial(t, pAddr), dial(t, rAddr)

	// CAS lineage: the version-checked write replays as a plain put on
	// the replica.
	wm, err := pc.PutW([]byte("acct"), []byte("100"))
	if err != nil {
		t.Fatal(err)
	}
	_, ver, err := pc.GetV([]byte("acct"))
	if err != nil {
		t.Fatal(err)
	}
	if wm, err = pc.CompareAndSwapW([]byte("acct"), []byte("90"), ver); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "replica to apply the CAS write", func() bool {
		v, gerr := rc.GetAt([]byte("acct"), []kvnet.Watermark{wm})
		return gerr == nil && string(v) == "90"
	})

	// TTL lineage: the sealed absolute deadline ships verbatim; both
	// sides agree the key is live now.
	if wm, err = pc.PutTTLW([]byte("lease"), []byte("held"), time.Hour); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "replica to apply the TTL write", func() bool {
		v, gerr := rc.GetAt([]byte("lease"), []kvnet.Watermark{wm})
		return gerr == nil && string(v) == "held"
	})

	// Txn lineage: a multi-key commit spanning both WAL shards lands on
	// the replica as a unit — every write readable at the txn's
	// watermarks.
	ops := []aria.TxnOp{
		{Key: []byte("acct"), Value: []byte("80"), Check: true, Version: ver + 1},
		{Key: []byte("journal"), Value: []byte("acct-10")},
		{Key: []byte("hold"), Value: []byte("x"), TTL: time.Hour},
	}
	marks, err := pc.TxnCommitW(ops)
	if err != nil {
		t.Fatalf("TxnCommitW: %v", err)
	}
	for key, want := range map[string]string{"acct": "80", "journal": "acct-10", "hold": "x"} {
		waitFor(t, 10*time.Second, "replica to apply txn write "+key, func() bool {
			v, gerr := rc.GetAt([]byte(key), marks)
			return gerr == nil && string(v) == want
		})
	}

	// The replica refuses transactional writes with the fencing
	// sentinel, like any other write.
	if err := rc.CompareAndSwap([]byte("acct"), []byte("0"), 1); !errors.Is(err, aria.ErrReadOnlyReplica) {
		t.Fatalf("replica CAS: %v, want ErrReadOnlyReplica", err)
	}
	if err := rc.PutTTL([]byte("x"), []byte("y"), time.Minute); !errors.Is(err, aria.ErrReadOnlyReplica) {
		t.Fatalf("replica PutTTL: %v, want ErrReadOnlyReplica", err)
	}
	if err := rc.TxnCommit(ops); !errors.Is(err, aria.ErrReadOnlyReplica) {
		t.Fatalf("replica TxnCommit: %v, want ErrReadOnlyReplica", err)
	}

	// After promotion the replica owns the lineage: a CAS against the
	// replayed version succeeds there.
	if err := replica.Promote(); err != nil {
		t.Fatal(err)
	}
	_, pver, err := rc.GetV([]byte("acct"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.CompareAndSwap([]byte("acct"), []byte("70"), pver); err != nil {
		t.Fatalf("CAS on the promoted replica: %v", err)
	}
}
