// Package repl replicates a durable aria store to read replicas by
// shipping its sealed WAL over kvnet, with operator-driven fenced
// failover. The primary publishes each shard's sealed segment bytes
// verbatim (the records authenticate themselves — the network is
// trusted exactly as much as the untrusted disk); replicas verify them
// with their own same-seed sealer and replay them through the normal
// write path, so a replica's own WAL re-seals the identical operations
// under the identical sequence numbers. Failover is explicit: an
// operator promotes one replica, which bumps a monotonic generation
// number sealed into the data directory and starts a fresh seal
// session epoch; an ex-primary that reconnects under the old
// generation is fenced with a typed sentinel (aria.ErrFenced) and must
// be re-seeded. Promotion is not consensus — the operator is the
// arbiter — but the generation handshake makes a fenced node harmless.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/ariakv/aria/internal/seal"
)

const (
	// genName is the generation file's name inside DataDir.
	genName = "repl-gen.seal"
	// saltGeneration is the generation record's keystream domain
	// ("ariaRGEN"), distinct from the manifest, WAL, and snapshot
	// domains.
	saltGeneration = 0x617269615247454e
	// genLabel seeds the generation record's (single-record) MAC chain.
	genLabel = "aria-repl-generation"
	// genMagic opens the generation payload.
	genMagic = "ariagen1"
)

// Stored roles (the third payload byte). The role is sealed alongside
// the generation so a fenced node stays fenced across restarts and an
// ex-primary's directory is recognizably not a clean replica's.
const (
	storedPrimary = byte(1)
	storedReplica = byte(2)
	storedFenced  = byte(3)
)

// readGeneration returns the generation and stored role recorded in
// dir; ok is false when no generation file exists. A file that fails
// verification is tampering.
func readGeneration(dir string, s *seal.Sealer) (gen uint64, role byte, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, genName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("repl: read generation: %w", err)
	}
	seq, payload, _, err := s.Open(saltGeneration, s.ChainInit(genLabel, 0), data)
	if err != nil || seq != 0 {
		return 0, 0, false, fmt.Errorf("repl: generation file failed verification: %w", seal.ErrTampered)
	}
	if len(payload) != len(genMagic)+9 || !strings.HasPrefix(string(payload), genMagic) {
		return 0, 0, false, fmt.Errorf("repl: generation file malformed: %w", seal.ErrTampered)
	}
	gen = binary.LittleEndian.Uint64(payload[len(genMagic):])
	role = payload[len(genMagic)+8]
	if gen == 0 || role < storedPrimary || role > storedFenced {
		return 0, 0, false, fmt.Errorf("repl: generation file malformed: %w", seal.ErrTampered)
	}
	return gen, role, true, nil
}

// writeGeneration atomically publishes dir's sealed generation record
// (write-temp + rename + directory fsync, like the shard manifest).
func writeGeneration(dir string, s *seal.Sealer, gen uint64, role byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("repl: create data dir: %w", err)
	}
	payload := make([]byte, len(genMagic)+9)
	copy(payload, genMagic)
	binary.LittleEndian.PutUint64(payload[len(genMagic):], gen)
	payload[len(genMagic)+8] = role
	rec, _ := s.Seal(0, saltGeneration, s.ChainInit(genLabel, 0), payload)
	final := filepath.Join(dir, genName)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, rec, 0o644); err != nil {
		return fmt.Errorf("repl: write generation: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("repl: publish generation: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // best-effort, as for snapshot renames
		d.Close()
	}
	return nil
}
