package repl

import (
	"github.com/ariakv/aria/obs"
)

// Replication metric family names. The catalogue rows live in
// docs/OPERATIONS.md; the parity test in this package keeps the two in
// sync, exactly as kvnet's does for its families.
const (
	metricLag        = "repl_lag_seq"
	metricBytes      = "repl_bytes_streamed_total"
	metricRedials    = "repl_redials_total"
	metricPromotions = "repl_promotions_total"
)

// metrics holds a node's instruments. A nil *metrics is valid and turns
// every method into a no-op, so call sites never branch on whether an
// obs registry was configured.
type metrics struct {
	lag        *obs.Gauge   // replica: max shard lag behind the primary
	bytes      *obs.Counter // primary: sealed record bytes streamed out
	redials    *obs.Counter // replica: subscribe stream (re)dials
	promotions *obs.Counter // replica→primary promotions on this node
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		lag: reg.Gauge(metricLag,
			"Replica staleness: largest per-shard gap between the primary's last known sequence and the locally applied one.", nil),
		bytes: reg.Counter(metricBytes,
			"Sealed WAL record bytes streamed to subscribers.", nil),
		redials: reg.Counter(metricRedials,
			"Subscribe streams dialed, including the first dial and every redial after a drop.", nil),
		promotions: reg.Counter(metricPromotions,
			"Replica-to-primary promotions performed on this node.", nil),
	}
}

func (m *metrics) setLag(v uint64) {
	if m == nil {
		return
	}
	m.lag.Set(float64(v))
}

func (m *metrics) addBytes(n int) {
	if m == nil {
		return
	}
	m.bytes.Add(uint64(n))
}

func (m *metrics) redial() {
	if m == nil {
		return
	}
	m.redials.Inc()
}

func (m *metrics) promoted() {
	if m == nil {
		return
	}
	m.promotions.Inc()
}
