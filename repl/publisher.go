package repl

import (
	"fmt"
	"io"
	"time"

	"github.com/ariakv/aria"
	"github.com/ariakv/aria/kvnet"
	"github.com/ariakv/aria/wal"
)

// Subscribe implements kvnet.ReplBackend on the primary: stream one
// shard's sealed WAL to a subscriber, segment by segment from each
// segment's start (the record chain verifies only from there — the
// subscriber skips records it already applied). The generation
// handshake fences stale lineages in both directions before a single
// record moves:
//
//   - a subscriber presenting a NEWER generation proves a promotion
//     happened elsewhere, so this publisher fences itself;
//   - a subscriber presenting an OLDER generation with log history
//     (afterSeq > 0) is a fenced lineage and is refused;
//   - a subscriber claiming MORE history than the publisher has
//     diverged (an ex-primary's unshipped suffix) and is refused.
func (n *Node) Subscribe(shardIdx uint32, afterSeq, gen uint64, tail bool, acks <-chan uint64, stop <-chan struct{}, emit func(kvnet.ReplEvent) error) error {
	if int(shardIdx) >= n.shards {
		return fmt.Errorf("repl: unknown shard %d", shardIdx)
	}
	n.mu.Lock()
	role, ourGen := n.role, n.gen
	n.mu.Unlock()
	switch {
	case role == kvnet.RoleFenced:
		return fmt.Errorf("repl: publisher is fenced: %w", aria.ErrFenced)
	case role != kvnet.RolePrimary:
		return fmt.Errorf("repl: cannot subscribe to a %s node", role)
	case gen > ourGen:
		n.becomeFenced(gen)
		return fmt.Errorf("repl: superseded by generation %d: %w", gen, aria.ErrFenced)
	case gen < ourGen && afterSeq > 0:
		return fmt.Errorf("repl: subscriber generation %d predates %d: %w", gen, ourGen, aria.ErrFenced)
	case afterSeq > n.AppliedSeq(shardIdx):
		return fmt.Errorf("repl: subscriber at seq %d is ahead of the publisher (diverged lineage): %w",
			afterSeq, aria.ErrFenced)
	}

	id := n.subSeq.Add(1)
	a := n.acks[shardIdx]
	defer a.forget(id)
	drain := func() {
		for {
			select {
			case seq := <-acks:
				a.record(id, seq)
			default:
				return
			}
		}
	}
	// idle parks until something changes: a commit, an ack, stop, or
	// the poll interval (which also paces heartbeats).
	idle := func() bool {
		wake := n.wakeChan()
		select {
		case <-stop:
			return false
		case <-n.closeC:
			return false
		case seq := <-acks:
			a.record(id, seq)
		case <-wake:
		case <-time.After(n.cfg.PollInterval):
		}
		return true
	}

	dir := n.rep.WALShardDir(int(shardIdx))
	cursor := afterSeq // highest seq the subscriber is known to hold
	var reader *wal.SegmentReader
	var segFirst uint64  // current segment's first seq
	var streamSeq uint64 // seq of the next record the reader will yield
	defer func() {
		if reader != nil {
			reader.Close()
		}
	}()

	for {
		drain()
		select {
		case <-stop:
			return nil
		case <-n.closeC:
			return nil
		default:
		}
		// Another stream's handshake may have fenced this node mid-way.
		if n.Role() != kvnet.RolePrimary {
			return fmt.Errorf("repl: publisher fenced mid-stream: %w", aria.ErrFenced)
		}

		if reader == nil {
			next := n.rep.WALShardNextSeq(int(shardIdx))
			if cursor+1 >= next {
				// Caught up with no open segment: finite catch-up is
				// done; a tail stream heartbeats and parks.
				if !tail {
					return nil
				}
				if err := emit(kvnet.ReplEvent{Kind: kvnet.EvHeartbeat, Seq: next}); err != nil {
					return err
				}
				if !idle() {
					return nil
				}
				continue
			}
			segs, err := wal.Segments(dir)
			if err != nil {
				return err
			}
			var pick *wal.SegmentInfo
			for i := range segs {
				if segs[i].FirstSeq <= cursor+1 {
					pick = &segs[i]
				} else {
					break
				}
			}
			if pick == nil {
				// History before cursor+1 was pruned: the subscriber
				// must bootstrap from a snapshot instead.
				snaps, err := wal.ListSnapshots(dir)
				if err != nil {
					return err
				}
				var covered uint64
				if len(snaps) > 0 {
					covered = snaps[0].Covered
				}
				return emit(kvnet.ReplEvent{Kind: kvnet.EvSnapshotNeeded, Seq: covered})
			}
			r, err := wal.OpenSegment(pick.Path)
			if err != nil {
				return err
			}
			reader, segFirst, streamSeq = r, pick.FirstSeq, pick.FirstSeq
			if err := emit(kvnet.ReplEvent{Kind: kvnet.EvSegStart, Seq: segFirst}); err != nil {
				return err
			}
			continue
		}

		rec, err := reader.Next()
		switch {
		case err == io.EOF:
			// End of the visible bytes: either the log rotated past this
			// segment, or we are at the live tail (possibly mid-append).
			segs, serr := wal.Segments(dir)
			if serr != nil {
				return serr
			}
			var newer *wal.SegmentInfo
			for i := range segs {
				if segs[i].FirstSeq > segFirst {
					newer = &segs[i]
					break
				}
			}
			if newer != nil {
				if newer.FirstSeq != streamSeq {
					return fmt.Errorf("repl: segment at seq %d ends at %d before successor at %d: %w",
						segFirst, streamSeq-1, newer.FirstSeq, wal.ErrTampered)
				}
				reader.Close()
				reader = nil // rotate to the successor
				continue
			}
			// Live tail. Heartbeat when caught up, then wait for more.
			if tail && cursor+1 >= n.rep.WALShardNextSeq(int(shardIdx)) {
				if err := emit(kvnet.ReplEvent{Kind: kvnet.EvHeartbeat, Seq: cursor + 1}); err != nil {
					return err
				}
			} else if !tail && cursor+1 >= n.rep.WALShardNextSeq(int(shardIdx)) {
				return nil
			}
			if !idle() {
				return nil
			}
		case err != nil:
			return err // on-disk corruption below the publisher
		default:
			if err := emit(kvnet.ReplEvent{Kind: kvnet.EvRecord, Rec: rec}); err != nil {
				return err
			}
			n.met.addBytes(len(rec))
			cursor = streamSeq
			streamSeq++
		}
	}
}
