package aria

import (
	"errors"
	"sync"
	"time"

	"github.com/ariakv/aria/internal/sgx"
	"github.com/ariakv/aria/obs"
)

// This file wires the obs metrics registry through the store core. When
// Options.Metrics is nil (the default), none of this code runs: Open
// returns the raw store and the hot path is bit-identical to a build
// without metrics — the disabled-overhead guarantee is structural, not a
// branch (TestMetricsDisabledPathUnchanged asserts it, and the CI
// overhead guard benchmarks it).
//
// When a registry is supplied, every single-enclave store is wrapped in a
// meteredStore carrying a shard label ("0" for an unsharded store, the
// shard index under Options.Shards). The wrapper records per-operation
// latency in wall nanoseconds AND simulated cycles, and registers a
// scrape-time collector that reads the store's Stats() under the
// wrapper's own lock — making the registry the single synchronized read
// path into the enclave simulator's plain (non-atomic) counters.

// Metric family names emitted by the store layer. docs/OPERATIONS.md
// documents each; the parity test enforces that the catalogue and the
// endpoint never drift apart.
const (
	metricOpWallNs          = "aria_op_wall_ns"
	metricOpSimCycles       = "aria_op_sim_cycles"
	metricOpsTotal          = "aria_ops_total"
	metricOpErrorsTotal     = "aria_op_errors_total"
	metricSimCyclesTotal    = "aria_sim_cycles_total"
	metricPageSwapsTotal    = "aria_page_swaps_total"
	metricEcallsTotal       = "aria_ecalls_total"
	metricOcallsTotal       = "aria_ocalls_total"
	metricMACsTotal         = "aria_macs_total"
	metricCTROpsTotal       = "aria_ctr_ops_total"
	metricCacheHitsTotal    = "aria_cache_hits_total"
	metricCacheMissesTotal  = "aria_cache_misses_total"
	metricCacheHitRatio     = "aria_cache_hit_ratio"
	metricEPCUsedBytes      = "aria_epc_used_bytes"
	metricKeys              = "aria_keys"
	metricIntegrityFailures = "aria_integrity_failures_total"
	metricQuarantinedKeys   = "aria_quarantined_keys"
	metricHealth            = "aria_health"
	metricStopSwap          = "aria_stop_swap"
	metricPinnedLevels      = "aria_pinned_levels"
	metricBatchSize         = "aria_batch_size"
	metricBatchWallNs       = "aria_batch_wall_ns"
	metricBatchSimCycles    = "aria_batch_sim_cycles"
	metricBatchKeySimCycles = "aria_batch_key_sim_cycles"
	metricBatchesTotal      = "aria_batches_total"
	metricBatchKeysTotal    = "aria_batch_keys_total"
	metricBatchKeyErrors    = "aria_batch_key_errors_total"
	metricWALAppends        = "aria_wal_appends_total"
	metricWALRecords        = "aria_wal_records_total"
	metricWALBytes          = "aria_wal_appended_bytes_total"
	metricWALFsyncs         = "aria_wal_fsyncs_total"
	metricCheckpoints       = "aria_checkpoints_total"
	metricCheckpointWallNs  = "aria_checkpoint_wall_ns"
	metricRecoveredRecords  = "aria_recovered_records"
	metricTxnCommits        = "aria_txn_commits_total"
	metricTxnConflicts      = "aria_txn_conflicts_total"
	metricCASMismatches     = "aria_txn_cas_mismatches_total"
	metricTTLExpired        = "aria_ttl_expired_total"
	metricTTLSwept          = "aria_ttl_swept_total"
	metricTTLSweeps         = "aria_ttl_sweeps_total"
	metricCompRatio         = "aria_comp_ratio"
	metricCompDictBytes     = "aria_comp_dict_bytes"
	metricCompColdKeys      = "aria_comp_cold_keys"
	metricCompColdBytes     = "aria_comp_cold_bytes"
	metricCompColdHits      = "aria_comp_cold_hits_total"
	metricCompColdMisses    = "aria_comp_cold_misses_total"
	metricCompRawBytes      = "aria_comp_raw_bytes_total"
	metricCompBytes         = "aria_comp_bytes_total"
	metricSegCount          = "aria_seg_count"
	metricSegBytes          = "aria_seg_bytes"
	metricSegCompactions    = "aria_seg_compactions_total"
	metricSegCompactWallNs  = "aria_seg_compact_wall_ns"
)

// opKind indexes the per-operation instrument arrays.
type opKind int

const (
	opKindGet opKind = iota
	opKindPut
	opKindDelete
	opKindScan
	opKindCAS
	opKindCount
)

var opKindNames = [opKindCount]string{"get", "put", "delete", "scan", "cas"}

// batchKind indexes the per-batch-operation instrument arrays.
type batchKind int

const (
	batchKindMGet batchKind = iota
	batchKindMPut
	batchKindMDelete
	batchKindTxn
	batchKindCount
)

var batchKindNames = [batchKindCount]string{"mget", "mput", "mdelete", "txn"}

// meteredStore wraps one single-enclave store with instrumentation and a
// mutex that serializes operations AND stats reads. The engines model one
// enclave thread and are not goroutine-safe; the wrapper's lock is what
// lets a /metrics scrape run concurrently with live traffic without
// racing the simulator's plain counters.
type meteredStore struct {
	inner Store
	enc   *sgx.Enclave // nil only if a future scheme lacks a simulator
	mu    sync.Mutex   // serializes ops and stats reads (one enclave thread)

	wall   [opKindCount]*obs.Histogram
	cycles [opKindCount]*obs.Histogram
	ops    [opKindCount]*obs.Counter
	errs   [opKindCount]*obs.Counter

	bsize      [batchKindCount]*obs.Histogram
	bwall      [batchKindCount]*obs.Histogram
	bcycles    [batchKindCount]*obs.Histogram
	bkeyCycles [batchKindCount]*obs.Histogram
	batches    [batchKindCount]*obs.Counter
	bkeys      [batchKindCount]*obs.Counter
	bkeyErrs   [batchKindCount]*obs.Counter

	ckptWall    *obs.Histogram
	compactWall *obs.Histogram
}

// enclaveOf extracts the simulated enclave behind a single-scheme store
// (the scheme engines themselves sit below the semantics layer and only
// implement plainStore, hence the inner switch).
func enclaveOf(s Store) *sgx.Enclave {
	switch t := s.(type) {
	case *durableStore:
		return t.enc
	case *semStore:
		switch in := t.inner.(type) {
		case *coreStore:
			return in.enc
		case *shieldStore:
			return in.enc
		case *baseStore:
			return in.enc
		}
	}
	return nil
}

// meter wraps a single-enclave store with instruments labelled
// {op, shard} and registers its scrape-time collector.
func meter(inner Store, reg *obs.Registry, shard string) *meteredStore {
	m := &meteredStore{inner: inner, enc: enclaveOf(inner)}
	for k := opKind(0); k < opKindCount; k++ {
		l := obs.Labels{"op": opKindNames[k], "shard": shard}
		m.wall[k] = reg.Histogram(metricOpWallNs,
			"Store operation latency in wall-clock nanoseconds.", l)
		m.cycles[k] = reg.Histogram(metricOpSimCycles,
			"Store operation latency in simulated enclave cycles.", l)
		m.ops[k] = reg.Counter(metricOpsTotal,
			"Store operations started, by op and shard.", l)
		m.errs[k] = reg.Counter(metricOpErrorsTotal,
			"Store operations failed (not-found excluded), by op and shard.", l)
	}
	for k := batchKind(0); k < batchKindCount; k++ {
		l := obs.Labels{"op": batchKindNames[k], "shard": shard}
		m.bsize[k] = reg.Histogram(metricBatchSize,
			"Keys per batch operation.", l)
		m.bwall[k] = reg.Histogram(metricBatchWallNs,
			"Whole-batch latency in wall-clock nanoseconds.", l)
		m.bcycles[k] = reg.Histogram(metricBatchSimCycles,
			"Whole-batch latency in simulated enclave cycles.", l)
		m.bkeyCycles[k] = reg.Histogram(metricBatchKeySimCycles,
			"Amortized per-key simulated cycles within a batch.", l)
		m.batches[k] = reg.Counter(metricBatchesTotal,
			"Batch operations started, by op and shard.", l)
		m.bkeys[k] = reg.Counter(metricBatchKeysTotal,
			"Keys carried by batch operations, by op and shard.", l)
		m.bkeyErrs[k] = reg.Counter(metricBatchKeyErrors,
			"Keys that failed inside a batch (not-found excluded), by op and shard.", l)
	}
	sl := obs.Labels{"shard": shard}
	// Registered eagerly (not on first checkpoint) so the family appears
	// on /metrics from the first scrape and the docs-parity test sees it
	// even on stores opened without DataDir.
	m.ckptWall = reg.Histogram(metricCheckpointWallNs,
		"Checkpoint (sealed snapshot + WAL truncation) duration in wall-clock nanoseconds.", sl)
	m.compactWall = reg.Histogram(metricSegCompactWallNs,
		"Major segment compaction duration in wall-clock nanoseconds (checkpoints that rewrote the full segment set).", sl)
	reg.RegisterCollector(func(emit obs.Emit) {
		st := m.Stats() // takes m.mu: the synchronized read path
		emit(metricSimCyclesTotal, "Simulated enclave clock, cycles.", obs.TypeCounter, sl, float64(st.SimCycles))
		emit(metricPageSwapsTotal, "EPC secure-paging swaps (paging penalties paid).", obs.TypeCounter, sl, float64(st.PageSwaps))
		emit(metricEcallsTotal, "Enclave entries (ECALLs).", obs.TypeCounter, sl, float64(st.Ecalls))
		emit(metricOcallsTotal, "Enclave exits (OCALLs).", obs.TypeCounter, sl, float64(st.Ocalls))
		emit(metricMACsTotal, "CMAC computations.", obs.TypeCounter, sl, float64(st.MACs))
		emit(metricCTROpsTotal, "AES-CTR encrypt/decrypt operations.", obs.TypeCounter, sl, float64(st.CTROps))
		emit(metricCacheHitsTotal, "Secure Cache (EPC) hits.", obs.TypeCounter, sl, float64(st.CacheHits))
		emit(metricCacheMissesTotal, "Secure Cache (EPC) misses.", obs.TypeCounter, sl, float64(st.CacheMisses))
		emit(metricCacheHitRatio, "Secure Cache hit ratio, 0..1.", obs.TypeGauge, sl, st.CacheHitRatio)
		emit(metricEPCUsedBytes, "Allocated enclave heap bytes.", obs.TypeGauge, sl, float64(st.EPCUsedBytes))
		emit(metricKeys, "Live keys in the store.", obs.TypeGauge, sl, float64(st.Keys))
		emit(metricIntegrityFailures, "Detected integrity violations.", obs.TypeCounter, sl, float64(st.IntegrityFailures))
		emit(metricQuarantinedKeys, "Keys poisoned under the Quarantine policy.", obs.TypeGauge, sl, float64(st.QuarantinedKeys))
		emit(metricHealth, "Store health: 0 ok, 1 degraded, 2 failed.", obs.TypeGauge, sl, healthValue(st.Health()))
		emit(metricStopSwap, "Secure Cache stop-swap mode engaged (0/1).", obs.TypeGauge, sl, boolValue(st.StopSwap))
		emit(metricPinnedLevels, "Merkle levels pinned in the EPC.", obs.TypeGauge, sl, float64(st.PinnedLevels))
		emit(metricWALAppends, "Sealed WAL append groups (group commits).", obs.TypeCounter, sl, float64(st.WALAppends))
		emit(metricWALRecords, "Sealed records appended to the WAL.", obs.TypeCounter, sl, float64(st.WALRecords))
		emit(metricWALBytes, "Sealed bytes appended to the WAL (framing included).", obs.TypeCounter, sl, float64(st.WALBytes))
		emit(metricWALFsyncs, "fsync calls issued by the WAL.", obs.TypeCounter, sl, float64(st.WALFsyncs))
		emit(metricCheckpoints, "Sealed snapshots completed.", obs.TypeCounter, sl, float64(st.Checkpoints))
		emit(metricRecoveredRecords, "WAL records replayed by the last recovery.", obs.TypeGauge, sl, float64(st.RecoveredRecords))
		emit(metricTxnCommits, "Transactions committed (write-applying commits).", obs.TypeCounter, sl, float64(st.TxnCommits))
		emit(metricTxnConflicts, "Transactions aborted by version-check conflicts.", obs.TypeCounter, sl, float64(st.TxnConflicts))
		emit(metricCASMismatches, "CompareAndSwap calls rejected on a version mismatch.", obs.TypeCounter, sl, float64(st.CASMismatches))
		emit(metricTTLExpired, "Expired keys reclaimed lazily by reads.", obs.TypeCounter, sl, float64(st.TTLExpired))
		emit(metricTTLSwept, "Expired keys reclaimed by background sweeps.", obs.TypeCounter, sl, float64(st.TTLSwept))
		emit(metricTTLSweeps, "Background expiry sweep passes completed.", obs.TypeCounter, sl, float64(st.TTLSweeps))
		ratio := 1.0
		if st.CompRawBytes > 0 {
			ratio = float64(st.CompBytes) / float64(st.CompRawBytes)
		}
		emit(metricCompRatio, "Cold-tier compression ratio, compressed/raw bytes (1 when nothing compressed yet).", obs.TypeGauge, sl, ratio)
		emit(metricCompDictBytes, "Serialized size of the live cold-tier pattern dictionary.", obs.TypeGauge, sl, float64(st.CompDictBytes))
		emit(metricCompColdKeys, "Keys demoted to the compressed cold tier.", obs.TypeGauge, sl, float64(st.ColdKeys))
		emit(metricCompColdBytes, "Compressed bytes resident in the cold tier.", obs.TypeGauge, sl, float64(st.ColdBytes))
		emit(metricCompColdHits, "Reads promoted from the cold tier (decompress-on-miss).", obs.TypeCounter, sl, float64(st.ColdHits))
		emit(metricCompColdMisses, "Reads that found the key in neither the hot index nor the cold tier.", obs.TypeCounter, sl, float64(st.ColdMisses))
		emit(metricCompRawBytes, "Raw bytes fed to the cold-tier compressor.", obs.TypeCounter, sl, float64(st.CompRawBytes))
		emit(metricCompBytes, "Bytes produced by the cold-tier compressor.", obs.TypeCounter, sl, float64(st.CompBytes))
		emit(metricSegCount, "Sealed segments in the live segment set.", obs.TypeGauge, sl, float64(st.Segments))
		emit(metricSegBytes, "On-disk bytes held by the live segment set (manifest included).", obs.TypeGauge, sl, float64(st.SegmentBytes))
		emit(metricSegCompactions, "Major compactions (full segment-set rewrites) completed.", obs.TypeCounter, sl, float64(st.Compactions))
	})
	return m
}

func healthValue(h HealthState) float64 {
	switch h {
	case HealthDegraded:
		return 1
	case HealthFailed:
		return 2
	}
	return 0
}

func boolValue(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// simCycles reads the enclave clock without building a full Stats
// snapshot; callers hold m.mu.
func (m *meteredStore) simCycles() uint64 {
	if m.enc == nil {
		return 0
	}
	return m.enc.Cycles()
}

// observe records one finished operation. Not-found is a normal outcome
// for Get/Delete, and optimistic-concurrency losses (CAS mismatch, txn
// conflict) are expected contention, not operational errors.
func (m *meteredStore) observe(k opKind, t0 time.Time, c0 uint64, err error) {
	m.ops[k].Inc()
	if err != nil && !expectedOutcome(err) {
		m.errs[k].Inc()
	}
	m.wall[k].Record(uint64(time.Since(t0)))
	m.cycles[k].Record(m.simCycles() - c0)
}

// expectedOutcome reports whether err is a normal protocol outcome
// rather than an operational failure.
func expectedOutcome(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrCASMismatch) || errors.Is(err, ErrTxnConflict)
}

// observeBatch records one finished batch operation: realized batch size,
// whole-batch latency in both clocks, the amortized per-key cycle cost, and
// per-key failures (not-found is a normal outcome, not an error).
func (m *meteredStore) observeBatch(k batchKind, n int, t0 time.Time, c0 uint64, errs []error) {
	m.batches[k].Inc()
	m.bkeys[k].Add(uint64(n))
	var bad uint64
	for _, e := range errs {
		if e != nil && !expectedOutcome(e) {
			bad++
		}
	}
	m.bkeyErrs[k].Add(bad)
	m.bsize[k].Record(uint64(n))
	m.bwall[k].Record(uint64(time.Since(t0)))
	dc := m.simCycles() - c0
	m.bcycles[k].Record(dc)
	if n > 0 {
		m.bkeyCycles[k].Record(dc / uint64(n))
	}
}

// MGet implements Store.
func (m *meteredStore) MGet(keys [][]byte) ([][]byte, []error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	vals, errs := m.inner.MGet(keys)
	m.observeBatch(batchKindMGet, len(keys), t0, c0, errs)
	return vals, errs
}

// MPut implements Store.
func (m *meteredStore) MPut(pairs []KV) []error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	errs := m.inner.MPut(pairs)
	m.observeBatch(batchKindMPut, len(pairs), t0, c0, errs)
	return errs
}

// MDelete implements Store.
func (m *meteredStore) MDelete(keys [][]byte) []error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	errs := m.inner.MDelete(keys)
	m.observeBatch(batchKindMDelete, len(keys), t0, c0, errs)
	return errs
}

// Put implements Store.
func (m *meteredStore) Put(key, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	err := m.inner.Put(key, value)
	m.observe(opKindPut, t0, c0, err)
	return err
}

// Get implements Store.
func (m *meteredStore) Get(key []byte) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	v, err := m.inner.Get(key)
	m.observe(opKindGet, t0, c0, err)
	return v, err
}

// Delete implements Store.
func (m *meteredStore) Delete(key []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	err := m.inner.Delete(key)
	m.observe(opKindDelete, t0, c0, err)
	return err
}

// GetV implements Store; a versioned read is observed as a get.
func (m *meteredStore) GetV(key []byte) ([]byte, uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	v, ver, err := m.inner.GetV(key)
	m.observe(opKindGet, t0, c0, err)
	return v, ver, err
}

// CompareAndSwap implements Store under its own op label ("cas"); a
// version mismatch is expected contention, not an operational error.
func (m *meteredStore) CompareAndSwap(key, value []byte, expect uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	err := m.inner.CompareAndSwap(key, value, expect)
	m.observe(opKindCAS, t0, c0, err)
	return err
}

// PutTTL implements Store; a TTL write is observed as a put.
func (m *meteredStore) PutTTL(key, value []byte, ttl time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	err := m.inner.PutTTL(key, value, ttl)
	m.observe(opKindPut, t0, c0, err)
	return err
}

// TxnCommit implements Store, observed as a batch labelled "txn" (one
// commit = one group of keys entering the enclave together).
func (m *meteredStore) TxnCommit(ops []TxnOp) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t0, c0 := time.Now(), m.simCycles()
	err := m.inner.TxnCommit(ops)
	var errs []error
	if err != nil {
		errs = []error{err}
	}
	m.observeBatch(batchKindTxn, len(ops), t0, c0, errs)
	return err
}

// putExpireAbs implements expiryApplier (the replica apply path),
// observed as a put like PutTTL.
func (m *meteredStore) putExpireAbs(key, value []byte, exp int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ea, ok := m.inner.(expiryApplier)
	if !ok {
		return errors.New("aria: metered store's inner store cannot apply ttl records")
	}
	t0, c0 := time.Now(), m.simCycles()
	err := ea.putExpireAbs(key, value, exp)
	m.observe(opKindPut, t0, c0, err)
	return err
}

// applyTxnWrites implements txnApplier (the replica apply path),
// observed as a "txn" batch like TxnCommit.
func (m *meteredStore) applyTxnWrites(writes []txnWrite) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ta, ok := m.inner.(txnApplier)
	if !ok {
		return errors.New("aria: metered store's inner store cannot apply txn records")
	}
	t0, c0 := time.Now(), m.simCycles()
	err := ta.applyTxnWrites(writes)
	var errs []error
	if err != nil {
		errs = []error{err}
	}
	m.observeBatch(batchKindTxn, len(writes), t0, c0, errs)
	return err
}

// Scan implements Ranger; one whole scan is one observation. A store
// whose index is unordered reports ErrNoScan, same as unwrapped.
func (m *meteredStore) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.inner.(Ranger)
	if !ok {
		return ErrNoScan
	}
	t0, c0 := time.Now(), m.simCycles()
	err := r.Scan(start, end, fn)
	m.observe(opKindScan, t0, c0, err)
	return err
}

// Stats implements Store. Holding m.mu makes this safe to call while
// another goroutine operates on the store — the fix for the snapshot
// races a live /metrics scrape would otherwise hit.
func (m *meteredStore) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Stats()
}

// VerifyIntegrity implements Store.
func (m *meteredStore) VerifyIntegrity() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.VerifyIntegrity()
}

// SetMeasuring implements Store.
func (m *meteredStore) SetMeasuring(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner.SetMeasuring(on)
}

// ResetStats implements Store.
func (m *meteredStore) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner.ResetStats()
}

// Checkpoint implements Durable, timing the whole snapshot into the
// checkpoint histogram. A store opened without DataDir reports
// ErrNotDurable (not timed: a refused checkpoint is not a duration).
func (m *meteredStore) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.inner.(Durable)
	if !ok {
		return ErrNotDurable
	}
	// Compactions is read around the checkpoint so a full segment-set
	// rewrite (cold tier only) also lands in the compaction histogram.
	c0 := m.inner.Stats().Compactions
	t0 := time.Now()
	err := d.Checkpoint()
	dt := uint64(time.Since(t0))
	m.ckptWall.Record(dt)
	if m.inner.Stats().Compactions > c0 {
		m.compactWall.Record(dt)
	}
	return err
}

// Close implements Durable: flush and close the inner store's log. A
// store opened without DataDir has nothing to release and closes as a
// no-op.
func (m *meteredStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.inner.(Durable); ok {
		return d.Close()
	}
	return nil
}

// ChargeEcall implements EdgeCaller.
func (m *meteredStore) ChargeEcall() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ec, ok := m.inner.(EdgeCaller); ok {
		ec.ChargeEcall()
	}
}

// The Corrupter surface passes through so attack demos and chaos tests
// work unchanged on a metered store; schemes without untrusted memory
// contribute zero bytes, matching the sharded aggregation contract.

// UntrustedSize implements Corrupter.
// WALShards implements Replicable by delegation; a non-durable inner
// store reports zero lineages (not replicable). These forwarders do
// not take m.mu: the inner store's own lock protects them, and the
// commit hook fires while a write already holds m.mu.
func (m *meteredStore) WALShards() int {
	if r, ok := m.inner.(Replicable); ok {
		return r.WALShards()
	}
	return 0
}

// WALShardDir implements Replicable by delegation.
func (m *meteredStore) WALShardDir(i int) string {
	return m.inner.(Replicable).WALShardDir(i)
}

// WALShardNextSeq implements Replicable by delegation.
func (m *meteredStore) WALShardNextSeq(i int) uint64 {
	return m.inner.(Replicable).WALShardNextSeq(i)
}

// SetCommitHook implements Replicable by delegation.
func (m *meteredStore) SetCommitHook(fn func()) {
	if r, ok := m.inner.(Replicable); ok {
		r.SetCommitHook(fn)
	}
}

func (m *meteredStore) UntrustedSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.inner.(Corrupter); ok {
		return c.UntrustedSize()
	}
	return 0
}

// FlipUntrustedByte implements Corrupter.
func (m *meteredStore) FlipUntrustedByte(offset int, mask byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.inner.(Corrupter); ok {
		return c.FlipUntrustedByte(offset, mask)
	}
	return false
}

// SnapshotUntrusted implements Corrupter.
func (m *meteredStore) SnapshotUntrusted() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.inner.(Corrupter); ok {
		return c.SnapshotUntrusted()
	}
	return nil
}

// RestoreUntrusted implements Corrupter.
func (m *meteredStore) RestoreUntrusted(snap []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.inner.(Corrupter); ok {
		c.RestoreUntrusted(snap)
	}
}
